#!/bin/sh
# Runs every experiment harness sequentially, teeing the combined output.
cd /root/repo
export RLATTACK_BENCH_SCALE=${RLATTACK_BENCH_SCALE:-0.5}
: > bench_output.txt
for b in build/bench/*; do
  { [ -f "$b" ] && [ -x "$b" ]; } || continue
  echo "=== RUNNING $b ===" >> bench_output.txt
  "$b" >> bench_output.txt 2>&1
  echo "=== EXIT $? $b ===" >> bench_output.txt
done
echo ALL_BENCHES_DONE >> bench_output.txt
