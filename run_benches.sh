#!/bin/sh
# Runs every experiment harness sequentially, teeing the combined output.
#
# Timing outputs:
#   bench_times.csv         one row per bench binary: parallel (default
#                           episode-worker) wall-clock, plus a serial
#                           (RLATTACK_EXPERIMENT_THREADS=1) column when
#                           RLATTACK_BENCH_COMPARE=1 re-runs each binary.
#   BENCH_experiments.json  the per-experiment "[timing]" lines the driver
#                           binaries emit, as a JSON baseline.
#   METRICS.json            telemetry export (counters/histograms/spans) of
#                           every binary's primary run, as a JSON array of
#                           the per-binary objects from metrics-out/.
#   BENCH_craft.json        craft-latency baseline written by
#                           bench_micro_seq2seq: cached vs uncached history
#                           encoding across input_steps / PGD-step sweeps.
cd /root/repo
export RLATTACK_BENCH_SCALE=${RLATTACK_BENCH_SCALE:-0.5}
: > bench_output.txt
echo "bench,wall_seconds,serial_wall_seconds" > bench_times.csv
rm -rf metrics-out
mkdir -p metrics-out

run_one() {
  echo "=== RUNNING $1 ===" >> bench_output.txt
  _start=$(date +%s.%N)
  "$1" >> bench_output.txt 2>&1
  _status=$?
  _end=$(date +%s.%N)
  echo "=== EXIT $_status $1 ===" >> bench_output.txt
  awk -v a="$_start" -v b="$_end" 'BEGIN { printf "%.2f", b - a }'
}

# Every bench binary must leave a non-empty telemetry export behind; a bench
# that crashed before its exit hook (or a broken exporter) fails the script
# rather than silently shrinking METRICS.json.
_missing_exports=""
for b in build/bench/*; do
  { [ -f "$b" ] && [ -x "$b" ]; } || continue
  # The primary run exports its telemetry at exit; comparison re-runs below
  # deliberately do not, so each binary contributes exactly one object.
  wall=$(RLATTACK_METRICS_OUT="metrics-out/$(basename "$b").json" \
         run_one "$b")
  serial=""
  if [ "${RLATTACK_BENCH_COMPARE:-0}" = "1" ]; then
    serial=$(RLATTACK_EXPERIMENT_THREADS=1 run_one "$b")
  fi
  echo "$(basename "$b"),$wall,$serial" >> bench_times.csv
  if [ ! -s "metrics-out/$(basename "$b").json" ]; then
    _missing_exports="$_missing_exports $(basename "$b")"
    echo "ERROR: $(basename "$b") produced no metrics export" \
      >> bench_output.txt
  fi
done

# Assemble the per-binary telemetry objects into one METRICS.json array,
# in binary-name order (each object is already valid self-contained JSON).
{
  echo "["
  _first=1
  for m in metrics-out/*.json; do
    [ -f "$m" ] || continue
    [ "$_first" = 1 ] || echo ","
    _first=0
    cat "$m"
  done
  echo "]"
} > METRICS.json

# Record the assembly verdict in CHECKS.json so consumers see a truncated
# METRICS.json as a named failure, not a shorter array.
if command -v python3 >/dev/null 2>&1; then
  RLATTACK_MISSING_EXPORTS="$_missing_exports" python3 - <<'EOF'
import json, os
missing = os.environ.get("RLATTACK_MISSING_EXPORTS", "").split()
report = {"tool": "run_benches.sh",
          "status": "missing_exports" if missing else "ok",
          "missing_exports": missing}
doc = {}
if os.path.exists("CHECKS.json"):
    try:
        doc = json.load(open("CHECKS.json"))
    except ValueError:
        doc = {}
doc["metrics_assembly"] = report
json.dump(doc, open("CHECKS.json", "w"), indent=2)
print("metrics assembly check:", report["status"],
      f"({len(missing)} missing)")
EOF
fi

# Collect the drivers' per-experiment timing lines into a JSON baseline.
# The committed baseline (if any) is kept aside first so the regression
# check below can diff against what the tree shipped with.
[ -f BENCH_experiments.json ] && cp BENCH_experiments.json \
  BENCH_experiments.baseline.json
awk 'BEGIN { print "["; first = 1 }
  /^\[timing\]/ {
    e = t = n = c = v = w = ""
    for (i = 2; i <= NF; ++i) {
      split($i, kv, "=")
      if (kv[1] == "experiment") e = kv[2]
      if (kv[1] == "threads") t = kv[2]
      if (kv[1] == "episodes") n = kv[2]
      if (kv[1] == "craft_batch") c = kv[2]
      if (kv[1] == "eval_batch") v = kv[2]
      if (kv[1] == "wall_s") w = kv[2]
    }
    if (e == "" || t == "" || n == "" || w == "") next
    if (c == "") c = 0
    if (v == "") v = 0
    if (!first) printf ",\n"
    first = 0
    printf "  {\"experiment\": \"%s\", \"threads\": %s, \"episodes\": %s, \"craft_batch\": %s, \"eval_batch\": %s, \"wall_seconds\": %s}", e, t, n, c, v, w
  }
  END { print "\n]" }' bench_output.txt > BENCH_experiments.json

# Wall-clock regression gate: rows matched against the committed baseline by
# (experiment, threads, craft_batch, eval_batch); >10% slower flags the row.
# The verdict
# lands in CHECKS.json under "bench_regressions" so run_checks.sh consumers
# see perf and correctness in one place (short sub-second rows are skipped —
# they are scheduler noise at this granularity).
if command -v python3 >/dev/null 2>&1 && \
   [ -f BENCH_experiments.baseline.json ]; then
  python3 - <<'EOF'
import json, os

def rows(path):
    out = {}
    for r in json.load(open(path)):
        key = (r["experiment"], r.get("threads"), r.get("craft_batch", 0),
               r.get("eval_batch", 0))
        out[key] = r["wall_seconds"]
    return out

base = rows("BENCH_experiments.baseline.json")
new = rows("BENCH_experiments.json")
flagged = []
for key, wall in sorted(new.items()):
    ref = base.get(key)
    if ref is None or ref < 1.0:
        continue
    if wall > ref * 1.10:
        flagged.append({
            "experiment": key[0], "threads": key[1], "craft_batch": key[2],
            "eval_batch": key[3],
            "baseline_wall_seconds": ref, "wall_seconds": wall,
            "slowdown": round(wall / ref, 3),
        })
report = {"tool": "run_benches.sh", "threshold": 1.10,
          "compared_rows": sum(1 for k in new if k in base),
          "status": "regressions" if flagged else "ok",
          "bench_regressions": flagged}
doc = {}
if os.path.exists("CHECKS.json"):
    try:
        doc = json.load(open("CHECKS.json"))
    except ValueError:
        doc = {}
doc["bench"] = report
json.dump(doc, open("CHECKS.json", "w"), indent=2)
print("bench regression check:", report["status"],
      f"({len(flagged)} flagged of {report['compared_rows']} compared)")
for f in flagged:
    print("  REGRESSION", f["experiment"], "threads", f["threads"],
          "craft_batch", f["craft_batch"], "eval_batch", f["eval_batch"], ":",
          f["baseline_wall_seconds"], "->", f["wall_seconds"], "s")
EOF
fi
if [ -n "$_missing_exports" ]; then
  echo "MISSING_METRICS_EXPORTS:$_missing_exports" >> bench_output.txt
  echo "run_benches.sh: missing metrics exports:$_missing_exports" >&2
  exit 1
fi
echo ALL_BENCHES_DONE >> bench_output.txt
