// rlattack — command-line driver for the full black-box attack workflow.
//
//   rlattack train       --game cartpole --algo dqn --episodes 300 --out v.ckpt
//   rlattack eval        --game cartpole --algo dqn --ckpt v.ckpt --episodes 10
//   rlattack observe     --game cartpole --algo dqn --ckpt v.ckpt
//                        --episodes 40 --out traces.rltr
//   rlattack approximate --game cartpole --traces traces.rltr --m 1
//                        --epochs 60 --out s2s.ckpt --meta s2s.meta
//   rlattack attack      --game cartpole --algo dqn --victim v.ckpt
//                        --model s2s.ckpt --meta s2s.meta --attack fgsm
//                        --norm l2 --eps 1.0 --runs 10
//   rlattack timebomb    --game cartpole --algo dqn --victim v.ckpt
//                        --model s2s.ckpt --meta s2s.meta --delay 4
//                        --eps 0.5 --runs 15
//   rlattack table1
//
// Every subcommand works purely through the public library API — the CLI
// doubles as an end-to-end usage example.
#include <fstream>
#include <iostream>

#include "rlattack/core/experiments.hpp"
#include "rlattack/core/pipeline.hpp"
#include "rlattack/env/factory.hpp"
#include "rlattack/env/trace_io.hpp"
#include "rlattack/nn/serialize.hpp"
#include "rlattack/obs/forensics.hpp"
#include "rlattack/obs/metrics.hpp"
#include "rlattack/obs/trace.hpp"
#include "rlattack/rl/factory.hpp"
#include "rlattack/rl/trainer.hpp"
#include "rlattack/seq2seq/trainer.hpp"
#include "rlattack/util/cli.hpp"
#include "rlattack/util/stats.hpp"

namespace {

using namespace rlattack;

int usage(const std::string& program) {
  std::cerr
      << "usage: " << program
      << " <train|eval|observe|approximate|attack|timebomb|table1> "
         "[--options]\n"
         "global: --metrics-out <path> writes telemetry (METRICS JSON) at "
         "exit;\n"
         "  --trace-out <path> writes a Chrome/Perfetto timeline trace at "
         "exit\n"
         "  (and enables tracing); --forensics-out <path> writes the "
         "per-step\n"
         "  attack forensics JSONL at exit (and enables the stream).\n"
         "run with a subcommand and no options to see its defaults in use;\n"
         "see the header of apps/rlattack_cli.cpp for full examples.\n";
  return 2;
}

rl::AgentPtr make_victim(env::Game game, rl::Algorithm algo,
                         std::uint64_t seed) {
  env::EnvPtr probe = env::make_agent_environment(game, seed);
  return rl::make_agent(algo, rl::obs_spec_of(*probe), probe->action_count(),
                        seed);
}

seq2seq::Seq2SeqConfig approx_config(env::Game game, std::size_t n,
                                     std::size_t m) {
  env::EnvPtr probe = env::make_environment(game, 1);
  if (game == env::Game::kCartPole)
    return seq2seq::make_cartpole_seq2seq_config(n, m);
  return seq2seq::make_atari_seq2seq_config(probe->observation_shape(),
                                            probe->action_count(), n, m);
}

int cmd_train(const util::CliArgs& args) {
  const env::Game game = env::parse_game(args.get("game", "cartpole"));
  const rl::Algorithm algo = rl::parse_algorithm(args.get("algo", "dqn"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  rl::AgentPtr agent = make_victim(game, algo, seed);
  env::EnvPtr train_env = env::make_agent_environment(game, seed);
  rl::TrainConfig tc;
  tc.episodes = static_cast<std::size_t>(args.get_int("episodes", 300));
  tc.target_reward = args.get_double("target", 0.0);
  tc.verbose = true;
  rl::TrainResult result = rl::train_agent(*agent, *train_env, tc);
  std::cout << "trained " << rl::algorithm_name(algo) << " on "
            << env::game_name(game) << ": "
            << result.episode_rewards.size() << " episodes, final avg "
            << result.final_average << "\n";
  const std::string out = args.get("out", "victim.ckpt");
  if (!nn::save_parameters(agent->network(), out)) {
    std::cerr << "error: failed to write " << out << "\n";
    return 1;
  }
  std::cout << "checkpoint written to " << out << "\n";
  return 0;
}

int cmd_eval(const util::CliArgs& args) {
  const env::Game game = env::parse_game(args.get("game", "cartpole"));
  const rl::Algorithm algo = rl::parse_algorithm(args.get("algo", "dqn"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  rl::AgentPtr agent = make_victim(game, algo, seed);
  const std::string ckpt = args.get("ckpt", "victim.ckpt");
  if (!nn::load_parameters(agent->network(), ckpt)) {
    std::cerr << "error: cannot load " << ckpt << "\n";
    return 1;
  }
  env::EnvPtr eval_env = env::make_agent_environment(game, seed + 1);
  const auto rewards = rl::evaluate_agent(
      *agent, *eval_env,
      static_cast<std::size_t>(args.get_int("episodes", 10)), seed + 1);
  util::RunningStats stats;
  for (double r : rewards) stats.add(r);
  std::cout << "greedy score over " << rewards.size()
            << " episodes: " << util::fmt_pm(stats.mean(), stats.stddev(), 2)
            << "\n";
  return 0;
}

int cmd_observe(const util::CliArgs& args) {
  const env::Game game = env::parse_game(args.get("game", "cartpole"));
  const rl::Algorithm algo = rl::parse_algorithm(args.get("algo", "dqn"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  rl::AgentPtr agent = make_victim(game, algo, seed);
  const std::string ckpt = args.get("ckpt", "victim.ckpt");
  if (!nn::load_parameters(agent->network(), ckpt)) {
    std::cerr << "error: cannot load " << ckpt << "\n";
    return 1;
  }
  env::EnvPtr obs_env = env::make_agent_environment(game, seed + 2);
  auto episodes = rl::collect_episodes(
      *agent, *obs_env,
      static_cast<std::size_t>(args.get_int("episodes", 40)), seed + 2);
  const std::string out = args.get("out", "traces.rltr");
  if (!env::save_episodes(episodes, out)) {
    std::cerr << "error: failed to write " << out << "\n";
    return 1;
  }
  std::size_t steps = 0;
  for (const auto& ep : episodes) steps += ep.steps.size();
  std::cout << "recorded " << episodes.size() << " episodes (" << steps
            << " steps) to " << out << "\n";
  return 0;
}

int cmd_approximate(const util::CliArgs& args) {
  const env::Game game = env::parse_game(args.get("game", "cartpole"));
  const auto traces = env::load_episodes(args.get("traces", "traces.rltr"));
  if (!traces) {
    std::cerr << "error: cannot load traces\n";
    return 1;
  }
  const auto m = static_cast<std::size_t>(args.get_int("m", 1));
  seq2seq::TrainSettings settings;
  settings.epochs = static_cast<std::size_t>(args.get_int("epochs", 60));
  settings.batches_per_epoch =
      static_cast<std::size_t>(args.get_int("batches", 48));
  const auto candidates = core::Zoo::length_candidates(game);
  auto make_config = [&](std::size_t n) { return approx_config(game, n, m); };
  auto result = seq2seq::build_approximator(
      *traces, candidates, make_config, settings,
      static_cast<std::uint64_t>(args.get_int("seed", 1)));
  std::cout << "Algorithm 1 chose n = " << result.search.best_length
            << "; eval accuracy = " << result.outcome.eval_accuracy << "\n";
  const std::string out = args.get("out", "s2s.ckpt");
  if (!nn::save_parameters(result.model->params(), out)) {
    std::cerr << "error: failed to write " << out << "\n";
    return 1;
  }
  std::ofstream meta(args.get("meta", "s2s.meta"), std::ios::trunc);
  meta << result.search.best_length << ' ' << result.outcome.eval_accuracy
       << '\n';
  std::cout << "model written to " << out << "\n";
  return 0;
}

/// Loads a victim + approximator pair for the attack subcommands.
struct LoadedPair {
  rl::AgentPtr victim;
  std::unique_ptr<seq2seq::Seq2SeqModel> model;
};

std::optional<LoadedPair> load_pair(const util::CliArgs& args, env::Game game,
                                    std::size_t m) {
  LoadedPair pair;
  const rl::Algorithm algo = rl::parse_algorithm(args.get("algo", "dqn"));
  pair.victim = make_victim(game, algo,
                            static_cast<std::uint64_t>(args.get_int("seed", 1)));
  if (!nn::load_parameters(pair.victim->network(),
                           args.get("victim", "victim.ckpt"))) {
    std::cerr << "error: cannot load victim checkpoint\n";
    return std::nullopt;
  }
  std::ifstream meta(args.get("meta", "s2s.meta"));
  std::size_t n = 0;
  double acc = 0.0;
  if (!(meta >> n >> acc) || n == 0) {
    std::cerr << "error: cannot read approximator meta file\n";
    return std::nullopt;
  }
  pair.model = std::make_unique<seq2seq::Seq2SeqModel>(
      approx_config(game, n, m), 1);
  if (!nn::load_parameters(pair.model->params(),
                           args.get("model", "s2s.ckpt"))) {
    std::cerr << "error: cannot load approximator checkpoint (was it "
                 "trained with --m "
              << m << "?)\n";
    return std::nullopt;
  }
  return pair;
}

int cmd_attack(const util::CliArgs& args) {
  const env::Game game = env::parse_game(args.get("game", "cartpole"));
  auto pair = load_pair(args, game, 1);
  if (!pair) return 1;
  attack::AttackPtr attacker =
      attack::make_attack(attack::parse_attack(args.get("attack", "fgsm")));
  attack::Budget budget;
  budget.norm = args.get("norm", "l2") == "linf"
                    ? attack::Budget::Norm::kLinf
                    : attack::Budget::Norm::kL2;
  budget.epsilon = static_cast<float>(args.get_double("eps", 1.0));
  core::AttackSession session(*pair->victim, game, *pair->model, *attacker,
                              budget);
  core::AttackPolicy clean;
  core::AttackPolicy attacked;
  attacked.mode = core::AttackPolicy::Mode::kEveryStep;
  attacked.stride = static_cast<std::size_t>(args.get_int("stride", 1));
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 10));
  util::RunningStats clean_stats, attacked_stats;
  std::size_t flips = 0, samples = 0;
  for (std::uint64_t run = 0; run < runs; ++run) {
    clean_stats.add(session.run_episode(clean, 100 + run).total_reward);
    auto outcome = session.run_episode(attacked, 100 + run);
    attacked_stats.add(outcome.total_reward);
    flips += outcome.immediate_flips;
    samples += outcome.attacks_attempted;
  }
  std::cout << "clean reward:    "
            << util::fmt_pm(clean_stats.mean(), clean_stats.stddev(), 2)
            << "\nattacked reward: "
            << util::fmt_pm(attacked_stats.mean(), attacked_stats.stddev(), 2)
            << "\ntransfer rate:   "
            << util::fmt(samples ? static_cast<double>(flips) /
                                       static_cast<double>(samples)
                                 : 0.0,
                         3)
            << " (" << samples << " samples)\n";
  return 0;
}

int cmd_timebomb(const util::CliArgs& args) {
  const env::Game game = env::parse_game(args.get("game", "cartpole"));
  auto pair = load_pair(args, game, 10);
  if (!pair) return 1;
  attack::AttackPtr attacker =
      attack::make_attack(attack::parse_attack(args.get("attack", "fgsm")));
  attack::Budget budget{attack::Budget::Norm::kLinf,
                        static_cast<float>(args.get_double("eps", 0.3))};
  core::AttackSession session(*pair->victim, game, *pair->model, *attacker,
                              budget);
  const auto delay = static_cast<std::size_t>(args.get_int("delay", 4));
  const auto runs = static_cast<std::size_t>(args.get_int("runs", 15));
  std::size_t successes = 0, trials = 0;
  for (std::uint64_t run = 0; run < runs; ++run) {
    core::AttackPolicy clean;
    auto baseline = session.run_episode(clean, 500 + run);
    core::AttackPolicy bomb;
    bomb.mode = core::AttackPolicy::Mode::kSingleStep;
    bomb.trigger_step =
        pair->model->config().input_steps + (run % 10);
    bomb.goal_mode = attack::Goal::Mode::kTargeted;
    bomb.position = delay;
    auto attacked = session.run_episode(bomb, 500 + run);
    if (attacked.fired_step == static_cast<std::size_t>(-1)) continue;
    const std::size_t check = attacked.fired_step + delay;
    if (baseline.actions.size() <= check) continue;
    ++trials;
    if (attacked.actions.size() <= check ||
        attacked.actions[check] != baseline.actions[check])
      ++successes;
  }
  std::cout << "time-bomb success at delay " << delay << ": " << successes
            << "/" << trials << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::CliArgs args(argc, argv);
    obs::set_export_binary("rlattack_cli");
    if (args.has("metrics-out"))
      obs::set_export_path(args.get("metrics-out", ""));
    // CliArgs stores "true" for a bare switch; both flags accept that form
    // and fall back to a default path keyed on the binary name.
    if (args.has("trace-out")) {
      std::string path = args.get("trace-out", "");
      if (path.empty() || path == "true") path = "rlattack_cli_trace.json";
      obs::set_trace_path(path);
      obs::set_trace_enabled(true);
    }
    if (args.has("forensics-out")) {
      std::string path = args.get("forensics-out", "");
      if (path.empty() || path == "true") path = "rlattack_cli_forensics.jsonl";
      obs::set_forensics_path(path);
    }
    if (args.command() == "train") return cmd_train(args);
    if (args.command() == "eval") return cmd_eval(args);
    if (args.command() == "observe") return cmd_observe(args);
    if (args.command() == "approximate") return cmd_approximate(args);
    if (args.command() == "attack") return cmd_attack(args);
    if (args.command() == "timebomb") return cmd_timebomb(args);
    if (args.command() == "table1") {
      std::cout << rlattack::core::threat_model_table().to_string();
      return 0;
    }
    return usage(args.program());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
