// Figure 8: the time-bomb attack on Space Invaders. One adversarial frame
// injected at time t aims to flip the action at t + delay. The seq2seq
// model is trained from DQN traces and transferred to A2C and Rainbow
// victims (cross-algorithm transfer). Includes the paper's large-epsilon
// claim: at eps >= 0.7 success exceeds 70% across the board.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  rlattack::bench::init_metrics(argc, argv, "bench_fig8_timebomb_invaders");
  using namespace rlattack;
  core::Zoo zoo = bench::make_zoo();

  util::TableWriter table(
      {"Victim", "Epsilon (Linf)", "Delay", "Success rate", "Trials"});
  const rl::Algorithm victims[] = {rl::Algorithm::kA2c,
                                   rl::Algorithm::kRainbow};
  for (rl::Algorithm victim : victims) {
    for (float eps : {0.3f, 0.7f}) {
      core::TimeBombConfig cfg;
      cfg.game = env::Game::kMiniInvaders;
      cfg.victim_algorithm = victim;
      cfg.approximator_source = rl::Algorithm::kDqn;
      cfg.epsilon_linf = eps;
      cfg.delays = {1, 2, 3, 4, 5, 6, 7, 8, 9};
      cfg.runs = bench::scaled_runs();
      cfg.seed = 3000 + static_cast<std::uint64_t>(victim) * 100 +
                 static_cast<std::uint64_t>(eps * 10);
      core::ExperimentTiming timing;
      auto points = core::run_timebomb_experiment(zoo, cfg, &timing);
      bench::emit_timing("fig8_timebomb_invaders." +
                             rl::algorithm_name(victim) + ".eps" +
                             util::fmt(eps, 1),
                         timing);
      for (const auto& p : points)
        table.add_row({rl::algorithm_name(victim), util::fmt(eps, 1),
                       std::to_string(p.delay), util::fmt(p.success_rate, 3),
                       std::to_string(p.trials)});
    }
  }
  bench::emit(table, "fig8_timebomb_invaders",
              "Figure 8: time-bomb attack on Space Invaders (seq2seq "
              "trained on DQN)");
  std::cout << "Shape check (paper): success decays with delay and eps = 0.7 "
               "dominates eps = 0.3. Caveat: a victim that learned a "
               "constant policy (A2C on MiniInvaders at CPU scale; see "
               "DESIGN.md) has nothing to flip and reads 0 by "
               "construction.\n";
  return 0;
}
