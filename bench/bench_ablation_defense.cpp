// Ablation: noise-augmented training as a defence (the Pattanaik et al.
// direction from the paper's related work). Trains a second DQN victim on
// CartPole with Gaussian observation noise injected during training, then
// attacks both the vanilla and the hardened victim at the same budgets.
#include "bench_common.hpp"
#include "rlattack/core/pipeline.hpp"
#include "rlattack/env/cartpole.hpp"
#include "rlattack/env/noisy_obs.hpp"
#include "rlattack/nn/serialize.hpp"
#include "rlattack/rl/factory.hpp"
#include "rlattack/rl/q_agent.hpp"
#include "rlattack/rl/trainer.hpp"
#include "rlattack/util/stats.hpp"

#include <filesystem>

int main(int argc, char** argv) {
  rlattack::bench::init_metrics(argc, argv, "bench_ablation_defense");
  using namespace rlattack;
  core::Zoo zoo = bench::make_zoo();
  const env::Game game = env::Game::kCartPole;
  rl::Agent& vanilla = zoo.victim(game, rl::Algorithm::kDqn);
  core::ApproximatorInfo approx =
      zoo.approximator(game, rl::Algorithm::kDqn, 1);

  // Hardened victim: same DQN, trained under observation noise. Cached
  // alongside the zoo's checkpoints.
  rl::AgentPtr hardened = rl::make_dqn_agent(rl::ObsSpec{{4}}, 2, 97);
  const std::string ckpt = "checkpoints/cartpole_dqn_hardened.ckpt";
  if (!(std::filesystem::exists(ckpt) &&
        nn::load_parameters(hardened->network(), ckpt))) {
    env::NoisyObservationWrapper train_env(
        std::make_unique<env::CartPole>(env::CartPole::Config{}, 97), 0.2f,
        97);
    rl::TrainConfig tc;
    tc.episodes = static_cast<std::size_t>(
        400 * core::bench_scale_from_env());
    tc.target_reward = 180.0;
    rl::train_agent(*hardened, train_env, tc);
    nn::save_parameters(hardened->network(), ckpt);
  }

  util::TableWriter table(
      {"Victim", "Attack", "L2 budget", "Reward (mean +/- std)"});
  const std::size_t runs = bench::scaled_runs(10);
  struct Row {
    const char* label;
    rl::Agent* victim;
  };
  Row victims[] = {{"vanilla", &vanilla}, {"noise-hardened", hardened.get()}};
  for (const Row& row : victims) {
    for (attack::Kind kind : {attack::Kind::kGaussian, attack::Kind::kFgsm}) {
      attack::AttackPtr attacker = attack::make_attack(kind);
      for (double budget_value : {0.0, 1.0, 2.0}) {
        attack::Budget budget{attack::Budget::Norm::kL2,
                              static_cast<float>(budget_value)};
        core::AttackSession session(*row.victim, game, *approx.model,
                                    *attacker, budget);
        core::AttackPolicy policy;
        policy.mode = budget_value > 0.0
                          ? core::AttackPolicy::Mode::kEveryStep
                          : core::AttackPolicy::Mode::kNone;
        util::RunningStats rewards;
        for (std::uint64_t run = 0; run < runs; ++run)
          rewards.add(
              session.run_episode(policy, 8000 + run).total_reward);
        table.add_row({row.label, attack::attack_name(kind),
                       util::fmt(budget_value, 1),
                       util::fmt_pm(rewards.mean(), rewards.stddev(), 1)});
      }
    }
  }
  bench::emit(table, "ablation_defense",
              "Ablation: noise-augmented training as a defence "
              "(CartPole/DQN)");
  std::cout << "Reading: noise-hardening buys near-immunity to Gaussian "
               "jamming (its training distribution) but only marginal "
               "robustness to gradient attacks — defending the average "
               "perturbation is not defending the worst case.\n";
  return 0;
}
