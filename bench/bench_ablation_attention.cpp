// Ablation: attention decoder. Figure 1's architecture pools the
// observation history into one embedding that is duplicated m times; a
// Luong-attention decoder instead re-reads the encoder states at every
// output position. Both are trained on the same DQN CartPole traces with
// the same budget and compared on 10-step sequence accuracy.
#include "bench_common.hpp"
#include "rlattack/seq2seq/trainer.hpp"

int main(int argc, char** argv) {
  rlattack::bench::init_metrics(argc, argv, "bench_ablation_attention");
  using namespace rlattack;
  core::Zoo zoo = bench::make_zoo();
  const env::Game game = env::Game::kCartPole;
  const auto& episodes = zoo.episodes(game, rl::Algorithm::kDqn);
  const seq2seq::TrainSettings settings = zoo.seq2seq_settings(game);
  const std::size_t n = 10, m = 10;

  util::TableWriter table(
      {"Decoder", "Eval accuracy (m = 10)", "Parameters"});
  for (bool attention : {false, true}) {
    seq2seq::Seq2SeqConfig cfg = seq2seq::make_cartpole_seq2seq_config(n, m);
    cfg.use_attention = attention;
    seq2seq::EpisodeDataset ds(episodes, cfg.input_steps, cfg.output_steps,
                               cfg.frame_size(), cfg.actions);
    util::Rng rng(91);
    auto [train_idx, eval_idx] = ds.split(0.9, rng);
    seq2seq::Seq2SeqModel model(cfg, 92);
    seq2seq::TrainOutcome outcome = seq2seq::train_seq2seq(
        model, ds, train_idx, eval_idx, settings, rng);
    std::size_t param_count = 0;
    for (const auto& p : model.params()) param_count += p.value->size();
    table.add_row({attention ? "attention (Luong)" : "pooled (Figure 1)",
                   util::fmt(outcome.eval_accuracy, 3),
                   std::to_string(param_count)});
  }
  bench::emit(table, "ablation_attention",
              "Ablation: pooled vs attention decoder (CartPole/DQN traces, "
              "10-step prediction)");
  std::cout << "Reading: at CPU-scale budgets the simpler pooled decoder is "
               "competitive with (and can beat) attention; the Figure-1 "
               "architecture is not the bottleneck at these horizons.\n";
  return 0;
}
