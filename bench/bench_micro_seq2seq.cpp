// Craft-latency microbench for the seq2seq history-encoding cache: times a
// full adversarial craft (anchor query + k PGD gradient iterations) with
// the craft-context cache on vs off, sweeping history length n and PGD
// steps k. The cached path pays the history heads once per craft instead of
// once per query, so the speedup grows with both axes.
//
// Emits BENCH_craft.json (one object per swept point plus the headline
// 10-step PGD row at the default CartPole approximator config) so the bench
// trajectory carries the measured speedup as a regression baseline;
// run_benches.sh picks this binary up like any other bench and the JSON
// lands next to bench_times.csv.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "rlattack/attack/attack.hpp"
#include "rlattack/seq2seq/model.hpp"
#include "rlattack/util/rng.hpp"

namespace {

using rlattack::attack::Budget;
using rlattack::attack::CraftInputs;
using rlattack::attack::Goal;
using rlattack::attack::PgdAttack;

struct Point {
  std::string config;
  std::size_t input_steps = 0;
  std::size_t pgd_steps = 0;
  double uncached_us = 0.0;
  double cached_us = 0.0;
  double speedup() const {
    return cached_us > 0.0 ? uncached_us / cached_us : 0.0;
  }
};

CraftInputs make_inputs(const rlattack::seq2seq::Seq2SeqConfig& cfg,
                        rlattack::util::Rng& rng) {
  CraftInputs in;
  in.action_history = rlattack::nn::Tensor({1, cfg.input_steps, cfg.actions});
  in.obs_history =
      rlattack::nn::Tensor({1, cfg.input_steps, cfg.frame_size()});
  in.current_obs = rlattack::nn::Tensor({1, cfg.frame_size()});
  for (std::size_t t = 0; t < cfg.input_steps; ++t)
    in.action_history[t * cfg.actions + rng.uniform_int(cfg.actions)] = 1.0f;
  for (float& x : in.obs_history.data()) x = rng.normal_f(0.0f, 1.0f);
  for (float& x : in.current_obs.data()) x = rng.normal_f(0.0f, 1.0f);
  return in;
}

/// Median-of-repeats per-craft latency in microseconds. Each repeat is one
/// full craft: anchor resolution plus `steps` PGD gradient iterations.
double craft_latency_us(rlattack::seq2seq::Seq2SeqModel& model,
                        const CraftInputs& inputs, std::size_t steps,
                        bool cached) {
  rlattack::attack::set_craft_cache_enabled(cached);
  PgdAttack pgd(steps, 0.3f);
  const Budget budget{Budget::Norm::kL2, 0.5f};
  const rlattack::env::ObservationBounds bounds{-10.0f, 10.0f};
  const Goal goal;
  constexpr int kWarmup = 3;
  constexpr int kRepeats = 15;
  std::vector<double> samples;
  samples.reserve(kRepeats);
  for (int r = 0; r < kWarmup + kRepeats; ++r) {
    rlattack::util::Rng rng(99);  // PGD ignores it; identical work per run
    const auto start = std::chrono::steady_clock::now();
    rlattack::nn::Tensor out =
        pgd.perturb(model, inputs, goal, budget, bounds, rng);
    const auto end = std::chrono::steady_clock::now();
    if (out.empty()) std::abort();  // keep the craft observable
    if (r >= kWarmup)
      samples.push_back(
          std::chrono::duration<double, std::micro>(end - start).count());
  }
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<long>(samples.size() / 2),
                   samples.end());
  return samples[samples.size() / 2];
}

Point run_point(const std::string& name,
                const rlattack::seq2seq::Seq2SeqConfig& cfg,
                std::size_t pgd_steps) {
  rlattack::seq2seq::Seq2SeqModel model(cfg, /*seed=*/42);
  rlattack::util::Rng rng(7);
  const CraftInputs inputs = make_inputs(cfg, rng);
  Point p;
  p.config = name;
  p.input_steps = cfg.input_steps;
  p.pgd_steps = pgd_steps;
  p.uncached_us = craft_latency_us(model, inputs, pgd_steps, false);
  p.cached_us = craft_latency_us(model, inputs, pgd_steps, true);
  std::printf(
      "%-22s n=%-3zu pgd=%-3zu uncached=%9.1fus cached=%9.1fus  %5.2fx\n",
      name.c_str(), p.input_steps, p.pgd_steps, p.uncached_us, p.cached_us,
      p.speedup());
  std::fflush(stdout);
  return p;
}

void write_json(const std::vector<Point>& points, const Point& headline) {
  std::FILE* out = std::fopen("BENCH_craft.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_micro_seq2seq: cannot write BENCH_craft.json\n");
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_micro_seq2seq\",\n");
  std::fprintf(out,
               "  \"headline\": {\"config\": \"%s\", \"input_steps\": %zu, "
               "\"pgd_steps\": %zu, \"uncached_us\": %.1f, \"cached_us\": "
               "%.1f, \"speedup\": %.2f},\n",
               headline.config.c_str(), headline.input_steps,
               headline.pgd_steps, headline.uncached_us, headline.cached_us,
               headline.speedup());
  std::fprintf(out, "  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(out,
                 "    {\"config\": \"%s\", \"input_steps\": %zu, "
                 "\"pgd_steps\": %zu, \"uncached_us\": %.1f, \"cached_us\": "
                 "%.1f, \"speedup\": %.2f}%s\n",
                 p.config.c_str(), p.input_steps, p.pgd_steps, p.uncached_us,
                 p.cached_us, p.speedup(), i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

}  // namespace

int main(int argc, char** argv) {
  rlattack::bench::init_metrics(argc, argv, "bench_micro_seq2seq");
  const bool saved = rlattack::attack::craft_cache_enabled();

  std::vector<Point> points;
  // CartPole approximator, n sweep x PGD-step sweep. n = 10 / pgd = 10 is
  // the headline acceptance row (>= 2x required).
  for (std::size_t n : {std::size_t{5}, std::size_t{10}, std::size_t{20}}) {
    for (std::size_t steps : {std::size_t{1}, std::size_t{10}}) {
      points.push_back(
          run_point("cartpole", rlattack::seq2seq::make_cartpole_seq2seq_config(
                                    n, /*output_steps=*/1),
                    steps));
    }
  }
  // One image-config point: the conv+LSTM history encoder dominates there,
  // so this is the upper end of what the cache saves.
  points.push_back(
      run_point("atari16", rlattack::seq2seq::make_atari_seq2seq_config(
                               {1, 16, 16}, 3, /*input_steps=*/5,
                               /*output_steps=*/1),
                /*pgd_steps=*/10));
  // Attention-decoder variant: the cache additionally amortises the key
  // projection K = E W_a^T.
  {
    rlattack::seq2seq::Seq2SeqConfig cfg =
        rlattack::seq2seq::make_cartpole_seq2seq_config(10, 1);
    cfg.use_attention = true;
    points.push_back(run_point("cartpole_attention", cfg, 10));
  }

  rlattack::attack::set_craft_cache_enabled(saved);

  const Point* headline = nullptr;
  for (const Point& p : points)
    if (p.config == "cartpole" && p.input_steps == 10 && p.pgd_steps == 10)
      headline = &p;
  write_json(points, *headline);
  std::printf("headline: %.2fx (cartpole n=10, 10-step PGD)\n",
              headline->speedup());
  return 0;
}
