// Figure 5: Black-box reward-focused attacks on a DQN victim playing Space
// Invaders, in both the action-prediction (m = 1) and action-sequence
// (m = 10, random future position) variants.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  rlattack::bench::init_metrics(argc, argv, "bench_fig5_invaders_reward");
  using namespace rlattack;
  core::Zoo zoo = bench::make_zoo();

  util::TableWriter table(
      {"Variant", "Attack", "L2 budget", "Reward (mean +/- std)"});
  for (bool seq : {false, true}) {
    core::RewardExperimentConfig cfg;
    cfg.game = env::Game::kMiniInvaders;
    cfg.algorithm = rl::Algorithm::kDqn;
    cfg.l2_budgets = {0.0, 0.5, 1.0, 2.0, 4.0};
    cfg.runs = bench::scaled_runs(12);
    cfg.sequence_variant = seq;
    cfg.seed = seq ? 1500 : 1400;
    core::ExperimentTiming timing;
    auto points = core::run_reward_experiment(zoo, cfg, &timing);
    bench::emit_timing(std::string("fig5_invaders_reward.") +
                           (seq ? "sequence" : "prediction"),
                       timing);
    for (const auto& p : points)
      table.add_row({seq ? "Action Sequence" : "Action Prediction",
                     attack::attack_name(p.attack), util::fmt(p.l2_budget, 2),
                     util::fmt_pm(p.mean_reward, p.stddev_reward, 1)});
  }
  bench::emit(table, "fig5_invaders_reward",
              "Figure 5: reward-focused attacks on Space Invaders (DQN)");
  std::cout << "Shape check (paper): Space Invaders needs a notably larger "
               "budget than Pong before the score collapses; all attack "
               "types perform similarly per game.\n";
  return 0;
}
