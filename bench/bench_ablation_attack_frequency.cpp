// Ablation: attack frequency (Lin et al.'s timed-attack observation,
// discussed in the paper's related work). Attacking every k-th step with a
// fixed per-sample budget should degrade reward far more gently than 1/k
// scaling would predict — frequent small nudges compound.
#include "bench_common.hpp"
#include "rlattack/core/pipeline.hpp"
#include "rlattack/util/stats.hpp"

int main(int argc, char** argv) {
  rlattack::bench::init_metrics(argc, argv, "bench_ablation_attack_frequency");
  using namespace rlattack;
  core::Zoo zoo = bench::make_zoo();
  const env::Game game = env::Game::kCartPole;
  rl::Agent& victim = zoo.victim(game, rl::Algorithm::kDqn);
  core::ApproximatorInfo approx =
      zoo.approximator(game, rl::Algorithm::kDqn, 1);

  attack::FgsmAttack fgsm;
  attack::Budget budget{attack::Budget::Norm::kL2, 1.0f};
  core::AttackSession session(victim, game, *approx.model, fgsm, budget);
  const std::size_t runs = bench::scaled_runs(12);

  util::TableWriter table(
      {"Attack every k-th step", "Reward (mean +/- std)", "Attacks/episode"});
  for (std::size_t stride : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                             std::size_t{8}, std::size_t{1000000}}) {
    core::AttackPolicy policy;
    policy.mode = stride >= 1000000 ? core::AttackPolicy::Mode::kNone
                                    : core::AttackPolicy::Mode::kEveryStep;
    policy.stride = stride;
    util::RunningStats rewards, per_episode;
    for (std::uint64_t run = 0; run < runs; ++run) {
      auto outcome = session.run_episode(policy, 6000 + run);
      rewards.add(outcome.total_reward);
      per_episode.add(static_cast<double>(outcome.attacks_attempted));
    }
    table.add_row({stride >= 1000000 ? "never (clean)" : std::to_string(stride),
                   util::fmt_pm(rewards.mean(), rewards.stddev(), 1),
                   util::fmt(per_episode.mean(), 1)});
  }
  bench::emit(table, "ablation_attack_frequency",
              "Ablation: attack frequency vs reward (FGSM, L2 = 1.0, "
              "CartPole/DQN)");
  std::cout << "Reading: halving the attack cadence (k = 2) keeps most of "
               "the damage, but sparser *periodic* attacks fade quickly — "
               "consistent with Lin et al. needing strategically timed (not "
               "periodic) injections to attack 4x less often.\n";
  return 0;
}
