// Warmup: trains (or loads) every victim agent and approximator the other
// bench binaries share, so `for b in build/bench/*` front-loads all
// training here and the per-figure binaries run pure experiments from the
// checkpoint cache. Safe to re-run: cached artefacts load in seconds.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  rlattack::bench::init_metrics(argc, argv, "bench_00_warmup");
  using namespace rlattack;
  core::Zoo zoo = bench::make_zoo();

  util::TableWriter victims({"Game", "Algorithm", "Greedy score"});
  // CartPole victims: Figures 4 and 7 attack all three algorithms.
  for (rl::Algorithm algo : {rl::Algorithm::kDqn, rl::Algorithm::kA2c,
                             rl::Algorithm::kRainbow})
    victims.add_row({"cartpole", rl::algorithm_name(algo),
                     util::fmt(zoo.victim_score(env::Game::kCartPole, algo, 5),
                               1)});
  // Image-game victims: DQN (Figs 5-6 + the approximation source) plus A2C
  // and Rainbow (time-bomb transfer victims, Figs 8-9).
  for (env::Game game : {env::Game::kMiniInvaders, env::Game::kMiniPong})
    for (rl::Algorithm algo : {rl::Algorithm::kDqn, rl::Algorithm::kA2c,
                               rl::Algorithm::kRainbow})
      victims.add_row({env::game_name(game), rl::algorithm_name(algo),
                       util::fmt(zoo.victim_score(game, algo, 5), 1)});
  bench::emit(victims, "warmup_victims", "Warmup: victim agents");

  util::TableWriter approx(
      {"Game", "Output steps m", "Input steps n", "Eval accuracy"});
  for (env::Game game : {env::Game::kCartPole, env::Game::kMiniInvaders,
                         env::Game::kMiniPong})
    for (std::size_t m : {std::size_t{1}, std::size_t{10}}) {
      core::ApproximatorInfo info =
          zoo.approximator(game, rl::Algorithm::kDqn, m);
      approx.add_row({env::game_name(game), std::to_string(m),
                      std::to_string(info.input_steps),
                      util::fmt(info.accuracy, 3)});
    }
  bench::emit(approx, "warmup_approximators",
              "Warmup: seq2seq approximators (trained from DQN traces)");
  return 0;
}
