// Ablation: Algorithm 1's input-length search. The paper justifies probing
// each candidate n for only 1% of the training budget by observing that
// early-epoch eval accuracy predicts the final ranking. This bench runs the
// cheap probes AND full trainings for each n on CartPole and compares the
// rankings.
#include "bench_common.hpp"
#include "rlattack/seq2seq/trainer.hpp"

int main(int argc, char** argv) {
  rlattack::bench::init_metrics(argc, argv, "bench_ablation_seqlen");
  using namespace rlattack;
  core::Zoo zoo = bench::make_zoo();
  const env::Game game = env::Game::kCartPole;
  const auto& episodes = zoo.episodes(game, rl::Algorithm::kDqn);

  auto make_config = [](std::size_t n) {
    return seq2seq::make_cartpole_seq2seq_config(n, 1);
  };
  seq2seq::TrainSettings settings = zoo.seq2seq_settings(game);

  util::TableWriter table(
      {"Input length n", "Probe acc (1% budget)", "Full-training acc"});
  const std::vector<std::size_t> candidates = {5, 10, 25, 50};

  seq2seq::LengthSearchResult search = seq2seq::search_input_length(
      episodes, candidates, make_config, settings, 77);

  for (const auto& [n, probe_acc] : search.probes) {
    const seq2seq::Seq2SeqConfig cfg = make_config(n);
    seq2seq::EpisodeDataset ds(episodes, cfg.input_steps, cfg.output_steps,
                               cfg.frame_size(), cfg.actions);
    util::Rng rng(78 + n);
    auto [train_idx, eval_idx] = ds.split(0.9, rng);
    seq2seq::Seq2SeqModel model(cfg, 79 + n);
    seq2seq::TrainOutcome full =
        seq2seq::train_seq2seq(model, ds, train_idx, eval_idx, settings, rng);
    table.add_row({std::to_string(n), util::fmt(probe_acc, 3),
                   util::fmt(full.eval_accuracy, 3)});
  }
  bench::emit(table, "ablation_seqlen",
              "Ablation: 1%-budget length probes vs full training "
              "(Algorithm 1 justification)");
  std::cout << "Shape check: the probe column's best n matches (or nearly "
               "matches) the full-training column's best n — the cheap "
               "search is a valid proxy. Best probe n = "
            << search.best_length << ".\n";
  return 0;
}
