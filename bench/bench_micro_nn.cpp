// Google-benchmark microbenchmarks for the NN substrate's hot paths: the
// layers that dominate attack-crafting latency (the attacker must craft a
// perturbation within one environment step).
#include <benchmark/benchmark.h>

#include "rlattack/attack/attack.hpp"
#include "rlattack/nn/conv2d.hpp"
#include "rlattack/nn/dense.hpp"
#include "rlattack/nn/kernels/gemm.hpp"
#include "rlattack/nn/lstm.hpp"
#include "rlattack/seq2seq/model.hpp"
#include "rlattack/util/thread_pool.hpp"

namespace {

using namespace rlattack;

nn::Tensor random_tensor(std::vector<std::size_t> shape, util::Rng& rng) {
  nn::Tensor t(std::move(shape));
  for (float& x : t.data()) x = rng.normal_f(0.0f, 1.0f);
  return t;
}

void BM_DenseForward(benchmark::State& state) {
  util::Rng rng(1);
  const auto width = static_cast<std::size_t>(state.range(0));
  nn::Dense dense(width, width, rng);
  nn::Tensor x = random_tensor({32, width}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(dense.forward(x));
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_DenseForward)->Arg(64)->Arg(256)->Arg(512)->Arg(1024);

void BM_DenseBackward(benchmark::State& state) {
  util::Rng rng(1);
  const auto width = static_cast<std::size_t>(state.range(0));
  nn::Dense dense(width, width, rng);
  nn::Tensor x = random_tensor({32, width}, rng);
  nn::Tensor g = random_tensor({32, width}, rng);
  dense.forward(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dense.backward(g));
    dense.zero_grad();
  }
}
BENCHMARK(BM_DenseBackward)->Arg(64)->Arg(256)->Arg(512);

/// Raw kernel throughput at classic GEMM shapes, serial vs pooled: arg 0 is
/// the square size, arg 1 the worker count (0 = RLATTACK_THREADS default).
/// Comparing /threads:1 rows against the others shows the pool speedup in
/// the CSV output.
void BM_SgemmSquare(benchmark::State& state) {
  util::Rng rng(7);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  util::ThreadPool::reset_global(threads);
  nn::Tensor a = random_tensor({n, n}, rng);
  nn::Tensor b = random_tensor({n, n}, rng);
  nn::Tensor c({n, n});
  for (auto _ : state) {
    nn::kernels::sgemm(nn::kernels::Trans::kNo, nn::kernels::Trans::kNo, n, n,
                       n, a.raw(), n, b.raw(), n, c.raw(), n, false);
    benchmark::DoNotOptimize(c.raw());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);  // FLOPs
  util::ThreadPool::reset_global(0);
}
BENCHMARK(BM_SgemmSquare)
    ->ArgNames({"n", "threads"})
    ->Args({256, 1})
    ->Args({256, 0})
    ->Args({512, 1})
    ->Args({512, 0})
    ->Args({1024, 1})
    ->Args({1024, 0});

void BM_Conv2DForward(benchmark::State& state) {
  util::Rng rng(2);
  nn::Conv2D conv(2, 8, 3, 2, 1, rng);
  nn::Tensor x = random_tensor({32, 2, 16, 16}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x));
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_Conv2DForward);

void BM_LstmForward(benchmark::State& state) {
  util::Rng rng(3);
  const auto steps = static_cast<std::size_t>(state.range(0));
  nn::Lstm lstm(64, 48, false, rng);
  nn::Tensor x = random_tensor({32, steps, 64}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(lstm.forward(x));
  state.SetItemsProcessed(state.iterations() * 32 * steps);
}
BENCHMARK(BM_LstmForward)->Arg(5)->Arg(10)->Arg(50);

void BM_LstmBackward(benchmark::State& state) {
  util::Rng rng(3);
  const auto steps = static_cast<std::size_t>(state.range(0));
  nn::Lstm lstm(64, 48, false, rng);
  nn::Tensor x = random_tensor({32, steps, 64}, rng);
  nn::Tensor g = random_tensor({32, 48}, rng);
  for (auto _ : state) {
    lstm.forward(x);
    benchmark::DoNotOptimize(lstm.backward(g));
    lstm.zero_grad();
  }
}
BENCHMARK(BM_LstmBackward)->Arg(5)->Arg(10);

/// End-to-end attack-crafting latency: one FGSM perturbation against the
/// Pong-scale seq2seq model (the per-step cost of the every-step attack).
void BM_FgsmCraftPongScale(benchmark::State& state) {
  util::Rng rng(4);
  seq2seq::Seq2SeqConfig cfg =
      seq2seq::make_atari_seq2seq_config({1, 16, 16}, 3, 5, 1);
  seq2seq::Seq2SeqModel model(cfg, 5);
  attack::CraftInputs inputs;
  inputs.action_history = random_tensor({1, 5, 3}, rng);
  inputs.obs_history = random_tensor({1, 5, 256}, rng);
  inputs.current_obs = random_tensor({1, 256}, rng);
  attack::FgsmAttack fgsm;
  attack::Budget budget{attack::Budget::Norm::kLinf, 0.1f};
  env::ObservationBounds bounds{0.0f, 1.0f};
  for (auto _ : state)
    benchmark::DoNotOptimize(
        fgsm.perturb(model, inputs, attack::Goal{}, budget, bounds, rng));
}
BENCHMARK(BM_FgsmCraftPongScale);

}  // namespace

BENCHMARK_MAIN();
