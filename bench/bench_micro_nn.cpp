// Google-benchmark microbenchmarks for the NN substrate's hot paths: the
// layers that dominate attack-crafting latency (the attacker must craft a
// perturbation within one environment step).
//
// The custom main additionally runs a direct scalar-vs-AVX2 GEMM sweep and
// writes BENCH_gemm.json (median GFLOP/s per kernel per shape at threads=1)
// before handing over to google-benchmark, so the dispatch speedup lands in
// the bench trajectory as a regression baseline.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "rlattack/attack/attack.hpp"
#include "rlattack/nn/conv2d.hpp"
#include "rlattack/nn/dense.hpp"
#include "rlattack/nn/kernels/gemm.hpp"
#include "rlattack/nn/lstm.hpp"
#include "rlattack/seq2seq/model.hpp"
#include "rlattack/util/thread_pool.hpp"

namespace {

using namespace rlattack;

nn::Tensor random_tensor(std::vector<std::size_t> shape, util::Rng& rng) {
  nn::Tensor t(std::move(shape));
  for (float& x : t.data()) x = rng.normal_f(0.0f, 1.0f);
  return t;
}

void BM_DenseForward(benchmark::State& state) {
  util::Rng rng(1);
  const auto width = static_cast<std::size_t>(state.range(0));
  nn::Dense dense(width, width, rng);
  nn::Tensor x = random_tensor({32, width}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(dense.forward(x));
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_DenseForward)->Arg(64)->Arg(256)->Arg(512)->Arg(1024);

void BM_DenseBackward(benchmark::State& state) {
  util::Rng rng(1);
  const auto width = static_cast<std::size_t>(state.range(0));
  nn::Dense dense(width, width, rng);
  nn::Tensor x = random_tensor({32, width}, rng);
  nn::Tensor g = random_tensor({32, width}, rng);
  dense.forward(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dense.backward(g));
    dense.zero_grad();
  }
}
BENCHMARK(BM_DenseBackward)->Arg(64)->Arg(256)->Arg(512);

/// Raw kernel throughput at classic GEMM shapes, serial vs pooled and
/// scalar vs SIMD: arg 0 is the square size, arg 1 the worker count (0 =
/// RLATTACK_THREADS default), arg 2 the micro-kernel (0 = scalar, 1 = avx2).
/// Comparing /threads:1 rows against the others shows the pool speedup, and
/// simd:1 against simd:0 the dispatch speedup, in the CSV output.
void BM_SgemmSquare(benchmark::State& state) {
  util::Rng rng(7);
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const auto kernel = static_cast<nn::kernels::SimdKernel>(state.range(2));
  if (kernel == nn::kernels::SimdKernel::kAvx2 &&
      !nn::kernels::avx2_available()) {
    state.SkipWithError("AVX2 not available on this host");
    return;
  }
  const nn::kernels::SimdKernel saved = nn::kernels::active_simd_kernel();
  nn::kernels::set_simd_kernel(kernel);
  util::ThreadPool::reset_global(threads);
  nn::Tensor a = random_tensor({n, n}, rng);
  nn::Tensor b = random_tensor({n, n}, rng);
  nn::Tensor c({n, n});
  for (auto _ : state) {
    nn::kernels::sgemm(nn::kernels::Trans::kNo, nn::kernels::Trans::kNo, n, n,
                       n, a.raw(), n, b.raw(), n, c.raw(), n, false);
    benchmark::DoNotOptimize(c.raw());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);  // FLOPs
  util::ThreadPool::reset_global(0);
  nn::kernels::set_simd_kernel(saved);
}
BENCHMARK(BM_SgemmSquare)
    ->ArgNames({"n", "threads", "simd"})
    ->Args({256, 1, 0})
    ->Args({256, 1, 1})
    ->Args({256, 0, 1})
    ->Args({512, 1, 0})
    ->Args({512, 1, 1})
    ->Args({512, 0, 1})
    ->Args({1024, 1, 0})
    ->Args({1024, 1, 1})
    ->Args({1024, 0, 1});

void BM_Conv2DForward(benchmark::State& state) {
  util::Rng rng(2);
  nn::Conv2D conv(2, 8, 3, 2, 1, rng);
  nn::Tensor x = random_tensor({32, 2, 16, 16}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x));
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_Conv2DForward);

void BM_LstmForward(benchmark::State& state) {
  util::Rng rng(3);
  const auto steps = static_cast<std::size_t>(state.range(0));
  nn::Lstm lstm(64, 48, false, rng);
  nn::Tensor x = random_tensor({32, steps, 64}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(lstm.forward(x));
  state.SetItemsProcessed(state.iterations() * 32 * steps);
}
BENCHMARK(BM_LstmForward)->Arg(5)->Arg(10)->Arg(50);

void BM_LstmBackward(benchmark::State& state) {
  util::Rng rng(3);
  const auto steps = static_cast<std::size_t>(state.range(0));
  nn::Lstm lstm(64, 48, false, rng);
  nn::Tensor x = random_tensor({32, steps, 64}, rng);
  nn::Tensor g = random_tensor({32, 48}, rng);
  for (auto _ : state) {
    lstm.forward(x);
    benchmark::DoNotOptimize(lstm.backward(g));
    lstm.zero_grad();
  }
}
BENCHMARK(BM_LstmBackward)->Arg(5)->Arg(10);

/// End-to-end attack-crafting latency: one FGSM perturbation against the
/// Pong-scale seq2seq model (the per-step cost of the every-step attack).
void BM_FgsmCraftPongScale(benchmark::State& state) {
  util::Rng rng(4);
  seq2seq::Seq2SeqConfig cfg =
      seq2seq::make_atari_seq2seq_config({1, 16, 16}, 3, 5, 1);
  seq2seq::Seq2SeqModel model(cfg, 5);
  attack::CraftInputs inputs;
  inputs.action_history = random_tensor({1, 5, 3}, rng);
  inputs.obs_history = random_tensor({1, 5, 256}, rng);
  inputs.current_obs = random_tensor({1, 256}, rng);
  attack::FgsmAttack fgsm;
  attack::Budget budget{attack::Budget::Norm::kLinf, 0.1f};
  env::ObservationBounds bounds{0.0f, 1.0f};
  for (auto _ : state)
    benchmark::DoNotOptimize(
        fgsm.perturb(model, inputs, attack::Goal{}, budget, bounds, rng));
}
BENCHMARK(BM_FgsmCraftPongScale);

/// One row of the direct dispatch sweep: median per-call latency of C = A B
/// at threads=1 under each micro-kernel. Squares cover the classic shapes;
/// the rectangular rows mirror the seq2seq hot paths (flattened key
/// projection [B·n,H]·[H,E]ᵀ scale and the LSTM gate block [B,4H]).
struct GemmPoint {
  std::size_t m = 0, n = 0, k = 0;
  double scalar_us = 0.0;
  double avx2_us = 0.0;
  double gflops(double us) const {
    return us > 0.0 ? 2.0 * static_cast<double>(m * n * k) / (us * 1e3) : 0.0;
  }
  double speedup() const {
    return avx2_us > 0.0 ? scalar_us / avx2_us : 0.0;
  }
};

double gemm_latency_us(nn::kernels::SimdKernel kernel, std::size_t m,
                       std::size_t n, std::size_t k) {
  nn::kernels::set_simd_kernel(kernel);
  util::Rng rng(11);
  nn::Tensor a = random_tensor({m, k}, rng);
  nn::Tensor b = random_tensor({k, n}, rng);
  nn::Tensor c({m, n});
  // Size the inner repeat count so every sample is a few ms even at the
  // smallest shapes; median of kSamples absorbs scheduler noise.
  const double flop = 2.0 * static_cast<double>(m * n * k);
  const auto iters = std::max<std::size_t>(
      1, static_cast<std::size_t>(2.0e8 / flop));
  constexpr int kWarmup = 2;
  constexpr int kSamples = 9;
  std::vector<double> samples;
  samples.reserve(kSamples);
  for (int s = 0; s < kWarmup + kSamples; ++s) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      nn::kernels::sgemm(nn::kernels::Trans::kNo, nn::kernels::Trans::kNo, m,
                         n, k, a.raw(), k, b.raw(), n, c.raw(), n, false);
      benchmark::DoNotOptimize(c.raw());
    }
    const auto end = std::chrono::steady_clock::now();
    if (s >= kWarmup)
      samples.push_back(
          std::chrono::duration<double, std::micro>(end - start).count() /
          static_cast<double>(iters));
  }
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<long>(samples.size() / 2),
                   samples.end());
  return samples[samples.size() / 2];
}

void write_gemm_json(const std::vector<GemmPoint>& points) {
  std::FILE* out = std::fopen("BENCH_gemm.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_micro_nn: cannot write BENCH_gemm.json\n");
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_micro_nn\",\n");
  std::fprintf(out, "  \"threads\": 1,\n  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const GemmPoint& p = points[i];
    std::fprintf(out,
                 "    {\"m\": %zu, \"n\": %zu, \"k\": %zu, "
                 "\"scalar_us\": %.2f, \"scalar_gflops\": %.1f, "
                 "\"avx2_us\": %.2f, \"avx2_gflops\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 p.m, p.n, p.k, p.scalar_us, p.gflops(p.scalar_us), p.avx2_us,
                 p.gflops(p.avx2_us), p.speedup(),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

/// Runs the sweep and emits BENCH_gemm.json. Skipped (no file written) when
/// the host lacks AVX2 — a one-kernel sweep carries no dispatch signal.
void run_gemm_sweep() {
  if (!nn::kernels::avx2_available()) {
    std::printf("gemm sweep skipped: AVX2 not available on this host\n");
    return;
  }
  const nn::kernels::SimdKernel saved = nn::kernels::active_simd_kernel();
  util::ThreadPool::reset_global(1);
  const std::size_t shapes[][3] = {
      {64, 64, 64},   {128, 128, 128}, {256, 256, 256},
      {512, 512, 512}, {1024, 1024, 1024},
      {320, 48, 48},  // flattened key projection, B=32 n=10 H=E=48 scale
      {32, 192, 48},  // LSTM gate block, B=32 4H=192
  };
  std::vector<GemmPoint> points;
  for (const auto& s : shapes) {
    GemmPoint p;
    p.m = s[0];
    p.n = s[1];
    p.k = s[2];
    p.scalar_us = gemm_latency_us(nn::kernels::SimdKernel::kScalar, p.m, p.n,
                                  p.k);
    p.avx2_us = gemm_latency_us(nn::kernels::SimdKernel::kAvx2, p.m, p.n,
                                p.k);
    std::printf(
        "sgemm %4zux%-4zux%-4zu scalar=%8.2fus (%5.1f GF/s) "
        "avx2=%8.2fus (%5.1f GF/s)  %5.2fx\n",
        p.m, p.n, p.k, p.scalar_us, p.gflops(p.scalar_us), p.avx2_us,
        p.gflops(p.avx2_us), p.speedup());
    std::fflush(stdout);
    points.push_back(p);
  }
  util::ThreadPool::reset_global(0);
  nn::kernels::set_simd_kernel(saved);
  write_gemm_json(points);
}

}  // namespace

int main(int argc, char** argv) {
  run_gemm_sweep();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
