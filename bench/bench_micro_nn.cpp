// Google-benchmark microbenchmarks for the NN substrate's hot paths: the
// layers that dominate attack-crafting latency (the attacker must craft a
// perturbation within one environment step).
#include <benchmark/benchmark.h>

#include "rlattack/attack/attack.hpp"
#include "rlattack/nn/conv2d.hpp"
#include "rlattack/nn/dense.hpp"
#include "rlattack/nn/lstm.hpp"
#include "rlattack/seq2seq/model.hpp"

namespace {

using namespace rlattack;

nn::Tensor random_tensor(std::vector<std::size_t> shape, util::Rng& rng) {
  nn::Tensor t(std::move(shape));
  for (float& x : t.data()) x = rng.normal_f(0.0f, 1.0f);
  return t;
}

void BM_DenseForward(benchmark::State& state) {
  util::Rng rng(1);
  const auto width = static_cast<std::size_t>(state.range(0));
  nn::Dense dense(width, width, rng);
  nn::Tensor x = random_tensor({32, width}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(dense.forward(x));
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_DenseForward)->Arg(64)->Arg(256);

void BM_DenseBackward(benchmark::State& state) {
  util::Rng rng(1);
  const auto width = static_cast<std::size_t>(state.range(0));
  nn::Dense dense(width, width, rng);
  nn::Tensor x = random_tensor({32, width}, rng);
  nn::Tensor g = random_tensor({32, width}, rng);
  dense.forward(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dense.backward(g));
    dense.zero_grad();
  }
}
BENCHMARK(BM_DenseBackward)->Arg(64)->Arg(256);

void BM_Conv2DForward(benchmark::State& state) {
  util::Rng rng(2);
  nn::Conv2D conv(2, 8, 3, 2, 1, rng);
  nn::Tensor x = random_tensor({32, 2, 16, 16}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x));
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_Conv2DForward);

void BM_LstmForward(benchmark::State& state) {
  util::Rng rng(3);
  const auto steps = static_cast<std::size_t>(state.range(0));
  nn::Lstm lstm(64, 48, false, rng);
  nn::Tensor x = random_tensor({32, steps, 64}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(lstm.forward(x));
  state.SetItemsProcessed(state.iterations() * 32 * steps);
}
BENCHMARK(BM_LstmForward)->Arg(5)->Arg(10)->Arg(50);

void BM_LstmBackward(benchmark::State& state) {
  util::Rng rng(3);
  const auto steps = static_cast<std::size_t>(state.range(0));
  nn::Lstm lstm(64, 48, false, rng);
  nn::Tensor x = random_tensor({32, steps, 64}, rng);
  nn::Tensor g = random_tensor({32, 48}, rng);
  for (auto _ : state) {
    lstm.forward(x);
    benchmark::DoNotOptimize(lstm.backward(g));
    lstm.zero_grad();
  }
}
BENCHMARK(BM_LstmBackward)->Arg(5)->Arg(10);

/// End-to-end attack-crafting latency: one FGSM perturbation against the
/// Pong-scale seq2seq model (the per-step cost of the every-step attack).
void BM_FgsmCraftPongScale(benchmark::State& state) {
  util::Rng rng(4);
  seq2seq::Seq2SeqConfig cfg =
      seq2seq::make_atari_seq2seq_config({1, 16, 16}, 3, 5, 1);
  seq2seq::Seq2SeqModel model(cfg, 5);
  attack::CraftInputs inputs;
  inputs.action_history = random_tensor({1, 5, 3}, rng);
  inputs.obs_history = random_tensor({1, 5, 256}, rng);
  inputs.current_obs = random_tensor({1, 256}, rng);
  attack::FgsmAttack fgsm;
  attack::Budget budget{attack::Budget::Norm::kLinf, 0.1f};
  env::ObservationBounds bounds{0.0f, 1.0f};
  for (auto _ : state)
    benchmark::DoNotOptimize(
        fgsm.perturb(model, inputs, attack::Goal{}, budget, bounds, rng));
}
BENCHMARK(BM_FgsmCraftPongScale);

}  // namespace

BENCHMARK_MAIN();
