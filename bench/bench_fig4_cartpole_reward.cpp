// Figure 4: Black-box reward-focused attacks on DQN, A2C and Rainbow
// victims playing CartPole. Reward vs L2 perturbation budget for Gaussian
// noise, FGSM and PGD; error bars from repeated runs.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  rlattack::bench::init_metrics(argc, argv, "bench_fig4_cartpole_reward");
  using namespace rlattack;
  core::Zoo zoo = bench::make_zoo();

  util::TableWriter table(
      {"Algorithm", "Attack", "L2 budget", "Reward (mean +/- std)"});
  const rl::Algorithm algos[] = {rl::Algorithm::kDqn, rl::Algorithm::kA2c,
                                 rl::Algorithm::kRainbow};
  for (rl::Algorithm algo : algos) {
    core::RewardExperimentConfig cfg;
    cfg.game = env::Game::kCartPole;
    cfg.algorithm = algo;
    cfg.l2_budgets = {0.0, 0.25, 0.5, 1.0, 2.0};
    cfg.runs = bench::scaled_runs(12);
    cfg.seed = 1000 + static_cast<std::uint64_t>(algo);
    core::ExperimentTiming timing;
    auto points = core::run_reward_experiment(zoo, cfg, &timing);
    bench::emit_timing("fig4_cartpole_reward." + rl::algorithm_name(algo),
                       timing);
    for (const auto& p : points)
      table.add_row({rl::algorithm_name(algo), attack::attack_name(p.attack),
                     util::fmt(p.l2_budget, 2),
                     util::fmt_pm(p.mean_reward, p.stddev_reward, 1)});
  }
  bench::emit(table, "fig4_cartpole_reward",
              "Figure 4: reward-focused attacks on CartPole (DQN/A2C/"
              "Rainbow)");
  std::cout << "Shape check (paper): reward decreases as the L2 budget "
               "grows; Gaussian jamming tracks FGSM/PGD closely (the "
               "methodological finding); variance across runs is large.\n";
  return 0;
}
