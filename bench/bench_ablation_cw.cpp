// Ablation: the CW-style attack the paper declined to run ("the large
// number of iterations required makes it expensive to execute in real
// time"). This compares per-sample flip rate AND realised L2 against
// FGSM/PGD at the same budget ceiling, plus crafting cost per sample — so
// the paper's feasibility argument is quantified, not just asserted.
#include <chrono>

#include "bench_common.hpp"
#include "rlattack/core/pipeline.hpp"

int main(int argc, char** argv) {
  rlattack::bench::init_metrics(argc, argv, "bench_ablation_cw");
  using namespace rlattack;
  core::Zoo zoo = bench::make_zoo();
  const env::Game game = env::Game::kCartPole;
  rl::Agent& victim = zoo.victim(game, rl::Algorithm::kDqn);
  core::ApproximatorInfo approx =
      zoo.approximator(game, rl::Algorithm::kDqn, 1);
  attack::Budget budget{attack::Budget::Norm::kL2, 1.0f};
  const std::size_t runs = bench::scaled_runs(8);

  util::TableWriter table({"Attack", "Flip rate", "Mean realised L2",
                           "Crafting us/sample"});
  for (attack::Kind kind : {attack::Kind::kFgsm, attack::Kind::kPgd,
                            attack::Kind::kCw, attack::Kind::kJsma}) {
    attack::AttackPtr attacker = attack::make_attack(kind);
    core::AttackSession session(victim, game, *approx.model, *attacker,
                                budget);
    core::AttackPolicy policy;
    policy.mode = core::AttackPolicy::Mode::kEveryStep;
    std::size_t flips = 0, samples = 0;
    double l2_sum = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (std::uint64_t run = 0; run < runs; ++run) {
      auto outcome = session.run_episode(policy, 7000 + run);
      flips += outcome.immediate_flips;
      samples += outcome.attacks_attempted;
      l2_sum += outcome.mean_l2 * static_cast<double>(
                    outcome.attacks_attempted);
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    table.add_row(
        {attack::attack_name(kind),
         util::fmt(samples
                       ? static_cast<double>(flips) / static_cast<double>(samples)
                       : 0.0,
                   3),
         util::fmt(samples ? l2_sum / static_cast<double>(samples) : 0.0, 3),
         util::fmt(samples ? static_cast<double>(elapsed) /
                                 static_cast<double>(samples)
                           : 0.0,
                   1)});
  }
  bench::emit(table, "ablation_cw",
              "Ablation: attack-family comparison (L2 budget 1.0, "
              "CartPole/DQN)");
  std::cout << "Shape check: CW reaches a similar flip rate with a smaller "
               "realised perturbation, at a much higher per-sample cost — "
               "quantifying the paper's reason for excluding it.\n";
  return 0;
}
