// Figure 7: transferability of crafted samples (fraction that flip the
// victim's action) vs L2 budget, CartPole victims trained with DQN, A2C and
// Rainbow. This is where FGSM/PGD clearly beat Gaussian noise even though
// reward damage (Figs 4-6) is comparable.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  rlattack::bench::init_metrics(argc, argv, "bench_fig7_transferability");
  using namespace rlattack;
  core::Zoo zoo = bench::make_zoo();

  util::TableWriter table(
      {"Algorithm", "Attack", "L2 budget", "Transfer rate", "Samples"});
  const rl::Algorithm algos[] = {rl::Algorithm::kDqn, rl::Algorithm::kA2c,
                                 rl::Algorithm::kRainbow};
  for (rl::Algorithm algo : algos) {
    core::TransferabilityConfig cfg;
    cfg.game = env::Game::kCartPole;
    cfg.algorithm = algo;
    cfg.l2_budgets = {0.25, 0.5, 1.0, 2.0};
    cfg.runs = bench::scaled_runs(10);
    cfg.seed = 2000 + static_cast<std::uint64_t>(algo);
    core::ExperimentTiming timing;
    auto points = core::run_transferability_experiment(zoo, cfg, &timing);
    bench::emit_timing("fig7_transferability." + rl::algorithm_name(algo),
                       timing);
    for (const auto& p : points)
      table.add_row({rl::algorithm_name(algo), attack::attack_name(p.attack),
                     util::fmt(p.l2_budget, 2), util::fmt(p.transfer_rate, 3),
                     std::to_string(p.samples)});
  }
  bench::emit(table, "fig7_transferability",
              "Figure 7: transferability vs L2 budget on CartPole");
  std::cout << "Shape check (paper): FGSM and PGD achieve strictly higher "
               "transfer rates than Gaussian noise at equal L2 budget, "
               "across all three training algorithms.\n";
  return 0;
}
