// Figure 6: Black-box reward-focused attacks on a DQN victim playing Pong,
// action-prediction and action-sequence variants.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  rlattack::bench::init_metrics(argc, argv, "bench_fig6_pong_reward");
  using namespace rlattack;
  core::Zoo zoo = bench::make_zoo();

  util::TableWriter table(
      {"Variant", "Attack", "L2 budget", "Reward (mean +/- std)"});
  for (bool seq : {false, true}) {
    core::RewardExperimentConfig cfg;
    cfg.game = env::Game::kMiniPong;
    cfg.algorithm = rl::Algorithm::kDqn;
    cfg.l2_budgets = {0.0, 0.2, 0.4, 0.8, 1.6};
    cfg.runs = bench::scaled_runs(12);
    cfg.sequence_variant = seq;
    cfg.seed = seq ? 1700 : 1600;
    core::ExperimentTiming timing;
    auto points = core::run_reward_experiment(zoo, cfg, &timing);
    bench::emit_timing(std::string("fig6_pong_reward.") +
                           (seq ? "sequence" : "prediction"),
                       timing);
    for (const auto& p : points)
      table.add_row({seq ? "Action Sequence" : "Action Prediction",
                     attack::attack_name(p.attack), util::fmt(p.l2_budget, 2),
                     util::fmt_pm(p.mean_reward, p.stddev_reward, 1)});
  }
  bench::emit(table, "fig6_pong_reward",
              "Figure 6: reward-focused attacks on Pong (DQN)");
  std::cout << "Shape check (paper): Pong collapses at a much smaller L2 "
               "budget than Space Invaders (0.8 vs 4.0 in the paper).\n";
  return 0;
}
