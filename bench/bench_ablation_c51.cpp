// Ablation: the distributional (C51) value head — the one Rainbow component
// DESIGN.md scoped out of the default victim. Trains DQN, Rainbow (our
// default variant) and C51 on CartPole under identical budgets and reports
// training episodes-to-target and final greedy score, completing the
// Hessel et al. component coverage.
#include <filesystem>

#include "bench_common.hpp"
#include "rlattack/env/cartpole.hpp"
#include "rlattack/nn/serialize.hpp"
#include "rlattack/rl/q_agent.hpp"
#include "rlattack/rl/trainer.hpp"
#include "rlattack/util/stats.hpp"

int main(int argc, char** argv) {
  rlattack::bench::init_metrics(argc, argv, "bench_ablation_c51");
  using namespace rlattack;
  const double scale = core::bench_scale_from_env();
  util::TableWriter table(
      {"Agent", "Episodes used", "Reached target", "Greedy score"});

  struct Variant {
    const char* label;
    rl::AgentPtr (*make)(const rl::ObsSpec&, std::size_t, std::uint64_t);
  };
  const Variant variants[] = {
      {"dqn", rl::make_dqn_agent},
      {"rainbow (no C51)", rl::make_rainbow_agent},
      {"c51 (+double/PER/n-step)", rl::make_c51_agent},
  };
  for (const Variant& v : variants) {
    rl::AgentPtr agent = v.make(rl::ObsSpec{{4}}, 2, 33);
    const std::string ckpt =
        std::string("checkpoints/ablation_c51_") +
        (v.label[0] == 'd' ? "dqn" : v.label[0] == 'r' ? "rainbow" : "c51") +
        ".ckpt";
    std::size_t episodes_used = 0;
    bool reached = false;
    if (std::filesystem::exists(ckpt) &&
        nn::load_parameters(agent->network(), ckpt)) {
      episodes_used = 0;  // cached; training stats not re-derived
      reached = true;
    } else {
      env::CartPole train_env(env::CartPole::Config{}, 33);
      rl::TrainConfig tc;
      tc.episodes = static_cast<std::size_t>(350 * scale);
      tc.target_reward = 170.0;
      rl::TrainResult result = rl::train_agent(*agent, train_env, tc);
      episodes_used = result.episode_rewards.size();
      reached = result.reached_target;
      nn::save_parameters(agent->network(), ckpt);
    }
    env::CartPole eval_env(env::CartPole::Config{}, 34);
    const double score =
        util::mean_of(rl::evaluate_agent(*agent, eval_env, 8, 34));
    table.add_row({v.label,
                   episodes_used == 0 ? "(cached)"
                                      : std::to_string(episodes_used),
                   reached ? "yes" : "no", util::fmt(score, 1)});
  }
  bench::emit(table, "ablation_c51",
              "Ablation: distributional value head (CartPole, equal "
              "budgets)");
  std::cout << "Shape check (Hessel et al.): the extended variants reach "
               "the target in no more episodes than plain DQN.\n";
  return 0;
}
