// Table 2: black-box approximation accuracy per game, single-action and
// 10-step sequence ("Seq") variants, against DQN-trained victims — plus the
// head configuration and the input sequence length chosen by Algorithm 1.
#include "bench_common.hpp"
#include "rlattack/util/stats.hpp"

namespace {

std::string head_description(rlattack::env::Game game, bool obs_head) {
  // Scaled-down analogues of the paper's per-game heads (DESIGN.md).
  using rlattack::env::Game;
  if (game == Game::kCartPole) return obs_head ? "2 LSTM, 1 Dense" : "1 Dense";
  return obs_head ? "2 Conv, 2 LSTM, 2 Dense" : "2 Conv, 2 Dense";
}

}  // namespace

int main(int argc, char** argv) {
  rlattack::bench::init_metrics(argc, argv, "bench_table2_seq2seq_accuracy");
  using namespace rlattack;
  core::Zoo zoo = bench::make_zoo();

  util::TableWriter table({"Game", "Acc", "Obs Head", "Action Head",
                           "Current Obs Head", "Input Seq"});
  const env::Game games[] = {env::Game::kCartPole, env::Game::kMiniInvaders,
                             env::Game::kMiniPong};
  util::RunningStats averages;
  for (env::Game game : games) {
    const double score = zoo.victim_score(game, rl::Algorithm::kDqn, 5);
    std::cout << "victim dqn/" << env::game_name(game)
              << " greedy score: " << util::fmt(score, 1) << "\n";
    for (std::size_t m : {std::size_t{1}, std::size_t{10}}) {
      core::ApproximatorInfo info =
          zoo.approximator(game, rl::Algorithm::kDqn, m);
      const std::string label =
          env::game_name(game) + (m == 10 ? " Seq" : "");
      table.add_row({label, util::fmt(100.0 * info.accuracy, 0) + "%",
                     head_description(game, true), "2 LSTM, 1 Dense",
                     head_description(game, false),
                     std::to_string(info.input_steps)});
      averages.add(info.accuracy);
    }
  }
  table.add_row({"Average", util::fmt(100.0 * averages.mean(), 0) + "%", "-",
                 "-", "-", "-"});
  bench::emit(table, "table2_seq2seq_accuracy",
              "Table 2: seq2seq approximation accuracy (victims trained "
              "with DQN)");
  std::cout << "Shape check (paper): all accuracies well above chance; "
               "average ~90%; Space Invaders hardest; Pong needs the "
               "shortest input history.\n";
  return 0;
}
