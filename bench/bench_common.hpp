// Shared scaffolding for the experiment bench binaries: a Zoo wired to the
// shared checkpoint cache, bench-scale plumbing and CSV output next to the
// working directory.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "rlattack/core/experiments.hpp"
#include "rlattack/core/zoo.hpp"
#include "rlattack/obs/forensics.hpp"
#include "rlattack/obs/metrics.hpp"
#include "rlattack/obs/trace.hpp"
#include "rlattack/util/table.hpp"

namespace rlattack::bench {

/// Wires the observability flags to their process-exit exports and stamps
/// the binary name into the JSON. Call first thing in every bench main.
///   --metrics-out <path>      METRICS JSON (RLATTACK_METRICS_OUT equivalent)
///   --trace-out [path]        Chrome/Perfetto trace JSON; enables tracing.
///                             Bare flag defaults to <binary>_trace.json.
///   --forensics-out [path]    per-step forensics JSONL; enables the stream.
///                             Bare flag defaults to <binary>_forensics.jsonl.
inline void init_metrics(int argc, char** argv, const std::string& binary) {
  obs::set_export_binary(binary);
  // A flag's [path] operand is the next argv unless that is missing or
  // itself a flag — then the default path keyed on the binary name is used.
  const auto optional_path = [&](int i, const std::string& fallback) {
    if (i + 1 < argc && argv[i + 1][0] != '-') return std::string(argv[i + 1]);
    return fallback;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--metrics-out" && i + 1 < argc) {
      obs::set_export_path(argv[i + 1]);
    } else if (arg == "--trace-out") {
      obs::set_trace_path(optional_path(i, binary + "_trace.json"));
      obs::set_trace_enabled(true);
    } else if (arg == "--forensics-out") {
      obs::set_forensics_path(optional_path(i, binary + "_forensics.jsonl"));
    }
  }
}

/// Builds the shared Zoo. All bench binaries use the same cache directory,
/// so victims/approximators are trained once by whichever bench runs first
/// and reused afterwards.
inline core::Zoo make_zoo() {
  core::ZooConfig config;
  config.cache_dir = "checkpoints";
  config.scale = core::bench_scale_from_env();
  config.seed = 42;
  return core::Zoo(config);
}

/// Number of per-point episode runs, scaled with the bench scale but never
/// below 4. The paper uses 20 at full scale; RLATTACK_BENCH_SCALE > 1
/// buys proportionally more runs (tighter error bars on bigger machines),
/// < 1 trades precision for wall-clock.
inline std::size_t scaled_runs(std::size_t paper_runs = 20) {
  const double scale = core::bench_scale_from_env();
  const auto runs =
      static_cast<std::size_t>(static_cast<double>(paper_runs) * scale);
  return std::max<std::size_t>(4, runs);
}

/// Prints one machine-parseable wall-clock line per experiment; run_benches.sh
/// collects these into bench_times.csv / BENCH_experiments.json.
inline void emit_timing(const std::string& experiment,
                        const core::ExperimentTiming& t) {
  std::printf(
      "[timing] experiment=%s threads=%zu episodes=%zu craft_batch=%zu "
      "eval_batch=%zu wall_s=%.3f\n",
      experiment.c_str(), t.threads, t.episodes, t.craft_batch, t.eval_batch,
      t.wall_seconds);
  // Timing lines must survive a later abort in the same binary (stdout is
  // block-buffered when redirected to run_benches.sh's log).
  std::fflush(stdout);
}

/// Prints the table and writes it as CSV alongside the working directory.
inline void emit(const util::TableWriter& table, const std::string& name,
                 const std::string& caption) {
  std::cout << "\n=== " << caption << " ===\n" << table.to_string();
  const std::string path = name + ".csv";
  if (table.write_csv(path))
    std::cout << "(rows written to " << path << ")\n";
}

}  // namespace rlattack::bench
