// Ablation: PGD iteration count. The paper adopts PGD as "an iterative
// version of FGSM" that finds smaller/better perturbations at the cost of
// one gradient pass per step. This bench sweeps the iteration count at a
// fixed L2 budget and reports the immediate flip rate on the victim
// (1 step reproduces FGSM's behaviour, more steps should not do worse).
#include "bench_common.hpp"
#include "rlattack/core/pipeline.hpp"

int main(int argc, char** argv) {
  rlattack::bench::init_metrics(argc, argv, "bench_ablation_pgd_steps");
  using namespace rlattack;
  core::Zoo zoo = bench::make_zoo();
  const env::Game game = env::Game::kCartPole;
  rl::Agent& victim = zoo.victim(game, rl::Algorithm::kDqn);
  core::ApproximatorInfo approx =
      zoo.approximator(game, rl::Algorithm::kDqn, 1);

  util::TableWriter table({"PGD steps", "Flip rate", "Samples"});
  attack::Budget budget{attack::Budget::Norm::kL2, 0.5f};
  const std::size_t runs = bench::scaled_runs(10);
  for (std::size_t steps : {std::size_t{1}, std::size_t{3}, std::size_t{5},
                            std::size_t{10}, std::size_t{20}}) {
    attack::PgdAttack pgd(steps, 1.0f / static_cast<float>(steps) * 1.5f);
    core::AttackSession session(victim, game, *approx.model, pgd, budget);
    core::AttackPolicy policy;
    policy.mode = core::AttackPolicy::Mode::kEveryStep;
    std::size_t flips = 0, samples = 0;
    for (std::uint64_t run = 0; run < runs; ++run) {
      auto outcome = session.run_episode(policy, 5000 + run);
      flips += outcome.immediate_flips;
      samples += outcome.attacks_attempted;
    }
    table.add_row({std::to_string(steps),
                   util::fmt(samples ? static_cast<double>(flips) /
                                           static_cast<double>(samples)
                                     : 0.0,
                             3),
                   std::to_string(samples)});
  }
  bench::emit(table, "ablation_pgd_steps",
              "Ablation: PGD iteration count vs victim flip rate "
              "(L2 budget 0.5, CartPole/DQN)");
  std::cout << "Shape check: flip rate is non-decreasing (within noise) in "
               "the iteration count; most of the benefit arrives within a "
               "few steps.\n";
  return 0;
}
