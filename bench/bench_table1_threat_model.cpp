// Table 1: threat-model comparison. Static reconstruction of the paper's
// attacker-capability matrix — this repo's attack is the only fully
// black-box row.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  rlattack::bench::init_metrics(argc, argv, "bench_table1_threat_model");
  using namespace rlattack;
  util::TableWriter table = core::threat_model_table();
  bench::emit(table, "table1_threat_model",
              "Table 1: attacker access required by prior work vs ours");
  std::cout << "Shape check: the final row requires none of the four "
               "capabilities (fully black-box).\n";
  return 0;
}
