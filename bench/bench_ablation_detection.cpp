// Ablation: time-bomb stealth (Section 5.4's deployment argument). The
// paper asserts every-step perturbation "can easily trigger detection"
// while the single-frame time-bomb needs only one injection. A stateful
// delta-norm detector (Chen et al. 2019 style) calibrated on clean play is
// run over (a) clean episodes, (b) every-step FGSM, (c) one-frame
// time-bomb episodes, reporting alarm rates.
#include "bench_common.hpp"
#include "rlattack/core/detector.hpp"
#include "rlattack/core/pipeline.hpp"
#include "rlattack/rl/trainer.hpp"

int main(int argc, char** argv) {
  rlattack::bench::init_metrics(argc, argv, "bench_ablation_detection");
  using namespace rlattack;
  core::Zoo zoo = bench::make_zoo();
  const env::Game game = env::Game::kCartPole;
  rl::Agent& victim = zoo.victim(game, rl::Algorithm::kDqn);
  core::ApproximatorInfo approx =
      zoo.approximator(game, rl::Algorithm::kDqn, 10);

  // Calibrate the defender on clean observation traces.
  core::StatefulDetector detector;
  detector.calibrate(zoo.episodes(game, rl::Algorithm::kDqn));

  attack::FgsmAttack fgsm;
  attack::Budget budget{attack::Budget::Norm::kLinf, 0.5f};
  core::AttackSession session(victim, game, *approx.model, fgsm, budget);
  const std::size_t runs = bench::scaled_runs(15);

  auto alarm_rate = [&](const core::AttackPolicy& base_policy,
                        std::uint64_t seed_base) {
    std::size_t alarms = 0;
    for (std::uint64_t run = 0; run < runs; ++run) {
      core::AttackPolicy policy = base_policy;
      policy.record_frames = true;
      auto outcome = session.run_episode(policy, seed_base + run);
      detector.reset();
      bool alarmed = false;
      for (const nn::Tensor& frame : outcome.delivered_frames)
        alarmed = detector.observe(frame);
      if (alarmed) ++alarms;
    }
    return static_cast<double>(alarms) / static_cast<double>(runs);
  };

  core::AttackPolicy clean;
  core::AttackPolicy every;
  every.mode = core::AttackPolicy::Mode::kEveryStep;
  core::AttackPolicy bomb;
  bomb.mode = core::AttackPolicy::Mode::kSingleStep;
  bomb.trigger_step = approx.input_steps + 5;
  bomb.goal_mode = attack::Goal::Mode::kTargeted;
  bomb.position = 5;

  util::TableWriter table({"Scenario", "Detector alarm rate"});
  table.add_row({"clean play", util::fmt(alarm_rate(clean, 9000), 2)});
  table.add_row(
      {"every-step FGSM", util::fmt(alarm_rate(every, 9100), 2)});
  table.add_row(
      {"time-bomb (1 frame)", util::fmt(alarm_rate(bomb, 9200), 2)});
  bench::emit(table, "ablation_detection",
              "Ablation: stateful detection vs attack cadence "
              "(CartPole/DQN, Linf 0.5)");
  std::cout << "Shape check (paper Section 5.4): every-step attacks alarm "
               "the detector; the single-frame time-bomb stays below the "
               "alarm threshold, like clean play.\n";
  return 0;
}
