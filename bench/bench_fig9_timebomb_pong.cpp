// Figure 9: the time-bomb attack on Pong — same protocol as Figure 8; the
// paper finds Pong harder to sabotage than Space Invaders.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  rlattack::bench::init_metrics(argc, argv, "bench_fig9_timebomb_pong");
  using namespace rlattack;
  core::Zoo zoo = bench::make_zoo();

  util::TableWriter table(
      {"Victim", "Epsilon (Linf)", "Delay", "Success rate", "Trials"});
  const rl::Algorithm victims[] = {rl::Algorithm::kA2c,
                                   rl::Algorithm::kRainbow};
  for (rl::Algorithm victim : victims) {
    for (float eps : {0.3f, 0.7f}) {
      core::TimeBombConfig cfg;
      cfg.game = env::Game::kMiniPong;
      cfg.victim_algorithm = victim;
      cfg.approximator_source = rl::Algorithm::kDqn;
      cfg.epsilon_linf = eps;
      cfg.delays = {1, 2, 3, 4, 5, 6, 7, 8, 9};
      cfg.runs = bench::scaled_runs();
      cfg.seed = 4000 + static_cast<std::uint64_t>(victim) * 100 +
                 static_cast<std::uint64_t>(eps * 10);
      core::ExperimentTiming timing;
      auto points = core::run_timebomb_experiment(zoo, cfg, &timing);
      bench::emit_timing("fig9_timebomb_pong." + rl::algorithm_name(victim) +
                             ".eps" + util::fmt(eps, 1),
                         timing);
      for (const auto& p : points)
        table.add_row({rl::algorithm_name(victim), util::fmt(eps, 1),
                       std::to_string(p.delay), util::fmt(p.success_rate, 3),
                       std::to_string(p.trials)});
    }
  }
  bench::emit(table, "fig9_timebomb_pong",
              "Figure 9: time-bomb attack on Pong (seq2seq trained on DQN)");
  std::cout << "Shape check (paper): lower success than Space Invaders at "
               "equal epsilon (Pong is harder to sabotage); success decays "
               "with delay; eps = 0.7 lifts success substantially.\n";
  return 0;
}
