// Figure 3: real adversarial input generated for the Pong game. Writes the
// paper's four panels as PGM images (original, perturbed, raw perturbation,
// perturbation rescaled to full range) and reports the L2 / Linf norms.
#include <algorithm>

#include "bench_common.hpp"
#include "rlattack/core/pipeline.hpp"
#include "rlattack/util/image.hpp"
#include "rlattack/util/stats.hpp"

int main(int argc, char** argv) {
  rlattack::bench::init_metrics(argc, argv, "bench_fig3_perturbation");
  using namespace rlattack;
  core::Zoo zoo = bench::make_zoo();
  const env::Game game = env::Game::kMiniPong;

  rl::Agent& victim = zoo.victim(game, rl::Algorithm::kDqn);
  core::ApproximatorInfo approx =
      zoo.approximator(game, rl::Algorithm::kDqn, 1);

  // Play until the FIFO fills, then craft one FGSM sample (the paper's
  // example uses a small Linf epsilon so the image change is invisible).
  env::EnvPtr raw_env = env::make_environment(game, 7);
  const std::size_t frame_size = raw_env->observation_size();
  core::RolloutFifo fifo(approx.input_steps, frame_size,
                         raw_env->action_count());
  core::FrameAccumulator acc(env::agent_frame_stack(game), frame_size);
  auto agent_shape = raw_env->observation_shape();
  agent_shape[0] *= env::agent_frame_stack(game);

  nn::Tensor frame = raw_env->reset();
  while (!fifo.full()) {
    nn::Tensor stacked = acc.push(frame);
    const std::size_t action = victim.act(stacked.reshaped(agent_shape), false);
    fifo.push(frame.reshaped({frame_size}), action);
    frame = raw_env->step(action).observation;
  }

  attack::CraftInputs inputs =
      fifo.crafting_inputs(frame.reshaped({frame_size}));
  attack::FgsmAttack fgsm;
  attack::Budget budget{attack::Budget::Norm::kLinf, 0.01f};
  util::Rng rng(7);
  nn::Tensor perturbed = fgsm.perturb(*approx.model, inputs, attack::Goal{},
                                      budget, raw_env->observation_bounds(),
                                      rng);

  nn::Tensor delta = perturbed;
  delta -= inputs.current_obs;
  const double l2 = util::l2_norm(delta.data());
  const double linf = util::linf_norm(delta.data());

  const auto shape = raw_env->observation_shape();  // {1, H, W}
  const std::size_t h = shape[1], w = shape[2];
  std::vector<float> original(inputs.current_obs.data().begin(),
                              inputs.current_obs.data().end());
  std::vector<float> adv(perturbed.data().begin(), perturbed.data().end());
  std::vector<float> raw_delta(delta.data().begin(), delta.data().end());
  // Panel 3 shows |delta| at true scale; panel 4 rescales to full range.
  std::vector<float> abs_delta(raw_delta.size());
  std::transform(raw_delta.begin(), raw_delta.end(), abs_delta.begin(),
                 [](float x) { return std::abs(x); });
  std::vector<float> rescaled = raw_delta;
  util::rescale_to_unit(rescaled);

  util::write_pgm("fig3_original.pgm", original, w, h);
  util::write_pgm("fig3_perturbed.pgm", adv, w, h);
  util::write_pgm("fig3_perturbation.pgm", abs_delta, w, h);
  util::write_pgm("fig3_perturbation_rescaled.pgm", rescaled, w, h);

  util::TableWriter table({"Panel", "File", "Norm"});
  table.add_row({"original s_t", "fig3_original.pgm", "-"});
  table.add_row({"perturbed s_t + delta", "fig3_perturbed.pgm", "-"});
  table.add_row({"perturbation |delta|", "fig3_perturbation.pgm",
                 "l2 = " + util::fmt(l2, 3)});
  table.add_row({"rescaled 0-255", "fig3_perturbation_rescaled.pgm",
                 "linf = " + util::fmt(linf, 3)});
  bench::emit(table, "fig3_perturbation",
              "Figure 3: adversarial input for Pong (FGSM, eps = 0.01)");
  std::cout << "Shape check (paper: l2 = 0.62, linf = 0.01 at 84x84; ours "
               "is a 16x16 frame so l2 scales with sqrt(pixels)): measured "
               "l2 = "
            << util::fmt(l2, 3) << ", linf = " << util::fmt(linf, 3) << "\n";
  return 0;
}
