#!/usr/bin/env python3
"""Fold a forensics JSONL stream into per-episode accuracy-vs-time curves.

The attack pipeline (RLATTACK_FORENSICS_OUT / --forensics-out) emits one JSON
object per victim step.  This tool groups the records by episode, reports the
approximator's prediction-agreement rate as a function of the step index, and
totals the query/norm telemetry, so a forensics file answers "how good was the
timing model over the course of each episode" without reloading the run.

Usage:
  tools/forensics_summary.py run_forensics.jsonl [--bins N] [--json OUT]

With --json the summary is also written as a machine-readable JSON document;
the human-readable table always goes to stdout.  Exit status is non-zero on
empty or unparseable input so scripts can gate on it.
"""

import argparse
import json
import os
import sys
from collections import defaultdict


def load_records(path):
    """Parses one JSON object per line; raises SystemExit on garbage."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SystemExit(
                    f"{path}:{lineno}: not valid JSON ({exc})") from exc
            for key in ("episode", "seed", "step"):
                if key not in rec:
                    raise SystemExit(
                        f"{path}:{lineno}: record missing '{key}'")
            records.append(rec)
    return records


def check_consistency(records, path):
    """Per-record attribution invariants; raises SystemExit on violation.

    The pipeline emits every record from the episode that owns the step, so
    the per-step query deltas must match the step's own flags even when the
    underlying forwards were fused across episodes by the batched-evaluation
    substrate.  A record whose counters disagree with its flags means a
    batched row was attributed to the wrong episode:
      - attacked steps are always eligible,
      - the victim is queried twice on attacked steps (clean counterfactual
        plus delivered frame) and once otherwise,
      - gradient queries only happen while crafting (attacked steps),
      - ineligible steps never touch the approximator at all.
    """
    for idx, rec in enumerate(records, start=1):
        q = rec.get("queries", {})
        forward = q.get("forward", 0)
        gradient = q.get("gradient", 0)
        victim = q.get("victim", 0)
        attacked = bool(rec.get("attacked"))
        eligible = bool(rec.get("eligible"))
        where = (f"{path}: record {idx} (episode {rec['episode']} "
                 f"seed {rec['seed']} step {rec['step']})")
        if attacked and not eligible:
            raise SystemExit(f"{where}: attacked but not eligible")
        if victim != (2 if attacked else 1):
            raise SystemExit(
                f"{where}: victim queries {victim}, expected "
                f"{2 if attacked else 1} (attacked={attacked})")
        if gradient and not attacked:
            raise SystemExit(
                f"{where}: {gradient} gradient queries on an unattacked step")
        if not eligible and (forward or gradient):
            raise SystemExit(
                f"{where}: approximator queries (forward={forward}, "
                f"gradient={gradient}) on an ineligible step")


def mean(values):
    return sum(values) / len(values) if values else 0.0


def summarize_episode(steps):
    """One episode's records (sorted by step) -> summary dict."""
    steps = sorted(steps, key=lambda r: r["step"])
    scored = [r for r in steps if r.get("agree", -1) >= 0]
    attacked = [r for r in steps if r.get("attacked")]
    queries = {"forward": 0, "gradient": 0, "victim": 0}
    for r in steps:
        q = r.get("queries", {})
        for key in queries:
            queries[key] += q.get(key, 0)
    detector_flags = sum(1 for r in steps
                         if r.get("det", {}).get("flag"))
    return {
        "episode": steps[0]["episode"],
        "seed": steps[0]["seed"],
        "steps": len(steps),
        "eligible": sum(1 for r in steps if r.get("eligible")),
        "attacked": len(attacked),
        "scored": len(scored),
        "agreement": mean([r["agree"] for r in scored]),
        "mean_l2": mean([r["l2"] for r in attacked]),
        "mean_linf": mean([r["linf"] for r in attacked]),
        "mean_loss": mean([r["loss"] for r in attacked if "loss" in r]),
        "queries": queries,
        "detector_flags": detector_flags,
    }


def agreement_curve(steps, bins):
    """Accuracy-vs-time: agreement rate per step-index bin.

    Bins split [0, max_step] evenly; each entry is (bin_start, bin_end,
    scored_count, agreement_rate).  Steps with no prediction are skipped.
    """
    scored = [r for r in sorted(steps, key=lambda r: r["step"])
              if r.get("agree", -1) >= 0]
    if not scored:
        return []
    max_step = max(r["step"] for r in scored)
    width = max(1, (max_step + bins) // bins)
    buckets = defaultdict(list)
    for r in scored:
        buckets[r["step"] // width].append(r["agree"])
    curve = []
    for idx in sorted(buckets):
        votes = buckets[idx]
        curve.append({
            "step_lo": idx * width,
            "step_hi": min(max_step, (idx + 1) * width - 1),
            "scored": len(votes),
            "agreement": mean(votes),
        })
    return curve


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Summarize a forensics JSONL stream.")
    parser.add_argument("path", help="forensics .jsonl file")
    parser.add_argument("--bins", type=int, default=10,
                        help="step-index bins for the accuracy curve")
    parser.add_argument("--json", metavar="OUT",
                        help="also write the summary as JSON to OUT")
    args = parser.parse_args(argv)
    if args.bins < 1:
        parser.error("--bins must be >= 1")

    records = load_records(args.path)
    if not records:
        print(f"{args.path}: no forensics records", file=sys.stderr)
        return 1
    check_consistency(records, args.path)

    episodes = defaultdict(list)
    for rec in records:
        episodes[(rec["episode"], rec["seed"])].append(rec)

    summaries = []
    for key in sorted(episodes):
        steps = episodes[key]
        summary = summarize_episode(steps)
        summary["curve"] = agreement_curve(steps, args.bins)
        summaries.append(summary)

    print(f"forensics: {len(records)} records, {len(summaries)} episode(s)")
    for s in summaries:
        print(f"\nepisode {s['episode']} seed={s['seed']}: "
              f"{s['steps']} steps, {s['attacked']} attacked, "
              f"{s['eligible']} eligible")
        print(f"  agreement {s['agreement']:.3f} over {s['scored']} scored "
              f"steps; queries forward={s['queries']['forward']} "
              f"gradient={s['queries']['gradient']} "
              f"victim={s['queries']['victim']}")
        print(f"  mean perturbation L2={s['mean_l2']:.5f} "
              f"Linf={s['mean_linf']:.5f} loss={s['mean_loss']:.5f}; "
              f"detector flags={s['detector_flags']}")
        for point in s["curve"]:
            bar = "#" * int(round(point["agreement"] * 40))
            print(f"  steps {point['step_lo']:>5}-{point['step_hi']:<5} "
                  f"agree {point['agreement']:.3f} "
                  f"(n={point['scored']:<4}) {bar}")

    if args.json:
        doc = {"records": len(records), "episodes": summaries}
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=False)
            fh.write("\n")
        print(f"\n(summary written to {args.json})")
    return 0


if __name__ == "__main__":
    try:
        rc = main()
        sys.stdout.flush()
    except BrokenPipeError:  # e.g. piped into head
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        rc = 0
    sys.exit(rc)
