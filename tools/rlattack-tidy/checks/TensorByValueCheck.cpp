#include "GlueUtil.hpp"
#include "RlattackTidyChecks.hpp"
#include "core/check_core.hpp"

#include "clang/ASTMatchers/ASTMatchers.h"

namespace rlattack::tidy {

using namespace clang::ast_matchers;

void TensorByValueCheck::registerMatchers(MatchFinder* finder) {
  finder->addMatcher(
      parmVarDecl(hasAncestor(functionDecl(isDefinition()).bind("fn")))
          .bind("parm"),
      this);
}

namespace {

/// The sink allowance: a by-value parameter is fine when the function
/// consumes it — std::moves it (including into a constructor initializer)
/// or returns it (NRVO/implicit move). Anything else pays a full frame
/// copy per call for no ownership transfer.
bool consumes_param(const clang::FunctionDecl* fn,
                    const clang::ParmVarDecl* parm,
                    clang::ASTContext& context) {
  const auto moved = match(
      decl(hasDescendant(
          callExpr(callee(functionDecl(hasName("::std::move"))),
                   hasArgument(0, declRefExpr(to(equalsNode(parm))))))),
      *fn, context);
  if (!moved.empty()) return true;
  const auto returned = match(
      decl(hasDescendant(returnStmt(hasReturnValue(
          ignoringParenImpCasts(declRefExpr(to(equalsNode(parm)))))))),
      *fn, context);
  return !returned.empty();
}

}  // namespace

void TensorByValueCheck::check(const MatchFinder::MatchResult& result) {
  const auto* parm = result.Nodes.getNodeAs<clang::ParmVarDecl>("parm");
  const auto* fn = result.Nodes.getNodeAs<clang::FunctionDecl>("fn");
  const clang::QualType type = parm->getType();
  if (type->isReferenceType() || type->isPointerType()) return;
  if (!is_tensor_type(glue::record_name(type))) return;
  if (!tensor_hot_path(
          glue::file_of(*result.SourceManager, parm->getBeginLoc())))
    return;
  if (consumes_param(fn, parm, *result.Context)) return;
  diag(parm->getBeginLoc(),
       "by-value nn::Tensor parameter on a hot path copies a full frame per "
       "call; take const nn::Tensor& (or consume it with std::move/return "
       "if this is a sink)");
}

}  // namespace rlattack::tidy
