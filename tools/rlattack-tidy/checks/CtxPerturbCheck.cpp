#include "GlueUtil.hpp"
#include "RlattackTidyChecks.hpp"
#include "core/check_core.hpp"

#include "clang/ASTMatchers/ASTMatchers.h"

namespace rlattack::tidy {

using namespace clang::ast_matchers;

void CtxPerturbCheck::registerMatchers(MatchFinder* finder) {
  // The convenience shim is the only non-virtual perturb overload on the
  // Attack hierarchy (6 parameters: model, inputs, goal, budget, bounds,
  // rng — the virtual entry point takes 5 starting with CraftContext&).
  finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(
              hasName("perturb"), unless(isVirtual()), parameterCountIs(6),
              ofClass(cxxRecordDecl(isSameOrDerivedFrom(
                  hasName("::rlattack::attack::Attack")))))))
          .bind("call"),
      this);
}

void CtxPerturbCheck::check(const MatchFinder::MatchResult& result) {
  const auto* call = result.Nodes.getNodeAs<clang::CXXMemberCallExpr>("call");
  const std::string path =
      glue::file_of(*result.SourceManager, call->getBeginLoc());
  if (ctx_perturb_path_allowed(path)) return;
  diag(call->getBeginLoc(),
       "one-shot Attack::perturb(model, inputs, ...) shim called outside "
       "the allowlist; construct a CraftContext (or take the session's) so "
       "the history cache and batched planner see this craft");
}

}  // namespace rlattack::tidy
