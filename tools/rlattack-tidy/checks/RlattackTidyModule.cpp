// Registers the rlattack-* checks as the "rlattack-module" clang-tidy
// module. Built as a MODULE library; load with
//   clang-tidy --load=$BUILD/tools/rlattack-tidy/librlattack_tidy.so \
//              --checks='-*,rlattack-*' ...
// (run_checks.sh's tidy-plugin config drives exactly this.)
#include "RlattackTidyChecks.hpp"

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

namespace rlattack::tidy {

class RlattackTidyModule : public clang::tidy::ClangTidyModule {
 public:
  void addCheckFactories(
      clang::tidy::ClangTidyCheckFactories& factories) override {
    factories.registerCheck<CtxPerturbCheck>("rlattack-ctx-perturb");
    factories.registerCheck<ParamsNoMoveCheck>("rlattack-params-no-move");
    factories.registerCheck<DeterminismCheck>("rlattack-determinism");
    factories.registerCheck<EnvRegistryCheck>("rlattack-env-registry");
    factories.registerCheck<TensorByValueCheck>("rlattack-tensor-by-value");
  }
};

}  // namespace rlattack::tidy

namespace clang::tidy {

// NOLINTNEXTLINE(cert-err58-cpp) — standard clang-tidy module registration
static ClangTidyModuleRegistry::Add<rlattack::tidy::RlattackTidyModule>
    rlattack_module("rlattack-module",
                    "rlattack project-specific invariant checks");

/// Anchor so --load keeps the module object file even under aggressive
/// linker GC (mirrors the in-tree modules' volatile anchor idiom).
volatile int rlattackTidyModuleAnchorSource = 0;

}  // namespace clang::tidy
