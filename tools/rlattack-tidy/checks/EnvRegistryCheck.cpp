#include "GlueUtil.hpp"
#include "RlattackTidyChecks.hpp"
#include "core/check_core.hpp"

#include "clang/ASTMatchers/ASTMatchers.h"

namespace rlattack::tidy {

using namespace clang::ast_matchers;

void EnvRegistryCheck::registerMatchers(MatchFinder* finder) {
  finder->addMatcher(
      callExpr(callee(functionDecl(
                   hasAnyName("::getenv", "::std::getenv", "::secure_getenv"))),
               hasArgument(0, ignoringParenImpCasts(
                                  stringLiteral().bind("name"))))
          .bind("call"),
      this);
}

void EnvRegistryCheck::check(const MatchFinder::MatchResult& result) {
  const auto* call = result.Nodes.getNodeAs<clang::CallExpr>("call");
  const auto* name = result.Nodes.getNodeAs<clang::StringLiteral>("name");
  if (name->getCharByteWidth() != 1) return;
  const std::string var = name->getString().str();
  if (!is_rlattack_env_literal(var)) return;
  if (!is_registered_env_var(var)) {
    diag(call->getBeginLoc(),
         "'%0' is not declared in the util/env.hpp registry; add it to "
         "RLATTACK_ENV_VARS with a doc string before reading it")
        << var;
    return;
  }
  const std::string path =
      glue::file_of(*result.SourceManager, call->getBeginLoc());
  if (env_read_path_allowed(path)) return;
  diag(call->getBeginLoc(),
       "raw getenv(\"%0\") outside src/util/env.cpp; call "
       "util::env::get(util::env::Var::...) so reads stay auditable and "
       "the mt-unsafe suppression stays confined to one TU")
      << var;
}

}  // namespace rlattack::tidy
