#include "GlueUtil.hpp"
#include "RlattackTidyChecks.hpp"
#include "core/check_core.hpp"

#include "clang/ASTMatchers/ASTMatchers.h"

namespace rlattack::tidy {

using namespace clang::ast_matchers;

void ParamsNoMoveCheck::registerMatchers(MatchFinder* finder) {
  // std::move of a pinned type (the argument type decides; the cast itself
  // is harmless, but every real use immediately moves-from).
  finder->addMatcher(
      callExpr(callee(functionDecl(hasName("::std::move"))),
               argumentCountIs(1))
          .bind("move"),
      this);
  // Copy/move construction of a pinned type (covers by-value passing,
  // returns, and container element moves during reallocation).
  finder->addMatcher(
      cxxConstructExpr(hasDeclaration(cxxConstructorDecl(
                           anyOf(isCopyConstructor(), isMoveConstructor()))))
          .bind("ctor"),
      this);
  // Declaring by-value parameters or std::vector storage of a pinned type
  // is flagged at the declaration, before any move even happens.
  finder->addMatcher(parmVarDecl().bind("parm"), this);
  finder->addMatcher(varDecl(unless(parmVarDecl())).bind("var"), this);
  finder->addMatcher(fieldDecl().bind("field"), this);
}

namespace {

/// Element type when `type` is a std::vector specialization, null otherwise.
clang::QualType vector_element(clang::QualType type) {
  if (type.isNull()) return {};
  const auto* spec =
      llvm::dyn_cast_or_null<clang::ClassTemplateSpecializationDecl>(
          type.getCanonicalType()->getAsCXXRecordDecl());
  if (!spec || glue::qualified_name(spec) != "std::vector") return {};
  const clang::TemplateArgumentList& args = spec->getTemplateArgs();
  if (args.size() == 0 || args[0].getKind() != clang::TemplateArgument::Type)
    return {};
  return args[0].getAsType();
}

}  // namespace

void ParamsNoMoveCheck::check(const MatchFinder::MatchResult& result) {
  if (const auto* move = result.Nodes.getNodeAs<clang::CallExpr>("move")) {
    const std::string name = glue::record_name(move->getArg(0)->getType());
    if (!is_no_move_type(name)) return;
    diag(move->getBeginLoc(),
         "std::move of %0 invalidates every cached params() span bound to "
         "the object; pass by reference instead")
        << name;
    return;
  }
  if (const auto* ctor =
          result.Nodes.getNodeAs<clang::CXXConstructExpr>("ctor")) {
    const std::string name = glue::record_name(ctor->getType());
    if (!is_no_move_type(name)) return;
    diag(ctor->getBeginLoc(),
         "copy/move construction of %0 after cached params() spans bind is "
         "unsound; hold it by reference or unique_ptr")
        << name;
    return;
  }
  const clang::SourceManager& sm = *result.SourceManager;
  if (const auto* parm = result.Nodes.getNodeAs<clang::ParmVarDecl>("parm")) {
    const clang::QualType type = parm->getType();
    if (type->isReferenceType() || type->isPointerType()) return;
    const std::string name = glue::record_name(type);
    if (!is_no_move_type(name)) return;
    diag(parm->getBeginLoc(),
         "by-value %0 parameter copies/moves a type whose cached params() "
         "span binds its address; take %0& instead")
        << name;
    return;
  }
  const clang::ValueDecl* storage = nullptr;
  if (const auto* var = result.Nodes.getNodeAs<clang::VarDecl>("var"))
    storage = var;
  else if (const auto* field = result.Nodes.getNodeAs<clang::FieldDecl>("field"))
    storage = field;
  if (!storage) return;
  const std::string elem =
      glue::record_name(vector_element(storage->getType()));
  if (!is_no_move_type(elem)) return;
  (void)sm;
  diag(storage->getBeginLoc(),
       "std::vector<%0> relocates elements on growth, invalidating cached "
       "params() spans; use std::vector<std::unique_ptr<%0>> or std::deque")
      << elem;
}

}  // namespace rlattack::tidy
