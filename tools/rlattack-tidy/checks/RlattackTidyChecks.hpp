// AST-matcher glue for the rlattack-tidy checks. Compiled only when the
// clang-tidy development headers are present (see ../CMakeLists.txt); all
// policy decisions are delegated to ../core/check_core.hpp so this layer
// stays a thin translation from AST nodes to (qualified name, path) queries.
//
// Targets the clang-tidy 14+ out-of-tree plugin API: the module below is
// loaded with `clang-tidy --load=librlattack_tidy.so --checks=rlattack-*`.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace rlattack::tidy {

/// rlattack-ctx-perturb: flags calls to the convenience one-shot
/// `Attack::perturb(model, inputs, ...)` shim outside the allowlist. The
/// shim constructs a throwaway CraftContext per call, bypassing the history
/// cache and the batched planner; production call sites must thread a
/// CraftContext instead.
class CtxPerturbCheck : public clang::tidy::ClangTidyCheck {
 public:
  using ClangTidyCheck::ClangTidyCheck;
  void registerMatchers(clang::ast_matchers::MatchFinder* finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& result) override;
};

/// rlattack-params-no-move: flags moves/copies (including by-value
/// parameters and std::vector storage) of types whose cached params() span
/// binds the object address (Seq2SeqModel, nn::Sequential).
class ParamsNoMoveCheck : public clang::tidy::ClangTidyCheck {
 public:
  using ClangTidyCheck::ClangTidyCheck;
  void registerMatchers(clang::ast_matchers::MatchFinder* finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& result) override;
};

/// rlattack-determinism: bans ambient entropy/clock reads and
/// unordered-container iteration in result-producing code (everything under
/// src/ except the telemetry layer).
class DeterminismCheck : public clang::tidy::ClangTidyCheck {
 public:
  using ClangTidyCheck::ClangTidyCheck;
  void registerMatchers(clang::ast_matchers::MatchFinder* finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& result) override;
};

/// rlattack-env-registry: every getenv("RLATTACK_*") literal must name a
/// variable declared in util/env.hpp, and the only TU allowed to read them
/// raw is src/util/env.cpp — everyone else goes through util::env::get.
class EnvRegistryCheck : public clang::tidy::ClangTidyCheck {
 public:
  using ClangTidyCheck::ClangTidyCheck;
  void registerMatchers(clang::ast_matchers::MatchFinder* finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& result) override;
};

/// rlattack-tensor-by-value: flags by-value nn::Tensor parameters on hot
/// paths unless the function consumes the parameter (moves it or returns
/// it), which is the sanctioned sink idiom.
class TensorByValueCheck : public clang::tidy::ClangTidyCheck {
 public:
  using ClangTidyCheck::ClangTidyCheck;
  void registerMatchers(clang::ast_matchers::MatchFinder* finder) override;
  void check(
      const clang::ast_matchers::MatchFinder::MatchResult& result) override;
};

}  // namespace rlattack::tidy
