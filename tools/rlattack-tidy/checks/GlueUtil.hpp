// Small shared helpers for translating AST nodes into the (qualified name,
// path) vocabulary the policy core speaks.
#pragma once

#include <string>

#include "clang/AST/Decl.h"
#include "clang/AST/PrettyPrinter.h"
#include "clang/AST/Type.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/Support/raw_ostream.h"

namespace rlattack::tidy::glue {

/// Qualified name with inline namespaces suppressed, so libstdc++'s
/// std::chrono::_V2::system_clock and libc++'s std::__1 both print as the
/// portable spelling the policy tables use.
inline std::string qualified_name(const clang::NamedDecl* decl) {
  clang::PrintingPolicy policy(decl->getASTContext().getLangOpts());
  policy.SuppressInlineNamespace = true;
  std::string out;
  llvm::raw_string_ostream os(out);
  decl->printQualifiedName(os, policy);
  return os.str();
}

/// Qualified name of the canonical record behind `type` ("" when the type
/// is not a class/struct).
inline std::string record_name(clang::QualType type) {
  if (type.isNull()) return {};
  if (const clang::CXXRecordDecl* record =
          type.getCanonicalType()->getAsCXXRecordDecl())
    return qualified_name(record);
  return {};
}

/// Presumed file path of `loc` after macro expansion ("" for invalid or
/// buffer-only locations).
inline std::string file_of(const clang::SourceManager& sm,
                           clang::SourceLocation loc) {
  return sm.getFilename(sm.getExpansionLoc(loc)).str();
}

}  // namespace rlattack::tidy::glue
