#include "GlueUtil.hpp"
#include "RlattackTidyChecks.hpp"
#include "core/check_core.hpp"

#include "clang/ASTMatchers/ASTMatchers.h"

namespace rlattack::tidy {

using namespace clang::ast_matchers;

void DeterminismCheck::registerMatchers(MatchFinder* finder) {
  finder->addMatcher(
      callExpr(callee(functionDecl().bind("callee"))).bind("call"), this);
  finder->addMatcher(varDecl().bind("var"), this);
  finder->addMatcher(cxxForRangeStmt().bind("loop"), this);
}

namespace {

/// Plain C names in the ban table ("rand", "time", ...) must only match the
/// libc function, never an unrelated method or local helper of the same
/// name: require global/extern-C/std scope for unqualified names.
bool c_library_scope(const clang::FunctionDecl* fn) {
  const clang::DeclContext* ctx = fn->getDeclContext();
  return ctx->isTranslationUnit() || ctx->isExternCContext() ||
         fn->isInStdNamespace();
}

}  // namespace

void DeterminismCheck::check(const MatchFinder::MatchResult& result) {
  const clang::SourceManager& sm = *result.SourceManager;
  if (const auto* call = result.Nodes.getNodeAs<clang::CallExpr>("call")) {
    if (determinism_path_exempt(glue::file_of(sm, call->getBeginLoc())))
      return;
    const auto* callee = result.Nodes.getNodeAs<clang::FunctionDecl>("callee");
    const std::string name = glue::qualified_name(callee);
    if (!is_banned_determinism_callee(name)) return;
    if (name.find("::") == std::string::npos && !c_library_scope(callee))
      return;
    diag(call->getBeginLoc(),
         "'%0' injects ambient entropy/wall-clock into result-producing "
         "code; use the seeded util::Rng (randomness) or obs::Span (timing)")
        << name;
    return;
  }
  if (const auto* var = result.Nodes.getNodeAs<clang::VarDecl>("var")) {
    const std::string name = glue::record_name(var->getType());
    if (!is_banned_determinism_type(name)) return;
    if (determinism_path_exempt(glue::file_of(sm, var->getBeginLoc())))
      return;
    diag(var->getBeginLoc(),
         "%0 is nondeterministic across runs; seed a util::Rng from the "
         "experiment config instead")
        << name;
    return;
  }
  if (const auto* loop =
          result.Nodes.getNodeAs<clang::CXXForRangeStmt>("loop")) {
    if (determinism_path_exempt(glue::file_of(sm, loop->getBeginLoc())))
      return;
    const clang::Expr* range = loop->getRangeInit();
    if (!range) return;
    const std::string name = glue::record_name(range->getType());
    if (name.rfind("std::unordered_", 0) != 0) return;
    diag(loop->getForLoc(),
         "iterating %0 visits elements in hash order, which varies across "
         "libstdc++ versions and inserts; results accumulated from this "
         "loop are not reproducible — use std::map/std::set or sort first")
        << name;
  }
}

}  // namespace rlattack::tidy
