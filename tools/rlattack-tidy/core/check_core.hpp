// Policy core of the rlattack-tidy checks: every allowlist, banned-name
// table and path classification lives here as plain C++ with no Clang
// dependency.
//
// Why the split: the AST-matcher glue (../checks/) can only compile on a
// host with clang-tidy development headers, which CI images do not always
// carry. The policy — *what* each check accepts and rejects — is the part
// that must not bit-rot, so it compiles everywhere: this core is built into
// the always-on `rlattack_tidy_core` library, exercised by the werror
// config and by the `rlattack_tidy_core_selfcheck` ctest on every build,
// clang or not. The plugin links the same objects, so a policy change is
// impossible to land untested even when the AST glue is not compiled.
//
// Paths are matched by normalized suffix/substring so the same tables work
// for clang's absolute paths and the fixtures' relative ones.
#pragma once

#include <string>
#include <string_view>

namespace rlattack::tidy {

/// Backslashes to forward slashes (clang on some hosts reports mixed
/// separators for headers found through -I).
std::string normalize_path(std::string_view path);

// --- rlattack-ctx-perturb --------------------------------------------------

/// True when `path` may call the convenience `Attack::perturb(model,
/// inputs, ...)` shim. Everyone else must construct a CraftContext (or take
/// one from the session) so query-budget accounting and the craft cache see
/// every victim probe. The allowlist is the closed set of one-shot callers:
///  - src/attack/attack.cpp        the shim's own definition/delegation
///  - tests/attack_test.cpp,
///    tests/detector_jsma_test.cpp unit tests of the attack math itself —
///                                  single crafts with no session to account
///  - tests/checked_invariants_test.cpp   negative suite probes the shim
///  - bench/bench_micro_nn.cpp,
///    bench/bench_micro_seq2seq.cpp one-shot craft microbenches measure the
///                                  context construction they time
///  - bench/bench_fig3_perturbation.cpp   single-frame figure render
/// Drivers and experiment code are deliberately absent: they must thread
/// the session's CraftContext.
bool ctx_perturb_path_allowed(std::string_view path);

// --- rlattack-params-no-move -----------------------------------------------

/// Types whose cached params() span binds the object address: optimizers
/// and the craft cache hold nn::Param views into these, so moving or
/// copying one after construction silently invalidates every bound span.
bool is_no_move_type(std::string_view qualified_name);

// --- rlattack-determinism --------------------------------------------------

/// Callees banned in result-producing code: nondeterministic entropy or
/// clock reads whose value could leak into an experiment row. The seeded
/// util::Rng and the obs::Span timers are the sanctioned alternatives.
bool is_banned_determinism_callee(std::string_view qualified_name);

/// Record types whose construction is banned (std::random_device).
bool is_banned_determinism_type(std::string_view qualified_name);

/// Paths where nondeterminism is the point and the check stays silent:
/// src/obs (telemetry measures wall clocks), bench/ and tests/ (harnesses
/// time and perturb freely), tools/, apps/, examples/ (drivers, not rows).
/// Everything else under src/ is result-producing.
bool determinism_path_exempt(std::string_view path);

// --- rlattack-env-registry -------------------------------------------------

/// True for literals spelled like an rlattack env knob ("RLATTACK_" prefix).
bool is_rlattack_env_literal(std::string_view name);

/// True when `name` is declared in the util/env.hpp registry. Kept in sync
/// by construction: the implementation iterates util::env::registry().
bool is_registered_env_var(std::string_view name);

/// The one TU allowed to call getenv on RLATTACK_* literals directly.
bool env_read_path_allowed(std::string_view path);

// --- rlattack-tensor-by-value ----------------------------------------------

/// True for the qualified name of the tensor type the check guards.
bool is_tensor_type(std::string_view qualified_name);

/// Hot-path classification: every compute subsystem under src/ except the
/// telemetry layer (src/obs) and src/util. A by-value nn::Tensor parameter
/// there is a full frame copy per call unless the function consumes it
/// (moves it or returns it), which the check allows as the sink idiom.
bool tensor_hot_path(std::string_view path);

}  // namespace rlattack::tidy
