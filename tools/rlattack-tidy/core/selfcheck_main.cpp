// Always-built self-check of the rlattack-tidy policy core. Runs as the
// `rlattack_tidy_core_selfcheck` ctest on every host, clang or not, so the
// allowlists/ban tables cannot drift unexercised when the AST glue is not
// compiled (the tidy-plugin config is "skipped" without clang dev headers).
//
// Plain asserts on purpose: this binary must stay buildable with zero
// dependencies beyond the core and util::env.
#undef NDEBUG
#include <cassert>
#include <cstdio>
#include <set>
#include <string>
#include <string_view>

#include "check_core.hpp"
#include "rlattack/util/env.hpp"

int main() {
  using namespace rlattack::tidy;

  // Path normalization.
  assert(normalize_path("a\\b\\c.cpp") == "a/b/c.cpp");

  // ctx-perturb allowlist: the shim's own TU and the two microbenches pass,
  // drivers and attacks do not; component boundaries are respected.
  assert(ctx_perturb_path_allowed("/root/repo/src/attack/attack.cpp"));
  assert(ctx_perturb_path_allowed("bench/bench_micro_nn.cpp"));
  assert(ctx_perturb_path_allowed("bench/bench_micro_seq2seq.cpp"));
  assert(ctx_perturb_path_allowed("bench/bench_fig3_perturbation.cpp"));
  assert(ctx_perturb_path_allowed("tests/attack_test.cpp"));
  assert(ctx_perturb_path_allowed("tests/detector_jsma_test.cpp"));
  assert(ctx_perturb_path_allowed("tests/checked_invariants_test.cpp"));
  assert(!ctx_perturb_path_allowed("/repo/src/core/pipeline.cpp"));
  assert(!ctx_perturb_path_allowed("src/attack/counterattack.cpp"));
  assert(!ctx_perturb_path_allowed("tests/tidy/ctx_perturb_trip.cpp"));

  // params-no-move type set.
  assert(is_no_move_type("rlattack::seq2seq::Seq2SeqModel"));
  assert(is_no_move_type("rlattack::nn::Sequential"));
  assert(!is_no_move_type("rlattack::nn::Tensor"));

  // determinism ban tables.
  assert(is_banned_determinism_callee("rand"));
  assert(is_banned_determinism_callee("std::rand"));
  assert(is_banned_determinism_callee("srand"));
  assert(is_banned_determinism_callee("time"));
  assert(is_banned_determinism_callee("std::time"));
  assert(!is_banned_determinism_callee("std::chrono::time"));
  assert(is_banned_determinism_callee("std::chrono::system_clock::now"));
  assert(is_banned_determinism_callee("std::chrono::steady_clock::now"));
  assert(!is_banned_determinism_callee("rlattack::util::Rng::uniform"));
  assert(is_banned_determinism_type("std::random_device"));
  assert(!is_banned_determinism_type("rlattack::util::Rng"));
  assert(determinism_path_exempt("/repo/src/obs/metrics.cpp"));
  assert(determinism_path_exempt("/repo/bench/bench_00_warmup.cpp"));
  assert(determinism_path_exempt("/repo/tests/util_test.cpp"));
  assert(!determinism_path_exempt("/repo/src/core/experiments.cpp"));
  assert(!determinism_path_exempt("/repo/src/nn/tensor.cpp"));

  // env-registry: every registry row is an RLATTACK_* name, names are
  // unique, and the lookup agrees with the registry it is built from.
  std::set<std::string> names;
  for (const rlattack::util::env::VarInfo& info :
       rlattack::util::env::registry()) {
    assert(is_rlattack_env_literal(info.name));
    assert(is_registered_env_var(info.name));
    assert(names.insert(info.name).second && "duplicate env var name");
    assert(std::string_view(info.doc).size() > 0);
  }
  assert(!is_registered_env_var("RLATTACK_NOT_A_REAL_KNOB"));
  assert(!is_rlattack_env_literal("PATH"));
  assert(env_read_path_allowed("/repo/src/util/env.cpp"));
  assert(!env_read_path_allowed("/repo/src/util/log.cpp"));

  // tensor-by-value hot-path classification.
  assert(tensor_hot_path("/repo/src/nn/dense.cpp"));
  assert(tensor_hot_path("src/seq2seq/model.cpp"));
  assert(tensor_hot_path("/repo/src/attack/attack.cpp"));
  assert(!tensor_hot_path("/repo/src/obs/metrics.cpp"));
  assert(!tensor_hot_path("/repo/src/util/table.cpp"));
  assert(!tensor_hot_path("/repo/tests/tensor_test.cpp"));
  assert(is_tensor_type("rlattack::nn::Tensor"));
  assert(!is_tensor_type("rlattack::nn::Param"));

  std::puts("rlattack-tidy core selfcheck: all assertions passed");
  return 0;
}
