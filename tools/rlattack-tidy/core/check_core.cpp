#include "check_core.hpp"

#include <algorithm>
#include <array>

#include "rlattack/util/env.hpp"

namespace rlattack::tidy {

namespace {

/// True when `path` ends with `suffix` at a path-component boundary (so
/// "attack.cpp" does not match "counterattack.cpp").
bool ends_with_component(std::string_view path, std::string_view suffix) {
  if (path.size() < suffix.size()) return false;
  if (path.substr(path.size() - suffix.size()) != suffix) return false;
  return path.size() == suffix.size() ||
         path[path.size() - suffix.size() - 1] == '/';
}

bool contains_component(std::string_view path, std::string_view part) {
  return path.find(part) != std::string_view::npos;
}

}  // namespace

std::string normalize_path(std::string_view path) {
  std::string out(path);
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

bool ctx_perturb_path_allowed(std::string_view path) {
  const std::string p = normalize_path(path);
  constexpr std::array<std::string_view, 7> kAllowed = {
      "src/attack/attack.cpp",
      "tests/attack_test.cpp",
      "tests/detector_jsma_test.cpp",
      "tests/checked_invariants_test.cpp",
      "bench/bench_micro_nn.cpp",
      "bench/bench_micro_seq2seq.cpp",
      "bench/bench_fig3_perturbation.cpp",
  };
  return std::any_of(kAllowed.begin(), kAllowed.end(),
                     [&](std::string_view s) {
                       return ends_with_component(p, s);
                     });
}

bool is_no_move_type(std::string_view qualified_name) {
  return qualified_name == "rlattack::seq2seq::Seq2SeqModel" ||
         qualified_name == "rlattack::nn::Sequential";
}

bool is_banned_determinism_callee(std::string_view qualified_name) {
  constexpr std::array<std::string_view, 8> kBanned = {
      "rand",
      "srand",
      "time",
      "gettimeofday",
      "clock",
      "timespec_get",
      // Wall clocks. steady_clock is monotonic but still host-dependent;
      // result-producing code has no business reading any clock — timing
      // belongs to obs::Span (src/obs, exempt).
      "std::chrono::system_clock::now",
      "std::chrono::high_resolution_clock::now",
  };
  // The C names may resolve as "rand" or "std::rand" depending on whether
  // <cstdlib> re-exports or redeclares; accept the single-component std::
  // spelling too (chrono entries keep their full path).
  std::string_view base = qualified_name;
  if (base.substr(0, 5) == "std::" &&
      base.find("::", 5) == std::string_view::npos)
    base.remove_prefix(5);
  if (std::find(kBanned.begin(), kBanned.end(), base) != kBanned.end())
    return true;
  return qualified_name == "std::chrono::steady_clock::now";
}

bool is_banned_determinism_type(std::string_view qualified_name) {
  return qualified_name == "std::random_device";
}

bool determinism_path_exempt(std::string_view path) {
  const std::string p = normalize_path(path);
  return contains_component(p, "src/obs/") ||
         contains_component(p, "/bench/") ||
         contains_component(p, "/tests/") ||
         contains_component(p, "/tools/") ||
         contains_component(p, "/apps/") ||
         contains_component(p, "/examples/");
}

bool is_rlattack_env_literal(std::string_view name) {
  return name.substr(0, 9) == "RLATTACK_";
}

bool is_registered_env_var(std::string_view name) {
  for (const util::env::VarInfo& info : util::env::registry())
    if (name == info.name) return true;
  return false;
}

bool env_read_path_allowed(std::string_view path) {
  return ends_with_component(normalize_path(path), "src/util/env.cpp");
}

bool is_tensor_type(std::string_view qualified_name) {
  return qualified_name == "rlattack::nn::Tensor";
}

bool tensor_hot_path(std::string_view path) {
  const std::string p = normalize_path(path);
  if (!contains_component(p, "/src/") && p.substr(0, 4) != "src/")
    return false;
  return !contains_component(p, "src/obs/") &&
         !contains_component(p, "src/util/");
}

}  // namespace rlattack::tidy
