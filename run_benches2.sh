#!/bin/sh
cd /root/repo
export RLATTACK_BENCH_SCALE=${RLATTACK_BENCH_SCALE:-0.5}
for b in bench_table2_seq2seq_accuracy bench_fig5_invaders_reward \
         bench_fig8_timebomb_invaders bench_fig9_timebomb_pong \
         bench_fig3_perturbation bench_fig4_cartpole_reward \
         bench_fig6_pong_reward bench_fig7_transferability \
         bench_micro_nn bench_table1_threat_model; do
  echo "=== RUNNING build/bench/$b ===" >> bench_output.txt
  "build/bench/$b" >> bench_output.txt 2>&1
  echo "=== EXIT $? build/bench/$b ===" >> bench_output.txt
done
echo ALL_BENCHES_DONE >> bench_output.txt
