#include "rlattack/util/log.hpp"

namespace rlattack::util {

LogLevel& log_level() noexcept {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

namespace detail {
void emit(LogLevel level, std::string_view msg) {
  const char* tag = "INFO ";
  switch (level) {
    case LogLevel::kDebug: tag = "DEBUG"; break;
    case LogLevel::kInfo: tag = "INFO "; break;
    case LogLevel::kWarn: tag = "WARN "; break;
    case LogLevel::kError: tag = "ERROR"; break;
  }
  std::ostream& out = level >= LogLevel::kWarn ? std::cerr : std::clog;
  out << "[" << tag << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace rlattack::util
