#include "rlattack/util/log.hpp"

#include <atomic>
#include <cctype>
#include <iostream>
#include <string>

#include "rlattack/util/env.hpp"
#include "rlattack/util/thread_safety.hpp"

namespace rlattack::util {

namespace {

LogLevel level_from_env() {
  const char* env = env::get(env::Var::kLogLevel);
  if (!env || *env == '\0') return LogLevel::kInfo;
  std::string v(env);
  for (char& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (v == "debug" || v == "0") return LogLevel::kDebug;
  if (v == "info" || v == "1") return LogLevel::kInfo;
  if (v == "warn" || v == "warning" || v == "2") return LogLevel::kWarn;
  if (v == "error" || v == "3") return LogLevel::kError;
  return LogLevel::kInfo;
}

std::atomic<LogLevel>& level_storage() noexcept {
  static std::atomic<LogLevel> level{level_from_env()};
  return level;
}

}  // namespace

LogLevel log_level() noexcept {
  return level_storage().load(std::memory_order_relaxed);
}

void set_log_level(LogLevel level) noexcept {
  level_storage().store(level, std::memory_order_relaxed);
}

namespace detail {
void emit(LogLevel level, std::string_view msg) {
  const char* tag = "INFO ";
  switch (level) {
    case LogLevel::kDebug: tag = "DEBUG"; break;
    case LogLevel::kInfo: tag = "INFO "; break;
    case LogLevel::kWarn: tag = "WARN "; break;
    case LogLevel::kError: tag = "ERROR"; break;
  }
  // Compose the whole line first, then write it under one lock: concurrent
  // episode workers may log mid-experiment and lines must never interleave.
  std::string line;
  line.reserve(msg.size() + 10);
  line.append("[").append(tag).append("] ").append(msg).append("\n");
  static Mutex emit_mutex;
  MutexLock lock(emit_mutex);
  std::ostream& out = level >= LogLevel::kWarn ? std::cerr : std::clog;
  out << line;
}
}  // namespace detail

}  // namespace rlattack::util
