// Minimal leveled logger. Experiments are long-running; progress lines keep
// the operator informed without a logging framework dependency.
//
// Thread-safe: the minimum level is an atomic, and emission composes the
// full line before taking a single mutex-guarded write, so concurrent
// episode workers never interleave characters. The startup level honours
// the RLATTACK_LOG_LEVEL environment variable ("debug" | "info" | "warn" |
// "error", or the matching integer 0-3).
#pragma once

#include <sstream>
#include <string_view>

namespace rlattack::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. Defaults to
/// kInfo, overridable at startup via RLATTACK_LOG_LEVEL. Safe to read and
/// change from any thread.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

namespace detail {
void emit(LogLevel level, std::string_view msg);
}

/// Logs a message composed from stream-formattable parts, e.g.
/// `log_info("episode ", i, " reward ", r)`.
template <typename... Args>
void log_at(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream out;
  (out << ... << std::forward<Args>(args));
  detail::emit(level, out.str());
}

template <typename... Args>
void log_debug(Args&&... args) {
  log_at(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  log_at(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  log_at(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  log_at(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace rlattack::util
