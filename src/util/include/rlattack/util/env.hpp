// Central registry of every RLATTACK_* environment variable, and the one
// audited read path for all of them.
//
// Why a registry instead of scattered std::getenv calls:
//  - Drift. Env knobs used to be introduced by whichever TU needed one and
//    documented (or not) by hand; the README and the code disagreed within
//    a few PRs. The registry is the single source of truth: the
//    rlattack-env-registry clang-tidy check (tools/rlattack-tidy) rejects
//    any getenv("RLATTACK_*") literal that is not listed here, and the
//    util_test registry suite pins naming and uniqueness.
//  - Concurrency. getenv is formally not thread-safe against setenv.
//    rlattack never calls setenv and reads every knob once during startup
//    or first-use initialization, before worker threads exist — but that
//    argument needs auditing, and auditing one TU (env.cpp) beats auditing
//    ten. env.cpp carries the tree's only NOLINT(concurrency-mt-unsafe);
//    the blanket .clang-tidy suppression is gone.
//
// Adding a variable: add an enumerator, add its row to RLATTACK_ENV_VARS
// (name + one-line doc — the README table is generated from the same
// wording), and read it through env::get / env::get_long / env::get_double.
// A raw getenv of an RLATTACK_* literal anywhere else fails the tidy-plugin
// check config.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string_view>

namespace rlattack::util::env {

// X-macro registry: X(enumerator, "NAME", "doc").  Script-only variables
// (consumed by run_benches.sh / run_checks.sh, never by C++ code) are listed
// too — the registry documents the whole env surface, not just getenv sites.
#define RLATTACK_ENV_VARS(X)                                                   \
  X(kThreads, "RLATTACK_THREADS",                                              \
    "worker count of util::ThreadPool::global(); default "                     \
    "hardware_concurrency")                                                    \
  X(kExperimentThreads, "RLATTACK_EXPERIMENT_THREADS",                         \
    "episode-worker count of the experiment drivers; default: pool size")      \
  X(kLogLevel, "RLATTACK_LOG_LEVEL",                                           \
    "startup log level: debug|info|warn|error or 0-3; default info")           \
  X(kSimd, "RLATTACK_SIMD",                                                    \
    "GEMM micro-kernel selection: avx2|scalar|auto; default auto")             \
  X(kAttnGemm, "RLATTACK_ATTN_GEMM",                                           \
    "0 disables the GEMM-ified attention decoder (scalar parity path)")        \
  X(kMetrics, "RLATTACK_METRICS",                                              \
    "off|0|false disables telemetry recording at startup")                     \
  X(kMetricsOut, "RLATTACK_METRICS_OUT",                                       \
    "path for the process-exit METRICS JSON export")                           \
  X(kCraftCache, "RLATTACK_CRAFT_CACHE",                                       \
    "0 disables the craft-context history-encoding cache")                     \
  X(kCraftBatch, "RLATTACK_CRAFT_BATCH",                                       \
    "0 disables the batched craft substrate; an integer > 1 sets the "         \
    "flush width (default 32)")                                                \
  X(kEvalBatch, "RLATTACK_EVAL_BATCH",                                         \
    "0 disables the episode-batched evaluation substrate; an integer > 1 "     \
    "sets the rendezvous width (default 32)")                                  \
  X(kBenchScale, "RLATTACK_BENCH_SCALE",                                       \
    "multiplier on bench grid sizes (episodes/epochs); default 1.0")           \
  X(kBenchCompare, "RLATTACK_BENCH_COMPARE",                                   \
    "run_benches.sh only: 1 re-runs each binary and compares rows")            \
  X(kTrace, "RLATTACK_TRACE",                                                  \
    "1 enables the event-tracing layer (timeline ring buffers) at startup")    \
  X(kTraceOut, "RLATTACK_TRACE_OUT",                                           \
    "path for the process-exit Chrome/Perfetto trace JSON (implies "           \
    "RLATTACK_TRACE=1 when that is unset)")                                    \
  X(kTraceStallMs, "RLATTACK_TRACE_STALL_MS",                                  \
    "checked builds: batched-craft rendezvous stall-watchdog interval in "     \
    "milliseconds; default 250")                                               \
  X(kForensicsOut, "RLATTACK_FORENSICS_OUT",                                   \
    "path for the per-step attack forensics JSONL export (enables the "        \
    "stream)")

/// One enumerator per registered variable.
enum class Var {
#define RLATTACK_ENV_ENUM(id, name, doc) id,
  RLATTACK_ENV_VARS(RLATTACK_ENV_ENUM)
#undef RLATTACK_ENV_ENUM
};

struct VarInfo {
  Var var;
  const char* name;  ///< the literal environment-variable name
  const char* doc;   ///< one line, mirrored into the README table
};

/// Every registered variable, in declaration order.
std::span<const VarInfo> registry() noexcept;

/// The environment-variable name of `v`.
const char* name(Var v) noexcept;

/// Raw value (nullptr when unset). The only std::getenv call in the tree
/// sits behind this function.
const char* get(Var v) noexcept;

/// True when the variable is set to a non-empty value.
bool is_set(Var v) noexcept;

/// Strictly parsed integer: the full value must be a base-10 integer,
/// otherwise (and when unset/empty) nullopt.
std::optional<long> get_long(Var v) noexcept;

/// Strictly parsed double: the full value must parse, otherwise nullopt.
std::optional<double> get_double(Var v) noexcept;

/// Shared "kill switch" idiom: true iff the value is exactly "0". Several
/// knobs (craft cache, attention GEMM) are on unless explicitly zeroed.
bool is_zero(Var v) noexcept;

}  // namespace rlattack::util::env
