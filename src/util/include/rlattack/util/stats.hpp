// Small statistics helpers used by the experiment harnesses: running
// mean/variance (Welford), and vector norms used for perturbation budgets.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace rlattack::util {

/// Numerically stable running mean / variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Euclidean (L2) norm of a vector.
inline double l2_norm(std::span<const float> v) noexcept {
  double s = 0.0;
  for (float x : v) s += static_cast<double>(x) * static_cast<double>(x);
  return std::sqrt(s);
}

/// Max-abs (L-infinity) norm of a vector.
inline double linf_norm(std::span<const float> v) noexcept {
  double m = 0.0;
  for (float x : v) m = std::max(m, std::abs(static_cast<double>(x)));
  return m;
}

/// Mean of a vector of doubles; 0 for empty input.
inline double mean_of(const std::vector<double>& v) noexcept {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

}  // namespace rlattack::util
