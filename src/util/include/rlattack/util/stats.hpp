// Small statistics helpers used by the experiment harnesses: running
// mean/variance (Welford), and vector norms used for perturbation budgets.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace rlattack::util {

/// Numerically stable running mean / variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  /// Folds another accumulator into this one (Chan et al.'s parallel
  /// Welford combine): the result summarises the union of both sample
  /// streams, including min/max. Used to combine per-thread telemetry
  /// partials at export time (obs::Histogram / obs::SpanStat).
  void merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto n = static_cast<double>(n_ + other.n_);
    m2_ += other.m2_ + delta * delta * (static_cast<double>(n_) *
                                        static_cast<double>(other.n_)) / n;
    mean_ += delta * static_cast<double>(other.n_) / n;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Sum of all samples (mean * count).
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Euclidean (L2) norm of a vector.
inline double l2_norm(std::span<const float> v) noexcept {
  double s = 0.0;
  for (float x : v) s += static_cast<double>(x) * static_cast<double>(x);
  return std::sqrt(s);
}

/// Max-abs (L-infinity) norm of a vector.
inline double linf_norm(std::span<const float> v) noexcept {
  double m = 0.0;
  for (float x : v) m = std::max(m, std::abs(static_cast<double>(x)));
  return m;
}

/// Mean of a vector of doubles; 0 for empty input.
inline double mean_of(const std::vector<double>& v) noexcept {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

}  // namespace rlattack::util
