// Checked-build invariant layer (RLATTACK_CHECKED).
//
// The repo's headline guarantees — bit-identical experiment rows at any
// thread count, exact FGSM/PGD gradients through the hand-rolled autodiff
// substrate, perturbations that actually respect their declared budget —
// are enforced by parity tests after the fact. This header adds the
// point-of-occurrence half: cheap-to-write, expensive-to-run invariant
// assertions that are compiled in only when the tree is configured with
// -DRLATTACK_CHECKED=ON (which defines the RLATTACK_CHECKED macro) and
// cost nothing in release builds.
//
// Usage pattern: guard instrumentation with `if constexpr (kCheckedBuild)`
// so the checking code always *compiles* (no bit-rot in release trees) but
// is dead-stripped when the macro is absent. A failed invariant throws
// CheckFailure — an exception rather than an abort so the checked test
// suite (tests/checked_invariants_test.cpp) can assert that deliberately
// broken inputs trip the right diagnostic.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace rlattack::util {

/// True when this translation unit was compiled with -DRLATTACK_CHECKED=ON.
/// Prefer `if constexpr (kCheckedBuild)` over #ifdef at instrumentation
/// sites: the guarded code still type-checks in release builds.
#if defined(RLATTACK_CHECKED)
inline constexpr bool kCheckedBuild = true;
#else
inline constexpr bool kCheckedBuild = false;
#endif

/// Thrown when a checked-build invariant fails. Derives from logic_error:
/// every trip is a programming bug (broken shape contract, NaN leak,
/// budget violation), never a recoverable runtime condition.
class CheckFailure : public std::logic_error {
 public:
  CheckFailure(const char* file, int line, const std::string& message);

  const char* file() const noexcept { return file_; }
  int line() const noexcept { return line_; }

 private:
  const char* file_;
  int line_;
};

/// Throws CheckFailure with a "file:line: message" diagnostic. Out of line
/// so the cold path never bloats instrumented call sites.
[[noreturn]] void check_failed(const char* file, int line,
                               const std::string& message);

/// Index of the first NaN/Inf element, or SIZE_MAX when all are finite.
std::size_t first_non_finite(std::span<const float> values) noexcept;

/// True when every element is finite (no NaN, no +/-Inf).
bool all_finite(std::span<const float> values) noexcept;

/// "[2, 3, 4]" formatting for diagnostics (mirrors Tensor::shape_string
/// without depending on the nn library).
std::string shape_string(const std::vector<std::size_t>& shape);

/// Order-sensitive 64-bit FNV-1a hash over the raw float bit patterns.
/// Bit-identical tensors hash equal; any single-ULP divergence does not.
std::uint64_t hash_floats(std::span<const float> values) noexcept;

/// Hash of the first `draws` outputs of an Rng seeded with `seed`. Used by
/// the episode-parallel driver to cross-check that per-job RNG streams are
/// pure functions of the job seed regardless of which worker runs the job.
std::uint64_t hash_rng_stream(std::uint64_t seed, std::size_t draws) noexcept;

}  // namespace rlattack::util

/// Asserts `cond` in checked builds; throws rlattack::util::CheckFailure
/// with `message` (any expression convertible to std::string) on failure.
/// In release builds the condition and message are type-checked but never
/// evaluated.
#if defined(RLATTACK_CHECKED)
#define RLATTACK_CHECK(cond, message)                                \
  do {                                                               \
    if (!(cond))                                                     \
      ::rlattack::util::check_failed(__FILE__, __LINE__, (message)); \
  } while (0)
#else
#define RLATTACK_CHECK(cond, message)   \
  do {                                  \
    (void)sizeof((cond) ? true : false); \
  } while (0)
#endif
