// Persistent worker-thread pool with a parallel_for primitive, shared by the
// NN compute kernels (GEMM row blocks, conv batch items, elementwise loops).
//
// Determinism contract:
//  - Chunk boundaries handed to `parallel_for_chunks` depend only on (n,
//    grain), never on the worker count, so chunk-indexed accumulator schemes
//    (reduce in chunk order after the join) are bit-stable across any
//    RLATTACK_THREADS setting.
//  - `parallel_for` chunks may depend on the worker count; callers must only
//    write disjoint outputs (no cross-chunk reductions) from it.
//  - With 1 thread every loop runs inline on the calling thread: fully
//    serial, no pool machinery, bit-identical to a build without the pool.
//
// Worker count resolution (first use of `global()`):
//    RLATTACK_THREADS env var if set to a positive integer, otherwise
//    std::thread::hardware_concurrency(), clamped to >= 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

namespace rlattack::util {

class ThreadPool {
 public:
  /// Pool with `threads` total workers (including the calling thread, which
  /// participates in every loop). `threads == 1` spawns no OS threads.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool used by the NN kernels. Created on first use from
  /// RLATTACK_THREADS / hardware_concurrency.
  static ThreadPool& global();

  /// Rebuilds the global pool with an explicit worker count (0 = re-resolve
  /// from the environment). For tests and benchmarks that compare thread
  /// counts in one process; not safe while a parallel_for is in flight.
  static void reset_global(std::size_t threads);

  /// Total workers, including the calling thread.
  std::size_t size() const noexcept { return threads_; }

  /// Splits [0, n) into contiguous ascending chunks of at least `grain`
  /// indices and invokes fn(begin, end) for each, possibly concurrently.
  /// Blocks until every chunk completed; rethrows the first exception.
  /// Chunk boundaries may depend on the worker count, so fn must only write
  /// disjoint per-index outputs. Nested calls from inside a worker run
  /// inline (serial) to avoid deadlock.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// As parallel_for, but fn also receives the chunk index, and the chunk
  /// layout depends only on (n, grain): chunk c covers
  /// [c * grain, min(n, (c + 1) * grain)). Returns the chunk count (also
  /// available up front via chunk_count). Use for deterministic reductions:
  /// accumulate per chunk, then reduce in chunk order on the caller.
  std::size_t parallel_for_chunks(
      std::size_t n, std::size_t grain,
      const std::function<void(std::size_t chunk, std::size_t begin,
                               std::size_t end)>& fn);

  /// Number of chunks parallel_for_chunks will produce for (n, grain).
  static std::size_t chunk_count(std::size_t n, std::size_t grain) noexcept {
    if (n == 0) return 0;
    if (grain == 0) grain = 1;
    return (n + grain - 1) / grain;
  }

  /// Small dense per-thread index: the first thread that asks (normally the
  /// main thread) gets 0, every subsequent distinct thread the next integer.
  /// Stable for the thread's lifetime; independent of pool membership. The
  /// telemetry layer (rlattack::obs) keys its per-thread recording slots on
  /// this, which is why it lives here rather than on std::this_thread: pool
  /// workers and the submitting thread all get compact indices.
  static std::size_t thread_index() noexcept;

  /// True when the calling thread is currently executing a parallel_for
  /// chunk (a pool worker, or the submitting thread while it helps drain).
  /// Any parallel_for issued in this state runs caller-inline — the
  /// nested-parallelism rule that lets episode-level fan-out wrap the GEMM
  /// kernels without deadlock or oversubscription.
  static bool inside_worker() noexcept;

  /// Timeline-tracing hooks. util cannot depend on obs, so the tracing
  /// layer (rlattack::obs::trace) installs these function pointers at
  /// startup; when tracing is off `begin` returns 0 after one relaxed load
  /// and `end` is never called, so the pool pays nothing. `begin` runs
  /// before a job dispatch / worker drain, `end` after it with the matching
  /// begin timestamp and two numeric args (chunk count, worker count).
  struct TraceHooks {
    std::uint64_t (*begin)() noexcept = nullptr;
    void (*end)(const char* name, std::uint64_t begin_ns, double chunks,
                double workers) noexcept = nullptr;
  };
  static void set_trace_hooks(TraceHooks hooks) noexcept;

 private:
  struct Impl;
  void run_chunked(std::size_t nchunks,
                   const std::function<void(std::size_t)>& chunk_fn);

  std::size_t threads_;
  std::unique_ptr<Impl> impl_;  // null when threads_ == 1
};

}  // namespace rlattack::util
