// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in rlattack takes an explicit Rng (or a seed used
// to construct one); nothing reads global entropy. The generator is
// xoshiro256** seeded via splitmix64, which gives high-quality streams from
// arbitrary 64-bit seeds and is much faster than std::mt19937_64.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace rlattack::util {

/// splitmix64 step; used for seeding and for cheap hash mixing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can be
/// plugged into <random> distributions, though the convenience members below
/// cover everything the library needs.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform float in [lo, hi).
  float uniform_f(float lo, float hi) noexcept {
    return static_cast<float>(uniform(lo, hi));
  }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire rejection to
  /// avoid modulo bias.
  std::uint64_t uniform_int(std::uint64_t n) {
    if (n == 0) throw std::logic_error("Rng::uniform_int: n must be > 0");
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform int in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    if (hi < lo) throw std::logic_error("Rng::uniform_int: hi < lo");
    return lo + static_cast<int>(
                    uniform_int(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Box–Muller (no cached spare: keeps the state
  /// trivially copyable and the stream position obvious).
  double normal() noexcept {
    double u1 = uniform();
    // Guard against log(0).
    if (u1 <= 0.0) u1 = std::numeric_limits<double>::min();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Normal with explicit mean/stddev.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  float normal_f(float mean, float stddev) noexcept {
    return static_cast<float>(normal(mean, stddev));
  }

  /// Bernoulli(p).
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Sample an index from a discrete probability distribution. The weights
  /// need not be normalised; they must be non-negative with positive sum.
  std::size_t categorical(const std::vector<float>& weights);

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child generator; the child stream does not
  /// overlap the parent stream for any practical sequence length.
  Rng split() noexcept {
    std::uint64_t s = (*this)();
    return Rng(splitmix64(s));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace rlattack::util
