// Grayscale image output (binary PGM) for the Figure 3 perturbation
// visualisation and for debugging environment renders.
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace rlattack::util {

/// Writes a grayscale image as binary PGM (P5). `pixels` holds row-major
/// values in [0, 1]; values outside the range are clamped. Returns false on
/// I/O failure or if pixels.size() != width * height.
bool write_pgm(const std::string& path, std::span<const float> pixels,
               std::size_t width, std::size_t height);

/// Rescales `pixels` so min -> 0 and max -> 1 (paper Figure 3 rightmost
/// panel: perturbation rescaled to full range for visibility). A constant
/// image maps to all-zeros.
void rescale_to_unit(std::span<float> pixels);

}  // namespace rlattack::util
