// Clang Thread Safety Analysis surface for the whole concurrency substrate.
//
// Every mutex-owning type in the tree (util::ThreadPool, util::log,
// obs::MetricsRegistry, attack::BatchedCraftPlanner, the episode worker
// pool) declares its lock-ordering protocol through these macros so
// `-Wthread-safety -Werror` (run_checks.sh config "tsa") proves lock
// discipline on every compile — including protocols the sanitizer matrix
// can only validate on the interleavings a test happens to execute, such as
// the planner's "flush inline under the planner mutex, never from a pool
// worker" rule (RLATTACK_REQUIRES on flush_locked, RLATTACK_EXCLUDES on the
// enroll/submit/retire API).
//
// Under any compiler without the attributes (gcc, MSVC) every macro expands
// to nothing and util::Mutex / util::MutexLock compile down to the
// std::mutex / std::unique_lock they wrap — the default build is unaffected
// and bench rows stay bit-identical.
//
// Conventions (see DESIGN.md "Static analysis"):
//  - Members guarded by a lock carry RLATTACK_GUARDED_BY(mu_) on the
//    declaration; the comment says *what invariant* the lock protects.
//  - Private "_locked" helpers take RLATTACK_REQUIRES(mu_); public entry
//    points that take the lock themselves take RLATTACK_EXCLUDES(mu_).
//  - Condition-variable predicates that read guarded state are written as
//    explicit `while (!pred) cv.wait(...)` loops in the annotated function
//    body, never as lambdas — the analysis is function-local and cannot see
//    a capability held across a lambda boundary.
//  - Cross-thread handoffs the analysis cannot express (a worker reading
//    state the spawning thread guards for it) are restructured so the data
//    is hoisted out under the lock before the handoff, not waived with
//    RLATTACK_NO_THREAD_SAFETY_ANALYSIS.
#pragma once

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define RLATTACK_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RLATTACK_THREAD_ANNOTATION(x)  // no-op under gcc/MSVC
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define RLATTACK_CAPABILITY(x) RLATTACK_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires on construction, releases on scope exit.
#define RLATTACK_SCOPED_CAPABILITY RLATTACK_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the named capability.
#define RLATTACK_GUARDED_BY(x) RLATTACK_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the named capability.
#define RLATTACK_PT_GUARDED_BY(x) RLATTACK_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function may only be called while holding the capability (it does not
/// acquire it) — the "_locked" helper contract.
#define RLATTACK_REQUIRES(...) \
  RLATTACK_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function may only be called while NOT holding the capability (it will
/// acquire it itself; calling with it held would self-deadlock).
#define RLATTACK_EXCLUDES(...) \
  RLATTACK_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and returns without releasing it.
#define RLATTACK_ACQUIRE(...) \
  RLATTACK_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability it was called with.
#define RLATTACK_RELEASE(...) \
  RLATTACK_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `val`.
#define RLATTACK_TRY_ACQUIRE(val, ...) \
  RLATTACK_THREAD_ANNOTATION(try_acquire_capability(val, __VA_ARGS__))

/// Declares lock-ordering between two capabilities.
#define RLATTACK_ACQUIRED_BEFORE(...) \
  RLATTACK_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define RLATTACK_ACQUIRED_AFTER(...) \
  RLATTACK_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returns a reference to the named capability (accessor pattern).
#define RLATTACK_RETURN_CAPABILITY(x) \
  RLATTACK_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch of last resort; every use needs a comment explaining why
/// the protocol is correct but inexpressible. Prefer restructuring.
#define RLATTACK_NO_THREAD_SAFETY_ANALYSIS \
  RLATTACK_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace rlattack::util {

/// std::mutex with the capability attribute the analysis needs. Zero
/// overhead: the annotated lock/unlock forward straight to std::mutex, and
/// native() exposes the wrapped mutex for condition_variable waits.
class RLATTACK_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RLATTACK_ACQUIRE() { mu_.lock(); }
  void unlock() RLATTACK_RELEASE() { mu_.unlock(); }
  bool try_lock() RLATTACK_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for std::condition_variable::wait. The caller must
  /// hold this Mutex (via MutexLock) around the wait; wait's internal
  /// unlock/relock is invisible to the analysis but re-establishes the
  /// capability before returning, so guarded reads after the wait are sound.
  std::mutex& native() noexcept { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped lock over util::Mutex (std::unique_lock underneath, so it
/// composes with condition variables via native_lock()). The capability is
/// held from construction to scope exit; early unlock is deliberately not
/// offered — scopes in this codebase are already minimal.
class RLATTACK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RLATTACK_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() RLATTACK_RELEASE() = default;
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// For condition_variable::wait(lock) calls made while holding the mutex.
  std::unique_lock<std::mutex>& native_lock() noexcept { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace rlattack::util
