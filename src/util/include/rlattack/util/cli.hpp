// Minimal command-line argument parsing for the rlattack CLI and examples:
// one positional subcommand followed by --key=value / --key value options
// and --flag switches.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rlattack::util {

class CliArgs {
 public:
  /// Parses argv. The first non-option token becomes the subcommand;
  /// remaining non-option tokens are positional arguments. Throws
  /// std::invalid_argument on malformed options ("--" with empty name).
  CliArgs(int argc, const char* const* argv);

  const std::string& program() const noexcept { return program_; }
  const std::string& command() const noexcept { return command_; }
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  bool has(const std::string& key) const;

  /// String option; returns fallback when absent.
  std::string get(const std::string& key, const std::string& fallback) const;

  /// Typed accessors; throw std::invalid_argument on unparsable values.
  double get_double(const std::string& key, double fallback) const;
  long get_int(const std::string& key, long fallback) const;

  /// Lists every option key that was provided (for unknown-flag warnings).
  std::vector<std::string> keys() const;

 private:
  std::string program_;
  std::string command_;
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_;
};

}  // namespace rlattack::util
