// Console table and CSV emission for experiment results.
//
// Every bench binary prints a paper-shaped table to stdout and writes the
// same rows as CSV so the results can be re-plotted.
#pragma once

#include <string>
#include <vector>

namespace rlattack::util {

/// Accumulates rows of strings and renders them as an aligned ASCII table
/// and/or a CSV file. All formatting happens at render time; the builder is
/// a plain value type.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Appends one row. The row is padded/truncated to the header width.
  void add_row(std::vector<std::string> row);

  /// Renders an aligned, pipe-separated table.
  std::string to_string() const;

  /// Renders RFC-4180-ish CSV (quotes fields containing commas/quotes).
  std::string to_csv() const;

  /// Writes CSV to `path`; returns false (and leaves no partial file
  /// guarantee) on I/O failure.
  bool write_csv(const std::string& path) const;

  std::size_t row_count() const noexcept { return rows_.size(); }
  const std::vector<std::string>& header() const noexcept { return header_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` fractional digits.
std::string fmt(double value, int digits = 2);

/// Formats "mean ± stddev".
std::string fmt_pm(double mean, double stddev, int digits = 2);

}  // namespace rlattack::util
