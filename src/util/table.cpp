#include "rlattack/util/table.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rlattack::util {

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty())
    throw std::logic_error("TableWriter: header must be non-empty");
}

void TableWriter::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TableWriter::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto render_row = [&](const std::vector<std::string>& row,
                        std::ostringstream& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c] << std::string(width[c] - row[c].size() + 1, ' ');
    }
    out << "|\n";
  };

  std::ostringstream out;
  render_row(header_, out);
  for (std::size_t c = 0; c < header_.size(); ++c)
    out << "|" << std::string(width[c] + 2, '-');
  out << "|\n";
  for (const auto& row : rows_) render_row(row, out);
  return out.str();
}

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char ch : field) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}
}  // namespace

std::string TableWriter::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

bool TableWriter::write_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_csv();
  return static_cast<bool>(out);
}

std::string fmt(double value, int digits) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(digits);
  out << value;
  return out.str();
}

std::string fmt_pm(double mean, double stddev, int digits) {
  return fmt(mean, digits) + " +/- " + fmt(stddev, digits);
}

}  // namespace rlattack::util
