#include "rlattack/util/env.hpp"

#include <cstdlib>
#include <cstring>

namespace rlattack::util::env {

namespace {

constexpr VarInfo kRegistry[] = {
#define RLATTACK_ENV_INFO(id, name, doc) {Var::id, name, doc},
    RLATTACK_ENV_VARS(RLATTACK_ENV_INFO)
#undef RLATTACK_ENV_INFO
};

}  // namespace

std::span<const VarInfo> registry() noexcept { return kRegistry; }

const char* name(Var v) noexcept {
  return kRegistry[static_cast<std::size_t>(v)].name;
}

const char* get(Var v) noexcept {
  // The tree's single environment read. rlattack never calls setenv, and
  // every knob is read during startup or first-use initialization before
  // worker threads exist (each caller's static-init idiom pins that), so
  // the getenv/setenv race concurrency-mt-unsafe warns about cannot occur.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  return std::getenv(name(v));
}

bool is_set(Var v) noexcept {
  const char* raw = get(v);
  return raw != nullptr && *raw != '\0';
}

std::optional<long> get_long(Var v) noexcept {
  const char* raw = get(v);
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0') return std::nullopt;
  return value;
}

std::optional<double> get_double(Var v) noexcept {
  const char* raw = get(v);
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw || *end != '\0') return std::nullopt;
  return value;
}

bool is_zero(Var v) noexcept {
  const char* raw = get(v);
  return raw != nullptr && std::strcmp(raw, "0") == 0;
}

}  // namespace rlattack::util::env
