#include "rlattack/util/image.hpp"

#include <algorithm>
#include <fstream>

namespace rlattack::util {

bool write_pgm(const std::string& path, std::span<const float> pixels,
               std::size_t width, std::size_t height) {
  if (pixels.size() != width * height || width == 0 || height == 0)
    return false;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << "P5\n" << width << ' ' << height << "\n255\n";
  for (float p : pixels) {
    const float clamped = std::clamp(p, 0.0f, 1.0f);
    out.put(static_cast<char>(static_cast<unsigned char>(clamped * 255.0f)));
  }
  return static_cast<bool>(out);
}

void rescale_to_unit(std::span<float> pixels) {
  if (pixels.empty()) return;
  const auto [lo_it, hi_it] = std::minmax_element(pixels.begin(), pixels.end());
  const float lo = *lo_it, hi = *hi_it;
  const float range = hi - lo;
  if (range <= 0.0f) {
    std::fill(pixels.begin(), pixels.end(), 0.0f);
    return;
  }
  for (float& p : pixels) p = (p - lo) / range;
}

}  // namespace rlattack::util
