#include "rlattack/util/check.hpp"

#include <bit>
#include <cmath>

#include "rlattack/util/rng.hpp"

namespace rlattack::util {

CheckFailure::CheckFailure(const char* file, int line,
                           const std::string& message)
    : std::logic_error(std::string(file) + ":" + std::to_string(line) + ": " +
                       message),
      file_(file),
      line_(line) {}

void check_failed(const char* file, int line, const std::string& message) {
  throw CheckFailure(file, line, message);
}

std::size_t first_non_finite(std::span<const float> values) noexcept {
  for (std::size_t i = 0; i < values.size(); ++i)
    if (!std::isfinite(values[i])) return i;
  return static_cast<std::size_t>(-1);
}

bool all_finite(std::span<const float> values) noexcept {
  return first_non_finite(values) == static_cast<std::size_t>(-1);
}

std::string shape_string(const std::vector<std::size_t>& shape) {
  std::string out = "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(shape[i]);
  }
  out += "]";
  return out;
}

std::uint64_t hash_floats(std::span<const float> values) noexcept {
  // FNV-1a over the IEEE-754 bit patterns: order-sensitive and exact, so
  // the hash distinguishes even single-ULP drift between two streams.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const float v : values) {
    const auto bits = std::bit_cast<std::uint32_t>(v);
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (bits >> shift) & 0xffU;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

std::uint64_t hash_rng_stream(std::uint64_t seed, std::size_t draws) noexcept {
  Rng rng(seed);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < draws; ++i) {
    std::uint64_t word = rng();
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (word >> shift) & 0xffU;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

}  // namespace rlattack::util
