#include "rlattack/util/rng.hpp"

#include <numeric>

namespace rlattack::util {

std::size_t Rng::categorical(const std::vector<float>& weights) {
  if (weights.empty())
    throw std::logic_error("Rng::categorical: empty weights");
  double total = 0.0;
  for (float w : weights) {
    if (w < 0.0f || !std::isfinite(w))
      throw std::logic_error("Rng::categorical: negative or non-finite weight");
    total += w;
  }
  if (total <= 0.0)
    throw std::logic_error("Rng::categorical: weights sum to zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack lands on the last bucket.
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_int(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace rlattack::util
