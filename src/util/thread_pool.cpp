#include "rlattack/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <thread>
#include <vector>

#include "rlattack/util/env.hpp"
#include "rlattack/util/thread_safety.hpp"

namespace rlattack::util {

namespace {

// True on pool worker threads; nested parallel loops run inline instead of
// re-entering the dispatch machinery (which would deadlock on the join).
thread_local bool tls_inside_worker = false;

// Dense per-thread index, assigned lazily on first ThreadPool::thread_index
// call from each thread.
std::atomic<std::size_t> g_next_thread_index{0};
thread_local std::size_t tls_thread_index = static_cast<std::size_t>(-1);

// Trace hooks installed by rlattack::obs (TraceLog::global construction).
// Stored as individual relaxed atomics: torn installs are impossible (each
// pointer flips nullptr -> value exactly once) and the emit path stays a
// pair of relaxed loads.
std::atomic<std::uint64_t (*)() noexcept> g_trace_begin{nullptr};
std::atomic<void (*)(const char*, std::uint64_t, double, double) noexcept>
    g_trace_end{nullptr};

std::uint64_t pool_trace_begin() noexcept {
  const auto fn = g_trace_begin.load(std::memory_order_relaxed);
  return fn ? fn() : 0;
}

void pool_trace_end(const char* name, std::uint64_t begin_ns, double chunks,
                    double workers) noexcept {
  if (begin_ns == 0) return;  // tracing was off at begin: keep the pair inert
  if (const auto fn = g_trace_end.load(std::memory_order_relaxed))
    fn(name, begin_ns, chunks, workers);
}

std::size_t resolve_thread_count() {
  if (const std::optional<long> v = env::get_long(env::Var::kThreads);
      v && *v > 0)
    return static_cast<std::size_t>(*v);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

// One synchronous parallel loop. Owns its chunk counters so a worker that
// wakes late and still holds a pointer to a finished job can only observe an
// exhausted counter — it can never consume chunks of a newer job.
struct Job {
  std::function<void(std::size_t)> fn;
  std::size_t nchunks = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  Mutex error_mutex;
  std::exception_ptr first_error RLATTACK_GUARDED_BY(error_mutex);

  // Pulls chunks until exhausted; runs on workers and the submitter alike.
  void drain() RLATTACK_EXCLUDES(error_mutex) {
    for (;;) {
      const std::size_t chunk = next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= nchunks) return;
      try {
        fn(chunk);
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      done.fetch_add(1, std::memory_order_acq_rel);
    }
  }

  // Only meaningful after the join (every chunk done): no concurrent writer
  // remains, but the analysis still wants the lock — take it, it is free.
  std::exception_ptr take_error() RLATTACK_EXCLUDES(error_mutex) {
    MutexLock lock(error_mutex);
    return first_error;
  }
};

}  // namespace

struct ThreadPool::Impl {
  explicit Impl(std::size_t extra_workers) {
    workers.reserve(extra_workers);
    for (std::size_t i = 0; i < extra_workers; ++i)
      workers.emplace_back([this] { worker_loop(); });
  }

  ~Impl() {
    {
      MutexLock lock(mutex);
      stopping = true;
    }
    wake.notify_all();
    for (std::thread& t : workers) t.join();
  }

  void worker_loop() RLATTACK_EXCLUDES(mutex) {
    tls_inside_worker = true;
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        MutexLock lock(mutex);
        // Explicit wait loop (not a predicate lambda): `stopping` and
        // `generation` are guarded reads and must stay in this annotated
        // scope, where the analysis can see the capability is held.
        while (!stopping && generation == seen) wake.wait(lock.native_lock());
        if (stopping) return;
        seen = generation;
        job = current;
      }
      if (job) {
        const std::uint64_t t0 = pool_trace_begin();
        job->drain();
        pool_trace_end("pool.drain", t0,
                       static_cast<double>(job->nchunks), 0.0);
      }
    }
  }

  // Runs one job to completion, helping from the calling thread.
  void run(const std::shared_ptr<Job>& job) RLATTACK_EXCLUDES(mutex) {
    {
      MutexLock lock(mutex);
      current = job;
      ++generation;
    }
    wake.notify_all();
    // The submitting thread helps; flag it as "inside" so a nested
    // parallel_for from chunk code (e.g. sgemm under a batch-parallel conv)
    // runs inline instead of re-entering dispatch and deadlocking.
    const bool prev_inside = tls_inside_worker;
    tls_inside_worker = true;
    job->drain();
    tls_inside_worker = prev_inside;
    // The counter is exhausted, but other workers may still be inside fn.
    while (job->done.load(std::memory_order_acquire) < job->nchunks)
      std::this_thread::yield();
    {
      MutexLock lock(mutex);
      current.reset();
    }
  }

  std::vector<std::thread> workers;
  Mutex mutex;
  std::condition_variable wake;
  bool stopping RLATTACK_GUARDED_BY(mutex) = false;
  /// Job workers should drain; reset after the join.
  std::shared_ptr<Job> current RLATTACK_GUARDED_BY(mutex);
  /// Bumped per job so a worker can tell a new job from a spurious wake.
  std::uint64_t generation RLATTACK_GUARDED_BY(mutex) = 0;
};

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(threads == 0 ? 1 : threads) {
  if (threads_ > 1) impl_ = std::make_unique<Impl>(threads_ - 1);
}

ThreadPool::~ThreadPool() = default;

bool ThreadPool::inside_worker() noexcept { return tls_inside_worker; }

void ThreadPool::set_trace_hooks(TraceHooks hooks) noexcept {
  g_trace_begin.store(hooks.begin, std::memory_order_relaxed);
  g_trace_end.store(hooks.end, std::memory_order_relaxed);
}

std::size_t ThreadPool::thread_index() noexcept {
  if (tls_thread_index == static_cast<std::size_t>(-1))
    tls_thread_index =
        g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
  return tls_thread_index;
}

namespace {
Mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool RLATTACK_GUARDED_BY(g_global_mutex);
}  // namespace

ThreadPool& ThreadPool::global() {
  MutexLock lock(g_global_mutex);
  if (!g_global_pool)
    g_global_pool = std::make_unique<ThreadPool>(resolve_thread_count());
  return *g_global_pool;
}

void ThreadPool::reset_global(std::size_t threads) {
  MutexLock lock(g_global_mutex);
  g_global_pool = std::make_unique<ThreadPool>(
      threads == 0 ? resolve_thread_count() : threads);
}

void ThreadPool::run_chunked(std::size_t nchunks,
                             const std::function<void(std::size_t)>& chunk_fn) {
  if (nchunks == 0) return;
  // Serial pool, single chunk, or a nested call from inside a worker: run
  // inline. This is the deterministic RLATTACK_THREADS=1 path. Nested calls
  // stay untraced — a pool.job span per nested GEMM row block would swamp
  // the timeline; the enclosing job span already covers them.
  if (!impl_ || nchunks == 1 || tls_inside_worker) {
    const std::uint64_t t0 = tls_inside_worker ? 0 : pool_trace_begin();
    for (std::size_t c = 0; c < nchunks; ++c) chunk_fn(c);
    pool_trace_end("pool.job", t0, static_cast<double>(nchunks), 1.0);
    return;
  }
  // parallel_for is synchronous; serialize submitters defensively so two
  // threads cannot interleave job dispatch on one pool.
  static Mutex submit_mutex;
  MutexLock submit_lock(submit_mutex);
  auto job = std::make_shared<Job>();
  job->fn = chunk_fn;
  job->nchunks = nchunks;
  const std::uint64_t t0 = pool_trace_begin();
  impl_->run(job);
  pool_trace_end("pool.job", t0, static_cast<double>(nchunks),
                 static_cast<double>(threads_));
  if (std::exception_ptr error = job->take_error())
    std::rethrow_exception(error);
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  // Even static split over the workers, but never below `grain` per chunk.
  std::size_t chunks = std::min(threads_, (n + grain - 1) / grain);
  if (chunks == 0) chunks = 1;
  const std::size_t base = n / chunks, rem = n % chunks;
  run_chunked(chunks, [&](std::size_t c) {
    const std::size_t begin = c * base + std::min(c, rem);
    const std::size_t end = begin + base + (c < rem ? 1 : 0);
    if (begin < end) fn(begin, end);
  });
}

std::size_t ThreadPool::parallel_for_chunks(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (grain == 0) grain = 1;
  const std::size_t chunks = chunk_count(n, grain);
  run_chunked(chunks, [&](std::size_t c) {
    const std::size_t begin = c * grain;
    const std::size_t end = std::min(n, begin + grain);
    fn(c, begin, end);
  });
  return chunks;
}

}  // namespace rlattack::util
