#include "rlattack/util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace rlattack::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      std::string body = token.substr(2);
      if (body.empty())
        throw std::invalid_argument("CliArgs: bare '--' is not an option");
      const auto eq = body.find('=');
      if (eq != std::string::npos) {
        options_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        options_[body] = argv[++i];
      } else {
        options_[body] = "true";  // boolean switch
      }
    } else if (command_.empty()) {
      command_ = token;
    } else {
      positional_.push_back(token);
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  return options_.count(key) > 0;
}

std::string CliArgs::get(const std::string& key,
                         const std::string& fallback) const {
  auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0')
    throw std::invalid_argument("CliArgs: --" + key + " expects a number");
  return value;
}

long CliArgs::get_int(const std::string& key, long fallback) const {
  auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  char* end = nullptr;
  const long value = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0')
    throw std::invalid_argument("CliArgs: --" + key + " expects an integer");
  return value;
}

std::vector<std::string> CliArgs::keys() const {
  std::vector<std::string> out;
  out.reserve(options_.size());
  for (const auto& [key, value] : options_) out.push_back(key);
  return out;
}

}  // namespace rlattack::util
