#include "rlattack/core/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "rlattack/util/check.hpp"
#include "rlattack/util/stats.hpp"

namespace rlattack::core {

AttackSession::AttackSession(rl::Agent& victim, env::Game game,
                             seq2seq::Seq2SeqModel& model,
                             attack::Attack& attack, attack::Budget budget)
    : victim_(victim),
      game_(game),
      model_(model),
      attack_(attack),
      budget_(budget),
      raw_env_(env::make_environment(game, /*seed=*/1)),
      stack_depth_(env::agent_frame_stack(game)) {
  frame_size_ = raw_env_->observation_size();
  if (model_.config().frame_size() != frame_size_)
    throw std::logic_error(
        "AttackSession: model frame size does not match the game");
  if (model_.config().actions != raw_env_->action_count())
    throw std::logic_error(
        "AttackSession: model action count does not match the game");
  // Agent-side observation shape (stacked along channel 0 for images).
  agent_obs_shape_ = raw_env_->observation_shape();
  agent_obs_shape_[0] *= stack_depth_;
}

std::size_t AttackSession::output_steps() const {
  return model_.config().output_steps;
}

EpisodeOutcome AttackSession::run_episode(const AttackPolicy& policy,
                                          std::uint64_t episode_seed) {
  raw_env_->seed(episode_seed);
  util::Rng rng(episode_seed ^ 0x5bd1e995u);
  RolloutFifo fifo(model_.config().input_steps, frame_size_,
                   raw_env_->action_count());
  FrameAccumulator accumulator(stack_depth_, frame_size_);
  const env::ObservationBounds bounds = raw_env_->observation_bounds();

  EpisodeOutcome outcome;
  util::RunningStats l2_stats, linf_stats;
  nn::Tensor frame = raw_env_->reset();
  bool done = false;
  bool single_fired = false;

  while (!done) {
    nn::Tensor delivered = frame;
    const bool eligible = fifo.full();
    bool attack_now = false;
    switch (policy.mode) {
      case AttackPolicy::Mode::kNone: break;
      case AttackPolicy::Mode::kEveryStep:
        attack_now = eligible && outcome.steps % std::max<std::size_t>(
                                     1, policy.stride) == 0;
        break;
      case AttackPolicy::Mode::kSingleStep:
        attack_now = eligible && !single_fired &&
                     outcome.steps >= policy.trigger_step;
        break;
    }

    std::size_t clean_action = 0;
    if (attack_now) {
      attack::CraftInputs inputs =
          fifo.crafting_inputs(frame.reshaped({frame_size_}));
      attack::Goal goal;
      goal.mode = policy.goal_mode;
      const std::size_t m = model_.config().output_steps;
      goal.position = policy.random_position
                          ? rng.uniform_int(m)
                          : std::min(policy.position, m - 1);
      if (goal.mode == attack::Goal::Mode::kTargeted) {
        if (policy.runner_up_target) {
          // Aim at the runner-up action of the prediction at the position:
          // the easiest-to-reach wrong action.
          nn::Tensor logits = model_.forward(
              inputs.action_history, inputs.obs_history, inputs.current_obs);
          const std::size_t a = logits.dim(2);
          auto row = logits.data().subspan(goal.position * a, a);
          std::size_t best = 0, second = (a > 1) ? 1 : 0;
          if (row[second] > row[best]) std::swap(best, second);
          for (std::size_t i = 2; i < a; ++i) {
            if (row[i] > row[best]) {
              second = best;
              best = i;
            } else if (row[i] > row[second]) {
              second = i;
            }
          }
          goal.target_action = second;
        } else {
          goal.target_action = policy.target_action;
        }
      }
      nn::Tensor perturbed_flat = attack_.perturb(model_, inputs, goal,
                                                  budget_, bounds, rng);
      if constexpr (util::kCheckedBuild) {
        // Trust boundary for *any* Attack implementation (including ones
        // built outside this repo): the sample delivered to the victim must
        // actually satisfy the declared budget and clip range.
        attack::check_perturbation(inputs.current_obs, perturbed_flat,
                                   budget_, bounds,
                                   attack_.name().c_str());
      }
      // Norm accounting on the realised (clamped) perturbation.
      nn::Tensor delta = perturbed_flat;
      delta -= inputs.current_obs;
      l2_stats.add(util::l2_norm(delta.data()));
      linf_stats.add(util::linf_norm(delta.data()));
      // Victim's counterfactual action on the clean frame this step.
      clean_action = victim_.act(
          accumulator.peek_with(frame).reshaped(agent_obs_shape_), false);
      delivered = perturbed_flat.reshaped(frame.shape());
      ++outcome.attacks_attempted;
      if (policy.mode == AttackPolicy::Mode::kSingleStep) {
        single_fired = true;
        outcome.fired_step = outcome.steps;
      }
    }

    if (policy.record_frames) outcome.delivered_frames.push_back(delivered);
    nn::Tensor stacked = accumulator.push(delivered);
    const std::size_t action =
        victim_.act(stacked.reshaped(agent_obs_shape_), false);
    if (attack_now && action != clean_action) ++outcome.immediate_flips;

    fifo.push(delivered.reshaped({frame_size_}), action);
    outcome.actions.push_back(action);

    env::StepResult sr = raw_env_->step(action);
    outcome.total_reward += sr.reward;
    ++outcome.steps;
    done = sr.done;
    frame = std::move(sr.observation);
  }

  outcome.mean_l2 = l2_stats.count() > 0 ? l2_stats.mean() : 0.0;
  outcome.mean_linf = linf_stats.count() > 0 ? linf_stats.mean() : 0.0;
  return outcome;
}

}  // namespace rlattack::core
