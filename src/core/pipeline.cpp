#include "rlattack/core/pipeline.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "rlattack/attack/batch_planner.hpp"

#include "rlattack/core/detector.hpp"
#include "rlattack/obs/forensics.hpp"
#include "rlattack/obs/metrics.hpp"
#include "rlattack/obs/trace.hpp"
#include "rlattack/util/check.hpp"
#include "rlattack/util/stats.hpp"

namespace rlattack::core {

namespace {

// Per-phase pipeline telemetry. Realised-norm histogram bounds cover the
// epsilon range exercised by the Fig 4-6 sweeps (0.05 .. 8).
struct PipelineMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter& steps = reg.counter("pipeline.steps");
  obs::Counter& episodes = reg.counter("pipeline.episodes");
  obs::Counter& attacks = reg.counter("pipeline.attacks");
  obs::SpanStat& perturb = reg.span("phase.perturb");
  obs::SpanStat& victim_step = reg.span("phase.victim_step");
  obs::SpanStat& env_step = reg.span("phase.env_step");
  obs::SpanStat& approx_inference = reg.span("phase.approx_inference");
  obs::Histogram& realised_l2 = reg.histogram(
      "attack.realised_l2", {0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0});
  obs::Histogram& realised_linf = reg.histogram(
      "attack.realised_linf", {0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0});
};
PipelineMetrics& pipeline_metrics() {
  static PipelineMetrics metrics;
  return metrics;
}

/// Stable identifier of one episode *configuration*: the forensics JSONL is
/// sorted by it, so the export order is independent of which worker finished
/// first. Seed is folded in too — two episodes of the same sweep row differ
/// only by seed.
std::uint64_t episode_forensics_key(const AttackPolicy& policy,
                                    const attack::Budget& budget,
                                    const std::string& attack_name,
                                    std::uint64_t seed) {
  using obs::forensics_key_mix;
  std::uint64_t k = obs::forensics_key_begin();
  k = forensics_key_mix(k, seed);
  k = forensics_key_mix(k, static_cast<std::uint64_t>(policy.mode));
  k = forensics_key_mix(k, policy.trigger_step);
  k = forensics_key_mix(k, policy.stride);
  k = forensics_key_mix(k, static_cast<std::uint64_t>(policy.goal_mode));
  k = forensics_key_mix(k, policy.position);
  k = forensics_key_mix(k, policy.random_position ? 1 : 0);
  k = forensics_key_mix(k, policy.runner_up_target ? 1 : 0);
  k = forensics_key_mix(k, policy.target_action);
  k = forensics_key_mix(k, static_cast<std::uint64_t>(budget.norm));
  k = forensics_key_mix(k, std::bit_cast<std::uint32_t>(budget.epsilon));
  for (const char c : attack_name)
    k = forensics_key_mix(k, static_cast<unsigned char>(c));
  return k;
}

}  // namespace

AttackSession::AttackSession(rl::Agent& victim, env::Game game,
                             seq2seq::Seq2SeqModel& model,
                             attack::Attack& attack, attack::Budget budget)
    : victim_(victim),
      game_(game),
      model_(model),
      attack_(attack),
      budget_(budget),
      raw_env_(env::make_environment(game, /*seed=*/1)),
      stack_depth_(env::agent_frame_stack(game)) {
  frame_size_ = raw_env_->observation_size();
  if (model_.config().frame_size() != frame_size_)
    throw std::logic_error(
        "AttackSession: model frame size does not match the game");
  if (model_.config().actions != raw_env_->action_count())
    throw std::logic_error(
        "AttackSession: model action count does not match the game");
  // Agent-side observation shape (stacked along channel 0 for images).
  agent_obs_shape_ = raw_env_->observation_shape();
  agent_obs_shape_[0] *= stack_depth_;
}

std::size_t AttackSession::output_steps() const {
  return model_.config().output_steps;
}

EpisodeOutcome AttackSession::run_episode(
    const AttackPolicy& policy, std::uint64_t episode_seed,
    attack::BatchedCraftPlanner* planner) {
  PipelineMetrics& metrics = pipeline_metrics();
  metrics.episodes.add();
  obs::TraceScope episode_trace("episode.run", "seed",
                                static_cast<double>(episode_seed));
  const bool forensics = obs::forensics_enabled();
  // Episode-batched evaluation: when the driver registered a victim
  // handler, every per-step victim query is routed through the rendezvous
  // so B concurrent episodes' rows fuse into one act_batch forward.
  const bool victim_batched =
      planner != nullptr && planner->has_victim_handler();
  // Enroll in the rendezvous only if this episode can ever query through
  // it — with craft batching alone that means the approximator (clean runs
  // and model-free attacks would just stall the other participants'
  // flushes); with a victim handler every episode queries the victim every
  // step, so every episode enrolls. The forensics stream probes the model
  // every eligible step (prediction agreement), so with it on every episode
  // enrolls too: the shared model may only be touched through the
  // rendezvous.
  std::optional<attack::BatchedCraftPlanner::Participant> participant;
  if (planner != nullptr &&
      (victim_batched ||
       (policy.mode != AttackPolicy::Mode::kNone && attack_.uses_model()) ||
       forensics))
    participant.emplace(*planner);
  // Victim policy query: serial single-row act(), or one EvalProbe through
  // the rendezvous. Takes the observation by value — the row must outlive
  // the blocking submit, and the serial path's act() copies it into the
  // agent's scratch row anyway.
  const auto victim_act = [&](nn::Tensor observation) -> std::size_t {
    if (!victim_batched) return victim_.act(observation, false);
    attack::BatchedCraftPlanner::EvalProbe probe;
    probe.observation = &observation;
    planner->submit(probe);
    return probe.action;
  };
  const std::uint64_t forensics_key =
      forensics ? episode_forensics_key(policy, budget_, attack_.name(),
                                        episode_seed)
                : 0;
  // Detection score: built fresh per episode from the plain-number config
  // the obs layer holds (obs cannot depend on core::StatefulDetector).
  std::optional<StatefulDetector> detector;
  if (forensics) {
    const obs::ForensicsDetector det_cfg = obs::forensics_detector();
    if (det_cfg.active) {
      StatefulDetector::Config cfg;
      cfg.window = static_cast<std::size_t>(std::max(det_cfg.window, 1));
      cfg.alarm_flags =
          static_cast<std::size_t>(std::max(det_cfg.alarm_flags, 1));
      cfg.z_threshold = det_cfg.z_threshold;
      detector.emplace(cfg);
      detector->calibrate(det_cfg.mean, det_cfg.stddev);
    }
  }
  raw_env_->seed(episode_seed);
  util::Rng rng(episode_seed ^ 0x5bd1e995u);
  RolloutFifo fifo(model_.config().input_steps, frame_size_,
                   raw_env_->action_count());
  FrameAccumulator accumulator(stack_depth_, frame_size_);
  const env::ObservationBounds bounds = raw_env_->observation_bounds();

  EpisodeOutcome outcome;
  util::RunningStats l2_stats, linf_stats;
  nn::Tensor frame = raw_env_->reset();
  bool done = false;
  bool single_fired = false;

  while (!done) {
    nn::Tensor delivered = frame;
    const bool eligible = fifo.full();
    bool attack_now = false;
    switch (policy.mode) {
      case AttackPolicy::Mode::kNone: break;
      case AttackPolicy::Mode::kEveryStep:
        attack_now = eligible && outcome.steps % std::max<std::size_t>(
                                     1, policy.stride) == 0;
        break;
      case AttackPolicy::Mode::kSingleStep:
        attack_now = eligible && !single_fired &&
                     outcome.steps >= policy.trigger_step;
        break;
    }

    std::size_t clean_action = 0;
    obs::ForensicsStep rec;
    std::vector<std::size_t> predicted_vec;
    // One craft context per step that needs the model: the history encoding
    // built for the forensics prediction / runner-up target selection below
    // is reused by every iteration of the attack itself. Enrolled episodes
    // craft through the planner so the encoding and every tail query batch
    // across sessions. With forensics off this constructs exactly when it
    // used to (attacked steps only).
    std::optional<attack::CraftInputs> inputs_storage;
    std::optional<attack::CraftContext> ctx_storage;
    if (attack_now || (forensics && eligible)) {
      inputs_storage.emplace(
          fifo.crafting_inputs(frame.reshaped({frame_size_})));
      if (participant.has_value())
        ctx_storage.emplace(*planner, *inputs_storage);
      else
        ctx_storage.emplace(model_, *inputs_storage);
    }
    if (forensics && eligible) {
      // Prediction agreement: what does the approximator expect the victim
      // to do from the *clean* history? Read-only forward query — it never
      // touches the episode RNG or environment.
      obs::Span span(metrics.approx_inference);
      predicted_vec = ctx_storage->predict_actions();
    }
    if (attack_now) {
      const attack::CraftInputs& inputs = *inputs_storage;
      attack::CraftContext& ctx = *ctx_storage;
      attack::Goal goal;
      goal.mode = policy.goal_mode;
      const std::size_t m = model_.config().output_steps;
      goal.position = policy.random_position
                          ? rng.uniform_int(m)
                          : std::min(policy.position, m - 1);
      if (goal.mode == attack::Goal::Mode::kTargeted) {
        if (policy.runner_up_target) {
          // Aim at the runner-up action of the prediction at the position:
          // the easiest-to-reach wrong action.
          obs::TraceScope trace("phase.approx_inference");
          obs::Span span(metrics.approx_inference);
          const std::vector<float> row =
              ctx.position_logits(goal.position, inputs.current_obs);
          const std::size_t a = row.size();
          std::size_t best = 0, second = (a > 1) ? 1 : 0;
          if (row[second] > row[best]) std::swap(best, second);
          for (std::size_t i = 2; i < a; ++i) {
            if (row[i] > row[best]) {
              second = best;
              best = i;
            } else if (row[i] > row[second]) {
              second = i;
            }
          }
          goal.target_action = second;
        } else {
          goal.target_action = policy.target_action;
        }
      }
      nn::Tensor perturbed_flat = [&] {
        obs::TraceScope trace("phase.perturb", "position",
                              static_cast<double>(goal.position));
        obs::Span span(metrics.perturb);
        return attack_.perturb(ctx, goal, budget_, bounds, rng);
      }();
      metrics.attacks.add();
      if constexpr (util::kCheckedBuild) {
        // Trust boundary for *any* Attack implementation (including ones
        // built outside this repo): the sample delivered to the victim must
        // actually satisfy the declared budget and clip range.
        attack::check_perturbation(inputs.current_obs, perturbed_flat,
                                   budget_, bounds,
                                   attack_.name().c_str());
      }
      // Norm accounting on the realised (clamped) perturbation.
      nn::Tensor delta = perturbed_flat;
      delta -= inputs.current_obs;
      const double l2 = util::l2_norm(delta.data());
      const double linf = util::linf_norm(delta.data());
      l2_stats.add(l2);
      linf_stats.add(linf);
      metrics.realised_l2.record(l2);
      metrics.realised_linf.record(linf);
      rec.l2 = l2;
      rec.linf = linf;
      if (forensics) {
        // Attack-loss margin at the attacked position, evaluated on the
        // delivered sample: positive means the model-level goal is met
        // (targeted: target beats every other action; untargeted: some
        // other action beats the clean prediction).
        const std::vector<float> post =
            ctx.position_logits(goal.position, perturbed_flat);
        const auto margin_vs = [&](std::size_t pivot) {
          double best_other = -HUGE_VAL;
          for (std::size_t i = 0; i < post.size(); ++i)
            if (i != pivot) best_other = std::max(best_other, double(post[i]));
          return post.size() > 1 ? best_other : double(post[pivot]);
        };
        if (goal.mode == attack::Goal::Mode::kTargeted)
          rec.loss = double(post[goal.target_action]) -
                     margin_vs(goal.target_action);
        else
          rec.loss = margin_vs(predicted_vec[goal.position]) -
                     double(post[predicted_vec[goal.position]]);
        rec.has_loss = true;
      }
      // Victim's counterfactual action on the clean frame this step.
      clean_action =
          victim_act(accumulator.peek_with(frame).reshaped(agent_obs_shape_));
      delivered = perturbed_flat.reshaped(frame.shape());
      ++outcome.attacks_attempted;
      if (policy.mode == AttackPolicy::Mode::kSingleStep) {
        single_fired = true;
        outcome.fired_step = outcome.steps;
        // No further attack queries can come from this episode; leave the
        // rendezvous so the remaining participants' flushes stop waiting.
        // Unless forensics is on (its per-step prediction probes keep
        // coming) or the victim is batched (every remaining step still
        // queries the victim through the rendezvous) — an unenrolled probe
        // would trip the planner's checks.
        if (participant.has_value() && !forensics && !victim_batched)
          participant->retire();
      }
    }

    if (policy.record_frames) outcome.delivered_frames.push_back(delivered);
    nn::Tensor stacked = accumulator.push(delivered);
    const std::size_t action = [&] {
      obs::TraceScope trace("phase.victim_step");
      obs::Span span(metrics.victim_step);
      return victim_act(stacked.reshaped(agent_obs_shape_));
    }();
    if (attack_now && action != clean_action) ++outcome.immediate_flips;

    fifo.push(delivered.reshaped({frame_size_}), action);
    outcome.actions.push_back(action);

    if (forensics) {
      rec.episode_key = forensics_key;
      rec.seed = episode_seed;
      rec.step = static_cast<std::uint32_t>(outcome.steps);
      rec.eligible = eligible;
      rec.attacked = attack_now;
      rec.action = static_cast<std::int32_t>(action);
      if (!predicted_vec.empty()) {
        rec.predicted = static_cast<std::int32_t>(predicted_vec[0]);
        rec.agree = predicted_vec[0] == action ? 1 : 0;
      }
      // Counterfactual clean-action query on attacked steps is the second
      // victim evaluation the attack spends.
      rec.victim_queries = attack_now ? 2 : 1;
      if (ctx_storage.has_value()) {
        rec.model_forward =
            static_cast<std::uint32_t>(ctx_storage->queries_forward());
        rec.model_gradient =
            static_cast<std::uint32_t>(ctx_storage->queries_gradient());
      }
      if (detector.has_value()) {
        rec.det_active = true;
        rec.det_flag = detector->observe(delivered);
        rec.det_score = detector->last_z();
      }
      obs::forensics_record(rec);
    }

    env::StepResult sr = [&] {
      obs::TraceScope trace("phase.env_step");
      obs::Span span(metrics.env_step);
      return raw_env_->step(action);
    }();
    outcome.total_reward += sr.reward;
    metrics.steps.add();
    ++outcome.steps;
    done = sr.done;
    frame = std::move(sr.observation);
  }

  outcome.mean_l2 = l2_stats.count() > 0 ? l2_stats.mean() : 0.0;
  outcome.mean_linf = linf_stats.count() > 0 ? linf_stats.mean() : 0.0;
  return outcome;
}

}  // namespace rlattack::core
