#include "rlattack/core/zoo.hpp"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "rlattack/core/parallel_episodes.hpp"
#include "rlattack/nn/serialize.hpp"
#include "rlattack/obs/metrics.hpp"
#include "rlattack/rl/factory.hpp"
#include "rlattack/rl/trainer.hpp"
#include "rlattack/util/env.hpp"
#include "rlattack/util/log.hpp"
#include "rlattack/util/stats.hpp"

namespace rlattack::core {

namespace {

std::size_t scaled(std::size_t base, double scale) {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(base) * scale));
}

// The per-(game, algorithm) training budget. Factored out of train_victim so
// Zoo::victim can hash the exact config a cached checkpoint would have to
// match before trusting it.
rl::TrainConfig victim_train_config(env::Game game, rl::Algorithm algorithm,
                                    double scale, bool verbose) {
  rl::TrainConfig tc;
  tc.verbose = verbose;
  switch (game) {
    case env::Game::kCartPole:
      tc.episodes = scaled(400, scale);
      tc.target_reward = 180.0;
      // Single-worker on-policy A2C is roughly an order of magnitude less
      // sample-efficient on CartPole than the replay-based value learners:
      // under the shared 400-episode budget it never leaves the ~10-step
      // random-policy regime (final avg reward ~10), which is what made the
      // fig4/fig7 a2c rows finish in milliseconds — 60 nine-step episodes
      // with almost no attack-eligible steps (EXPERIMENTS.md). With 10x
      // episodes it reaches the 180 early-stop target in ~1 s of wall
      // clock, so the bigger budget costs little once converged.
      if (algorithm == rl::Algorithm::kA2c) tc.episodes *= 10;
      break;
    case env::Game::kMiniPong:
      tc.episodes = scaled(180, scale);
      tc.target_reward = 2.4;
      break;
    case env::Game::kMiniInvaders:
      tc.episodes = scaled(180, scale);
      tc.target_reward = 10.0;
      break;
  }
  return tc;
}

std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 0x100000001B3ull;
  }
  return h;
}

// Stable hash over everything the trained weights depend on: the training
// budget, the early-stop contract and the seed. A checkpoint trained under
// any other config (e.g. the pre-fix degenerate A2C budget) hashes
// differently and is retrained instead of silently reused.
std::uint64_t victim_train_hash(env::Game game, rl::Algorithm algorithm,
                                const rl::TrainConfig& tc,
                                std::uint64_t seed) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a_mix(h, static_cast<std::uint64_t>(game));
  h = fnv1a_mix(h, static_cast<std::uint64_t>(algorithm));
  h = fnv1a_mix(h, tc.episodes);
  std::uint64_t target_bits = 0;
  std::memcpy(&target_bits, &tc.target_reward, sizeof(target_bits));
  h = fnv1a_mix(h, target_bits);
  h = fnv1a_mix(h, tc.window);
  h = fnv1a_mix(h, seed);
  return h;
}

seq2seq::Seq2SeqConfig approx_config(env::Game game, std::size_t actions,
                                     std::vector<std::size_t> frame_shape,
                                     std::size_t n, std::size_t m) {
  if (game == env::Game::kCartPole)
    return seq2seq::make_cartpole_seq2seq_config(n, m);
  return seq2seq::make_atari_seq2seq_config(std::move(frame_shape), actions,
                                            n, m);
}

}  // namespace

double bench_scale_from_env() {
  const std::optional<double> value =
      util::env::get_double(util::env::Var::kBenchScale);
  if (!value || *value <= 0.0) return 1.0;
  return *value;
}

Zoo::Zoo(ZooConfig config) : config_(std::move(config)) {
  std::filesystem::create_directories(config_.cache_dir);
}

std::string Zoo::victim_key(env::Game game, rl::Algorithm algorithm) const {
  return env::game_name(game) + "_" + rl::algorithm_name(algorithm);
}

rl::AgentPtr Zoo::build_agent(env::Game game, rl::Algorithm algorithm,
                              std::uint64_t seed) const {
  env::EnvPtr probe = env::make_agent_environment(game, seed);
  rl::ObsSpec spec = rl::obs_spec_of(*probe);
  return rl::make_agent(algorithm, spec, probe->action_count(), seed);
}

rl::TrainResult Zoo::train_victim(rl::Agent& agent, env::Game game,
                                  rl::Algorithm algorithm,
                                  const rl::TrainConfig& tc) {
  obs::Span span(obs::MetricsRegistry::global().span("zoo.train_victim"));
  env::EnvPtr train_env = env::make_agent_environment(
      game, config_.seed ^ (0x1234u + static_cast<unsigned>(algorithm)));
  rl::TrainResult result = rl::train_agent(agent, *train_env, tc);
  util::log_info("zoo: trained ", rl::algorithm_name(algorithm), " on ",
                 env::game_name(game), ": ", result.episode_rewards.size(),
                 " episodes, final avg reward ", result.final_average);
  return result;
}

rl::Agent& Zoo::victim(env::Game game, rl::Algorithm algorithm) {
  const std::string key = victim_key(game, algorithm);
  auto it = victims_.find(key);
  if (it != victims_.end()) return *it->second;

  rl::AgentPtr agent =
      build_agent(game, algorithm, config_.seed ^ std::hash<std::string>{}(key));
  const std::string path = config_.cache_dir + "/" + key + ".ckpt";
  const std::string meta = path + ".meta";
  const rl::TrainConfig tc =
      victim_train_config(game, algorithm, config_.scale, config_.verbose);
  const std::uint64_t want_hash =
      victim_train_hash(game, algorithm, tc, config_.seed);

  // A cached checkpoint is only trusted when its sidecar proves it was
  // trained under exactly this config. Loading any bytes that happen to
  // parse would silently resurrect stale artefacts — e.g. an A2C victim
  // trained under a since-fixed degenerate budget — and every downstream
  // figure would quietly measure the wrong agent. A checkpoint that is
  // below the early-stop target is only accepted with a matching hash:
  // training is seed-deterministic, so rerunning the identical config
  // would reproduce the identical below-target weights (several
  // small-scale victims legitimately never reach their target), and the
  // sidecar's recorded reward documents exactly what the artefact
  // achieved.
  bool loaded = false;
  if (std::filesystem::exists(path) && std::filesystem::exists(meta)) {
    std::ifstream meta_in(meta);
    std::uint64_t have_hash = 0;
    double final_average = 0.0;
    int reached = 0;
    if (meta_in >> have_hash >> final_average >> reached &&
        have_hash == want_hash &&
        nn::load_parameters(agent->network(), path)) {
      util::log_info("zoo: loaded victim ", key, " from ", path,
                     " (final avg reward ", final_average,
                     reached != 0 ? ", reached target)" : ")");
      loaded = true;
    }
  }
  if (!loaded) {
    const rl::TrainResult result = train_victim(*agent, game, algorithm, tc);
    if (!nn::save_parameters(agent->network(), path)) {
      util::log_warn("zoo: failed to checkpoint victim to ", path);
    } else {
      std::ofstream meta_out(meta, std::ios::trunc);
      meta_out << want_hash << ' ' << result.final_average << ' '
               << (result.reached_target ? 1 : 0) << '\n';
    }
  }
  auto [pos, inserted] = victims_.emplace(key, std::move(agent));
  (void)inserted;
  return *pos->second;
}

double Zoo::victim_score(env::Game game, rl::Algorithm algorithm,
                         std::size_t episodes) {
  rl::Agent& agent = victim(game, algorithm);
  env::EnvPtr eval_env =
      env::make_agent_environment(game, config_.seed ^ 0x777u);
  // Episodes are independently seeded, so they fan out across the episode
  // workers; rewards come back indexed by episode, keeping the mean
  // bit-identical to the serial loop.
  const std::vector<double> rewards = rl::evaluate_agent_parallel(
      agent, *eval_env, episodes, config_.seed ^ 0x777u,
      resolve_experiment_threads(config_.experiment_threads));
  return util::mean_of(rewards);
}

std::size_t Zoo::observation_episodes(env::Game game) const {
  const std::size_t base = game == env::Game::kCartPole ? 60 : 40;
  return scaled(base, config_.scale);
}

std::vector<std::size_t> Zoo::length_candidates(env::Game game) {
  if (game == env::Game::kCartPole) return {5, 10, 25, 50};
  return {2, 5, 10};
}

seq2seq::TrainSettings Zoo::seq2seq_settings(env::Game game) const {
  seq2seq::TrainSettings s;
  if (game == env::Game::kCartPole) {
    s.epochs = scaled(100, config_.scale);
    s.batches_per_epoch = 48;
  } else {
    s.epochs = scaled(60, config_.scale);
    s.batches_per_epoch = 24;
  }
  s.batch_size = 32;
  s.lr = 1e-3f;
  return s;
}

const std::vector<env::Episode>& Zoo::episodes(env::Game game,
                                               rl::Algorithm source) {
  const std::string key = victim_key(game, source);
  auto it = episodes_.find(key);
  if (it != episodes_.end()) return it->second;
  rl::Agent& agent = victim(game, source);
  env::EnvPtr obs_env =
      env::make_agent_environment(game, config_.seed ^ 0xBEEFu);
  util::log_info("zoo: collecting ", observation_episodes(game),
                 " observation episodes from ", key);
  // Observation traces are collected in parallel but stored in episode
  // order, so the approximator's training set is independent of the
  // worker count.
  auto eps = rl::collect_episodes_parallel(
      agent, *obs_env, observation_episodes(game), config_.seed ^ 0xBEEFu,
      resolve_experiment_threads(config_.experiment_threads));
  auto [pos, inserted] = episodes_.emplace(key, std::move(eps));
  (void)inserted;
  return pos->second;
}

ApproximatorInfo Zoo::approximator(env::Game game, rl::Algorithm source,
                                   std::size_t output_steps) {
  const std::string key = victim_key(game, source) + "_m" +
                          std::to_string(output_steps);
  auto it = infos_.find(key);
  if (it != infos_.end()) return it->second;

  env::EnvPtr probe = env::make_environment(game, 1);
  const std::size_t actions = probe->action_count();
  const auto frame_shape = probe->observation_shape();

  const std::string ckpt = config_.cache_dir + "/seq2seq_" + key + ".ckpt";
  const std::string meta = config_.cache_dir + "/seq2seq_" + key + ".meta";

  ApproximatorInfo info;
  // Try the cache: meta holds "n accuracy".
  if (std::filesystem::exists(ckpt) && std::filesystem::exists(meta)) {
    std::ifstream meta_in(meta);
    std::size_t n = 0;
    double acc = 0.0;
    if (meta_in >> n >> acc && n > 0) {
      auto model = std::make_unique<seq2seq::Seq2SeqModel>(
          approx_config(game, actions, frame_shape, n, output_steps),
          config_.seed);
      if (nn::load_parameters(model->params(), ckpt)) {
        util::log_info("zoo: loaded approximator ", key, " (n = ", n,
                       ", acc = ", acc, ")");
        info.model = model.get();
        info.input_steps = n;
        info.accuracy = acc;
        info.from_cache = true;
        models_.emplace(key, std::move(model));
        infos_.emplace(key, info);
        return info;
      }
    }
  }

  // Train via Algorithm 1.
  obs::Span span(
      obs::MetricsRegistry::global().span("zoo.train_approximator"));
  const auto& data = episodes(game, source);
  const auto candidates = length_candidates(game);
  const seq2seq::TrainSettings settings = seq2seq_settings(game);
  util::log_info("zoo: training approximator ", key, " (Algorithm 1, ",
                 settings.epochs, " epochs)");
  auto make_config = [&](std::size_t n) {
    return approx_config(game, actions, frame_shape, n, output_steps);
  };
  seq2seq::ApproximatorResult result = seq2seq::build_approximator(
      data, candidates, make_config, settings,
      config_.seed ^ std::hash<std::string>{}(key));
  util::log_info("zoo: approximator ", key,
                 " trained: n = ", result.search.best_length,
                 ", eval accuracy = ", result.outcome.eval_accuracy);

  info.model = result.model.get();
  info.input_steps = result.search.best_length;
  info.accuracy = result.outcome.eval_accuracy;
  info.search = result.search;
  if (!nn::save_parameters(result.model->params(), ckpt)) {
    util::log_warn("zoo: failed to checkpoint approximator to ", ckpt);
  } else {
    std::ofstream meta_out(meta, std::ios::trunc);
    meta_out << info.input_steps << ' ' << info.accuracy << '\n';
  }
  models_.emplace(key, std::move(result.model));
  infos_.emplace(key, info);
  return info;
}

}  // namespace rlattack::core
