// Model zoo: trains victim agents and seq2seq approximators on first use
// and checkpoints them under a cache directory so every bench binary can
// share the same artefacts instead of retraining. All training budgets
// scale with RLATTACK_BENCH_SCALE (default 1.0).
#pragma once

#include <map>
#include <optional>

#include "rlattack/env/factory.hpp"
#include "rlattack/rl/agent.hpp"
#include "rlattack/rl/trainer.hpp"
#include "rlattack/seq2seq/trainer.hpp"

namespace rlattack::core {

struct ZooConfig {
  std::string cache_dir = "checkpoints";
  double scale = 1.0;       ///< multiplies all episode/epoch budgets
  std::uint64_t seed = 42;  ///< base seed; derived per artefact
  bool verbose = true;
  /// Episode-parallel worker count used by the experiment drivers and the
  /// Zoo's own evaluation/observation loops. 0 = auto: the
  /// RLATTACK_EXPERIMENT_THREADS env var if set, else the global
  /// thread-pool size (RLATTACK_THREADS-aware). 1 = the exact serial code
  /// path. Results are bit-identical at any setting.
  std::size_t experiment_threads = 0;
};

/// Reads RLATTACK_BENCH_SCALE (a positive float) from the environment;
/// returns 1.0 when unset/invalid.
double bench_scale_from_env();

/// A trained approximator plus its Algorithm-1 metadata.
struct ApproximatorInfo {
  seq2seq::Seq2SeqModel* model = nullptr;  ///< owned by the Zoo
  std::size_t input_steps = 0;             ///< the searched n
  double accuracy = 0.0;  ///< eval accuracy at training time (Table 2)
  bool from_cache = false;
  seq2seq::LengthSearchResult search;  ///< empty when loaded from cache
};

class Zoo {
 public:
  explicit Zoo(ZooConfig config);

  /// Returns the trained victim for (game, algorithm), training and
  /// checkpointing it on first use. The returned reference stays valid for
  /// the Zoo's lifetime.
  rl::Agent& victim(env::Game game, rl::Algorithm algorithm);

  /// Greedy evaluation score of a victim (mean over `episodes`).
  double victim_score(env::Game game, rl::Algorithm algorithm,
                      std::size_t episodes = 10);

  /// Returns the approximator trained from passive observation of the
  /// (game, source-algorithm) victim with output length m, running
  /// Algorithm 1 (length search + full training) on first use.
  ApproximatorInfo approximator(env::Game game, rl::Algorithm source,
                                std::size_t output_steps);

  /// The observation dataset collected from a victim (cached in memory).
  const std::vector<env::Episode>& episodes(env::Game game,
                                            rl::Algorithm source);

  /// Per-game Algorithm-1 candidate input lengths (image games search a
  /// smaller range for CPU-budget reasons; DESIGN.md).
  static std::vector<std::size_t> length_candidates(env::Game game);

  /// Seq2seq training settings for a game at the current scale.
  seq2seq::TrainSettings seq2seq_settings(env::Game game) const;

  /// Number of observation episodes collected per game at current scale.
  std::size_t observation_episodes(env::Game game) const;

  const ZooConfig& config() const noexcept { return config_; }

  /// Overrides ZooConfig::experiment_threads after construction, so tests
  /// and benches can compare worker counts against one set of artefacts.
  void set_experiment_threads(std::size_t threads) noexcept {
    config_.experiment_threads = threads;
  }

 private:
  std::string victim_key(env::Game game, rl::Algorithm algorithm) const;
  rl::AgentPtr build_agent(env::Game game, rl::Algorithm algorithm,
                           std::uint64_t seed) const;
  rl::TrainResult train_victim(rl::Agent& agent, env::Game game,
                               rl::Algorithm algorithm,
                               const rl::TrainConfig& tc);

  ZooConfig config_;
  std::map<std::string, rl::AgentPtr> victims_;
  std::map<std::string, std::unique_ptr<seq2seq::Seq2SeqModel>> models_;
  std::map<std::string, ApproximatorInfo> infos_;
  std::map<std::string, std::vector<env::Episode>> episodes_;
};

}  // namespace rlattack::core
