// End-to-end attacked-episode execution (Figure 2): the victim plays its
// game while the attacker watches through the rollout FIFO and injects
// perturbations into the observation channel.
//
// Everything is deterministic given the episode seed — victim greedy
// policies, environment dynamics and attack randomness all derive from
// explicit seeds — so a clean and an attacked run of the same seed form an
// exact counterfactual pair. The time-bomb experiment exploits this to
// measure whether a single perturbation at step t changed the action at
// step t + d.
#pragma once

#include "rlattack/attack/attack.hpp"
#include "rlattack/core/rollout_fifo.hpp"
#include "rlattack/env/factory.hpp"
#include "rlattack/rl/agent.hpp"

namespace rlattack::core {

/// When and how to perturb within an episode.
struct AttackPolicy {
  enum class Mode {
    kNone,       ///< clean play (baseline / counterfactual run)
    kEveryStep,  ///< perturb every step once the FIFO is full (Figs 4-6)
    kSingleStep  ///< perturb exactly once, at `trigger_step` (time-bomb)
  };
  Mode mode = Mode::kNone;
  std::size_t trigger_step = 0;  ///< kSingleStep: first eligible step index
  /// kEveryStep: attack every `stride`-th eligible step (1 = every step).
  /// Lin et al.'s observation — attacking a fraction of steps degrades
  /// reward almost as much — is reproduced by sweeping this.
  std::size_t stride = 1;

  attack::Goal::Mode goal_mode = attack::Goal::Mode::kUntargeted;
  /// Output-sequence position to attack. Ignored when `random_position`.
  std::size_t position = 0;
  /// Action-sequence attack (Figs 5-6): flip a *random* future action in
  /// the predicted sequence each step.
  bool random_position = false;
  /// kTargeted with `runner_up_target`: aim at the second-most-likely
  /// predicted action at the position (the easiest flip); otherwise
  /// `target_action` is used verbatim.
  bool runner_up_target = true;
  std::size_t target_action = 0;
  /// Record every frame as delivered to the victim (clean or perturbed) in
  /// EpisodeOutcome::delivered_frames — used by the detection experiments.
  bool record_frames = false;
};

/// Everything measured during one episode run.
struct EpisodeOutcome {
  double total_reward = 0.0;
  std::size_t steps = 0;
  std::size_t attacks_attempted = 0;
  /// Steps where the perturbed observation changed the victim's action
  /// relative to the clean observation at that same step (the
  /// transferability numerator of Figure 7).
  std::size_t immediate_flips = 0;
  /// Victim action taken at every step (for counterfactual comparison).
  std::vector<std::size_t> actions;
  /// Mean L2 / Linf norms of the applied perturbations.
  double mean_l2 = 0.0;
  double mean_linf = 0.0;
  /// Step index at which the single-step attack fired (kSingleStep only);
  /// SIZE_MAX if it never fired.
  std::size_t fired_step = static_cast<std::size_t>(-1);
  /// Frames as delivered to the victim (only when policy.record_frames).
  std::vector<nn::Tensor> delivered_frames;
};

/// Binds one victim + approximator + attack into a runnable session.
class AttackSession {
 public:
  /// `model` must have been trained against this game's action space and
  /// raw frame shape. The victim consumes agent-side observations
  /// (frame-stacked for image games); the session reproduces that stacking
  /// internally so perturbations touch only the newest frame.
  AttackSession(rl::Agent& victim, env::Game game,
                seq2seq::Seq2SeqModel& model, attack::Attack& attack,
                attack::Budget budget);

  /// Runs one episode under `policy` with full determinism from
  /// `episode_seed`. With a non-null `planner`, every approximator query of
  /// the episode routes through the planner's rendezvous so concurrent
  /// sessions share batched tail GEMMs: the session enrolls a participant
  /// up front when its attack can query the model, retires it as soon as no
  /// further queries can come (single-step attacks retire right after
  /// firing), and the outcome stays bit-identical to the unbatched run.
  EpisodeOutcome run_episode(const AttackPolicy& policy,
                             std::uint64_t episode_seed,
                             attack::BatchedCraftPlanner* planner = nullptr);

  /// The model's output-sequence length m (bounds attackable positions).
  std::size_t output_steps() const;

 private:
  rl::Agent& victim_;
  env::Game game_;
  seq2seq::Seq2SeqModel& model_;
  attack::Attack& attack_;
  attack::Budget budget_;
  env::EnvPtr raw_env_;
  std::vector<std::size_t> agent_obs_shape_;
  std::size_t frame_size_;
  std::size_t stack_depth_;
};

}  // namespace rlattack::core
