// Episode-parallel execution layer for the experiment drivers.
//
// The paper's evaluation grids (Figures 4-9) are embarrassingly parallel:
// every episode is a pure function of (victim weights, approximator
// weights, attack kind, budget, policy, episode seed) because
// AttackSession::run_episode reseeds the environment, the rollout FIFO and
// the attack RNG from the episode seed alone. This module flattens a grid
// into a job list, fans the jobs out across worker clones on
// util::ThreadPool::global(), and returns outcomes indexed by job position
// so callers can reduce in run order — bit-identical results at any thread
// count (the same determinism contract the GEMM kernels established).
//
// Layering rule: episode workers run *on* the global pool, and the GEMM
// kernels underneath each episode also target that pool — the pool's
// nested-parallelism guard (ThreadPool::inside_worker) makes those inner
// loops run caller-inline, so one episode never oversubscribes the machine.
#pragma once

#include "rlattack/core/pipeline.hpp"

namespace rlattack::core {

/// One self-contained unit of episode work.
struct EpisodeJob {
  attack::Kind attack = attack::Kind::kGaussian;
  attack::Budget budget;
  AttackPolicy policy;
  std::uint64_t seed = 0;
};

/// Wall-clock record of one driver invocation, surfaced in the bench CSVs
/// and BENCH_experiments.json.
struct ExperimentTiming {
  double wall_seconds = 0.0;
  std::size_t threads = 1;   ///< resolved episode-worker count
  std::size_t episodes = 0;  ///< total episodes executed
  /// Concurrent-host count of the batched craft substrate (0 = the run used
  /// the unbatched per-episode model path).
  std::size_t craft_batch = 0;
  /// Concurrent-host count of the episode-batched evaluation substrate
  /// (0 = per-step victim/approximator queries ran single-row).
  std::size_t eval_batch = 0;
};

/// Episode-worker count an experiment driver should use. `requested` > 0
/// wins; otherwise the RLATTACK_EXPERIMENT_THREADS env var (a positive
/// integer) if set; otherwise the global thread-pool size, which is itself
/// RLATTACK_THREADS-aware. A result of 1 selects the historical serial
/// code path (no clones, no pool dispatch).
std::size_t resolve_experiment_threads(std::size_t requested);

/// Concurrent-host count the batched craft substrate will use for this job
/// list: min(attack::craft_batch_width(), jobs.size()) when the substrate
/// is enabled (RLATTACK_CRAFT_BATCH), the craft cache is on, and at least
/// two jobs can actually enroll (an attacked policy with a model-querying
/// attack). 0 means run_episode_jobs takes the unbatched path — the
/// substrate is off, or the job list cannot form a rendezvous worth the
/// gather/scatter overhead.
std::size_t resolve_craft_batch(const std::vector<EpisodeJob>& jobs);

/// Concurrent-host count of the episode-batched evaluation substrate:
/// min(attack::eval_batch_width(), jobs.size()) when the substrate is
/// enabled (RLATTACK_EVAL_BATCH), the craft cache is on, and the job list
/// has at least two episodes. Unlike resolve_craft_batch there is no
/// enrollability filter — every episode queries the victim policy every
/// step, so every job benefits from the fused act_batch forwards. 0 means
/// run_episode_jobs falls through to the next path.
std::size_t resolve_eval_batch(const std::vector<EpisodeJob>& jobs);

/// Runs every job against (victim, model) for `game`, returning outcomes
/// indexed by job position.
///
/// Path selection, in precedence order:
///   1. Episode-batched evaluation (resolve_eval_batch(jobs) > 0): that
///      many host threads share ONE attack::BatchedCraftPlanner bound to
///      the ORIGINAL victim and model — no clones at all. Per-step victim
///      policy queries fuse into shared act_batch forwards through the
///      planner's victim handler, and enrolled episodes' approximator
///      queries batch through the same rendezvous, so this path subsumes
///      the craft substrate (it batches craft probes even when
///      RLATTACK_CRAFT_BATCH=0 — the craft kill switch selects the
///      reporting/fallback path, not per-probe routing, and rows are
///      bit-identical either way).
///   2. Batched craft substrate (resolve_craft_batch(jobs) > 0): that many
///      host threads share ONE attack::BatchedCraftPlanner bound to the
///      original `model`; every approximator query of every concurrently
///      running episode lands in one shared tail GEMM batch. Hosts use
///      pooled victim clones; the model is never cloned (all access is
///      serialized inside the planner flush). Host count comes from the
///      substrate width, not `threads` — on a single-core machine the win
///      is arithmetic intensity, not parallelism.
///   3. threads == 1: jobs run in order on the calling thread against the
///      original victim and model (historical serial path).
///   4. threads > 1: min(threads, jobs) workers — each with its own pooled
///      victim/model clone and a per-job AttackSession + attack instance —
///      pull jobs from a shared queue over the global pool.
///
/// Worker victim/model clones persist across invocations in a
/// process-lifetime pool and are re-synchronized in place (reset_from)
/// instead of reconstructed; concurrent invocations serialize on that
/// pool. Outcomes land at their job index and every episode is a pure
/// function of its seed, so the result vector is bit-identical across all
/// three paths and any thread count.
std::vector<EpisodeOutcome> run_episode_jobs(
    rl::Agent& victim, env::Game game, seq2seq::Seq2SeqModel& model,
    const std::vector<EpisodeJob>& jobs, std::size_t threads);

}  // namespace rlattack::core
