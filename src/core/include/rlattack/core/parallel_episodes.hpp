// Episode-parallel execution layer for the experiment drivers.
//
// The paper's evaluation grids (Figures 4-9) are embarrassingly parallel:
// every episode is a pure function of (victim weights, approximator
// weights, attack kind, budget, policy, episode seed) because
// AttackSession::run_episode reseeds the environment, the rollout FIFO and
// the attack RNG from the episode seed alone. This module flattens a grid
// into a job list, fans the jobs out across worker clones on
// util::ThreadPool::global(), and returns outcomes indexed by job position
// so callers can reduce in run order — bit-identical results at any thread
// count (the same determinism contract the GEMM kernels established).
//
// Layering rule: episode workers run *on* the global pool, and the GEMM
// kernels underneath each episode also target that pool — the pool's
// nested-parallelism guard (ThreadPool::inside_worker) makes those inner
// loops run caller-inline, so one episode never oversubscribes the machine.
#pragma once

#include "rlattack/core/pipeline.hpp"

namespace rlattack::core {

/// One self-contained unit of episode work.
struct EpisodeJob {
  attack::Kind attack = attack::Kind::kGaussian;
  attack::Budget budget;
  AttackPolicy policy;
  std::uint64_t seed = 0;
};

/// Wall-clock record of one driver invocation, surfaced in the bench CSVs
/// and BENCH_experiments.json.
struct ExperimentTiming {
  double wall_seconds = 0.0;
  std::size_t threads = 1;   ///< resolved episode-worker count
  std::size_t episodes = 0;  ///< total episodes executed
};

/// Episode-worker count an experiment driver should use. `requested` > 0
/// wins; otherwise the RLATTACK_EXPERIMENT_THREADS env var (a positive
/// integer) if set; otherwise the global thread-pool size, which is itself
/// RLATTACK_THREADS-aware. A result of 1 selects the historical serial
/// code path (no clones, no pool dispatch).
std::size_t resolve_experiment_threads(std::size_t requested);

/// Runs every job against (victim, model) for `game`, returning outcomes
/// indexed by job position.
///
/// threads == 1: jobs run in order on the calling thread against the
/// original victim and model. threads > 1: min(threads, jobs) workers are
/// built — each with its own victim/model clone and a per-job
/// AttackSession + attack instance — and jobs are pulled from a shared
/// queue over the global pool. Outcomes land at their job index, so the
/// result vector is identical regardless of scheduling.
std::vector<EpisodeOutcome> run_episode_jobs(
    rl::Agent& victim, env::Game game, seq2seq::Seq2SeqModel& model,
    const std::vector<EpisodeJob>& jobs, std::size_t threads);

}  // namespace rlattack::core
