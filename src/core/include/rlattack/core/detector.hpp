// Stateful attack detection on the observation stream, in the spirit of
// Chen et al. 2019 ("Stateful detection of black-box adversarial attacks",
// the paper's reference [43]). The paper's argument for the time-bomb
// attack is that "constantly injecting adversarial noise into the system
// can easily trigger detection" — this detector makes that claim testable:
// it alarms on every-step attacks but a single injected frame stays below
// the alarm threshold.
//
// Mechanism: the L2 norm of consecutive-frame deltas is a stable statistic
// of clean play; adversarial perturbations add dense noise energy to it.
// The detector calibrates (mean, stddev) on clean episodes and raises a
// flag whenever a step's delta-norm z-score exceeds `z_threshold`; it
// alarms when at least `alarm_flags` of the last `window` steps were
// flagged.
#pragma once

#include <deque>

#include "rlattack/env/environment.hpp"
#include "rlattack/nn/tensor.hpp"

namespace rlattack::core {

class StatefulDetector {
 public:
  struct Config {
    std::size_t window = 20;
    std::size_t alarm_flags = 5;  ///< flags within the window that alarm
    double z_threshold = 3.0;
  };

  StatefulDetector();
  explicit StatefulDetector(Config config);

  /// Calibrates the clean-play delta-norm statistics from episode traces
  /// (uses the recorded observations of each consecutive step pair).
  void calibrate(const std::vector<env::Episode>& clean_episodes);

  /// Manual calibration with known statistics.
  void calibrate(double mean_delta_norm, double stddev_delta_norm);

  bool calibrated() const noexcept { return calibrated_; }

  /// Starts watching a fresh episode.
  void reset();

  /// Feeds the next delivered frame; returns true if the detector is in
  /// the alarmed state after this frame. Requires calibration.
  bool observe(const nn::Tensor& frame);

  /// Flags raised over the episode so far / whether any alarm fired.
  std::size_t flag_count() const noexcept { return total_flags_; }
  bool alarmed() const noexcept { return alarmed_; }

  /// z-score of the most recent observed frame delta (0 before the second
  /// frame of an episode). The forensics stream records this per step.
  double last_z() const noexcept { return last_z_; }

  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  bool calibrated_ = false;
  double mean_ = 0.0;
  double stddev_ = 1.0;
  nn::Tensor previous_frame_;
  bool has_previous_ = false;
  std::deque<bool> recent_flags_;
  std::size_t window_flags_ = 0;
  std::size_t total_flags_ = 0;
  bool alarmed_ = false;
  double last_z_ = 0.0;
};

}  // namespace rlattack::core
