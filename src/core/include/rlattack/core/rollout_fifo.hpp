// The rollout FIFO of Figure 2: records the attacker's observed playing
// history so the seq2seq inputs (A_{t-1}, S_{t-1}, s_t) are always ready
// once n steps have elapsed. Also the agent-side frame accumulator used by
// the harness to deliver (possibly perturbed) stacked observations to the
// victim.
#pragma once

#include <deque>

#include "rlattack/attack/attack.hpp"
#include "rlattack/nn/tensor.hpp"

namespace rlattack::core {

/// Fixed-depth FIFO of (frame, action) pairs. `full()` becomes true after n
/// pushes; the first attack can start then (Figure 2: "our Black-box attack
/// starts after n time steps when the rollout FIFO is full"), and stays
/// possible every step thereafter.
class RolloutFifo {
 public:
  RolloutFifo(std::size_t depth, std::size_t frame_size, std::size_t actions);

  /// Records one observed step: the frame the victim received and the
  /// action it took.
  void push(const nn::Tensor& frame, std::size_t action);

  bool full() const noexcept { return frames_.size() == depth_; }
  std::size_t depth() const noexcept { return depth_; }
  void clear();

  /// Builds the crafting inputs for the current step. Requires full();
  /// `current_frame` is s_t (flattened to [1, F]).
  attack::CraftInputs crafting_inputs(const nn::Tensor& current_frame) const;

 private:
  std::size_t depth_, frame_size_, actions_;
  std::deque<nn::Tensor> frames_;      // each [F]
  std::deque<std::size_t> actions_hist_;
};

/// Agent-side frame stacking, mirrored in the harness so the attacker can
/// perturb the newest frame while past stacked frames stay as delivered.
class FrameAccumulator {
 public:
  FrameAccumulator(std::size_t depth, std::size_t frame_size);

  /// Pushes the newest delivered frame and returns the stacked observation
  /// [depth * F] reshaped to `obs_shape` by the caller if needed.
  nn::Tensor push(const nn::Tensor& frame);

  /// Stacked observation with the newest frame replaced (no state change);
  /// used to evaluate "what would the victim do on the clean frame".
  nn::Tensor peek_with(const nn::Tensor& frame) const;

  void clear();
  bool primed() const noexcept { return !frames_.empty(); }

 private:
  nn::Tensor concat() const;

  std::size_t depth_, frame_size_;
  std::deque<nn::Tensor> frames_;
};

}  // namespace rlattack::core
