// The paper's evaluation drivers (Section 5): reward-focused attacks
// (Figures 4-6), transferability (Figure 7) and the time-bomb attack
// (Figures 8-9). Each returns plain result rows; the bench binaries format
// them into the paper-shaped tables.
//
// Every driver flattens its grid into independent, seed-deterministic
// episode jobs and fans them out across the episode-parallel runner
// (parallel_episodes.hpp); statistics are reduced in run order afterwards,
// so result rows are bit-identical at any ZooConfig::experiment_threads
// setting. Passing a non-null `timing` out-parameter records wall-clock and
// worker count for the bench CSVs.
#pragma once

#include "rlattack/core/parallel_episodes.hpp"
#include "rlattack/core/pipeline.hpp"
#include "rlattack/core/zoo.hpp"
#include "rlattack/util/table.hpp"

namespace rlattack::core {

/// --- Reward-focused attack (Figures 4, 5, 6) -----------------------------

struct RewardExperimentConfig {
  env::Game game = env::Game::kCartPole;
  rl::Algorithm algorithm = rl::Algorithm::kDqn;
  std::vector<attack::Kind> attacks = {attack::Kind::kGaussian,
                                       attack::Kind::kFgsm,
                                       attack::Kind::kPgd};
  std::vector<double> l2_budgets = {0.0, 0.25, 0.5, 1.0, 2.0, 4.0};
  std::size_t runs = 20;  ///< distinct episodes per point (paper: 20)
  /// false: action-prediction attack (m = 1, perturb a_t).
  /// true:  action-sequence attack (m = 10, flip a random future action).
  bool sequence_variant = false;
  std::uint64_t seed = 1000;
};

struct RewardPoint {
  attack::Kind attack;
  double l2_budget = 0.0;
  double mean_reward = 0.0;
  double stddev_reward = 0.0;
  double mean_realised_l2 = 0.0;  ///< after bounds clamping
  bool sequence_variant = false;
};

/// Runs the sweep; budget 0 rows are the clean baseline (no perturbation).
std::vector<RewardPoint> run_reward_experiment(
    Zoo& zoo, const RewardExperimentConfig& config,
    ExperimentTiming* timing = nullptr);

/// --- Transferability (Figure 7) ------------------------------------------

struct TransferabilityConfig {
  env::Game game = env::Game::kCartPole;
  rl::Algorithm algorithm = rl::Algorithm::kDqn;
  std::vector<attack::Kind> attacks = {attack::Kind::kGaussian,
                                       attack::Kind::kFgsm,
                                       attack::Kind::kPgd};
  std::vector<double> l2_budgets = {0.25, 0.5, 1.0, 2.0};
  std::size_t runs = 10;
  std::uint64_t seed = 2000;
};

struct TransferabilityPoint {
  attack::Kind attack;
  double l2_budget = 0.0;
  /// Fraction of crafted samples that flipped the victim's action
  /// (misbehaviour rate on the target-agent side).
  double transfer_rate = 0.0;
  std::size_t samples = 0;
};

std::vector<TransferabilityPoint> run_transferability_experiment(
    Zoo& zoo, const TransferabilityConfig& config,
    ExperimentTiming* timing = nullptr);

/// --- Time-bomb attack (Figures 8, 9) -------------------------------------

struct TimeBombConfig {
  env::Game game = env::Game::kMiniInvaders;
  /// The victim under attack (A2C / Rainbow in the paper's figures).
  rl::Algorithm victim_algorithm = rl::Algorithm::kA2c;
  /// The algorithm whose traces trained the seq2seq model (DQN in the
  /// paper: cross-algorithm transfer).
  rl::Algorithm approximator_source = rl::Algorithm::kDqn;
  attack::Kind attack_kind = attack::Kind::kFgsm;
  float epsilon_linf = 0.3f;  ///< paper's demonstration budget
  std::vector<std::size_t> delays = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::size_t runs = 20;
  std::uint64_t seed = 3000;
};

struct TimeBombPoint {
  std::size_t delay = 0;
  /// Fraction of trials where the action at t + delay differed from the
  /// clean counterfactual run (perturbation rate, Figures 8-9 y-axis).
  double success_rate = 0.0;
  std::size_t trials = 0;
};

std::vector<TimeBombPoint> run_timebomb_experiment(
    Zoo& zoo, const TimeBombConfig& config,
    ExperimentTiming* timing = nullptr);

/// --- Threat-model comparison (Table 1) -----------------------------------

/// Rebuilds Table 1: which prior work requires which attacker capability.
util::TableWriter threat_model_table();

}  // namespace rlattack::core
