#include "rlattack/core/experiments.hpp"

#include "rlattack/util/log.hpp"
#include "rlattack/util/stats.hpp"

namespace rlattack::core {

std::vector<RewardPoint> run_reward_experiment(
    Zoo& zoo, const RewardExperimentConfig& config) {
  rl::Agent& victim = zoo.victim(config.game, config.algorithm);
  const std::size_t m = config.sequence_variant ? 10 : 1;
  // The approximator is always trained from DQN traces (the paper trains
  // the seq2seq against DQN and transfers to the other algorithms).
  ApproximatorInfo approx =
      zoo.approximator(config.game, rl::Algorithm::kDqn, m);

  std::vector<RewardPoint> points;
  for (attack::Kind kind : config.attacks) {
    attack::AttackPtr attacker = attack::make_attack(kind);
    for (double budget : config.l2_budgets) {
      attack::Budget b{attack::Budget::Norm::kL2,
                       static_cast<float>(budget)};
      AttackSession session(victim, config.game, *approx.model, *attacker, b);
      AttackPolicy policy;
      policy.mode = budget > 0.0 ? AttackPolicy::Mode::kEveryStep
                                 : AttackPolicy::Mode::kNone;
      policy.goal_mode = attack::Goal::Mode::kUntargeted;
      policy.random_position = config.sequence_variant;

      util::RunningStats reward_stats, l2_stats;
      for (std::size_t run = 0; run < config.runs; ++run) {
        EpisodeOutcome outcome =
            session.run_episode(policy, config.seed + run);
        reward_stats.add(outcome.total_reward);
        if (outcome.attacks_attempted > 0) l2_stats.add(outcome.mean_l2);
      }
      RewardPoint point;
      point.attack = kind;
      point.l2_budget = budget;
      point.mean_reward = reward_stats.mean();
      point.stddev_reward = reward_stats.stddev();
      point.mean_realised_l2 = l2_stats.count() > 0 ? l2_stats.mean() : 0.0;
      point.sequence_variant = config.sequence_variant;
      points.push_back(point);
      util::log_info("reward ", env::game_name(config.game), "/",
                     rl::algorithm_name(config.algorithm), " ",
                     attack::attack_name(kind), " l2 = ", budget,
                     " -> reward ", point.mean_reward, " +/- ",
                     point.stddev_reward);
    }
  }
  return points;
}

std::vector<TransferabilityPoint> run_transferability_experiment(
    Zoo& zoo, const TransferabilityConfig& config) {
  rl::Agent& victim = zoo.victim(config.game, config.algorithm);
  ApproximatorInfo approx =
      zoo.approximator(config.game, rl::Algorithm::kDqn, 1);

  std::vector<TransferabilityPoint> points;
  for (attack::Kind kind : config.attacks) {
    attack::AttackPtr attacker = attack::make_attack(kind);
    for (double budget : config.l2_budgets) {
      attack::Budget b{attack::Budget::Norm::kL2,
                       static_cast<float>(budget)};
      AttackSession session(victim, config.game, *approx.model, *attacker, b);
      AttackPolicy policy;
      policy.mode = AttackPolicy::Mode::kEveryStep;
      policy.goal_mode = attack::Goal::Mode::kUntargeted;

      std::size_t flips = 0, samples = 0;
      for (std::size_t run = 0; run < config.runs; ++run) {
        EpisodeOutcome outcome =
            session.run_episode(policy, config.seed + run);
        flips += outcome.immediate_flips;
        samples += outcome.attacks_attempted;
      }
      TransferabilityPoint point;
      point.attack = kind;
      point.l2_budget = budget;
      point.samples = samples;
      point.transfer_rate =
          samples == 0 ? 0.0
                       : static_cast<double>(flips) /
                             static_cast<double>(samples);
      points.push_back(point);
      util::log_info("transfer ", env::game_name(config.game), "/",
                     rl::algorithm_name(config.algorithm), " ",
                     attack::attack_name(kind), " l2 = ", budget,
                     " -> rate ", point.transfer_rate, " (", samples,
                     " samples)");
    }
  }
  return points;
}

std::vector<TimeBombPoint> run_timebomb_experiment(
    Zoo& zoo, const TimeBombConfig& config) {
  rl::Agent& victim = zoo.victim(config.game, config.victim_algorithm);
  // The approximator predicts 10 future actions (Seq models of Table 2);
  // delays index into that output sequence.
  ApproximatorInfo approx =
      zoo.approximator(config.game, config.approximator_source, 10);
  attack::AttackPtr attacker = attack::make_attack(config.attack_kind);
  attack::Budget budget{attack::Budget::Norm::kLinf, config.epsilon_linf};
  AttackSession session(victim, config.game, *approx.model, *attacker,
                        budget);

  std::vector<TimeBombPoint> points;
  for (std::size_t delay : config.delays) {
    if (delay >= session.output_steps()) {
      util::log_warn("timebomb: delay ", delay,
                     " beyond output sequence; skipping");
      continue;
    }
    std::size_t successes = 0, trials = 0;
    util::Rng trigger_rng(config.seed ^ (0xD00Du + delay));
    for (std::size_t run = 0; run < config.runs; ++run) {
      const std::uint64_t episode_seed =
          config.seed + 100 * delay + run;
      // Clean counterfactual run.
      AttackPolicy clean;
      clean.mode = AttackPolicy::Mode::kNone;
      EpisodeOutcome baseline = session.run_episode(clean, episode_seed);

      // Attacked run, single injection at a random eligible trigger.
      AttackPolicy bomb;
      bomb.mode = AttackPolicy::Mode::kSingleStep;
      bomb.trigger_step =
          approx.input_steps + trigger_rng.uniform_int(std::size_t{10});
      bomb.goal_mode = attack::Goal::Mode::kTargeted;
      bomb.position = delay;
      bomb.runner_up_target = true;
      EpisodeOutcome attacked = session.run_episode(bomb, episode_seed);

      if (attacked.fired_step == static_cast<std::size_t>(-1))
        continue;  // episode too short for the FIFO to fill
      const std::size_t check = attacked.fired_step + delay;
      if (baseline.actions.size() <= check) continue;  // no counterfactual
      ++trials;
      if (attacked.actions.size() <= check) {
        // The perturbation changed the trajectory so strongly the episode
        // ended before t + delay; the behaviour at the target time changed.
        ++successes;
      } else if (attacked.actions[check] != baseline.actions[check]) {
        ++successes;
      }
    }
    TimeBombPoint point;
    point.delay = delay;
    point.trials = trials;
    point.success_rate = trials == 0 ? 0.0
                                     : static_cast<double>(successes) /
                                           static_cast<double>(trials);
    points.push_back(point);
    util::log_info("timebomb ", env::game_name(config.game), "/",
                   rl::algorithm_name(config.victim_algorithm), " eps = ",
                   config.epsilon_linf, " delay ", delay, " -> rate ",
                   point.success_rate, " (", trials, " trials)");
  }
  return points;
}

util::TableWriter threat_model_table() {
  util::TableWriter table({"Attacker access", "DNN weights", "DNN structure",
                           "Train algorithm", "Train environment"});
  // Table 1 of the paper (3 = required/known to the attacker, 7 = not).
  table.add_row({"Huang et al. 1", "no", "yes", "yes", "yes"});
  table.add_row({"Huang et al. 2", "no", "yes", "no", "yes"});
  table.add_row({"Behzadan and Munir", "no", "no", "yes", "yes"});
  table.add_row({"Lin et al.", "yes", "yes", "no", "no"});
  table.add_row({"Ours (this repo)", "no", "no", "no", "no"});
  return table;
}

}  // namespace rlattack::core
