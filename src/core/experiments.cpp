#include "rlattack/core/experiments.hpp"

#include <algorithm>

#include "rlattack/obs/metrics.hpp"
#include "rlattack/util/log.hpp"
#include "rlattack/util/stats.hpp"

namespace rlattack::core {

namespace {

// Driver-level wall timing is a telemetry span in always-measure mode: the
// clock runs even with metrics disabled so ExperimentTiming (and hence
// bench_times.csv) keeps reporting wall seconds, but the aggregate metric is
// only recorded when telemetry is on.
obs::Span experiment_span(const char* metric) {
  return obs::Span(obs::MetricsRegistry::global().span(metric),
                   /*always=*/true);
}

void finish_timing(ExperimentTiming* timing, obs::Span& span,
                   std::size_t threads, std::size_t episodes,
                   std::size_t craft_batch, std::size_t eval_batch,
                   const char* name) {
  span.stop();
  const double wall = span.seconds();
  if (timing) {
    timing->wall_seconds = wall;
    timing->threads = threads;
    timing->episodes = episodes;
    timing->craft_batch = craft_batch;
    timing->eval_batch = eval_batch;
  }
  util::log_info(name, ": ", episodes, " episodes in ", wall, " s (",
                 threads, " episode workers, craft batch ", craft_batch,
                 ", eval batch ", eval_batch, ")");
}

}  // namespace

std::vector<RewardPoint> run_reward_experiment(
    Zoo& zoo, const RewardExperimentConfig& config,
    ExperimentTiming* timing) {
  obs::Span span = experiment_span("experiment.reward");
  rl::Agent& victim = zoo.victim(config.game, config.algorithm);
  const std::size_t m = config.sequence_variant ? 10 : 1;
  // The approximator is always trained from DQN traces (the paper trains
  // the seq2seq against DQN and transfers to the other algorithms).
  ApproximatorInfo approx =
      zoo.approximator(config.game, rl::Algorithm::kDqn, m);
  const std::size_t threads =
      resolve_experiment_threads(zoo.config().experiment_threads);

  // Flatten the (attack x budget) grid into seed-deterministic episode
  // jobs, one per run.
  struct Cell {
    attack::Kind kind;
    double budget;
  };
  std::vector<Cell> cells;
  std::vector<EpisodeJob> jobs;
  for (attack::Kind kind : config.attacks) {
    for (double budget : config.l2_budgets) {
      cells.push_back({kind, budget});
      EpisodeJob job;
      job.attack = kind;
      job.budget = attack::Budget{attack::Budget::Norm::kL2,
                                  static_cast<float>(budget)};
      job.policy.mode = budget > 0.0 ? AttackPolicy::Mode::kEveryStep
                                     : AttackPolicy::Mode::kNone;
      job.policy.goal_mode = attack::Goal::Mode::kUntargeted;
      job.policy.random_position = config.sequence_variant;
      for (std::size_t run = 0; run < config.runs; ++run) {
        job.seed = config.seed + run;
        jobs.push_back(job);
      }
    }
  }
  const std::vector<EpisodeOutcome> outcomes =
      run_episode_jobs(victim, config.game, *approx.model, jobs, threads);

  // Reduce each cell in run order: the same accumulation sequence as the
  // serial loops, hence bit-identical statistics.
  std::vector<RewardPoint> points;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    util::RunningStats reward_stats, l2_stats;
    for (std::size_t run = 0; run < config.runs; ++run) {
      const EpisodeOutcome& outcome = outcomes[c * config.runs + run];
      reward_stats.add(outcome.total_reward);
      if (outcome.attacks_attempted > 0) l2_stats.add(outcome.mean_l2);
    }
    RewardPoint point;
    point.attack = cells[c].kind;
    point.l2_budget = cells[c].budget;
    point.mean_reward = reward_stats.mean();
    point.stddev_reward = reward_stats.stddev();
    point.mean_realised_l2 = l2_stats.count() > 0 ? l2_stats.mean() : 0.0;
    point.sequence_variant = config.sequence_variant;
    points.push_back(point);
    util::log_info("reward ", env::game_name(config.game), "/",
                   rl::algorithm_name(config.algorithm), " ",
                   attack::attack_name(cells[c].kind), " l2 = ",
                   cells[c].budget, " -> reward ", point.mean_reward,
                   " +/- ", point.stddev_reward);
  }
  finish_timing(timing, span, threads, jobs.size(),
                resolve_craft_batch(jobs), resolve_eval_batch(jobs),
                "reward experiment");
  return points;
}

std::vector<TransferabilityPoint> run_transferability_experiment(
    Zoo& zoo, const TransferabilityConfig& config,
    ExperimentTiming* timing) {
  obs::Span span = experiment_span("experiment.transferability");
  rl::Agent& victim = zoo.victim(config.game, config.algorithm);
  ApproximatorInfo approx =
      zoo.approximator(config.game, rl::Algorithm::kDqn, 1);
  const std::size_t threads =
      resolve_experiment_threads(zoo.config().experiment_threads);

  struct Cell {
    attack::Kind kind;
    double budget;
  };
  std::vector<Cell> cells;
  std::vector<EpisodeJob> jobs;
  for (attack::Kind kind : config.attacks) {
    for (double budget : config.l2_budgets) {
      cells.push_back({kind, budget});
      EpisodeJob job;
      job.attack = kind;
      job.budget = attack::Budget{attack::Budget::Norm::kL2,
                                  static_cast<float>(budget)};
      job.policy.mode = AttackPolicy::Mode::kEveryStep;
      job.policy.goal_mode = attack::Goal::Mode::kUntargeted;
      for (std::size_t run = 0; run < config.runs; ++run) {
        job.seed = config.seed + run;
        jobs.push_back(job);
      }
    }
  }
  const std::vector<EpisodeOutcome> outcomes =
      run_episode_jobs(victim, config.game, *approx.model, jobs, threads);

  std::vector<TransferabilityPoint> points;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    std::size_t flips = 0, samples = 0;
    for (std::size_t run = 0; run < config.runs; ++run) {
      const EpisodeOutcome& outcome = outcomes[c * config.runs + run];
      flips += outcome.immediate_flips;
      samples += outcome.attacks_attempted;
    }
    TransferabilityPoint point;
    point.attack = cells[c].kind;
    point.l2_budget = cells[c].budget;
    point.samples = samples;
    point.transfer_rate =
        samples == 0 ? 0.0
                     : static_cast<double>(flips) /
                           static_cast<double>(samples);
    points.push_back(point);
    util::log_info("transfer ", env::game_name(config.game), "/",
                   rl::algorithm_name(config.algorithm), " ",
                   attack::attack_name(cells[c].kind), " l2 = ",
                   cells[c].budget, " -> rate ", point.transfer_rate, " (",
                   samples, " samples)");
  }
  finish_timing(timing, span, threads, jobs.size(),
                resolve_craft_batch(jobs), resolve_eval_batch(jobs),
                "transferability experiment");
  return points;
}

std::vector<TimeBombPoint> run_timebomb_experiment(
    Zoo& zoo, const TimeBombConfig& config, ExperimentTiming* timing) {
  obs::Span span = experiment_span("experiment.timebomb");
  rl::Agent& victim = zoo.victim(config.game, config.victim_algorithm);
  // The approximator predicts the future-action sequence the delays index
  // into: m = max delay + 1, capped at the paper's Seq-model length of 10
  // (Table 2). The default delays {1..9} reproduce the paper's m = 10.
  std::size_t max_delay = 0;
  for (std::size_t delay : config.delays)
    max_delay = std::max(max_delay, delay);
  const std::size_t m = std::min<std::size_t>(10, max_delay + 1);
  ApproximatorInfo approx =
      zoo.approximator(config.game, config.approximator_source, m);
  const attack::Budget budget{attack::Budget::Norm::kLinf,
                              config.epsilon_linf};
  const std::size_t threads =
      resolve_experiment_threads(zoo.config().experiment_threads);
  const std::size_t output_steps = approx.model->config().output_steps;

  // Each (delay, run) needs a clean counterfactual and an attacked episode
  // of the same seed: two jobs, adjacent in the flattened list. Trigger
  // steps are pre-drawn per delay in run order, preserving the serial
  // drivers' RNG stream.
  std::vector<std::size_t> delays;
  std::vector<EpisodeJob> jobs;
  for (std::size_t delay : config.delays) {
    if (delay >= output_steps) {
      util::log_warn("timebomb: delay ", delay,
                     " beyond output sequence; skipping");
      continue;
    }
    delays.push_back(delay);
    util::Rng trigger_rng(config.seed ^ (0xD00Du + delay));
    for (std::size_t run = 0; run < config.runs; ++run) {
      const std::uint64_t episode_seed = config.seed + 100 * delay + run;
      EpisodeJob clean;
      clean.attack = config.attack_kind;
      clean.budget = budget;
      clean.policy.mode = AttackPolicy::Mode::kNone;
      clean.seed = episode_seed;
      jobs.push_back(clean);

      EpisodeJob bomb;
      bomb.attack = config.attack_kind;
      bomb.budget = budget;
      bomb.policy.mode = AttackPolicy::Mode::kSingleStep;
      bomb.policy.trigger_step =
          approx.input_steps + trigger_rng.uniform_int(std::size_t{10});
      bomb.policy.goal_mode = attack::Goal::Mode::kTargeted;
      bomb.policy.position = delay;
      bomb.policy.runner_up_target = true;
      bomb.seed = episode_seed;
      jobs.push_back(bomb);
    }
  }
  const std::vector<EpisodeOutcome> outcomes =
      run_episode_jobs(victim, config.game, *approx.model, jobs, threads);

  std::vector<TimeBombPoint> points;
  for (std::size_t d = 0; d < delays.size(); ++d) {
    const std::size_t delay = delays[d];
    std::size_t successes = 0, trials = 0;
    for (std::size_t run = 0; run < config.runs; ++run) {
      const std::size_t base = 2 * (d * config.runs + run);
      const EpisodeOutcome& baseline = outcomes[base];
      const EpisodeOutcome& attacked = outcomes[base + 1];
      if (attacked.fired_step == static_cast<std::size_t>(-1))
        continue;  // episode too short for the FIFO to fill
      const std::size_t check = attacked.fired_step + delay;
      if (baseline.actions.size() <= check) continue;  // no counterfactual
      ++trials;
      if (attacked.actions.size() <= check) {
        // The perturbation changed the trajectory so strongly the episode
        // ended before t + delay; the behaviour at the target time changed.
        ++successes;
      } else if (attacked.actions[check] != baseline.actions[check]) {
        ++successes;
      }
    }
    TimeBombPoint point;
    point.delay = delay;
    point.trials = trials;
    point.success_rate = trials == 0 ? 0.0
                                     : static_cast<double>(successes) /
                                           static_cast<double>(trials);
    points.push_back(point);
    util::log_info("timebomb ", env::game_name(config.game), "/",
                   rl::algorithm_name(config.victim_algorithm), " eps = ",
                   config.epsilon_linf, " delay ", delay, " -> rate ",
                   point.success_rate, " (", trials, " trials)");
  }
  finish_timing(timing, span, threads, jobs.size(),
                resolve_craft_batch(jobs), resolve_eval_batch(jobs),
                "timebomb experiment");
  return points;
}

util::TableWriter threat_model_table() {
  util::TableWriter table({"Attacker access", "DNN weights", "DNN structure",
                           "Train algorithm", "Train environment"});
  // Table 1 of the paper (3 = required/known to the attacker, 7 = not).
  table.add_row({"Huang et al. 1", "no", "yes", "yes", "yes"});
  table.add_row({"Huang et al. 2", "no", "yes", "no", "yes"});
  table.add_row({"Behzadan and Munir", "no", "no", "yes", "yes"});
  table.add_row({"Lin et al.", "yes", "yes", "no", "no"});
  table.add_row({"Ours (this repo)", "no", "no", "no", "no"});
  return table;
}

}  // namespace rlattack::core
