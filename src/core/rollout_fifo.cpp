#include "rlattack/core/rollout_fifo.hpp"

#include <algorithm>
#include <stdexcept>

namespace rlattack::core {

RolloutFifo::RolloutFifo(std::size_t depth, std::size_t frame_size,
                         std::size_t actions)
    : depth_(depth), frame_size_(frame_size), actions_(actions) {
  if (depth_ == 0) throw std::logic_error("RolloutFifo: zero depth");
  if (frame_size_ == 0 || actions_ == 0)
    throw std::logic_error("RolloutFifo: zero frame size or action count");
}

void RolloutFifo::push(const nn::Tensor& frame, std::size_t action) {
  if (frame.size() != frame_size_)
    throw std::logic_error("RolloutFifo::push: frame size mismatch");
  if (action >= actions_)
    throw std::logic_error("RolloutFifo::push: action out of range");
  frames_.push_back(frame.reshaped({frame_size_}));
  actions_hist_.push_back(action);
  if (frames_.size() > depth_) {
    frames_.pop_front();
    actions_hist_.pop_front();
  }
}

void RolloutFifo::clear() {
  frames_.clear();
  actions_hist_.clear();
}

attack::CraftInputs RolloutFifo::crafting_inputs(
    const nn::Tensor& current_frame) const {
  if (!full())
    throw std::logic_error("RolloutFifo::crafting_inputs: FIFO not full");
  if (current_frame.size() != frame_size_)
    throw std::logic_error(
        "RolloutFifo::crafting_inputs: current frame size mismatch");
  attack::CraftInputs inputs;
  inputs.action_history = nn::Tensor({1, depth_, actions_});
  inputs.obs_history = nn::Tensor({1, depth_, frame_size_});
  inputs.current_obs = current_frame.reshaped({1, frame_size_});
  for (std::size_t i = 0; i < depth_; ++i) {
    inputs.action_history.at3(0, i, actions_hist_[i]) = 1.0f;
    auto dst = inputs.obs_history.data().subspan(i * frame_size_, frame_size_);
    auto src = frames_[i].data();
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return inputs;
}

FrameAccumulator::FrameAccumulator(std::size_t depth, std::size_t frame_size)
    : depth_(depth), frame_size_(frame_size) {
  if (depth_ == 0) throw std::logic_error("FrameAccumulator: zero depth");
}

nn::Tensor FrameAccumulator::concat() const {
  nn::Tensor out({depth_ * frame_size_});
  std::size_t offset = 0;
  for (const nn::Tensor& f : frames_) {
    std::copy(f.data().begin(), f.data().end(), out.data().begin() + offset);
    offset += frame_size_;
  }
  return out;
}

nn::Tensor FrameAccumulator::push(const nn::Tensor& frame) {
  if (frame.size() != frame_size_)
    throw std::logic_error("FrameAccumulator::push: frame size mismatch");
  nn::Tensor flat = frame.reshaped({frame_size_});
  if (frames_.empty()) {
    // Prime the whole stack with the first frame, as FrameStack::reset does.
    for (std::size_t i = 0; i < depth_; ++i) frames_.push_back(flat);
  } else {
    frames_.pop_front();
    frames_.push_back(std::move(flat));
  }
  return concat();
}

nn::Tensor FrameAccumulator::peek_with(const nn::Tensor& frame) const {
  if (frame.size() != frame_size_)
    throw std::logic_error("FrameAccumulator::peek_with: frame size mismatch");
  if (frames_.empty())
    throw std::logic_error("FrameAccumulator::peek_with: not primed");
  nn::Tensor out = concat();
  auto src = frame.data();
  std::copy(src.begin(), src.end(),
            out.data().begin() + (depth_ - 1) * frame_size_);
  return out;
}

void FrameAccumulator::clear() { frames_.clear(); }

}  // namespace rlattack::core
