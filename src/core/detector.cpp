#include "rlattack/core/detector.hpp"

#include <stdexcept>

#include "rlattack/util/stats.hpp"

namespace rlattack::core {

StatefulDetector::StatefulDetector() : StatefulDetector(Config{}) {}

StatefulDetector::StatefulDetector(Config config) : config_(config) {
  if (config_.window == 0)
    throw std::logic_error("StatefulDetector: zero window");
  if (config_.alarm_flags == 0 || config_.alarm_flags > config_.window)
    throw std::logic_error(
        "StatefulDetector: alarm_flags must be in [1, window]");
}

void StatefulDetector::calibrate(
    const std::vector<env::Episode>& clean_episodes) {
  util::RunningStats stats;
  for (const env::Episode& episode : clean_episodes) {
    for (std::size_t t = 1; t < episode.steps.size(); ++t) {
      nn::Tensor delta = episode.steps[t].observation;
      delta -= episode.steps[t - 1].observation;
      stats.add(util::l2_norm(delta.data()));
    }
  }
  if (stats.count() < 2)
    throw std::logic_error(
        "StatefulDetector::calibrate: need at least two transitions");
  calibrate(stats.mean(), stats.stddev());
}

void StatefulDetector::calibrate(double mean_delta_norm,
                                 double stddev_delta_norm) {
  if (stddev_delta_norm <= 0.0)
    throw std::logic_error("StatefulDetector::calibrate: non-positive stddev");
  mean_ = mean_delta_norm;
  stddev_ = stddev_delta_norm;
  calibrated_ = true;
  reset();
}

void StatefulDetector::reset() {
  has_previous_ = false;
  recent_flags_.clear();
  window_flags_ = 0;
  total_flags_ = 0;
  alarmed_ = false;
  last_z_ = 0.0;
}

bool StatefulDetector::observe(const nn::Tensor& frame) {
  if (!calibrated_)
    throw std::logic_error("StatefulDetector::observe: not calibrated");
  if (has_previous_) {
    if (frame.size() != previous_frame_.size())
      throw std::logic_error("StatefulDetector::observe: frame size changed");
    nn::Tensor delta = frame;
    delta -= previous_frame_;
    const double z =
        (util::l2_norm(delta.data()) - mean_) / stddev_;
    last_z_ = z;
    const bool flag = z > config_.z_threshold;
    recent_flags_.push_back(flag);
    if (flag) {
      ++window_flags_;
      ++total_flags_;
    }
    if (recent_flags_.size() > config_.window) {
      if (recent_flags_.front()) --window_flags_;
      recent_flags_.pop_front();
    }
    if (window_flags_ >= config_.alarm_flags) alarmed_ = true;
  }
  previous_frame_ = frame.reshaped({frame.size()});
  has_previous_ = true;
  return alarmed_;
}

}  // namespace rlattack::core
