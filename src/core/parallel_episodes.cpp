#include "rlattack/core/parallel_episodes.hpp"

#include <atomic>
#include <cstdlib>

#include "rlattack/util/thread_pool.hpp"

namespace rlattack::core {

std::size_t resolve_experiment_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("RLATTACK_EXPERIMENT_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0)
      return static_cast<std::size_t>(v);
  }
  return util::ThreadPool::global().size();
}

namespace {

EpisodeOutcome run_one_job(rl::Agent& victim, env::Game game,
                           seq2seq::Seq2SeqModel& model,
                           const EpisodeJob& job) {
  // Attacks hold only immutable configuration (steps, coefficients), so a
  // fresh default-configured instance per job matches the shared instance
  // the serial drivers historically used.
  attack::AttackPtr attacker = attack::make_attack(job.attack);
  AttackSession session(victim, game, model, *attacker, job.budget);
  return session.run_episode(job.policy, job.seed);
}

}  // namespace

std::vector<EpisodeOutcome> run_episode_jobs(
    rl::Agent& victim, env::Game game, seq2seq::Seq2SeqModel& model,
    const std::vector<EpisodeJob>& jobs, std::size_t threads) {
  std::vector<EpisodeOutcome> outcomes(jobs.size());
  if (jobs.empty()) return outcomes;

  const std::size_t workers =
      std::min(threads == 0 ? std::size_t{1} : threads, jobs.size());
  if (workers <= 1) {
    // Historical serial path: original victim/model, no pool dispatch.
    for (std::size_t i = 0; i < jobs.size(); ++i)
      outcomes[i] = run_one_job(victim, game, model, jobs[i]);
    return outcomes;
  }

  // One clone pair per worker; cloning costs one parameter copy, amortised
  // over jobs.size() / workers episodes.
  struct Worker {
    rl::AgentPtr victim;
    std::unique_ptr<seq2seq::Seq2SeqModel> model;
  };
  std::vector<Worker> pool_workers;
  pool_workers.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    pool_workers.push_back({victim.clone(), model.clone()});

  // Dynamic scheduling: episode lengths vary wildly (a successful attack
  // ends CartPole episodes early), so workers pull the next job index from
  // a shared counter instead of owning a static slice.
  std::atomic<std::size_t> next{0};
  util::ThreadPool::global().parallel_for_chunks(
      workers, 1, [&](std::size_t w, std::size_t, std::size_t) {
        Worker& worker = pool_workers[w];
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= jobs.size()) return;
          outcomes[i] = run_one_job(*worker.victim, game, *worker.model,
                                    jobs[i]);
        }
      });
  return outcomes;
}

}  // namespace rlattack::core
