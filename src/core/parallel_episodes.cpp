#include "rlattack/core/parallel_episodes.hpp"

#include <atomic>
#include <thread>

#include "rlattack/attack/batch_planner.hpp"
#include "rlattack/obs/metrics.hpp"
#include "rlattack/obs/trace.hpp"
#include "rlattack/rl/batch.hpp"
#include "rlattack/util/check.hpp"
#include "rlattack/util/env.hpp"
#include "rlattack/util/thread_pool.hpp"
#include "rlattack/util/thread_safety.hpp"

namespace rlattack::core {

std::size_t resolve_experiment_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const std::optional<long> v =
          util::env::get_long(util::env::Var::kExperimentThreads);
      v && *v > 0)
    return static_cast<std::size_t>(*v);
  return util::ThreadPool::global().size();
}

std::size_t resolve_craft_batch(const std::vector<EpisodeJob>& jobs) {
  if (!attack::craft_batch_enabled() || !attack::craft_cache_enabled())
    return 0;
  // A rendezvous needs at least two episodes that will actually query the
  // approximator; clean runs and Gaussian noise never enroll.
  std::size_t enrollable = 0;
  for (const EpisodeJob& job : jobs)
    if (job.policy.mode != AttackPolicy::Mode::kNone &&
        job.attack != attack::Kind::kGaussian)
      ++enrollable;
  if (enrollable < 2) return 0;
  const std::size_t hosts = std::min(attack::craft_batch_width(), jobs.size());
  return hosts >= 2 ? hosts : 0;
}

std::size_t resolve_eval_batch(const std::vector<EpisodeJob>& jobs) {
  // Gated on the craft cache like resolve_craft_batch: enrolled episodes
  // route their approximator queries through the planner, whose flush is
  // built on the cached-encoding batch calls.
  if (!attack::eval_batch_enabled() || !attack::craft_cache_enabled())
    return 0;
  // Every episode queries the victim every step, so every job can enroll —
  // a rendezvous just needs two of them.
  if (jobs.size() < 2) return 0;
  const std::size_t hosts = std::min(attack::eval_batch_width(), jobs.size());
  return hosts >= 2 ? hosts : 0;
}

namespace {

EpisodeOutcome run_one_job(rl::Agent& victim, env::Game game,
                           seq2seq::Seq2SeqModel& model, const EpisodeJob& job,
                           attack::BatchedCraftPlanner* planner = nullptr) {
  static obs::SpanStat& episode_span =
      obs::MetricsRegistry::global().span("phase.episode");
  obs::Span span(episode_span);
  obs::TraceScope trace("episode.job", "seed", static_cast<double>(job.seed));
  // Attacks hold only immutable configuration (steps, coefficients), so a
  // fresh default-configured instance per job matches the shared instance
  // the serial drivers historically used.
  attack::AttackPtr attacker = attack::make_attack(job.attack);
  AttackSession session(victim, game, model, *attacker, job.budget);
  return session.run_episode(job.policy, job.seed, planner);
}

/// Number of Rng draws hashed per job when cross-checking stream purity in
/// checked builds. Enough to cover the seed-derived splits an episode
/// performs up front; cheap enough to recompute on every worker.
constexpr std::size_t kCheckedRngDraws = 32;

/// Order-sensitive hash of every parameter tensor of a model/agent clone.
/// Clones must be bit-identical to their source before any job runs —
/// divergent weights would silently break the run-order reduction's
/// bit-identical-rows contract.
std::uint64_t hash_params(const std::vector<nn::Param>& params) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const nn::Param& p : params) {
    const std::uint64_t t = util::hash_floats(p.value->data());
    h ^= t + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

/// Process-lifetime worker pool: one victim clone (and, for the threaded
/// path, one model clone) per slot, re-synchronized in place on every
/// acquisition instead of reconstructed. Clone construction costs a full
/// set of network allocations per episode batch; experiment grids invoke
/// run_episode_jobs hundreds of times against the same victim/model, so
/// after warm-up the pool makes those invocations allocation-free (pinned
/// by the agent/model construction counters in checked tests).
struct PooledWorker {
  rl::AgentPtr victim;
  std::unique_ptr<seq2seq::Seq2SeqModel> model;
};

struct WorkerPool {
  util::Mutex mu;  ///< held for the whole pooled run, not just acquisition
  /// Clone slots; stable addresses only while mu is held (sync may resize).
  std::vector<PooledWorker> workers RLATTACK_GUARDED_BY(mu);
};

WorkerPool& worker_pool() {
  static WorkerPool pool;
  return pool;
}

/// Ensures slots [0, count) hold a victim clone of `victim` (and a model
/// clone of `model` when non-null), reusing existing clones via reset_from
/// and rebuilding only on architecture mismatch.
void sync_workers_locked(WorkerPool& pool, rl::Agent& victim,
                         seq2seq::Seq2SeqModel* model, std::size_t count)
    RLATTACK_REQUIRES(pool.mu) {
  if (pool.workers.size() < count) pool.workers.resize(count);
  for (std::size_t w = 0; w < count; ++w) {
    PooledWorker& slot = pool.workers[w];
    if (slot.victim != nullptr) {
      try {
        slot.victim->reset_from(victim);
      } catch (const std::logic_error&) {
        slot.victim = victim.clone();  // architecture changed; rebuild
      }
    } else {
      slot.victim = victim.clone();
    }
    if (model == nullptr) continue;
    if (slot.model != nullptr) {
      try {
        slot.model->reset_from(*model);
      } catch (const std::logic_error&) {
        slot.model = model->clone();
      }
    } else {
      slot.model = model->clone();
    }
  }
}

/// Checked build: every pooled clone must leave sync bit-identical to its
/// source — a stale or partially reset clone would silently break the
/// run-order reduction's bit-identical-rows contract.
void verify_workers_locked(WorkerPool& pool, rl::Agent& victim,
                           seq2seq::Seq2SeqModel* model, std::size_t count)
    RLATTACK_REQUIRES(pool.mu) {
  const std::uint64_t victim_hash = hash_params(victim.network().params());
  const std::uint64_t model_hash =
      model != nullptr ? hash_params(model->params()) : 0;
  for (std::size_t w = 0; w < count; ++w) {
    RLATTACK_CHECK(
        hash_params(pool.workers[w].victim->network().params()) == victim_hash,
        "run_episode_jobs: victim clone " + std::to_string(w) +
            " diverges from source parameters before any job ran");
    if (model != nullptr) {
      RLATTACK_CHECK(
          hash_params(pool.workers[w].model->params()) == model_hash,
          "run_episode_jobs: model clone " + std::to_string(w) +
              " diverges from source parameters before any job ran");
    }
  }
}

std::vector<std::uint64_t> checked_stream_hashes(
    const std::vector<EpisodeJob>& jobs) {
  std::vector<std::uint64_t> hashes;
  if constexpr (util::kCheckedBuild) {
    hashes.reserve(jobs.size());
    for (const EpisodeJob& job : jobs)
      hashes.push_back(util::hash_rng_stream(job.seed, kCheckedRngDraws));
  }
  return hashes;
}

void checked_stream_purity(const EpisodeJob& job, std::size_t index,
                           const std::vector<std::uint64_t>& expected) {
  if constexpr (util::kCheckedBuild) {
    // Re-derive the job's RNG stream on the worker that will run it: any
    // seed-plumbing or shared-state bug that makes the stream depend on
    // *which* thread executes the job is caught before the episode
    // contaminates the result vector.
    RLATTACK_CHECK(
        util::hash_rng_stream(job.seed, kCheckedRngDraws) == expected[index],
        "run_episode_jobs: job " + std::to_string(index) +
            " RNG stream is not a pure function of its seed");
  }
}

/// Batched craft substrate: `hosts` plain threads share one planner bound
/// to the ORIGINAL model. Hosts must NOT be global-pool workers — with a
/// pool of one thread the first host would block inside the rendezvous
/// waiting for hosts that never get scheduled. The planner serializes all
/// model access inside its flush, so the hosts need no model clones; the
/// inner GEMMs still reach the global pool through its external-submitter
/// path.
std::vector<EpisodeOutcome> run_jobs_batched(rl::Agent& victim, env::Game game,
                                             seq2seq::Seq2SeqModel& model,
                                             const std::vector<EpisodeJob>& jobs,
                                             std::size_t hosts) {
  std::vector<EpisodeOutcome> outcomes(jobs.size());
  obs::TraceScope trace("episodes.dispatch", "jobs",
                        static_cast<double>(jobs.size()), "hosts",
                        static_cast<double>(hosts));
  WorkerPool& pool = worker_pool();
  util::MutexLock pool_lock(pool.mu);
  {
    obs::TraceScope sync_trace("episodes.sync_workers", "count",
                               static_cast<double>(hosts));
    sync_workers_locked(pool, victim, /*model=*/nullptr, hosts);
  }
  if constexpr (util::kCheckedBuild)
    verify_workers_locked(pool, victim, /*model=*/nullptr, hosts);
  const std::vector<std::uint64_t> expected = checked_stream_hashes(jobs);

  // Hoist each host's victim out of the guarded pool while the lock is
  // held: the host threads below must not touch pool.workers themselves
  // (they hold no lock — this function holds mu for them until the join).
  std::vector<rl::Agent*> host_victims(hosts);
  for (std::size_t h = 0; h < hosts; ++h)
    host_victims[h] = pool.workers[h].victim.get();

  attack::BatchedCraftPlanner planner(model);
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  {
    std::vector<std::thread> host_threads;
    host_threads.reserve(hosts);
    for (std::size_t h = 0; h < hosts; ++h) {
      host_threads.emplace_back([&, h] {
        rl::Agent& host_victim = *host_victims[h];
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= jobs.size()) return;
          checked_stream_purity(jobs[i], i, expected);
          outcomes[i] =
              run_one_job(host_victim, game, model, jobs[i], &planner);
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : host_threads) t.join();
  }
  if constexpr (util::kCheckedBuild) {
    RLATTACK_CHECK(completed.load(std::memory_order_relaxed) == jobs.size(),
                   "run_episode_jobs: " + std::to_string(completed.load()) +
                       " of " + std::to_string(jobs.size()) +
                       " jobs completed — outcome vector has holes");
  }
  return outcomes;
}

/// Episode-batched evaluation: `hosts` plain threads share one planner
/// bound to the ORIGINAL victim and model — no clones, no worker pool. The
/// planner's victim handler fuses the concurrent episodes' per-step policy
/// queries into one act_batch forward, and enrolled episodes' approximator
/// queries batch through the same rendezvous exactly as run_jobs_batched's
/// do. All victim and model access happens inside the flush, one thread at
/// a time; host threads only ever block at the rendezvous.
std::vector<EpisodeOutcome> run_jobs_eval_batched(
    rl::Agent& victim, env::Game game, seq2seq::Seq2SeqModel& model,
    const std::vector<EpisodeJob>& jobs, std::size_t hosts) {
  std::vector<EpisodeOutcome> outcomes(jobs.size());
  obs::TraceScope trace("episodes.dispatch", "jobs",
                        static_cast<double>(jobs.size()), "hosts",
                        static_cast<double>(hosts));
  const std::vector<std::uint64_t> expected = checked_stream_hashes(jobs);

  attack::BatchedCraftPlanner planner(model);
  planner.set_victim_handler(
      [&victim](
          std::span<attack::BatchedCraftPlanner::EvalProbe* const> probes) {
        std::vector<const nn::Tensor*> rows(probes.size());
        for (std::size_t r = 0; r < probes.size(); ++r)
          rows[r] = probes[r]->observation;
        const std::vector<std::size_t> actions = victim.act_batch(
            rl::batch_observations(rows), /*explore=*/false);
        for (std::size_t r = 0; r < probes.size(); ++r)
          probes[r]->action = actions[r];
      });

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  {
    std::vector<std::thread> host_threads;
    host_threads.reserve(hosts);
    for (std::size_t h = 0; h < hosts; ++h) {
      host_threads.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= jobs.size()) return;
          checked_stream_purity(jobs[i], i, expected);
          outcomes[i] = run_one_job(victim, game, model, jobs[i], &planner);
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : host_threads) t.join();
  }
  if constexpr (util::kCheckedBuild) {
    RLATTACK_CHECK(completed.load(std::memory_order_relaxed) == jobs.size(),
                   "run_episode_jobs: " + std::to_string(completed.load()) +
                       " of " + std::to_string(jobs.size()) +
                       " jobs completed — outcome vector has holes");
  }
  return outcomes;
}

}  // namespace

std::vector<EpisodeOutcome> run_episode_jobs(
    rl::Agent& victim, env::Game game, seq2seq::Seq2SeqModel& model,
    const std::vector<EpisodeJob>& jobs, std::size_t threads) {
  std::vector<EpisodeOutcome> outcomes(jobs.size());
  if (jobs.empty()) return outcomes;

  const std::size_t eval_hosts = resolve_eval_batch(jobs);
  if (eval_hosts > 0) {
    obs::MetricsRegistry::global()
        .gauge("experiment.workers")
        .set(static_cast<double>(eval_hosts));
    return run_jobs_eval_batched(victim, game, model, jobs, eval_hosts);
  }

  const std::size_t batch_hosts = resolve_craft_batch(jobs);
  if (batch_hosts > 0) {
    obs::MetricsRegistry::global()
        .gauge("experiment.workers")
        .set(static_cast<double>(batch_hosts));
    return run_jobs_batched(victim, game, model, jobs, batch_hosts);
  }

  const std::size_t workers =
      std::min(threads == 0 ? std::size_t{1} : threads, jobs.size());
  obs::MetricsRegistry::global()
      .gauge("experiment.workers")
      .set(static_cast<double>(workers));
  if (workers <= 1) {
    // Historical serial path: original victim/model, no pool dispatch.
    for (std::size_t i = 0; i < jobs.size(); ++i)
      outcomes[i] = run_one_job(victim, game, model, jobs[i]);
    return outcomes;
  }

  // Threaded path: pooled clone pair per worker, jobs pulled dynamically
  // (episode lengths vary wildly — a successful attack ends CartPole
  // episodes early — so static slices would load-imbalance).
  obs::TraceScope trace("episodes.dispatch", "jobs",
                        static_cast<double>(jobs.size()), "workers",
                        static_cast<double>(workers));
  WorkerPool& pool = worker_pool();
  util::MutexLock pool_lock(pool.mu);
  {
    obs::TraceScope sync_trace("episodes.sync_workers", "count",
                               static_cast<double>(workers));
    sync_workers_locked(pool, victim, &model, workers);
  }
  if constexpr (util::kCheckedBuild)
    verify_workers_locked(pool, victim, &model, workers);
  const std::vector<std::uint64_t> expected = checked_stream_hashes(jobs);

  // Hoisted clone pointers, same reasoning as run_jobs_batched: the chunk
  // workers run without the lock this function keeps held across the join.
  std::vector<rl::Agent*> worker_victims(workers);
  std::vector<seq2seq::Seq2SeqModel*> worker_models(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    worker_victims[w] = pool.workers[w].victim.get();
    worker_models[w] = pool.workers[w].model.get();
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  util::ThreadPool::global().parallel_for_chunks(
      workers, 1, [&](std::size_t w, std::size_t, std::size_t) {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= jobs.size()) return;
          checked_stream_purity(jobs[i], i, expected);
          outcomes[i] =
              run_one_job(*worker_victims[w], game, *worker_models[w], jobs[i]);
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      });
  if constexpr (util::kCheckedBuild) {
    RLATTACK_CHECK(completed.load(std::memory_order_relaxed) == jobs.size(),
                   "run_episode_jobs: " +
                       std::to_string(completed.load()) + " of " +
                       std::to_string(jobs.size()) +
                       " jobs completed — outcome vector has holes");
  }
  return outcomes;
}

}  // namespace rlattack::core
