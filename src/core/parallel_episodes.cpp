#include "rlattack/core/parallel_episodes.hpp"

#include <atomic>
#include <cstdlib>

#include "rlattack/obs/metrics.hpp"
#include "rlattack/util/check.hpp"
#include "rlattack/util/thread_pool.hpp"

namespace rlattack::core {

std::size_t resolve_experiment_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("RLATTACK_EXPERIMENT_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0)
      return static_cast<std::size_t>(v);
  }
  return util::ThreadPool::global().size();
}

namespace {

EpisodeOutcome run_one_job(rl::Agent& victim, env::Game game,
                           seq2seq::Seq2SeqModel& model,
                           const EpisodeJob& job) {
  static obs::SpanStat& episode_span =
      obs::MetricsRegistry::global().span("phase.episode");
  obs::Span span(episode_span);
  // Attacks hold only immutable configuration (steps, coefficients), so a
  // fresh default-configured instance per job matches the shared instance
  // the serial drivers historically used.
  attack::AttackPtr attacker = attack::make_attack(job.attack);
  AttackSession session(victim, game, model, *attacker, job.budget);
  return session.run_episode(job.policy, job.seed);
}

/// Number of Rng draws hashed per job when cross-checking stream purity in
/// checked builds. Enough to cover the seed-derived splits an episode
/// performs up front; cheap enough to recompute on every worker.
constexpr std::size_t kCheckedRngDraws = 32;

/// Order-sensitive hash of every parameter tensor of a model/agent clone.
/// Clones must be bit-identical to their source before any job runs —
/// divergent weights would silently break the run-order reduction's
/// bit-identical-rows contract.
std::uint64_t hash_params(const std::vector<nn::Param>& params) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const nn::Param& p : params) {
    const std::uint64_t t = util::hash_floats(p.value->data());
    h ^= t + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace

std::vector<EpisodeOutcome> run_episode_jobs(
    rl::Agent& victim, env::Game game, seq2seq::Seq2SeqModel& model,
    const std::vector<EpisodeJob>& jobs, std::size_t threads) {
  std::vector<EpisodeOutcome> outcomes(jobs.size());
  if (jobs.empty()) return outcomes;

  const std::size_t workers =
      std::min(threads == 0 ? std::size_t{1} : threads, jobs.size());
  obs::MetricsRegistry::global()
      .gauge("experiment.workers")
      .set(static_cast<double>(workers));
  if (workers <= 1) {
    // Historical serial path: original victim/model, no pool dispatch.
    for (std::size_t i = 0; i < jobs.size(); ++i)
      outcomes[i] = run_one_job(victim, game, model, jobs[i]);
    return outcomes;
  }

  // One clone pair per worker; cloning costs one parameter copy, amortised
  // over jobs.size() / workers episodes.
  struct Worker {
    rl::AgentPtr victim;
    std::unique_ptr<seq2seq::Seq2SeqModel> model;
  };
  std::vector<Worker> pool_workers;
  pool_workers.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    pool_workers.push_back({victim.clone(), model.clone()});

  // Checked build: the run-order reduction is only bit-identical across
  // thread counts if (a) every worker clone starts from exactly the source
  // weights and (b) each job's RNG stream is a pure function of its seed.
  // Hash both up front so a violation trips here, at the point of
  // occurrence, instead of surfacing as a mysteriously different CSV row.
  std::vector<std::uint64_t> expected_stream_hash;
  if constexpr (util::kCheckedBuild) {
    const std::uint64_t victim_hash = hash_params(victim.network().params());
    const std::uint64_t model_hash = hash_params(model.params());
    for (std::size_t w = 0; w < workers; ++w) {
      RLATTACK_CHECK(
          hash_params(pool_workers[w].victim->network().params()) ==
              victim_hash,
          "run_episode_jobs: victim clone " + std::to_string(w) +
              " diverges from source parameters before any job ran");
      RLATTACK_CHECK(
          hash_params(pool_workers[w].model->params()) == model_hash,
          "run_episode_jobs: model clone " + std::to_string(w) +
              " diverges from source parameters before any job ran");
    }
    expected_stream_hash.reserve(jobs.size());
    for (const EpisodeJob& job : jobs)
      expected_stream_hash.push_back(
          util::hash_rng_stream(job.seed, kCheckedRngDraws));
  }

  // Dynamic scheduling: episode lengths vary wildly (a successful attack
  // ends CartPole episodes early), so workers pull the next job index from
  // a shared counter instead of owning a static slice.
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  util::ThreadPool::global().parallel_for_chunks(
      workers, 1, [&](std::size_t w, std::size_t, std::size_t) {
        Worker& worker = pool_workers[w];
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= jobs.size()) return;
          if constexpr (util::kCheckedBuild) {
            // Re-derive the job's RNG stream on the worker that will run it:
            // any seed-plumbing or shared-state bug that makes the stream
            // depend on *which* thread executes the job is caught before
            // the episode contaminates the result vector.
            RLATTACK_CHECK(
                util::hash_rng_stream(jobs[i].seed, kCheckedRngDraws) ==
                    expected_stream_hash[i],
                "run_episode_jobs: job " + std::to_string(i) +
                    " RNG stream is not a pure function of its seed");
          }
          outcomes[i] = run_one_job(*worker.victim, game, *worker.model,
                                    jobs[i]);
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      });
  if constexpr (util::kCheckedBuild) {
    RLATTACK_CHECK(completed.load(std::memory_order_relaxed) == jobs.size(),
                   "run_episode_jobs: " +
                       std::to_string(completed.load()) + " of " +
                       std::to_string(jobs.size()) +
                       " jobs completed — outcome vector has holes");
  }
  return outcomes;
}

}  // namespace rlattack::core
