// Experience replay: a uniform ring buffer for DQN and a proportional
// prioritized buffer (Schaul et al. 2016, a Rainbow component) backed by a
// sum tree.
#pragma once

#include <cstdint>
#include <vector>

#include "rlattack/nn/tensor.hpp"
#include "rlattack/util/rng.hpp"

namespace rlattack::rl {

/// One stored transition (s, a, r, s', done). For n-step agents `reward`
/// holds the discounted n-step return and `next_observation` is s_{t+n}.
struct Replayed {
  nn::Tensor observation;
  std::size_t action = 0;
  float reward = 0.0f;
  nn::Tensor next_observation;
  bool done = false;
};

/// Fixed-capacity uniform-sampling ring buffer.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  void push(Replayed transition);
  std::size_t size() const noexcept { return data_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  bool empty() const noexcept { return data_.empty(); }

  /// Uniformly samples `count` indices (with replacement). Requires
  /// non-empty buffer.
  std::vector<std::size_t> sample_indices(std::size_t count, util::Rng& rng) const;

  const Replayed& operator[](std::size_t i) const { return data_[i]; }

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::vector<Replayed> data_;
};

/// Complete binary sum tree over `capacity` leaves; supports O(log n)
/// priority update and prefix-sum sampling.
class SumTree {
 public:
  explicit SumTree(std::size_t capacity);

  void set(std::size_t leaf, float priority);
  float get(std::size_t leaf) const;
  float total() const noexcept { return nodes_[0]; }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Finds the leaf whose cumulative-priority interval contains `mass`
  /// (0 <= mass < total()).
  std::size_t find(float mass) const;

 private:
  std::size_t capacity_;
  std::vector<float> nodes_;  // 2*capacity - 1 nodes, leaves at the end
};

/// Proportional prioritized replay with importance-sampling weights.
class PrioritizedReplayBuffer {
 public:
  struct Config {
    std::size_t capacity = 10000;
    float alpha = 0.6f;       ///< priority exponent
    float beta_start = 0.4f;  ///< IS exponent, annealed to 1
    float beta_end = 1.0f;
    std::size_t beta_anneal_steps = 20000;
    float epsilon = 1e-3f;  ///< keeps every priority strictly positive
  };

  struct Sample {
    std::vector<std::size_t> indices;
    std::vector<float> weights;  ///< normalised IS weights (max = 1)
  };

  explicit PrioritizedReplayBuffer(Config config);

  /// New transitions enter with the current maximum priority so they are
  /// replayed at least once.
  void push(Replayed transition);

  Sample sample(std::size_t count, util::Rng& rng);

  /// Updates priorities from the absolute TD errors of a learned batch.
  void update_priorities(const std::vector<std::size_t>& indices,
                         const std::vector<float>& td_errors);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  const Replayed& operator[](std::size_t i) const { return data_[i]; }
  float current_beta() const noexcept;

 private:
  Config config_;
  SumTree tree_;
  std::vector<Replayed> data_;
  std::size_t next_ = 0;
  std::size_t size_ = 0;
  float max_priority_ = 1.0f;
  std::size_t sample_calls_ = 0;
};

}  // namespace rlattack::rl
