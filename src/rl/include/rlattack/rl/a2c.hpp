// Advantage actor-critic (Mnih et al. 2016), synchronous single-worker
// variant (the paper trains with RLlib's A2C). The actor and critic share
// one trunk whose final layer emits [action logits..., state value]; updates
// happen every `rollout_len` steps from n-step bootstrapped returns.
#pragma once

#include "rlattack/nn/optimizer.hpp"
#include "rlattack/rl/agent.hpp"
#include "rlattack/rl/networks.hpp"

namespace rlattack::rl {

class A2cAgent final : public Agent {
 public:
  struct Config {
    std::size_t hidden = 64;
    std::size_t rollout_len = 32;
    float gamma = 0.99f;
    float lr = 7e-4f;
    float value_coef = 0.5f;
    float entropy_coef = 0.01f;
    float grad_clip = 1.0f;
    /// Standardise advantages within each rollout (zero mean, unit std).
    /// Helps when reward scales vary wildly within an episode, but hurts
    /// near-constant-reward tasks (CartPole): with every step worth +1,
    /// standardisation manufactures negative advantages for half the
    /// rollout. Off by default; exposed for experimentation.
    bool normalize_advantages = false;
  };

  A2cAgent(ObsSpec obs, std::size_t actions, Config config,
           std::uint64_t seed);

  std::size_t act(const nn::Tensor& observation, bool explore) override;
  std::vector<std::size_t> act_batch(const nn::Tensor& observations,
                                     bool explore) override;
  void begin_episode() override;
  void learn(const nn::Tensor& observation, std::size_t action, double reward,
             const nn::Tensor& next_observation, bool done) override;
  std::string algorithm() const override { return "a2c"; }
  nn::Layer& network() override { return *net_; }
  std::size_t action_count() const override { return actions_; }
  AgentPtr clone() override;

  std::size_t update_count() const noexcept { return updates_; }

 private:
  void update(const nn::Tensor& bootstrap_observation, bool terminal);

  ObsSpec obs_;
  std::size_t actions_;
  Config config_;
  std::uint64_t seed_;  ///< construction seed, reused to rebuild clones
  util::Rng rng_;
  nn::LayerPtr net_;  // outputs [B, actions + 1]
  std::unique_ptr<nn::Adam> optimizer_;

  struct Pending {
    nn::Tensor observation;
    std::size_t action;
    float reward;
  };
  std::vector<Pending> rollout_;
  nn::Tensor obs_scratch_;  ///< [1, S...] batch-of-one row, reused by act()
  std::size_t updates_ = 0;
};

/// Canonical A2C configuration.
AgentPtr make_a2c_agent(const ObsSpec& obs, std::size_t actions,
                        std::uint64_t seed);

}  // namespace rlattack::rl
