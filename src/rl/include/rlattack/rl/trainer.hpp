// Training and evaluation loops shared by all agents, plus episode
// collection for the seq2seq observation phase (Algorithm 1 lines 1-11).
#pragma once

#include "rlattack/env/environment.hpp"
#include "rlattack/rl/agent.hpp"

namespace rlattack::rl {

struct TrainConfig {
  std::size_t episodes = 300;
  /// Stop early once the rolling-average reward over `window` episodes
  /// reaches `target_reward` (0 disables early stop).
  double target_reward = 0.0;
  std::size_t window = 20;
  bool verbose = false;
};

struct TrainResult {
  std::vector<double> episode_rewards;
  double final_average = 0.0;  ///< rolling average at stop time
  bool reached_target = false;
};

/// Trains `agent` on `environment` (exploration on) for up to
/// `config.episodes` episodes.
TrainResult train_agent(Agent& agent, env::Environment& environment,
                        const TrainConfig& config);

/// Runs `episodes` greedy (evaluation-mode) episodes; returns per-episode
/// total rewards. Reseeds the environment from `seed` + episode index so
/// runs are reproducible and episodes are distinct.
std::vector<double> evaluate_agent(Agent& agent, env::Environment& environment,
                                   std::size_t episodes, std::uint64_t seed);

/// As evaluate_agent, fanning the independent seeded episodes across
/// `workers` agent/environment clone pairs on the global thread pool.
/// Episode i keeps its serial seed (`seed + i`) and rewards are indexed by
/// episode number, so the result is bit-identical to evaluate_agent at any
/// worker count. `workers` <= 1 runs the serial loop on the originals.
std::vector<double> evaluate_agent_parallel(Agent& agent,
                                            env::Environment& environment,
                                            std::size_t episodes,
                                            std::uint64_t seed,
                                            std::size_t workers);

/// Collects `episodes` greedy episode traces (observation/action/reward per
/// step) from a trained agent — the attacker's passive observation phase.
/// Observations recorded are the *raw environment* observations fed to the
/// agent (post frame-stacking), exactly what a passive observer sees.
std::vector<env::Episode> collect_episodes(Agent& agent,
                                           env::Environment& environment,
                                           std::size_t episodes,
                                           std::uint64_t seed);

/// As collect_episodes, parallelised like evaluate_agent_parallel: traces
/// land at their episode index, so the returned vector is bit-identical to
/// the serial collection at any worker count.
std::vector<env::Episode> collect_episodes_parallel(
    Agent& agent, env::Environment& environment, std::size_t episodes,
    std::uint64_t seed, std::size_t workers);

}  // namespace rlattack::rl
