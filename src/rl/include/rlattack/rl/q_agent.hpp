// Value-based agents. One configurable implementation covers both of the
// paper's value-based victims:
//   - DQN (Mnih et al. 2013): plain Q-network, epsilon-greedy, uniform
//     replay, hard target sync, 1-step TD.
//   - Rainbow (Hessel et al. 2018): double Q-learning, dueling head,
//     prioritized replay, n-step returns and NoisyNet exploration, stacked
//     on the DQN chassis exactly as the paper describes ("built on top of
//     the DQN framework and combined it with a range of possible
//     extensions").
// The distributional (C51) component is omitted; DESIGN.md records this
// substitution — the attack treats every victim as a black box, so what
// matters is three behaviourally distinct training algorithms.
#pragma once

#include <deque>
#include <optional>

#include "rlattack/nn/optimizer.hpp"
#include "rlattack/rl/agent.hpp"
#include "rlattack/rl/networks.hpp"
#include "rlattack/rl/replay.hpp"

namespace rlattack::rl {

class QAgent final : public Agent {
 public:
  struct Config {
    std::size_t hidden = 64;
    std::size_t replay_capacity = 20000;
    std::size_t batch_size = 32;
    std::size_t warmup_steps = 500;
    std::size_t train_interval = 2;
    std::size_t target_sync_interval = 500;
    float gamma = 0.99f;
    float lr = 1e-3f;
    float grad_clip = 10.0f;
    // Epsilon-greedy schedule. Noisy agents explore via parameter noise,
    // but near-zero observations (CartPole resets) make the noise argmax
    // nearly deterministic, so they keep a small *decaying-to-zero* epsilon
    // floor (`noisy_eps_start` -> 0 over the same horizon) — a documented
    // deviation from pure Rainbow that restores early exploration.
    float eps_start = 1.0f;
    float eps_end = 0.05f;
    std::size_t eps_decay_steps = 8000;
    float noisy_eps_start = 0.3f;
    /// Initial NoisyNet sigma scale (sigma0 / sqrt(fan_in)).
    float noisy_sigma0 = 1.0f;
    // Rainbow extensions.
    bool use_double = false;
    bool use_dueling = false;
    bool use_noisy = false;
    bool use_per = false;
    std::size_t n_step = 1;
    // C51 distributional value head (Bellemare et al. 2017): the network
    // emits `atoms` logits per action over a fixed support
    // [v_min, v_max]; TD updates project the Bellman-shifted distribution
    // back onto the support. Mutually exclusive with use_dueling /
    // use_noisy in this implementation (the plain trunk carries the
    // distributional head).
    bool use_distributional = false;
    std::size_t atoms = 21;
    float v_min = -5.0f;
    float v_max = 105.0f;
  };

  QAgent(ObsSpec obs, std::size_t actions, Config config, std::uint64_t seed);

  std::size_t act(const nn::Tensor& observation, bool explore) override;
  std::vector<std::size_t> act_batch(const nn::Tensor& observations,
                                     bool explore) override;
  void begin_episode() override;
  void learn(const nn::Tensor& observation, std::size_t action, double reward,
             const nn::Tensor& next_observation, bool done) override;
  std::string algorithm() const override {
    return config_.use_double ? "rainbow" : "dqn";
  }
  nn::Layer& network() override { return *online_; }
  std::size_t action_count() const override { return actions_; }
  AgentPtr clone() override;
  void reset_from(const Agent& src) override;

  /// Current exploration epsilon (for diagnostics/tests).
  float epsilon() const noexcept;
  std::size_t learn_steps() const noexcept { return updates_; }

 private:
  void train_step();
  void train_step_distributional();
  /// Expected Q values [B, A] from distributional logits [B, A * atoms].
  nn::Tensor expected_q(const nn::Tensor& dist_logits) const;
  /// Emits the front of the n-step queue into replay, aggregating rewards.
  void flush_nstep(bool episode_end);
  void push_to_replay(Replayed r);
  std::size_t sample_count() const;

  ObsSpec obs_;
  std::size_t actions_;
  Config config_;
  std::uint64_t seed_;  ///< construction seed, reused to rebuild clones
  util::Rng rng_;

  nn::LayerPtr online_;
  nn::LayerPtr target_;
  std::unique_ptr<nn::Adam> optimizer_;

  std::optional<ReplayBuffer> uniform_replay_;
  std::optional<PrioritizedReplayBuffer> per_replay_;

  struct Pending {
    nn::Tensor observation;
    std::size_t action;
    float reward;
  };
  std::deque<Pending> nstep_queue_;
  nn::Tensor nstep_bootstrap_;  ///< latest s_{t+1}; bootstrap state on flush
  nn::Tensor obs_scratch_;      ///< [1, S...] batch-of-one row, reused by act()

  std::size_t env_steps_ = 0;
  std::size_t updates_ = 0;
};

/// Canonical DQN configuration.
AgentPtr make_dqn_agent(const ObsSpec& obs, std::size_t actions,
                        std::uint64_t seed);

/// Canonical Rainbow configuration (double + dueling + PER + n-step=3 +
/// noisy).
AgentPtr make_rainbow_agent(const ObsSpec& obs, std::size_t actions,
                            std::uint64_t seed);

/// Distributional (C51) variant: double + PER + n-step=3 + categorical
/// value head (dueling/noisy off; see Config::use_distributional docs).
AgentPtr make_c51_agent(const ObsSpec& obs, std::size_t actions,
                        std::uint64_t seed);

}  // namespace rlattack::rl
