// Batch assembly: stacks per-step observation tensors (shape S) into a
// [B, S...] minibatch tensor for network forward passes.
#pragma once

#include <span>

#include "rlattack/nn/tensor.hpp"

namespace rlattack::rl {

/// Stacks observations into a batch. All tensors must share a shape.
nn::Tensor batch_observations(std::span<const nn::Tensor* const> observations);

/// Wraps a single observation as a batch of one: {S...} -> [1, S...].
nn::Tensor as_batch_of_one(const nn::Tensor& observation);

/// Alloc-free variant for per-step hot paths: copies `observation` into
/// `scratch` shaped [1, S...] and returns `scratch`. The scratch tensor's
/// storage is grow-only across calls, so a per-agent scratch member makes
/// the serial `act()` path allocation-free after the first step.
const nn::Tensor& as_batch_of_one_into(const nn::Tensor& observation,
                                       nn::Tensor& scratch);

}  // namespace rlattack::rl
