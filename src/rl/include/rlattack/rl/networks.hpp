// Network builders for the RL agents, plus the dueling head used by
// Rainbow. Architectures are deliberately small: observations in this
// reproduction are 16x16 rasters or 4-float states (see DESIGN.md
// substitutions), so compact networks train in CPU-scale budgets while
// exercising the same conv/dense/backprop code paths as the paper's
// 84x84 setups.
#pragma once

#include <vector>

#include "rlattack/nn/sequential.hpp"

namespace rlattack::rl {

/// Shape of agent-side observations: either a flat vector (CartPole) or a
/// stacked image [C, H, W].
struct ObsSpec {
  std::vector<std::size_t> shape;
  bool is_image() const noexcept { return shape.size() == 3; }
  std::size_t flat_size() const noexcept {
    std::size_t n = 1;
    for (std::size_t d : shape) n *= d;
    return n;
  }
};

/// MLP value/policy trunk for vector observations:
/// Dense(h) ReLU Dense(h) ReLU Dense(out).
nn::LayerPtr make_mlp_net(std::size_t in, std::size_t out, std::size_t hidden,
                          util::Rng& rng);

/// Conv trunk for [C, H, W] observations:
/// Conv(8, k3, s2, p1) ReLU Conv(16, k3, s2, p1) ReLU Flatten
/// Dense(hidden) ReLU Dense(out).
nn::LayerPtr make_conv_net(const std::vector<std::size_t>& chw,
                           std::size_t out, std::size_t hidden,
                           util::Rng& rng);

/// Builds the standard Q/policy network for an observation spec: MLP for
/// vectors, conv net for images. `out` is the number of outputs (actions,
/// or actions + 1 for A2C's fused policy/value head).
nn::LayerPtr make_net(const ObsSpec& obs, std::size_t out, std::size_t hidden,
                      util::Rng& rng);

/// Dueling architecture head (Wang et al. 2016), a Rainbow component:
/// splits a feature vector into value and advantage streams and recombines
/// Q(s, a) = V(s) + A(s, a) - mean_a A(s, a).
/// When `noisy` is true the streams use NoisyDense layers (NoisyNet
/// exploration), otherwise plain Dense.
class DuelingHead final : public nn::Layer {
 public:
  DuelingHead(std::size_t in_features, std::size_t actions,
              std::size_t hidden, bool noisy, util::Rng& rng,
              float noisy_sigma0 = 0.5f);

  nn::Tensor forward(const nn::Tensor& input) override;
  nn::Tensor backward(const nn::Tensor& grad_output) override;
  std::vector<nn::Param> params() override;
  std::string name() const override { return "DuelingHead"; }
  void set_training(bool training) override;
  void resample_noise(util::Rng& rng) override;

 private:
  std::size_t actions_;
  nn::Sequential value_stream_;      // in -> hidden -> 1
  nn::Sequential advantage_stream_;  // in -> hidden -> actions
};

/// Rainbow network: shared trunk (conv or MLP feature extractor) followed by
/// a dueling, optionally noisy, head.
nn::LayerPtr make_rainbow_net(const ObsSpec& obs, std::size_t actions,
                              std::size_t hidden, bool noisy, util::Rng& rng,
                              float noisy_sigma0 = 0.5f);

}  // namespace rlattack::rl
