// Algorithm-keyed agent construction.
#pragma once

#include "rlattack/env/environment.hpp"
#include "rlattack/rl/agent.hpp"
#include "rlattack/rl/networks.hpp"

namespace rlattack::rl {

/// Builds an agent of the given algorithm for an observation spec.
AgentPtr make_agent(Algorithm algorithm, const ObsSpec& obs,
                    std::size_t actions, std::uint64_t seed);

/// Derives the ObsSpec from an environment's observation shape.
ObsSpec obs_spec_of(const env::Environment& environment);

}  // namespace rlattack::rl
