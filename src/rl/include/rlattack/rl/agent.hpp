// Agent abstraction shared by DQN, A2C and Rainbow.
//
// The attack pipeline only ever uses `act` in evaluation mode — the paper's
// explicit assumption is that the victim runs with exploration turned off
// and no further training (Section 4.2). Training-time hooks live here too
// so one trainer loop drives all three algorithms.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rlattack/nn/layer.hpp"
#include "rlattack/nn/tensor.hpp"

namespace rlattack::rl {

class Agent {
 public:
  virtual ~Agent() = default;
  Agent();
  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  /// Picks an action for `observation`. With `explore` true the agent uses
  /// its training-time behaviour policy (epsilon-greedy, sampling, noisy
  /// nets); with false it acts greedily/deterministically.
  virtual std::size_t act(const nn::Tensor& observation, bool explore) = 0;

  /// Batched variant of `act`: `observations` is a [B, S...] stack and the
  /// result holds one action per row. Contract (the episode-batched
  /// evaluation substrate depends on it): for any stack of observations
  /// o_1..o_B, `act_batch(stack(o_1..o_B), explore)` returns exactly
  /// `{act(o_1, explore), ..., act(o_B, explore)}` — bit-identical actions
  /// AND an identical RNG stream afterwards, so batching is invisible to
  /// callers regardless of how rows are grouped across flushes. The base
  /// implementation is the defining per-row loop; subclasses override it
  /// with one [B, ...] forward where they can keep the contract.
  virtual std::vector<std::size_t> act_batch(const nn::Tensor& observations,
                                             bool explore);

  /// Called at the start of each training episode.
  virtual void begin_episode() {}

  /// Feeds one environment transition back for learning. `observation` is
  /// s_t as seen by the agent (post frame-stacking), `next_observation` is
  /// s_{t+1}.
  virtual void learn(const nn::Tensor& observation, std::size_t action,
                     double reward, const nn::Tensor& next_observation,
                     bool done) = 0;

  /// Algorithm identifier: "dqn", "a2c" or "rainbow".
  virtual std::string algorithm() const = 0;

  /// The underlying network holding all learnable parameters, for
  /// checkpoint save/load.
  virtual nn::Layer& network() = 0;

  /// Number of discrete actions this agent selects among.
  virtual std::size_t action_count() const = 0;

  /// Deep copy for parallel evaluation: a fresh agent with identical
  /// architecture and network parameters whose greedy policy
  /// (`act(obs, false)`) is bit-identical to this agent's. Transient
  /// training state (replay buffers, optimizer moments, pending rollouts)
  /// is NOT carried over — clones are for evaluation-side fan-out, one per
  /// episode worker, not for resuming training.
  virtual std::unique_ptr<Agent> clone() = 0;

  /// In-place re-synchronisation of an existing evaluation clone with
  /// `src`: copies the live network parameters (and whatever extra state
  /// `clone()` would carry, e.g. the Q target network) without allocating a
  /// new agent. Persistent worker pools use this to reuse one clone per
  /// worker across experiment invocations instead of reconstructing
  /// networks per episode batch. Throws std::logic_error if `src` has a
  /// different algorithm or action count. The base implementation copies
  /// `network()` parameters only; subclasses override to carry their extra
  /// clone()-visible state.
  virtual void reset_from(const Agent& src);
};

using AgentPtr = std::unique_ptr<Agent>;

/// Total Agent constructions since process start (any subclass). Pinning
/// tests use deltas of this to assert pooled evaluation paths stop cloning
/// once warm.
std::uint64_t agent_constructions() noexcept;

/// Algorithm identifiers matching the paper's three victim trainers.
enum class Algorithm { kDqn, kA2c, kRainbow };

/// Parses "dqn" / "a2c" / "rainbow"; throws std::invalid_argument otherwise.
Algorithm parse_algorithm(const std::string& name);
std::string algorithm_name(Algorithm a);

}  // namespace rlattack::rl
