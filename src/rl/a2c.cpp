#include "rlattack/rl/a2c.hpp"
#include <algorithm>

#include <cmath>
#include <stdexcept>

#include "rlattack/nn/ops.hpp"
#include "rlattack/rl/batch.hpp"

namespace rlattack::rl {

A2cAgent::A2cAgent(ObsSpec obs, std::size_t actions, Config config,
                   std::uint64_t seed)
    : obs_(std::move(obs)),
      actions_(actions),
      config_(config),
      seed_(seed),
      rng_(seed) {
  if (actions_ == 0) throw std::logic_error("A2cAgent: zero actions");
  util::Rng init_rng = rng_.split();
  net_ = make_net(obs_, actions_ + 1, config_.hidden, init_rng);
  optimizer_ = std::make_unique<nn::Adam>(*net_, config_.lr);
  rollout_.reserve(config_.rollout_len);
}

AgentPtr A2cAgent::clone() {
  // Identical architecture from the original construction inputs, live
  // weights copied over; the pending rollout stays with the original.
  auto copy = std::make_unique<A2cAgent>(obs_, actions_, config_, seed_);
  nn::copy_parameters(*copy->net_, *net_);
  return copy;
}

std::size_t A2cAgent::act(const nn::Tensor& observation, bool explore) {
  nn::Tensor out =
      net_->forward(as_batch_of_one_into(observation, obs_scratch_));
  std::vector<float> logits(actions_);
  for (std::size_t a = 0; a < actions_; ++a) logits[a] = out.at2(0, a);
  if (!explore) return nn::argmax(logits);
  // Sample from the softmax policy.
  const float mx = *std::max_element(logits.begin(), logits.end());
  std::vector<float> probs(actions_);
  for (std::size_t a = 0; a < actions_; ++a)
    probs[a] = std::exp(logits[a] - mx);
  return rng_.categorical(probs);
}

std::vector<std::size_t> A2cAgent::act_batch(const nn::Tensor& observations,
                                             bool explore) {
  const std::size_t batch = observations.dim(0);
  nn::Tensor out = net_->forward(observations);  // [B, A+1]
  std::vector<std::size_t> actions(batch);
  std::vector<float> logits(actions_);
  std::vector<float> probs(actions_);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t a = 0; a < actions_; ++a) logits[a] = out.at2(b, a);
    if (!explore) {
      actions[b] = nn::argmax(logits);
      continue;
    }
    // Per-row sampling in row order, matching B serial act() calls' draws.
    const float mx = *std::max_element(logits.begin(), logits.end());
    for (std::size_t a = 0; a < actions_; ++a)
      probs[a] = std::exp(logits[a] - mx);
    actions[b] = rng_.categorical(probs);
  }
  return actions;
}

void A2cAgent::begin_episode() {}

void A2cAgent::learn(const nn::Tensor& observation, std::size_t action,
                     double reward, const nn::Tensor& next_observation,
                     bool done) {
  rollout_.push_back({observation, action, static_cast<float>(reward)});
  if (done || rollout_.size() >= config_.rollout_len) {
    update(next_observation, done);
    rollout_.clear();
  }
}

void A2cAgent::update(const nn::Tensor& bootstrap_observation, bool terminal) {
  const std::size_t n = rollout_.size();
  if (n == 0) return;

  // Bootstrap value of the state following the rollout.
  float bootstrap = 0.0f;
  if (!terminal) {
    nn::Tensor v = net_->forward(as_batch_of_one(bootstrap_observation));
    bootstrap = v.at2(0, actions_);
  }
  // Discounted returns, backwards.
  std::vector<float> returns(n);
  float running = bootstrap;
  for (std::size_t i = n; i-- > 0;) {
    running = rollout_[i].reward + config_.gamma * running;
    returns[i] = running;
  }

  std::vector<const nn::Tensor*> obs_ptrs(n);
  for (std::size_t i = 0; i < n; ++i) obs_ptrs[i] = &rollout_[i].observation;
  nn::Tensor out = net_->forward(batch_observations(obs_ptrs));  // [B, A+1]

  // Raw advantages (returns - V) for the policy term; optionally
  // standardised across the rollout. The critic regresses on the raw
  // returns either way.
  std::vector<float> advantages(n);
  for (std::size_t i = 0; i < n; ++i)
    advantages[i] = returns[i] - out.at2(i, actions_);
  if (config_.normalize_advantages && n > 1) {
    double mean = 0.0;
    for (float a : advantages) mean += a;
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (float a : advantages) var += (a - mean) * (a - mean);
    const double stddev = std::sqrt(var / static_cast<double>(n));
    if (stddev > 1e-6) {
      for (float& a : advantages)
        a = static_cast<float>((a - mean) / stddev);
    }
  }

  // Manual gradient of the A2C objective:
  //   L = mean_b [ -log pi(a_b | s_b) * adv_b
  //                + value_coef * (V_b - R_b)^2
  //                - entropy_coef * H(pi(. | s_b)) ]
  // with adv_b treated as a constant (no gradient through the critic term
  // of the advantage).
  nn::Tensor grad(out.shape());
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t b = 0; b < n; ++b) {
    // Softmax over the logit slice.
    std::vector<float> p(actions_);
    float mx = out.at2(b, 0);
    for (std::size_t a = 1; a < actions_; ++a)
      mx = std::max(mx, out.at2(b, a));
    float sum = 0.0f;
    for (std::size_t a = 0; a < actions_; ++a) {
      p[a] = std::exp(out.at2(b, a) - mx);
      sum += p[a];
    }
    for (float& x : p) x /= sum;

    const float value = out.at2(b, actions_);
    const float advantage = advantages[b];

    float entropy = 0.0f;
    for (std::size_t a = 0; a < actions_; ++a)
      if (p[a] > 0.0f) entropy -= p[a] * std::log(p[a]);

    const std::size_t taken = rollout_[b].action;
    for (std::size_t a = 0; a < actions_; ++a) {
      const float policy_grad =
          (p[a] - (a == taken ? 1.0f : 0.0f)) * advantage;
      const float entropy_grad =
          p[a] * ((p[a] > 0.0f ? std::log(p[a]) : 0.0f) + entropy);
      grad.at2(b, a) =
          inv_n * (policy_grad + config_.entropy_coef * entropy_grad);
    }
    grad.at2(b, actions_) =
        inv_n * config_.value_coef * 2.0f * (value - returns[b]);
  }

  net_->backward(grad);
  optimizer_->clip_grad_norm(config_.grad_clip);
  optimizer_->step();
  ++updates_;
}

AgentPtr make_a2c_agent(const ObsSpec& obs, std::size_t actions,
                        std::uint64_t seed) {
  return std::make_unique<A2cAgent>(obs, actions, A2cAgent::Config{}, seed);
}

}  // namespace rlattack::rl
