#include "rlattack/rl/replay.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rlattack::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) throw std::logic_error("ReplayBuffer: zero capacity");
  data_.reserve(capacity_);
}

void ReplayBuffer::push(Replayed transition) {
  if (data_.size() < capacity_) {
    data_.push_back(std::move(transition));
  } else {
    data_[next_] = std::move(transition);
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<std::size_t> ReplayBuffer::sample_indices(std::size_t count,
                                                      util::Rng& rng) const {
  if (data_.empty())
    throw std::logic_error("ReplayBuffer::sample_indices: empty buffer");
  std::vector<std::size_t> out(count);
  for (std::size_t i = 0; i < count; ++i)
    out[i] = rng.uniform_int(data_.size());
  return out;
}

SumTree::SumTree(std::size_t capacity)
    : capacity_(capacity), nodes_(2 * capacity - 1, 0.0f) {
  if (capacity_ == 0) throw std::logic_error("SumTree: zero capacity");
}

void SumTree::set(std::size_t leaf, float priority) {
  if (leaf >= capacity_) throw std::logic_error("SumTree::set: out of range");
  if (priority < 0.0f || !std::isfinite(priority))
    throw std::logic_error("SumTree::set: invalid priority");
  std::size_t node = leaf + capacity_ - 1;
  const float delta = priority - nodes_[node];
  nodes_[node] = priority;
  while (node > 0) {
    node = (node - 1) / 2;
    nodes_[node] += delta;
  }
}

float SumTree::get(std::size_t leaf) const {
  if (leaf >= capacity_) throw std::logic_error("SumTree::get: out of range");
  return nodes_[leaf + capacity_ - 1];
}

std::size_t SumTree::find(float mass) const {
  std::size_t node = 0;
  while (node < capacity_ - 1) {  // while internal
    const std::size_t left = 2 * node + 1;
    if (mass < nodes_[left] || nodes_[2 * node + 2] <= 0.0f) {
      node = left;
    } else {
      mass -= nodes_[left];
      node = 2 * node + 2;
    }
  }
  return node - (capacity_ - 1);
}

PrioritizedReplayBuffer::PrioritizedReplayBuffer(Config config)
    : config_(config), tree_(config.capacity) {
  if (config_.alpha < 0.0f)
    throw std::logic_error("PrioritizedReplayBuffer: negative alpha");
  data_.resize(config_.capacity);
}

void PrioritizedReplayBuffer::push(Replayed transition) {
  data_[next_] = std::move(transition);
  tree_.set(next_, std::pow(max_priority_, config_.alpha));
  next_ = (next_ + 1) % config_.capacity;
  size_ = std::min(size_ + 1, config_.capacity);
}

float PrioritizedReplayBuffer::current_beta() const noexcept {
  const float frac = std::min(
      1.0f, static_cast<float>(sample_calls_) /
                static_cast<float>(std::max<std::size_t>(
                    1, config_.beta_anneal_steps)));
  return config_.beta_start + frac * (config_.beta_end - config_.beta_start);
}

PrioritizedReplayBuffer::Sample PrioritizedReplayBuffer::sample(
    std::size_t count, util::Rng& rng) {
  if (size_ == 0)
    throw std::logic_error("PrioritizedReplayBuffer::sample: empty buffer");
  const float beta = current_beta();
  ++sample_calls_;

  Sample out;
  out.indices.resize(count);
  out.weights.resize(count);
  const float total = tree_.total();
  // Stratified sampling across the cumulative mass.
  for (std::size_t i = 0; i < count; ++i) {
    const float segment = total / static_cast<float>(count);
    const float mass =
        segment * (static_cast<float>(i) + rng.uniform_f(0.0f, 1.0f));
    std::size_t leaf = tree_.find(std::min(mass, total * 0.999999f));
    if (leaf >= size_) leaf = size_ - 1;  // unfilled leaves have 0 priority
    out.indices[i] = leaf;
  }
  // IS weight w_i = (N * P(i))^-beta, normalised by the max weight.
  float max_w = 0.0f;
  for (std::size_t i = 0; i < count; ++i) {
    const float p = tree_.get(out.indices[i]) / total;
    const float w = std::pow(static_cast<float>(size_) * std::max(p, 1e-12f),
                             -beta);
    out.weights[i] = w;
    max_w = std::max(max_w, w);
  }
  if (max_w > 0.0f)
    for (float& w : out.weights) w /= max_w;
  return out;
}

void PrioritizedReplayBuffer::update_priorities(
    const std::vector<std::size_t>& indices,
    const std::vector<float>& td_errors) {
  if (indices.size() != td_errors.size())
    throw std::logic_error(
        "PrioritizedReplayBuffer::update_priorities: size mismatch");
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const float priority = std::abs(td_errors[i]) + config_.epsilon;
    max_priority_ = std::max(max_priority_, priority);
    tree_.set(indices[i], std::pow(priority, config_.alpha));
  }
}

}  // namespace rlattack::rl
