#include "rlattack/rl/factory.hpp"

#include <stdexcept>

#include "rlattack/rl/a2c.hpp"
#include "rlattack/rl/q_agent.hpp"

namespace rlattack::rl {

AgentPtr make_agent(Algorithm algorithm, const ObsSpec& obs,
                    std::size_t actions, std::uint64_t seed) {
  switch (algorithm) {
    case Algorithm::kDqn: return make_dqn_agent(obs, actions, seed);
    case Algorithm::kA2c: return make_a2c_agent(obs, actions, seed);
    case Algorithm::kRainbow: return make_rainbow_agent(obs, actions, seed);
  }
  throw std::logic_error("make_agent: invalid enum");
}

ObsSpec obs_spec_of(const env::Environment& environment) {
  return ObsSpec{environment.observation_shape()};
}

}  // namespace rlattack::rl
