#include "rlattack/rl/agent.hpp"

#include <stdexcept>

namespace rlattack::rl {

Algorithm parse_algorithm(const std::string& name) {
  if (name == "dqn") return Algorithm::kDqn;
  if (name == "a2c") return Algorithm::kA2c;
  if (name == "rainbow") return Algorithm::kRainbow;
  throw std::invalid_argument("unknown algorithm: " + name);
}

std::string algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kDqn: return "dqn";
    case Algorithm::kA2c: return "a2c";
    case Algorithm::kRainbow: return "rainbow";
  }
  throw std::logic_error("algorithm_name: invalid enum");
}

}  // namespace rlattack::rl
