#include "rlattack/rl/agent.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace rlattack::rl {

namespace {
std::atomic<std::uint64_t> g_agent_constructions{0};
}  // namespace

Agent::Agent() {
  g_agent_constructions.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t agent_constructions() noexcept {
  return g_agent_constructions.load(std::memory_order_relaxed);
}

std::vector<std::size_t> Agent::act_batch(const nn::Tensor& observations,
                                          bool explore) {
  // Defining per-row loop: slices each row back out and defers to act().
  // Subclasses override with a single [B, ...] forward; this fallback keeps
  // any override trivially comparable against the contract.
  if (observations.rank() < 2)
    throw std::logic_error("Agent::act_batch: expected a [B, S...] stack, got " +
                           observations.shape_string());
  const std::size_t batch = observations.dim(0);
  const auto& shape = observations.shape();
  std::vector<std::size_t> item_shape(shape.begin() + 1, shape.end());
  const std::size_t stride = nn::shape_numel(item_shape);
  nn::Tensor row(item_shape);
  std::vector<std::size_t> actions(batch);
  const float* src = observations.raw();
  for (std::size_t b = 0; b < batch; ++b) {
    std::copy(src + b * stride, src + (b + 1) * stride, row.raw());
    actions[b] = act(row, explore);
  }
  return actions;
}

void Agent::reset_from(const Agent& src) {
  if (algorithm() != src.algorithm() || action_count() != src.action_count())
    throw std::logic_error("Agent::reset_from: incompatible source agent (" +
                           src.algorithm() + " vs " + algorithm() + ")");
  // network() is non-const only because Layer parameter access is; the
  // source is not mutated.
  auto& mutable_src = const_cast<Agent&>(src);  // NOLINT
  nn::copy_parameters(network(), mutable_src.network());
}

Algorithm parse_algorithm(const std::string& name) {
  if (name == "dqn") return Algorithm::kDqn;
  if (name == "a2c") return Algorithm::kA2c;
  if (name == "rainbow") return Algorithm::kRainbow;
  throw std::invalid_argument("unknown algorithm: " + name);
}

std::string algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kDqn: return "dqn";
    case Algorithm::kA2c: return "a2c";
    case Algorithm::kRainbow: return "rainbow";
  }
  throw std::logic_error("algorithm_name: invalid enum");
}

}  // namespace rlattack::rl
