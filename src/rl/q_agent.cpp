#include "rlattack/rl/q_agent.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rlattack/nn/loss.hpp"
#include "rlattack/nn/ops.hpp"
#include "rlattack/rl/batch.hpp"

namespace rlattack::rl {

QAgent::QAgent(ObsSpec obs, std::size_t actions, Config config,
               std::uint64_t seed)
    : obs_(std::move(obs)),
      actions_(actions),
      config_(config),
      seed_(seed),
      rng_(seed) {
  if (actions_ == 0) throw std::logic_error("QAgent: zero actions");
  if (config_.n_step == 0) throw std::logic_error("QAgent: n_step must be >= 1");
  if (config_.use_distributional) {
    if (config_.use_dueling || config_.use_noisy)
      throw std::logic_error(
          "QAgent: use_distributional excludes dueling/noisy (see Config)");
    if (config_.atoms < 2)
      throw std::logic_error("QAgent: need at least 2 atoms");
    if (config_.v_max <= config_.v_min)
      throw std::logic_error("QAgent: v_max must exceed v_min");
  }
  util::Rng init_rng = rng_.split();
  auto build = [&]() -> nn::LayerPtr {
    if (config_.use_dueling)
      return make_rainbow_net(obs_, actions_, config_.hidden,
                              config_.use_noisy, init_rng,
                              config_.noisy_sigma0);
    const std::size_t outputs = config_.use_distributional
                                    ? actions_ * config_.atoms
                                    : actions_;
    return make_net(obs_, outputs, config_.hidden, init_rng);
  };
  online_ = build();
  target_ = build();
  nn::copy_parameters(*target_, *online_);
  target_->set_training(false);
  optimizer_ = std::make_unique<nn::Adam>(*online_, config_.lr);
  if (config_.use_per) {
    PrioritizedReplayBuffer::Config prc;
    prc.capacity = config_.replay_capacity;
    per_replay_.emplace(prc);
  } else {
    uniform_replay_.emplace(config_.replay_capacity);
  }
}

float QAgent::epsilon() const noexcept {
  const float frac = std::min(
      1.0f, static_cast<float>(env_steps_) /
                static_cast<float>(std::max<std::size_t>(
                    1, config_.eps_decay_steps)));
  if (config_.use_noisy)  // decaying floor; parameter noise takes over
    return config_.noisy_eps_start * (1.0f - frac);
  return config_.eps_start + frac * (config_.eps_end - config_.eps_start);
}

AgentPtr QAgent::clone() {
  // Rebuild from the original construction inputs (identical architecture),
  // then overwrite the freshly initialised weights with the live ones.
  // Replay/optimizer state is deliberately left fresh (see Agent::clone).
  auto copy = std::make_unique<QAgent>(obs_, actions_, config_, seed_);
  nn::copy_parameters(*copy->online_, *online_);
  nn::copy_parameters(*copy->target_, *target_);
  copy->env_steps_ = env_steps_;  // keeps the epsilon schedule aligned
  return copy;
}

void QAgent::reset_from(const Agent& src) {
  Agent::reset_from(src);  // validates compatibility, copies online_
  const auto* q = dynamic_cast<const QAgent*>(&src);
  if (q == nullptr)
    throw std::logic_error("QAgent::reset_from: source is not a QAgent");
  auto& mutable_src = const_cast<QAgent&>(*q);  // NOLINT (see base)
  nn::copy_parameters(*target_, *mutable_src.target_);
  env_steps_ = q->env_steps_;  // keeps the epsilon schedule aligned
}

std::size_t QAgent::act(const nn::Tensor& observation, bool explore) {
  if (explore && rng_.bernoulli(epsilon()))
    return rng_.uniform_int(actions_);
  online_->set_training(explore && config_.use_noisy);
  if (explore && config_.use_noisy) online_->resample_noise(rng_);
  nn::Tensor out =
      online_->forward(as_batch_of_one_into(observation, obs_scratch_));
  online_->set_training(true);
  if (config_.use_distributional) out = expected_q(out);
  return nn::argmax(out.data());
}

std::vector<std::size_t> QAgent::act_batch(const nn::Tensor& observations,
                                           bool explore) {
  // NoisyNet exploration resamples parameter noise per act() call, which a
  // shared forward cannot reproduce — defer to the defining per-row loop.
  if (explore && config_.use_noisy) return Agent::act_batch(observations, explore);

  const std::size_t batch = observations.dim(0);
  std::vector<std::size_t> actions(batch);
  std::vector<unsigned char> is_random(batch, 0);
  if (explore) {
    // Epsilon draws happen in row order BEFORE the forward, exactly as B
    // serial act() calls would consume the stream (the forward itself draws
    // nothing). Random rows still ride the batched forward; their greedy
    // result is discarded.
    for (std::size_t b = 0; b < batch; ++b) {
      if (rng_.bernoulli(epsilon())) {
        is_random[b] = 1;
        actions[b] = rng_.uniform_int(actions_);
      }
    }
  }
  online_->set_training(false);  // == set_training(explore && use_noisy) here
  nn::Tensor out = online_->forward(observations);
  online_->set_training(true);
  if (config_.use_distributional) out = expected_q(out);
  const std::vector<std::size_t> greedy = nn::argmax_rows(out);
  for (std::size_t b = 0; b < batch; ++b)
    if (is_random[b] == 0) actions[b] = greedy[b];
  return actions;
}

nn::Tensor QAgent::expected_q(const nn::Tensor& dist_logits) const {
  const std::size_t batch = dist_logits.dim(0);
  const std::size_t atoms = config_.atoms;
  const float dz = (config_.v_max - config_.v_min) /
                   static_cast<float>(atoms - 1);
  nn::Tensor q({batch, actions_});
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t a = 0; a < actions_; ++a) {
      // Softmax over this action's atom block, then expectation over the
      // support.
      const float* block = dist_logits.raw() + (b * actions_ + a) * atoms;
      float mx = block[0];
      for (std::size_t j = 1; j < atoms; ++j) mx = std::max(mx, block[j]);
      float sum = 0.0f, expv = 0.0f;
      for (std::size_t j = 0; j < atoms; ++j) {
        const float p = std::exp(block[j] - mx);
        sum += p;
        expv += p * (config_.v_min + dz * static_cast<float>(j));
      }
      q.at2(b, a) = expv / sum;
    }
  }
  return q;
}

void QAgent::begin_episode() { nstep_queue_.clear(); }

std::size_t QAgent::sample_count() const {
  return config_.use_per ? per_replay_->size() : uniform_replay_->size();
}

void QAgent::push_to_replay(Replayed r) {
  if (config_.use_per)
    per_replay_->push(std::move(r));
  else
    uniform_replay_->push(std::move(r));
}

void QAgent::flush_nstep(bool episode_end) {
  // The queue front has accumulated rewards from its own step plus every
  // later queued step, discounted; `episode_end` flushes the whole queue.
  while (!nstep_queue_.empty()) {
    const bool full = nstep_queue_.size() == config_.n_step;
    if (!full && !episode_end) break;
    // Aggregate discounted reward over the queue.
    float ret = 0.0f;
    float discount = 1.0f;
    for (const Pending& p : nstep_queue_) {
      ret += discount * p.reward;
      discount *= config_.gamma;
    }
    Replayed r;
    r.observation = nstep_queue_.front().observation;
    r.action = nstep_queue_.front().action;
    r.reward = ret;
    r.next_observation = nstep_bootstrap_;
    r.done = episode_end && nstep_queue_.size() <= config_.n_step;
    // The bootstrap discount for s_{t+n} is gamma^k where k = queue length.
    push_to_replay(std::move(r));
    nstep_queue_.pop_front();
  }
}

void QAgent::learn(const nn::Tensor& observation, std::size_t action,
                   double reward, const nn::Tensor& next_observation,
                   bool done) {
  ++env_steps_;
  nstep_queue_.push_back(
      {observation, action, static_cast<float>(reward)});
  nstep_bootstrap_ = next_observation;
  flush_nstep(done);
  if (done) nstep_queue_.clear();

  if (sample_count() >= std::max<std::size_t>(config_.warmup_steps,
                                              config_.batch_size) &&
      env_steps_ % config_.train_interval == 0)
    train_step();
  if (env_steps_ % config_.target_sync_interval == 0)
    nn::copy_parameters(*target_, *online_);
}

void QAgent::train_step_distributional() {
  const std::size_t batch = config_.batch_size;
  const std::size_t atoms = config_.atoms;
  const float dz =
      (config_.v_max - config_.v_min) / static_cast<float>(atoms - 1);

  std::vector<std::size_t> indices;
  std::vector<float> weights;
  if (config_.use_per) {
    auto s = per_replay_->sample(batch, rng_);
    indices = std::move(s.indices);
    weights = std::move(s.weights);
  } else {
    indices = uniform_replay_->sample_indices(batch, rng_);
  }
  auto transition = [&](std::size_t i) -> const Replayed& {
    return config_.use_per ? (*per_replay_)[indices[i]]
                           : (*uniform_replay_)[indices[i]];
  };

  std::vector<const nn::Tensor*> obs_ptrs(batch), next_ptrs(batch);
  std::vector<std::size_t> actions(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    obs_ptrs[i] = &transition(i).observation;
    next_ptrs[i] = &transition(i).next_observation;
    actions[i] = transition(i).action;
  }
  nn::Tensor obs_batch = batch_observations(obs_ptrs);
  nn::Tensor next_batch = batch_observations(next_ptrs);

  // Next-state distribution from the target network; action selection by
  // the online network's expected Q when double-Q is on.
  nn::Tensor next_dist_logits = target_->forward(next_batch);
  std::vector<std::size_t> next_actions(batch);
  if (config_.use_double) {
    next_actions = nn::argmax_rows(expected_q(online_->forward(next_batch)));
  } else {
    next_actions = nn::argmax_rows(expected_q(next_dist_logits));
  }

  const float bootstrap_discount =
      std::pow(config_.gamma, static_cast<float>(config_.n_step));

  // Projected target distribution m for each sample (C51 projection).
  nn::Tensor projected({batch, atoms});
  std::vector<float> td_proxy(batch);  // KL-ish priority proxy
  for (std::size_t i = 0; i < batch; ++i) {
    const Replayed& t = transition(i);
    // Softmax of the chosen next action's atom block.
    std::vector<float> next_p(atoms, 0.0f);
    if (!t.done) {
      const float* block =
          next_dist_logits.raw() + (i * actions_ + next_actions[i]) * atoms;
      float mx = block[0];
      for (std::size_t j = 1; j < atoms; ++j) mx = std::max(mx, block[j]);
      float sum = 0.0f;
      for (std::size_t j = 0; j < atoms; ++j) {
        next_p[j] = std::exp(block[j] - mx);
        sum += next_p[j];
      }
      for (float& p : next_p) p /= sum;
    } else {
      next_p[0] = 1.0f;  // all mass shifts to the reward atom below
    }
    for (std::size_t j = 0; j < atoms; ++j) {
      if (next_p[j] == 0.0f) continue;
      const float z = config_.v_min + dz * static_cast<float>(j);
      const float tz = std::clamp(
          t.reward + (t.done ? 0.0f : bootstrap_discount * z),
          config_.v_min, config_.v_max);
      const float pos = (tz - config_.v_min) / dz;
      const auto lo = static_cast<std::size_t>(pos);
      const std::size_t hi = std::min(lo + 1, atoms - 1);
      const float frac = pos - static_cast<float>(lo);
      projected.at2(i, lo) += next_p[j] * (1.0f - frac);
      projected.at2(i, hi) += next_p[j] * frac;
    }
  }

  // Cross-entropy between the projected target and the online logits of
  // the taken action's block; gradient = softmax - m, IS-weighted.
  nn::Tensor online_logits = online_->forward(obs_batch);
  nn::Tensor grad(online_logits.shape());
  const float inv_b = 1.0f / static_cast<float>(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const float* block =
        online_logits.raw() + (i * actions_ + actions[i]) * atoms;
    float mx = block[0];
    for (std::size_t j = 1; j < atoms; ++j) mx = std::max(mx, block[j]);
    float sum = 0.0f;
    std::vector<float> p(atoms);
    for (std::size_t j = 0; j < atoms; ++j) {
      p[j] = std::exp(block[j] - mx);
      sum += p[j];
    }
    double ce = 0.0;
    const float w = config_.use_per ? weights[i] : 1.0f;
    float* grow = grad.raw() + (i * actions_ + actions[i]) * atoms;
    for (std::size_t j = 0; j < atoms; ++j) {
      p[j] /= sum;
      grow[j] = w * inv_b * (p[j] - projected.at2(i, j));
      if (projected.at2(i, j) > 0.0f)
        ce -= projected.at2(i, j) * std::log(std::max(p[j], 1e-12f));
    }
    td_proxy[i] = static_cast<float>(ce);
  }
  if (config_.use_per) per_replay_->update_priorities(indices, td_proxy);

  online_->backward(grad);
  optimizer_->clip_grad_norm(config_.grad_clip);
  optimizer_->step();
  ++updates_;
}

void QAgent::train_step() {
  if (config_.use_distributional) {
    train_step_distributional();
    return;
  }
  const std::size_t batch = config_.batch_size;
  std::vector<std::size_t> indices;
  std::vector<float> weights;
  if (config_.use_per) {
    auto s = per_replay_->sample(batch, rng_);
    indices = std::move(s.indices);
    weights = std::move(s.weights);
  } else {
    indices = uniform_replay_->sample_indices(batch, rng_);
  }

  auto transition = [&](std::size_t i) -> const Replayed& {
    return config_.use_per ? (*per_replay_)[indices[i]]
                           : (*uniform_replay_)[indices[i]];
  };

  std::vector<const nn::Tensor*> obs_ptrs(batch), next_ptrs(batch);
  std::vector<std::size_t> actions(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    obs_ptrs[i] = &transition(i).observation;
    next_ptrs[i] = &transition(i).next_observation;
    actions[i] = transition(i).action;
  }
  nn::Tensor obs_batch = batch_observations(obs_ptrs);
  nn::Tensor next_batch = batch_observations(next_ptrs);

  // Bootstrap targets. Double Q-learning selects the argmax with the online
  // network and evaluates it with the target network.
  if (config_.use_noisy) {
    target_->set_training(false);
    online_->set_training(false);
  }
  nn::Tensor next_q_target = target_->forward(next_batch);  // [B, A]
  std::vector<std::size_t> next_actions(batch);
  if (config_.use_double) {
    nn::Tensor next_q_online = online_->forward(next_batch);
    next_actions = nn::argmax_rows(next_q_online);
  } else {
    next_actions = nn::argmax_rows(next_q_target);
  }

  const float bootstrap_discount =
      std::pow(config_.gamma, static_cast<float>(config_.n_step));
  std::vector<float> td_targets(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const Replayed& t = transition(i);
    float target = t.reward;
    if (!t.done)
      target += bootstrap_discount * next_q_target.at2(i, next_actions[i]);
    td_targets[i] = target;
  }

  // Q(s, a) regression on the taken actions.
  if (config_.use_noisy) {
    online_->set_training(true);
    online_->resample_noise(rng_);
  }
  nn::Tensor q = online_->forward(obs_batch);
  nn::LossResult loss = nn::q_learning_loss(q, actions, td_targets);

  if (config_.use_per) {
    // Scale each row's gradient by its IS weight, and feed TD errors back
    // as new priorities.
    std::vector<float> td_errors(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      td_errors[i] = q.at2(i, actions[i]) - td_targets[i];
      for (std::size_t a = 0; a < actions_; ++a)
        loss.grad.at2(i, a) *= weights[i];
    }
    per_replay_->update_priorities(indices, td_errors);
  }

  online_->backward(loss.grad);
  optimizer_->clip_grad_norm(config_.grad_clip);
  optimizer_->step();
  ++updates_;
}

AgentPtr make_dqn_agent(const ObsSpec& obs, std::size_t actions,
                        std::uint64_t seed) {
  QAgent::Config c;
  return std::make_unique<QAgent>(obs, actions, c, seed);
}

AgentPtr make_rainbow_agent(const ObsSpec& obs, std::size_t actions,
                            std::uint64_t seed) {
  QAgent::Config c;
  c.use_double = true;
  c.use_dueling = true;
  c.use_noisy = true;
  c.use_per = true;
  c.n_step = 3;
  return std::make_unique<QAgent>(obs, actions, c, seed);
}

AgentPtr make_c51_agent(const ObsSpec& obs, std::size_t actions,
                        std::uint64_t seed) {
  QAgent::Config c;
  c.use_double = true;
  c.use_per = true;
  c.n_step = 3;
  c.use_distributional = true;
  return std::make_unique<QAgent>(obs, actions, c, seed);
}

}  // namespace rlattack::rl
