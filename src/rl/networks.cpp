#include "rlattack/rl/networks.hpp"

#include <stdexcept>

#include "rlattack/nn/activations.hpp"
#include "rlattack/nn/conv2d.hpp"
#include "rlattack/nn/dense.hpp"
#include "rlattack/nn/noisy_dense.hpp"

namespace rlattack::rl {

nn::LayerPtr make_mlp_net(std::size_t in, std::size_t out, std::size_t hidden,
                          util::Rng& rng) {
  auto net = std::make_unique<nn::Sequential>();
  net->emplace<nn::Dense>(in, hidden, rng, /*relu_fan_in=*/true)
      .emplace<nn::ReLU>()
      .emplace<nn::Dense>(hidden, hidden, rng, /*relu_fan_in=*/true)
      .emplace<nn::ReLU>()
      .emplace<nn::Dense>(hidden, out, rng);
  return net;
}

namespace {

/// Appends the shared conv feature extractor and returns its output width.
std::size_t append_conv_trunk(nn::Sequential& net,
                              const std::vector<std::size_t>& chw,
                              util::Rng& rng) {
  if (chw.size() != 3)
    throw std::logic_error("make_conv_net: expected [C, H, W] shape");
  const std::size_t c = chw[0], h = chw[1], w = chw[2];
  auto conv1 = std::make_unique<nn::Conv2D>(c, 8, 3, 2, 1, rng);
  const std::size_t h1 = conv1->out_extent(h), w1 = conv1->out_extent(w);
  auto conv2 = std::make_unique<nn::Conv2D>(8, 16, 3, 2, 1, rng);
  const std::size_t h2 = conv2->out_extent(h1), w2 = conv2->out_extent(w1);
  net.add(std::move(conv1));
  net.emplace<nn::ReLU>();
  net.add(std::move(conv2));
  net.emplace<nn::ReLU>();
  net.emplace<nn::Flatten>();
  return 16 * h2 * w2;
}

}  // namespace

nn::LayerPtr make_conv_net(const std::vector<std::size_t>& chw,
                           std::size_t out, std::size_t hidden,
                           util::Rng& rng) {
  auto net = std::make_unique<nn::Sequential>();
  const std::size_t flat = append_conv_trunk(*net, chw, rng);
  net->emplace<nn::Dense>(flat, hidden, rng, /*relu_fan_in=*/true)
      .emplace<nn::ReLU>()
      .emplace<nn::Dense>(hidden, out, rng);
  return net;
}

nn::LayerPtr make_net(const ObsSpec& obs, std::size_t out, std::size_t hidden,
                      util::Rng& rng) {
  if (obs.is_image()) return make_conv_net(obs.shape, out, hidden, rng);
  return make_mlp_net(obs.flat_size(), out, hidden, rng);
}

DuelingHead::DuelingHead(std::size_t in_features, std::size_t actions,
                         std::size_t hidden, bool noisy, util::Rng& rng,
                         float noisy_sigma0)
    : actions_(actions) {
  if (actions_ == 0) throw std::logic_error("DuelingHead: zero actions");
  auto add_stream = [&](nn::Sequential& stream, std::size_t out) {
    if (noisy) {
      stream.emplace<nn::NoisyDense>(in_features, hidden, rng, noisy_sigma0)
          .emplace<nn::ReLU>()
          .emplace<nn::NoisyDense>(hidden, out, rng, noisy_sigma0);
    } else {
      stream.emplace<nn::Dense>(in_features, hidden, rng, true)
          .emplace<nn::ReLU>()
          .emplace<nn::Dense>(hidden, out, rng);
    }
  };
  add_stream(value_stream_, 1);
  add_stream(advantage_stream_, actions_);
}

nn::Tensor DuelingHead::forward(const nn::Tensor& input) {
  nn::Tensor value = value_stream_.forward(input);          // [B, 1]
  nn::Tensor advantage = advantage_stream_.forward(input);  // [B, A]
  const std::size_t batch = advantage.dim(0);
  nn::Tensor q({batch, actions_});
  for (std::size_t b = 0; b < batch; ++b) {
    float mean_adv = 0.0f;
    for (std::size_t a = 0; a < actions_; ++a)
      mean_adv += advantage.at2(b, a);
    mean_adv /= static_cast<float>(actions_);
    for (std::size_t a = 0; a < actions_; ++a)
      q.at2(b, a) = value.at2(b, 0) + advantage.at2(b, a) - mean_adv;
  }
  return q;
}

nn::Tensor DuelingHead::backward(const nn::Tensor& grad_output) {
  const std::size_t batch = grad_output.dim(0);
  if (grad_output.rank() != 2 || grad_output.dim(1) != actions_)
    throw std::logic_error("DuelingHead::backward: gradient shape mismatch");
  // dQ/dV = 1 for all actions; dQ/dA_j = delta_aj - 1/A.
  nn::Tensor grad_value({batch, std::size_t{1}});
  nn::Tensor grad_advantage({batch, actions_});
  for (std::size_t b = 0; b < batch; ++b) {
    float sum = 0.0f;
    for (std::size_t a = 0; a < actions_; ++a) sum += grad_output.at2(b, a);
    grad_value.at2(b, 0) = sum;
    const float mean = sum / static_cast<float>(actions_);
    for (std::size_t a = 0; a < actions_; ++a)
      grad_advantage.at2(b, a) = grad_output.at2(b, a) - mean;
  }
  nn::Tensor gi = value_stream_.backward(grad_value);
  gi += advantage_stream_.backward(grad_advantage);
  return gi;
}

std::vector<nn::Param> DuelingHead::params() {
  std::vector<nn::Param> out;
  for (nn::Param p : value_stream_.params()) {
    p.name = "dueling.value." + p.name;
    out.push_back(p);
  }
  for (nn::Param p : advantage_stream_.params()) {
    p.name = "dueling.advantage." + p.name;
    out.push_back(p);
  }
  return out;
}

void DuelingHead::set_training(bool training) {
  value_stream_.set_training(training);
  advantage_stream_.set_training(training);
}

void DuelingHead::resample_noise(util::Rng& rng) {
  value_stream_.resample_noise(rng);
  advantage_stream_.resample_noise(rng);
}

nn::LayerPtr make_rainbow_net(const ObsSpec& obs, std::size_t actions,
                              std::size_t hidden, bool noisy, util::Rng& rng,
                              float noisy_sigma0) {
  auto net = std::make_unique<nn::Sequential>();
  std::size_t feature_width;
  if (obs.is_image()) {
    feature_width = append_conv_trunk(*net, obs.shape, rng);
  } else {
    const std::size_t in = obs.flat_size();
    net->emplace<nn::Dense>(in, hidden, rng, true).emplace<nn::ReLU>();
    feature_width = hidden;
  }
  net->emplace<DuelingHead>(feature_width, actions, hidden, noisy, rng,
                            noisy_sigma0);
  return net;
}

}  // namespace rlattack::rl
