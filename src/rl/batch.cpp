#include "rlattack/rl/batch.hpp"

#include <algorithm>
#include <stdexcept>

namespace rlattack::rl {

nn::Tensor batch_observations(
    std::span<const nn::Tensor* const> observations) {
  if (observations.empty())
    throw std::logic_error("batch_observations: empty batch");
  const auto& first_shape = observations.front()->shape();
  std::vector<std::size_t> shape{observations.size()};
  shape.insert(shape.end(), first_shape.begin(), first_shape.end());
  nn::Tensor out(shape);
  const std::size_t stride = observations.front()->size();
  for (std::size_t b = 0; b < observations.size(); ++b) {
    if (observations[b]->shape() != first_shape)
      throw std::logic_error("batch_observations: inconsistent shapes");
    auto src = observations[b]->data();
    std::copy(src.begin(), src.end(), out.data().begin() + b * stride);
  }
  return out;
}

nn::Tensor as_batch_of_one(const nn::Tensor& observation) {
  std::vector<std::size_t> shape{1};
  const auto& s = observation.shape();
  shape.insert(shape.end(), s.begin(), s.end());
  return observation.reshaped(std::move(shape));
}

const nn::Tensor& as_batch_of_one_into(const nn::Tensor& observation,
                                       nn::Tensor& scratch) {
  std::vector<std::size_t> shape{1};
  const auto& s = observation.shape();
  shape.insert(shape.end(), s.begin(), s.end());
  if (scratch.shape() != shape) scratch.resize(std::move(shape));
  auto src = observation.data();
  std::copy(src.begin(), src.end(), scratch.data().begin());
  return scratch;
}

}  // namespace rlattack::rl
