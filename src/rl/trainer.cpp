#include "rlattack/rl/trainer.hpp"

#include "rlattack/util/log.hpp"
#include "rlattack/util/stats.hpp"

namespace rlattack::rl {

namespace {
double rolling_average(const std::vector<double>& rewards,
                       std::size_t window) {
  if (rewards.empty()) return 0.0;
  const std::size_t n = std::min(window, rewards.size());
  double sum = 0.0;
  for (std::size_t i = rewards.size() - n; i < rewards.size(); ++i)
    sum += rewards[i];
  return sum / static_cast<double>(n);
}
}  // namespace

TrainResult train_agent(Agent& agent, env::Environment& environment,
                        const TrainConfig& config) {
  TrainResult result;
  for (std::size_t ep = 0; ep < config.episodes; ++ep) {
    agent.begin_episode();
    nn::Tensor obs = environment.reset();
    double total = 0.0;
    bool done = false;
    while (!done) {
      const std::size_t action = agent.act(obs, /*explore=*/true);
      env::StepResult sr = environment.step(action);
      agent.learn(obs, action, sr.reward, sr.observation, sr.done);
      total += sr.reward;
      done = sr.done;
      obs = std::move(sr.observation);
    }
    result.episode_rewards.push_back(total);
    result.final_average =
        rolling_average(result.episode_rewards, config.window);
    if (config.verbose && (ep + 1) % 20 == 0)
      util::log_info("train ", agent.algorithm(), " ep ", ep + 1, "/",
                     config.episodes, " avg(", config.window,
                     ") = ", result.final_average);
    if (config.target_reward != 0.0 &&
        result.episode_rewards.size() >= config.window &&
        result.final_average >= config.target_reward) {
      result.reached_target = true;
      break;
    }
  }
  return result;
}

std::vector<double> evaluate_agent(Agent& agent,
                                   env::Environment& environment,
                                   std::size_t episodes, std::uint64_t seed) {
  std::vector<double> rewards;
  rewards.reserve(episodes);
  for (std::size_t ep = 0; ep < episodes; ++ep) {
    environment.seed(seed + ep);
    nn::Tensor obs = environment.reset();
    double total = 0.0;
    bool done = false;
    while (!done) {
      const std::size_t action = agent.act(obs, /*explore=*/false);
      env::StepResult sr = environment.step(action);
      total += sr.reward;
      done = sr.done;
      obs = std::move(sr.observation);
    }
    rewards.push_back(total);
  }
  return rewards;
}

std::vector<env::Episode> collect_episodes(Agent& agent,
                                           env::Environment& environment,
                                           std::size_t episodes,
                                           std::uint64_t seed) {
  std::vector<env::Episode> out;
  out.reserve(episodes);
  for (std::size_t ep = 0; ep < episodes; ++ep) {
    environment.seed(seed + ep);
    env::Episode episode;
    nn::Tensor obs = environment.reset();
    bool done = false;
    while (!done) {
      const std::size_t action = agent.act(obs, /*explore=*/false);
      env::StepResult sr = environment.step(action);
      env::Transition t;
      t.observation = obs;
      t.action = action;
      t.reward = sr.reward;
      t.done = sr.done;
      episode.steps.push_back(std::move(t));
      done = sr.done;
      obs = std::move(sr.observation);
    }
    out.push_back(std::move(episode));
  }
  return out;
}

}  // namespace rlattack::rl
