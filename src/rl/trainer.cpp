#include "rlattack/rl/trainer.hpp"

#include <atomic>

#include "rlattack/util/log.hpp"
#include "rlattack/util/stats.hpp"
#include "rlattack/util/thread_pool.hpp"

namespace rlattack::rl {

namespace {
double rolling_average(const std::vector<double>& rewards,
                       std::size_t window) {
  if (rewards.empty()) return 0.0;
  const std::size_t n = std::min(window, rewards.size());
  double sum = 0.0;
  for (std::size_t i = rewards.size() - n; i < rewards.size(); ++i)
    sum += rewards[i];
  return sum / static_cast<double>(n);
}

// One greedy evaluation episode: a pure function of (agent weights,
// environment dynamics, seed) — both serial and parallel loops call this.
double greedy_episode_reward(Agent& agent, env::Environment& environment,
                             std::uint64_t seed) {
  environment.seed(seed);
  nn::Tensor obs = environment.reset();
  double total = 0.0;
  bool done = false;
  while (!done) {
    const std::size_t action = agent.act(obs, /*explore=*/false);
    env::StepResult sr = environment.step(action);
    total += sr.reward;
    done = sr.done;
    obs = std::move(sr.observation);
  }
  return total;
}

// One greedy trace-collection episode, same purity contract.
env::Episode greedy_episode_trace(Agent& agent, env::Environment& environment,
                                  std::uint64_t seed) {
  environment.seed(seed);
  env::Episode episode;
  nn::Tensor obs = environment.reset();
  bool done = false;
  while (!done) {
    const std::size_t action = agent.act(obs, /*explore=*/false);
    env::StepResult sr = environment.step(action);
    env::Transition t;
    t.observation = obs;
    t.action = action;
    t.reward = sr.reward;
    t.done = sr.done;
    episode.steps.push_back(std::move(t));
    done = sr.done;
    obs = std::move(sr.observation);
  }
  return episode;
}

// Fans `episodes` independent units across `workers` agent/environment
// clone pairs; unit i runs with seed `seed + i` and writes result slot i.
template <typename Result, typename RunOne>
void for_each_episode_parallel(Agent& agent, env::Environment& environment,
                               std::size_t episodes, std::uint64_t seed,
                               std::size_t workers,
                               std::vector<Result>& results,
                               const RunOne& run_one) {
  struct Worker {
    AgentPtr agent;
    std::unique_ptr<env::Environment> environment;
  };
  std::vector<Worker> pool_workers;
  pool_workers.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    pool_workers.push_back({agent.clone(), environment.clone()});

  std::atomic<std::size_t> next{0};
  util::ThreadPool::global().parallel_for_chunks(
      workers, 1, [&](std::size_t w, std::size_t, std::size_t) {
        Worker& worker = pool_workers[w];
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= episodes) return;
          results[i] =
              run_one(*worker.agent, *worker.environment, seed + i);
        }
      });
}
}  // namespace

TrainResult train_agent(Agent& agent, env::Environment& environment,
                        const TrainConfig& config) {
  TrainResult result;
  for (std::size_t ep = 0; ep < config.episodes; ++ep) {
    agent.begin_episode();
    nn::Tensor obs = environment.reset();
    double total = 0.0;
    bool done = false;
    while (!done) {
      const std::size_t action = agent.act(obs, /*explore=*/true);
      env::StepResult sr = environment.step(action);
      agent.learn(obs, action, sr.reward, sr.observation, sr.done);
      total += sr.reward;
      done = sr.done;
      obs = std::move(sr.observation);
    }
    result.episode_rewards.push_back(total);
    result.final_average =
        rolling_average(result.episode_rewards, config.window);
    if (config.verbose && (ep + 1) % 20 == 0)
      util::log_info("train ", agent.algorithm(), " ep ", ep + 1, "/",
                     config.episodes, " avg(", config.window,
                     ") = ", result.final_average);
    if (config.target_reward != 0.0 &&
        result.episode_rewards.size() >= config.window &&
        result.final_average >= config.target_reward) {
      result.reached_target = true;
      break;
    }
  }
  return result;
}

std::vector<double> evaluate_agent(Agent& agent,
                                   env::Environment& environment,
                                   std::size_t episodes, std::uint64_t seed) {
  std::vector<double> rewards;
  rewards.reserve(episodes);
  for (std::size_t ep = 0; ep < episodes; ++ep)
    rewards.push_back(greedy_episode_reward(agent, environment, seed + ep));
  return rewards;
}

std::vector<double> evaluate_agent_parallel(Agent& agent,
                                            env::Environment& environment,
                                            std::size_t episodes,
                                            std::uint64_t seed,
                                            std::size_t workers) {
  workers = std::min(workers == 0 ? std::size_t{1} : workers, episodes);
  if (workers <= 1)
    return evaluate_agent(agent, environment, episodes, seed);
  std::vector<double> rewards(episodes, 0.0);
  for_each_episode_parallel(agent, environment, episodes, seed, workers,
                            rewards, greedy_episode_reward);
  return rewards;
}

std::vector<env::Episode> collect_episodes(Agent& agent,
                                           env::Environment& environment,
                                           std::size_t episodes,
                                           std::uint64_t seed) {
  std::vector<env::Episode> out;
  out.reserve(episodes);
  for (std::size_t ep = 0; ep < episodes; ++ep)
    out.push_back(greedy_episode_trace(agent, environment, seed + ep));
  return out;
}

std::vector<env::Episode> collect_episodes_parallel(
    Agent& agent, env::Environment& environment, std::size_t episodes,
    std::uint64_t seed, std::size_t workers) {
  workers = std::min(workers == 0 ? std::size_t{1} : workers, episodes);
  if (workers <= 1)
    return collect_episodes(agent, environment, episodes, seed);
  std::vector<env::Episode> out(episodes);
  for_each_episode_parallel(agent, environment, episodes, seed, workers, out,
                            greedy_episode_trace);
  return out;
}

}  // namespace rlattack::rl
