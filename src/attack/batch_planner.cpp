#include "rlattack/attack/batch_planner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <vector>

#include "rlattack/nn/loss.hpp"
#include "rlattack/obs/metrics.hpp"
#include "rlattack/obs/trace.hpp"
#include "rlattack/util/check.hpp"
#include "rlattack/util/env.hpp"
#include "rlattack/util/thread_pool.hpp"

namespace rlattack::attack {

namespace {

struct BatchEnv {
  bool enabled = true;
  std::size_t width = 32;
};

/// RLATTACK_CRAFT_BATCH: "0" = kill switch, an integer > 1 = enabled with
/// that flush width, anything else (including unset) = enabled at the
/// default width.
BatchEnv parse_batch_env() {
  BatchEnv out;
  const std::optional<long> v = util::env::get_long(util::env::Var::kCraftBatch);
  if (!v) return out;
  if (*v == 0) out.enabled = false;
  if (*v > 1) out.width = static_cast<std::size_t>(*v);
  return out;
}

std::atomic<bool>& batch_flag() {
  static std::atomic<bool> enabled{parse_batch_env().enabled};
  return enabled;
}

std::atomic<std::size_t>& batch_width() {
  static std::atomic<std::size_t> width{parse_batch_env().width};
  return width;
}

/// RLATTACK_EVAL_BATCH: same grammar as RLATTACK_CRAFT_BATCH ("0" = kill
/// switch, integer > 1 = enabled with that rendezvous width, anything else
/// including unset = enabled at the default width).
BatchEnv parse_eval_env() {
  BatchEnv out;
  const std::optional<long> v = util::env::get_long(util::env::Var::kEvalBatch);
  if (!v) return out;
  if (*v == 0) out.enabled = false;
  if (*v > 1) out.width = static_cast<std::size_t>(*v);
  return out;
}

std::atomic<bool>& eval_flag() {
  static std::atomic<bool> enabled{parse_eval_env().enabled};
  return enabled;
}

std::atomic<std::size_t>& eval_width() {
  static std::atomic<std::size_t> width{parse_eval_env().width};
  return width;
}

std::size_t parse_stall_env() {
  if (const std::optional<long> v =
          util::env::get_long(util::env::Var::kTraceStallMs);
      v && *v > 0)
    return static_cast<std::size_t>(*v);
  return 250;
}

std::atomic<std::size_t>& stall_ms() {
  static std::atomic<std::size_t> ms{parse_stall_env()};
  return ms;
}

// Pre-registered telemetry: per-flush batch size (how far the tail GEMMs
// are from m = 1), plus the pack/unpack overhead the fusion pays.
struct PlannerMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Histogram& batch_size =
      reg.histogram("craft.batch.size", {1, 2, 4, 8, 16, 32, 64});
  obs::Counter& flushes = reg.counter("craft.batch.flushes");
  obs::Counter& probes = reg.counter("craft.batch.probes");
  obs::SpanStat& gather = reg.span("craft.batch.gather");
  obs::SpanStat& scatter = reg.span("craft.batch.scatter");
  obs::Counter& stall = reg.counter("craft.batch.stall");
  // Episode-batched evaluation: the same rendezvous telemetry for the
  // per-step victim/approximator query family.
  obs::Histogram& eval_batch_size =
      reg.histogram("eval.batch.size", {1, 2, 4, 8, 16, 32, 64});
  obs::Counter& eval_flushes = reg.counter("eval.batch.flushes");
  obs::Counter& eval_probes = reg.counter("eval.batch.probes");
  obs::Counter& eval_stall = reg.counter("eval.batch.stall");
};
PlannerMetrics& planner_metrics() {
  static PlannerMetrics metrics;
  return metrics;
}

}  // namespace

bool craft_batch_enabled() noexcept {
  return batch_flag().load(std::memory_order_relaxed);
}

void set_craft_batch_enabled(bool enabled) noexcept {
  batch_flag().store(enabled, std::memory_order_relaxed);
}

std::size_t craft_batch_width() noexcept {
  return batch_width().load(std::memory_order_relaxed);
}

void set_craft_batch_width(std::size_t width) noexcept {
  batch_width().store(width == 0 ? 1 : width, std::memory_order_relaxed);
}

bool eval_batch_enabled() noexcept {
  return eval_flag().load(std::memory_order_relaxed);
}

void set_eval_batch_enabled(bool enabled) noexcept {
  eval_flag().store(enabled, std::memory_order_relaxed);
}

std::size_t eval_batch_width() noexcept {
  return eval_width().load(std::memory_order_relaxed);
}

void set_eval_batch_width(std::size_t width) noexcept {
  eval_width().store(width == 0 ? 1 : width, std::memory_order_relaxed);
}

std::size_t stall_watchdog_ms() noexcept {
  return stall_ms().load(std::memory_order_relaxed);
}

void set_stall_watchdog_ms(std::size_t ms) noexcept {
  stall_ms().store(ms == 0 ? 1 : ms, std::memory_order_relaxed);
}

BatchedCraftPlanner::BatchedCraftPlanner(seq2seq::Seq2SeqModel& model)
    : model_(model) {}

BatchedCraftPlanner::~BatchedCraftPlanner() {
  if constexpr (util::kCheckedBuild) {
    util::MutexLock lock(mu_);
    RLATTACK_CHECK(enrolled_ == 0 && queue_.empty() && eval_queue_.empty(),
                   "BatchedCraftPlanner destroyed with live participants "
                   "or pending probes");
  }
}

void BatchedCraftPlanner::set_victim_handler(EvalHandler handler) {
  if constexpr (util::kCheckedBuild) {
    util::MutexLock lock(mu_);
    RLATTACK_CHECK(enrolled_ == 0,
                   "BatchedCraftPlanner::set_victim_handler: handler must be "
                   "registered before participants enroll");
  }
  victim_handler_ = std::move(handler);
}

bool BatchedCraftPlanner::has_victim_handler() const noexcept {
  return static_cast<bool>(victim_handler_);
}

BatchedCraftPlanner::Participant::Participant(BatchedCraftPlanner& planner)
    : planner_(planner) {
  planner_.enroll();
}

BatchedCraftPlanner::Participant::~Participant() { retire(); }

void BatchedCraftPlanner::Participant::retire() noexcept {
  if (retired_) return;
  retired_ = true;
  planner_.retire();
}

void BatchedCraftPlanner::enroll() {
  util::MutexLock lock(mu_);
  ++enrolled_;
  obs::trace_instant("craft.enroll", "enrolled",
                     static_cast<double>(enrolled_));
}

void BatchedCraftPlanner::retire() noexcept {
  util::MutexLock lock(mu_);
  if constexpr (util::kCheckedBuild) {
    RLATTACK_CHECK(enrolled_ > 0,
                   "BatchedCraftPlanner::retire: no enrolled participants");
  }
  --enrolled_;
  obs::trace_instant("craft.retire", "enrolled",
                     static_cast<double>(enrolled_));
  // Leaving the rendezvous can complete it: if everyone still enrolled is
  // already waiting, the retiring thread runs the flush on their behalf.
  if (pending_locked() > 0 && pending_locked() == enrolled_)
    flush_ready_locked();
}

void BatchedCraftPlanner::submit(Probe& probe) {
  if constexpr (util::kCheckedBuild) {
    // The rendezvous only terminates because every host can block
    // independently. A global-pool worker that submitted would park a pool
    // thread inside the rendezvous — with a pool of one that is an
    // immediate deadlock, with more it silently serializes the kernels the
    // flush is about to run. Hosts are plain threads (parallel_episodes);
    // keep it that way.
    RLATTACK_CHECK(!util::ThreadPool::inside_worker(),
                   "BatchedCraftPlanner::submit called from a thread-pool "
                   "worker; rendezvous hosts must be dedicated threads");
  }
  util::MutexLock lock(mu_);
  if constexpr (util::kCheckedBuild) {
    // A probe from a thread without a live Participant could make
    // pending_locked() exceed enrolled_ and deadlock the rendezvous.
    RLATTACK_CHECK(enrolled_ > pending_locked(),
                   "BatchedCraftPlanner::submit: probe without a live "
                   "Participant enrollment");
  }
  queue_.push_back(&probe);
  if (pending_locked() == enrolled_) {
    // Last arrival executes the whole batch; everyone else is parked on
    // cv_ below, so holding mu_ through the model work is deadlock-free.
    flush_ready_locked();
    return;
  }
  // The wait is a span, so a stalled rendezvous shows as a wide
  // craft.submit_wait block in the timeline rather than a blank gap.
  obs::TraceScope trace("craft.submit_wait", "queued",
                        static_cast<double>(queue_.size()));
  // Explicit wait loop: probe.done is written by the flushing thread under
  // mu_, and reading it here keeps the guarded access inside this annotated
  // scope (see thread_safety.hpp conventions).
  if constexpr (util::kCheckedBuild) {
    // Stall watchdog: each elapsed interval without an answer fires the
    // craft.batch.stall counter and an instant trace event. Spurious wakes
    // re-arm the interval, so a firing means at least interval ms of real
    // waiting since the previous check — precise enough for liveness triage.
    const auto interval =
        std::chrono::milliseconds(static_cast<long>(stall_watchdog_ms()));
    while (!probe.done) {
      if (cv_.wait_for(lock.native_lock(), interval) ==
              std::cv_status::timeout &&
          !probe.done) {
        planner_metrics().stall.add();
        obs::trace_instant("craft.batch.stall", "interval_ms",
                           static_cast<double>(stall_watchdog_ms()));
      }
    }
  } else {
    while (!probe.done) cv_.wait(lock.native_lock());
  }
}

void BatchedCraftPlanner::submit(EvalProbe& probe) {
  if constexpr (util::kCheckedBuild) {
    // Same host discipline as craft probes: rendezvous hosts must be
    // dedicated threads, never global-pool workers (see submit(Probe&)).
    RLATTACK_CHECK(!util::ThreadPool::inside_worker(),
                   "BatchedCraftPlanner::submit called from a thread-pool "
                   "worker; rendezvous hosts must be dedicated threads");
    RLATTACK_CHECK(has_victim_handler(),
                   "BatchedCraftPlanner::submit(EvalProbe): no victim "
                   "handler registered");
  }
  util::MutexLock lock(mu_);
  if constexpr (util::kCheckedBuild) {
    RLATTACK_CHECK(enrolled_ > pending_locked(),
                   "BatchedCraftPlanner::submit: eval probe without a live "
                   "Participant enrollment");
  }
  eval_queue_.push_back(&probe);
  if (pending_locked() == enrolled_) {
    flush_ready_locked();
    return;
  }
  obs::TraceScope trace("eval.submit_wait", "queued",
                        static_cast<double>(eval_queue_.size()));
  if constexpr (util::kCheckedBuild) {
    // Eval-side stall watchdog, mirroring the craft wait loop above.
    const auto interval =
        std::chrono::milliseconds(static_cast<long>(stall_watchdog_ms()));
    while (!probe.done) {
      if (cv_.wait_for(lock.native_lock(), interval) ==
              std::cv_status::timeout &&
          !probe.done) {
        planner_metrics().eval_stall.add();
        obs::trace_instant("eval.batch.stall", "interval_ms",
                           static_cast<double>(stall_watchdog_ms()));
      }
    }
  } else {
    while (!probe.done) cv_.wait(lock.native_lock());
  }
}

void BatchedCraftPlanner::flush_ready_locked() {
  // Eval probes first, craft probes second. The order is immaterial for
  // correctness — both families' batched evaluation is per-row
  // bit-identical to serial, and no probe depends on another in the same
  // rendezvous round — so it is fixed here purely for determinism of the
  // trace timeline.
  if (!eval_queue_.empty()) {
    PlannerMetrics& metrics = planner_metrics();
    const std::size_t rows = eval_queue_.size();
    obs::TraceScope trace("eval.batch.flush", "rows",
                          static_cast<double>(rows));
    metrics.eval_flushes.add();
    metrics.eval_probes.add(rows);
    metrics.eval_batch_size.record(static_cast<double>(rows));
    victim_handler_(std::span<EvalProbe* const>(eval_queue_));
    for (EvalProbe* probe : eval_queue_) probe->done = true;
    eval_queue_.clear();
  }
  if (!queue_.empty()) {
    obs::TraceScope trace("craft.flush", "rows",
                          static_cast<double>(queue_.size()));
    flush_locked();
  }
  cv_.notify_all();
}

void BatchedCraftPlanner::flush_locked() {
  PlannerMetrics& metrics = planner_metrics();
  const std::size_t rows = queue_.size();
  metrics.flushes.add();
  metrics.probes.add(rows);
  metrics.batch_size.record(static_cast<double>(rows));

  const seq2seq::Seq2SeqConfig& cfg = model_.config();
  const std::size_t n = cfg.input_steps;
  const std::size_t a_count = cfg.actions;
  const std::size_t m = cfg.output_steps;
  const std::size_t frame = cfg.frame_size();

  // Lazy history encodes, batched: pack the not-yet-encoded contexts'
  // histories, run the heads once, scatter the per-row encodings back into
  // the contexts' cache slots.
  std::vector<Probe*> to_encode;
  for (Probe* probe : queue_)
    if (!*probe->encoded) to_encode.push_back(probe);
  if (!to_encode.empty()) {
    const std::size_t k = to_encode.size();
    nn::Tensor actions({k, n, a_count});
    nn::Tensor observations({k, n, frame});
    {
      obs::Span span(metrics.gather);
      for (std::size_t r = 0; r < k; ++r) {
        const CraftInputs& in = *to_encode[r]->inputs;
        std::memcpy(actions.raw() + r * n * a_count, in.action_history.raw(),
                    n * a_count * sizeof(float));
        std::memcpy(observations.raw() + r * n * frame, in.obs_history.raw(),
                    n * frame * sizeof(float));
      }
    }
    std::vector<seq2seq::HistoryEncoding> encodings =
        model_.encode_history_batch(actions, observations);
    obs::Span span(metrics.scatter);
    for (std::size_t r = 0; r < k; ++r) {
      *to_encode[r]->encoding = std::move(encodings[r]);
      *to_encode[r]->encoded = true;
    }
  }

  // Shared tail forward over every probe's s_t row.
  std::vector<const seq2seq::HistoryEncoding*> caches(rows);
  nn::Tensor current({rows, frame});
  {
    obs::Span span(metrics.gather);
    for (std::size_t r = 0; r < rows; ++r) {
      caches[r] = queue_[r]->encoding;
      std::memcpy(current.raw() + r * frame, queue_[r]->current_obs->raw(),
                  frame * sizeof(float));
    }
  }
  nn::Tensor logits = model_.forward_cached_batch(caches, current);

  // Scatter logits and assemble the per-row loss gradients. Forward-only
  // rows keep a zero gradient row: batch rows are independent through the
  // whole backward, so the zero rows cost nothing in correctness and keep
  // the gradient rows' bits identical to their single-row equivalents.
  bool any_gradient = false;
  nn::Tensor grad_logits({rows, m, a_count});
  {
    obs::Span span(metrics.scatter);
    for (std::size_t r = 0; r < rows; ++r) {
      Probe& probe = *queue_[r];
      float* grad_row = grad_logits.raw() + r * m * a_count;
      switch (probe.kind) {
        case ProbeKind::kForward: {
          probe.logits = nn::Tensor({1, m, a_count});
          std::memcpy(probe.logits.raw(), logits.raw() + r * m * a_count,
                      m * a_count * sizeof(float));
          break;
        }
        case ProbeKind::kCeGradient: {
          any_gradient = true;
          // Same per-row CE as CraftContext::current_obs_gradient: loss on
          // the attacked position only, computed from this row's logits.
          nn::Tensor row_logits({1, m, a_count});
          std::memcpy(row_logits.raw(), logits.raw() + r * m * a_count,
                      m * a_count * sizeof(float));
          std::vector<std::size_t> targets(m, 0);
          std::vector<float> weights(m, 0.0f);
          targets[probe.position] = probe.action_a;
          weights[probe.position] = 1.0f;
          nn::LossResult loss =
              nn::softmax_cross_entropy(row_logits, targets, weights);
          std::memcpy(grad_row, loss.grad.raw(), m * a_count * sizeof(float));
          break;
        }
        case ProbeKind::kDiffGradient: {
          any_gradient = true;
          grad_row[probe.position * a_count + probe.action_a] += 1.0f;
          grad_row[probe.position * a_count + probe.action_b] -= 1.0f;
          break;
        }
        case ProbeKind::kAnchorGradient: {
          // Fused anchor resolution: the CE target is the argmax of the
          // logits this same flush just computed — exactly what a kForward
          // probe followed by a kCeGradient probe would have produced, one
          // rendezvous round earlier.
          any_gradient = true;
          probe.logits = nn::Tensor({1, m, a_count});
          std::memcpy(probe.logits.raw(), logits.raw() + r * m * a_count,
                      m * a_count * sizeof(float));
          const float* row =
              probe.logits.raw() + probe.position * a_count;
          const std::size_t anchor = static_cast<std::size_t>(
              std::max_element(row, row + a_count) - row);
          std::vector<std::size_t> targets(m, 0);
          std::vector<float> weights(m, 0.0f);
          targets[probe.position] = anchor;
          weights[probe.position] = 1.0f;
          nn::LossResult loss =
              nn::softmax_cross_entropy(probe.logits, targets, weights);
          std::memcpy(grad_row, loss.grad.raw(), m * a_count * sizeof(float));
          break;
        }
      }
    }
  }

  if (any_gradient) {
    model_.zero_grad();  // parameter grads stay clean, as the row path does
    nn::Tensor grads = model_.backward_to_current_batch(grad_logits);
    model_.zero_grad();
    obs::Span span(metrics.scatter);
    for (std::size_t r = 0; r < rows; ++r) {
      Probe& probe = *queue_[r];
      if (probe.kind == ProbeKind::kForward) continue;
      probe.grad = nn::Tensor({1, frame});
      std::memcpy(probe.grad.raw(), grads.raw() + r * frame,
                  frame * sizeof(float));
    }
  }

  for (Probe* probe : queue_) probe->done = true;
  queue_.clear();
  cv_.notify_all();
}

}  // namespace rlattack::attack
