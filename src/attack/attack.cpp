#include "rlattack/attack/attack.hpp"

#include <algorithm>

#include "rlattack/attack/batch_planner.hpp"
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <utility>
#include <vector>

#include "rlattack/nn/loss.hpp"
#include "rlattack/obs/metrics.hpp"
#include "rlattack/util/check.hpp"
#include "rlattack/util/env.hpp"
#include "rlattack/util/stats.hpp"

namespace rlattack::attack {

namespace {

// Pre-registered telemetry handles. "Queries" count victim/approximator model
// evaluations — the blackbox cost axis of the paper — split into pure
// forwards and gradient (forward+backward) queries. Clip counters record how
// often projection actually modified the candidate.
struct AttackMetrics {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs::Counter& queries_forward = reg.counter("attack.queries.forward");
  obs::Counter& queries_gradient = reg.counter("attack.queries.gradient");
  obs::Counter& craft_gaussian = reg.counter("attack.craft.gaussian");
  obs::Counter& craft_fgsm = reg.counter("attack.craft.fgsm");
  obs::Counter& craft_pgd = reg.counter("attack.craft.pgd");
  obs::Counter& craft_cw = reg.counter("attack.craft.cw");
  obs::Counter& craft_jsma = reg.counter("attack.craft.jsma");
  obs::Counter& pgd_iterations = reg.counter("attack.pgd.iterations");
  obs::Counter& cw_iterations = reg.counter("attack.cw.iterations");
  obs::Counter& jsma_rounds = reg.counter("attack.jsma.rounds");
  obs::Counter& clip_budget = reg.counter("attack.clip.budget");
  obs::Counter& clip_bounds = reg.counter("attack.clip.bounds");
  /// Model queries answered from an already-built history encoding — the
  /// work the craft cache saved (each one skipped both n-step history
  /// stacks).
  obs::Counter& encode_reuse = reg.counter("attack.encode.reuse");
};
AttackMetrics g_metrics;

std::atomic<bool>& craft_cache_flag() {
  // Default on; RLATTACK_CRAFT_CACHE=0 starts the process with the cache
  // off (tests flip it per run via set_craft_cache_enabled instead).
  static std::atomic<bool> enabled = [] {
    return !util::env::is_zero(util::env::Var::kCraftCache);
  }();
  return enabled;
}

/// Scales `delta` so its norm equals `budget.epsilon` (no-op on a zero
/// vector).
void scale_to_budget(nn::Tensor& delta, const Budget& budget) {
  if (budget.norm == Budget::Norm::kL2) {
    const double norm = util::l2_norm(delta.data());
    if (norm <= 0.0) return;
    delta *= static_cast<float>(budget.epsilon / norm);
  } else {
    const double norm = util::linf_norm(delta.data());
    if (norm <= 0.0) return;
    delta *= static_cast<float>(budget.epsilon / norm);
  }
}

/// Projects `candidate` back into the budget ball around `origin`, then
/// clamps to the observation bounds.
void project(nn::Tensor& candidate, const nn::Tensor& origin,
             const Budget& budget, env::ObservationBounds bounds) {
  bool budget_clipped = false;
  if (budget.norm == Budget::Norm::kLinf) {
    for (std::size_t i = 0; i < candidate.size(); ++i) {
      const float clamped = std::clamp(
          candidate[i], origin[i] - budget.epsilon, origin[i] + budget.epsilon);
      budget_clipped |= clamped != candidate[i];
      candidate[i] = clamped;
    }
  } else {
    nn::Tensor delta = candidate;
    delta -= origin;
    const double norm = util::l2_norm(delta.data());
    if (norm > budget.epsilon && norm > 0.0) {
      budget_clipped = true;
      delta *= static_cast<float>(budget.epsilon / norm);
      candidate = origin;
      candidate += delta;
    }
  }
  bool bounds_clipped = false;
  for (float& x : candidate.data()) {
    const float clamped = std::clamp(x, bounds.low, bounds.high);
    bounds_clipped |= clamped != x;
    x = clamped;
  }
  if (budget_clipped) g_metrics.clip_budget.add();
  if (bounds_clipped) g_metrics.clip_bounds.add();
}

/// Resolves the loss anchor once, on the *clean* input: the action whose
/// cross-entropy the attack ascends (untargeted, away from the clean
/// prediction) or descends (targeted). Anchoring on the clean prediction —
/// rather than re-evaluating per PGD step — keeps the iterate from
/// oscillating back once the decision flips.
struct Anchor {
  std::size_t action = 0;
  float sign = 1.0f;  ///< +1 ascend (untargeted), -1 descend (targeted)
};

/// Signed gradient step direction at `current_obs` for a fixed anchor.
nn::Tensor crafting_direction(CraftContext& ctx, const Goal& goal,
                              const Anchor& anchor,
                              const nn::Tensor& current_obs) {
  nn::Tensor grad =
      ctx.current_obs_gradient(goal.position, anchor.action, current_obs);
  grad *= anchor.sign;
  return grad;
}

/// Anchor plus the first crafting direction, both on the clean input. The
/// untargeted anchor is the argmax of the very forward pass the first
/// gradient needs, so the fused CraftContext query resolves both in one
/// rendezvous round; the targeted anchor is free and only the gradient is
/// asked for.
struct AnchoredDirection {
  Anchor anchor;
  nn::Tensor grad;  ///< already sign-adjusted
};

AnchoredDirection resolve_anchor_and_direction(CraftContext& ctx,
                                               const Goal& goal,
                                               const nn::Tensor& current_obs) {
  AnchoredDirection out;
  if (goal.mode == Goal::Mode::kTargeted) {
    out.anchor.action = goal.target_action;
    out.anchor.sign = -1.0f;
    out.grad = crafting_direction(ctx, goal, out.anchor, current_obs);
    return out;
  }
  auto [predicted, grad] = ctx.anchored_gradient(goal.position, current_obs);
  out.anchor.action = predicted[goal.position];
  out.anchor.sign = 1.0f;  // ascend; the raw gradient already points uphill
  out.grad = std::move(grad);
  return out;
}

}  // namespace

bool craft_cache_enabled() noexcept {
  return craft_cache_flag().load(std::memory_order_relaxed);
}

void set_craft_cache_enabled(bool enabled) noexcept {
  craft_cache_flag().store(enabled, std::memory_order_relaxed);
}

CraftContext::CraftContext(seq2seq::Seq2SeqModel& model,
                           const CraftInputs& inputs)
    : model_(model), inputs_(inputs), use_cache_(craft_cache_enabled()) {}

CraftContext::CraftContext(BatchedCraftPlanner& planner,
                           const CraftInputs& inputs)
    : model_(planner.model()),
      inputs_(inputs),
      planner_(&planner),
      use_cache_(true) {}

nn::Tensor CraftContext::cached_logits(const nn::Tensor& current_obs) {
  if (!encoded_) {
    encoding_ =
        model_.encode_history(inputs_.action_history, inputs_.obs_history);
    encoded_ = true;
  } else {
    g_metrics.encode_reuse.add();
  }
  return model_.forward_cached(encoding_, current_obs);
}

std::vector<std::size_t> CraftContext::predict_actions() {
  ++q_forward_;
  if (planner_ == nullptr && !use_cache_)
    return attack::predict_actions(model_, inputs_);
  g_metrics.queries_forward.add();
  nn::Tensor logits;
  if (planner_ != nullptr) {
    BatchedCraftPlanner::Probe probe;
    probe.kind = BatchedCraftPlanner::ProbeKind::kForward;
    probe.inputs = &inputs_;
    probe.encoding = &encoding_;
    probe.encoded = &encoded_;
    probe.current_obs = &inputs_.current_obs;
    if (encoded_) g_metrics.encode_reuse.add();
    planner_->submit(probe);
    logits = std::move(probe.logits);
  } else {
    logits = cached_logits(inputs_.current_obs);
  }
  const std::size_t m = logits.dim(1), a = logits.dim(2);
  std::vector<std::size_t> actions(m);
  for (std::size_t j = 0; j < m; ++j) {
    auto row = logits.data().subspan(j * a, a);
    actions[j] = static_cast<std::size_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
  return actions;
}

std::vector<float> CraftContext::position_logits(
    std::size_t position, const nn::Tensor& current_obs) {
  ++q_forward_;
  if (planner_ == nullptr && !use_cache_)
    return attack::position_logits(model_, inputs_, position, current_obs);
  g_metrics.queries_forward.add();
  nn::Tensor logits;
  if (planner_ != nullptr) {
    BatchedCraftPlanner::Probe probe;
    probe.kind = BatchedCraftPlanner::ProbeKind::kForward;
    probe.inputs = &inputs_;
    probe.encoding = &encoding_;
    probe.encoded = &encoded_;
    probe.current_obs = &current_obs;
    if (encoded_) g_metrics.encode_reuse.add();
    planner_->submit(probe);
    logits = std::move(probe.logits);
  } else {
    logits = cached_logits(current_obs);
  }
  const std::size_t m = logits.dim(1), a = logits.dim(2);
  if (position >= m)
    throw std::logic_error("position_logits: position out of range");
  auto row = logits.data().subspan(position * a, a);
  return {row.begin(), row.end()};
}

nn::Tensor CraftContext::current_obs_gradient(std::size_t position,
                                              std::size_t action,
                                              const nn::Tensor& current_obs) {
  ++q_gradient_;
  if (planner_ == nullptr && !use_cache_)
    return attack::current_obs_gradient(model_, inputs_, position, action,
                                        current_obs);
  g_metrics.queries_gradient.add();
  if (planner_ != nullptr) {
    if (position >= model_.config().output_steps)
      throw std::logic_error("current_obs_gradient: position out of range");
    BatchedCraftPlanner::Probe probe;
    probe.kind = BatchedCraftPlanner::ProbeKind::kCeGradient;
    probe.inputs = &inputs_;
    probe.encoding = &encoding_;
    probe.encoded = &encoded_;
    probe.current_obs = &current_obs;
    probe.position = position;
    probe.action_a = action;
    if (encoded_) g_metrics.encode_reuse.add();
    planner_->submit(probe);
    return std::move(probe.grad);
  }
  nn::Tensor logits = cached_logits(current_obs);
  const std::size_t m = logits.dim(1);
  if (position >= m)
    throw std::logic_error("current_obs_gradient: position out of range");
  // CE on the attacked position only; other rows get zero weight.
  std::vector<std::size_t> targets(m, 0);
  std::vector<float> weights(m, 0.0f);
  targets[position] = action;
  weights[position] = 1.0f;
  nn::LossResult loss = nn::softmax_cross_entropy(logits, targets, weights);
  model_.zero_grad();  // keep parameter grads clean, as the full path does
  nn::Tensor grad = model_.backward_to_current(loss.grad);
  model_.zero_grad();
  return grad;
}

std::pair<std::vector<std::size_t>, nn::Tensor>
CraftContext::anchored_gradient(std::size_t position,
                                const nn::Tensor& current_obs) {
  if (planner_ == nullptr) {
    // No rendezvous to save: ask the two questions exactly as the callers
    // used to, so the single-row paths (cache on or off) stay untouched
    // parity oracles.
    std::vector<std::size_t> predicted = predict_actions();
    if (position >= predicted.size())
      throw std::logic_error("Attack: goal position beyond output sequence");
    nn::Tensor grad =
        current_obs_gradient(position, predicted[position], current_obs);
    return {std::move(predicted), std::move(grad)};
  }
  if (position >= model_.config().output_steps)
    throw std::logic_error("Attack: goal position beyond output sequence");
  ++q_forward_;
  ++q_gradient_;
  g_metrics.queries_forward.add();
  g_metrics.queries_gradient.add();
  // Mirror the unfused accounting: the gradient half of the fused probe
  // always reuses the encoding the forward half just ensured (plus one more
  // reuse when the context was already encoded before the call).
  if (encoded_) g_metrics.encode_reuse.add();
  g_metrics.encode_reuse.add();
  BatchedCraftPlanner::Probe probe;
  probe.kind = BatchedCraftPlanner::ProbeKind::kAnchorGradient;
  probe.inputs = &inputs_;
  probe.encoding = &encoding_;
  probe.encoded = &encoded_;
  probe.current_obs = &current_obs;
  probe.position = position;
  planner_->submit(probe);
  const std::size_t m = probe.logits.dim(1), a = probe.logits.dim(2);
  std::vector<std::size_t> predicted(m);
  for (std::size_t j = 0; j < m; ++j) {
    auto row = probe.logits.data().subspan(j * a, a);
    predicted[j] = static_cast<std::size_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
  return {std::move(predicted), std::move(probe.grad)};
}

nn::Tensor CraftContext::logit_diff_gradient(std::size_t position,
                                             std::size_t a, std::size_t b,
                                             const nn::Tensor& current_obs) {
  ++q_gradient_;
  if (planner_ == nullptr && !use_cache_)
    return attack::logit_diff_gradient(model_, inputs_, position, a, b,
                                       current_obs);
  g_metrics.queries_gradient.add();
  if (planner_ != nullptr) {
    const seq2seq::Seq2SeqConfig& cfg = model_.config();
    if (position >= cfg.output_steps || a >= cfg.actions || b >= cfg.actions)
      throw std::logic_error("logit_diff_gradient: index out of range");
    BatchedCraftPlanner::Probe probe;
    probe.kind = BatchedCraftPlanner::ProbeKind::kDiffGradient;
    probe.inputs = &inputs_;
    probe.encoding = &encoding_;
    probe.encoded = &encoded_;
    probe.current_obs = &current_obs;
    probe.position = position;
    probe.action_a = a;
    probe.action_b = b;
    if (encoded_) g_metrics.encode_reuse.add();
    planner_->submit(probe);
    return std::move(probe.grad);
  }
  nn::Tensor logits = cached_logits(current_obs);
  const std::size_t m = logits.dim(1), actions = logits.dim(2);
  if (position >= m || a >= actions || b >= actions)
    throw std::logic_error("logit_diff_gradient: index out of range");
  nn::Tensor grad_logits(logits.shape());
  grad_logits[position * actions + a] = 1.0f;
  grad_logits[position * actions + b] -= 1.0f;  // a == b yields zero grad
  model_.zero_grad();
  nn::Tensor grad = model_.backward_to_current(grad_logits);
  model_.zero_grad();
  return grad;
}

nn::Tensor Attack::perturb(seq2seq::Seq2SeqModel& model,
                           const CraftInputs& inputs, const Goal& goal,
                           const Budget& budget, env::ObservationBounds bounds,
                           util::Rng& rng) {
  CraftContext ctx(model, inputs);
  return perturb(ctx, goal, budget, bounds, rng);
}

// The budget is measured against the bounds-clamped original because
// clamping is 1-Lipschitz: every attack that satisfied its budget pre-clamp
// provably satisfies this check, so a trip always means a genuinely broken
// attack implementation — never a false positive from the clip step.
void check_perturbation(const nn::Tensor& original,
                        const nn::Tensor& perturbed, const Budget& budget,
                        env::ObservationBounds bounds, const char* attack) {
  const std::string who(attack);
  RLATTACK_CHECK(perturbed.same_shape(original),
                 who + ": perturbed shape " + perturbed.shape_string() +
                     " != original shape " + original.shape_string());
  RLATTACK_CHECK(util::all_finite(perturbed.data()),
                 who + ": non-finite perturbed observation");
  constexpr float kBoundsTol = 1e-6f;
  double norm_sq = 0.0;
  double linf = 0.0;
  for (std::size_t i = 0; i < perturbed.size(); ++i) {
    const float x = perturbed[i];
    RLATTACK_CHECK(x >= bounds.low - kBoundsTol && x <= bounds.high + kBoundsTol,
                   who + ": element " + std::to_string(i) + " = " +
                       std::to_string(x) + " escapes observation bounds [" +
                       std::to_string(bounds.low) + ", " +
                       std::to_string(bounds.high) + "]");
    const double d =
        static_cast<double>(x) -
        static_cast<double>(std::clamp(original[i], bounds.low, bounds.high));
    norm_sq += d * d;
    linf = std::max(linf, std::abs(d));
  }
  const double norm =
      budget.norm == Budget::Norm::kL2 ? std::sqrt(norm_sq) : linf;
  const double allowed =
      static_cast<double>(budget.epsilon) * (1.0 + 1e-4) + 1e-6;
  RLATTACK_CHECK(
      norm <= allowed,
      who + ": perturbation norm " + std::to_string(norm) +
          " exceeds declared budget epsilon " + std::to_string(budget.epsilon) +
          (budget.norm == Budget::Norm::kL2 ? " (L2)" : " (Linf)"));
}

std::vector<std::size_t> predict_actions(seq2seq::Seq2SeqModel& model,
                                         const CraftInputs& inputs) {
  g_metrics.queries_forward.add();
  nn::Tensor logits = model.forward(inputs.action_history, inputs.obs_history,
                                    inputs.current_obs);
  const std::size_t m = logits.dim(1), a = logits.dim(2);
  std::vector<std::size_t> actions(m);
  for (std::size_t j = 0; j < m; ++j) {
    auto row = logits.data().subspan(j * a, a);
    actions[j] = static_cast<std::size_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
  return actions;
}

nn::Tensor current_obs_gradient(seq2seq::Seq2SeqModel& model,
                                const CraftInputs& inputs,
                                std::size_t position, std::size_t action,
                                const nn::Tensor& current_obs) {
  g_metrics.queries_gradient.add();
  nn::Tensor logits = model.forward(inputs.action_history, inputs.obs_history,
                                    current_obs);
  const std::size_t m = logits.dim(1);
  if (position >= m)
    throw std::logic_error("current_obs_gradient: position out of range");
  // CE on the attacked position only; other rows get zero weight.
  std::vector<std::size_t> targets(m, 0);
  std::vector<float> weights(m, 0.0f);
  targets[position] = action;
  weights[position] = 1.0f;
  nn::LossResult loss = nn::softmax_cross_entropy(logits, targets, weights);
  model.zero_grad();  // parameter grads are irrelevant here; keep them clean
  auto grads = model.backward(loss.grad);
  model.zero_grad();
  return std::move(grads.current_obs);
}

nn::Tensor GaussianAttack::perturb(CraftContext& ctx, const Goal& /*goal*/,
                                   const Budget& budget,
                                   env::ObservationBounds bounds,
                                   util::Rng& rng) {
  g_metrics.craft_gaussian.add();
  // Model-free: never queries ctx, so the lazy history encoding is not built.
  const CraftInputs& inputs = ctx.inputs();
  nn::Tensor delta(inputs.current_obs.shape());
  for (float& x : delta.data()) x = rng.normal_f(0.0f, 1.0f);
  scale_to_budget(delta, budget);
  nn::Tensor out = inputs.current_obs;
  out += delta;
  for (float& x : out.data()) x = std::clamp(x, bounds.low, bounds.high);
  if constexpr (util::kCheckedBuild)
    check_perturbation(inputs.current_obs, out, budget, bounds, "gaussian");
  return out;
}

nn::Tensor FgsmAttack::perturb(CraftContext& ctx, const Goal& goal,
                               const Budget& budget,
                               env::ObservationBounds bounds,
                               util::Rng& /*rng*/) {
  g_metrics.craft_fgsm.add();
  const CraftInputs& inputs = ctx.inputs();
  nn::Tensor grad =
      resolve_anchor_and_direction(ctx, goal, inputs.current_obs).grad;
  nn::Tensor delta(grad.shape());
  if (budget.norm == Budget::Norm::kLinf) {
    // Classic FGSM: epsilon * sign(grad).
    for (std::size_t i = 0; i < grad.size(); ++i)
      delta[i] = budget.epsilon * (grad[i] > 0.0f   ? 1.0f
                                   : grad[i] < 0.0f ? -1.0f
                                                    : 0.0f);
  } else {
    // L2 fast gradient method: epsilon * grad / ||grad||.
    delta = grad;
    scale_to_budget(delta, budget);
  }
  nn::Tensor out = inputs.current_obs;
  out += delta;
  for (float& x : out.data()) x = std::clamp(x, bounds.low, bounds.high);
  if constexpr (util::kCheckedBuild)
    check_perturbation(inputs.current_obs, out, budget, bounds, "fgsm");
  return out;
}

PgdAttack::PgdAttack(std::size_t steps, float step_fraction)
    : steps_(steps), step_fraction_(step_fraction) {
  if (steps_ == 0) throw std::logic_error("PgdAttack: zero steps");
  if (step_fraction_ <= 0.0f)
    throw std::logic_error("PgdAttack: non-positive step fraction");
}

nn::Tensor PgdAttack::perturb(CraftContext& ctx, const Goal& goal,
                              const Budget& budget,
                              env::ObservationBounds bounds,
                              util::Rng& /*rng*/) {
  g_metrics.craft_pgd.add();
  g_metrics.pgd_iterations.add(steps_);
  const CraftInputs& inputs = ctx.inputs();
  // Iteration 0 evaluates at the clean input, so its gradient rides along
  // with the anchor resolution; later iterates query at the moved candidate.
  AnchoredDirection first =
      resolve_anchor_and_direction(ctx, goal, inputs.current_obs);
  nn::Tensor candidate = inputs.current_obs;
  const float step_size = step_fraction_ * budget.epsilon;
  Budget step_budget = budget;
  step_budget.epsilon = step_size;
  for (std::size_t it = 0; it < steps_; ++it) {
    nn::Tensor grad =
        it == 0 ? std::move(first.grad)
                : crafting_direction(ctx, goal, first.anchor, candidate);
    nn::Tensor step(grad.shape());
    if (budget.norm == Budget::Norm::kLinf) {
      for (std::size_t i = 0; i < grad.size(); ++i)
        step[i] = step_size * (grad[i] > 0.0f   ? 1.0f
                               : grad[i] < 0.0f ? -1.0f
                                                : 0.0f);
    } else {
      step = grad;
      scale_to_budget(step, step_budget);
    }
    candidate += step;
    project(candidate, inputs.current_obs, budget, bounds);
  }
  if constexpr (util::kCheckedBuild)
    check_perturbation(inputs.current_obs, candidate, budget, bounds, "pgd");
  return candidate;
}

std::vector<float> position_logits(seq2seq::Seq2SeqModel& model,
                                   const CraftInputs& inputs,
                                   std::size_t position,
                                   const nn::Tensor& current_obs) {
  g_metrics.queries_forward.add();
  nn::Tensor logits = model.forward(inputs.action_history, inputs.obs_history,
                                    current_obs);
  const std::size_t m = logits.dim(1), a = logits.dim(2);
  if (position >= m)
    throw std::logic_error("position_logits: position out of range");
  auto row = logits.data().subspan(position * a, a);
  return {row.begin(), row.end()};
}

nn::Tensor logit_diff_gradient(seq2seq::Seq2SeqModel& model,
                               const CraftInputs& inputs,
                               std::size_t position, std::size_t a,
                               std::size_t b, const nn::Tensor& current_obs) {
  g_metrics.queries_gradient.add();
  nn::Tensor logits = model.forward(inputs.action_history, inputs.obs_history,
                                    current_obs);
  const std::size_t m = logits.dim(1), actions = logits.dim(2);
  if (position >= m || a >= actions || b >= actions)
    throw std::logic_error("logit_diff_gradient: index out of range");
  nn::Tensor grad_logits(logits.shape());
  grad_logits[position * actions + a] = 1.0f;
  grad_logits[position * actions + b] -= 1.0f;  // a == b yields zero grad
  model.zero_grad();
  auto grads = model.backward(grad_logits);
  model.zero_grad();
  return std::move(grads.current_obs);
}

CwAttack::CwAttack(std::size_t iterations, float c, float lr, float kappa)
    : iterations_(iterations), c_(c), lr_(lr), kappa_(kappa) {
  if (iterations_ == 0) throw std::logic_error("CwAttack: zero iterations");
  if (lr_ <= 0.0f) throw std::logic_error("CwAttack: non-positive lr");
}

nn::Tensor CwAttack::perturb(CraftContext& ctx, const Goal& goal,
                             const Budget& budget,
                             env::ObservationBounds bounds,
                             util::Rng& /*rng*/) {
  g_metrics.craft_cw.add();
  const CraftInputs& inputs = ctx.inputs();
  // Anchor on the clean prediction (untargeted) or the requested target.
  const auto clean_pred = ctx.predict_actions();
  if (goal.position >= clean_pred.size())
    throw std::logic_error("CwAttack: goal position beyond output sequence");
  const std::size_t anchor = goal.mode == Goal::Mode::kTargeted
                                 ? goal.target_action
                                 : clean_pred[goal.position];

  nn::Tensor candidate = inputs.current_obs;
  for (std::size_t it = 0; it < iterations_; ++it) {
    g_metrics.cw_iterations.add();
    const auto logits = ctx.position_logits(goal.position, candidate);
    // Best competing class to the anchor.
    std::size_t best_other = anchor == 0 ? 1 : 0;
    for (std::size_t j = 0; j < logits.size(); ++j)
      if (j != anchor && logits[j] > logits[best_other]) best_other = j;
    // Untargeted: want anchor to LOSE -> minimise (z_anchor - z_other).
    // Targeted: want anchor (= target) to WIN -> minimise (z_other - z_anchor).
    const float margin = goal.mode == Goal::Mode::kTargeted
                             ? logits[best_other] - logits[anchor]
                             : logits[anchor] - logits[best_other];
    if (margin < -kappa_) break;  // already confidently flipped

    nn::Tensor margin_grad =
        goal.mode == Goal::Mode::kTargeted
            ? ctx.logit_diff_gradient(goal.position, best_other, anchor,
                                      candidate)
            : ctx.logit_diff_gradient(goal.position, anchor, best_other,
                                      candidate);
    // Total objective gradient: 2 * delta + c * d margin.
    for (std::size_t i = 0; i < candidate.size(); ++i) {
      const float delta = candidate[i] - inputs.current_obs[i];
      candidate[i] -= lr_ * (2.0f * delta + c_ * margin_grad[i]);
    }
    project(candidate, inputs.current_obs, budget, bounds);
  }
  if constexpr (util::kCheckedBuild)
    check_perturbation(inputs.current_obs, candidate, budget, bounds, "cw");
  return candidate;
}

JsmaAttack::JsmaAttack(std::size_t max_features)
    : max_features_(max_features) {
  if (max_features_ == 0)
    throw std::logic_error("JsmaAttack: zero max_features");
}

nn::Tensor JsmaAttack::perturb(CraftContext& ctx, const Goal& goal,
                               const Budget& budget,
                               env::ObservationBounds bounds,
                               util::Rng& /*rng*/) {
  g_metrics.craft_jsma.add();
  const CraftInputs& inputs = ctx.inputs();
  const auto clean_pred = ctx.predict_actions();
  if (goal.position >= clean_pred.size())
    throw std::logic_error("JsmaAttack: goal position beyond output sequence");
  const std::size_t anchor = goal.mode == Goal::Mode::kTargeted
                                 ? goal.target_action
                                 : clean_pred[goal.position];

  const std::size_t features =
      std::min<std::size_t>(max_features_, inputs.current_obs.size());
  // Per-feature step sized so the worst case exactly fills the budget.
  const float theta =
      budget.norm == Budget::Norm::kLinf
          ? budget.epsilon
          : budget.epsilon / std::sqrt(static_cast<float>(features));

  nn::Tensor candidate = inputs.current_obs;
  std::vector<bool> used(candidate.size(), false);
  for (std::size_t round = 0; round < features; ++round) {
    g_metrics.jsma_rounds.add();
    const auto logits = ctx.position_logits(goal.position, candidate);
    std::size_t best_other = anchor == 0 ? (logits.size() > 1 ? 1 : 0) : 0;
    for (std::size_t j = 0; j < logits.size(); ++j)
      if (j != anchor && logits[j] > logits[best_other]) best_other = j;
    if (goal.mode == Goal::Mode::kUntargeted &&
        logits[best_other] > logits[anchor])
      break;  // prediction already flipped
    if (goal.mode == Goal::Mode::kTargeted &&
        logits[anchor] > logits[best_other])
      break;  // target already dominant

    // Saliency: increase (other - anchor) for untargeted flips, increase
    // (anchor - other) for targeted forcing.
    nn::Tensor saliency =
        goal.mode == Goal::Mode::kTargeted
            ? ctx.logit_diff_gradient(goal.position, anchor, best_other,
                                      candidate)
            : ctx.logit_diff_gradient(goal.position, best_other, anchor,
                                      candidate);
    std::size_t pick = candidate.size();
    float best_mag = 0.0f;
    for (std::size_t i = 0; i < saliency.size(); ++i) {
      if (used[i]) continue;
      const float mag = std::abs(saliency[i]);
      if (mag > best_mag) {
        best_mag = mag;
        pick = i;
      }
    }
    if (pick == candidate.size() || best_mag == 0.0f) break;
    used[pick] = true;
    candidate[pick] += saliency[pick] > 0.0f ? theta : -theta;
    project(candidate, inputs.current_obs, budget, bounds);
  }
  if constexpr (util::kCheckedBuild)
    check_perturbation(inputs.current_obs, candidate, budget, bounds, "jsma");
  return candidate;
}

AttackPtr make_attack(Kind kind) {
  switch (kind) {
    case Kind::kGaussian: return std::make_unique<GaussianAttack>();
    case Kind::kFgsm: return std::make_unique<FgsmAttack>();
    case Kind::kPgd: return std::make_unique<PgdAttack>();
    case Kind::kCw: return std::make_unique<CwAttack>();
    case Kind::kJsma: return std::make_unique<JsmaAttack>();
  }
  throw std::logic_error("make_attack: invalid enum");
}

Kind parse_attack(const std::string& name) {
  if (name == "gaussian" || name == "noise") return Kind::kGaussian;
  if (name == "fgsm") return Kind::kFgsm;
  if (name == "pgd") return Kind::kPgd;
  if (name == "cw") return Kind::kCw;
  if (name == "jsma") return Kind::kJsma;
  throw std::invalid_argument("unknown attack: " + name);
}

std::string attack_name(Kind kind) {
  switch (kind) {
    case Kind::kGaussian: return "gaussian";
    case Kind::kFgsm: return "fgsm";
    case Kind::kPgd: return "pgd";
    case Kind::kCw: return "cw";
    case Kind::kJsma: return "jsma";
  }
  throw std::logic_error("attack_name: invalid enum");
}

}  // namespace rlattack::attack
