// Adversarial-sample crafting against the seq2seq approximator
// (Section 4.4). All attacks perturb only the current observation s_t; the
// histories A_{t-1}, S_{t-1} are read-only inputs, exactly matching the
// threat model ("past states and target agent memory cannot be modified").
//
// Three attackers, in the paper's order of sophistication:
//   - GaussianAttack: random jamming; uses no model information. The
//     paper's headline methodological point is that this baseline is about
//     as good as the gradient attacks at reducing reward.
//   - FgsmAttack: one gradient step (Goodfellow et al. 2015), extended to
//     the L2-ball variant so budgets are comparable across attacks.
//   - PgdAttack: iterative projected gradient descent (Madry et al. 2018).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rlattack/env/environment.hpp"
#include "rlattack/seq2seq/model.hpp"
#include "rlattack/util/rng.hpp"

namespace rlattack::attack {

/// Perturbation budget: the norm ball the adversarial sample must stay in.
struct Budget {
  enum class Norm { kL2, kLinf };
  Norm norm = Norm::kL2;
  float epsilon = 0.5f;
};

/// What the attacker wants the victim's predicted action sequence to do.
struct Goal {
  enum class Mode {
    kUntargeted,  ///< flip the action at `position` away from its prediction
    kTargeted     ///< force `target_action` at `position` (time-bomb)
  };
  Mode mode = Mode::kUntargeted;
  std::size_t position = 0;       ///< output-sequence index to attack
  std::size_t target_action = 0;  ///< used by kTargeted
};

/// The crafting inputs: one rollout-FIFO snapshot, batch size 1.
struct CraftInputs {
  nn::Tensor action_history;  ///< [1, n, A]
  nn::Tensor obs_history;     ///< [1, n, F]
  nn::Tensor current_obs;     ///< [1, F]
};

/// Whether crafting runs through the Seq2SeqModel craft-context cache
/// (encode_history / forward_cached / backward_to_current) or through the
/// full forward/backward. On by default; the RLATTACK_CRAFT_CACHE
/// environment variable ("0" disables) sets the process-initial value. The
/// two paths are bit-identical — the uncached one stays available as the
/// parity oracle (tests/experiments_parallel_test.cpp flips this per run).
bool craft_cache_enabled() noexcept;
void set_craft_cache_enabled(bool enabled) noexcept;

class BatchedCraftPlanner;

/// One craft's model-query frontend (the Section 4.4 attack loop). The
/// histories (A_{t-1}, S_{t-1}) are fixed for the whole craft, so the
/// context encodes them lazily exactly once — on the first model query, so
/// model-free attacks never pay for it — and serves every further query,
/// iterative PGD/CW/JSMA steps included, from the cached tail path. With
/// craft_cache_enabled() off, every query delegates to the full-path free
/// helpers below, bit-identically. `model` and `inputs` must outlive the
/// context; one context serves exactly one (A_{t-1}, S_{t-1}) snapshot.
///
/// A context constructed over a BatchedCraftPlanner answers the same four
/// queries with the same bits and the same query accounting, but routes
/// each one through the planner's rendezvous so concurrent sessions' tail
/// evaluations fuse into shared batched GEMMs (batch_planner.hpp).
class CraftContext {
 public:
  CraftContext(seq2seq::Seq2SeqModel& model, const CraftInputs& inputs);
  /// Planner-backed context: queries become probes batched across every
  /// enrolled session. The calling thread must hold a live
  /// BatchedCraftPlanner::Participant for the planner.
  CraftContext(BatchedCraftPlanner& planner, const CraftInputs& inputs);
  CraftContext(const CraftContext&) = delete;
  CraftContext& operator=(const CraftContext&) = delete;

  const CraftInputs& inputs() const noexcept { return inputs_; }

  // Cached equivalents of the free helpers at the bottom of this header
  // (same shapes, same bits, same query accounting).
  std::vector<std::size_t> predict_actions();
  std::vector<float> position_logits(std::size_t position,
                                     const nn::Tensor& current_obs);
  nn::Tensor current_obs_gradient(std::size_t position, std::size_t action,
                                  const nn::Tensor& current_obs);
  nn::Tensor logit_diff_gradient(std::size_t position, std::size_t a,
                                 std::size_t b, const nn::Tensor& current_obs);
  /// predict_actions() and current_obs_gradient() against the predicted
  /// action at `position`, answered together. Planner-backed contexts fuse
  /// the two into ONE rendezvous round (the CE target is the argmax of the
  /// same forward pass the gradient needs — bit-identical to asking
  /// separately); other contexts just ask sequentially. Query counters are
  /// incremented exactly as the two separate calls would.
  std::pair<std::vector<std::size_t>, nn::Tensor> anchored_gradient(
      std::size_t position, const nn::Tensor& current_obs);

  /// Per-context query tallies, counted at exactly the sites that feed the
  /// global attack.queries.* counters. The forensics stream differences
  /// these across a step to attribute queries to it; the process-wide
  /// telemetry is unaffected.
  std::size_t queries_forward() const noexcept { return q_forward_; }
  std::size_t queries_gradient() const noexcept { return q_gradient_; }

 private:
  friend class BatchedCraftPlanner;

  /// forward_cached over the lazily built encoding.
  nn::Tensor cached_logits(const nn::Tensor& current_obs);

  seq2seq::Seq2SeqModel& model_;
  const CraftInputs& inputs_;
  /// Non-null when this context routes through a planner rendezvous.
  BatchedCraftPlanner* planner_ = nullptr;
  bool use_cache_;      ///< craft_cache_enabled() at construction
  bool encoded_ = false;
  seq2seq::HistoryEncoding encoding_;
  std::size_t q_forward_ = 0;   ///< forward queries through this context
  std::size_t q_gradient_ = 0;  ///< gradient queries through this context
};

class Attack {
 public:
  virtual ~Attack() = default;
  Attack() = default;
  Attack(const Attack&) = delete;
  Attack& operator=(const Attack&) = delete;

  /// Crafting entry point: returns the perturbed current observation (same
  /// shape as ctx.inputs().current_obs), clamped to `bounds` and within
  /// `budget` of the original. All model queries go through `ctx`, which
  /// amortises the history encoding across the craft's iterations.
  virtual nn::Tensor perturb(CraftContext& ctx, const Goal& goal,
                             const Budget& budget,
                             env::ObservationBounds bounds,
                             util::Rng& rng) = 0;

  /// Convenience overload: crafts through a fresh one-shot context over
  /// (model, inputs). Derived classes re-expose it with
  /// `using Attack::perturb;`.
  nn::Tensor perturb(seq2seq::Seq2SeqModel& model, const CraftInputs& inputs,
                     const Goal& goal, const Budget& budget,
                     env::ObservationBounds bounds, util::Rng& rng);

  virtual std::string name() const = 0;

  /// Whether perturb() ever queries the approximator. Model-free attacks
  /// (Gaussian) return false so the batched drivers never enroll them in a
  /// planner rendezvous they would only stall.
  virtual bool uses_model() const noexcept { return true; }
};

using AttackPtr = std::unique_ptr<Attack>;

/// Random Gaussian jamming scaled exactly to the budget (the baseline the
/// paper argues all evaluations should include).
class GaussianAttack final : public Attack {
 public:
  using Attack::perturb;
  nn::Tensor perturb(CraftContext& ctx, const Goal& goal, const Budget& budget,
                     env::ObservationBounds bounds, util::Rng& rng) override;
  std::string name() const override { return "gaussian"; }
  bool uses_model() const noexcept override { return false; }
};

/// Single-step fast gradient attack: sign step for L-inf budgets, normalised
/// gradient step for L2 budgets.
class FgsmAttack final : public Attack {
 public:
  using Attack::perturb;
  nn::Tensor perturb(CraftContext& ctx, const Goal& goal, const Budget& budget,
                     env::ObservationBounds bounds, util::Rng& rng) override;
  std::string name() const override { return "fgsm"; }
};

/// Iterative projected gradient descent with `steps` iterations of size
/// `step_fraction * epsilon`, projecting back into the budget ball after
/// every step.
class PgdAttack final : public Attack {
 public:
  explicit PgdAttack(std::size_t steps = 7, float step_fraction = 0.3f);

  using Attack::perturb;
  nn::Tensor perturb(CraftContext& ctx, const Goal& goal, const Budget& budget,
                     env::ObservationBounds bounds, util::Rng& rng) override;
  std::string name() const override { return "pgd"; }

  std::size_t steps() const noexcept { return steps_; }

 private:
  std::size_t steps_;
  float step_fraction_;
};

/// Carlini–Wagner-style attack (extension; Section 4.4 of the paper argues
/// full CW is too slow for RL's thousands of per-episode decisions, so this
/// is the practical budget-bounded variant): minimises
///   ||delta||_2^2 + c * margin(x + delta)
/// by Adam-style gradient descent on delta, where margin is the CW f6 loss
/// on the attacked output position, then projects into the attack budget
/// for comparability with the other attacks.
class CwAttack final : public Attack {
 public:
  explicit CwAttack(std::size_t iterations = 20, float c = 1.0f,
                    float lr = 0.05f, float kappa = 0.0f);

  using Attack::perturb;
  nn::Tensor perturb(CraftContext& ctx, const Goal& goal, const Budget& budget,
                     env::ObservationBounds bounds, util::Rng& rng) override;
  std::string name() const override { return "cw"; }

 private:
  std::size_t iterations_;
  float c_;
  float lr_;
  float kappa_;
};

/// JSMA-style saliency attack (extension; Behzadan & Munir attack RL
/// policies with JSMA in the paper's related work). Greedily perturbs the
/// most salient input features one at a time — the saliency of feature i is
/// the gradient of the (other - anchor) logit margin — changing at most
/// `max_features` coordinates, then projects into the budget ball. Produces
/// characteristically *sparse* perturbations, unlike FGSM/PGD's dense ones.
class JsmaAttack final : public Attack {
 public:
  explicit JsmaAttack(std::size_t max_features = 8);

  using Attack::perturb;
  nn::Tensor perturb(CraftContext& ctx, const Goal& goal, const Budget& budget,
                     env::ObservationBounds bounds, util::Rng& rng) override;
  std::string name() const override { return "jsma"; }

 private:
  std::size_t max_features_;
};

/// Checked-build (RLATTACK_CHECKED) audit of a finished perturbation: same
/// shape as the original, all-finite, inside the observation bounds, and
/// within the declared epsilon-ball of the (bounds-clamped) original. Every
/// built-in attack self-checks through this, and the episode pipeline runs
/// it after each Attack::perturb so third-party attacks are verified at the
/// same trust boundary. Throws util::CheckFailure on violation; a no-op in
/// release builds.
void check_perturbation(const nn::Tensor& original,
                        const nn::Tensor& perturbed, const Budget& budget,
                        env::ObservationBounds bounds, const char* attack);

/// Attack identifiers used across benches/tests.
enum class Kind { kGaussian, kFgsm, kPgd, kCw, kJsma };
AttackPtr make_attack(Kind kind);
Kind parse_attack(const std::string& name);
std::string attack_name(Kind kind);

/// Runs the model on the inputs and returns the predicted action sequence
/// (argmax per output step).
std::vector<std::size_t> predict_actions(seq2seq::Seq2SeqModel& model,
                                         const CraftInputs& inputs);

/// d CE(logits[position], action) / d current_obs. The direction FGSM/PGD
/// ascend (untargeted) or descend (targeted).
nn::Tensor current_obs_gradient(seq2seq::Seq2SeqModel& model,
                                const CraftInputs& inputs,
                                std::size_t position, std::size_t action,
                                const nn::Tensor& current_obs);

/// Logits of the model at `current_obs` for output step `position`.
std::vector<float> position_logits(seq2seq::Seq2SeqModel& model,
                                   const CraftInputs& inputs,
                                   std::size_t position,
                                   const nn::Tensor& current_obs);

/// d (z[position][a] - z[position][b]) / d current_obs — the CW margin
/// gradient.
nn::Tensor logit_diff_gradient(seq2seq::Seq2SeqModel& model,
                               const CraftInputs& inputs,
                               std::size_t position, std::size_t a,
                               std::size_t b, const nn::Tensor& current_obs);

}  // namespace rlattack::attack
