// Batched craft substrate: many concurrent craft sessions, one shared tail.
//
// Every attack iteration — a PGD step, a CW margin probe, a timebomb
// trigger craft — asks the approximator the same question with a different
// s_t row. Run serially those are single-row GEMMs (m = 1) that leave the
// 6x16 microkernel almost idle; fused across M concurrent sessions they are
// one [M, F] tail evaluation at full arithmetic intensity. The planner is
// the rendezvous that performs that fusion without touching attack logic:
//
//   - Episode host threads run the unchanged attacks; only CraftContext's
//     query layer reroutes, submitting one Probe per model query.
//   - Sessions that may still query enroll a Participant (RAII). A probe
//     blocks its submitter; when every enrolled participant is waiting, the
//     last submitter executes the whole queue as one batched
//     encode_history_batch / forward_cached_batch / backward_to_current_batch
//     pass on the shared model and wakes everyone with their row.
//   - Per-row bit-identity of the batched model calls (seq2seq/model.hpp)
//     makes each probe's answer independent of batch membership, so episode
//     outcomes are bit-identical to the unbatched drivers no matter how the
//     flushes interleave.
//
// Liveness rule: enroll only sessions whose attack can still query the
// model (Attack::uses_model, retire after a single-step attack fires) —
// an enrolled participant that never probes would stall every flush until
// its episode ends.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "rlattack/attack/attack.hpp"
#include "rlattack/util/thread_safety.hpp"

namespace rlattack::attack {

/// Whether the episode drivers batch concurrent sessions' craft queries
/// through a BatchedCraftPlanner. On by default; the RLATTACK_CRAFT_BATCH
/// environment variable sets the process-initial value: "0" disables
/// (falling back to the per-worker single-row path, bit-identically), any
/// integer > 1 both enables and overrides the batch width.
bool craft_batch_enabled() noexcept;
void set_craft_batch_enabled(bool enabled) noexcept;

/// Concurrent episode hosts a batched driver runs (the flush width upper
/// bound). Defaults to 32; RLATTACK_CRAFT_BATCH=<int greater than 1>
/// overrides. Batching is a pure arithmetic-intensity win, so the width is
/// deliberately decoupled from the machine's thread count (measured on the
/// 1-core reference box, 32 beats 16 on every fig5/fig6 row and widths
/// beyond ~32 are flat).
std::size_t craft_batch_width() noexcept;
void set_craft_batch_width(std::size_t width) noexcept;

/// Whether the episode drivers batch concurrent episodes' per-step
/// evaluation queries (victim policy actions, approximator agreement
/// probes) through the same rendezvous. On by default; RLATTACK_EVAL_BATCH
/// sets the process-initial value with the same grammar as
/// RLATTACK_CRAFT_BATCH: "0" disables (bit-identically falling back to the
/// per-worker single-row drivers), an integer > 1 both enables and
/// overrides the rendezvous width.
bool eval_batch_enabled() noexcept;
void set_eval_batch_enabled(bool enabled) noexcept;

/// Concurrent episode hosts an eval-batched driver runs (the rendezvous
/// width upper bound). Defaults to 32, same rationale as
/// craft_batch_width(); RLATTACK_EVAL_BATCH=<int greater than 1> overrides.
std::size_t eval_batch_width() noexcept;
void set_eval_batch_width(std::size_t width) noexcept;

/// Checked builds only: a participant parked in the rendezvous longer than
/// this interval (milliseconds) emits a "craft.batch.stall" instant trace
/// event and counter increment each time the interval elapses — a stalled
/// flush (e.g. an enrolled session that never probes) becomes visible in
/// the timeline instead of a silent hang. RLATTACK_TRACE_STALL_MS sets the
/// process-initial value; default 250, clamped to >= 1. Release builds
/// never arm the watchdog.
std::size_t stall_watchdog_ms() noexcept;
void set_stall_watchdog_ms(std::size_t ms) noexcept;

/// Gathers the per-iteration victim probes of M independent CraftContexts
/// into batched Seq2SeqModel calls and scatters the per-row results back.
/// The shared model is only ever touched inside a flush, by exactly one
/// thread at a time — host threads need no model clones. Each session's
/// query counters and metrics are preserved: CraftContext increments them
/// at submission exactly as the single-row path does.
class BatchedCraftPlanner {
 public:
  explicit BatchedCraftPlanner(seq2seq::Seq2SeqModel& model);
  BatchedCraftPlanner(const BatchedCraftPlanner&) = delete;
  BatchedCraftPlanner& operator=(const BatchedCraftPlanner&) = delete;
  ~BatchedCraftPlanner();

  seq2seq::Seq2SeqModel& model() noexcept { return model_; }

  /// RAII enrollment of one episode host in the rendezvous. Construct
  /// before the first probe, destroy (or retire()) as soon as no further
  /// probes can come — flushes wait for every enrolled participant.
  class Participant {
   public:
    explicit Participant(BatchedCraftPlanner& planner);
    Participant(const Participant&) = delete;
    Participant& operator=(const Participant&) = delete;
    ~Participant();

    /// Early exit from the rendezvous (idempotent): call when the session
    /// can no longer query the model, e.g. right after a single-step
    /// attack fires.
    void retire() noexcept;

   private:
    BatchedCraftPlanner& planner_;
    bool retired_ = false;
  };

  // --- Episode-batched evaluation substrate -------------------------------
  //
  // The craft rendezvous generalizes to any per-step query family whose
  // batched evaluation is per-row bit-identical to its serial form. Eval
  // probes carry an opaque observation row; the driver registers a handler
  // (typically rl::Agent::act_batch over the gathered rows) so this layer
  // stays free of rl types. Craft probes and eval probes share ONE enrolled
  // set and one rendezvous condition — pending craft + eval probes ==
  // enrolled participants — because an episode blocks on whichever query
  // its step needs next; two independent rendezvous over the same hosts
  // would deadlock.

  /// One pending evaluation query: an observation row in, an action out.
  /// `observation` aliases caller-owned storage that must stay alive until
  /// submit() returns; `action` is written by the flushing thread under the
  /// planner lock before `done` flips.
  struct EvalProbe {
    const nn::Tensor* observation = nullptr;  ///< [S...] agent-shaped row
    std::size_t action = 0;
    bool done = false;
  };

  /// Batched resolver for a flush's gathered eval probes: reads every
  /// probe's observation, writes every probe's action. Runs under the
  /// planner lock on the flushing host thread — single-threaded access to
  /// whatever model it wraps, exactly like the craft flush.
  using EvalHandler = std::function<void(std::span<EvalProbe* const>)>;

  /// Registers the eval resolver. Must be called before host threads start
  /// submitting; a planner without a handler rejects eval probes (checked).
  void set_victim_handler(EvalHandler handler);
  bool has_victim_handler() const noexcept;

  /// Blocks the calling participant until a flush answers the probe.
  void submit(EvalProbe& probe) RLATTACK_EXCLUDES(mu_);

 private:
  friend class CraftContext;

  enum class ProbeKind {
    kForward,        ///< logits only
    kCeGradient,     ///< d CE(logits[position], action) / d s_t
    kDiffGradient,   ///< d (z[p][a] - z[p][b]) / d s_t
    kAnchorGradient  ///< logits + d CE(logits[position], argmax) / d s_t
  };

  /// One pending model query. Input fields alias session-owned storage
  /// (CraftInputs, the context's encoding slot); result fields are written
  /// by the flushing thread under the planner lock before `done` flips.
  struct Probe {
    ProbeKind kind = ProbeKind::kForward;
    const CraftInputs* inputs = nullptr;
    seq2seq::HistoryEncoding* encoding = nullptr;  ///< context's cache slot
    bool* encoded = nullptr;                       ///< context's lazy flag
    const nn::Tensor* current_obs = nullptr;       ///< [1, F]
    std::size_t position = 0;
    std::size_t action_a = 0;  ///< CE target / diff "a"
    std::size_t action_b = 0;  ///< diff "b"
    nn::Tensor logits;         ///< [1, m, A] (kForward, kAnchorGradient)
    nn::Tensor grad;           ///< [1, F] (gradient kinds)
    bool done = false;
  };

  // Lock protocol, statically enforced (-Wthread-safety, config "tsa"):
  // the public rendezvous API acquires mu_ itself and therefore must be
  // entered lock-free (RLATTACK_EXCLUDES — a participant that re-entered
  // with mu_ held would self-deadlock the flush it is waiting on), while
  // flush_locked REQUIRES(mu_): the batched model pass runs inline under
  // the planner mutex, only ever reachable from the last-arriving
  // submitter or a completing retire — never from a pool worker, which
  // has no path to mu_ (submit() additionally asserts this in checked
  // builds).

  /// Blocks the calling participant until a flush answers the probe.
  void submit(Probe& probe) RLATTACK_EXCLUDES(mu_);
  void enroll() RLATTACK_EXCLUDES(mu_);
  void retire() noexcept RLATTACK_EXCLUDES(mu_);
  /// Executes every queued craft probe as one batched model pass. Caller
  /// holds mu_; all other enrolled participants are parked on cv_.
  void flush_locked() RLATTACK_REQUIRES(mu_);
  /// Completes the rendezvous: resolves the pending eval probes through the
  /// victim handler, then the pending craft probes through flush_locked(),
  /// and wakes every parked submitter.
  void flush_ready_locked() RLATTACK_REQUIRES(mu_);
  /// Total pending probes across both families.
  std::size_t pending_locked() const RLATTACK_REQUIRES(mu_) {
    return queue_.size() + eval_queue_.size();
  }

  seq2seq::Seq2SeqModel& model_;
  EvalHandler victim_handler_;  ///< set before hosts start, then read-only
  util::Mutex mu_;
  std::condition_variable cv_;
  /// Participants that may still probe; a flush fires when every one of
  /// them has a probe queued across the two families (pending_locked() ==
  /// enrolled_).
  std::size_t enrolled_ RLATTACK_GUARDED_BY(mu_) = 0;
  /// Pending craft probes in arrival order; cleared by flush.
  std::vector<Probe*> queue_ RLATTACK_GUARDED_BY(mu_);
  /// Pending evaluation probes in arrival order; cleared by flush.
  std::vector<EvalProbe*> eval_queue_ RLATTACK_GUARDED_BY(mu_);
};

}  // namespace rlattack::attack
