#include "rlattack/seq2seq/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace rlattack::seq2seq {

EpisodeDataset::EpisodeDataset(const std::vector<env::Episode>& episodes,
                               std::size_t n, std::size_t m,
                               std::size_t frame_size, std::size_t actions)
    : episodes_(&episodes),
      n_(n),
      m_(m),
      frame_size_(frame_size),
      actions_(actions) {
  if (n_ == 0 || m_ == 0)
    throw std::logic_error("EpisodeDataset: zero sequence length");
  if (frame_size_ == 0 || actions_ == 0)
    throw std::logic_error("EpisodeDataset: zero frame size or action count");
  for (std::size_t e = 0; e < episodes.size(); ++e) {
    const std::size_t len = episodes[e].steps.size();
    if (len < n_ + m_) continue;
    for (std::size_t t = n_; t + m_ <= len; ++t) refs_.push_back({e, t});
  }
}

void EpisodeDataset::copy_frame(std::size_t episode, std::size_t step,
                                std::span<float> dst) const {
  const nn::Tensor& obs = (*episodes_)[episode].steps[step].observation;
  if (obs.size() < frame_size_)
    throw std::logic_error("EpisodeDataset: observation smaller than frame");
  auto src = obs.data().subspan(obs.size() - frame_size_, frame_size_);
  std::copy(src.begin(), src.end(), dst.begin());
}

Batch EpisodeDataset::materialize(
    std::span<const std::size_t> indices) const {
  if (indices.empty())
    throw std::logic_error("EpisodeDataset::materialize: empty batch");
  const std::size_t batch = indices.size();
  Batch out;
  out.action_history = nn::Tensor({batch, n_, actions_});
  out.obs_history = nn::Tensor({batch, n_, frame_size_});
  out.current_obs = nn::Tensor({batch, frame_size_});
  out.targets.resize(batch * m_);

  for (std::size_t b = 0; b < batch; ++b) {
    if (indices[b] >= refs_.size())
      throw std::logic_error("EpisodeDataset::materialize: index out of range");
    const SampleRef ref = refs_[indices[b]];
    const auto& steps = (*episodes_)[ref.episode].steps;
    for (std::size_t i = 0; i < n_; ++i) {
      const std::size_t src_t = ref.t - n_ + i;
      const std::size_t action = steps[src_t].action;
      if (action >= actions_)
        throw std::logic_error("EpisodeDataset: action out of range");
      out.action_history.at3(b, i, action) = 1.0f;
      copy_frame(ref.episode, src_t,
                 out.obs_history.data().subspan(
                     (b * n_ + i) * frame_size_, frame_size_));
    }
    copy_frame(ref.episode, ref.t,
               out.current_obs.data().subspan(b * frame_size_, frame_size_));
    for (std::size_t j = 0; j < m_; ++j)
      out.targets[b * m_ + j] = steps[ref.t + j].action;
  }
  return out;
}

Batch EpisodeDataset::sample_batch(std::size_t batch_size,
                                   util::Rng& rng) const {
  if (refs_.empty())
    throw std::logic_error("EpisodeDataset::sample_batch: empty dataset");
  std::vector<std::size_t> indices(batch_size);
  for (std::size_t i = 0; i < batch_size; ++i)
    indices[i] = rng.uniform_int(refs_.size());
  return materialize(indices);
}

std::pair<std::vector<std::size_t>, std::vector<std::size_t>>
EpisodeDataset::split(double train_fraction, util::Rng& rng) const {
  if (train_fraction <= 0.0 || train_fraction >= 1.0)
    throw std::logic_error("EpisodeDataset::split: fraction out of (0, 1)");
  std::vector<std::size_t> order = rng.permutation(refs_.size());
  const std::size_t cut =
      static_cast<std::size_t>(train_fraction *
                               static_cast<double>(order.size()));
  std::vector<std::size_t> train(order.begin(), order.begin() + cut);
  std::vector<std::size_t> eval(order.begin() + cut, order.end());
  return {std::move(train), std::move(eval)};
}

}  // namespace rlattack::seq2seq
