#include "rlattack/seq2seq/model.hpp"

#include <limits>
#include <stdexcept>

#include "rlattack/obs/metrics.hpp"
#include "rlattack/util/check.hpp"

#include "rlattack/nn/activations.hpp"
#include "rlattack/nn/conv2d.hpp"
#include "rlattack/nn/dense.hpp"
#include "rlattack/nn/init.hpp"
#include "rlattack/nn/lstm.hpp"

namespace rlattack::seq2seq {

namespace {

/// Per-frame conv feature extractor for image heads; returns the feature
/// width. Scaled-down analogue of Table 2's conv stacks (16x16 frames vs
/// the paper's 84x84; DESIGN.md records the scaling).
std::size_t append_frame_conv(nn::Sequential& net,
                              const std::vector<std::size_t>& chw,
                              std::size_t out_width, util::Rng& rng) {
  const std::size_t c = chw[0], h = chw[1], w = chw[2];
  auto conv1 = std::make_unique<nn::Conv2D>(c, 8, 3, 2, 1, rng);
  const std::size_t h1 = conv1->out_extent(h), w1 = conv1->out_extent(w);
  auto conv2 = std::make_unique<nn::Conv2D>(8, 16, 3, 2, 1, rng);
  const std::size_t h2 = conv2->out_extent(h1), w2 = conv2->out_extent(w1);
  net.add(std::move(conv1));
  net.emplace<nn::ReLU>();
  net.add(std::move(conv2));
  net.emplace<nn::ReLU>();
  net.emplace<nn::Flatten>();
  net.emplace<nn::Dense>(16 * h2 * w2, out_width, rng, true);
  net.emplace<nn::ReLU>();
  return out_width;
}

}  // namespace

Seq2SeqModel::Seq2SeqModel(Seq2SeqConfig config, std::uint64_t seed)
    : config_(config), seed_(seed) {
  if (config_.actions == 0) throw std::logic_error("Seq2SeqModel: no actions");
  if (config_.input_steps == 0 || config_.output_steps == 0)
    throw std::logic_error("Seq2SeqModel: zero sequence length");
  util::Rng rng(seed);
  const std::size_t lstm_h = config_.lstm_hidden;
  const std::size_t embed = config_.embed;

  // Action head (Table 2: "1-2 LSTM, 1 Dense"): one-hot action sequence.
  action_head_.emplace<nn::Lstm>(config_.actions, lstm_h, true, rng)
      .emplace<nn::Lstm>(lstm_h, lstm_h, false, rng)
      .emplace<nn::Dense>(lstm_h, embed, rng);

  // Observation head.
  if (config_.is_image()) {
    // Per-frame conv features, applied across time, then the LSTM stack
    // ("6 Conv, 3 LSTM, 2 Dense" scaled to small frames).
    auto frame_net = std::make_unique<nn::Sequential>();
    util::Rng frame_rng = rng.split();
    const std::size_t feat =
        append_frame_conv(*frame_net, config_.frame_shape, 64, frame_rng);
    obs_head_.emplace<nn::TimeDistributed>(std::move(frame_net),
                                           config_.frame_shape);
    obs_head_.emplace<nn::Lstm>(feat, lstm_h, true, rng)
        .emplace<nn::Lstm>(lstm_h, lstm_h, false, rng)
        .emplace<nn::Dense>(lstm_h, embed, rng);
  } else {
    // Vector observations ("2 LSTM, 1 Dense").
    obs_head_.emplace<nn::Lstm>(config_.frame_size(), lstm_h, true, rng)
        .emplace<nn::Lstm>(lstm_h, lstm_h, false, rng)
        .emplace<nn::Dense>(lstm_h, embed, rng);
  }

  // Current-observation head ("1 Dense" / "5 Conv, 2 Dense" scaled).
  if (config_.is_image()) {
    current_head_.emplace<nn::Reshape>(config_.frame_shape);
    util::Rng cur_rng = rng.split();
    append_frame_conv(current_head_, config_.frame_shape, 64, cur_rng);
    current_head_.emplace<nn::Dense>(64, embed, cur_rng);
  } else {
    current_head_.emplace<nn::Dense>(config_.frame_size(), embed, rng);
  }

  // Decoder: RepeatVector happens in forward; then LSTM + per-step Dense.
  decoder_.emplace<nn::Lstm>(embed, embed, true, rng);
  auto step_dense = std::make_unique<nn::Sequential>();
  step_dense->emplace<nn::Dense>(embed, config_.actions, rng);
  decoder_.emplace<nn::TimeDistributed>(std::move(step_dense),
                                        std::vector<std::size_t>{embed});

  if (config_.use_attention) {
    // Encoder over the observation history (sequence outputs kept).
    if (config_.is_image()) {
      auto frame_net = std::make_unique<nn::Sequential>();
      util::Rng enc_rng = rng.split();
      const std::size_t feat =
          append_frame_conv(*frame_net, config_.frame_shape, 64, enc_rng);
      obs_encoder_.emplace<nn::TimeDistributed>(std::move(frame_net),
                                                config_.frame_shape);
      obs_encoder_.emplace<nn::Lstm>(feat, lstm_h, true, rng);
    } else {
      obs_encoder_.emplace<nn::Lstm>(config_.frame_size(), lstm_h, true, rng);
    }
    decoder_lstm_.emplace<nn::Lstm>(embed, embed, true, rng);
    auto out_net = std::make_unique<nn::Sequential>();
    out_net->emplace<nn::Dense>(embed + lstm_h, config_.actions, rng);
    output_dense_.emplace<nn::TimeDistributed>(
        std::move(out_net), std::vector<std::size_t>{embed + lstm_h});
    attn_w_ = nn::Tensor({embed, lstm_h});
    attn_w_grad_ = nn::Tensor({embed, lstm_h});
    xavier_uniform(attn_w_, lstm_h, embed, rng);
  }
}

nn::Tensor Seq2SeqModel::forward(const nn::Tensor& action_history,
                                 const nn::Tensor& obs_history,
                                 const nn::Tensor& current_obs) {
  static rlattack::obs::SpanStat& span_stat =
      rlattack::obs::MetricsRegistry::global().span("seq2seq.forward");
  rlattack::obs::Span span(span_stat);
  const std::size_t n = config_.input_steps;
  const std::size_t frame = config_.frame_size();
  if (action_history.rank() != 3 || action_history.dim(1) != n ||
      action_history.dim(2) != config_.actions)
    throw std::logic_error("Seq2SeqModel::forward: bad action history " +
                           action_history.shape_string());
  if (obs_history.rank() != 3 || obs_history.dim(1) != n ||
      obs_history.dim(2) != frame)
    throw std::logic_error("Seq2SeqModel::forward: bad observation history " +
                           obs_history.shape_string());
  if (current_obs.rank() != 2 || current_obs.dim(1) != frame ||
      current_obs.dim(0) != action_history.dim(0))
    throw std::logic_error("Seq2SeqModel::forward: bad current observation " +
                           current_obs.shape_string());
  cached_batch_ = action_history.dim(0);
  if constexpr (util::kCheckedBuild) {
    RLATTACK_CHECK(util::all_finite(action_history.data()),
                   "Seq2SeqModel::forward: non-finite action history");
    RLATTACK_CHECK(util::all_finite(obs_history.data()),
                   "Seq2SeqModel::forward: non-finite observation history");
    RLATTACK_CHECK(util::all_finite(current_obs.data()),
                   "Seq2SeqModel::forward: non-finite current observation");
  }
  if (config_.use_attention)
    return forward_attention(action_history, obs_history, current_obs);

  nn::Tensor embedding = action_head_.forward(action_history);  // [B, E]
  embedding += obs_head_.forward(obs_history);
  embedding += current_head_.forward(current_obs);

  // RepeatVector: duplicate the summed embedding m times (Figure 1).
  const std::size_t m = config_.output_steps;
  const std::size_t e = config_.embed;
  nn::Tensor repeated({cached_batch_, m, e});
  for (std::size_t b = 0; b < cached_batch_; ++b)
    for (std::size_t t = 0; t < m; ++t)
      for (std::size_t k = 0; k < e; ++k)
        repeated.at3(b, t, k) = embedding.at2(b, k);

  return decoder_.forward(repeated);  // [B, m, A]
}

Seq2SeqModel::InputGrads Seq2SeqModel::backward(const nn::Tensor& grad_logits) {
  static rlattack::obs::SpanStat& span_stat =
      rlattack::obs::MetricsRegistry::global().span("seq2seq.backward");
  rlattack::obs::Span span(span_stat);
  const std::size_t m = config_.output_steps;
  const std::size_t e = config_.embed;
  if (grad_logits.rank() != 3 || grad_logits.dim(0) != cached_batch_ ||
      grad_logits.dim(1) != m || grad_logits.dim(2) != config_.actions)
    throw std::logic_error("Seq2SeqModel::backward: bad gradient shape " +
                           grad_logits.shape_string());
  if constexpr (util::kCheckedBuild) {
    RLATTACK_CHECK(util::all_finite(grad_logits.data()),
                   "Seq2SeqModel::backward: non-finite logits gradient");
  }
  if (config_.use_attention) {
    InputGrads grads = backward_attention(grad_logits);
    if constexpr (util::kCheckedBuild) check_input_grads(grads);
    return grads;
  }

  nn::Tensor grad_repeated = decoder_.backward(grad_logits);  // [B, m, E]
  // Duplication backward: sum gradients across the m copies.
  nn::Tensor grad_embedding({cached_batch_, e});
  for (std::size_t b = 0; b < cached_batch_; ++b)
    for (std::size_t t = 0; t < m; ++t)
      for (std::size_t k = 0; k < e; ++k)
        grad_embedding.at2(b, k) += grad_repeated.at3(b, t, k);

  // Summation aggregation backward: each head receives the same gradient.
  InputGrads grads;
  grads.action_history = action_head_.backward(grad_embedding);
  grads.obs_history = obs_head_.backward(grad_embedding);
  grads.current_obs = current_head_.backward(grad_embedding);
  if constexpr (util::kCheckedBuild) check_input_grads(grads);
  return grads;
}

void Seq2SeqModel::check_input_grads(const InputGrads& grads) const {
  // The FGSM/PGD/CW gradient path terminates here: a NaN or Inf that leaks
  // into any input gradient silently corrupts every subsequent attack step.
  RLATTACK_CHECK(util::all_finite(grads.action_history.data()),
                 "Seq2SeqModel::backward: non-finite action-history gradient");
  RLATTACK_CHECK(util::all_finite(grads.obs_history.data()),
                 "Seq2SeqModel::backward: non-finite obs-history gradient");
  RLATTACK_CHECK(util::all_finite(grads.current_obs.data()),
                 "Seq2SeqModel::backward: non-finite current-obs gradient");
  if (config_.use_attention) {
    RLATTACK_CHECK(util::all_finite(attn_w_grad_.data()),
                   "Seq2SeqModel::backward: non-finite attention-weight grad");
  }
}

nn::Tensor Seq2SeqModel::forward_attention(const nn::Tensor& action_history,
                                           const nn::Tensor& obs_history,
                                           const nn::Tensor& current_obs) {
  const std::size_t b_count = cached_batch_;
  const std::size_t n = config_.input_steps;
  const std::size_t m = config_.output_steps;
  const std::size_t e = config_.embed;
  const std::size_t h = config_.lstm_hidden;

  // Encoder states over the observation history.
  cached_encoder_ = obs_encoder_.forward(obs_history);  // [B, n, H]

  // Keys K[b, i, :] = W_a * E[b, i, :]  (Luong "general" score).
  cached_keys_ = nn::Tensor({b_count, n, e});
  for (std::size_t b = 0; b < b_count; ++b)
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t k = 0; k < e; ++k) {
        float acc = 0.0f;
        for (std::size_t hh = 0; hh < h; ++hh)
          acc += attn_w_[k * h + hh] * cached_encoder_.at3(b, i, hh);
        cached_keys_.at3(b, i, k) = acc;
      }

  // Decoder input: summed action + current-observation embeddings,
  // repeated m times (the observation history enters via attention).
  nn::Tensor embedding = action_head_.forward(action_history);
  embedding += current_head_.forward(current_obs);
  nn::Tensor repeated({b_count, m, e});
  for (std::size_t b = 0; b < b_count; ++b)
    for (std::size_t t = 0; t < m; ++t)
      for (std::size_t k = 0; k < e; ++k)
        repeated.at3(b, t, k) = embedding.at2(b, k);
  cached_decoder_ = decoder_lstm_.forward(repeated);  // [B, m, E]

  // Attention weights and contexts.
  cached_alpha_ = nn::Tensor({b_count, m, n});
  nn::Tensor concat({b_count, m, e + h});
  for (std::size_t b = 0; b < b_count; ++b) {
    for (std::size_t t = 0; t < m; ++t) {
      // scores_i = D_t . K_i, softmaxed over i.
      float mx = -std::numeric_limits<float>::infinity();
      std::vector<float> scores(n);
      for (std::size_t i = 0; i < n; ++i) {
        float s = 0.0f;
        for (std::size_t k = 0; k < e; ++k)
          s += cached_decoder_.at3(b, t, k) * cached_keys_.at3(b, i, k);
        scores[i] = s;
        mx = std::max(mx, s);
      }
      float sum = 0.0f;
      for (std::size_t i = 0; i < n; ++i) {
        scores[i] = std::exp(scores[i] - mx);
        sum += scores[i];
      }
      for (std::size_t i = 0; i < n; ++i)
        cached_alpha_.at3(b, t, i) = scores[i] / sum;
      // Context c_t = sum_i alpha_i E_i; output row = [D_t ; c_t].
      for (std::size_t k = 0; k < e; ++k)
        concat[(b * m + t) * (e + h) + k] = cached_decoder_.at3(b, t, k);
      for (std::size_t hh = 0; hh < h; ++hh) {
        float c = 0.0f;
        for (std::size_t i = 0; i < n; ++i)
          c += cached_alpha_.at3(b, t, i) * cached_encoder_.at3(b, i, hh);
        concat[(b * m + t) * (e + h) + e + hh] = c;
      }
    }
  }
  return output_dense_.forward(concat);  // [B, m, A]
}

Seq2SeqModel::InputGrads Seq2SeqModel::backward_attention(
    const nn::Tensor& grad_logits) {
  const std::size_t b_count = cached_batch_;
  const std::size_t n = config_.input_steps;
  const std::size_t m = config_.output_steps;
  const std::size_t e = config_.embed;
  const std::size_t h = config_.lstm_hidden;

  nn::Tensor grad_concat = output_dense_.backward(grad_logits);  // [B,m,E+H]

  nn::Tensor grad_decoder({b_count, m, e});
  nn::Tensor grad_encoder({b_count, n, h});
  nn::Tensor grad_keys({b_count, n, e});

  for (std::size_t b = 0; b < b_count; ++b) {
    for (std::size_t t = 0; t < m; ++t) {
      const float* gz = grad_concat.raw() + (b * m + t) * (e + h);
      // Direct decoder-state gradient from the concat split.
      for (std::size_t k = 0; k < e; ++k)
        grad_decoder.at3(b, t, k) += gz[k];
      const float* gc = gz + e;  // d loss / d context [H]

      // d alpha_i = gc . E_i ; encoder grad from the context sum.
      std::vector<float> dalpha(n);
      for (std::size_t i = 0; i < n; ++i) {
        float da = 0.0f;
        const float alpha = cached_alpha_.at3(b, t, i);
        for (std::size_t hh = 0; hh < h; ++hh) {
          da += gc[hh] * cached_encoder_.at3(b, i, hh);
          grad_encoder.at3(b, i, hh) += alpha * gc[hh];
        }
        dalpha[i] = da;
      }
      // Softmax backward: ds_i = alpha_i * (dalpha_i - sum_j alpha_j dalpha_j).
      float weighted = 0.0f;
      for (std::size_t i = 0; i < n; ++i)
        weighted += cached_alpha_.at3(b, t, i) * dalpha[i];
      for (std::size_t i = 0; i < n; ++i) {
        const float ds = cached_alpha_.at3(b, t, i) * (dalpha[i] - weighted);
        if (ds == 0.0f) continue;
        // score = D_t . K_i.
        for (std::size_t k = 0; k < e; ++k) {
          grad_decoder.at3(b, t, k) += ds * cached_keys_.at3(b, i, k);
          grad_keys.at3(b, i, k) += ds * cached_decoder_.at3(b, t, k);
        }
      }
    }
  }

  // K = E W_a^T: accumulate W_a grads and the encoder grad through the keys.
  for (std::size_t b = 0; b < b_count; ++b)
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t k = 0; k < e; ++k) {
        const float gk = grad_keys.at3(b, i, k);
        if (gk == 0.0f) continue;
        for (std::size_t hh = 0; hh < h; ++hh) {
          attn_w_grad_[k * h + hh] += gk * cached_encoder_.at3(b, i, hh);
          grad_encoder.at3(b, i, hh) += gk * attn_w_[k * h + hh];
        }
      }

  InputGrads grads;
  grads.obs_history = obs_encoder_.backward(grad_encoder);

  nn::Tensor grad_repeated = decoder_lstm_.backward(grad_decoder);
  nn::Tensor grad_embedding({b_count, e});
  for (std::size_t b = 0; b < b_count; ++b)
    for (std::size_t t = 0; t < m; ++t)
      for (std::size_t k = 0; k < e; ++k)
        grad_embedding.at2(b, k) += grad_repeated.at3(b, t, k);
  grads.action_history = action_head_.backward(grad_embedding);
  grads.current_obs = current_head_.backward(grad_embedding);
  return grads;
}

std::vector<nn::Param> Seq2SeqModel::params() {
  std::vector<nn::Param> out;
  auto take = [&out](nn::Sequential& part, const std::string& prefix) {
    for (nn::Param p : part.params()) {
      p.name = prefix + "." + p.name;
      out.push_back(p);
    }
  };
  // Order matters: checkpoints store parameters positionally, so the
  // non-attention layout must stay exactly as first released.
  take(action_head_, "action_head");
  if (!config_.use_attention) {
    take(obs_head_, "obs_head");
    take(current_head_, "current_head");
    take(decoder_, "decoder");
  } else {
    take(current_head_, "current_head");
    take(obs_encoder_, "obs_encoder");
    take(decoder_lstm_, "decoder_lstm");
    take(output_dense_, "output_dense");
    out.push_back({&attn_w_, &attn_w_grad_, "attention.w"});
  }
  return out;
}

void Seq2SeqModel::zero_grad() {
  for (nn::Param& p : params()) p.grad->zero();
}

std::unique_ptr<Seq2SeqModel> Seq2SeqModel::clone() {
  auto copy = std::make_unique<Seq2SeqModel>(config_, seed_);
  nn::copy_parameters(copy->params(), params());
  return copy;
}

Seq2SeqConfig make_cartpole_seq2seq_config(std::size_t input_steps,
                                           std::size_t output_steps) {
  Seq2SeqConfig c;
  c.input_steps = input_steps;
  c.output_steps = output_steps;
  c.actions = 2;
  c.frame_shape = {4};
  c.embed = 48;
  c.lstm_hidden = 32;
  return c;
}

Seq2SeqConfig make_atari_seq2seq_config(std::vector<std::size_t> frame_shape,
                                        std::size_t actions,
                                        std::size_t input_steps,
                                        std::size_t output_steps) {
  Seq2SeqConfig c;
  c.input_steps = input_steps;
  c.output_steps = output_steps;
  c.actions = actions;
  c.frame_shape = std::move(frame_shape);
  c.embed = 64;
  c.lstm_hidden = 48;
  return c;
}

}  // namespace rlattack::seq2seq
