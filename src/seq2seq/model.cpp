#include "rlattack/seq2seq/model.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "rlattack/obs/metrics.hpp"
#include "rlattack/util/check.hpp"
#include "rlattack/util/env.hpp"

#include "rlattack/nn/activations.hpp"
#include "rlattack/nn/conv2d.hpp"
#include "rlattack/nn/dense.hpp"
#include "rlattack/nn/init.hpp"
#include "rlattack/nn/kernels/gemm.hpp"
#include "rlattack/nn/lstm.hpp"

namespace rlattack::seq2seq {

namespace {

using nn::kernels::sgemm;
using nn::kernels::Trans;

std::atomic<bool> g_attention_gemm = [] {
  return !util::env::is_zero(util::env::Var::kAttnGemm);
}();

std::atomic<std::uint64_t> g_model_constructions{0};

}  // namespace

bool attention_gemm_enabled() noexcept {
  return g_attention_gemm.load(std::memory_order_relaxed);
}

void set_attention_gemm_enabled(bool enabled) noexcept {
  g_attention_gemm.store(enabled, std::memory_order_relaxed);
}

namespace {

/// Per-frame conv feature extractor for image heads; returns the feature
/// width. Scaled-down analogue of Table 2's conv stacks (16x16 frames vs
/// the paper's 84x84; DESIGN.md records the scaling).
std::size_t append_frame_conv(nn::Sequential& net,
                              const std::vector<std::size_t>& chw,
                              std::size_t out_width, util::Rng& rng) {
  const std::size_t c = chw[0], h = chw[1], w = chw[2];
  auto conv1 = std::make_unique<nn::Conv2D>(c, 8, 3, 2, 1, rng);
  const std::size_t h1 = conv1->out_extent(h), w1 = conv1->out_extent(w);
  auto conv2 = std::make_unique<nn::Conv2D>(8, 16, 3, 2, 1, rng);
  const std::size_t h2 = conv2->out_extent(h1), w2 = conv2->out_extent(w1);
  net.add(std::move(conv1));
  net.emplace<nn::ReLU>();
  net.add(std::move(conv2));
  net.emplace<nn::ReLU>();
  net.emplace<nn::Flatten>();
  net.emplace<nn::Dense>(16 * h2 * w2, out_width, rng, true);
  net.emplace<nn::ReLU>();
  return out_width;
}

}  // namespace

std::uint64_t Seq2SeqModel::constructions() noexcept {
  return g_model_constructions.load(std::memory_order_relaxed);
}

Seq2SeqModel::Seq2SeqModel(Seq2SeqConfig config, std::uint64_t seed)
    : config_(config), seed_(seed) {
  g_model_constructions.fetch_add(1, std::memory_order_relaxed);
  if (config_.actions == 0) throw std::logic_error("Seq2SeqModel: no actions");
  if (config_.input_steps == 0 || config_.output_steps == 0)
    throw std::logic_error("Seq2SeqModel: zero sequence length");
  util::Rng rng(seed);
  const std::size_t lstm_h = config_.lstm_hidden;
  const std::size_t embed = config_.embed;

  // Action head (Table 2: "1-2 LSTM, 1 Dense"): one-hot action sequence.
  action_head_.emplace<nn::Lstm>(config_.actions, lstm_h, true, rng)
      .emplace<nn::Lstm>(lstm_h, lstm_h, false, rng)
      .emplace<nn::Dense>(lstm_h, embed, rng);

  // Observation head.
  if (config_.is_image()) {
    // Per-frame conv features, applied across time, then the LSTM stack
    // ("6 Conv, 3 LSTM, 2 Dense" scaled to small frames).
    auto frame_net = std::make_unique<nn::Sequential>();
    util::Rng frame_rng = rng.split();
    const std::size_t feat =
        append_frame_conv(*frame_net, config_.frame_shape, 64, frame_rng);
    obs_head_.emplace<nn::TimeDistributed>(std::move(frame_net),
                                           config_.frame_shape);
    obs_head_.emplace<nn::Lstm>(feat, lstm_h, true, rng)
        .emplace<nn::Lstm>(lstm_h, lstm_h, false, rng)
        .emplace<nn::Dense>(lstm_h, embed, rng);
  } else {
    // Vector observations ("2 LSTM, 1 Dense").
    obs_head_.emplace<nn::Lstm>(config_.frame_size(), lstm_h, true, rng)
        .emplace<nn::Lstm>(lstm_h, lstm_h, false, rng)
        .emplace<nn::Dense>(lstm_h, embed, rng);
  }

  // Current-observation head ("1 Dense" / "5 Conv, 2 Dense" scaled).
  if (config_.is_image()) {
    current_head_.emplace<nn::Reshape>(config_.frame_shape);
    util::Rng cur_rng = rng.split();
    append_frame_conv(current_head_, config_.frame_shape, 64, cur_rng);
    current_head_.emplace<nn::Dense>(64, embed, cur_rng);
  } else {
    current_head_.emplace<nn::Dense>(config_.frame_size(), embed, rng);
  }

  // Decoder: RepeatVector happens in forward; then LSTM + per-step Dense.
  decoder_.emplace<nn::Lstm>(embed, embed, true, rng);
  auto step_dense = std::make_unique<nn::Sequential>();
  step_dense->emplace<nn::Dense>(embed, config_.actions, rng);
  decoder_.emplace<nn::TimeDistributed>(std::move(step_dense),
                                        std::vector<std::size_t>{embed});

  if (config_.use_attention) {
    // Encoder over the observation history (sequence outputs kept).
    if (config_.is_image()) {
      auto frame_net = std::make_unique<nn::Sequential>();
      util::Rng enc_rng = rng.split();
      const std::size_t feat =
          append_frame_conv(*frame_net, config_.frame_shape, 64, enc_rng);
      obs_encoder_.emplace<nn::TimeDistributed>(std::move(frame_net),
                                                config_.frame_shape);
      obs_encoder_.emplace<nn::Lstm>(feat, lstm_h, true, rng);
    } else {
      obs_encoder_.emplace<nn::Lstm>(config_.frame_size(), lstm_h, true, rng);
    }
    decoder_lstm_.emplace<nn::Lstm>(embed, embed, true, rng);
    auto out_net = std::make_unique<nn::Sequential>();
    out_net->emplace<nn::Dense>(embed + lstm_h, config_.actions, rng);
    output_dense_.emplace<nn::TimeDistributed>(
        std::move(out_net), std::vector<std::size_t>{embed + lstm_h});
    attn_w_ = nn::Tensor({embed, lstm_h});
    attn_w_grad_ = nn::Tensor({embed, lstm_h});
    xavier_uniform(attn_w_, lstm_h, embed, rng);
  }
}

nn::Tensor Seq2SeqModel::forward(const nn::Tensor& action_history,
                                 const nn::Tensor& obs_history,
                                 const nn::Tensor& current_obs) {
  static rlattack::obs::SpanStat& span_stat =
      rlattack::obs::MetricsRegistry::global().span("seq2seq.forward");
  rlattack::obs::Span span(span_stat);
  const std::size_t n = config_.input_steps;
  const std::size_t frame = config_.frame_size();
  if (action_history.rank() != 3 || action_history.dim(1) != n ||
      action_history.dim(2) != config_.actions)
    throw std::logic_error("Seq2SeqModel::forward: bad action history " +
                           action_history.shape_string());
  if (obs_history.rank() != 3 || obs_history.dim(1) != n ||
      obs_history.dim(2) != frame)
    throw std::logic_error("Seq2SeqModel::forward: bad observation history " +
                           obs_history.shape_string());
  if (current_obs.rank() != 2 || current_obs.dim(1) != frame ||
      current_obs.dim(0) != action_history.dim(0))
    throw std::logic_error("Seq2SeqModel::forward: bad current observation " +
                           current_obs.shape_string());
  cached_batch_ = action_history.dim(0);
  active_cache_ = nullptr;  // this forward pairs with the full backward
  active_batch_ = 0;
  if constexpr (util::kCheckedBuild) {
    RLATTACK_CHECK(util::all_finite(action_history.data()),
                   "Seq2SeqModel::forward: non-finite action history");
    RLATTACK_CHECK(util::all_finite(obs_history.data()),
                   "Seq2SeqModel::forward: non-finite observation history");
    RLATTACK_CHECK(util::all_finite(current_obs.data()),
                   "Seq2SeqModel::forward: non-finite current observation");
  }
  if (config_.use_attention)
    return forward_attention(action_history, obs_history, current_obs);

  nn::Tensor embedding = action_head_.forward(action_history);  // [B, E]
  embedding += obs_head_.forward(obs_history);
  embedding += current_head_.forward(current_obs);

  return decoder_.forward(repeat_embedding(embedding));  // [B, m, A]
}

Seq2SeqModel::InputGrads Seq2SeqModel::backward(const nn::Tensor& grad_logits) {
  static rlattack::obs::SpanStat& span_stat =
      rlattack::obs::MetricsRegistry::global().span("seq2seq.backward");
  rlattack::obs::Span span(span_stat);
  const std::size_t m = config_.output_steps;
  if (grad_logits.rank() != 3 || grad_logits.dim(0) != cached_batch_ ||
      grad_logits.dim(1) != m || grad_logits.dim(2) != config_.actions)
    throw std::logic_error("Seq2SeqModel::backward: bad gradient shape " +
                           grad_logits.shape_string());
  if constexpr (util::kCheckedBuild) {
    RLATTACK_CHECK(util::all_finite(grad_logits.data()),
                   "Seq2SeqModel::backward: non-finite logits gradient");
    RLATTACK_CHECK(active_cache_ == nullptr,
                   "Seq2SeqModel::backward: last forward was forward_cached; "
                   "use backward_to_current");
    RLATTACK_CHECK(active_batch_ == 0,
                   "Seq2SeqModel::backward: last forward was "
                   "forward_cached_batch; use backward_to_current_batch");
  }
  if (config_.use_attention) {
    InputGrads grads = backward_attention(grad_logits);
    if constexpr (util::kCheckedBuild) check_input_grads(grads);
    return grads;
  }

  nn::Tensor grad_repeated = decoder_.backward(grad_logits);  // [B, m, E]
  // Duplication backward: sum gradients across the m copies.
  nn::Tensor grad_embedding = sum_over_steps(grad_repeated);

  // Summation aggregation backward: each head receives the same gradient.
  InputGrads grads;
  grads.action_history = action_head_.backward(grad_embedding);
  grads.obs_history = obs_head_.backward(grad_embedding);
  grads.current_obs = current_head_.backward(grad_embedding);
  if constexpr (util::kCheckedBuild) check_input_grads(grads);
  return grads;
}

void Seq2SeqModel::check_input_grads(const InputGrads& grads) const {
  // The FGSM/PGD/CW gradient path terminates here: a NaN or Inf that leaks
  // into any input gradient silently corrupts every subsequent attack step.
  RLATTACK_CHECK(util::all_finite(grads.action_history.data()),
                 "Seq2SeqModel::backward: non-finite action-history gradient");
  RLATTACK_CHECK(util::all_finite(grads.obs_history.data()),
                 "Seq2SeqModel::backward: non-finite obs-history gradient");
  RLATTACK_CHECK(util::all_finite(grads.current_obs.data()),
                 "Seq2SeqModel::backward: non-finite current-obs gradient");
  if (config_.use_attention) {
    RLATTACK_CHECK(util::all_finite(attn_w_grad_.data()),
                   "Seq2SeqModel::backward: non-finite attention-weight grad");
  }
}

nn::Tensor Seq2SeqModel::repeat_embedding(const nn::Tensor& embedding) const {
  // RepeatVector: duplicate the summed embedding m times (Figure 1).
  const std::size_t b_count = embedding.dim(0);
  const std::size_t m = config_.output_steps;
  const std::size_t e = config_.embed;
  nn::Tensor repeated({b_count, m, e});
  for (std::size_t b = 0; b < b_count; ++b)
    for (std::size_t t = 0; t < m; ++t)
      for (std::size_t k = 0; k < e; ++k)
        repeated.at3(b, t, k) = embedding.at2(b, k);
  return repeated;
}

nn::Tensor Seq2SeqModel::sum_over_steps(const nn::Tensor& grad_repeated) const {
  const std::size_t b_count = grad_repeated.dim(0);
  const std::size_t m = config_.output_steps;
  const std::size_t e = config_.embed;
  nn::Tensor grad_embedding({b_count, e});
  for (std::size_t b = 0; b < b_count; ++b)
    for (std::size_t t = 0; t < m; ++t)
      for (std::size_t k = 0; k < e; ++k)
        grad_embedding.at2(b, k) += grad_repeated.at3(b, t, k);
  return grad_embedding;
}

nn::Tensor Seq2SeqModel::project_keys(const nn::Tensor& encoder) const {
  // Keys K[b, i, :] = W_a * E[b, i, :]  (Luong "general" score).
  const std::size_t b_count = encoder.dim(0);
  const std::size_t n = encoder.dim(1);
  const std::size_t e = config_.embed;
  const std::size_t h = config_.lstm_hidden;
  nn::Tensor keys({b_count, n, e});
  if (attention_gemm_enabled()) {
    // One GEMM over the flattened [B*n, H] encoder states: K = E W_a^T.
    sgemm(Trans::kNo, Trans::kYes, b_count * n, e, h, encoder.raw(), h,
          attn_w_.raw(), h, keys.raw(), e, false);
    return keys;
  }
  for (std::size_t b = 0; b < b_count; ++b)
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t k = 0; k < e; ++k) {
        float acc = 0.0f;
        for (std::size_t hh = 0; hh < h; ++hh)
          acc += attn_w_[k * h + hh] * encoder.at3(b, i, hh);
        keys.at3(b, i, k) = acc;
      }
  return keys;
}

nn::Tensor Seq2SeqModel::decode_attention(const nn::Tensor& embedding,
                                          const nn::Tensor& encoder,
                                          const nn::Tensor& keys) {
  const std::size_t b_count = embedding.dim(0);
  const std::size_t n = encoder.dim(1);
  const std::size_t m = config_.output_steps;
  const std::size_t e = config_.embed;
  const std::size_t h = config_.lstm_hidden;

  cached_decoder_ = decoder_lstm_.forward(repeat_embedding(embedding));

  // Attention weights and contexts.
  cached_alpha_ = nn::Tensor({b_count, m, n});
  nn::Tensor concat({b_count, m, e + h});
  if (attention_gemm_enabled()) {
    const std::size_t eh = e + h;
    for (std::size_t b = 0; b < b_count; ++b) {
      const float* dec_b = cached_decoder_.raw() + b * m * e;
      const float* enc_b = encoder.raw() + b * n * h;
      const float* key_b = keys.raw() + b * n * e;
      float* alpha_b = cached_alpha_.raw() + b * m * n;
      float* concat_b = concat.raw() + b * m * eh;
      // scores[t, i] = D_t . K_i, written straight into the alpha tensor and
      // softmaxed in place per row.
      sgemm(Trans::kNo, Trans::kYes, m, n, e, dec_b, e, key_b, e, alpha_b, n,
            false);
      for (std::size_t t = 0; t < m; ++t) {
        float* row = alpha_b + t * n;
        float mx = -std::numeric_limits<float>::infinity();
        for (std::size_t i = 0; i < n; ++i) mx = std::max(mx, row[i]);
        float sum = 0.0f;
        for (std::size_t i = 0; i < n; ++i) {
          row[i] = std::exp(row[i] - mx);
          sum += row[i];
        }
        for (std::size_t i = 0; i < n; ++i) row[i] /= sum;
        // Concat left half: the decoder state itself.
        std::memcpy(concat_b + t * eh, dec_b + t * e, e * sizeof(float));
      }
      // Contexts c_t = sum_i alpha_i E_i fill the right h columns of the
      // concat rows (ldc = e + h places them after each D_t).
      sgemm(Trans::kNo, Trans::kNo, m, h, n, alpha_b, n, enc_b, h,
            concat_b + e, eh, false);
    }
    return output_dense_.forward(concat);  // [B, m, A]
  }
  attn_scores_scratch_.resize(n);
  float* const scores = attn_scores_scratch_.data();
  for (std::size_t b = 0; b < b_count; ++b) {
    for (std::size_t t = 0; t < m; ++t) {
      // scores_i = D_t . K_i, softmaxed over i.
      float mx = -std::numeric_limits<float>::infinity();
      for (std::size_t i = 0; i < n; ++i) {
        float s = 0.0f;
        for (std::size_t k = 0; k < e; ++k)
          s += cached_decoder_.at3(b, t, k) * keys.at3(b, i, k);
        scores[i] = s;
        mx = std::max(mx, s);
      }
      float sum = 0.0f;
      for (std::size_t i = 0; i < n; ++i) {
        scores[i] = std::exp(scores[i] - mx);
        sum += scores[i];
      }
      for (std::size_t i = 0; i < n; ++i)
        cached_alpha_.at3(b, t, i) = scores[i] / sum;
      // Context c_t = sum_i alpha_i E_i; output row = [D_t ; c_t].
      for (std::size_t k = 0; k < e; ++k)
        concat[(b * m + t) * (e + h) + k] = cached_decoder_.at3(b, t, k);
      for (std::size_t hh = 0; hh < h; ++hh) {
        float c = 0.0f;
        for (std::size_t i = 0; i < n; ++i)
          c += cached_alpha_.at3(b, t, i) * encoder.at3(b, i, hh);
        concat[(b * m + t) * (e + h) + e + hh] = c;
      }
    }
  }
  return output_dense_.forward(concat);  // [B, m, A]
}

nn::Tensor Seq2SeqModel::forward_attention(const nn::Tensor& action_history,
                                           const nn::Tensor& obs_history,
                                           const nn::Tensor& current_obs) {
  // Encoder states over the observation history, and their key projection.
  cached_encoder_ = obs_encoder_.forward(obs_history);  // [B, n, H]
  cached_keys_ = project_keys(cached_encoder_);         // [B, n, E]

  // Decoder input: summed action + current-observation embeddings,
  // repeated m times (the observation history enters via attention).
  nn::Tensor embedding = action_head_.forward(action_history);
  embedding += current_head_.forward(current_obs);
  return decode_attention(embedding, cached_encoder_, cached_keys_);
}

nn::Tensor Seq2SeqModel::attention_mix_backward(const nn::Tensor& grad_concat,
                                                const nn::Tensor& encoder,
                                                const nn::Tensor& keys,
                                                nn::Tensor* grad_encoder,
                                                nn::Tensor* grad_keys) {
  const std::size_t b_count = grad_concat.dim(0);
  const std::size_t n = encoder.dim(1);
  const std::size_t m = config_.output_steps;
  const std::size_t e = config_.embed;
  const std::size_t h = config_.lstm_hidden;

  nn::Tensor grad_decoder({b_count, m, e});
  const std::size_t eh = e + h;
  if (attention_gemm_enabled()) {
    attn_dalpha_scratch_.resize(m * n);
    float* const dalpha = attn_dalpha_scratch_.data();
    for (std::size_t b = 0; b < b_count; ++b) {
      const float* gz_b = grad_concat.raw() + b * m * eh;
      const float* gc_b = gz_b + e;  // context-grad columns, lda = e + h
      const float* enc_b = encoder.raw() + b * n * h;
      const float* key_b = keys.raw() + b * n * e;
      const float* dec_b = cached_decoder_.raw() + b * m * e;
      const float* alpha_b = cached_alpha_.raw() + b * m * n;
      float* gd_b = grad_decoder.raw() + b * m * e;
      // Direct decoder-state gradient: the left e columns of the concat grad.
      for (std::size_t t = 0; t < m; ++t)
        std::memcpy(gd_b + t * e, gz_b + t * eh, e * sizeof(float));
      // dalpha[t, i] = gc_t . E_i — strided view straight onto the context
      // columns, no copy of the concat gradient.
      sgemm(Trans::kNo, Trans::kYes, m, n, h, gc_b, eh, enc_b, h, dalpha, n,
            false);
      if (grad_encoder != nullptr)  // context sum: ge += alpha^T gc
        sgemm(Trans::kYes, Trans::kNo, n, h, m, alpha_b, n, gc_b, eh,
              grad_encoder->raw() + b * n * h, h, true);
      // Softmax backward in place: ds_i = alpha_i (dalpha_i - sum_j alpha_j
      // dalpha_j); the dalpha buffer holds ds afterwards.
      for (std::size_t t = 0; t < m; ++t) {
        const float* ar = alpha_b + t * n;
        float* dr = dalpha + t * n;
        float weighted = 0.0f;
        for (std::size_t i = 0; i < n; ++i) weighted += ar[i] * dr[i];
        for (std::size_t i = 0; i < n; ++i) dr[i] = ar[i] * (dr[i] - weighted);
      }
      // score = D_t . K_i backward: gd += ds K, gk += ds^T D.
      sgemm(Trans::kNo, Trans::kNo, m, e, n, dalpha, n, key_b, e, gd_b, e,
            true);
      if (grad_keys != nullptr)
        sgemm(Trans::kYes, Trans::kNo, n, e, m, dalpha, n, dec_b, e,
              grad_keys->raw() + b * n * e, e, true);
    }
    return grad_decoder;
  }

  // Retained scalar path (RLATTACK_ATTN_GEMM=0): same accumulation trees as
  // the GEMM formulation above — fresh per-element accumulators added to the
  // destination, no skip on exact-zero terms — so the two paths are
  // bit-identical under the scalar GEMM kernel.
  attn_dalpha_scratch_.resize(n);
  float* const dalpha = attn_dalpha_scratch_.data();

  for (std::size_t b = 0; b < b_count; ++b) {
    for (std::size_t t = 0; t < m; ++t) {
      const float* gz = grad_concat.raw() + (b * m + t) * eh;
      // Direct decoder-state gradient from the concat split.
      for (std::size_t k = 0; k < e; ++k) grad_decoder.at3(b, t, k) = gz[k];
      const float* gc = gz + e;  // d loss / d context [H]

      // d alpha_i = gc . E_i ; encoder grad from the context sum (only
      // needed when the history branch is being propagated).
      for (std::size_t i = 0; i < n; ++i) {
        float da = 0.0f;
        const float alpha = cached_alpha_.at3(b, t, i);
        for (std::size_t hh = 0; hh < h; ++hh) {
          da += gc[hh] * encoder.at3(b, i, hh);
          if (grad_encoder != nullptr)
            grad_encoder->at3(b, i, hh) += alpha * gc[hh];
        }
        dalpha[i] = da;
      }
      // Softmax backward: ds_i = alpha_i * (dalpha_i - sum_j alpha_j dalpha_j).
      float weighted = 0.0f;
      for (std::size_t i = 0; i < n; ++i)
        weighted += cached_alpha_.at3(b, t, i) * dalpha[i];
      for (std::size_t i = 0; i < n; ++i)
        dalpha[i] = cached_alpha_.at3(b, t, i) * (dalpha[i] - weighted);
      // score = D_t . K_i backward.
      for (std::size_t k = 0; k < e; ++k) {
        float acc = 0.0f;
        for (std::size_t i = 0; i < n; ++i) acc += dalpha[i] * keys.at3(b, i, k);
        grad_decoder.at3(b, t, k) += acc;
      }
      if (grad_keys != nullptr)
        for (std::size_t i = 0; i < n; ++i)
          for (std::size_t k = 0; k < e; ++k)
            grad_keys->at3(b, i, k) += dalpha[i] * cached_decoder_.at3(b, t, k);
    }
  }
  return grad_decoder;
}

Seq2SeqModel::InputGrads Seq2SeqModel::backward_attention(
    const nn::Tensor& grad_logits) {
  const std::size_t b_count = cached_batch_;
  const std::size_t n = config_.input_steps;
  const std::size_t e = config_.embed;
  const std::size_t h = config_.lstm_hidden;

  nn::Tensor grad_concat = output_dense_.backward(grad_logits);  // [B,m,E+H]

  nn::Tensor grad_encoder({b_count, n, h});
  nn::Tensor grad_keys({b_count, n, e});
  nn::Tensor grad_decoder = attention_mix_backward(
      grad_concat, cached_encoder_, cached_keys_, &grad_encoder, &grad_keys);

  // K = E W_a^T: accumulate W_a grads and the encoder grad through the keys.
  if (attention_gemm_enabled()) {
    // dW_a += gk^T E and ge += gk W_a over the flattened [B*n, .] views.
    // (Bit-equal to the scalar path below for B*n within one K block of the
    // GEMM blocking; beyond that the two agree to rounding.)
    sgemm(Trans::kYes, Trans::kNo, e, h, b_count * n, grad_keys.raw(), e,
          cached_encoder_.raw(), h, attn_w_grad_.raw(), h, true);
    sgemm(Trans::kNo, Trans::kNo, b_count * n, h, e, grad_keys.raw(), e,
          attn_w_.raw(), h, grad_encoder.raw(), h, true);
  } else {
    // Scalar path: fresh per-element accumulators over the contraction, then
    // one add into the destination — the GEMM accumulation tree.
    for (std::size_t k = 0; k < e; ++k)
      for (std::size_t hh = 0; hh < h; ++hh) {
        float acc = 0.0f;
        for (std::size_t b = 0; b < b_count; ++b)
          for (std::size_t i = 0; i < n; ++i)
            acc += grad_keys.at3(b, i, k) * cached_encoder_.at3(b, i, hh);
        attn_w_grad_[k * h + hh] += acc;
      }
    for (std::size_t b = 0; b < b_count; ++b)
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t hh = 0; hh < h; ++hh) {
          float acc = 0.0f;
          for (std::size_t k = 0; k < e; ++k)
            acc += grad_keys.at3(b, i, k) * attn_w_[k * h + hh];
          grad_encoder.at3(b, i, hh) += acc;
        }
  }

  InputGrads grads;
  grads.obs_history = obs_encoder_.backward(grad_encoder);

  nn::Tensor grad_repeated = decoder_lstm_.backward(grad_decoder);
  nn::Tensor grad_embedding = sum_over_steps(grad_repeated);
  grads.action_history = action_head_.backward(grad_embedding);
  grads.current_obs = current_head_.backward(grad_embedding);
  return grads;
}

HistoryEncoding Seq2SeqModel::encode_history(const nn::Tensor& action_history,
                                             const nn::Tensor& obs_history) {
  static rlattack::obs::SpanStat& span_stat =
      rlattack::obs::MetricsRegistry::global().span("seq2seq.encode_history");
  rlattack::obs::Span span(span_stat);
  const std::size_t n = config_.input_steps;
  if (action_history.rank() != 3 || action_history.dim(1) != n ||
      action_history.dim(2) != config_.actions)
    throw std::logic_error("Seq2SeqModel::encode_history: bad action history " +
                           action_history.shape_string());
  if (obs_history.rank() != 3 || obs_history.dim(1) != n ||
      obs_history.dim(2) != config_.frame_size() ||
      obs_history.dim(0) != action_history.dim(0))
    throw std::logic_error(
        "Seq2SeqModel::encode_history: bad observation history " +
        obs_history.shape_string());
  if constexpr (util::kCheckedBuild) {
    RLATTACK_CHECK(util::all_finite(action_history.data()),
                   "Seq2SeqModel::encode_history: non-finite action history");
    RLATTACK_CHECK(
        util::all_finite(obs_history.data()),
        "Seq2SeqModel::encode_history: non-finite observation history");
  }
  HistoryEncoding cache;
  cache.owner = this;
  cache.batch = action_history.dim(0);
  cache.input_steps = n;
  cache.attention = config_.use_attention;
  if (!config_.use_attention) {
    // Same accumulation order as forward(): action embedding first, then
    // the observation embedding — (a + o) + c stays bit-identical when
    // forward_cached later adds the current-observation embedding c.
    cache.history_embedding = action_head_.forward(action_history);
    cache.history_embedding += obs_head_.forward(obs_history);
  } else {
    cache.encoder = obs_encoder_.forward(obs_history);  // [B, n, H]
    cache.keys = project_keys(cache.encoder);           // [B, n, E]
    cache.action_embedding = action_head_.forward(action_history);
  }
  return cache;
}

nn::Tensor Seq2SeqModel::forward_cached(const HistoryEncoding& cache,
                                        const nn::Tensor& current_obs) {
  static rlattack::obs::SpanStat& span_stat =
      rlattack::obs::MetricsRegistry::global().span("seq2seq.forward_cached");
  rlattack::obs::Span span(span_stat);
  if constexpr (util::kCheckedBuild) {
    // Stale-cache detection: the encoding must come from *this* model (a
    // clone's weights may since have diverged) and describe the same batch
    // and history length the craft is about to query.
    RLATTACK_CHECK(cache.owner == this,
                   "Seq2SeqModel::forward_cached: encoding from a different "
                   "model instance");
    RLATTACK_CHECK(cache.attention == config_.use_attention,
                   "Seq2SeqModel::forward_cached: encoding decoder variant "
                   "does not match the model");
    RLATTACK_CHECK(cache.input_steps == config_.input_steps,
                   "Seq2SeqModel::forward_cached: encoding input_steps " +
                       std::to_string(cache.input_steps) +
                       " != model input_steps " +
                       std::to_string(config_.input_steps));
    RLATTACK_CHECK(
        current_obs.rank() == 2 && current_obs.dim(0) == cache.batch,
        "Seq2SeqModel::forward_cached: current observation batch " +
            current_obs.shape_string() + " does not match encoding batch " +
            std::to_string(cache.batch));
    RLATTACK_CHECK(util::all_finite(current_obs.data()),
                   "Seq2SeqModel::forward_cached: non-finite current "
                   "observation");
  }
  if (!cache.valid())
    throw std::logic_error("Seq2SeqModel::forward_cached: invalid encoding");
  if (current_obs.rank() != 2 || current_obs.dim(1) != config_.frame_size() ||
      current_obs.dim(0) != cache.batch)
    throw std::logic_error(
        "Seq2SeqModel::forward_cached: bad current observation " +
        current_obs.shape_string());
  cached_batch_ = cache.batch;
  active_cache_ = &cache;
  active_batch_ = 0;
  if (!config_.use_attention) {
    nn::Tensor embedding = cache.history_embedding;
    embedding += current_head_.forward(current_obs);
    return decoder_.forward(repeat_embedding(embedding));  // [B, m, A]
  }
  nn::Tensor embedding = cache.action_embedding;
  embedding += current_head_.forward(current_obs);
  return decode_attention(embedding, cache.encoder, cache.keys);
}

nn::Tensor Seq2SeqModel::backward_to_current(const nn::Tensor& grad_logits) {
  static rlattack::obs::SpanStat& span_stat =
      rlattack::obs::MetricsRegistry::global().span(
          "seq2seq.backward_to_current");
  rlattack::obs::Span span(span_stat);
  if constexpr (util::kCheckedBuild) {
    RLATTACK_CHECK(active_cache_ != nullptr,
                   "Seq2SeqModel::backward_to_current: no preceding "
                   "forward_cached (the last forward was the full path)");
    RLATTACK_CHECK(util::all_finite(grad_logits.data()),
                   "Seq2SeqModel::backward_to_current: non-finite logits "
                   "gradient");
  }
  if (active_cache_ == nullptr)
    throw std::logic_error(
        "Seq2SeqModel::backward_to_current: call forward_cached first");
  if (grad_logits.rank() != 3 || grad_logits.dim(0) != cached_batch_ ||
      grad_logits.dim(1) != config_.output_steps ||
      grad_logits.dim(2) != config_.actions)
    throw std::logic_error(
        "Seq2SeqModel::backward_to_current: bad gradient shape " +
        grad_logits.shape_string());
  const HistoryEncoding& cache = *active_cache_;
  active_cache_ = nullptr;  // one backward per forward_cached
  nn::Tensor grad_current;
  if (!config_.use_attention) {
    nn::Tensor grad_repeated = decoder_.backward(grad_logits);  // [B, m, E]
    grad_current = current_head_.backward(sum_over_steps(grad_repeated));
  } else {
    nn::Tensor grad_concat = output_dense_.backward(grad_logits);
    // Truncate at the cache boundary: no encoder, key or attention-weight
    // gradients — the histories are fixed for the whole craft.
    nn::Tensor grad_decoder = attention_mix_backward(
        grad_concat, cache.encoder, cache.keys, nullptr, nullptr);
    nn::Tensor grad_repeated = decoder_lstm_.backward(grad_decoder);
    grad_current = current_head_.backward(sum_over_steps(grad_repeated));
  }
  if constexpr (util::kCheckedBuild) {
    RLATTACK_CHECK(util::all_finite(grad_current.data()),
                   "Seq2SeqModel::backward_to_current: non-finite "
                   "current-obs gradient");
  }
  return grad_current;
}

std::vector<HistoryEncoding> Seq2SeqModel::encode_history_batch(
    const nn::Tensor& action_histories, const nn::Tensor& obs_histories) {
  // One shared pass over the packed histories; encode_history validates the
  // shapes and runs the exact layer sequence of the single-row path, whose
  // batch rows are all independent.
  HistoryEncoding packed = encode_history(action_histories, obs_histories);
  const std::size_t rows = packed.batch;
  const std::size_t n = config_.input_steps;
  const std::size_t e = config_.embed;
  const std::size_t h = config_.lstm_hidden;
  std::vector<HistoryEncoding> out(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    HistoryEncoding& enc = out[r];
    enc.owner = this;
    enc.batch = 1;
    enc.input_steps = n;
    enc.attention = packed.attention;
    if (!packed.attention) {
      enc.history_embedding = nn::Tensor({1, e});
      std::memcpy(enc.history_embedding.raw(),
                  packed.history_embedding.raw() + r * e, e * sizeof(float));
    } else {
      enc.action_embedding = nn::Tensor({1, e});
      std::memcpy(enc.action_embedding.raw(),
                  packed.action_embedding.raw() + r * e, e * sizeof(float));
      enc.encoder = nn::Tensor({1, n, h});
      std::memcpy(enc.encoder.raw(), packed.encoder.raw() + r * n * h,
                  n * h * sizeof(float));
      enc.keys = nn::Tensor({1, n, e});
      std::memcpy(enc.keys.raw(), packed.keys.raw() + r * n * e,
                  n * e * sizeof(float));
    }
  }
  return out;
}

nn::Tensor Seq2SeqModel::forward_cached_batch(
    const std::vector<const HistoryEncoding*>& caches,
    const nn::Tensor& current_obs) {
  static rlattack::obs::SpanStat& span_stat =
      rlattack::obs::MetricsRegistry::global().span(
          "seq2seq.forward_cached_batch");
  rlattack::obs::Span span(span_stat);
  const std::size_t rows = caches.size();
  const std::size_t n = config_.input_steps;
  const std::size_t e = config_.embed;
  const std::size_t h = config_.lstm_hidden;
  if (rows == 0)
    throw std::logic_error("Seq2SeqModel::forward_cached_batch: empty batch");
  if (current_obs.rank() != 2 || current_obs.dim(0) != rows ||
      current_obs.dim(1) != config_.frame_size())
    throw std::logic_error(
        "Seq2SeqModel::forward_cached_batch: bad current observations " +
        current_obs.shape_string());
  for (const HistoryEncoding* cache : caches) {
    if (cache == nullptr || !cache->valid() || cache->batch != 1)
      throw std::logic_error(
          "Seq2SeqModel::forward_cached_batch: every encoding must be a "
          "valid batch-1 HistoryEncoding");
    if constexpr (util::kCheckedBuild) {
      RLATTACK_CHECK(cache->owner == this,
                     "Seq2SeqModel::forward_cached_batch: encoding from a "
                     "different model instance");
      RLATTACK_CHECK(cache->attention == config_.use_attention,
                     "Seq2SeqModel::forward_cached_batch: encoding decoder "
                     "variant does not match the model");
      RLATTACK_CHECK(cache->input_steps == n,
                     "Seq2SeqModel::forward_cached_batch: encoding "
                     "input_steps does not match the model");
    }
  }
  if constexpr (util::kCheckedBuild) {
    RLATTACK_CHECK(util::all_finite(current_obs.data()),
                   "Seq2SeqModel::forward_cached_batch: non-finite current "
                   "observations");
  }
  cached_batch_ = rows;
  active_cache_ = nullptr;
  active_batch_ = rows;
  // Gather the per-encoding history state into batch rows, then run the
  // tail exactly as forward_cached does: history embedding first, plus the
  // current-observation embedding — same per-row accumulation order.
  nn::Tensor embedding({rows, e});
  if (!config_.use_attention) {
    for (std::size_t r = 0; r < rows; ++r)
      std::memcpy(embedding.raw() + r * e, caches[r]->history_embedding.raw(),
                  e * sizeof(float));
    embedding += current_head_.forward(current_obs);
    return decoder_.forward(repeat_embedding(embedding));  // [N, m, A]
  }
  for (std::size_t r = 0; r < rows; ++r)
    std::memcpy(embedding.raw() + r * e, caches[r]->action_embedding.raw(),
                e * sizeof(float));
  embedding += current_head_.forward(current_obs);
  // Per-encoding attention state: the score/context GEMMs inside
  // decode_attention read only row b's encoder/key block, so gathering the
  // blocks into [N, n, .] tensors reuses the single-row code bit-for-bit.
  batch_encoder_ = nn::Tensor({rows, n, h});
  batch_keys_ = nn::Tensor({rows, n, e});
  for (std::size_t r = 0; r < rows; ++r) {
    std::memcpy(batch_encoder_.raw() + r * n * h, caches[r]->encoder.raw(),
                n * h * sizeof(float));
    std::memcpy(batch_keys_.raw() + r * n * e, caches[r]->keys.raw(),
                n * e * sizeof(float));
  }
  return decode_attention(embedding, batch_encoder_, batch_keys_);
}

nn::Tensor Seq2SeqModel::backward_to_current_batch(
    const nn::Tensor& grad_logits) {
  static rlattack::obs::SpanStat& span_stat =
      rlattack::obs::MetricsRegistry::global().span(
          "seq2seq.backward_to_current_batch");
  rlattack::obs::Span span(span_stat);
  if constexpr (util::kCheckedBuild) {
    RLATTACK_CHECK(active_batch_ > 0,
                   "Seq2SeqModel::backward_to_current_batch: no preceding "
                   "forward_cached_batch");
    RLATTACK_CHECK(util::all_finite(grad_logits.data()),
                   "Seq2SeqModel::backward_to_current_batch: non-finite "
                   "logits gradient");
  }
  if (active_batch_ == 0)
    throw std::logic_error(
        "Seq2SeqModel::backward_to_current_batch: call forward_cached_batch "
        "first");
  if (grad_logits.rank() != 3 || grad_logits.dim(0) != active_batch_ ||
      grad_logits.dim(1) != config_.output_steps ||
      grad_logits.dim(2) != config_.actions)
    throw std::logic_error(
        "Seq2SeqModel::backward_to_current_batch: bad gradient shape " +
        grad_logits.shape_string());
  active_batch_ = 0;  // one backward per forward_cached_batch
  nn::Tensor grad_current;
  if (!config_.use_attention) {
    nn::Tensor grad_repeated = decoder_.backward(grad_logits);  // [N, m, E]
    grad_current = current_head_.backward(sum_over_steps(grad_repeated));
  } else {
    nn::Tensor grad_concat = output_dense_.backward(grad_logits);
    nn::Tensor grad_decoder = attention_mix_backward(
        grad_concat, batch_encoder_, batch_keys_, nullptr, nullptr);
    nn::Tensor grad_repeated = decoder_lstm_.backward(grad_decoder);
    grad_current = current_head_.backward(sum_over_steps(grad_repeated));
  }
  if constexpr (util::kCheckedBuild) {
    RLATTACK_CHECK(util::all_finite(grad_current.data()),
                   "Seq2SeqModel::backward_to_current_batch: non-finite "
                   "current-obs gradient");
  }
  return grad_current;
}

void Seq2SeqModel::reset_from(const Seq2SeqModel& src) {
  if (config_.use_attention != src.config_.use_attention ||
      config_.input_steps != src.config_.input_steps ||
      config_.output_steps != src.config_.output_steps ||
      config_.actions != src.config_.actions ||
      config_.embed != src.config_.embed ||
      config_.lstm_hidden != src.config_.lstm_hidden ||
      config_.frame_shape != src.config_.frame_shape)
    throw std::logic_error("Seq2SeqModel::reset_from: config mismatch");
  // params() is logically const: it lazily builds views over member tensors
  // without changing observable model state.
  auto& mutable_src = const_cast<Seq2SeqModel&>(src);  // NOLINT
  nn::copy_parameters(params(), mutable_src.params());
  active_cache_ = nullptr;
  active_batch_ = 0;
  seed_ = src.seed_;  // clones of a reset worker rebuild like the source
}

const std::vector<nn::Param>& Seq2SeqModel::params() {
  if (!params_cache_.empty()) return params_cache_;
  // Built once: the layer topology is fixed after construction, and the
  // per-call string concatenation below used to dominate zero_grad() on the
  // crafting hot path.
  std::vector<nn::Param>& out = params_cache_;
  auto take = [&out](nn::Sequential& part, const std::string& prefix) {
    for (nn::Param p : part.params()) {
      p.name = prefix + "." + p.name;
      out.push_back(p);
    }
  };
  // Order matters: checkpoints store parameters positionally, so the
  // non-attention layout must stay exactly as first released.
  take(action_head_, "action_head");
  if (!config_.use_attention) {
    take(obs_head_, "obs_head");
    take(current_head_, "current_head");
    take(decoder_, "decoder");
  } else {
    take(current_head_, "current_head");
    take(obs_encoder_, "obs_encoder");
    take(decoder_lstm_, "decoder_lstm");
    take(output_dense_, "output_dense");
    out.push_back({&attn_w_, &attn_w_grad_, "attention.w"});
  }
  return params_cache_;
}

void Seq2SeqModel::zero_grad() {
  for (const nn::Param& p : params()) p.grad->zero();
}

std::unique_ptr<Seq2SeqModel> Seq2SeqModel::clone() {
  auto copy = std::make_unique<Seq2SeqModel>(config_, seed_);
  nn::copy_parameters(copy->params(), params());
  return copy;
}

Seq2SeqConfig make_cartpole_seq2seq_config(std::size_t input_steps,
                                           std::size_t output_steps) {
  Seq2SeqConfig c;
  c.input_steps = input_steps;
  c.output_steps = output_steps;
  c.actions = 2;
  c.frame_shape = {4};
  c.embed = 48;
  c.lstm_hidden = 32;
  return c;
}

Seq2SeqConfig make_atari_seq2seq_config(std::vector<std::size_t> frame_shape,
                                        std::size_t actions,
                                        std::size_t input_steps,
                                        std::size_t output_steps) {
  Seq2SeqConfig c;
  c.input_steps = input_steps;
  c.output_steps = output_steps;
  c.actions = actions;
  c.frame_shape = std::move(frame_shape);
  c.embed = 64;
  c.lstm_hidden = 48;
  return c;
}

}  // namespace rlattack::seq2seq
