// Training data for the approximator: turns passively observed episode
// traces into ((A_{t-1}, S_{t-1}, s_t), A^f_t) samples (Section 4.3).
//
// The recorded observations may be agent-side frame stacks; the attacker
// sees raw frames, so each sample extracts the *newest* frame (the tail
// `frame_size` elements — frame stacking is concatenation with newest
// last).
#pragma once

#include <span>

#include "rlattack/env/environment.hpp"
#include "rlattack/nn/tensor.hpp"
#include "rlattack/util/rng.hpp"

namespace rlattack::seq2seq {

/// A materialised minibatch ready for Seq2SeqModel::forward.
struct Batch {
  nn::Tensor action_history;       ///< [B, n, A] one-hot
  nn::Tensor obs_history;          ///< [B, n, F]
  nn::Tensor current_obs;          ///< [B, F]
  std::vector<std::size_t> targets;  ///< row-major [B * m] future actions
};

/// Lazily indexes (episode, t) sample positions over a set of episodes and
/// materialises minibatches on demand. The episode storage must outlive the
/// dataset.
class EpisodeDataset {
 public:
  /// `n` input steps, `m` output steps, `frame_size` raw-frame element
  /// count, `actions` victim action-space size. Samples exist for every t
  /// with n <= t and t + m <= episode length.
  EpisodeDataset(const std::vector<env::Episode>& episodes, std::size_t n,
                 std::size_t m, std::size_t frame_size, std::size_t actions);

  std::size_t size() const noexcept { return refs_.size(); }
  bool empty() const noexcept { return refs_.empty(); }
  std::size_t input_steps() const noexcept { return n_; }
  std::size_t output_steps() const noexcept { return m_; }

  /// Materialises the samples at the given dataset indices into one batch.
  Batch materialize(std::span<const std::size_t> indices) const;

  /// Uniformly samples a batch of `batch_size` (bootstrap sampling, as the
  /// paper trains from bootstrapped draws of the collected episodes).
  Batch sample_batch(std::size_t batch_size, util::Rng& rng) const;

  /// Algorithm 1's Split: shuffles sample indices and returns
  /// (train_indices, eval_indices) at the given train fraction.
  std::pair<std::vector<std::size_t>, std::vector<std::size_t>> split(
      double train_fraction, util::Rng& rng) const;

 private:
  struct SampleRef {
    std::size_t episode;
    std::size_t t;
  };

  /// Copies the newest raw frame of the recorded observation at (episode,
  /// step) into `dst`.
  void copy_frame(std::size_t episode, std::size_t step,
                  std::span<float> dst) const;

  const std::vector<env::Episode>* episodes_;
  std::size_t n_, m_, frame_size_, actions_;
  std::vector<SampleRef> refs_;
};

}  // namespace rlattack::seq2seq
