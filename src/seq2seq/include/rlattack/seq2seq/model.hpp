// The sequence-to-sequence approximator of Section 4.3 / Figure 1.
//
//   A^f_t = f(A_{t-1}, S_{t-1}, s_t)
//
// Three input heads digest (a) the action history A_{t-1} (one-hot, LSTM
// path), (b) the observation history S_{t-1} (per-frame conv features for
// image games, then an LSTM path), and (c) the current observation s_t
// (conv/dense path). The three embeddings are summed, the sum is duplicated
// m times along a new temporal axis, and a recurrent decoder emits logits
// for each of the m future actions. (The paper describes the post-head
// blocks as "duplicate m times, aggregate by summation, feed into another
// fully-connected layer"; an identical per-step FC on identical inputs
// would collapse all m predictions, so the decoder here is the canonical
// RepeatVector -> LSTM -> per-step Dense seq2seq decoder, recorded as a
// reproduction decision in DESIGN.md.)
//
// backward() exposes the gradient with respect to *every* input —
// in particular d loss / d s_t, which is exactly what FGSM/PGD need and
// what stock adversarial libraries lacked (the paper had to extend
// Cleverhans for multi-input sequence models; this model supports it
// natively).
#pragma once

#include <cstdint>

#include "rlattack/nn/optimizer.hpp"
#include "rlattack/nn/sequential.hpp"

namespace rlattack::seq2seq {

/// Whether the attention decoder runs its batched-GEMM formulation (default)
/// or the retained scalar per-(b, t) loops. The two are bit-identical under
/// the scalar GEMM kernel (tests/seq2seq_test.cpp pins this); the switch is
/// the debugging escape hatch, initialised from RLATTACK_ATTN_GEMM
/// ("0" disables, anything else — including unset — enables).
bool attention_gemm_enabled() noexcept;
void set_attention_gemm_enabled(bool enabled) noexcept;

struct Seq2SeqConfig {
  std::size_t input_steps = 10;   ///< n — history length
  std::size_t output_steps = 1;   ///< m — 1 ("action") or 10 ("Seq")
  std::size_t actions = 2;        ///< A — victim action-space size
  /// Per-step observation shape: {4} for CartPole, {1, H, W} for the image
  /// games (the attacker sees raw frames; stacking happens agent-side).
  std::vector<std::size_t> frame_shape = {4};
  std::size_t embed = 64;        ///< shared embedding width E
  std::size_t lstm_hidden = 48;  ///< hidden width of the head LSTMs
  /// Luong-style attention decoder (extension): instead of pooling the
  /// observation history into one embedding, the decoder attends over the
  /// per-step encoder states of S_{t-1} at every output position. The
  /// ablation bench compares both decoders.
  bool use_attention = false;

  bool is_image() const noexcept { return frame_shape.size() == 3; }
  std::size_t frame_size() const noexcept {
    std::size_t n = 1;
    for (std::size_t d : frame_shape) n *= d;
    return n;
  }
};

class Seq2SeqModel;

/// Snapshot of everything the model computes from the *fixed* craft inputs
/// (A_{t-1}, S_{t-1}): the attack loop of Section 4.4 perturbs only the
/// current observation s_t, so an iterative craft encodes the temporal
/// context once (Seq2SeqModel::encode_history) and replays only the
/// s_t-dependent tail per iteration (forward_cached /
/// backward_to_current). Valid only for the model instance that produced
/// it and must outlive any forward_cached/backward_to_current call that
/// uses it (the model keeps a pointer, not a copy).
struct HistoryEncoding {
  const Seq2SeqModel* owner = nullptr;  ///< producing model (stale check)
  std::size_t batch = 0;                ///< B of the encoded histories
  std::size_t input_steps = 0;          ///< n at encode time
  bool attention = false;               ///< which field set below is live
  // Pooling decoder: summed action-head + obs-head embeddings.
  nn::Tensor history_embedding;  ///< [B, E]
  // Attention decoder: the obs history enters per-step via attention, so
  // the encoder states and their key projection K = E W_a^T are cached
  // alongside the action embedding.
  nn::Tensor action_embedding;  ///< [B, E]
  nn::Tensor encoder;           ///< [B, n, H]
  nn::Tensor keys;              ///< [B, n, E]

  bool valid() const noexcept { return owner != nullptr; }
};

class Seq2SeqModel {
 public:
  Seq2SeqModel(Seq2SeqConfig config, std::uint64_t seed);

  /// Inputs:
  ///   action_history [B, n, A]  one-hot A_{t-1}
  ///   obs_history    [B, n, F]  flattened frames S_{t-1}
  ///   current_obs    [B, F]     flattened frame s_t
  /// Output: logits [B, m, A].
  nn::Tensor forward(const nn::Tensor& action_history,
                     const nn::Tensor& obs_history,
                     const nn::Tensor& current_obs);

  struct InputGrads {
    nn::Tensor action_history;  ///< [B, n, A]
    nn::Tensor obs_history;     ///< [B, n, F]
    nn::Tensor current_obs;     ///< [B, F] — the attack surface
  };

  /// Backpropagates d loss / d logits, accumulating parameter gradients and
  /// returning input gradients. Call at most once per forward.
  InputGrads backward(const nn::Tensor& grad_logits);

  // --- craft-context fast path (Section 4.4 attack loop) ---
  //
  // forward() == forward_cached(encode_history(A, S), s_t) bit-for-bit, and
  // backward_to_current returns exactly backward(g).current_obs — enforced
  // by tests/seq2seq_test.cpp. forward/backward stay the training path and
  // the parity oracle; the attacks run on the cached path.

  /// Runs the history heads once: action head + observation head (pooling
  /// decoder) or action head + observation encoder + key projection
  /// (attention decoder). The n-step LSTM stacks over the histories are
  /// never re-entered by forward_cached/backward_to_current.
  HistoryEncoding encode_history(const nn::Tensor& action_history,
                                 const nn::Tensor& obs_history);

  /// Evaluates only the s_t-dependent tail — current-observation head,
  /// RepeatVector, decoder and attention mixing — on top of `cache`.
  /// Returns logits [B, m, A] bit-identical to the full forward. The cache
  /// must outlive the call and any backward_to_current that follows.
  nn::Tensor forward_cached(const HistoryEncoding& cache,
                            const nn::Tensor& current_obs);

  /// Truncated backward for the cached path: propagates d loss / d logits
  /// to the current observation only, stopping at the cache boundary — the
  /// history heads see no backward work and accumulate no gradient. Call at
  /// most once per forward_cached. Returns [B, F], bit-identical to
  /// backward(grad_logits).current_obs.
  nn::Tensor backward_to_current(const nn::Tensor& grad_logits);

  // --- batched craft substrate (multi-session tail evaluation) ---
  //
  // N independent batch-1 crafts share one tail evaluation: their s_t rows
  // are packed into a single [N, F] matrix so the current-obs head, decoder
  // and output layers run as shared GEMMs with m = N instead of N GEMMs of
  // m = 1. Every layer on the tail treats batch rows independently and the
  // GEMM kernels fix each row's K-accumulation order regardless of M, so
  // row r of the batched result is bit-identical to a single-row
  // forward_cached(*caches[r], s_r) — tests/seq2seq_batch_test.cpp pins
  // this across decoders, observation kinds, batch sizes, thread counts and
  // SIMD kernels.

  /// Runs the history heads once over N packed histories ([N, n, A] /
  /// [N, n, F]) and splits the result into N batch-1 encodings, each
  /// bit-identical to encode_history on that row alone.
  std::vector<HistoryEncoding> encode_history_batch(
      const nn::Tensor& action_histories, const nn::Tensor& obs_histories);

  /// Batched tail forward: caches[r] (batch 1 each) pairs with row r of
  /// `current_obs` [N, F]. Gathers the per-encoding history state (and, for
  /// the attention decoder, the per-encoding encoder/key blocks around the
  /// per-row score/context GEMMs), evaluates the tail once, and returns
  /// logits [N, m, A]. Each cache must outlive the call and any
  /// backward_to_current_batch that follows.
  nn::Tensor forward_cached_batch(
      const std::vector<const HistoryEncoding*>& caches,
      const nn::Tensor& current_obs);

  /// Truncated backward for the batched tail: [N, m, A] loss gradients in,
  /// [N, F] current-observation gradients out. Row r is bit-identical to a
  /// single-row backward_to_current of row r's gradient (zero gradient rows
  /// yield zero output rows without disturbing their neighbours). Call at
  /// most once per forward_cached_batch.
  nn::Tensor backward_to_current_batch(const nn::Tensor& grad_logits);

  /// All learnable parameters across heads and decoder. Built lazily on
  /// first call and cached (topology is fixed after construction); the
  /// model must not be moved afterwards — the Param views alias member
  /// tensors (same contract as nn::Optimizer).
  const std::vector<nn::Param>& params();

  void zero_grad();

  /// Deep copy with identical architecture and weights: rebuilds from the
  /// original (config, seed) and copies every parameter tensor across, so a
  /// clone's forward/backward is bit-identical to the source's. Forward
  /// caches start empty — one clone per episode worker makes concurrent
  /// attack crafting safe (forward/backward mutate internal caches).
  std::unique_ptr<Seq2SeqModel> clone();

  /// Re-synchronises this instance with `src` (same config) by copying
  /// parameter tensors in place and dropping any active forward cache —
  /// no layer reconstruction, no heap allocation. The worker-pool
  /// counterpart of clone(): clone once, reset_from per run.
  void reset_from(const Seq2SeqModel& src);

  /// Process-wide count of Seq2SeqModel constructions (clones included).
  /// The worker-pool pinning test asserts this stays flat across warm runs.
  static std::uint64_t constructions() noexcept;

  const Seq2SeqConfig& config() const noexcept { return config_; }

 private:
  nn::Tensor forward_attention(const nn::Tensor& action_history,
                               const nn::Tensor& obs_history,
                               const nn::Tensor& current_obs);
  InputGrads backward_attention(const nn::Tensor& grad_logits);
  /// Checked-build (util::kCheckedBuild) NaN/Inf audit of the gradients
  /// returned to the attack layer; no-op condition in release builds.
  void check_input_grads(const InputGrads& grads) const;

  // Shared building blocks of the full and cached paths (the two must stay
  // bit-identical, so they run the exact same code):
  /// [B, E] -> [B, m, E] RepeatVector (Figure 1).
  nn::Tensor repeat_embedding(const nn::Tensor& embedding) const;
  /// [B, m, E] gradient -> [B, E]: RepeatVector backward (sum over copies).
  nn::Tensor sum_over_steps(const nn::Tensor& grad_repeated) const;
  /// Keys K[b, i, :] = W_a * E[b, i, :] (Luong "general" score).
  nn::Tensor project_keys(const nn::Tensor& encoder) const;
  /// RepeatVector + decoder LSTM + attention mixing + output dense; reads
  /// `encoder`/`keys` (members on the full path, HistoryEncoding fields on
  /// the cached path) and fills cached_decoder_/cached_alpha_.
  nn::Tensor decode_attention(const nn::Tensor& embedding,
                              const nn::Tensor& encoder,
                              const nn::Tensor& keys);
  /// Attention-mixing backward: returns d loss / d decoder states. With
  /// non-null `grad_encoder`/`grad_keys` also accumulates the
  /// history-facing gradients; the cached path passes nullptr and the
  /// whole history branch is skipped.
  nn::Tensor attention_mix_backward(const nn::Tensor& grad_concat,
                                    const nn::Tensor& encoder,
                                    const nn::Tensor& keys,
                                    nn::Tensor* grad_encoder,
                                    nn::Tensor* grad_keys);

  Seq2SeqConfig config_;
  std::uint64_t seed_ = 0;       ///< construction seed, reused by clone()
  nn::Sequential action_head_;   // [B, n, A] -> [B, E]
  nn::Sequential obs_head_;      // [B, n, F] -> [B, E]  (pooling decoder)
  nn::Sequential current_head_;  // [B, F]    -> [B, E]
  nn::Sequential decoder_;       // [B, m, E] -> [B, m, A] (pooling decoder)
  std::size_t cached_batch_ = 0;
  /// Encoding used by the last forward_cached; read by backward_to_current,
  /// reset to nullptr by the full forward. Not owned.
  const HistoryEncoding* active_cache_ = nullptr;
  /// N of the last forward_cached_batch; 0 when the last forward was not a
  /// batched tail. Gates backward_to_current_batch the way active_cache_
  /// gates backward_to_current.
  std::size_t active_batch_ = 0;
  /// Per-row encoder/key blocks gathered by the last attention-decoder
  /// forward_cached_batch; read by backward_to_current_batch.
  nn::Tensor batch_encoder_;  // [N, n, H]
  nn::Tensor batch_keys_;     // [N, n, E]
  /// Lazily built parameter views (see params()).
  std::vector<nn::Param> params_cache_;

  // --- attention-decoder variant ---
  nn::Sequential obs_encoder_;    // [B, n, F] -> [B, n, H] encoder states
  nn::Sequential decoder_lstm_;   // [B, m, E] -> [B, m, E] decoder states
  nn::Sequential output_dense_;   // [B, m, E + H] -> [B, m, A]
  nn::Tensor attn_w_;             // [E, H] Luong "general" score projection
  nn::Tensor attn_w_grad_;
  // forward caches for the attention backward pass
  nn::Tensor cached_encoder_;   // [B, n, H]
  nn::Tensor cached_keys_;      // [B, n, E]
  nn::Tensor cached_decoder_;   // [B, m, E]
  nn::Tensor cached_alpha_;     // [B, m, n]
  // Reusable scratch for the attention inner loops (scores / dalpha are
  // per-(b, t) temporaries; keeping them as members avoids a heap
  // allocation per output position). Model instances are never shared
  // across threads (episode workers clone), so plain members are safe.
  std::vector<float> attn_scores_scratch_;
  std::vector<float> attn_dalpha_scratch_;
};

/// Head presets matching Table 2's per-game configurations, scaled to this
/// reproduction's frame sizes (DESIGN.md).
Seq2SeqConfig make_cartpole_seq2seq_config(std::size_t input_steps,
                                           std::size_t output_steps);
Seq2SeqConfig make_atari_seq2seq_config(std::vector<std::size_t> frame_shape,
                                        std::size_t actions,
                                        std::size_t input_steps,
                                        std::size_t output_steps);

}  // namespace rlattack::seq2seq
