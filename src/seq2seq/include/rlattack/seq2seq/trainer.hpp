// Algorithm 1 of the paper: collect episodes (done by rl::collect_episodes),
// search the input sequence length n with a 1%-of-budget probe per
// candidate, then train the chosen model to completion.
#pragma once

#include <functional>

#include "rlattack/seq2seq/dataset.hpp"
#include "rlattack/seq2seq/model.hpp"

namespace rlattack::seq2seq {

struct TrainSettings {
  std::size_t epochs = 200;  ///< N of Algorithm 1
  std::size_t batch_size = 32;
  /// Minibatches drawn per epoch (bootstrap sampling from the training
  /// split, as in the paper); 0 means one pass worth: ceil(train/batch),
  /// capped at 256 to keep epoch cost bounded on huge datasets.
  std::size_t batches_per_epoch = 0;
  float lr = 1e-3f;
  /// true trains with plain SGD at the paper's 1e-4 semantics; false (the
  /// default) uses Adam, which reaches the same accuracy in far fewer
  /// CPU-bound epochs. The ablation bench compares both.
  bool use_sgd = false;
  /// Evaluate this many batches at most (0 = full eval split).
  std::size_t max_eval_batches = 64;
};

struct TrainOutcome {
  double eval_accuracy = 0.0;      ///< per-action accuracy on the eval split
  double final_train_loss = 0.0;
};

/// Trains `model` on the train split and reports eval-split accuracy.
TrainOutcome train_seq2seq(Seq2SeqModel& model, const EpisodeDataset& dataset,
                           std::span<const std::size_t> train_indices,
                           std::span<const std::size_t> eval_indices,
                           const TrainSettings& settings, util::Rng& rng);

/// Per-action accuracy of `model` on the given sample indices.
double evaluate_seq2seq(Seq2SeqModel& model, const EpisodeDataset& dataset,
                        std::span<const std::size_t> indices,
                        std::size_t batch_size, std::size_t max_batches);

struct LengthSearchResult {
  std::size_t best_length = 0;
  double best_probe_accuracy = 0.0;
  std::vector<std::pair<std::size_t, double>> probes;  ///< (n, accuracy)
};

/// Algorithm 1 lines 12-23: trains one probe model per candidate n for
/// Nt = max(1, 0.01 * N) epochs and returns the best-by-eval-accuracy
/// length. `make_config` builds the model config for a given n.
LengthSearchResult search_input_length(
    const std::vector<env::Episode>& episodes,
    std::span<const std::size_t> candidates,
    const std::function<Seq2SeqConfig(std::size_t)>& make_config,
    const TrainSettings& settings, std::uint64_t seed);

/// Full Algorithm 1: length search followed by a complete training run.
/// Returns the trained model and its final accuracy.
struct ApproximatorResult {
  std::unique_ptr<Seq2SeqModel> model;
  LengthSearchResult search;
  TrainOutcome outcome;
};

ApproximatorResult build_approximator(
    const std::vector<env::Episode>& episodes,
    std::span<const std::size_t> length_candidates,
    const std::function<Seq2SeqConfig(std::size_t)>& make_config,
    const TrainSettings& settings, std::uint64_t seed);

}  // namespace rlattack::seq2seq
