#include "rlattack/seq2seq/trainer.hpp"

#include <algorithm>
#include <stdexcept>

#include "rlattack/nn/loss.hpp"
#include "rlattack/util/log.hpp"

namespace rlattack::seq2seq {

namespace {

std::size_t batches_for(const TrainSettings& settings, std::size_t samples) {
  if (settings.batches_per_epoch > 0) return settings.batches_per_epoch;
  const std::size_t per_pass =
      (samples + settings.batch_size - 1) / settings.batch_size;
  return std::min<std::size_t>(std::max<std::size_t>(per_pass, 1), 256);
}

std::unique_ptr<nn::Optimizer> make_optimizer(Seq2SeqModel& model,
                                              const TrainSettings& settings) {
  // Bind the model's cached params() span by pointer — the optimizer shares
  // the model's views instead of copying ~40 Param entries (the model's
  // no-move contract already guarantees the span stays put).
  if (settings.use_sgd)
    return std::make_unique<nn::Sgd>(&model.params(), settings.lr);
  return std::make_unique<nn::Adam>(&model.params(), settings.lr);
}

}  // namespace

double evaluate_seq2seq(Seq2SeqModel& model, const EpisodeDataset& dataset,
                        std::span<const std::size_t> indices,
                        std::size_t batch_size, std::size_t max_batches) {
  if (indices.empty())
    throw std::logic_error("evaluate_seq2seq: empty eval split");
  std::size_t correct = 0, total = 0;
  std::size_t batches = 0;
  for (std::size_t start = 0; start < indices.size();
       start += batch_size, ++batches) {
    if (max_batches > 0 && batches >= max_batches) break;
    const std::size_t count = std::min(batch_size, indices.size() - start);
    Batch batch = dataset.materialize(indices.subspan(start, count));
    nn::Tensor logits =
        model.forward(batch.action_history, batch.obs_history,
                      batch.current_obs);
    const std::size_t m = dataset.output_steps();
    const std::size_t a = logits.dim(2);
    for (std::size_t b = 0; b < count; ++b) {
      for (std::size_t j = 0; j < m; ++j) {
        auto row = logits.data().subspan((b * m + j) * a, a);
        const std::size_t pred = static_cast<std::size_t>(
            std::max_element(row.begin(), row.end()) - row.begin());
        if (pred == batch.targets[b * m + j]) ++correct;
        ++total;
      }
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(correct) / static_cast<double>(total);
}

TrainOutcome train_seq2seq(Seq2SeqModel& model, const EpisodeDataset& dataset,
                           std::span<const std::size_t> train_indices,
                           std::span<const std::size_t> eval_indices,
                           const TrainSettings& settings, util::Rng& rng) {
  if (train_indices.empty())
    throw std::logic_error("train_seq2seq: empty training split");
  auto optimizer = make_optimizer(model, settings);
  const std::size_t batches = batches_for(settings, train_indices.size());

  TrainOutcome outcome;
  std::vector<std::size_t> batch_indices(settings.batch_size);
  for (std::size_t epoch = 0; epoch < settings.epochs; ++epoch) {
    double epoch_loss = 0.0;
    for (std::size_t i = 0; i < batches; ++i) {
      // Bootstrap sampling from the training split.
      for (std::size_t j = 0; j < settings.batch_size; ++j)
        batch_indices[j] =
            train_indices[rng.uniform_int(train_indices.size())];
      Batch batch = dataset.materialize(batch_indices);
      nn::Tensor logits = model.forward(batch.action_history,
                                        batch.obs_history, batch.current_obs);
      nn::LossResult loss = nn::softmax_cross_entropy(logits, batch.targets);
      epoch_loss += loss.loss;
      model.backward(loss.grad);
      optimizer->step();
    }
    outcome.final_train_loss = epoch_loss / static_cast<double>(batches);
  }
  outcome.eval_accuracy =
      evaluate_seq2seq(model, dataset, eval_indices, settings.batch_size,
                       settings.max_eval_batches);
  return outcome;
}

LengthSearchResult search_input_length(
    const std::vector<env::Episode>& episodes,
    std::span<const std::size_t> candidates,
    const std::function<Seq2SeqConfig(std::size_t)>& make_config,
    const TrainSettings& settings, std::uint64_t seed) {
  if (candidates.empty())
    throw std::logic_error("search_input_length: no candidates");
  TrainSettings probe = settings;
  // Nt = 0.01 * N (Algorithm 1 line 14), at least one epoch.
  probe.epochs = std::max<std::size_t>(
      1, static_cast<std::size_t>(0.01 * static_cast<double>(settings.epochs)));

  LengthSearchResult result;
  for (std::size_t n : candidates) {
    const Seq2SeqConfig config = make_config(n);
    EpisodeDataset dataset(episodes, config.input_steps, config.output_steps,
                           config.frame_size(), config.actions);
    if (dataset.empty()) {
      util::log_warn("length search: no samples for n = ", n, "; skipping");
      continue;
    }
    util::Rng rng(seed ^ (0x9e37u + n));
    auto [train_idx, eval_idx] = dataset.split(0.9, rng);
    if (train_idx.empty() || eval_idx.empty()) continue;
    Seq2SeqModel model(config, seed + n);
    TrainOutcome outcome =
        train_seq2seq(model, dataset, train_idx, eval_idx, probe, rng);
    result.probes.emplace_back(n, outcome.eval_accuracy);
    if (outcome.eval_accuracy > result.best_probe_accuracy ||
        result.best_length == 0) {
      result.best_probe_accuracy = outcome.eval_accuracy;
      result.best_length = n;
    }
  }
  if (result.best_length == 0)
    throw std::logic_error(
        "search_input_length: no candidate produced any samples");
  return result;
}

ApproximatorResult build_approximator(
    const std::vector<env::Episode>& episodes,
    std::span<const std::size_t> length_candidates,
    const std::function<Seq2SeqConfig(std::size_t)>& make_config,
    const TrainSettings& settings, std::uint64_t seed) {
  ApproximatorResult result;
  result.search = search_input_length(episodes, length_candidates,
                                      make_config, settings, seed);
  const Seq2SeqConfig config = make_config(result.search.best_length);
  EpisodeDataset dataset(episodes, config.input_steps, config.output_steps,
                         config.frame_size(), config.actions);
  util::Rng rng(seed ^ 0xABCDu);
  auto [train_idx, eval_idx] = dataset.split(0.9, rng);
  result.model = std::make_unique<Seq2SeqModel>(config, seed);
  result.outcome = train_seq2seq(*result.model, dataset, train_idx, eval_idx,
                                 settings, rng);
  return result;
}

}  // namespace rlattack::seq2seq
