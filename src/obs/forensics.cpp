#include "rlattack/obs/forensics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <vector>

#include "rlattack/obs/json_util.hpp"
#include "rlattack/util/env.hpp"

namespace rlattack::obs {

namespace {

// Leaked function-local statics (see metrics.cpp): the atexit export hook
// and any static-destruction-time recorder must always see live objects.
std::mutex& forensics_mutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

std::vector<ForensicsStep>& forensics_buffer() {
  static std::vector<ForensicsStep>* v = new std::vector<ForensicsStep>;
  return *v;
}

std::string& forensics_path_storage() {
  static std::string* s = new std::string;
  return *s;
}

ForensicsDetector& forensics_detector_storage() {
  static ForensicsDetector* d = new ForensicsDetector;
  return *d;
}

std::once_flag& forensics_hook_once() {
  static std::once_flag* f = new std::once_flag;
  return *f;
}

void forensics_export_at_exit() {
  const std::string path = forensics_path();
  if (path.empty()) return;
  write_forensics(path);
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void append_record(std::ostringstream& out, const ForensicsStep& r) {
  out << "{\"episode\": \"" << hex16(r.episode_key)
      << "\", \"seed\": " << r.seed << ", \"step\": " << r.step
      << ", \"eligible\": " << (r.eligible ? "true" : "false")
      << ", \"attacked\": " << (r.attacked ? "true" : "false")
      << ", \"predicted\": " << r.predicted << ", \"action\": " << r.action
      << ", \"agree\": " << r.agree << ", \"queries\": {\"forward\": "
      << r.model_forward << ", \"gradient\": " << r.model_gradient
      << ", \"victim\": " << r.victim_queries
      << "}, \"l2\": " << detail::fmt_double(r.l2)
      << ", \"linf\": " << detail::fmt_double(r.linf);
  if (r.has_loss) out << ", \"loss\": " << detail::fmt_double(r.loss);
  if (r.det_active)
    out << ", \"det\": {\"score\": " << detail::fmt_double(r.det_score)
        << ", \"flag\": " << (r.det_flag ? "true" : "false") << "}";
  out << "}\n";
}

}  // namespace

void forensics_record(const ForensicsStep& rec) {
  if (!forensics_detail::forensics_on()) return;
  std::lock_guard<std::mutex> lock(forensics_mutex());
  forensics_buffer().push_back(rec);
}

std::string forensics_to_jsonl() {
  std::vector<ForensicsStep> records;
  {
    std::lock_guard<std::mutex> lock(forensics_mutex());
    records = forensics_buffer();
  }
  // Deterministic across RLATTACK_EXPERIMENT_THREADS: episode workers append
  // in completion order, the export sorts into configuration order.
  std::stable_sort(records.begin(), records.end(),
                   [](const ForensicsStep& a, const ForensicsStep& b) {
                     if (a.episode_key != b.episode_key)
                       return a.episode_key < b.episode_key;
                     if (a.seed != b.seed) return a.seed < b.seed;
                     return a.step < b.step;
                   });
  std::ostringstream out;
  for (const ForensicsStep& r : records) append_record(out, r);
  return out.str();
}

bool write_forensics(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << forensics_to_jsonl();
  return static_cast<bool>(out);
}

std::size_t forensics_size() {
  std::lock_guard<std::mutex> lock(forensics_mutex());
  return forensics_buffer().size();
}

void forensics_reset() {
  std::lock_guard<std::mutex> lock(forensics_mutex());
  forensics_buffer().clear();
}

void set_forensics_path(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(forensics_mutex());
    forensics_path_storage() = path;
  }
  forensics_detail::g_forensics_enabled.store(!path.empty(),
                                              std::memory_order_relaxed);
  if (!path.empty())
    std::call_once(forensics_hook_once(),
                   [] { std::atexit(forensics_export_at_exit); });
}

std::string forensics_path() {
  std::lock_guard<std::mutex> lock(forensics_mutex());
  return forensics_path_storage();
}

void set_forensics_detector(const ForensicsDetector& det) {
  std::lock_guard<std::mutex> lock(forensics_mutex());
  forensics_detector_storage() = det;
}

ForensicsDetector forensics_detector() {
  std::lock_guard<std::mutex> lock(forensics_mutex());
  return forensics_detector_storage();
}

namespace {
// Apply RLATTACK_FORENSICS_OUT at static-init time so the stream is live
// before main() for any binary linking obs.
const bool g_forensics_boot = [] {
  if (const char* out = util::env::get(util::env::Var::kForensicsOut))
    if (*out != '\0') set_forensics_path(out);
  return true;
}();
}  // namespace

}  // namespace rlattack::obs
