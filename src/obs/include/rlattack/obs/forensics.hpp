// Per-step attack forensics stream.
//
// The trace layer (trace.hpp) answers "when did which subsystem run"; this
// stream answers "what did the attack do at every environment step": the
// approximator's predicted victim action vs. the action actually taken
// (agreement flag), the step's model/victim query counts, the realised
// L2/L∞ perturbation norms, the attack-loss value, and — when a detector is
// configured — the per-step detection score. One JSON object per step,
// exported as JSONL at process exit (RLATTACK_FORENSICS_OUT / --forensics-out)
// and folded into per-episode accuracy-vs-time curves by
// tools/forensics_summary.py.
//
// Discipline (same as metrics/trace):
//  - Off by default; the only cost on the disabled path is one relaxed bool
//    load per step. Forensics observes through read-only model queries that
//    never touch the episode RNG or environment, so enabling it does not
//    change experiment rows — but because those extra queries do count into
//    the query telemetry, the bit-identical-rows contract is stated for the
//    *disabled* stream.
//  - Deterministic export. Records buffer in memory and are sorted by
//    (episode_key, seed, step) before writing, so the JSONL is byte-stable
//    across RLATTACK_EXPERIMENT_THREADS settings.
//  - Layering. obs sits below core, so the detector wiring here is plain
//    numbers (ForensicsDetector); core/pipeline.cpp builds the actual
//    StatefulDetector from them per episode.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace rlattack::obs {

namespace forensics_detail {
/// Process-wide stream flag; set by set_forensics_path(non-empty) or the
/// RLATTACK_FORENSICS_OUT env var. Inline for the one-relaxed-load off path.
inline std::atomic<bool> g_forensics_enabled{false};
inline bool forensics_on() noexcept {
  return g_forensics_enabled.load(std::memory_order_relaxed);
}
}  // namespace forensics_detail

/// True when per-step forensics records are being collected.
inline bool forensics_enabled() noexcept {
  return forensics_detail::forensics_on();
}

/// One environment step as seen by the attack. Integer fields use -1 for
/// "not observed" (e.g. no prediction on a step the attack skipped).
struct ForensicsStep {
  std::uint64_t episode_key = 0;  ///< FNV-1a over (seed, policy, budget, ...)
  std::uint64_t seed = 0;         ///< episode seed (also inside the key)
  std::uint32_t step = 0;         ///< 0-based step within the episode
  bool eligible = false;          ///< attack policy allowed this step
  bool attacked = false;          ///< a perturbation was delivered
  std::int32_t predicted = -1;    ///< approximator's predicted victim action
  std::int32_t action = -1;       ///< action the victim actually took
  std::int32_t agree = -1;        ///< predicted == action (−1: no prediction)
  std::uint32_t model_forward = 0;   ///< approximator forward passes, this step
  std::uint32_t model_gradient = 0;  ///< approximator gradient queries
  std::uint32_t victim_queries = 0;  ///< victim policy evaluations
  double l2 = 0.0;    ///< realised ‖δ‖₂ of the delivered perturbation
  double linf = 0.0;  ///< realised ‖δ‖∞
  double loss = 0.0;       ///< attack loss (margin); valid iff has_loss
  bool has_loss = false;   ///< loss computed (attacked steps only)
  double det_score = 0.0;  ///< detector z-score; valid iff det_active
  bool det_flag = false;   ///< detector alarm state after this step
  bool det_active = false; ///< a detector was configured for this run
};

/// Buffers one record (thread-safe; no-op when the stream is disabled).
void forensics_record(const ForensicsStep& rec);

/// All buffered records as JSONL, sorted by (episode_key, seed, step).
std::string forensics_to_jsonl();
/// Writes forensics_to_jsonl to `path`; false on I/O failure.
bool write_forensics(const std::string& path);
/// Number of buffered records (tests).
std::size_t forensics_size();
/// Drops all buffered records (tests).
void forensics_reset();

/// Configures the process-exit JSONL export. A non-empty path enables the
/// stream, empty disables it. RLATTACK_FORENSICS_OUT is applied at startup;
/// bench drivers and rlattack_cli wire --forensics-out here.
void set_forensics_path(const std::string& path);
std::string forensics_path();

/// Detection-score configuration for the forensics stream, as plain numbers
/// (obs cannot depend on core::StatefulDetector). When `active`, the
/// pipeline builds a detector calibrated to (mean, stddev) per episode and
/// records its z-score/alarm per step.
struct ForensicsDetector {
  bool active = false;
  double mean = 0.0;
  double stddev = 0.0;
  int window = 20;
  int alarm_flags = 5;
  double z_threshold = 3.0;
};
void set_forensics_detector(const ForensicsDetector& det);
ForensicsDetector forensics_detector();

/// FNV-1a episode-key helpers: fold 64-bit words (seeds, bit-cast doubles,
/// hashed strings) into a stable identifier that survives reordering of the
/// episode *rows* but distinguishes episode *configurations*.
inline std::uint64_t forensics_key_begin() noexcept {
  return 14695981039346656037ULL;  // FNV-1a offset basis
}
inline std::uint64_t forensics_key_mix(std::uint64_t h,
                                       std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= 1099511628211ULL;  // FNV-1a prime
  }
  return h;
}

}  // namespace rlattack::obs
