// Tiny JSON formatting helpers shared by the obs exporters (metrics, trace,
// forensics) and their byte-exact golden tests. Deliberately not a JSON
// library: every exporter writes its keys in a fixed order so output is
// deterministic, and these helpers only make the scalar spellings
// deterministic too.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace rlattack::obs::detail {

/// Shortest round-trippable decimal spelling of `v`; non-finite values
/// (which the exporters never produce, but JSON cannot represent) degrade
/// to 0.
inline std::string fmt_double(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Prefer the shorter %.15g spelling when it round-trips (4 instead of
  // 4.0000000000000000, 0.5 instead of 0.50000000000000000).
  char short_buf[40];
  std::snprintf(short_buf, sizeof short_buf, "%.15g", v);
  if (std::strtod(short_buf, nullptr) == v) return short_buf;
  return buf;
}

/// Escapes '"' and '\' (the only characters the exporters' strings can
/// contain that need escaping).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace rlattack::obs::detail
