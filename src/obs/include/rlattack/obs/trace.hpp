// Event-tracing layer: timeline traces alongside the MetricsRegistry
// aggregates.
//
// Where metrics.hpp answers "how much / how long in total", this layer
// answers "when": every instrumented site drops begin/end ("B"/"E"),
// complete ("X", begin + duration folded into one slot) or instant ("i")
// events into per-thread lock-free ring buffers, and the process-exit hook
// exports them as Chrome trace-event JSON that loads directly in
// chrome://tracing and Perfetto (ui.perfetto.dev).
//
// Design rules (same discipline as MetricsRegistry):
//  - Off by default, one relaxed bool load when off. RLATTACK_TRACE=1 (or
//    set_trace_enabled) turns recording on; RLATTACK_TRACE_OUT / --trace-out
//    set the export path (and imply enabling when RLATTACK_TRACE is unset).
//    A disabled TraceScope takes no clock reading and writes nothing, so
//    experiment rows stay bit-identical with tracing on or off — tracing
//    only observes, it never feeds back.
//  - Per-thread ring buffers. kRings fixed-capacity rings of alignas(64)
//    64-byte slots; the emitting thread picks ring
//    util::ThreadPool::thread_index() & (kRings - 1) and claims a slot with
//    one relaxed fetch_add — no lock anywhere on the emit path.
//  - Overwrite-oldest drop policy. A ring that wraps silently overwrites
//    its oldest events (the interesting tail of a run is the recent past);
//    the exporter reports the total overwritten count so a truncated
//    timeline is always visible as such.
//  - Static-string payload. Event names and arg keys must be string
//    literals (or otherwise outlive the process): slots store the pointers,
//    never copies, which is what keeps a slot one cache line.
//
// Naming follows the metrics scheme (DESIGN.md "Tracing & forensics"):
// pool.job / pool.drain, episode.run / episode.job, phase.*, craft.enroll /
// craft.submit_wait / craft.flush / craft.retire / craft.batch.stall,
// nn.gemm.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rlattack::obs {

namespace trace_detail {
/// Process-wide tracing flag. Inline so every emit helper compiles to
/// "load + branch" with no function call on the disabled path.
inline std::atomic<bool> g_trace_enabled{false};
// Acquire pairs with the release store in set_trace_enabled so the global
// log's lazily-allocated rings are visible before the flag reads true; on
// x86 this compiles to the same plain load as relaxed, so the disabled
// path still costs one ordinary load.
inline bool trace_on() noexcept {
  return g_trace_enabled.load(std::memory_order_acquire);
}

/// Monotonic nanoseconds (steady_clock). Tests inject a scripted clock via
/// set_clock_for_testing so the JSON golden is byte-exact.
using ClockFn = std::uint64_t (*)() noexcept;
std::uint64_t now_ns() noexcept;
void set_clock_for_testing(ClockFn fn) noexcept;  ///< nullptr restores
}  // namespace trace_detail

/// True when trace events record (default off; RLATTACK_TRACE=1 enables at
/// startup, --trace-out / RLATTACK_TRACE_OUT imply it).
bool trace_enabled() noexcept;
void set_trace_enabled(bool on) noexcept;

/// One recorded event: exactly one cache line, so two threads' slots never
/// false-share and a ring is a flat alignas(64) array. `name`/`arg_key`
/// point at static strings.
struct alignas(64) TraceEvent {
  const char* name = nullptr;  ///< nullptr marks a never-written slot
  std::uint64_t ts_ns = 0;     ///< monotonic begin (or instant) time
  std::uint64_t dur_ns = 0;    ///< 'X' events only
  const char* arg_key[2] = {nullptr, nullptr};
  double arg_val[2] = {0.0, 0.0};
  std::uint32_t tid = 0;  ///< util::ThreadPool::thread_index of the emitter
  char phase = 'X';       ///< 'X' complete, 'B' begin, 'E' end, 'i' instant
};
static_assert(sizeof(TraceEvent) == 64, "TraceEvent must stay one cache line");

/// Fixed-capacity overwrite-oldest event ring. Writers claim slots with one
/// relaxed fetch_add, so concurrent emitters (>kRings threads hashing onto
/// one ring) interleave without locks; the reader (export/snapshot) is only
/// exact when emitters are quiescent, which the process-exit hook and the
/// tests guarantee.
class TraceRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit TraceRing(std::size_t capacity);

  /// Moves exist only so TraceLog can build its ring vector; they are never
  /// used while emitters are live (the atomic head is copied relaxed).
  TraceRing(TraceRing&& other) noexcept
      : slots_(std::move(other.slots_)),
        mask_(other.mask_),
        head_(other.head_.load(std::memory_order_relaxed)) {}
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void emit(const TraceEvent& ev) noexcept {
    const std::uint64_t slot = head_.fetch_add(1, std::memory_order_relaxed);
    slots_[static_cast<std::size_t>(slot) & mask_] = ev;
  }

  std::size_t capacity() const noexcept { return slots_.size(); }
  /// Total events ever emitted (≥ retained once the ring wrapped).
  std::uint64_t emitted() const noexcept {
    return head_.load(std::memory_order_relaxed);
  }
  /// Events overwritten by wraparound.
  std::uint64_t dropped() const noexcept;
  /// Retained events, oldest first.
  std::vector<TraceEvent> snapshot() const;
  void reset() noexcept;

 private:
  std::vector<TraceEvent> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};
};

/// A set of per-thread rings plus the Chrome-JSON exporter. `global()` is
/// the process-wide log every helper below records into; local instances
/// exist for the exporter golden test.
class TraceLog {
 public:
  /// Rings in a log; emitters map via thread_index() & (kRings - 1).
  static constexpr std::size_t kRings = 32;
  /// Per-ring slot count (64 KiB of slots per ring at 64 B each).
  static constexpr std::size_t kDefaultRingCapacity = 1024;

  explicit TraceLog(std::size_t ring_capacity = kDefaultRingCapacity);
  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  /// Tag for the global log: ring storage (kRings * capacity * 64 B) is not
  /// allocated until ensure_rings(), so a process that never enables tracing
  /// keeps exactly the heap layout it would have without the tracer — GEMM
  /// throughput is sensitive to allocation-address shifts at that scale.
  struct DeferRingsTag {};
  TraceLog(std::size_t ring_capacity, DeferRingsTag);

  /// Process-wide log. First use applies RLATTACK_TRACE / RLATTACK_TRACE_OUT
  /// and installs the ThreadPool trace hooks.
  static TraceLog& global();

  /// Allocates deferred ring storage (no-op once allocated). Must
  /// happen-before any emit: set_trace_enabled(true) calls it before
  /// publishing the enabled flag with a release store.
  void ensure_rings();

  /// Records `ev` into the ring selected by ev.tid (the helpers below stamp
  /// the calling thread's index). No enabled-flag check here — callers gate.
  void emit(const TraceEvent& ev) noexcept {
    if (rings_.empty()) return;  // deferred log that was never enabled
    rings_[static_cast<std::size_t>(ev.tid) & (kRings - 1)].emit(ev);
  }

  /// Merged retained events, sorted by (ts, tid, phase, name) so the output
  /// is deterministic for a scripted sequence.
  std::vector<TraceEvent> events() const;
  /// Total events overwritten across all rings.
  std::uint64_t dropped() const noexcept;
  void reset() noexcept;

  /// Chrome trace-event JSON ("traceEvents" array, ts/dur in microseconds,
  /// timestamps rebased to the earliest retained event). Loads in
  /// chrome://tracing and Perfetto unchanged.
  std::string to_json(const std::string& binary) const;
  /// Writes to_json to `path`; false on I/O failure.
  bool write_json(const std::string& path, const std::string& binary) const;

 private:
  std::vector<TraceRing> rings_;
  std::size_t ring_capacity_;
};

/// RAII complete-event ('X') scope around the global log. A nullptr name or
/// disabled tracing makes the scope fully inert: no clock reading, nothing
/// recorded — the one relaxed enabled load is the entire disabled-path cost.
class TraceScope {
 public:
  explicit TraceScope(const char* name) noexcept;
  TraceScope(const char* name, const char* k1, double v1) noexcept;
  TraceScope(const char* name, const char* k1, double v1, const char* k2,
             double v2) noexcept;
  ~TraceScope() { stop(); }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// Emits now instead of at scope exit; idempotent.
  void stop() noexcept;

 private:
  TraceEvent ev_;  ///< ev_.name == nullptr when inert
};

/// Instant ('i') event on the global log; inert when tracing is off.
void trace_instant(const char* name) noexcept;
void trace_instant(const char* name, const char* k1, double v1) noexcept;
/// Begin/end ('B'/'E') pair on the global log; prefer TraceScope (one slot
/// instead of two) unless begin and end live in different scopes.
void trace_begin(const char* name) noexcept;
void trace_end(const char* name) noexcept;

/// Configures the process-exit trace export: on normal exit the global log
/// is written as Chrome trace JSON to `path` (empty disables). Bench
/// binaries and rlattack_cli wire --trace-out here; RLATTACK_TRACE_OUT is
/// applied at TraceLog::global() construction.
void set_trace_path(const std::string& path);
std::string trace_path();

}  // namespace rlattack::obs
