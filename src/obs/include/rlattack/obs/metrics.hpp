// Telemetry layer: process-wide registry of named counters, gauges,
// fixed-bucket histograms and span timers, plus JSON / text exporters.
//
// Design rules (the ROADMAP's observability step toward a production-scale
// system):
//  - Pre-registered handles. Instrumented code asks the registry for a
//    metric ONCE (typically from a namespace-scope struct or a function-local
//    static) and then holds a reference — the hot path never does a string
//    lookup.
//  - Lock-free atomics on the hot path. Counter::add and Gauge::set are a
//    relaxed atomic op behind a single relaxed enabled-flag load; histograms
//    and spans record into per-thread slots (indexed by
//    util::ThreadPool::thread_index) guarded by an uncontended spinlock, and
//    are merged only at export time via util::RunningStats::merge.
//  - Near-zero overhead when disabled. RLATTACK_METRICS=off (or 0/false) at
//    startup, or obs::set_metrics_enabled(false) at runtime, reduces every
//    instrumentation site to one relaxed bool load; Span takes no clock
//    readings.
//  - Telemetry only observes. Nothing here feeds back into computation, so
//    experiment rows stay bit-identical with metrics on or off at any
//    thread count (proven by tests/experiments_parallel_test.cpp).
//
// Naming scheme (see DESIGN.md "Observability"): dotted lowercase
// "subsystem.object.quantity" — e.g. nn.gemm.flops, attack.queries.gradient,
// phase.perturb, experiment.reward. Per-layer spans append the layer class
// name verbatim (nn.forward.Dense).
//
// Export: set RLATTACK_METRICS_OUT=<path> (read at registry construction)
// or call set_export_path (the --metrics-out flag of the bench binaries and
// rlattack_cli); a process-exit hook then writes one self-contained JSON
// object. run_benches.sh collects the per-binary objects into METRICS.json.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "rlattack/util/stats.hpp"
#include "rlattack/util/table.hpp"
#include "rlattack/util/thread_safety.hpp"

namespace rlattack::obs {

namespace detail {
/// Process-wide enabled flag. Inline so Counter::add compiles to
/// "load + branch + fetch_add" with no function call.
inline std::atomic<bool> g_enabled{true};
inline bool enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}
}  // namespace detail

/// True when instrumentation records (default; RLATTACK_METRICS=off/0/false
/// disables at startup).
bool metrics_enabled() noexcept;
void set_metrics_enabled(bool on) noexcept;

/// Monotonic event count (calls, iterations, flops). Hot-path safe: one
/// relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!detail::enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }
  const std::string& name() const noexcept { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (worker counts, config knobs).
class Gauge {
 public:
  void set(double v) noexcept {
    if (!detail::enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }
  const std::string& name() const noexcept { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<double> value_{0.0};
};

namespace detail {
/// Per-thread recording slot: a spinlock-guarded RunningStats (plus bucket
/// counts for histograms). Threads map to slots via
/// util::ThreadPool::thread_index() & (kSlots - 1); the lock is only ever
/// contended when >kSlots live threads collide on one slot, so the hot path
/// is one uncontended atomic exchange. Cache-line aligned so two workers
/// never false-share.
inline constexpr std::size_t kSlots = 32;

/// Log-spaced quantile sketch shared by Histogram and SpanStat: 8 buckets
/// per decade over [1e-9, 1e9) plus an underflow bucket (≤ 0 or below 1e-9;
/// its representative value is 0) and an overflow bucket. Merging per-thread
/// partials is element-wise addition of the counts, which is what makes
/// p50/p95/p99 merge-safe across StatSlots — the relative error of a
/// reported quantile is bounded by the bucket width (~33% per step, i.e.
/// the right order of magnitude and then some, which is what tail-latency
/// triage needs).
inline constexpr std::size_t kSketchPerDecade = 8;
inline constexpr int kSketchMinExp = -9;  ///< first finite bucket at 1e-9
inline constexpr int kSketchMaxExp = 9;   ///< overflow at 1e9
inline constexpr std::size_t kSketchBuckets =
    2 + kSketchPerDecade *
            static_cast<std::size_t>(kSketchMaxExp - kSketchMinExp);

/// Bucket index for a sample (0 = underflow, kSketchBuckets-1 = overflow).
std::size_t sketch_index(double x) noexcept;
/// Representative value of a bucket: the geometric midpoint of its range
/// (0 for underflow, 1e9 for overflow). Exposed so the exporter golden test
/// can compose its expected quantile spellings.
double sketch_value(std::size_t idx) noexcept;

/// A capability in its own right: stats/buckets may only be touched between
/// acquire() and release() (metrics.cpp's SlotLock is the scoped form).
struct alignas(64) RLATTACK_CAPABILITY("spinlock") StatSlot {
  void acquire() noexcept RLATTACK_ACQUIRE() {
    while (lock.test_and_set(std::memory_order_acquire)) {}
  }
  void release() noexcept RLATTACK_RELEASE() {
    lock.clear(std::memory_order_release);
  }

  std::atomic_flag lock;  // C++20: default-initialized clear
  util::RunningStats stats;
  std::vector<std::uint64_t> buckets;  ///< histograms only; else empty
  std::vector<std::uint64_t> sketch;   ///< kSketchBuckets quantile counts
};
}  // namespace detail

/// Quantile estimates read off the merged log-bucket sketch.
struct Quantiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Summary of merged per-thread partials at a point in time.
struct HistogramSnapshot {
  util::RunningStats stats;
  Quantiles quantiles;                 ///< from the merged log sketch
  std::vector<double> bounds;          ///< ascending upper bucket bounds
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (last = +inf)
};

/// Fixed-bucket histogram over double samples (perturbation norms, sizes).
class Histogram {
 public:
  void record(double x) noexcept;
  HistogramSnapshot snapshot() const;
  void reset() noexcept;
  const std::string& name() const noexcept { return name_; }
  const std::vector<double>& bounds() const noexcept { return bounds_; }

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds);
  std::string name_;
  std::vector<double> bounds_;
  mutable std::vector<detail::StatSlot> slots_;
};

/// Duration accumulator for RAII Span timers (seconds). Same per-thread
/// slot machinery as Histogram, without buckets.
class SpanStat {
 public:
  /// Records one duration (Span calls this; tests may call it directly).
  void record(double seconds) noexcept;
  util::RunningStats snapshot() const;
  /// p50/p95/p99 estimates merged across the per-thread sketches.
  Quantiles quantiles() const;
  void reset() noexcept;
  const std::string& name() const noexcept { return name_; }

 private:
  friend class MetricsRegistry;
  explicit SpanStat(std::string name);
  std::string name_;
  mutable std::vector<detail::StatSlot> slots_;
};

/// RAII wall-clock timer. Construction takes a clock reading only when
/// metrics are enabled (or `always`); destruction records the elapsed
/// seconds into the SpanStat. `always` spans measure even when metrics are
/// disabled — the experiment drivers use this so ExperimentTiming /
/// bench_times.csv keep their wall-clock regardless of RLATTACK_METRICS —
/// but still only *record* the metric when enabled.
class Span {
 public:
  explicit Span(SpanStat& stat, bool always = false) noexcept;
  ~Span() { stop(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Elapsed seconds: running total while live, frozen at the stop value
  /// once stopped, 0 when inert.
  double seconds() const noexcept;

  /// Records now instead of at scope exit; idempotent.
  void stop() noexcept;

 private:
  SpanStat* stat_ = nullptr;
  std::uint64_t start_ns_ = 0;
  double elapsed_s_ = 0.0;  ///< frozen duration after stop()
};

/// Thread-safe name -> metric registry. `global()` is the process-wide
/// instance every instrumentation site registers with; local instances
/// exist for tests (the exporter golden test) and embedders.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry. First use applies RLATTACK_METRICS and
  /// RLATTACK_METRICS_OUT from the environment.
  static MetricsRegistry& global();

  /// Returns the metric registered under `name`, creating it on first use.
  /// Registering one name as two different metric types throws
  /// std::logic_error; re-registering a histogram with different bounds
  /// also throws.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);
  SpanStat& span(const std::string& name);

  /// Zeroes every registered metric (registrations and handles survive).
  void reset();

  /// One self-contained JSON object (counters/gauges/histograms/spans),
  /// deterministically ordered by metric name.
  std::string to_json(const std::string& binary) const;

  /// Writes to_json to `path`; false on I/O failure.
  bool write_json(const std::string& path, const std::string& binary) const;

  /// Text rendering through the existing util::table format.
  util::TableWriter to_table() const;

 private:
  /// Guards the registration maps only — returned metric handles are
  /// internally synchronized (atomics / slot spinlocks) and deliberately
  /// escape the lock, which is what makes the hot path lookup-free.
  mutable util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      RLATTACK_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      RLATTACK_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      RLATTACK_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<SpanStat>> spans_
      RLATTACK_GUARDED_BY(mutex_);
};

/// Configures the process-exit METRICS export: on normal exit the global
/// registry is written as JSON to `path` (empty disables). The bench
/// binaries and rlattack_cli wire --metrics-out here; run_benches.sh /
/// run_checks.sh use the RLATTACK_METRICS_OUT environment variable instead.
void set_export_path(const std::string& path);
std::string export_path();

/// Binary name stamped into the exported JSON ("binary" key).
void set_export_binary(const std::string& name);
std::string export_binary();

}  // namespace rlattack::obs
