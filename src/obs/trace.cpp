#include "rlattack/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>

#include "rlattack/obs/json_util.hpp"
#include "rlattack/obs/metrics.hpp"
#include "rlattack/util/env.hpp"
#include "rlattack/util/thread_pool.hpp"

namespace rlattack::obs {

namespace trace_detail {

namespace {
std::atomic<ClockFn> g_clock{nullptr};
}  // namespace

std::uint64_t now_ns() noexcept {
  if (const ClockFn fn = g_clock.load(std::memory_order_relaxed)) return fn();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_clock_for_testing(ClockFn fn) noexcept {
  g_clock.store(fn, std::memory_order_relaxed);
}

}  // namespace trace_detail

bool trace_enabled() noexcept { return trace_detail::trace_on(); }

void set_trace_enabled(bool on) noexcept {
  TraceLog& log = TraceLog::global();  // export hook / pool hooks exist
  if (on) log.ensure_rings();  // happens-before the release store below
  trace_detail::g_trace_enabled.store(on, std::memory_order_release);
}

// --- TraceRing -------------------------------------------------------------

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity)
    : slots_(round_up_pow2(capacity < 2 ? 2 : capacity)),
      mask_(slots_.size() - 1) {}

std::uint64_t TraceRing::dropped() const noexcept {
  const std::uint64_t emitted = head_.load(std::memory_order_relaxed);
  const std::uint64_t cap = slots_.size();
  return emitted > cap ? emitted - cap : 0;
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  const std::uint64_t emitted = head_.load(std::memory_order_acquire);
  const std::uint64_t cap = slots_.size();
  const std::uint64_t count = emitted < cap ? emitted : cap;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(count));
  // Oldest retained event first: the ring wrapped (emitted - count) slots
  // ago, so slot (emitted - count) & mask_ holds the oldest survivor.
  for (std::uint64_t i = emitted - count; i < emitted; ++i)
    out.push_back(slots_[static_cast<std::size_t>(i) & mask_]);
  return out;
}

void TraceRing::reset() noexcept {
  for (TraceEvent& ev : slots_) ev = TraceEvent{};
  head_.store(0, std::memory_order_relaxed);
}

// --- TraceLog --------------------------------------------------------------

namespace {

// Export state mirrors metrics.cpp: leaked function-local statics so the
// atexit hook and late static destructors always see live objects.
std::mutex& trace_export_mutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

std::string& trace_path_storage() {
  static std::string* s = new std::string;
  return *s;
}

std::once_flag& trace_hook_once() {
  static std::once_flag* f = new std::once_flag;
  return *f;
}

void trace_export_at_exit() {
  const std::string path = trace_path();
  if (path.empty()) return;
  TraceLog::global().write_json(path, export_binary());
}

// ThreadPool trace hooks: the pool cannot depend on obs, so it calls these
// through function pointers installed at TraceLog::global() construction.
// `begin` is the entire disabled-path cost: one relaxed load, no clock.
std::uint64_t pool_trace_begin() noexcept {
  return trace_detail::trace_on() ? trace_detail::now_ns() : 0;
}

void pool_trace_end(const char* name, std::uint64_t begin_ns, double chunks,
                    double workers) noexcept {
  TraceEvent ev;
  ev.name = name;
  ev.phase = 'X';
  ev.ts_ns = begin_ns;
  const std::uint64_t end_ns = trace_detail::now_ns();
  ev.dur_ns = end_ns > begin_ns ? end_ns - begin_ns : 0;
  ev.arg_key[0] = "chunks";
  ev.arg_val[0] = chunks;
  ev.arg_key[1] = "workers";
  ev.arg_val[1] = workers;
  ev.tid = static_cast<std::uint32_t>(util::ThreadPool::thread_index());
  TraceLog::global().emit(ev);
}

}  // namespace

TraceLog::TraceLog(std::size_t ring_capacity) : ring_capacity_(ring_capacity) {
  ensure_rings();
}

TraceLog::TraceLog(std::size_t ring_capacity, DeferRingsTag)
    : ring_capacity_(ring_capacity) {}

void TraceLog::ensure_rings() {
  // Guards concurrent enable calls; emitters never reach the rings until a
  // release-store of the enabled flag has published the allocation.
  static std::mutex* mu = new std::mutex;
  std::lock_guard<std::mutex> lock(*mu);
  if (!rings_.empty()) return;
  rings_.reserve(kRings);
  for (std::size_t i = 0; i < kRings; ++i) rings_.emplace_back(ring_capacity_);
}

TraceLog& TraceLog::global() {
  // Leaked singleton (see MetricsRegistry::global): emitters may record
  // during static destruction, and the atexit export hook reads it last.
  static TraceLog* log = [] {
    auto* l = new TraceLog(kDefaultRingCapacity, DeferRingsTag{});
    bool enable = false;
    bool trace_var_set = false;
    if (const char* env = util::env::get(util::env::Var::kTrace)) {
      trace_var_set = *env != '\0';
      std::string v(env);
      std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
      });
      enable = trace_var_set && v != "off" && v != "0" && v != "false";
    }
    if (const char* out = util::env::get(util::env::Var::kTraceOut))
      if (*out != '\0') {
        set_trace_path(out);
        if (!trace_var_set) enable = true;  // an export path implies tracing
      }
    if (enable) {
      l->ensure_rings();
      trace_detail::g_trace_enabled.store(true, std::memory_order_release);
    }
    util::ThreadPool::set_trace_hooks({&pool_trace_begin, &pool_trace_end});
    return l;
  }();
  return *log;
}

std::vector<TraceEvent> TraceLog::events() const {
  std::vector<TraceEvent> all;
  for (const TraceRing& ring : rings_) {
    std::vector<TraceEvent> part = ring.snapshot();
    all.insert(all.end(), part.begin(), part.end());
  }
  // Deterministic order for a scripted sequence: emit time, then thread,
  // then phase/name/duration as tie-breakers.
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.phase != b.phase) return a.phase < b.phase;
                     const int names =
                         std::strcmp(a.name ? a.name : "", b.name ? b.name : "");
                     if (names != 0) return names < 0;
                     return a.dur_ns < b.dur_ns;
                   });
  return all;
}

std::uint64_t TraceLog::dropped() const noexcept {
  std::uint64_t total = 0;
  for (const TraceRing& ring : rings_) total += ring.dropped();
  return total;
}

void TraceLog::reset() noexcept {
  for (TraceRing& ring : rings_) ring.reset();
}

std::string TraceLog::to_json(const std::string& binary) const {
  const std::vector<TraceEvent> evs = events();
  // Rebase timestamps to the earliest retained event so the viewer opens at
  // t = 0 regardless of process uptime.
  std::uint64_t base = evs.empty() ? 0 : evs.front().ts_ns;
  for (const TraceEvent& ev : evs) base = std::min(base, ev.ts_ns);

  std::ostringstream out;
  out << "{\n";
  out << "  \"displayTimeUnit\": \"ms\",\n";
  out << "  \"otherData\": {\"binary\": \"" << detail::json_escape(binary)
      << "\", \"dropped\": " << dropped() << "},\n";
  out << "  \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& ev : evs) {
    if (ev.name == nullptr) continue;
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"name\": \"" << detail::json_escape(ev.name)
        << "\", \"cat\": \"rlattack\", \"ph\": \"" << ev.phase
        << "\", \"pid\": 1, \"tid\": " << ev.tid
        << ", \"ts\": " << detail::fmt_double(
               static_cast<double>(ev.ts_ns - base) / 1000.0);
    if (ev.phase == 'X')
      out << ", \"dur\": "
          << detail::fmt_double(static_cast<double>(ev.dur_ns) / 1000.0);
    if (ev.phase == 'i') out << ", \"s\": \"t\"";
    if (ev.arg_key[0] != nullptr) {
      out << ", \"args\": {";
      for (int i = 0; i < 2; ++i) {
        if (ev.arg_key[i] == nullptr) continue;
        if (i > 0 && ev.arg_key[0] != nullptr && i == 1) out << ", ";
        out << "\"" << detail::json_escape(ev.arg_key[i])
            << "\": " << detail::fmt_double(ev.arg_val[i]);
      }
      out << "}";
    }
    out << "}";
  }
  if (!first) out << "\n  ";
  out << "]\n";
  out << "}\n";
  return out.str();
}

bool TraceLog::write_json(const std::string& path,
                          const std::string& binary) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_json(binary);
  return static_cast<bool>(out);
}

// --- emit helpers ----------------------------------------------------------

namespace {

void emit_stamped(TraceEvent& ev) noexcept {
  ev.tid = static_cast<std::uint32_t>(util::ThreadPool::thread_index());
  TraceLog::global().emit(ev);
}

}  // namespace

TraceScope::TraceScope(const char* name) noexcept {
  if (name == nullptr || !trace_detail::trace_on()) return;
  ev_.name = name;
  ev_.ts_ns = trace_detail::now_ns();
}

TraceScope::TraceScope(const char* name, const char* k1, double v1) noexcept
    : TraceScope(name) {
  if (ev_.name == nullptr) return;
  ev_.arg_key[0] = k1;
  ev_.arg_val[0] = v1;
}

TraceScope::TraceScope(const char* name, const char* k1, double v1,
                       const char* k2, double v2) noexcept
    : TraceScope(name, k1, v1) {
  if (ev_.name == nullptr) return;
  ev_.arg_key[1] = k2;
  ev_.arg_val[1] = v2;
}

void TraceScope::stop() noexcept {
  if (ev_.name == nullptr) return;
  const std::uint64_t end_ns = trace_detail::now_ns();
  ev_.dur_ns = end_ns > ev_.ts_ns ? end_ns - ev_.ts_ns : 0;
  ev_.phase = 'X';
  emit_stamped(ev_);
  ev_.name = nullptr;
}

void trace_instant(const char* name) noexcept {
  if (!trace_detail::trace_on()) return;
  TraceEvent ev;
  ev.name = name;
  ev.phase = 'i';
  ev.ts_ns = trace_detail::now_ns();
  emit_stamped(ev);
}

void trace_instant(const char* name, const char* k1, double v1) noexcept {
  if (!trace_detail::trace_on()) return;
  TraceEvent ev;
  ev.name = name;
  ev.phase = 'i';
  ev.ts_ns = trace_detail::now_ns();
  ev.arg_key[0] = k1;
  ev.arg_val[0] = v1;
  emit_stamped(ev);
}

void trace_begin(const char* name) noexcept {
  if (!trace_detail::trace_on()) return;
  TraceEvent ev;
  ev.name = name;
  ev.phase = 'B';
  ev.ts_ns = trace_detail::now_ns();
  emit_stamped(ev);
}

void trace_end(const char* name) noexcept {
  if (!trace_detail::trace_on()) return;
  TraceEvent ev;
  ev.name = name;
  ev.phase = 'E';
  ev.ts_ns = trace_detail::now_ns();
  emit_stamped(ev);
}

// --- export wiring ---------------------------------------------------------

void set_trace_path(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(trace_export_mutex());
    trace_path_storage() = path;
  }
  if (!path.empty())
    std::call_once(trace_hook_once(), [] { std::atexit(trace_export_at_exit); });
}

std::string trace_path() {
  std::lock_guard<std::mutex> lock(trace_export_mutex());
  return trace_path_storage();
}

namespace {
// Force TraceLog::global() construction at static-init time: every binary
// that links an instrumented TU also links this one (TraceScope lives
// here), so RLATTACK_TRACE=1 works without any code calling into tracing
// first.
const bool g_trace_boot = (TraceLog::global(), true);
}  // namespace

}  // namespace rlattack::obs
