#include "rlattack/obs/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "rlattack/obs/json_util.hpp"
#include "rlattack/util/env.hpp"
#include "rlattack/util/thread_pool.hpp"

namespace rlattack::obs {

namespace {

/// Uncontended spinlock over a per-thread StatSlot: one atomic exchange to
/// acquire. Contention requires more than kSlots live threads hashing onto
/// the same slot, which the episode/thread-pool layer never produces.
class RLATTACK_SCOPED_CAPABILITY SlotLock {
 public:
  explicit SlotLock(detail::StatSlot& slot) noexcept RLATTACK_ACQUIRE(slot)
      : slot_(slot) {
    slot_.acquire();
  }
  ~SlotLock() RLATTACK_RELEASE() { slot_.release(); }
  SlotLock(const SlotLock&) = delete;
  SlotLock& operator=(const SlotLock&) = delete;

 private:
  detail::StatSlot& slot_;
};

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

using detail::fmt_double;
using detail::json_escape;

///// Quantile read-off: rank r(q) = max(1, ceil(q·n)), reported value = the
/// representative of the first bucket whose cumulative count reaches r.
Quantiles quantiles_from_sketch(const std::vector<std::uint64_t>& sketch) {
  Quantiles q;
  std::uint64_t n = 0;
  for (const std::uint64_t c : sketch) n += c;
  if (n == 0) return q;
  const auto pick = [&](double p) {
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(p * static_cast<double>(n))));
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < sketch.size(); ++b) {
      cum += sketch[b];
      if (cum >= rank) return detail::sketch_value(b);
    }
    return detail::sketch_value(sketch.size() - 1);
  };
  q.p50 = pick(0.50);
  q.p95 = pick(0.95);
  q.p99 = pick(0.99);
  return q;
}

}  // namespace

namespace detail {

std::size_t sketch_index(double x) noexcept {
  if (!(x >= 1e-9)) return 0;  // underflow; also catches NaN and negatives
  if (x >= 1e9) return kSketchBuckets - 1;
  const double pos =
      (std::log10(x) - kSketchMinExp) * static_cast<double>(kSketchPerDecade);
  const std::size_t b = 1 + static_cast<std::size_t>(pos);  // pos >= 0: floor
  return b > kSketchBuckets - 2 ? kSketchBuckets - 2 : b;
}

double sketch_value(std::size_t idx) noexcept {
  if (idx == 0) return 0.0;
  if (idx >= kSketchBuckets - 1) return 1e9;
  const double pos = kSketchMinExp + (static_cast<double>(idx - 1) + 0.5) /
                                         static_cast<double>(kSketchPerDecade);
  return std::pow(10.0, pos);
}

}  // namespace detail

bool metrics_enabled() noexcept { return detail::enabled(); }

void set_metrics_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

// --- Histogram -------------------------------------------------------------

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)),
      slots_(detail::kSlots) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::logic_error("Histogram " + name_ + ": bounds not ascending");
  for (auto& slot : slots_) {
    slot.buckets.assign(bounds_.size() + 1, 0);
    slot.sketch.assign(detail::kSketchBuckets, 0);
  }
}

void Histogram::record(double x) noexcept {
  if (!detail::enabled()) return;
  detail::StatSlot& slot =
      slots_[util::ThreadPool::thread_index() & (detail::kSlots - 1)];
  std::size_t b = 0;
  while (b < bounds_.size() && x > bounds_[b]) ++b;
  const std::size_t sk = detail::sketch_index(x);
  SlotLock lock(slot);
  slot.stats.add(x);
  ++slot.buckets[b];
  ++slot.sketch[sk];
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets.assign(bounds_.size() + 1, 0);
  std::vector<std::uint64_t> sketch(detail::kSketchBuckets, 0);
  for (detail::StatSlot& slot : slots_) {
    SlotLock lock(slot);
    snap.stats.merge(slot.stats);
    for (std::size_t b = 0; b < snap.buckets.size(); ++b)
      snap.buckets[b] += slot.buckets[b];
    for (std::size_t b = 0; b < sketch.size(); ++b)
      sketch[b] += slot.sketch[b];
  }
  snap.quantiles = quantiles_from_sketch(sketch);
  return snap;
}

void Histogram::reset() noexcept {
  for (detail::StatSlot& slot : slots_) {
    SlotLock lock(slot);
    slot.stats = util::RunningStats();
    std::fill(slot.buckets.begin(), slot.buckets.end(), 0);
    std::fill(slot.sketch.begin(), slot.sketch.end(), 0);
  }
}

// --- SpanStat / Span -------------------------------------------------------

SpanStat::SpanStat(std::string name)
    : name_(std::move(name)), slots_(detail::kSlots) {
  for (auto& slot : slots_) slot.sketch.assign(detail::kSketchBuckets, 0);
}

void SpanStat::record(double seconds) noexcept {
  if (!detail::enabled()) return;
  detail::StatSlot& slot =
      slots_[util::ThreadPool::thread_index() & (detail::kSlots - 1)];
  const std::size_t sk = detail::sketch_index(seconds);
  SlotLock lock(slot);
  slot.stats.add(seconds);
  ++slot.sketch[sk];
}

util::RunningStats SpanStat::snapshot() const {
  util::RunningStats merged;
  for (detail::StatSlot& slot : slots_) {
    SlotLock lock(slot);
    merged.merge(slot.stats);
  }
  return merged;
}

Quantiles SpanStat::quantiles() const {
  std::vector<std::uint64_t> sketch(detail::kSketchBuckets, 0);
  for (detail::StatSlot& slot : slots_) {
    SlotLock lock(slot);
    for (std::size_t b = 0; b < sketch.size(); ++b)
      sketch[b] += slot.sketch[b];
  }
  return quantiles_from_sketch(sketch);
}

void SpanStat::reset() noexcept {
  for (detail::StatSlot& slot : slots_) {
    SlotLock lock(slot);
    slot.stats = util::RunningStats();
    std::fill(slot.sketch.begin(), slot.sketch.end(), 0);
  }
}

Span::Span(SpanStat& stat, bool always) noexcept
    : stat_((always || detail::enabled()) ? &stat : nullptr) {
  if (stat_) start_ns_ = now_ns();
}

double Span::seconds() const noexcept {
  if (!stat_) return elapsed_s_;
  return static_cast<double>(now_ns() - start_ns_) * 1e-9;
}

void Span::stop() noexcept {
  if (!stat_) return;
  elapsed_s_ = static_cast<double>(now_ns() - start_ns_) * 1e-9;
  // SpanStat::record re-checks the enabled flag, so an always-measuring
  // span still skips the metric when telemetry is off.
  stat_->record(elapsed_s_);
  stat_ = nullptr;
}

// --- MetricsRegistry -------------------------------------------------------

namespace {

// Export state lives behind function-local leaked statics: registration can
// happen during cross-TU static initialization (namespace-scope handle
// structs call MetricsRegistry::global(), which applies RLATTACK_METRICS_OUT
// immediately), so namespace-scope objects in this TU may not exist yet.
// Leaking keeps them valid for the atexit hook and late static destructors.
util::Mutex& export_mutex() {
  static util::Mutex* m = new util::Mutex;
  return *m;
}

std::string& export_path_storage() {
  static std::string* s = new std::string;
  return *s;
}

std::string& export_binary_storage() {
  static std::string* s = new std::string("rlattack");
  return *s;
}

std::once_flag& export_hook_once() {
  static std::once_flag* f = new std::once_flag;
  return *f;
}

void export_at_exit() {
  const std::string path = export_path();
  if (path.empty()) return;
  MetricsRegistry::global().write_json(path, export_binary());
}

}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  // Leaked singleton: handles held by instrumented code must stay valid
  // through static destruction and the atexit export hook.
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry;
    if (const char* env = util::env::get(util::env::Var::kMetrics)) {
      std::string v(env);
      std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
      });
      if (v == "off" || v == "0" || v == "false") set_metrics_enabled(false);
    }
    if (const char* out = util::env::get(util::env::Var::kMetricsOut))
      if (*out != '\0') set_export_path(out);
    return r;
  }();
  return *registry;
}

namespace {

/// Cross-type name collisions are registration bugs; diagnose immediately.
void check_unclaimed(const std::string& name, bool claimed_elsewhere) {
  if (claimed_elsewhere)
    throw std::logic_error("MetricsRegistry: metric '" + name +
                           "' already registered as a different type");
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  check_unclaimed(name, gauges_.count(name) || histograms_.count(name) ||
                            spans_.count(name));
  auto& slot = counters_[name];
  slot.reset(new Counter(name));
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  check_unclaimed(name, counters_.count(name) || histograms_.count(name) ||
                            spans_.count(name));
  auto& slot = gauges_[name];
  slot.reset(new Gauge(name));
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  util::MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    if (it->second->bounds() != bounds)
      throw std::logic_error("MetricsRegistry: histogram '" + name +
                             "' re-registered with different bounds");
    return *it->second;
  }
  check_unclaimed(name, counters_.count(name) || gauges_.count(name) ||
                            spans_.count(name));
  auto& slot = histograms_[name];
  slot.reset(new Histogram(name, std::move(bounds)));
  return *slot;
}

SpanStat& MetricsRegistry::span(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto it = spans_.find(name);
  if (it != spans_.end()) return *it->second;
  check_unclaimed(name, counters_.count(name) || gauges_.count(name) ||
                            histograms_.count(name));
  auto& slot = spans_[name];
  slot.reset(new SpanStat(name));
  return *slot;
}

void MetricsRegistry::reset() {
  util::MutexLock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, s] : spans_) s->reset();
}

std::string MetricsRegistry::to_json(const std::string& binary) const {
  util::MutexLock lock(mutex_);
  std::ostringstream out;
  out << "{\n";
  out << "  \"binary\": \"" << json_escape(binary) << "\",\n";

  out << "  \"counters\": {";
  {
    bool first = true;
    for (const auto& [name, c] : counters_) {
      out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
          << "\": " << c->value();
      first = false;
    }
    if (!first) out << "\n  ";
  }
  out << "},\n";

  out << "  \"gauges\": {";
  {
    bool first = true;
    for (const auto& [name, g] : gauges_) {
      out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
          << "\": " << fmt_double(g->value());
      first = false;
    }
    if (!first) out << "\n  ";
  }
  out << "},\n";

  out << "  \"histograms\": {";
  {
    bool first = true;
    for (const auto& [name, h] : histograms_) {
      const HistogramSnapshot snap = h->snapshot();
      out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
          << "\": {\"count\": " << snap.stats.count()
          << ", \"sum\": " << fmt_double(snap.stats.sum())
          << ", \"mean\": " << fmt_double(snap.stats.mean())
          << ", \"stddev\": " << fmt_double(snap.stats.stddev())
          << ", \"min\": " << fmt_double(snap.stats.min())
          << ", \"max\": " << fmt_double(snap.stats.max())
          << ", \"p50\": " << fmt_double(snap.quantiles.p50)
          << ", \"p95\": " << fmt_double(snap.quantiles.p95)
          << ", \"p99\": " << fmt_double(snap.quantiles.p99)
          << ", \"buckets\": [";
      for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
        if (b > 0) out << ", ";
        out << "{\"le\": "
            << (b < snap.bounds.size() ? fmt_double(snap.bounds[b]) : "null")
            << ", \"count\": " << snap.buckets[b] << "}";
      }
      out << "]}";
      first = false;
    }
    if (!first) out << "\n  ";
  }
  out << "},\n";

  out << "  \"spans\": {";
  {
    bool first = true;
    for (const auto& [name, s] : spans_) {
      const util::RunningStats stats = s->snapshot();
      const Quantiles q = s->quantiles();
      out << (first ? "\n" : ",\n") << "    \"" << json_escape(name)
          << "\": {\"count\": " << stats.count()
          << ", \"total_s\": " << fmt_double(stats.sum())
          << ", \"mean_s\": " << fmt_double(stats.mean())
          << ", \"min_s\": " << fmt_double(stats.min())
          << ", \"max_s\": " << fmt_double(stats.max())
          << ", \"p50_s\": " << fmt_double(q.p50)
          << ", \"p95_s\": " << fmt_double(q.p95)
          << ", \"p99_s\": " << fmt_double(q.p99) << "}";
      first = false;
    }
    if (!first) out << "\n  ";
  }
  out << "}\n";

  out << "}\n";
  return out.str();
}

bool MetricsRegistry::write_json(const std::string& path,
                                 const std::string& binary) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_json(binary);
  return static_cast<bool>(out);
}

util::TableWriter MetricsRegistry::to_table() const {
  util::MutexLock lock(mutex_);
  util::TableWriter table(
      {"metric", "type", "count", "value", "mean", "min", "max"});
  for (const auto& [name, c] : counters_)
    table.add_row({name, "counter", std::to_string(c->value()), "", "", "",
                   ""});
  for (const auto& [name, g] : gauges_)
    table.add_row({name, "gauge", "", util::fmt(g->value(), 4), "", "", ""});
  for (const auto& [name, h] : histograms_) {
    const HistogramSnapshot snap = h->snapshot();
    table.add_row({name, "histogram", std::to_string(snap.stats.count()),
                   util::fmt(snap.stats.sum(), 4),
                   util::fmt(snap.stats.mean(), 4),
                   util::fmt(snap.stats.min(), 4),
                   util::fmt(snap.stats.max(), 4)});
  }
  for (const auto& [name, s] : spans_) {
    const util::RunningStats stats = s->snapshot();
    table.add_row({name, "span", std::to_string(stats.count()),
                   util::fmt(stats.sum(), 4), util::fmt(stats.mean(), 4),
                   util::fmt(stats.min(), 4), util::fmt(stats.max(), 4)});
  }
  return table;
}

// --- export wiring ---------------------------------------------------------

void set_export_path(const std::string& path) {
  {
    util::MutexLock lock(export_mutex());
    export_path_storage() = path;
  }
  if (!path.empty())
    std::call_once(export_hook_once(), [] { std::atexit(export_at_exit); });
}

std::string export_path() {
  util::MutexLock lock(export_mutex());
  return export_path_storage();
}

void set_export_binary(const std::string& name) {
  util::MutexLock lock(export_mutex());
  export_binary_storage() = name;
}

std::string export_binary() {
  util::MutexLock lock(export_mutex());
  return export_binary_storage();
}

}  // namespace rlattack::obs
