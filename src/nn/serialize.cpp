#include "rlattack/nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace rlattack::nn {

namespace {
constexpr char kMagic[4] = {'R', 'L', 'A', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
bool write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
  return static_cast<bool>(out);
}

template <typename T>
bool read_pod(std::ifstream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  return static_cast<bool>(in);
}
}  // namespace

bool save_parameters(Layer& model, const std::string& path) {
  return save_parameters(model.params(), path);
}

bool load_parameters(Layer& model, const std::string& path) {
  return load_parameters(model.params(), path);
}

bool save_parameters(const std::vector<Param>& params,
                     const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(kMagic, sizeof(kMagic));
  if (!write_pod(out, kVersion)) return false;
  if (!write_pod(out, static_cast<std::uint64_t>(params.size()))) return false;
  for (const Param& p : params) {
    const auto& shape = p.value->shape();
    if (!write_pod(out, static_cast<std::uint64_t>(shape.size()))) return false;
    for (std::size_t d : shape)
      if (!write_pod(out, static_cast<std::uint64_t>(d))) return false;
    auto data = p.value->data();
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!out) return false;
  }
  return true;
}

bool load_parameters(const std::vector<Param>& params,
                     const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  std::uint32_t version = 0;
  if (!read_pod(in, version) || version != kVersion) return false;
  std::uint64_t count = 0;
  if (!read_pod(in, count)) return false;
  if (count != params.size()) return false;
  for (const Param& p : params) {
    std::uint64_t rank = 0;
    if (!read_pod(in, rank)) return false;
    const auto& shape = p.value->shape();
    if (rank != shape.size()) return false;
    for (std::size_t d = 0; d < rank; ++d) {
      std::uint64_t extent = 0;
      if (!read_pod(in, extent) || extent != shape[d]) return false;
    }
    auto data = p.value->data();
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!in) return false;
  }
  return true;
}

}  // namespace rlattack::nn
