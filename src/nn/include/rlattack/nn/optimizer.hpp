// First-order optimizers over a layer's parameter set. The optimizer binds
// to the Param views at construction; the owning layer must outlive it and
// must not be moved afterwards.
#pragma once

#include <vector>

#include "rlattack/nn/layer.hpp"

namespace rlattack::nn {

class Optimizer {
 public:
  explicit Optimizer(Layer& model) : owned_(model.params()), params_(&owned_) {}
  /// Binds to an explicit parameter set (for multi-input models that are
  /// not a single Layer, e.g. the seq2seq approximator).
  explicit Optimizer(std::vector<Param> params)
      : owned_(std::move(params)), params_(&owned_) {}
  /// Binds to an externally owned parameter vector without copying it —
  /// pass a model's cached params() span (e.g. Seq2SeqModel) so the
  /// optimizer and the model share one set of views. The vector and the
  /// tensors it aliases must outlive the optimizer and must not be moved or
  /// resized afterwards (the same no-move contract the views themselves
  /// carry).
  explicit Optimizer(const std::vector<Param>* params) : params_(params) {}
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the accumulated gradients and leaves them
  /// zeroed. The update kernels fold the zeroing into their parameter sweep
  /// (each gradient element is set to zero right after its last read), so
  /// there is no second pass over the gradient tensors.
  void step() { apply(); }

  /// Zeroes every bound gradient tensor (for discarding accumulated
  /// gradients without an update; step() already leaves them zeroed).
  void zero_grad() {
    for (const Param& p : *params_) p.grad->zero();
  }

  /// Scales all gradients so their global L2 norm is at most `max_norm`.
  void clip_grad_norm(float max_norm);

 protected:
  virtual void apply() = 0;
  const std::vector<Param>& params() const noexcept { return *params_; }

 private:
  std::vector<Param> owned_;
  const std::vector<Param>* params_;
};

/// Stochastic gradient descent with optional classical momentum.
/// The paper trains seq2seq approximators with SGD, lr = 1e-4.
class Sgd final : public Optimizer {
 public:
  Sgd(Layer& model, float lr, float momentum = 0.0f);
  Sgd(std::vector<Param> params, float lr, float momentum = 0.0f);
  Sgd(const std::vector<Param>* params, float lr, float momentum = 0.0f);

  float learning_rate() const noexcept { return lr_; }
  void set_learning_rate(float lr) noexcept { lr_ = lr; }

 private:
  void apply() override;
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba 2015); used by the RL trainers.
class Adam final : public Optimizer {
 public:
  Adam(Layer& model, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f);
  Adam(std::vector<Param> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  Adam(const std::vector<Param>* params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);

  float learning_rate() const noexcept { return lr_; }
  void set_learning_rate(float lr) noexcept { lr_ = lr; }

 private:
  void apply() override;
  float lr_, beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace rlattack::nn
