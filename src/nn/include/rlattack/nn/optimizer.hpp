// First-order optimizers over a layer's parameter set. The optimizer binds
// to the Param views at construction; the owning layer must outlive it and
// must not be moved afterwards.
#pragma once

#include <vector>

#include "rlattack/nn/layer.hpp"

namespace rlattack::nn {

class Optimizer {
 public:
  explicit Optimizer(Layer& model) : params_(model.params()) {}
  /// Binds to an explicit parameter set (for multi-input models that are
  /// not a single Layer, e.g. the seq2seq approximator).
  explicit Optimizer(std::vector<Param> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;
  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the accumulated gradients, then zeroes them.
  void step() {
    apply();
    zero_grad();
  }

  /// Zeroes every bound gradient tensor.
  void zero_grad() {
    for (Param& p : params_) p.grad->zero();
  }

  /// Scales all gradients so their global L2 norm is at most `max_norm`.
  void clip_grad_norm(float max_norm);

 protected:
  virtual void apply() = 0;
  std::vector<Param>& params() noexcept { return params_; }

 private:
  std::vector<Param> params_;
};

/// Stochastic gradient descent with optional classical momentum.
/// The paper trains seq2seq approximators with SGD, lr = 1e-4.
class Sgd final : public Optimizer {
 public:
  Sgd(Layer& model, float lr, float momentum = 0.0f);
  Sgd(std::vector<Param> params, float lr, float momentum = 0.0f);

  float learning_rate() const noexcept { return lr_; }
  void set_learning_rate(float lr) noexcept { lr_ = lr; }

 private:
  void apply() override;
  float lr_;
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba 2015); used by the RL trainers.
class Adam final : public Optimizer {
 public:
  Adam(Layer& model, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f);
  Adam(std::vector<Param> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);

  float learning_rate() const noexcept { return lr_; }
  void set_learning_rate(float lr) noexcept { lr_ = lr; }

 private:
  void apply() override;
  float lr_, beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace rlattack::nn
