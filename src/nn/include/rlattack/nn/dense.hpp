// Fully connected layer: y = x W^T + b, batched over the leading dimension.
#pragma once

#include "rlattack/nn/layer.hpp"

namespace rlattack::nn {

/// Dense (fully connected) layer.
///
/// Input  [B, in_features]  (or [in_features], treated as B = 1)
/// Output [B, out_features]
/// Weight stored as [out_features, in_features]; forward/backward are three
/// kernels::sgemm calls (y = x W^T + b, dx = g W, dW += g^T x), so all the
/// arithmetic runs on the shared cache-blocked, pool-parallel GEMM path.
class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, util::Rng& rng,
        bool relu_fan_in = false);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  std::string name() const override { return "Dense"; }

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Tensor weight_;       // [out, in]
  Tensor bias_;         // [out]
  Tensor grad_weight_;  // same shapes as the values
  Tensor grad_bias_;
  Tensor cached_input_;  // [B, in], saved by forward for the backward pass
  Tensor out_buf_;       // [B, out], reused across forward calls
  bool input_was_rank1_ = false;
};

}  // namespace rlattack::nn
