// Binary parameter checkpointing. The benches train victim agents once and
// reuse them across experiment binaries via these checkpoints.
//
// Format (little-endian):
//   magic "RLAT" | u32 version | u64 param_count |
//   per param: u64 rank | u64 extents... | f32 data...
#pragma once

#include <string>

#include "rlattack/nn/layer.hpp"

namespace rlattack::nn {

/// Saves every parameter of `model` to `path`. Returns false on I/O error.
bool save_parameters(Layer& model, const std::string& path);

/// Loads parameters saved by save_parameters into `model`. The model must
/// have been constructed with identical architecture (same parameter count
/// and shapes). Returns false on I/O error or any mismatch.
bool load_parameters(Layer& model, const std::string& path);

/// Same pair over an explicit parameter set (multi-input models).
bool save_parameters(const std::vector<Param>& params,
                     const std::string& path);
bool load_parameters(const std::vector<Param>& params,
                     const std::string& path);

}  // namespace rlattack::nn
