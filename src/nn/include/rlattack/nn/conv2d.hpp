// 2-D convolution over [B, C, H, W] tensors, with stride and zero padding.
// im2col + GEMM formulation: each batch item's receptive fields are lowered
// into a [C*k*k, OH*OW] column matrix (scratch cached across calls) and the
// convolution becomes one kernels::sgemm per item, batch-parallel on the
// shared thread pool. Backward runs the transposed GEMMs plus col2im, with
// weight/bias gradients reduced in deterministic chunk order.
#pragma once

#include "rlattack/nn/layer.hpp"

namespace rlattack::nn {

class Conv2D final : public Layer {
 public:
  /// kernel: square kernel edge; stride >= 1; pad: symmetric zero padding.
  Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t stride, std::size_t pad, util::Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  std::string name() const override { return "Conv2D"; }

  /// Output spatial extent for a given input extent; throws if the geometry
  /// does not produce at least one output position.
  std::size_t out_extent(std::size_t in_extent) const;

 private:
  std::size_t in_c_, out_c_, k_, stride_, pad_;
  Tensor weight_;       // [out_c, in_c, k, k] — rows are GEMM-ready [out_c, C*k*k]
  Tensor bias_;         // [out_c]
  Tensor grad_weight_;
  Tensor grad_bias_;
  Tensor cached_input_;  // [B, C, H, W]
  Tensor out_buf_;       // [B, out_c, OH, OW], reused across forward calls
};

/// Max pooling over non-overlapping (or strided) windows on [B, C, H, W].
class MaxPool2D final : public Layer {
 public:
  MaxPool2D(std::size_t window, std::size_t stride);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2D"; }

 private:
  std::size_t window_, stride_;
  Tensor cached_input_;
  std::vector<std::size_t> argmax_;  // flat input index of each output max
};

/// Flattens [B, ...] to [B, prod(...)]. Rank-1 inputs pass through.
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  std::vector<std::size_t> cached_shape_;
};

/// Reshapes [B, ...] to [B, item_shape...]; the per-item element count must
/// match. Inverse of Flatten, e.g. to feed flat observation vectors into a
/// Conv2D stack.
class Reshape final : public Layer {
 public:
  explicit Reshape(std::vector<std::size_t> item_shape);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Reshape"; }

 private:
  std::vector<std::size_t> item_shape_;
  std::vector<std::size_t> cached_shape_;
};

}  // namespace rlattack::nn
