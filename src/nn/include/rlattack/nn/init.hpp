// Weight initialisation schemes. All take an explicit Rng for determinism.
#pragma once

#include "rlattack/nn/tensor.hpp"
#include "rlattack/util/rng.hpp"

namespace rlattack::nn {

/// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
/// Suits tanh/sigmoid gates (LSTM) and output layers.
void xavier_uniform(Tensor& w, std::size_t fan_in, std::size_t fan_out,
                    util::Rng& rng);

/// He/Kaiming uniform: U(-a, a) with a = sqrt(6 / fan_in). Suits ReLU.
void he_uniform(Tensor& w, std::size_t fan_in, util::Rng& rng);

/// Uniform in [-bound, bound].
void uniform_init(Tensor& w, float bound, util::Rng& rng);

}  // namespace rlattack::nn
