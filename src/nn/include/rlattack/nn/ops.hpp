// Free-function tensor operations used outside the layer graph: softmax,
// argmax, one-hot encoding, clipping.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "rlattack/nn/tensor.hpp"

namespace rlattack::nn {

/// Numerically stable softmax over the last dimension, in place.
void softmax_last_dim(Tensor& t);

/// Index of the maximum element of a span (first on ties).
std::size_t argmax(std::span<const float> v);

/// Row-wise argmax of a [B, C] tensor.
std::vector<std::size_t> argmax_rows(const Tensor& t);

/// One-hot encodes `index` into a length-`classes` vector.
Tensor one_hot(std::size_t index, std::size_t classes);

/// Elementwise clamp, in place.
void clamp_(Tensor& t, float lo, float hi);

/// Global L2 norm across a set of gradient tensors; used for gradient-norm
/// clipping in the RL trainers.
double global_grad_norm(std::span<const Tensor* const> grads);

}  // namespace rlattack::nn
