// Shared compute kernels for the NN substrate. Every hot layer (Dense,
// Conv2D via im2col, Lstm's fused gate matmuls) routes its matrix products
// through the one cache-blocked, pool-parallel `sgemm` below, so a single
// optimisation point serves victim training, seq2seq approximator training
// and per-step FGSM/PGD attack crafting alike.
//
// Determinism: for fixed operand values the result is bit-identical for any
// RLATTACK_THREADS setting — the pool partitions output rows (each row's
// accumulation order is fixed by the K-blocking, not by the thread count).
#pragma once

#include <cstddef>

namespace rlattack::nn::kernels {

enum class Trans : bool { kNo = false, kYes = true };

/// C = op(A) * op(B), or C += op(A) * op(B) when `accumulate` (backward
/// passes += into gradient buffers).
///
/// Shapes: op(A) is m x k, op(B) is k x n, C is m x n. `lda`/`ldb`/`ldc` are
/// leading dimensions of the *physical* row-major arrays: A is m x k when
/// `ta == Trans::kNo` and k x m when `ta == Trans::kYes` (same for B). All
/// four transpose combinations are supported.
void sgemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
           const float* a, std::size_t lda, const float* b, std::size_t ldb,
           float* c, std::size_t ldc, bool accumulate);

/// y[i] += alpha * x[i] for i in [0, n).
void axpy(std::size_t n, float alpha, const float* x, float* y) noexcept;

/// Initialises each of the m rows of dst (leading dimension ldd) with the
/// n-vector `bias` — the "y = bias, then sgemm-accumulate" idiom that avoids
/// a separate zero-fill pass.
void broadcast_bias_rows(std::size_t m, std::size_t n, const float* bias,
                         float* dst, std::size_t ldd) noexcept;

/// out[j] += sum_i a[i * lda + j] — column sums of an m x n matrix,
/// accumulated (bias gradients).
void col_sums_accumulate(std::size_t m, std::size_t n, const float* a,
                         std::size_t lda, float* out) noexcept;

}  // namespace rlattack::nn::kernels
