// Shared compute kernels for the NN substrate. Every hot layer (Dense,
// Conv2D via im2col, Lstm's fused gate matmuls) routes its matrix products
// through the one cache-blocked, pool-parallel `sgemm` below, so a single
// optimisation point serves victim training, seq2seq approximator training
// and per-step FGSM/PGD attack crafting alike.
//
// Determinism: for fixed operand values the result is bit-identical for any
// RLATTACK_THREADS setting — the pool partitions output rows (each row's
// accumulation order is fixed by the K-blocking, not by the thread count).
// The guarantee holds *within* a SIMD kernel choice: the scalar and AVX2
// micro-kernels accumulate every output element over K in the same order,
// but the AVX2 kernel uses fused multiply-add (one rounding per term
// instead of two), so results across kernels agree only to rounding.
#pragma once

#include <cstddef>

namespace rlattack::nn::kernels {

enum class Trans : bool { kNo = false, kYes = true };

/// Which micro-kernel `sgemm` runs. kScalar is the portable cache-blocked
/// kernel (compiler-autovectorised, no FMA); kAvx2 is the hand-packed
/// 6x16 register-tiled AVX2/FMA kernel, available only when both the build
/// and the host CPU support AVX2+FMA.
enum class SimdKernel : int { kScalar = 0, kAvx2 = 1 };

/// True when the AVX2 kernel was compiled in (x86 toolchain with
/// -mavx2/-mfma support) *and* the running CPU reports AVX2+FMA.
bool avx2_available() noexcept;

/// The kernel the next sgemm call will use. Resolved once on first use:
/// the RLATTACK_SIMD environment variable ("avx2" | "scalar" | "auto")
/// wins when set and satisfiable; otherwise the best available kernel is
/// picked by cpuid. The choice is exported as the `nn.gemm.kernel` gauge
/// (0 = scalar, 1 = avx2).
SimdKernel active_simd_kernel() noexcept;

/// Overrides the kernel choice at runtime (tests and the parity matrix in
/// run_checks.sh flip this per run). Throws std::invalid_argument when
/// asked for kAvx2 on a host without it.
void set_simd_kernel(SimdKernel kernel);

/// "scalar" / "avx2" — stable names shared by RLATTACK_SIMD parsing, test
/// output and bench JSON.
const char* simd_kernel_name(SimdKernel kernel) noexcept;

/// C = op(A) * op(B), or C += op(A) * op(B) when `accumulate` (backward
/// passes += into gradient buffers).
///
/// Shapes: op(A) is m x k, op(B) is k x n, C is m x n. `lda`/`ldb`/`ldc` are
/// leading dimensions of the *physical* row-major arrays: A is m x k when
/// `ta == Trans::kNo` and k x m when `ta == Trans::kYes` (same for B). All
/// four transpose combinations are supported.
void sgemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
           const float* a, std::size_t lda, const float* b, std::size_t ldb,
           float* c, std::size_t ldc, bool accumulate);

/// y[i] += alpha * x[i] for i in [0, n).
void axpy(std::size_t n, float alpha, const float* x, float* y) noexcept;

/// Initialises each of the m rows of dst (leading dimension ldd) with the
/// n-vector `bias` — the "y = bias, then sgemm-accumulate" idiom that avoids
/// a separate zero-fill pass.
void broadcast_bias_rows(std::size_t m, std::size_t n, const float* bias,
                         float* dst, std::size_t ldd) noexcept;

/// out[j] += sum_i a[i * lda + j] — column sums of an m x n matrix,
/// accumulated (bias gradients).
void col_sums_accumulate(std::size_t m, std::size_t n, const float* a,
                         std::size_t lda, float* out) noexcept;

}  // namespace rlattack::nn::kernels
