// NoisyNet linear layer (Fortunato et al. 2018) with factorised Gaussian
// noise; one of Rainbow's components. In training mode the effective weight
// is mu + sigma * eps; in evaluation mode only mu is used, which matches the
// paper's assumption that victim agents run with exploration turned off.
#pragma once

#include "rlattack/nn/layer.hpp"

namespace rlattack::nn {

class NoisyDense final : public Layer {
 public:
  NoisyDense(std::size_t in_features, std::size_t out_features,
             util::Rng& rng, float sigma0 = 0.5f);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  std::string name() const override { return "NoisyDense"; }
  void set_training(bool training) override { training_ = training; }
  void resample_noise(util::Rng& rng) override;

 private:
  /// Factorised noise shaping function f(x) = sign(x) * sqrt(|x|).
  static float shape_noise(float x) noexcept;

  std::size_t in_, out_;
  Tensor w_mu_, w_sigma_;  // [out, in]
  Tensor b_mu_, b_sigma_;  // [out]
  Tensor gw_mu_, gw_sigma_, gb_mu_, gb_sigma_;
  Tensor eps_in_;   // [in]
  Tensor eps_out_;  // [out]
  Tensor cached_input_;
  bool training_ = true;
  bool input_was_rank1_ = false;
};

}  // namespace rlattack::nn
