// Naive scalar reference implementations of the GEMM-backed hot layers.
//
// These are the seed's original loop-nest kernels, retained verbatim as the
// ground truth the optimised Dense/Conv2D/Lstm paths are parity-tested
// against (tests/kernels_test.cpp asserts agreement to 1e-4 at every
// RLATTACK_THREADS setting). Not used by any production code path.
#pragma once

#include "rlattack/nn/tensor.hpp"

namespace rlattack::nn::ref {

/// y = x W^T + b. x: [B, in], w: [out, in], b: [out] -> [B, out].
Tensor dense_forward(const Tensor& x, const Tensor& w, const Tensor& b);

/// Returns d loss / d x and accumulates (+=) into gw / gb.
/// g: [B, out] upstream gradient.
Tensor dense_backward(const Tensor& x, const Tensor& w, const Tensor& g,
                      Tensor& gw, Tensor& gb);

/// Direct convolution. x: [B, C, H, W], w: [OC, C, k, k], b: [OC].
Tensor conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& b,
                      std::size_t stride, std::size_t pad);

/// Returns d loss / d x and accumulates (+=) into gw / gb.
Tensor conv2d_backward(const Tensor& x, const Tensor& w, const Tensor& g,
                       std::size_t stride, std::size_t pad, Tensor& gw,
                       Tensor& gb);

/// Scalar LSTM with BPTT (gate order: input, forget, cell, output — the
/// same layout as nn::Lstm). Holds parameter copies plus forward caches.
class LstmRef {
 public:
  /// w: [4H, F], u: [4H, H], b: [4H].
  LstmRef(Tensor w, Tensor u, Tensor b, bool return_sequences);

  /// x: [B, T, F] -> [B, T, H] or [B, H] depending on return_sequences.
  Tensor forward(const Tensor& x);

  /// Must follow a forward call. Accumulates (+=) into gw / gu / gb and
  /// returns d loss / d x.
  Tensor backward(const Tensor& grad_output, Tensor& gw, Tensor& gu,
                  Tensor& gb);

 private:
  std::size_t input_;
  std::size_t hidden_;
  bool return_sequences_;
  Tensor w_, u_, b_;
  Tensor cached_input_;
  std::vector<Tensor> gates_, cells_, tanh_cells_, hiddens_;
};

}  // namespace rlattack::nn::ref
