// Elementwise activation layers. Shape-preserving; cache what the backward
// pass needs (pre-activations or outputs).
#pragma once

#include "rlattack/nn/layer.hpp"

namespace rlattack::nn {

/// Rectified linear unit: y = max(0, x).
class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

/// Hyperbolic tangent.
class Tanh final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;  // tanh' = 1 - y^2, so caching y is enough
};

/// Logistic sigmoid.
class Sigmoid final : public Layer {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Sigmoid"; }

 private:
  Tensor cached_output_;
};

}  // namespace rlattack::nn
