// Layer abstraction: forward caches whatever the matching backward needs;
// backward accumulates parameter gradients and returns the gradient with
// respect to the layer input (essential for FGSM/PGD, which differentiate
// the whole network with respect to the *input observation*).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rlattack/nn/tensor.hpp"
#include "rlattack/util/rng.hpp"

namespace rlattack::nn {

/// Non-owning view of one parameter tensor and its gradient accumulator.
/// Lifetime: valid as long as the owning layer is alive and not moved.
struct Param {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  std::string name;  ///< diagnostic name, e.g. "dense0.weight"
};

/// Base class for all differentiable layers.
///
/// Contract: `backward` must be called at most once per `forward`, with a
/// gradient tensor whose shape equals the corresponding forward output.
/// Parameter gradients are *accumulated* (+=) so minibatch loops can sum;
/// callers reset them via `zero_grad()` (usually through the optimizer).
class Layer {
 public:
  virtual ~Layer() = default;
  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Computes the layer output for `input` and caches activations needed by
  /// `backward`.
  virtual Tensor forward(const Tensor& input) = 0;

  /// Propagates `grad_output` (d loss / d output) to the input, accumulating
  /// parameter gradients along the way. Returns d loss / d input.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Views of every learnable parameter (empty for stateless layers).
  virtual std::vector<Param> params() { return {}; }

  /// Human-readable layer name for diagnostics.
  virtual std::string name() const = 0;

  /// Switches between training and evaluation behaviour. Only layers with
  /// mode-dependent behaviour (NoisyDense) override this.
  virtual void set_training(bool training) { (void)training; }

  /// Re-randomises any internal noise (NoisyDense). No-op by default.
  virtual void resample_noise(util::Rng& rng) { (void)rng; }

  /// Zeroes all parameter gradients.
  void zero_grad() {
    for (Param& p : params()) p.grad->zero();
  }
};

using LayerPtr = std::unique_ptr<Layer>;

/// Copies parameter values from `src` into `dst`. Both must expose the same
/// number of parameters with identical shapes (i.e. be built by the same
/// factory). Used for DQN target-network sync.
void copy_parameters(Layer& dst, Layer& src);

/// Same over explicit parameter sets (multi-input models such as the
/// seq2seq approximator, whose parameters span several Sequentials). Used
/// by the clone() methods behind episode-parallel experiment execution.
void copy_parameters(const std::vector<Param>& dst,
                     const std::vector<Param>& src);

/// Polyak/soft update: dst <- (1 - tau) * dst + tau * src.
void soft_update_parameters(Layer& dst, Layer& src, float tau);

/// Total learnable scalar count.
std::size_t parameter_count(Layer& layer);

}  // namespace rlattack::nn
