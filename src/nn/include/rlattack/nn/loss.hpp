// Loss functions. Each returns the scalar loss and writes the gradient with
// respect to the logits/predictions, ready to feed into Layer::backward.
#pragma once

#include <cstddef>
#include <vector>

#include "rlattack/nn/tensor.hpp"

namespace rlattack::nn {

struct LossResult {
  float loss = 0.0f;
  Tensor grad;  ///< d loss / d input, same shape as the loss input
};

/// Fused softmax + cross-entropy over the last dimension.
///
/// `logits` is [B, C] or [B, T, C]; `targets` is the flat list of class
/// indices, row-major over all leading dimensions (size B or B*T). Loss is
/// averaged over all rows. `row_weights` (optional, same length as targets)
/// scales each row's contribution — the time-bomb attack uses it to target
/// a single position of the output sequence.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::size_t>& targets,
                                 const std::vector<float>& row_weights = {});

/// Per-row prediction accuracy under the same flattening convention.
double classification_accuracy(const Tensor& logits,
                               const std::vector<std::size_t>& targets);

/// Mean squared error against a dense target tensor of identical shape.
LossResult mse_loss(const Tensor& pred, const Tensor& target);

/// Huber (smooth-L1) loss with threshold `delta`, elementwise mean; the
/// standard DQN regression loss.
LossResult huber_loss(const Tensor& pred, const Tensor& target,
                      float delta = 1.0f);

/// Masked Huber loss for Q-learning: only the (row, action) entries listed
/// contribute; other logits receive zero gradient. `pred` is [B, C];
/// `actions` and `td_targets` have length B.
LossResult q_learning_loss(const Tensor& pred,
                           const std::vector<std::size_t>& actions,
                           const std::vector<float>& td_targets,
                           float delta = 1.0f);

}  // namespace rlattack::nn
