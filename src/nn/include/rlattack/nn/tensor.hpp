// Dense row-major float tensor. The single value type every layer, loss and
// optimizer in rlattack operates on.
//
// Design notes:
//  - Shapes are small vectors of extents; rank is dynamic (rank 1..4 in
//    practice: vectors, [B,F] matrices, [B,T,F] sequences, [B,C,H,W] images).
//  - Data is always float32; the experiments in the paper do not need mixed
//    precision, and a single dtype keeps the backprop code honest.
//  - Value semantics: Tensor is copyable/movable; layers cache copies of the
//    activations they need for the backward pass.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace rlattack::nn {

class Tensor {
 public:
  /// Empty tensor (rank 0, no elements).
  Tensor() = default;

  /// Zero-initialised tensor with the given shape. Every extent must be > 0.
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape)
      : Tensor(std::vector<std::size_t>(shape)) {}

  /// Tensor with explicit contents; data.size() must equal the shape product.
  Tensor(std::vector<std::size_t> shape, std::vector<float> data);

  const std::vector<std::size_t>& shape() const noexcept { return shape_; }
  std::size_t rank() const noexcept { return shape_.size(); }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  /// Extent of dimension `dim`; throws std::logic_error if out of range.
  std::size_t dim(std::size_t d) const {
    if (d >= shape_.size()) throw std::logic_error("Tensor::dim: out of range");
    return shape_[d];
  }

  std::span<float> data() noexcept { return data_; }
  std::span<const float> data() const noexcept { return data_; }
  float* raw() noexcept { return data_.data(); }
  const float* raw() const noexcept { return data_.data(); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Bounds-checked flat access.
  float& at(std::size_t i);
  float at(std::size_t i) const;

  /// 2-D indexed access for [rows, cols] tensors (no bounds check beyond
  /// debug asserts; hot path).
  float& at2(std::size_t r, std::size_t c) noexcept {
    return data_[r * shape_[1] + c];
  }
  float at2(std::size_t r, std::size_t c) const noexcept {
    return data_[r * shape_[1] + c];
  }

  /// 3-D indexed access for [B, T, F] tensors.
  float& at3(std::size_t b, std::size_t t, std::size_t f) noexcept {
    return data_[(b * shape_[1] + t) * shape_[2] + f];
  }
  float at3(std::size_t b, std::size_t t, std::size_t f) const noexcept {
    return data_[(b * shape_[1] + t) * shape_[2] + f];
  }

  /// Reinterprets the tensor with a new shape of equal element count.
  /// Throws std::logic_error on element-count mismatch.
  Tensor reshaped(std::vector<std::size_t> new_shape) const;

  /// Reshapes in place, resizing storage to the new element count. Existing
  /// contents are NOT preserved in any meaningful layout; callers must
  /// overwrite every element. Capacity is grow-only (std::vector keeps its
  /// allocation on shrink), which makes this the right tool for per-call
  /// output buffers whose batch extent fluctuates.
  void resize(std::vector<std::size_t> shape);

  /// In-place fill.
  void fill(float value) noexcept;
  /// Sets every element to zero (grad reset).
  void zero() noexcept { fill(0.0f); }

  /// Elementwise in-place operations; shapes must match exactly.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar) noexcept;

  /// True when shapes are identical (same rank and extents).
  bool same_shape(const Tensor& other) const noexcept {
    return shape_ == other.shape_;
  }

  /// "[2, 3, 4]" — for error messages.
  std::string shape_string() const;

  /// Convenience constructors.
  static Tensor zeros(std::vector<std::size_t> shape) {
    return Tensor(std::move(shape));
  }
  static Tensor from_vector(std::vector<float> v) {
    const std::size_t n = v.size();
    return Tensor({n}, std::move(v));
  }

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

/// Number of elements implied by a shape (1 for rank-0).
std::size_t shape_numel(const std::vector<std::size_t>& shape);

}  // namespace rlattack::nn
