// LSTM layer with full backpropagation-through-time.
//
// Used by every head of the seq2seq approximator (Figure 1 of the paper) to
// digest the observation and action history sequences. Stateless across
// calls: each forward consumes a whole [B, T, F] sequence starting from zero
// hidden/cell state, which matches how the rollout FIFO presents histories.
#pragma once

#include "rlattack/nn/layer.hpp"

namespace rlattack::nn {

class Lstm final : public Layer {
 public:
  /// If `return_sequences` the output is [B, T, H] (for stacking LSTMs);
  /// otherwise only the last hidden state [B, H] is returned.
  Lstm(std::size_t input_size, std::size_t hidden_size, bool return_sequences,
       util::Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override;
  std::string name() const override { return "Lstm"; }

  std::size_t hidden_size() const noexcept { return hidden_; }

 private:
  std::size_t input_;
  std::size_t hidden_;
  bool return_sequences_;

  // Gate order within the 4H dimension: input, forget, cell(g), output.
  // The [4H x F] / [4H x H] packing fuses all four gate matmuls into one
  // kernels::sgemm per timestep (plus one [B*T, F] x [F, 4H] GEMM for the
  // input contributions of every step at once).
  Tensor w_;   // [4H, F]   input-to-hidden
  Tensor u_;   // [4H, H]   hidden-to-hidden
  Tensor b_;   // [4H]      bias (forget-gate slice initialised to 1)
  Tensor gw_, gu_, gb_;

  // Per-timestep caches for BPTT; index t in [0, T).
  Tensor cached_input_;            // [B, T, F]
  std::vector<Tensor> gates_;      // each [B, 4H], post-activation
  std::vector<Tensor> cells_;      // each [B, H], c_t
  std::vector<Tensor> tanh_cells_; // each [B, H], tanh(c_t)
  std::vector<Tensor> hiddens_;    // each [B, H], h_t
  // GEMM scratch reused across calls (reallocated only on shape change).
  Tensor xw_buf_;    // [B*T, 4H]  x W^T for every timestep
  Tensor dpre_buf_;  // [B*T, 4H]  pre-activation grads for every timestep
};

}  // namespace rlattack::nn
