// Sequential container and the TimeDistributed adapter.
#pragma once

#include <memory>

#include "rlattack/nn/layer.hpp"

namespace rlattack::obs {
class SpanStat;
}

namespace rlattack::nn {

/// Ordered chain of layers. forward runs layers first-to-last; backward runs
/// last-to-first and returns the gradient with respect to the chain input.
class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns *this for fluent construction.
  Sequential& add(LayerPtr layer);

  /// Convenience: constructs L in place.
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  /// Qualified parameter views ("layer<i>.<name>"). Built once per topology
  /// (add() invalidates) — the per-call name concatenation used to run on
  /// every zero_grad. Layers must not be mutated behind the container's
  /// back after the first call (the views alias layer-owned tensors).
  std::vector<Param> params() override;
  std::string name() const override { return "Sequential"; }
  void set_training(bool training) override;
  void resample_noise(util::Rng& rng) override;

  std::size_t layer_count() const noexcept { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }

 private:
  std::vector<LayerPtr> layers_;
  // Lazily built qualified parameter views (see params()); cleared by add().
  std::vector<Param> params_cache_;
  bool params_cached_ = false;
  // Per-layer telemetry spans (nn.forward.<LayerName> /
  // nn.backward.<LayerName>), registered once in add(); all Sequential
  // instances share the per-name aggregate in the global registry.
  std::vector<obs::SpanStat*> forward_spans_;
  std::vector<obs::SpanStat*> backward_spans_;
  // Checked-build bookkeeping (util::kCheckedBuild): per-layer input shapes
  // and the chain output shape recorded by forward, so backward can verify
  // the gradient contract (each layer's input gradient matches its forward
  // input shape) at every boundary. Empty in release builds.
  std::vector<std::vector<std::size_t>> checked_input_shapes_;
  std::vector<std::size_t> checked_output_shape_;
};

/// Applies an inner layer independently at every timestep of a [B, T, ...]
/// tensor by folding time into the batch dimension: [B, T, ...] ->
/// [B*T, ...] -> inner -> [B*T, F'] -> [B, T, F'].
///
/// This is how the per-frame convolutional stack of the seq2seq observation
/// head (Table 2: "6 Conv, ... ") is applied to an image *sequence* before
/// the LSTMs.
class TimeDistributed final : public Layer {
 public:
  /// `inner_input_shape` is the per-step shape (without batch), e.g.
  /// {1, 16, 16} for single-channel frames fed to a Conv2D stack.
  TimeDistributed(LayerPtr inner, std::vector<std::size_t> inner_input_shape);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param> params() override { return inner_->params(); }
  std::string name() const override { return "TimeDistributed"; }
  void set_training(bool training) override { inner_->set_training(training); }
  void resample_noise(util::Rng& rng) override { inner_->resample_noise(rng); }

 private:
  LayerPtr inner_;
  std::vector<std::size_t> inner_shape_;
  std::vector<std::size_t> cached_input_shape_;
  std::size_t cached_batch_ = 0;
  std::size_t cached_steps_ = 0;
};

}  // namespace rlattack::nn
