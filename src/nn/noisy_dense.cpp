#include "rlattack/nn/noisy_dense.hpp"

#include <cmath>
#include <stdexcept>

namespace rlattack::nn {

NoisyDense::NoisyDense(std::size_t in_features, std::size_t out_features,
                       util::Rng& rng, float sigma0)
    : in_(in_features),
      out_(out_features),
      w_mu_({out_features, in_features}),
      w_sigma_({out_features, in_features}),
      b_mu_({out_features}),
      b_sigma_({out_features}),
      gw_mu_({out_features, in_features}),
      gw_sigma_({out_features, in_features}),
      gb_mu_({out_features}),
      gb_sigma_({out_features}),
      eps_in_({in_features}),
      eps_out_({out_features}) {
  if (in_ == 0 || out_ == 0)
    throw std::logic_error("NoisyDense: zero-sized feature dimension");
  const float bound = 1.0f / std::sqrt(static_cast<float>(in_));
  for (float& x : w_mu_.data()) x = rng.uniform_f(-bound, bound);
  for (float& x : b_mu_.data()) x = rng.uniform_f(-bound, bound);
  const float sigma_init = sigma0 / std::sqrt(static_cast<float>(in_));
  w_sigma_.fill(sigma_init);
  b_sigma_.fill(sigma_init);
  resample_noise(rng);
}

float NoisyDense::shape_noise(float x) noexcept {
  return (x >= 0.0f ? 1.0f : -1.0f) * std::sqrt(std::abs(x));
}

void NoisyDense::resample_noise(util::Rng& rng) {
  for (float& e : eps_in_.data()) e = shape_noise(rng.normal_f(0.0f, 1.0f));
  for (float& e : eps_out_.data()) e = shape_noise(rng.normal_f(0.0f, 1.0f));
}

Tensor NoisyDense::forward(const Tensor& input) {
  input_was_rank1_ = input.rank() == 1;
  Tensor x = input_was_rank1_ ? input.reshaped({1, input.size()}) : input;
  if (x.rank() != 2 || x.dim(1) != in_)
    throw std::logic_error("NoisyDense::forward: expected [B, " +
                           std::to_string(in_) + "], got " +
                           input.shape_string());
  cached_input_ = x;
  const std::size_t batch = x.dim(0);
  Tensor y({batch, out_});
  for (std::size_t b = 0; b < batch; ++b) {
    const float* xb = x.raw() + b * in_;
    float* yb = y.raw() + b * out_;
    for (std::size_t o = 0; o < out_; ++o) {
      const float* mu = w_mu_.raw() + o * in_;
      const float* sg = w_sigma_.raw() + o * in_;
      float acc = b_mu_[o];
      if (training_) {
        acc += b_sigma_[o] * eps_out_[o];
        const float eo = eps_out_[o];
        for (std::size_t i = 0; i < in_; ++i)
          acc += (mu[i] + sg[i] * eps_in_[i] * eo) * xb[i];
      } else {
        for (std::size_t i = 0; i < in_; ++i) acc += mu[i] * xb[i];
      }
      yb[o] = acc;
    }
  }
  if (input_was_rank1_) return y.reshaped({out_});
  return y;
}

Tensor NoisyDense::backward(const Tensor& grad_output) {
  Tensor g = grad_output.rank() == 1
                 ? grad_output.reshaped({1, grad_output.size()})
                 : grad_output;
  if (g.rank() != 2 || g.dim(1) != out_ || g.dim(0) != cached_input_.dim(0))
    throw std::logic_error("NoisyDense::backward: gradient shape mismatch");
  const std::size_t batch = g.dim(0);
  Tensor grad_input({batch, in_});
  for (std::size_t b = 0; b < batch; ++b) {
    const float* gb = g.raw() + b * out_;
    const float* xb = cached_input_.raw() + b * in_;
    float* gi = grad_input.raw() + b * in_;
    for (std::size_t o = 0; o < out_; ++o) {
      const float go = gb[o];
      const float eo = training_ ? eps_out_[o] : 0.0f;
      gb_mu_[o] += go;
      if (training_) gb_sigma_[o] += go * eo;
      const float* mu = w_mu_.raw() + o * in_;
      const float* sg = w_sigma_.raw() + o * in_;
      float* gmu = gw_mu_.raw() + o * in_;
      float* gsg = gw_sigma_.raw() + o * in_;
      for (std::size_t i = 0; i < in_; ++i) {
        const float eps = training_ ? eps_in_[i] * eo : 0.0f;
        gmu[i] += go * xb[i];
        if (training_) gsg[i] += go * xb[i] * eps;
        gi[i] += go * (mu[i] + sg[i] * eps);
      }
    }
  }
  if (input_was_rank1_) return grad_input.reshaped({in_});
  return grad_input;
}

std::vector<Param> NoisyDense::params() {
  return {{&w_mu_, &gw_mu_, "noisy.w_mu"},
          {&w_sigma_, &gw_sigma_, "noisy.w_sigma"},
          {&b_mu_, &gb_mu_, "noisy.b_mu"},
          {&b_sigma_, &gb_sigma_, "noisy.b_sigma"}};
}

}  // namespace rlattack::nn
