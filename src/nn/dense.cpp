#include "rlattack/nn/dense.hpp"

#include <stdexcept>

#include "rlattack/nn/init.hpp"
#include "rlattack/nn/kernels/gemm.hpp"

namespace rlattack::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, util::Rng& rng,
             bool relu_fan_in)
    : in_(in_features),
      out_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}),
      grad_weight_({out_features, in_features}),
      grad_bias_({out_features}) {
  if (in_ == 0 || out_ == 0)
    throw std::logic_error("Dense: zero-sized feature dimension");
  if (relu_fan_in)
    he_uniform(weight_, in_, rng);
  else
    xavier_uniform(weight_, in_, out_, rng);
}

Tensor Dense::forward(const Tensor& input) {
  input_was_rank1_ = input.rank() == 1;
  Tensor x = input_was_rank1_ ? input.reshaped({1, input.size()}) : input;
  if (x.rank() != 2 || x.dim(1) != in_)
    throw std::logic_error("Dense::forward: expected [B, " +
                           std::to_string(in_) + "], got " +
                           input.shape_string());
  cached_input_ = x;
  const std::size_t batch = x.dim(0);
  // Reusable output buffer: only reallocated when the batch size changes.
  if (out_buf_.rank() != 2 || out_buf_.dim(0) != batch)
    out_buf_ = Tensor({batch, out_});
  // y = bias (broadcast per row), then y += x W^T in one GEMM.
  kernels::broadcast_bias_rows(batch, out_, bias_.raw(), out_buf_.raw(), out_);
  kernels::sgemm(kernels::Trans::kNo, kernels::Trans::kYes, batch, out_, in_,
                 x.raw(), in_, weight_.raw(), in_, out_buf_.raw(), out_,
                 /*accumulate=*/true);
  if (input_was_rank1_) return out_buf_.reshaped({out_});
  return out_buf_;
}

Tensor Dense::backward(const Tensor& grad_output) {
  Tensor g = grad_output.rank() == 1
                 ? grad_output.reshaped({1, grad_output.size()})
                 : grad_output;
  if (g.rank() != 2 || g.dim(1) != out_ ||
      g.dim(0) != cached_input_.dim(0))
    throw std::logic_error("Dense::backward: gradient shape mismatch " +
                           grad_output.shape_string());
  const std::size_t batch = g.dim(0);
  Tensor grad_input({batch, in_});
  // dx = g W
  kernels::sgemm(kernels::Trans::kNo, kernels::Trans::kNo, batch, in_, out_,
                 g.raw(), out_, weight_.raw(), in_, grad_input.raw(), in_,
                 /*accumulate=*/false);
  // dW += g^T x
  kernels::sgemm(kernels::Trans::kYes, kernels::Trans::kNo, out_, in_, batch,
                 g.raw(), out_, cached_input_.raw(), in_, grad_weight_.raw(),
                 in_, /*accumulate=*/true);
  // db += column sums of g
  kernels::col_sums_accumulate(batch, out_, g.raw(), out_, grad_bias_.raw());
  if (input_was_rank1_) return grad_input.reshaped({in_});
  return grad_input;
}

std::vector<Param> Dense::params() {
  return {{&weight_, &grad_weight_, "dense.weight"},
          {&bias_, &grad_bias_, "dense.bias"}};
}

}  // namespace rlattack::nn
