#include "rlattack/nn/dense.hpp"

#include <stdexcept>

#include "rlattack/nn/init.hpp"

namespace rlattack::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, util::Rng& rng,
             bool relu_fan_in)
    : in_(in_features),
      out_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}),
      grad_weight_({out_features, in_features}),
      grad_bias_({out_features}) {
  if (in_ == 0 || out_ == 0)
    throw std::logic_error("Dense: zero-sized feature dimension");
  if (relu_fan_in)
    he_uniform(weight_, in_, rng);
  else
    xavier_uniform(weight_, in_, out_, rng);
}

Tensor Dense::forward(const Tensor& input) {
  input_was_rank1_ = input.rank() == 1;
  Tensor x = input_was_rank1_ ? input.reshaped({1, input.size()}) : input;
  if (x.rank() != 2 || x.dim(1) != in_)
    throw std::logic_error("Dense::forward: expected [B, " +
                           std::to_string(in_) + "], got " +
                           input.shape_string());
  cached_input_ = x;
  const std::size_t batch = x.dim(0);
  Tensor y({batch, out_});
  const float* wd = weight_.raw();
  for (std::size_t b = 0; b < batch; ++b) {
    const float* xb = x.raw() + b * in_;
    float* yb = y.raw() + b * out_;
    for (std::size_t o = 0; o < out_; ++o) {
      const float* wrow = wd + o * in_;
      float acc = bias_[o];
      for (std::size_t i = 0; i < in_; ++i) acc += wrow[i] * xb[i];
      yb[o] = acc;
    }
  }
  if (input_was_rank1_) return y.reshaped({out_});
  return y;
}

Tensor Dense::backward(const Tensor& grad_output) {
  Tensor g = grad_output.rank() == 1
                 ? grad_output.reshaped({1, grad_output.size()})
                 : grad_output;
  if (g.rank() != 2 || g.dim(1) != out_ ||
      g.dim(0) != cached_input_.dim(0))
    throw std::logic_error("Dense::backward: gradient shape mismatch " +
                           grad_output.shape_string());
  const std::size_t batch = g.dim(0);
  Tensor grad_input({batch, in_});
  const float* wd = weight_.raw();
  float* gw = grad_weight_.raw();
  for (std::size_t b = 0; b < batch; ++b) {
    const float* gb = g.raw() + b * out_;
    const float* xb = cached_input_.raw() + b * in_;
    float* gi = grad_input.raw() + b * in_;
    for (std::size_t o = 0; o < out_; ++o) {
      const float go = gb[o];
      grad_bias_[o] += go;
      const float* wrow = wd + o * in_;
      float* gwrow = gw + o * in_;
      for (std::size_t i = 0; i < in_; ++i) {
        gwrow[i] += go * xb[i];
        gi[i] += go * wrow[i];
      }
    }
  }
  if (input_was_rank1_) return grad_input.reshaped({in_});
  return grad_input;
}

std::vector<Param> Dense::params() {
  return {{&weight_, &grad_weight_, "dense.weight"},
          {&bias_, &grad_bias_, "dense.bias"}};
}

}  // namespace rlattack::nn
