#include "rlattack/nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rlattack::nn {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<std::size_t>& targets,
                                 const std::vector<float>& row_weights) {
  if (logits.rank() < 2)
    throw std::logic_error("softmax_cross_entropy: expected rank >= 2");
  const std::size_t classes = logits.dim(logits.rank() - 1);
  const std::size_t rows = logits.size() / classes;
  if (targets.size() != rows)
    throw std::logic_error("softmax_cross_entropy: target count mismatch");
  if (!row_weights.empty() && row_weights.size() != rows)
    throw std::logic_error("softmax_cross_entropy: weight count mismatch");

  LossResult out;
  out.grad = Tensor(logits.shape());
  const float* in = logits.raw();
  float* g = out.grad.raw();
  double total = 0.0;
  double weight_sum = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    const float rw = row_weights.empty() ? 1.0f : row_weights[r];
    weight_sum += rw;
  }
  if (weight_sum <= 0.0)
    throw std::logic_error("softmax_cross_entropy: zero total weight");
  const float inv_weight = static_cast<float>(1.0 / weight_sum);

  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t target = targets[r];
    if (target >= classes)
      throw std::logic_error("softmax_cross_entropy: target out of range");
    const float rw = row_weights.empty() ? 1.0f : row_weights[r];
    const float* row = in + r * classes;
    float* grow = g + r * classes;
    const float mx = *std::max_element(row, row + classes);
    double sum = 0.0;
    for (std::size_t c = 0; c < classes; ++c)
      sum += std::exp(static_cast<double>(row[c] - mx));
    const double log_sum = std::log(sum);
    total +=
        rw * (log_sum - static_cast<double>(row[target] - mx));
    if (rw != 0.0f) {
      for (std::size_t c = 0; c < classes; ++c) {
        const float p = static_cast<float>(
            std::exp(static_cast<double>(row[c] - mx)) / sum);
        grow[c] = rw * inv_weight * (p - (c == target ? 1.0f : 0.0f));
      }
    }
  }
  out.loss = static_cast<float>(total / weight_sum);
  return out;
}

double classification_accuracy(const Tensor& logits,
                               const std::vector<std::size_t>& targets) {
  if (logits.rank() < 2)
    throw std::logic_error("classification_accuracy: expected rank >= 2");
  const std::size_t classes = logits.dim(logits.rank() - 1);
  const std::size_t rows = logits.size() / classes;
  if (targets.size() != rows)
    throw std::logic_error("classification_accuracy: target count mismatch");
  std::size_t correct = 0;
  const float* in = logits.raw();
  for (std::size_t r = 0; r < rows; ++r) {
    const float* row = in + r * classes;
    const std::size_t pred = static_cast<std::size_t>(
        std::max_element(row, row + classes) - row);
    if (pred == targets[r]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(rows);
}

LossResult mse_loss(const Tensor& pred, const Tensor& target) {
  if (!pred.same_shape(target))
    throw std::logic_error("mse_loss: shape mismatch");
  LossResult out;
  out.grad = Tensor(pred.shape());
  const std::size_t n = pred.size();
  const float scale = 2.0f / static_cast<float>(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float d = pred[i] - target[i];
    total += static_cast<double>(d) * static_cast<double>(d);
    out.grad[i] = scale * d;
  }
  out.loss = static_cast<float>(total / static_cast<double>(n));
  return out;
}

LossResult huber_loss(const Tensor& pred, const Tensor& target, float delta) {
  if (!pred.same_shape(target))
    throw std::logic_error("huber_loss: shape mismatch");
  LossResult out;
  out.grad = Tensor(pred.shape());
  const std::size_t n = pred.size();
  const float inv_n = 1.0f / static_cast<float>(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float d = pred[i] - target[i];
    const float ad = std::abs(d);
    if (ad <= delta) {
      total += 0.5 * static_cast<double>(d) * static_cast<double>(d);
      out.grad[i] = d * inv_n;
    } else {
      total += static_cast<double>(delta) * (ad - 0.5 * delta);
      out.grad[i] = (d > 0.0f ? delta : -delta) * inv_n;
    }
  }
  out.loss = static_cast<float>(total / static_cast<double>(n));
  return out;
}

LossResult q_learning_loss(const Tensor& pred,
                           const std::vector<std::size_t>& actions,
                           const std::vector<float>& td_targets, float delta) {
  if (pred.rank() != 2)
    throw std::logic_error("q_learning_loss: expected [B, C]");
  const std::size_t batch = pred.dim(0), classes = pred.dim(1);
  if (actions.size() != batch || td_targets.size() != batch)
    throw std::logic_error("q_learning_loss: batch size mismatch");
  LossResult out;
  out.grad = Tensor(pred.shape());
  const float inv_b = 1.0f / static_cast<float>(batch);
  double total = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t a = actions[b];
    if (a >= classes)
      throw std::logic_error("q_learning_loss: action out of range");
    const float d = pred.at2(b, a) - td_targets[b];
    const float ad = std::abs(d);
    if (ad <= delta) {
      total += 0.5 * static_cast<double>(d) * static_cast<double>(d);
      out.grad.at2(b, a) = d * inv_b;
    } else {
      total += static_cast<double>(delta) * (ad - 0.5 * delta);
      out.grad.at2(b, a) = (d > 0.0f ? delta : -delta) * inv_b;
    }
  }
  out.loss = static_cast<float>(total / static_cast<double>(batch));
  return out;
}

}  // namespace rlattack::nn
