#include "rlattack/nn/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rlattack::nn {

void softmax_last_dim(Tensor& t) {
  if (t.rank() == 0 || t.empty())
    throw std::logic_error("softmax_last_dim: empty tensor");
  const std::size_t cols = t.dim(t.rank() - 1);
  const std::size_t rows = t.size() / cols;
  float* d = t.raw();
  for (std::size_t r = 0; r < rows; ++r) {
    float* row = d + r * cols;
    const float mx = *std::max_element(row, row + cols);
    float sum = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    for (std::size_t c = 0; c < cols; ++c) row[c] /= sum;
  }
}

std::size_t argmax(std::span<const float> v) {
  if (v.empty()) throw std::logic_error("argmax: empty span");
  return static_cast<std::size_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

std::vector<std::size_t> argmax_rows(const Tensor& t) {
  if (t.rank() != 2) throw std::logic_error("argmax_rows: expected rank 2");
  const std::size_t rows = t.dim(0), cols = t.dim(1);
  std::vector<std::size_t> out(rows);
  for (std::size_t r = 0; r < rows; ++r)
    out[r] = argmax(t.data().subspan(r * cols, cols));
  return out;
}

Tensor one_hot(std::size_t index, std::size_t classes) {
  if (index >= classes) throw std::logic_error("one_hot: index out of range");
  Tensor t({classes});
  t[index] = 1.0f;
  return t;
}

void clamp_(Tensor& t, float lo, float hi) {
  for (float& x : t.data()) x = std::clamp(x, lo, hi);
}

double global_grad_norm(std::span<const Tensor* const> grads) {
  double s = 0.0;
  for (const Tensor* g : grads)
    for (float x : g->data())
      s += static_cast<double>(x) * static_cast<double>(x);
  return std::sqrt(s);
}

}  // namespace rlattack::nn
