#include "rlattack/nn/tensor.hpp"

#include <algorithm>
#include <sstream>

namespace rlattack::nn {

std::size_t shape_numel(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) {
    if (d == 0) throw std::logic_error("Tensor: zero extent in shape");
    n *= d;
  }
  return n;
}

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != shape_numel(shape_))
    throw std::logic_error("Tensor: data size does not match shape " +
                           shape_string());
}

float& Tensor::at(std::size_t i) {
  if (i >= data_.size()) throw std::logic_error("Tensor::at: out of range");
  return data_[i];
}

float Tensor::at(std::size_t i) const {
  if (i >= data_.size()) throw std::logic_error("Tensor::at: out of range");
  return data_[i];
}

Tensor Tensor::reshaped(std::vector<std::size_t> new_shape) const {
  if (shape_numel(new_shape) != data_.size())
    throw std::logic_error("Tensor::reshaped: element count mismatch");
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  return out;
}

void Tensor::resize(std::vector<std::size_t> shape) {
  const std::size_t n = shape_numel(shape);
  shape_ = std::move(shape);
  data_.resize(n);
}

void Tensor::fill(float value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  if (!same_shape(other))
    throw std::logic_error("Tensor::operator+=: shape mismatch " +
                           shape_string() + " vs " + other.shape_string());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  if (!same_shape(other))
    throw std::logic_error("Tensor::operator-=: shape mismatch " +
                           shape_string() + " vs " + other.shape_string());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) noexcept {
  for (float& x : data_) x *= scalar;
  return *this;
}

std::string Tensor::shape_string() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape_[i];
  }
  out << ']';
  return out.str();
}

}  // namespace rlattack::nn
