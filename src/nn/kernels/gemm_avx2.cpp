// Hand-packed AVX2/FMA micro-kernel. This is the only TU compiled with
// -mavx2 -mfma (see src/nn/CMakeLists.txt): every symbol here is reached
// strictly behind the runtime cpuid gate in gemm.cpp, so the rest of the
// binary keeps its baseline ISA and RLATTACK_NATIVE semantics.
//
// Register tiling: 6 output rows x 16 output columns per inner block —
// 12 ymm accumulators + 2 B-row vectors + 1 broadcast A value = 15 of the
// 16 architectural ymm registers. Column tails run 8-wide, then masked.
//
// Determinism: each output element accumulates over p = 0..kb-1 in ascending
// order into a fresh zero accumulator, with the same per-element instruction
// sequence in the 6-row, remainder-row, and masked-tail paths (the column
// chunk an element lands in depends only on the panel width, never on the
// row partition) — so results are bit-identical for any RLATTACK_THREADS.
#if defined(RLATTACK_HAVE_AVX2_KERNEL)

#include <immintrin.h>

#include <cstdint>

#include "gemm_internal.hpp"

namespace rlattack::nn::kernels::internal {

namespace {

// Sliding-window tail masks: for t in [1, 7] remaining lanes, the 8 ints at
// kTailMask + (8 - t) select the first t lanes.
alignas(32) constexpr std::int32_t kTailMask[16] = {-1, -1, -1, -1, -1, -1,
                                                   -1, -1, 0,  0,  0,  0,
                                                   0,  0,  0,  0};

// R rows of the packed A panel times the full kb x nb packed B panel, into
// R rows of C. R is the register-tile height (6) or a remainder count.
template <int R>
void rows_block(std::size_t nb, std::size_t kb, const float* ap,
                const float* bp, float* c, std::size_t ldc, bool store) {
  std::size_t j = 0;
  for (; j + 16 <= nb; j += 16) {
    __m256 acc_lo[R], acc_hi[R];
    for (int r = 0; r < R; ++r) {
      acc_lo[r] = _mm256_setzero_ps();
      acc_hi[r] = _mm256_setzero_ps();
    }
    for (std::size_t p = 0; p < kb; ++p) {
      const float* bpr = bp + p * nb + j;
      const __m256 b0 = _mm256_loadu_ps(bpr);
      const __m256 b1 = _mm256_loadu_ps(bpr + 8);
      for (int r = 0; r < R; ++r) {
        const __m256 av = _mm256_broadcast_ss(ap + r * kb + p);
        acc_lo[r] = _mm256_fmadd_ps(av, b0, acc_lo[r]);
        acc_hi[r] = _mm256_fmadd_ps(av, b1, acc_hi[r]);
      }
    }
    for (int r = 0; r < R; ++r) {
      float* cr = c + static_cast<std::size_t>(r) * ldc + j;
      if (store) {
        _mm256_storeu_ps(cr, acc_lo[r]);
        _mm256_storeu_ps(cr + 8, acc_hi[r]);
      } else {
        _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), acc_lo[r]));
        _mm256_storeu_ps(cr + 8,
                         _mm256_add_ps(_mm256_loadu_ps(cr + 8), acc_hi[r]));
      }
    }
  }
  for (; j + 8 <= nb; j += 8) {
    __m256 acc[R];
    for (int r = 0; r < R; ++r) acc[r] = _mm256_setzero_ps();
    for (std::size_t p = 0; p < kb; ++p) {
      const __m256 bv = _mm256_loadu_ps(bp + p * nb + j);
      for (int r = 0; r < R; ++r)
        acc[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(ap + r * kb + p), bv,
                                 acc[r]);
    }
    for (int r = 0; r < R; ++r) {
      float* cr = c + static_cast<std::size_t>(r) * ldc + j;
      if (store)
        _mm256_storeu_ps(cr, acc[r]);
      else
        _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), acc[r]));
    }
  }
  if (j < nb) {
    const std::size_t tail = nb - j;
    const __m256i mask = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kTailMask + (8 - tail)));
    __m256 acc[R];
    for (int r = 0; r < R; ++r) acc[r] = _mm256_setzero_ps();
    for (std::size_t p = 0; p < kb; ++p) {
      const __m256 bv = _mm256_maskload_ps(bp + p * nb + j, mask);
      for (int r = 0; r < R; ++r)
        acc[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(ap + r * kb + p), bv,
                                 acc[r]);
    }
    for (int r = 0; r < R; ++r) {
      float* cr = c + static_cast<std::size_t>(r) * ldc + j;
      if (store)
        _mm256_maskstore_ps(cr, mask, acc[r]);
      else
        _mm256_maskstore_ps(
            cr, mask, _mm256_add_ps(_mm256_maskload_ps(cr, mask), acc[r]));
    }
  }
}

}  // namespace

void micro_kernel_avx2(std::size_t mb, std::size_t nb, std::size_t kb,
                       const float* ap, const float* bp, float* c,
                       std::size_t ldc, bool store) {
  constexpr std::size_t kRows = 6;
  std::size_t i = 0;
  for (; i + kRows <= mb; i += kRows)
    rows_block<6>(nb, kb, ap + i * kb, bp, c + i * ldc, ldc, store);
  const float* at = ap + i * kb;
  float* ct = c + i * ldc;
  switch (mb - i) {
    case 5: rows_block<5>(nb, kb, at, bp, ct, ldc, store); break;
    case 4: rows_block<4>(nb, kb, at, bp, ct, ldc, store); break;
    case 3: rows_block<3>(nb, kb, at, bp, ct, ldc, store); break;
    case 2: rows_block<2>(nb, kb, at, bp, ct, ldc, store); break;
    case 1: rows_block<1>(nb, kb, at, bp, ct, ldc, store); break;
    default: break;
  }
}

}  // namespace rlattack::nn::kernels::internal

#endif  // RLATTACK_HAVE_AVX2_KERNEL
