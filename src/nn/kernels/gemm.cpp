#include "rlattack/nn/kernels/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "rlattack/obs/metrics.hpp"
#include "rlattack/util/thread_pool.hpp"

namespace rlattack::nn::kernels {

namespace {

// Pre-registered telemetry handles (one registry lookup at load, pointer
// dereference + relaxed fetch_add per kernel call). Flops use the standard
// 2*m*n*k / 2*n conventions.
struct KernelMetrics {
  obs::Counter& gemm_calls =
      obs::MetricsRegistry::global().counter("nn.gemm.calls");
  obs::Counter& gemm_flops =
      obs::MetricsRegistry::global().counter("nn.gemm.flops");
  obs::Counter& axpy_calls =
      obs::MetricsRegistry::global().counter("nn.axpy.calls");
  obs::Counter& axpy_flops =
      obs::MetricsRegistry::global().counter("nn.axpy.flops");
};
KernelMetrics g_metrics;

// Cache blocking: the packed B panel (kKC x kNC = 128 KiB) and A panel
// (kMC x kKC = 64 KiB) both sit in L2; the micro-kernel accumulators
// (kMR x kNC = 4 KiB) stay in L1/registers. Packing makes the inner loop a
// unit-stride multiply-add over independent output columns, which the
// compiler vectorises without needing FP reassociation (-ffast-math).
constexpr std::size_t kMC = 64;
constexpr std::size_t kKC = 256;
constexpr std::size_t kNC = 128;
constexpr std::size_t kMR = 4;

// Packs the op(A) sub-block rows [i0, i0+mb) x cols [p0, p0+kb) into a dense
// row-major mb x kb panel.
void pack_a(Trans ta, const float* a, std::size_t lda, std::size_t i0,
            std::size_t p0, std::size_t mb, std::size_t kb, float* ap) {
  if (ta == Trans::kNo) {
    for (std::size_t i = 0; i < mb; ++i)
      std::memcpy(ap + i * kb, a + (i0 + i) * lda + p0, kb * sizeof(float));
  } else {
    for (std::size_t i = 0; i < mb; ++i)
      for (std::size_t p = 0; p < kb; ++p)
        ap[i * kb + p] = a[(p0 + p) * lda + (i0 + i)];
  }
}

// Packs the op(B) sub-block rows [p0, p0+kb) x cols [j0, j0+nb) into a dense
// row-major kb x nb panel.
void pack_b(Trans tb, const float* b, std::size_t ldb, std::size_t p0,
            std::size_t j0, std::size_t kb, std::size_t nb, float* bp) {
  if (tb == Trans::kNo) {
    for (std::size_t p = 0; p < kb; ++p)
      std::memcpy(bp + p * nb, b + (p0 + p) * ldb + j0, nb * sizeof(float));
  } else {
    for (std::size_t p = 0; p < kb; ++p)
      for (std::size_t j = 0; j < nb; ++j)
        bp[p * nb + j] = b[(j0 + j) * ldb + (p0 + p)];
  }
}

// mb x nb += (or =) packed mb x kb panel times packed kb x nb panel.
// `store` overwrites C (first K block without accumulate); otherwise adds.
void micro_kernel(std::size_t mb, std::size_t nb, std::size_t kb,
                  const float* ap, const float* bp, float* c, std::size_t ldc,
                  bool store) {
  float acc0[kNC], acc1[kNC], acc2[kNC], acc3[kNC];
  std::size_t i = 0;
  for (; i + kMR <= mb; i += kMR) {
    for (std::size_t j = 0; j < nb; ++j) acc0[j] = 0.0f;
    for (std::size_t j = 0; j < nb; ++j) acc1[j] = 0.0f;
    for (std::size_t j = 0; j < nb; ++j) acc2[j] = 0.0f;
    for (std::size_t j = 0; j < nb; ++j) acc3[j] = 0.0f;
    const float* a0 = ap + (i + 0) * kb;
    const float* a1 = ap + (i + 1) * kb;
    const float* a2 = ap + (i + 2) * kb;
    const float* a3 = ap + (i + 3) * kb;
    for (std::size_t p = 0; p < kb; ++p) {
      const float* bpr = bp + p * nb;
      const float s0 = a0[p], s1 = a1[p], s2 = a2[p], s3 = a3[p];
      for (std::size_t j = 0; j < nb; ++j) {
        const float bv = bpr[j];
        acc0[j] += s0 * bv;
        acc1[j] += s1 * bv;
        acc2[j] += s2 * bv;
        acc3[j] += s3 * bv;
      }
    }
    float* c0 = c + (i + 0) * ldc;
    float* c1 = c + (i + 1) * ldc;
    float* c2 = c + (i + 2) * ldc;
    float* c3 = c + (i + 3) * ldc;
    if (store) {
      for (std::size_t j = 0; j < nb; ++j) c0[j] = acc0[j];
      for (std::size_t j = 0; j < nb; ++j) c1[j] = acc1[j];
      for (std::size_t j = 0; j < nb; ++j) c2[j] = acc2[j];
      for (std::size_t j = 0; j < nb; ++j) c3[j] = acc3[j];
    } else {
      for (std::size_t j = 0; j < nb; ++j) c0[j] += acc0[j];
      for (std::size_t j = 0; j < nb; ++j) c1[j] += acc1[j];
      for (std::size_t j = 0; j < nb; ++j) c2[j] += acc2[j];
      for (std::size_t j = 0; j < nb; ++j) c3[j] += acc3[j];
    }
  }
  for (; i < mb; ++i) {  // remainder rows, one at a time
    for (std::size_t j = 0; j < nb; ++j) acc0[j] = 0.0f;
    const float* a0 = ap + i * kb;
    for (std::size_t p = 0; p < kb; ++p) {
      const float* bpr = bp + p * nb;
      const float s0 = a0[p];
      for (std::size_t j = 0; j < nb; ++j) acc0[j] += s0 * bpr[j];
    }
    float* c0 = c + i * ldc;
    if (store) {
      for (std::size_t j = 0; j < nb; ++j) c0[j] = acc0[j];
    } else {
      for (std::size_t j = 0; j < nb; ++j) c0[j] += acc0[j];
    }
  }
}

// Full blocked GEMM restricted to output rows [m0, m1). Each pool chunk gets
// a disjoint row range, so results are independent of the chunking (every
// row's K-accumulation order is fixed by the kKC blocking alone).
void sgemm_rows(Trans ta, Trans tb, std::size_t m0, std::size_t m1,
                std::size_t n, std::size_t k, const float* a, std::size_t lda,
                const float* b, std::size_t ldb, float* c, std::size_t ldc,
                bool accumulate) {
  // Per-thread packing scratch, reused across calls (no per-call allocation
  // once warmed up).
  thread_local std::vector<float> ap(kMC * kKC);
  thread_local std::vector<float> bp(kKC * kNC);
  for (std::size_t jc = 0; jc < n; jc += kNC) {
    const std::size_t nb = std::min(kNC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKC) {
      const std::size_t kb = std::min(kKC, k - pc);
      const bool store = pc == 0 && !accumulate;
      pack_b(tb, b, ldb, pc, jc, kb, nb, bp.data());
      for (std::size_t ic = m0; ic < m1; ic += kMC) {
        const std::size_t mb = std::min(kMC, m1 - ic);
        pack_a(ta, a, lda, ic, pc, mb, kb, ap.data());
        micro_kernel(mb, nb, kb, ap.data(), bp.data(), c + ic * ldc + jc, ldc,
                     store);
      }
    }
  }
}

}  // namespace

void sgemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
           const float* a, std::size_t lda, const float* b, std::size_t ldb,
           float* c, std::size_t ldc, bool accumulate) {
  if (m == 0 || n == 0) return;
  g_metrics.gemm_calls.add();
  g_metrics.gemm_flops.add(2 * static_cast<std::uint64_t>(m) *
                           static_cast<std::uint64_t>(n) *
                           static_cast<std::uint64_t>(k));
  if (k == 0) {
    if (!accumulate)
      for (std::size_t i = 0; i < m; ++i)
        std::memset(c + i * ldc, 0, n * sizeof(float));
    return;
  }
  // Parallelise over output rows; below ~8 row-blocks' worth of work the
  // dispatch overhead outweighs the win and the loop runs inline anyway.
  util::ThreadPool::global().parallel_for(
      m, /*grain=*/kMR * 2, [&](std::size_t r0, std::size_t r1) {
        sgemm_rows(ta, tb, r0, r1, n, k, a, lda, b, ldb, c, ldc, accumulate);
      });
}

void axpy(std::size_t n, float alpha, const float* x, float* y) noexcept {
  g_metrics.axpy_calls.add();
  g_metrics.axpy_flops.add(2 * static_cast<std::uint64_t>(n));
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void broadcast_bias_rows(std::size_t m, std::size_t n, const float* bias,
                         float* dst, std::size_t ldd) noexcept {
  for (std::size_t i = 0; i < m; ++i)
    std::memcpy(dst + i * ldd, bias, n * sizeof(float));
}

void col_sums_accumulate(std::size_t m, std::size_t n, const float* a,
                         std::size_t lda, float* out) noexcept {
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = a + i * lda;
    for (std::size_t j = 0; j < n; ++j) out[j] += row[j];
  }
}

}  // namespace rlattack::nn::kernels
