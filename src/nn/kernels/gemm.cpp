#include "rlattack/nn/kernels/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "gemm_internal.hpp"
#include "rlattack/obs/metrics.hpp"
#include "rlattack/obs/trace.hpp"
#include "rlattack/util/env.hpp"
#include "rlattack/util/log.hpp"
#include "rlattack/util/thread_pool.hpp"

namespace rlattack::nn::kernels {

using internal::kKC;
using internal::kMC;
using internal::kMR;
using internal::kNC;

namespace internal {

// mb x nb += (or =) packed mb x kb panel times packed kb x nb panel.
// `store` overwrites C (first K block without accumulate); otherwise adds.
void micro_kernel_scalar(std::size_t mb, std::size_t nb, std::size_t kb,
                         const float* ap, const float* bp, float* c,
                         std::size_t ldc, bool store) {
  float acc0[kNC], acc1[kNC], acc2[kNC], acc3[kNC];
  std::size_t i = 0;
  for (; i + kMR <= mb; i += kMR) {
    for (std::size_t j = 0; j < nb; ++j) acc0[j] = 0.0f;
    for (std::size_t j = 0; j < nb; ++j) acc1[j] = 0.0f;
    for (std::size_t j = 0; j < nb; ++j) acc2[j] = 0.0f;
    for (std::size_t j = 0; j < nb; ++j) acc3[j] = 0.0f;
    const float* a0 = ap + (i + 0) * kb;
    const float* a1 = ap + (i + 1) * kb;
    const float* a2 = ap + (i + 2) * kb;
    const float* a3 = ap + (i + 3) * kb;
    for (std::size_t p = 0; p < kb; ++p) {
      const float* bpr = bp + p * nb;
      const float s0 = a0[p], s1 = a1[p], s2 = a2[p], s3 = a3[p];
      for (std::size_t j = 0; j < nb; ++j) {
        const float bv = bpr[j];
        acc0[j] += s0 * bv;
        acc1[j] += s1 * bv;
        acc2[j] += s2 * bv;
        acc3[j] += s3 * bv;
      }
    }
    float* c0 = c + (i + 0) * ldc;
    float* c1 = c + (i + 1) * ldc;
    float* c2 = c + (i + 2) * ldc;
    float* c3 = c + (i + 3) * ldc;
    if (store) {
      for (std::size_t j = 0; j < nb; ++j) c0[j] = acc0[j];
      for (std::size_t j = 0; j < nb; ++j) c1[j] = acc1[j];
      for (std::size_t j = 0; j < nb; ++j) c2[j] = acc2[j];
      for (std::size_t j = 0; j < nb; ++j) c3[j] = acc3[j];
    } else {
      for (std::size_t j = 0; j < nb; ++j) c0[j] += acc0[j];
      for (std::size_t j = 0; j < nb; ++j) c1[j] += acc1[j];
      for (std::size_t j = 0; j < nb; ++j) c2[j] += acc2[j];
      for (std::size_t j = 0; j < nb; ++j) c3[j] += acc3[j];
    }
  }
  for (; i < mb; ++i) {  // remainder rows, one at a time
    float acc[kNC];
    for (std::size_t j = 0; j < nb; ++j) acc[j] = 0.0f;
    const float* a0 = ap + i * kb;
    for (std::size_t p = 0; p < kb; ++p) {
      const float* bpr = bp + p * nb;
      const float s0 = a0[p];
      for (std::size_t j = 0; j < nb; ++j) acc[j] += s0 * bpr[j];
    }
    float* c0 = c + i * ldc;
    if (store) {
      for (std::size_t j = 0; j < nb; ++j) c0[j] = acc[j];
    } else {
      for (std::size_t j = 0; j < nb; ++j) c0[j] += acc[j];
    }
  }
}

}  // namespace internal

namespace {

// Pre-registered telemetry handles (one registry lookup at load, pointer
// dereference + relaxed fetch_add per kernel call). Flops use the standard
// 2*m*n*k / 2*n conventions.
struct KernelMetrics {
  obs::Counter& gemm_calls =
      obs::MetricsRegistry::global().counter("nn.gemm.calls");
  obs::Counter& gemm_flops =
      obs::MetricsRegistry::global().counter("nn.gemm.flops");
  obs::Counter& axpy_calls =
      obs::MetricsRegistry::global().counter("nn.axpy.calls");
  obs::Counter& axpy_flops =
      obs::MetricsRegistry::global().counter("nn.axpy.flops");
};
KernelMetrics g_metrics;

void publish_kernel_choice(SimdKernel kernel) {
  obs::MetricsRegistry::global()
      .gauge("nn.gemm.kernel")
      .set(static_cast<double>(static_cast<int>(kernel)));
}

// -1 = unresolved; otherwise holds a SimdKernel value. Resolution is
// idempotent (env + cpuid are stable), so a racing double-resolve is benign.
std::atomic<int> g_kernel{-1};

SimdKernel resolve_simd_kernel() {
  const SimdKernel best = avx2_available() ? SimdKernel::kAvx2
                                           : SimdKernel::kScalar;
  const char* env = util::env::get(util::env::Var::kSimd);
  if (env == nullptr || env[0] == '\0') return best;
  const std::string value(env);
  if (value == "auto") return best;
  if (value == "scalar") return SimdKernel::kScalar;
  if (value == "avx2") {
    if (avx2_available()) return SimdKernel::kAvx2;
    util::log_warn("RLATTACK_SIMD=avx2 requested but AVX2/FMA is ",
                   "unavailable on this host/build; using scalar kernel");
    return SimdKernel::kScalar;
  }
  util::log_warn("unknown RLATTACK_SIMD value '", value,
                 "' (expected avx2|scalar|auto); auto-selecting");
  return best;
}

internal::MicroKernelFn micro_kernel_for(SimdKernel kernel) noexcept {
#if defined(RLATTACK_HAVE_AVX2_KERNEL)
  if (kernel == SimdKernel::kAvx2) return internal::micro_kernel_avx2;
#else
  (void)kernel;
#endif
  return internal::micro_kernel_scalar;
}

// Full blocked GEMM restricted to output rows [m0, m1). Each pool chunk gets
// a disjoint row range, so results are independent of the chunking (every
// row's K-accumulation order is fixed by the kKC blocking alone).
void sgemm_rows(Trans ta, Trans tb, std::size_t m0, std::size_t m1,
                std::size_t n, std::size_t k, const float* a, std::size_t lda,
                const float* b, std::size_t ldb, float* c, std::size_t ldc,
                bool accumulate, internal::MicroKernelFn kernel) {
  // Per-thread packing scratch, reused across calls (no per-call allocation
  // once warmed up).
  thread_local std::vector<float> ap(kMC * kKC);
  thread_local std::vector<float> bp(kKC * kNC);
  for (std::size_t jc = 0; jc < n; jc += kNC) {
    const std::size_t nb = std::min(kNC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKC) {
      const std::size_t kb = std::min(kKC, k - pc);
      const bool store = pc == 0 && !accumulate;
      internal::pack_b(tb, b, ldb, pc, jc, kb, nb, bp.data());
      for (std::size_t ic = m0; ic < m1; ic += kMC) {
        const std::size_t mb = std::min(kMC, m1 - ic);
        internal::pack_a(ta, a, lda, ic, pc, mb, kb, ap.data());
        kernel(mb, nb, kb, ap.data(), bp.data(), c + ic * ldc + jc, ldc,
               store);
      }
    }
  }
}

}  // namespace

bool avx2_available() noexcept {
#if defined(RLATTACK_HAVE_AVX2_KERNEL)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

SimdKernel active_simd_kernel() noexcept {
  int current = g_kernel.load(std::memory_order_acquire);
  if (current < 0) {
    const SimdKernel resolved = resolve_simd_kernel();
    publish_kernel_choice(resolved);
    g_kernel.store(static_cast<int>(resolved), std::memory_order_release);
    return resolved;
  }
  return static_cast<SimdKernel>(current);
}

void set_simd_kernel(SimdKernel kernel) {
  if (kernel == SimdKernel::kAvx2 && !avx2_available())
    throw std::invalid_argument(
        "set_simd_kernel(kAvx2): AVX2/FMA unavailable on this host/build");
  publish_kernel_choice(kernel);
  g_kernel.store(static_cast<int>(kernel), std::memory_order_release);
}

const char* simd_kernel_name(SimdKernel kernel) noexcept {
  return kernel == SimdKernel::kAvx2 ? "avx2" : "scalar";
}

namespace {

// Compute body, split out of the public wrapper and kept noinline so the
// TraceScope living in the wrapper's frame (a non-trivial destructor the
// optimiser must path around) cannot perturb codegen of the packing and
// dispatch loops. Measured: inlining this under the scope object cost
// ~10-15% on mid-size AVX2 shapes.
[[gnu::noinline]] void sgemm_body(Trans ta, Trans tb, std::size_t m,
                                  std::size_t n, std::size_t k, const float* a,
                                  std::size_t lda, const float* b,
                                  std::size_t ldb, float* c, std::size_t ldc,
                                  bool accumulate) {
  if (k == 0) {
    if (!accumulate)
      for (std::size_t i = 0; i < m; ++i)
        std::memset(c + i * ldc, 0, n * sizeof(float));
    return;
  }
  const internal::MicroKernelFn kernel = micro_kernel_for(active_simd_kernel());
  // Parallelise over output rows; below ~8 row-blocks' worth of work the
  // dispatch overhead outweighs the win and the loop runs inline anyway.
  util::ThreadPool::global().parallel_for(
      m, /*grain=*/kMR * 2, [&](std::size_t r0, std::size_t r1) {
        sgemm_rows(ta, tb, r0, r1, n, k, a, lda, b, ldb, c, ldc, accumulate,
                   kernel);
      });
}

}  // namespace

void sgemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
           const float* a, std::size_t lda, const float* b, std::size_t ldb,
           float* c, std::size_t ldc, bool accumulate) {
  if (m == 0 || n == 0) return;
  const std::uint64_t flops = 2 * static_cast<std::uint64_t>(m) *
                              static_cast<std::uint64_t>(n) *
                              static_cast<std::uint64_t>(k);
  g_metrics.gemm_calls.add();
  g_metrics.gemm_flops.add(flops);
  // Only GEMMs above ~1 MFLOP get a timeline slot: the decoder's per-step
  // single-row calls would drown the trace (and the ring) in microsecond
  // events, while the batched tail/training GEMMs are exactly the ones
  // whose scheduling the timeline should show.
  constexpr std::uint64_t kTraceMinFlops = 1u << 20;
  obs::TraceScope trace(flops >= kTraceMinFlops ? "nn.gemm" : nullptr,
                        "mflops", static_cast<double>(flops) * 1e-6, "m",
                        static_cast<double>(m));
  sgemm_body(ta, tb, m, n, k, a, lda, b, ldb, c, ldc, accumulate);
}

void axpy(std::size_t n, float alpha, const float* x, float* y) noexcept {
  g_metrics.axpy_calls.add();
  g_metrics.axpy_flops.add(2 * static_cast<std::uint64_t>(n));
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void broadcast_bias_rows(std::size_t m, std::size_t n, const float* bias,
                         float* dst, std::size_t ldd) noexcept {
  for (std::size_t i = 0; i < m; ++i)
    std::memcpy(dst + i * ldd, bias, n * sizeof(float));
}

void col_sums_accumulate(std::size_t m, std::size_t n, const float* a,
                         std::size_t lda, float* out) noexcept {
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = a + i * lda;
    for (std::size_t j = 0; j < n; ++j) out[j] += row[j];
  }
}

}  // namespace rlattack::nn::kernels
