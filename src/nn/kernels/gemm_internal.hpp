// Internals shared between the portable scalar GEMM TU (gemm.cpp) and the
// AVX2/FMA TU (gemm_avx2.cpp, compiled with -mavx2 -mfma and therefore kept
// out of every other translation unit). Both micro-kernels consume the same
// packed panels and the same kKC-blocked loop nest, so the determinism
// contract — per-element K-accumulation order fixed by the blocking, not the
// thread partition — holds for either choice.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>

#include "rlattack/nn/kernels/gemm.hpp"

namespace rlattack::nn::kernels::internal {

// Cache blocking: the packed B panel (kKC x kNC = 128 KiB) and A panel
// (kMC x kKC = 64 KiB) both sit in L2; the micro-kernel accumulators stay in
// L1/registers. Packing makes the inner loop a unit-stride multiply-add over
// independent output columns — the scalar kernel vectorises without FP
// reassociation (-ffast-math) and the AVX2 kernel loads B rows directly.
constexpr std::size_t kMC = 64;
constexpr std::size_t kKC = 256;
constexpr std::size_t kNC = 128;
constexpr std::size_t kMR = 4;  // scalar kernel's row-register tile

// mb x nb C tile (+)= packed mb x kb A panel times packed kb x nb B panel.
// `store` overwrites C (first K block without accumulate); otherwise adds.
// Implementations must accumulate each output element over p = 0..kb-1 in
// ascending order into fresh accumulators — that is what makes the result
// independent of the row partition handed out by the thread pool.
using MicroKernelFn = void (*)(std::size_t mb, std::size_t nb, std::size_t kb,
                               const float* ap, const float* bp, float* c,
                               std::size_t ldc, bool store);

void micro_kernel_scalar(std::size_t mb, std::size_t nb, std::size_t kb,
                         const float* ap, const float* bp, float* c,
                         std::size_t ldc, bool store);
#if defined(RLATTACK_HAVE_AVX2_KERNEL)
void micro_kernel_avx2(std::size_t mb, std::size_t nb, std::size_t kb,
                       const float* ap, const float* bp, float* c,
                       std::size_t ldc, bool store);
#endif

// Packs the op(A) sub-block rows [i0, i0+mb) x cols [p0, p0+kb) into a dense
// row-major mb x kb panel.
inline void pack_a(Trans ta, const float* a, std::size_t lda, std::size_t i0,
                   std::size_t p0, std::size_t mb, std::size_t kb, float* ap) {
  if (ta == Trans::kNo) {
    for (std::size_t i = 0; i < mb; ++i)
      std::memcpy(ap + i * kb, a + (i0 + i) * lda + p0, kb * sizeof(float));
  } else {
    for (std::size_t i = 0; i < mb; ++i)
      for (std::size_t p = 0; p < kb; ++p)
        ap[i * kb + p] = a[(p0 + p) * lda + (i0 + i)];
  }
}

// Packs the op(B) sub-block rows [p0, p0+kb) x cols [j0, j0+nb) into a dense
// row-major kb x nb panel.
inline void pack_b(Trans tb, const float* b, std::size_t ldb, std::size_t p0,
                   std::size_t j0, std::size_t kb, std::size_t nb, float* bp) {
  if (tb == Trans::kNo) {
    for (std::size_t p = 0; p < kb; ++p)
      std::memcpy(bp + p * nb, b + (p0 + p) * ldb + j0, nb * sizeof(float));
  } else {
    for (std::size_t p = 0; p < kb; ++p)
      for (std::size_t j = 0; j < nb; ++j)
        bp[p * nb + j] = b[(j0 + j) * ldb + (p0 + p)];
  }
}

}  // namespace rlattack::nn::kernels::internal
