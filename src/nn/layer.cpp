#include "rlattack/nn/layer.hpp"

#include <stdexcept>

namespace rlattack::nn {

void copy_parameters(Layer& dst, Layer& src) {
  auto d = dst.params();
  auto s = src.params();
  if (d.size() != s.size())
    throw std::logic_error("copy_parameters: parameter count mismatch");
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (!d[i].value->same_shape(*s[i].value))
      throw std::logic_error("copy_parameters: shape mismatch at " +
                             d[i].name);
    *d[i].value = *s[i].value;
  }
}

void copy_parameters(const std::vector<Param>& dst,
                     const std::vector<Param>& src) {
  if (dst.size() != src.size())
    throw std::logic_error("copy_parameters: parameter count mismatch");
  for (std::size_t i = 0; i < dst.size(); ++i) {
    if (!dst[i].value->same_shape(*src[i].value))
      throw std::logic_error("copy_parameters: shape mismatch at " +
                             dst[i].name);
    *dst[i].value = *src[i].value;
  }
}

void soft_update_parameters(Layer& dst, Layer& src, float tau) {
  auto d = dst.params();
  auto s = src.params();
  if (d.size() != s.size())
    throw std::logic_error("soft_update_parameters: parameter count mismatch");
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (!d[i].value->same_shape(*s[i].value))
      throw std::logic_error("soft_update_parameters: shape mismatch at " +
                             d[i].name);
    auto dd = d[i].value->data();
    auto sd = s[i].value->data();
    for (std::size_t j = 0; j < dd.size(); ++j)
      dd[j] = (1.0f - tau) * dd[j] + tau * sd[j];
  }
}

std::size_t parameter_count(Layer& layer) {
  std::size_t n = 0;
  for (const Param& p : layer.params()) n += p.value->size();
  return n;
}

}  // namespace rlattack::nn
