// Seed scalar kernels, kept as the parity ground truth for the GEMM paths.
#include "rlattack/nn/reference.hpp"

#include <cmath>
#include <stdexcept>

namespace rlattack::nn::ref {

namespace {
inline float sigmoid(float x) noexcept { return 1.0f / (1.0f + std::exp(-x)); }

std::size_t conv_out_extent(std::size_t in_extent, std::size_t k,
                            std::size_t stride, std::size_t pad) {
  const std::size_t padded = in_extent + 2 * pad;
  if (padded < k)
    throw std::logic_error("ref::conv2d: input smaller than kernel");
  return (padded - k) / stride + 1;
}
}  // namespace

Tensor dense_forward(const Tensor& x, const Tensor& w, const Tensor& b) {
  const std::size_t batch = x.dim(0), in = x.dim(1), out = w.dim(0);
  Tensor y({batch, out});
  const float* wd = w.raw();
  for (std::size_t bi = 0; bi < batch; ++bi) {
    const float* xb = x.raw() + bi * in;
    float* yb = y.raw() + bi * out;
    for (std::size_t o = 0; o < out; ++o) {
      const float* wrow = wd + o * in;
      float acc = b[o];
      for (std::size_t i = 0; i < in; ++i) acc += wrow[i] * xb[i];
      yb[o] = acc;
    }
  }
  return y;
}

Tensor dense_backward(const Tensor& x, const Tensor& w, const Tensor& g,
                      Tensor& gw, Tensor& gb) {
  const std::size_t batch = x.dim(0), in = x.dim(1), out = w.dim(0);
  Tensor grad_input({batch, in});
  const float* wd = w.raw();
  float* gwd = gw.raw();
  for (std::size_t bi = 0; bi < batch; ++bi) {
    const float* gr = g.raw() + bi * out;
    const float* xb = x.raw() + bi * in;
    float* gi = grad_input.raw() + bi * in;
    for (std::size_t o = 0; o < out; ++o) {
      const float go = gr[o];
      gb[o] += go;
      const float* wrow = wd + o * in;
      float* gwrow = gwd + o * in;
      for (std::size_t i = 0; i < in; ++i) {
        gwrow[i] += go * xb[i];
        gi[i] += go * wrow[i];
      }
    }
  }
  return grad_input;
}

Tensor conv2d_forward(const Tensor& x, const Tensor& w, const Tensor& b,
                      std::size_t stride, std::size_t pad) {
  const std::size_t batch = x.dim(0), in_c = x.dim(1), h = x.dim(2),
                    width = x.dim(3);
  const std::size_t out_c = w.dim(0), k = w.dim(2);
  const std::size_t oh = conv_out_extent(h, k, stride, pad);
  const std::size_t ow = conv_out_extent(width, k, stride, pad);
  Tensor out({batch, out_c, oh, ow});

  const float* xd = x.raw();
  const float* wt = w.raw();
  float* y = out.raw();
  const auto in_plane = h * width;
  const auto out_plane = oh * ow;
  for (std::size_t bi = 0; bi < batch; ++bi) {
    for (std::size_t oc = 0; oc < out_c; ++oc) {
      float* yplane = y + (bi * out_c + oc) * out_plane;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float acc = b[oc];
          for (std::size_t ic = 0; ic < in_c; ++ic) {
            const float* xplane = xd + (bi * in_c + ic) * in_plane;
            const float* wrow = wt + ((oc * in_c + ic) * k) * k;
            for (std::size_t ky = 0; ky < k; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride + ky) -
                  static_cast<std::ptrdiff_t>(pad);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kx = 0; kx < k; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride + kx) -
                    static_cast<std::ptrdiff_t>(pad);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(width))
                  continue;
                acc += wrow[ky * k + kx] *
                       xplane[static_cast<std::size_t>(iy) * width +
                              static_cast<std::size_t>(ix)];
              }
            }
          }
          yplane[oy * ow + ox] = acc;
        }
      }
    }
  }
  return out;
}

Tensor conv2d_backward(const Tensor& x, const Tensor& w, const Tensor& g,
                       std::size_t stride, std::size_t pad, Tensor& gw,
                       Tensor& gb) {
  const std::size_t batch = x.dim(0), in_c = x.dim(1), h = x.dim(2),
                    width = x.dim(3);
  const std::size_t out_c = w.dim(0), k = w.dim(2);
  const std::size_t oh = conv_out_extent(h, k, stride, pad);
  const std::size_t ow = conv_out_extent(width, k, stride, pad);

  Tensor grad_input({batch, in_c, h, width});
  const float* xd = x.raw();
  const float* wt = w.raw();
  const float* gd = g.raw();
  float* gx = grad_input.raw();
  float* gwd = gw.raw();
  const auto in_plane = h * width;
  const auto out_plane = oh * ow;

  for (std::size_t bi = 0; bi < batch; ++bi) {
    for (std::size_t oc = 0; oc < out_c; ++oc) {
      const float* gplane = gd + (bi * out_c + oc) * out_plane;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float go = gplane[oy * ow + ox];
          if (go == 0.0f) continue;
          gb[oc] += go;
          for (std::size_t ic = 0; ic < in_c; ++ic) {
            const float* xplane = xd + (bi * in_c + ic) * in_plane;
            float* gxplane = gx + (bi * in_c + ic) * in_plane;
            const std::size_t wbase = ((oc * in_c + ic) * k) * k;
            for (std::size_t ky = 0; ky < k; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride + ky) -
                  static_cast<std::ptrdiff_t>(pad);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kx = 0; kx < k; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride + kx) -
                    static_cast<std::ptrdiff_t>(pad);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(width))
                  continue;
                const std::size_t xi = static_cast<std::size_t>(iy) * width +
                                       static_cast<std::size_t>(ix);
                gwd[wbase + ky * k + kx] += go * xplane[xi];
                gxplane[xi] += go * wt[wbase + ky * k + kx];
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

LstmRef::LstmRef(Tensor w, Tensor u, Tensor b, bool return_sequences)
    : input_(w.dim(1)),
      hidden_(u.dim(1)),
      return_sequences_(return_sequences),
      w_(std::move(w)),
      u_(std::move(u)),
      b_(std::move(b)) {}

Tensor LstmRef::forward(const Tensor& input) {
  cached_input_ = input;
  const std::size_t batch = input.dim(0), steps = input.dim(1);
  gates_.assign(steps, Tensor({batch, 4 * hidden_}));
  cells_.assign(steps, Tensor({batch, hidden_}));
  tanh_cells_.assign(steps, Tensor({batch, hidden_}));
  hiddens_.assign(steps, Tensor({batch, hidden_}));

  Tensor h_prev({batch, hidden_});
  Tensor c_prev({batch, hidden_});

  const std::size_t h4 = 4 * hidden_;
  for (std::size_t t = 0; t < steps; ++t) {
    Tensor& gates = gates_[t];
    for (std::size_t bi = 0; bi < batch; ++bi) {
      const float* xt = input.raw() + (bi * steps + t) * input_;
      const float* hp = h_prev.raw() + bi * hidden_;
      float* gr = gates.raw() + bi * h4;
      for (std::size_t j = 0; j < h4; ++j) {
        const float* wrow = w_.raw() + j * input_;
        const float* urow = u_.raw() + j * hidden_;
        float acc = b_[j];
        for (std::size_t f = 0; f < input_; ++f) acc += wrow[f] * xt[f];
        for (std::size_t k = 0; k < hidden_; ++k) acc += urow[k] * hp[k];
        gr[j] = acc;
      }
    }
    Tensor& c = cells_[t];
    Tensor& tc = tanh_cells_[t];
    Tensor& h = hiddens_[t];
    for (std::size_t bi = 0; bi < batch; ++bi) {
      float* gr = gates.raw() + bi * h4;
      const float* cp = c_prev.raw() + bi * hidden_;
      float* cr = c.raw() + bi * hidden_;
      float* tcr = tc.raw() + bi * hidden_;
      float* hr = h.raw() + bi * hidden_;
      for (std::size_t k = 0; k < hidden_; ++k) {
        const float ig = sigmoid(gr[k]);
        const float fg = sigmoid(gr[hidden_ + k]);
        const float gg = std::tanh(gr[2 * hidden_ + k]);
        const float og = sigmoid(gr[3 * hidden_ + k]);
        gr[k] = ig;
        gr[hidden_ + k] = fg;
        gr[2 * hidden_ + k] = gg;
        gr[3 * hidden_ + k] = og;
        cr[k] = fg * cp[k] + ig * gg;
        tcr[k] = std::tanh(cr[k]);
        hr[k] = og * tcr[k];
      }
    }
    h_prev = h;
    c_prev = c;
  }

  if (return_sequences_) {
    Tensor out({batch, steps, hidden_});
    for (std::size_t t = 0; t < steps; ++t)
      for (std::size_t bi = 0; bi < batch; ++bi)
        for (std::size_t k = 0; k < hidden_; ++k)
          out.at3(bi, t, k) = hiddens_[t].at2(bi, k);
    return out;
  }
  return hiddens_.back();
}

Tensor LstmRef::backward(const Tensor& grad_output, Tensor& gw, Tensor& gu,
                         Tensor& gb) {
  const std::size_t batch = cached_input_.dim(0),
                    steps = cached_input_.dim(1);
  const std::size_t h4 = 4 * hidden_;

  auto grad_at = [&](std::size_t t, std::size_t bi, std::size_t k) -> float {
    if (return_sequences_) return grad_output.at3(bi, t, k);
    return t + 1 == steps ? grad_output.at2(bi, k) : 0.0f;
  };

  Tensor grad_input({batch, steps, input_});
  Tensor dh_next({batch, hidden_});
  Tensor dc_next({batch, hidden_});
  Tensor dpre({batch, h4});

  for (std::size_t t = steps; t-- > 0;) {
    const Tensor& gates = gates_[t];
    const Tensor& tc = tanh_cells_[t];
    const Tensor* c_prev = t > 0 ? &cells_[t - 1] : nullptr;
    const Tensor* h_prev = t > 0 ? &hiddens_[t - 1] : nullptr;

    for (std::size_t bi = 0; bi < batch; ++bi) {
      const float* gr = gates.raw() + bi * h4;
      const float* tcr = tc.raw() + bi * hidden_;
      float* dpr = dpre.raw() + bi * h4;
      float* dhn = dh_next.raw() + bi * hidden_;
      float* dcn = dc_next.raw() + bi * hidden_;
      for (std::size_t k = 0; k < hidden_; ++k) {
        const float ig = gr[k], fg = gr[hidden_ + k], gg = gr[2 * hidden_ + k],
                    og = gr[3 * hidden_ + k];
        const float dh = grad_at(t, bi, k) + dhn[k];
        const float dc = dcn[k] + dh * og * (1.0f - tcr[k] * tcr[k]);
        const float cp = c_prev ? c_prev->at2(bi, k) : 0.0f;
        dpr[k] = dc * gg * ig * (1.0f - ig);
        dpr[hidden_ + k] = dc * cp * fg * (1.0f - fg);
        dpr[2 * hidden_ + k] = dc * ig * (1.0f - gg * gg);
        dpr[3 * hidden_ + k] = dh * tcr[k] * og * (1.0f - og);
        dcn[k] = dc * fg;
        dhn[k] = 0.0f;
      }
    }

    for (std::size_t bi = 0; bi < batch; ++bi) {
      const float* dpr = dpre.raw() + bi * h4;
      const float* xt = cached_input_.raw() + (bi * steps + t) * input_;
      float* gi = grad_input.raw() + (bi * steps + t) * input_;
      float* dhn = dh_next.raw() + bi * hidden_;
      for (std::size_t j = 0; j < h4; ++j) {
        const float d = dpr[j];
        if (d == 0.0f) continue;
        gb[j] += d;
        float* gwrow = gw.raw() + j * input_;
        const float* wrow = w_.raw() + j * input_;
        for (std::size_t f = 0; f < input_; ++f) {
          gwrow[f] += d * xt[f];
          gi[f] += d * wrow[f];
        }
        float* gurow = gu.raw() + j * hidden_;
        const float* urow = u_.raw() + j * hidden_;
        if (h_prev) {
          const float* hp = h_prev->raw() + bi * hidden_;
          for (std::size_t k = 0; k < hidden_; ++k) {
            gurow[k] += d * hp[k];
            dhn[k] += d * urow[k];
          }
        } else {
          for (std::size_t k = 0; k < hidden_; ++k) dhn[k] += d * urow[k];
        }
      }
    }
  }
  return grad_input;
}

}  // namespace rlattack::nn::ref
