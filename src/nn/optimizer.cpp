#include "rlattack/nn/optimizer.hpp"

#include <cmath>

namespace rlattack::nn {

void Optimizer::clip_grad_norm(float max_norm) {
  double s = 0.0;
  for (Param& p : params_)
    for (float x : p.grad->data())
      s += static_cast<double>(x) * static_cast<double>(x);
  const double norm = std::sqrt(s);
  if (norm <= static_cast<double>(max_norm) || norm == 0.0) return;
  const float scale = static_cast<float>(static_cast<double>(max_norm) / norm);
  for (Param& p : params_) (*p.grad) *= scale;
}

Sgd::Sgd(Layer& model, float lr, float momentum)
    : Sgd(model.params(), lr, momentum) {}

Sgd::Sgd(std::vector<Param> bound, float lr, float momentum)
    : Optimizer(std::move(bound)), lr_(lr), momentum_(momentum) {
  if (momentum_ != 0.0f)
    for (Param& p : params()) velocity_.emplace_back(p.value->shape());
}

void Sgd::apply() {
  auto& ps = params();
  for (std::size_t i = 0; i < ps.size(); ++i) {
    auto vd = ps[i].value->data();
    auto gd = ps[i].grad->data();
    if (momentum_ != 0.0f) {
      auto md = velocity_[i].data();
      for (std::size_t j = 0; j < vd.size(); ++j) {
        md[j] = momentum_ * md[j] + gd[j];
        vd[j] -= lr_ * md[j];
      }
    } else {
      for (std::size_t j = 0; j < vd.size(); ++j) vd[j] -= lr_ * gd[j];
    }
  }
}

Adam::Adam(Layer& model, float lr, float beta1, float beta2, float eps)
    : Adam(model.params(), lr, beta1, beta2, eps) {}

Adam::Adam(std::vector<Param> bound, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(bound)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  for (Param& p : params()) {
    m_.emplace_back(p.value->shape());
    v_.emplace_back(p.value->shape());
  }
}

void Adam::apply() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  auto& ps = params();
  for (std::size_t i = 0; i < ps.size(); ++i) {
    auto vd = ps[i].value->data();
    auto gd = ps[i].grad->data();
    auto md = m_[i].data();
    auto sd = v_[i].data();
    for (std::size_t j = 0; j < vd.size(); ++j) {
      md[j] = beta1_ * md[j] + (1.0f - beta1_) * gd[j];
      sd[j] = beta2_ * sd[j] + (1.0f - beta2_) * gd[j] * gd[j];
      const float mhat = md[j] / bc1;
      const float vhat = sd[j] / bc2;
      vd[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace rlattack::nn
