#include "rlattack/nn/optimizer.hpp"

#include <cmath>

namespace rlattack::nn {

namespace {

/// Shared moment-buffer setup for the stateful optimizers.
std::vector<Tensor> make_state_like(const std::vector<Param>& params) {
  std::vector<Tensor> state;
  state.reserve(params.size());
  for (const Param& p : params) state.emplace_back(p.value->shape());
  return state;
}

}  // namespace

void Optimizer::clip_grad_norm(float max_norm) {
  double s = 0.0;
  for (const Param& p : *params_)
    for (float x : p.grad->data())
      s += static_cast<double>(x) * static_cast<double>(x);
  const double norm = std::sqrt(s);
  if (norm <= static_cast<double>(max_norm) || norm == 0.0) return;
  const float scale = static_cast<float>(static_cast<double>(max_norm) / norm);
  for (const Param& p : *params_) (*p.grad) *= scale;
}

Sgd::Sgd(Layer& model, float lr, float momentum)
    : Sgd(model.params(), lr, momentum) {}

Sgd::Sgd(std::vector<Param> bound, float lr, float momentum)
    : Optimizer(std::move(bound)), lr_(lr), momentum_(momentum) {
  if (momentum_ != 0.0f) velocity_ = make_state_like(params());
}

Sgd::Sgd(const std::vector<Param>* bound, float lr, float momentum)
    : Optimizer(bound), lr_(lr), momentum_(momentum) {
  if (momentum_ != 0.0f) velocity_ = make_state_like(params());
}

void Sgd::apply() {
  const auto& ps = params();
  for (std::size_t i = 0; i < ps.size(); ++i) {
    auto vd = ps[i].value->data();
    auto gd = ps[i].grad->data();
    if (momentum_ != 0.0f) {
      auto md = velocity_[i].data();
      for (std::size_t j = 0; j < vd.size(); ++j) {
        md[j] = momentum_ * md[j] + gd[j];
        vd[j] -= lr_ * md[j];
        gd[j] = 0.0f;
      }
    } else {
      for (std::size_t j = 0; j < vd.size(); ++j) {
        vd[j] -= lr_ * gd[j];
        gd[j] = 0.0f;
      }
    }
  }
}

Adam::Adam(Layer& model, float lr, float beta1, float beta2, float eps)
    : Adam(model.params(), lr, beta1, beta2, eps) {}

Adam::Adam(std::vector<Param> bound, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(bound)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_ = make_state_like(params());
  v_ = make_state_like(params());
}

Adam::Adam(const std::vector<Param>* bound, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(bound), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_ = make_state_like(params());
  v_ = make_state_like(params());
}

void Adam::apply() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  const auto& ps = params();
  for (std::size_t i = 0; i < ps.size(); ++i) {
    auto vd = ps[i].value->data();
    auto gd = ps[i].grad->data();
    auto md = m_[i].data();
    auto sd = v_[i].data();
    for (std::size_t j = 0; j < vd.size(); ++j) {
      md[j] = beta1_ * md[j] + (1.0f - beta1_) * gd[j];
      sd[j] = beta2_ * sd[j] + (1.0f - beta2_) * gd[j] * gd[j];
      gd[j] = 0.0f;
      const float mhat = md[j] / bc1;
      const float vhat = sd[j] / bc2;
      vd[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace rlattack::nn
