#include "rlattack/nn/init.hpp"

#include <cmath>

namespace rlattack::nn {

void xavier_uniform(Tensor& w, std::size_t fan_in, std::size_t fan_out,
                    util::Rng& rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  uniform_init(w, a, rng);
}

void he_uniform(Tensor& w, std::size_t fan_in, util::Rng& rng) {
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in));
  uniform_init(w, a, rng);
}

void uniform_init(Tensor& w, float bound, util::Rng& rng) {
  for (float& x : w.data()) x = rng.uniform_f(-bound, bound);
}

}  // namespace rlattack::nn
