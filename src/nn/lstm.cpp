#include "rlattack/nn/lstm.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "rlattack/nn/init.hpp"
#include "rlattack/nn/kernels/gemm.hpp"
#include "rlattack/util/thread_pool.hpp"

namespace rlattack::nn {

namespace {
inline float sigmoid(float x) noexcept { return 1.0f / (1.0f + std::exp(-x)); }
}  // namespace

Lstm::Lstm(std::size_t input_size, std::size_t hidden_size,
           bool return_sequences, util::Rng& rng)
    : input_(input_size),
      hidden_(hidden_size),
      return_sequences_(return_sequences),
      w_({4 * hidden_size, input_size}),
      u_({4 * hidden_size, hidden_size}),
      b_({4 * hidden_size}),
      gw_({4 * hidden_size, input_size}),
      gu_({4 * hidden_size, hidden_size}),
      gb_({4 * hidden_size}) {
  if (input_ == 0 || hidden_ == 0)
    throw std::logic_error("Lstm: zero-sized dimension");
  xavier_uniform(w_, input_, hidden_, rng);
  xavier_uniform(u_, hidden_, hidden_, rng);
  // Forget-gate bias at 1.0 eases gradient flow early in training
  // (Jozefowicz et al. 2015); other gate biases stay at zero.
  for (std::size_t i = hidden_; i < 2 * hidden_; ++i) b_[i] = 1.0f;
}

Tensor Lstm::forward(const Tensor& input) {
  if (input.rank() != 3 || input.dim(2) != input_)
    throw std::logic_error("Lstm::forward: expected [B, T, " +
                           std::to_string(input_) + "], got " +
                           input.shape_string());
  cached_input_ = input;
  const std::size_t batch = input.dim(0), steps = input.dim(1);
  gates_.assign(steps, Tensor({batch, 4 * hidden_}));
  cells_.assign(steps, Tensor({batch, hidden_}));
  tanh_cells_.assign(steps, Tensor({batch, hidden_}));
  hiddens_.assign(steps, Tensor({batch, hidden_}));

  const std::size_t h4 = 4 * hidden_;
  // Input contributions for every gate and timestep in one fused GEMM:
  // [B*T, F] x [F, 4H] — the [B, T, F] layout flattens row-exactly.
  if (xw_buf_.rank() != 2 || xw_buf_.dim(0) != batch * steps ||
      xw_buf_.dim(1) != h4)
    xw_buf_ = Tensor({batch * steps, h4});
  kernels::sgemm(kernels::Trans::kNo, kernels::Trans::kYes, batch * steps, h4,
                 input_, input.raw(), input_, w_.raw(), input_, xw_buf_.raw(),
                 h4, /*accumulate=*/false);

  auto& pool = util::ThreadPool::global();
  for (std::size_t t = 0; t < steps; ++t) {
    Tensor& gates = gates_[t];
    // gates = xw_t + b, then gates += h_{t-1} U^T (one fused 4H-wide GEMM).
    for (std::size_t bi = 0; bi < batch; ++bi) {
      const float* xw = xw_buf_.raw() + (bi * steps + t) * h4;
      float* gr = gates.raw() + bi * h4;
      for (std::size_t j = 0; j < h4; ++j) gr[j] = xw[j] + b_[j];
    }
    if (t > 0)
      kernels::sgemm(kernels::Trans::kNo, kernels::Trans::kYes, batch, h4,
                     hidden_, hiddens_[t - 1].raw(), hidden_, u_.raw(),
                     hidden_, gates.raw(), h4, /*accumulate=*/true);
    // Activations and state update, batch rows in parallel.
    Tensor& c = cells_[t];
    Tensor& tc = tanh_cells_[t];
    Tensor& h = hiddens_[t];
    const Tensor* c_prev = t > 0 ? &cells_[t - 1] : nullptr;
    pool.parallel_for(batch, /*grain=*/8, [&](std::size_t b0, std::size_t b1) {
      for (std::size_t bi = b0; bi < b1; ++bi) {
        float* gr = gates.raw() + bi * h4;
        const float* cp = c_prev ? c_prev->raw() + bi * hidden_ : nullptr;
        float* cr = c.raw() + bi * hidden_;
        float* tcr = tc.raw() + bi * hidden_;
        float* hr = h.raw() + bi * hidden_;
        for (std::size_t k = 0; k < hidden_; ++k) {
          const float ig = sigmoid(gr[k]);
          const float fg = sigmoid(gr[hidden_ + k]);
          const float gg = std::tanh(gr[2 * hidden_ + k]);
          const float og = sigmoid(gr[3 * hidden_ + k]);
          gr[k] = ig;
          gr[hidden_ + k] = fg;
          gr[2 * hidden_ + k] = gg;
          gr[3 * hidden_ + k] = og;
          cr[k] = fg * (cp ? cp[k] : 0.0f) + ig * gg;
          tcr[k] = std::tanh(cr[k]);
          hr[k] = og * tcr[k];
        }
      }
    });
  }

  if (return_sequences_) {
    Tensor out({batch, steps, hidden_});
    for (std::size_t t = 0; t < steps; ++t)
      for (std::size_t bi = 0; bi < batch; ++bi)
        std::memcpy(&out.at3(bi, t, 0), hiddens_[t].raw() + bi * hidden_,
                    hidden_ * sizeof(float));
    return out;
  }
  return hiddens_.back();
}

Tensor Lstm::backward(const Tensor& grad_output) {
  const std::size_t batch = cached_input_.dim(0),
                    steps = cached_input_.dim(1);
  const std::size_t h4 = 4 * hidden_;

  // Per-step output gradient extractor.
  auto grad_at = [&](std::size_t t, std::size_t bi, std::size_t k) -> float {
    if (return_sequences_) return grad_output.at3(bi, t, k);
    return t + 1 == steps ? grad_output.at2(bi, k) : 0.0f;
  };
  if (return_sequences_) {
    if (grad_output.rank() != 3 || grad_output.dim(0) != batch ||
        grad_output.dim(1) != steps || grad_output.dim(2) != hidden_)
      throw std::logic_error("Lstm::backward: gradient shape mismatch");
  } else {
    if (grad_output.rank() != 2 || grad_output.dim(0) != batch ||
        grad_output.dim(1) != hidden_)
      throw std::logic_error("Lstm::backward: gradient shape mismatch");
  }

  // Pre-activation gradients for all steps, stored in the same [B*T, 4H]
  // row order as the input so grad_input and dW become two big GEMMs after
  // the recurrent sweep.
  if (dpre_buf_.rank() != 2 || dpre_buf_.dim(0) != batch * steps ||
      dpre_buf_.dim(1) != h4)
    dpre_buf_ = Tensor({batch * steps, h4});
  Tensor dh_next({batch, hidden_});
  Tensor dc_next({batch, hidden_});
  const std::size_t row_stride = steps * h4;  // between batch rows at fixed t

  auto& pool = util::ThreadPool::global();
  for (std::size_t t = steps; t-- > 0;) {
    const Tensor& gates = gates_[t];
    const Tensor& tc = tanh_cells_[t];
    // c_{t-1}: zero tensor at t == 0.
    const Tensor* c_prev = t > 0 ? &cells_[t - 1] : nullptr;
    float* dpre_t = dpre_buf_.raw() + t * h4;  // row bi at bi * row_stride

    pool.parallel_for(batch, /*grain=*/8, [&](std::size_t b0, std::size_t b1) {
      for (std::size_t bi = b0; bi < b1; ++bi) {
        const float* gr = gates.raw() + bi * h4;
        const float* tcr = tc.raw() + bi * hidden_;
        float* dpr = dpre_t + bi * row_stride;
        float* dhn = dh_next.raw() + bi * hidden_;
        float* dcn = dc_next.raw() + bi * hidden_;
        for (std::size_t k = 0; k < hidden_; ++k) {
          const float ig = gr[k], fg = gr[hidden_ + k],
                      gg = gr[2 * hidden_ + k], og = gr[3 * hidden_ + k];
          const float dh = grad_at(t, bi, k) + dhn[k];
          const float dc = dcn[k] + dh * og * (1.0f - tcr[k] * tcr[k]);
          const float cp = c_prev ? c_prev->at2(bi, k) : 0.0f;
          dpr[k] = dc * gg * ig * (1.0f - ig);                    // d pre_i
          dpr[hidden_ + k] = dc * cp * fg * (1.0f - fg);          // d pre_f
          dpr[2 * hidden_ + k] = dc * ig * (1.0f - gg * gg);      // d pre_g
          dpr[3 * hidden_ + k] = dh * tcr[k] * og * (1.0f - og);  // d pre_o
          dcn[k] = dc * fg;  // flows to c_{t-1}
        }
      }
    });

    // dh_{t-1} = dpre_t U  (overwrites dh_next for the next iteration).
    kernels::sgemm(kernels::Trans::kNo, kernels::Trans::kNo, batch, hidden_,
                   h4, dpre_t, row_stride, u_.raw(), hidden_, dh_next.raw(),
                   hidden_, /*accumulate=*/false);
    // dU += dpre_t^T h_{t-1}.
    if (t > 0)
      kernels::sgemm(kernels::Trans::kYes, kernels::Trans::kNo, h4, hidden_,
                     batch, dpre_t, row_stride, hiddens_[t - 1].raw(),
                     hidden_, gu_.raw(), hidden_, /*accumulate=*/true);
  }

  // grad_input = dpre W and dW += dpre^T x, fused over all timesteps.
  Tensor grad_input({batch, steps, input_});
  kernels::sgemm(kernels::Trans::kNo, kernels::Trans::kNo, batch * steps,
                 input_, h4, dpre_buf_.raw(), h4, w_.raw(), input_,
                 grad_input.raw(), input_, /*accumulate=*/false);
  kernels::sgemm(kernels::Trans::kYes, kernels::Trans::kNo, h4, input_,
                 batch * steps, dpre_buf_.raw(), h4, cached_input_.raw(),
                 input_, gw_.raw(), input_, /*accumulate=*/true);
  kernels::col_sums_accumulate(batch * steps, h4, dpre_buf_.raw(), h4,
                               gb_.raw());
  return grad_input;
}

std::vector<Param> Lstm::params() {
  return {{&w_, &gw_, "lstm.w"},
          {&u_, &gu_, "lstm.u"},
          {&b_, &gb_, "lstm.b"}};
}

}  // namespace rlattack::nn
