#include "rlattack/nn/lstm.hpp"

#include <cmath>
#include <stdexcept>

#include "rlattack/nn/init.hpp"

namespace rlattack::nn {

namespace {
inline float sigmoid(float x) noexcept { return 1.0f / (1.0f + std::exp(-x)); }
}  // namespace

Lstm::Lstm(std::size_t input_size, std::size_t hidden_size,
           bool return_sequences, util::Rng& rng)
    : input_(input_size),
      hidden_(hidden_size),
      return_sequences_(return_sequences),
      w_({4 * hidden_size, input_size}),
      u_({4 * hidden_size, hidden_size}),
      b_({4 * hidden_size}),
      gw_({4 * hidden_size, input_size}),
      gu_({4 * hidden_size, hidden_size}),
      gb_({4 * hidden_size}) {
  if (input_ == 0 || hidden_ == 0)
    throw std::logic_error("Lstm: zero-sized dimension");
  xavier_uniform(w_, input_, hidden_, rng);
  xavier_uniform(u_, hidden_, hidden_, rng);
  // Forget-gate bias at 1.0 eases gradient flow early in training
  // (Jozefowicz et al. 2015); other gate biases stay at zero.
  for (std::size_t i = hidden_; i < 2 * hidden_; ++i) b_[i] = 1.0f;
}

Tensor Lstm::forward(const Tensor& input) {
  if (input.rank() != 3 || input.dim(2) != input_)
    throw std::logic_error("Lstm::forward: expected [B, T, " +
                           std::to_string(input_) + "], got " +
                           input.shape_string());
  cached_input_ = input;
  const std::size_t batch = input.dim(0), steps = input.dim(1);
  gates_.assign(steps, Tensor({batch, 4 * hidden_}));
  cells_.assign(steps, Tensor({batch, hidden_}));
  tanh_cells_.assign(steps, Tensor({batch, hidden_}));
  hiddens_.assign(steps, Tensor({batch, hidden_}));

  Tensor h_prev({batch, hidden_});
  Tensor c_prev({batch, hidden_});

  const std::size_t h4 = 4 * hidden_;
  for (std::size_t t = 0; t < steps; ++t) {
    Tensor& gates = gates_[t];
    // pre-activations: gates = x_t W^T + h_prev U^T + b
    for (std::size_t bi = 0; bi < batch; ++bi) {
      const float* xt = input.raw() + (bi * steps + t) * input_;
      const float* hp = h_prev.raw() + bi * hidden_;
      float* gr = gates.raw() + bi * h4;
      for (std::size_t j = 0; j < h4; ++j) {
        const float* wrow = w_.raw() + j * input_;
        const float* urow = u_.raw() + j * hidden_;
        float acc = b_[j];
        for (std::size_t f = 0; f < input_; ++f) acc += wrow[f] * xt[f];
        for (std::size_t k = 0; k < hidden_; ++k) acc += urow[k] * hp[k];
        gr[j] = acc;
      }
    }
    // Activations and state update.
    Tensor& c = cells_[t];
    Tensor& tc = tanh_cells_[t];
    Tensor& h = hiddens_[t];
    for (std::size_t bi = 0; bi < batch; ++bi) {
      float* gr = gates.raw() + bi * h4;
      const float* cp = c_prev.raw() + bi * hidden_;
      float* cr = c.raw() + bi * hidden_;
      float* tcr = tc.raw() + bi * hidden_;
      float* hr = h.raw() + bi * hidden_;
      for (std::size_t k = 0; k < hidden_; ++k) {
        const float ig = sigmoid(gr[k]);
        const float fg = sigmoid(gr[hidden_ + k]);
        const float gg = std::tanh(gr[2 * hidden_ + k]);
        const float og = sigmoid(gr[3 * hidden_ + k]);
        gr[k] = ig;
        gr[hidden_ + k] = fg;
        gr[2 * hidden_ + k] = gg;
        gr[3 * hidden_ + k] = og;
        cr[k] = fg * cp[k] + ig * gg;
        tcr[k] = std::tanh(cr[k]);
        hr[k] = og * tcr[k];
      }
    }
    h_prev = h;
    c_prev = c;
  }

  if (return_sequences_) {
    Tensor out({batch, steps, hidden_});
    for (std::size_t t = 0; t < steps; ++t)
      for (std::size_t bi = 0; bi < batch; ++bi)
        for (std::size_t k = 0; k < hidden_; ++k)
          out.at3(bi, t, k) = hiddens_[t].at2(bi, k);
    return out;
  }
  return hiddens_.back();
}

Tensor Lstm::backward(const Tensor& grad_output) {
  const std::size_t batch = cached_input_.dim(0),
                    steps = cached_input_.dim(1);
  const std::size_t h4 = 4 * hidden_;

  // Per-step output gradient extractor.
  auto grad_at = [&](std::size_t t, std::size_t bi, std::size_t k) -> float {
    if (return_sequences_) return grad_output.at3(bi, t, k);
    return t + 1 == steps ? grad_output.at2(bi, k) : 0.0f;
  };
  if (return_sequences_) {
    if (grad_output.rank() != 3 || grad_output.dim(0) != batch ||
        grad_output.dim(1) != steps || grad_output.dim(2) != hidden_)
      throw std::logic_error("Lstm::backward: gradient shape mismatch");
  } else {
    if (grad_output.rank() != 2 || grad_output.dim(0) != batch ||
        grad_output.dim(1) != hidden_)
      throw std::logic_error("Lstm::backward: gradient shape mismatch");
  }

  Tensor grad_input({batch, steps, input_});
  Tensor dh_next({batch, hidden_});
  Tensor dc_next({batch, hidden_});
  Tensor dpre({batch, h4});

  for (std::size_t t = steps; t-- > 0;) {
    const Tensor& gates = gates_[t];
    const Tensor& tc = tanh_cells_[t];
    // c_{t-1} and h_{t-1}: zero tensors at t == 0.
    const Tensor* c_prev = t > 0 ? &cells_[t - 1] : nullptr;
    const Tensor* h_prev = t > 0 ? &hiddens_[t - 1] : nullptr;

    for (std::size_t bi = 0; bi < batch; ++bi) {
      const float* gr = gates.raw() + bi * h4;
      const float* tcr = tc.raw() + bi * hidden_;
      float* dpr = dpre.raw() + bi * h4;
      float* dhn = dh_next.raw() + bi * hidden_;
      float* dcn = dc_next.raw() + bi * hidden_;
      for (std::size_t k = 0; k < hidden_; ++k) {
        const float ig = gr[k], fg = gr[hidden_ + k], gg = gr[2 * hidden_ + k],
                    og = gr[3 * hidden_ + k];
        const float dh = grad_at(t, bi, k) + dhn[k];
        const float dc = dcn[k] + dh * og * (1.0f - tcr[k] * tcr[k]);
        const float cp = c_prev ? c_prev->at2(bi, k) : 0.0f;
        dpr[k] = dc * gg * ig * (1.0f - ig);                    // d pre_i
        dpr[hidden_ + k] = dc * cp * fg * (1.0f - fg);          // d pre_f
        dpr[2 * hidden_ + k] = dc * ig * (1.0f - gg * gg);      // d pre_g
        dpr[3 * hidden_ + k] = dh * tcr[k] * og * (1.0f - og);  // d pre_o
        dcn[k] = dc * fg;  // flows to c_{t-1}
        dhn[k] = 0.0f;     // recomputed below from dpre * U
      }
    }

    // Parameter gradients and input/hidden gradients.
    for (std::size_t bi = 0; bi < batch; ++bi) {
      const float* dpr = dpre.raw() + bi * h4;
      const float* xt = cached_input_.raw() + (bi * steps + t) * input_;
      float* gi = grad_input.raw() + (bi * steps + t) * input_;
      float* dhn = dh_next.raw() + bi * hidden_;
      for (std::size_t j = 0; j < h4; ++j) {
        const float d = dpr[j];
        if (d == 0.0f) continue;
        gb_[j] += d;
        float* gwrow = gw_.raw() + j * input_;
        const float* wrow = w_.raw() + j * input_;
        for (std::size_t f = 0; f < input_; ++f) {
          gwrow[f] += d * xt[f];
          gi[f] += d * wrow[f];
        }
        float* gurow = gu_.raw() + j * hidden_;
        const float* urow = u_.raw() + j * hidden_;
        if (h_prev) {
          const float* hp = h_prev->raw() + bi * hidden_;
          for (std::size_t k = 0; k < hidden_; ++k) {
            gurow[k] += d * hp[k];
            dhn[k] += d * urow[k];
          }
        } else {
          for (std::size_t k = 0; k < hidden_; ++k) dhn[k] += d * urow[k];
        }
      }
    }
  }
  return grad_input;
}

std::vector<Param> Lstm::params() {
  return {{&w_, &gw_, "lstm.w"},
          {&u_, &gu_, "lstm.u"},
          {&b_, &gb_, "lstm.b"}};
}

}  // namespace rlattack::nn
