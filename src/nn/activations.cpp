#include "rlattack/nn/activations.hpp"

#include <cmath>
#include <stdexcept>

namespace rlattack::nn {

Tensor ReLU::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor out = input;
  for (float& x : out.data()) x = x > 0.0f ? x : 0.0f;
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (!grad_output.same_shape(cached_input_))
    throw std::logic_error("ReLU::backward: shape mismatch");
  Tensor grad = grad_output;
  auto gd = grad.data();
  auto xd = cached_input_.data();
  for (std::size_t i = 0; i < gd.size(); ++i)
    if (xd[i] <= 0.0f) gd[i] = 0.0f;
  return grad;
}

Tensor Tanh::forward(const Tensor& input) {
  Tensor out = input;
  for (float& x : out.data()) x = std::tanh(x);
  cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  if (!grad_output.same_shape(cached_output_))
    throw std::logic_error("Tanh::backward: shape mismatch");
  Tensor grad = grad_output;
  auto gd = grad.data();
  auto yd = cached_output_.data();
  for (std::size_t i = 0; i < gd.size(); ++i)
    gd[i] *= 1.0f - yd[i] * yd[i];
  return grad;
}

Tensor Sigmoid::forward(const Tensor& input) {
  Tensor out = input;
  for (float& x : out.data()) x = 1.0f / (1.0f + std::exp(-x));
  cached_output_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  if (!grad_output.same_shape(cached_output_))
    throw std::logic_error("Sigmoid::backward: shape mismatch");
  Tensor grad = grad_output;
  auto gd = grad.data();
  auto yd = cached_output_.data();
  for (std::size_t i = 0; i < gd.size(); ++i)
    gd[i] *= yd[i] * (1.0f - yd[i]);
  return grad;
}

}  // namespace rlattack::nn
