#include "rlattack/nn/sequential.hpp"

#include <stdexcept>

#include "rlattack/obs/metrics.hpp"
#include "rlattack/util/check.hpp"

namespace rlattack::nn {

Sequential& Sequential::add(LayerPtr layer) {
  if (!layer) throw std::logic_error("Sequential::add: null layer");
  // Pre-register the per-layer telemetry spans so forward/backward never do
  // a name lookup; metrics are shared per layer-class name across every
  // Sequential instance.
  auto& registry = obs::MetricsRegistry::global();
  forward_spans_.push_back(&registry.span("nn.forward." + layer->name()));
  backward_spans_.push_back(&registry.span("nn.backward." + layer->name()));
  layers_.push_back(std::move(layer));
  params_cache_.clear();
  params_cached_ = false;
  return *this;
}

Tensor Sequential::forward(const Tensor& input) {
  Tensor x = input;
  if constexpr (util::kCheckedBuild) {
    checked_input_shapes_.clear();
    RLATTACK_CHECK(util::all_finite(x.data()),
                   "Sequential::forward: non-finite input (element " +
                       std::to_string(util::first_non_finite(x.data())) +
                       " of " + x.shape_string() + ")");
  }
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    auto& l = layers_[i];
    if constexpr (util::kCheckedBuild) checked_input_shapes_.push_back(x.shape());
    {
      obs::Span span(*forward_spans_[i]);
      x = l->forward(x);
    }
    if constexpr (util::kCheckedBuild) {
      const std::size_t bad = util::first_non_finite(x.data());
      RLATTACK_CHECK(bad == static_cast<std::size_t>(-1),
                     "Sequential::forward: layer " + l->name() +
                         " produced non-finite output (element " +
                         std::to_string(bad) + " of " + x.shape_string() + ")");
    }
  }
  if constexpr (util::kCheckedBuild) checked_output_shape_ = x.shape();
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  if constexpr (util::kCheckedBuild) {
    RLATTACK_CHECK(checked_input_shapes_.size() == layers_.size(),
                   "Sequential::backward: called without a matching forward");
    RLATTACK_CHECK(grad_output.shape() == checked_output_shape_,
                   "Sequential::backward: gradient shape " +
                       grad_output.shape_string() +
                       " does not match forward output shape " +
                       util::shape_string(checked_output_shape_));
    RLATTACK_CHECK(
        util::all_finite(grad_output.data()),
        "Sequential::backward: non-finite incoming gradient (element " +
            std::to_string(util::first_non_finite(grad_output.data())) + ")");
  }
  Tensor g = grad_output;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    {
      obs::Span span(*backward_spans_[i]);
      g = layers_[i]->backward(g);
    }
    if constexpr (util::kCheckedBuild) {
      RLATTACK_CHECK(g.shape() == checked_input_shapes_[i],
                     "Sequential::backward: layer " + layers_[i]->name() +
                         " returned gradient " + g.shape_string() +
                         " for forward input " +
                         util::shape_string(checked_input_shapes_[i]));
      const std::size_t bad = util::first_non_finite(g.data());
      RLATTACK_CHECK(bad == static_cast<std::size_t>(-1),
                     "Sequential::backward: layer " + layers_[i]->name() +
                         " produced non-finite gradient (element " +
                         std::to_string(bad) + ")");
    }
  }
  return g;
}

std::vector<Param> Sequential::params() {
  if (!params_cached_) {
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      for (Param p : layers_[i]->params()) {
        p.name = "layer" + std::to_string(i) + "." + p.name;
        params_cache_.push_back(p);
      }
    }
    params_cached_ = true;
  }
  return params_cache_;
}

void Sequential::set_training(bool training) {
  for (auto& l : layers_) l->set_training(training);
}

void Sequential::resample_noise(util::Rng& rng) {
  for (auto& l : layers_) l->resample_noise(rng);
}

TimeDistributed::TimeDistributed(LayerPtr inner,
                                 std::vector<std::size_t> inner_input_shape)
    : inner_(std::move(inner)), inner_shape_(std::move(inner_input_shape)) {
  if (!inner_) throw std::logic_error("TimeDistributed: null inner layer");
  if (inner_shape_.empty())
    throw std::logic_error("TimeDistributed: empty inner shape");
}

Tensor TimeDistributed::forward(const Tensor& input) {
  if (input.rank() < 3)
    throw std::logic_error("TimeDistributed::forward: expected [B, T, ...]");
  cached_batch_ = input.dim(0);
  cached_steps_ = input.dim(1);
  cached_input_shape_ = input.shape();
  const std::size_t per_step = shape_numel(inner_shape_);
  if (input.size() != cached_batch_ * cached_steps_ * per_step)
    throw std::logic_error(
        "TimeDistributed::forward: input does not match inner shape");
  std::vector<std::size_t> folded{cached_batch_ * cached_steps_};
  folded.insert(folded.end(), inner_shape_.begin(), inner_shape_.end());
  Tensor y = inner_->forward(input.reshaped(std::move(folded)));
  if (y.dim(0) != cached_batch_ * cached_steps_)
    throw std::logic_error(
        "TimeDistributed::forward: inner layer changed the batch extent");
  std::vector<std::size_t> unfolded{cached_batch_, cached_steps_};
  for (std::size_t d = 1; d < y.rank(); ++d) unfolded.push_back(y.dim(d));
  return y.reshaped(std::move(unfolded));
}

Tensor TimeDistributed::backward(const Tensor& grad_output) {
  if (grad_output.rank() < 3 || grad_output.dim(0) != cached_batch_ ||
      grad_output.dim(1) != cached_steps_)
    throw std::logic_error("TimeDistributed::backward: shape mismatch");
  std::vector<std::size_t> folded{cached_batch_ * cached_steps_};
  for (std::size_t d = 2; d < grad_output.rank(); ++d)
    folded.push_back(grad_output.dim(d));
  Tensor g = inner_->backward(grad_output.reshaped(std::move(folded)));
  // Return the gradient in the caller's original input shape (it may have
  // fed flattened frames, e.g. [B, T, H*W] into a conv inner layer).
  return g.reshaped(cached_input_shape_);
}

}  // namespace rlattack::nn
