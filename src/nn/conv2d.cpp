#include "rlattack/nn/conv2d.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include "rlattack/nn/init.hpp"
#include "rlattack/nn/kernels/gemm.hpp"
#include "rlattack/util/thread_pool.hpp"

namespace rlattack::nn {

namespace {

// Per-thread im2col / col2im scratch, cached across calls (and across Conv2D
// instances — resized up as needed, never shrunk below capacity).
thread_local std::vector<float> tl_col;
thread_local std::vector<float> tl_dcol;

struct ConvGeom {
  std::size_t in_c, h, w, k, stride, pad, oh, ow;
};

// Lowers one [C, H, W] item into col[C*k*k, OH*OW]: row (ic, ky, kx) holds
// the input value each output position reads through that kernel tap, with
// zeros where the tap falls in the padding.
void im2col(const ConvGeom& g, const float* x, float* col) {
  const std::size_t ohow = g.oh * g.ow;
  float* crow = col;
  for (std::size_t ic = 0; ic < g.in_c; ++ic) {
    const float* xplane = x + ic * g.h * g.w;
    for (std::size_t ky = 0; ky < g.k; ++ky) {
      for (std::size_t kx = 0; kx < g.k; ++kx, crow += ohow) {
        // Valid ox range: 0 <= ox*stride + kx - pad < w.
        const std::size_t ox_lo =
            kx >= g.pad ? 0 : (g.pad - kx + g.stride - 1) / g.stride;
        const std::size_t ox_hi =
            g.w + g.pad > kx
                ? std::min(g.ow, (g.w - 1 + g.pad - kx) / g.stride + 1)
                : 0;
        for (std::size_t oy = 0; oy < g.oh; ++oy) {
          float* dst = crow + oy * g.ow;
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * g.stride + ky) -
              static_cast<std::ptrdiff_t>(g.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.h)) {
            std::memset(dst, 0, g.ow * sizeof(float));
            continue;
          }
          const float* xrow = xplane + static_cast<std::size_t>(iy) * g.w;
          std::size_t ox = 0;
          for (; ox < ox_lo; ++ox) dst[ox] = 0.0f;
          if (g.stride == 1) {
            if (ox_hi > ox_lo)
              std::memcpy(dst + ox_lo, xrow + ox_lo + kx - g.pad,
                          (ox_hi - ox_lo) * sizeof(float));
            ox = std::max(ox, ox_hi);
          } else {
            for (; ox < ox_hi; ++ox)
              dst[ox] = xrow[ox * g.stride + kx - g.pad];
          }
          for (; ox < g.ow; ++ox) dst[ox] = 0.0f;
        }
      }
    }
  }
}

// Scatters dcol[C*k*k, OH*OW] back into the [C, H, W] input gradient,
// accumulating where receptive fields overlap. Exact adjoint of im2col.
void col2im_accumulate(const ConvGeom& g, const float* dcol, float* gx) {
  const std::size_t ohow = g.oh * g.ow;
  const float* crow = dcol;
  for (std::size_t ic = 0; ic < g.in_c; ++ic) {
    float* gxplane = gx + ic * g.h * g.w;
    for (std::size_t ky = 0; ky < g.k; ++ky) {
      for (std::size_t kx = 0; kx < g.k; ++kx, crow += ohow) {
        const std::size_t ox_lo =
            kx >= g.pad ? 0 : (g.pad - kx + g.stride - 1) / g.stride;
        const std::size_t ox_hi =
            g.w + g.pad > kx
                ? std::min(g.ow, (g.w - 1 + g.pad - kx) / g.stride + 1)
                : 0;
        for (std::size_t oy = 0; oy < g.oh; ++oy) {
          const float* src = crow + oy * g.ow;
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * g.stride + ky) -
              static_cast<std::ptrdiff_t>(g.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.h)) continue;
          float* gxrow = gxplane + static_cast<std::size_t>(iy) * g.w;
          for (std::size_t ox = ox_lo; ox < ox_hi; ++ox)
            gxrow[ox * g.stride + kx - g.pad] += src[ox];
        }
      }
    }
  }
}

}  // namespace

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               util::Rng& rng)
    : in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(pad),
      weight_({out_channels, in_channels, kernel, kernel}),
      bias_({out_channels}),
      grad_weight_({out_channels, in_channels, kernel, kernel}),
      grad_bias_({out_channels}) {
  if (kernel == 0 || stride == 0)
    throw std::logic_error("Conv2D: kernel and stride must be >= 1");
  he_uniform(weight_, in_c_ * k_ * k_, rng);
}

std::size_t Conv2D::out_extent(std::size_t in_extent) const {
  const std::size_t padded = in_extent + 2 * pad_;
  if (padded < k_)
    throw std::logic_error("Conv2D: input smaller than kernel");
  return (padded - k_) / stride_ + 1;
}

Tensor Conv2D::forward(const Tensor& input) {
  if (input.rank() != 4 || input.dim(1) != in_c_)
    throw std::logic_error("Conv2D::forward: expected [B, " +
                           std::to_string(in_c_) + ", H, W], got " +
                           input.shape_string());
  cached_input_ = input;
  const std::size_t batch = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::size_t oh = out_extent(h), ow = out_extent(w);
  // Reusable output buffer: grow-only storage, reshaped in place when the
  // geometry changes (episode-batched inference shrinks the batch extent as
  // episodes retire; reallocating per flush would churn the allocator).
  // Every element is overwritten below (bias fill + GEMM), so no zeroing.
  if (out_buf_.rank() != 4 || out_buf_.dim(0) != batch ||
      out_buf_.dim(2) != oh || out_buf_.dim(3) != ow)
    out_buf_.resize({batch, out_c_, oh, ow});

  const ConvGeom geom{in_c_, h, w, k_, stride_, pad_, oh, ow};
  const std::size_t ckk = in_c_ * k_ * k_;
  const std::size_t ohow = oh * ow;
  const float* x = input.raw();
  float* y = out_buf_.raw();
  // One im2col + GEMM per batch item; items are independent, so the batch
  // fans out over the pool (the nested sgemm then runs inline per worker).
  util::ThreadPool::global().parallel_for(
      batch, /*grain=*/1, [&](std::size_t b0, std::size_t b1) {
        tl_col.resize(ckk * ohow);
        for (std::size_t b = b0; b < b1; ++b) {
          im2col(geom, x + b * in_c_ * h * w, tl_col.data());
          float* yb = y + b * out_c_ * ohow;
          for (std::size_t oc = 0; oc < out_c_; ++oc)
            std::fill(yb + oc * ohow, yb + (oc + 1) * ohow, bias_[oc]);
          // [out_c, OH*OW] += [out_c, C*k*k] x [C*k*k, OH*OW]
          kernels::sgemm(kernels::Trans::kNo, kernels::Trans::kNo, out_c_,
                         ohow, ckk, weight_.raw(), ckk, tl_col.data(), ohow,
                         yb, ohow, /*accumulate=*/true);
        }
      });
  return out_buf_;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  const std::size_t batch = cached_input_.dim(0), h = cached_input_.dim(2),
                    w = cached_input_.dim(3);
  const std::size_t oh = out_extent(h), ow = out_extent(w);
  if (grad_output.rank() != 4 || grad_output.dim(0) != batch ||
      grad_output.dim(1) != out_c_ || grad_output.dim(2) != oh ||
      grad_output.dim(3) != ow)
    throw std::logic_error("Conv2D::backward: gradient shape mismatch " +
                           grad_output.shape_string());

  Tensor grad_input({batch, in_c_, h, w});
  const ConvGeom geom{in_c_, h, w, k_, stride_, pad_, oh, ow};
  const std::size_t ckk = in_c_ * k_ * k_;
  const std::size_t ohow = oh * ow;
  const float* x = cached_input_.raw();
  const float* g = grad_output.raw();
  float* gx = grad_input.raw();

  // Weight/bias gradients are shared across batch items, so each chunk
  // accumulates into its own buffer and the chunks are reduced in index
  // order afterwards. Chunk layout depends only on (batch, grain), keeping
  // the result bit-identical for every RLATTACK_THREADS setting.
  auto& pool = util::ThreadPool::global();
  const std::size_t grain = 4;
  const std::size_t nchunks = util::ThreadPool::chunk_count(batch, grain);
  std::vector<Tensor> gw_chunks(nchunks, Tensor({out_c_, ckk}));
  std::vector<Tensor> gb_chunks(nchunks, Tensor({out_c_}));
  pool.parallel_for_chunks(
      batch, grain,
      [&](std::size_t chunk, std::size_t b0, std::size_t b1) {
        tl_col.resize(ckk * ohow);
        tl_dcol.resize(ckk * ohow);
        float* gw_acc = gw_chunks[chunk].raw();
        float* gb_acc = gb_chunks[chunk].raw();
        for (std::size_t b = b0; b < b1; ++b) {
          const float* gb_plane = g + b * out_c_ * ohow;
          im2col(geom, x + b * in_c_ * h * w, tl_col.data());
          for (std::size_t oc = 0; oc < out_c_; ++oc) {
            const float* row = gb_plane + oc * ohow;
            float s = 0.0f;
            for (std::size_t i = 0; i < ohow; ++i) s += row[i];
            gb_acc[oc] += s;
          }
          // dW += g_b col^T : [out_c, C*k*k]
          kernels::sgemm(kernels::Trans::kNo, kernels::Trans::kYes, out_c_,
                         ckk, ohow, gb_plane, ohow, tl_col.data(), ohow,
                         gw_acc, ckk, /*accumulate=*/true);
          // dcol = W^T g_b : [C*k*k, OH*OW], then scatter back to the input.
          kernels::sgemm(kernels::Trans::kYes, kernels::Trans::kNo, ckk, ohow,
                         out_c_, weight_.raw(), ckk, gb_plane, ohow,
                         tl_dcol.data(), ohow, /*accumulate=*/false);
          col2im_accumulate(geom, tl_dcol.data(), gx + b * in_c_ * h * w);
        }
      });
  for (std::size_t c = 0; c < nchunks; ++c) {
    grad_weight_ += gw_chunks[c].reshaped({out_c_, in_c_, k_, k_});
    grad_bias_ += gb_chunks[c];
  }
  return grad_input;
}

std::vector<Param> Conv2D::params() {
  return {{&weight_, &grad_weight_, "conv.weight"},
          {&bias_, &grad_bias_, "conv.bias"}};
}

MaxPool2D::MaxPool2D(std::size_t window, std::size_t stride)
    : window_(window), stride_(stride) {
  if (window == 0 || stride == 0)
    throw std::logic_error("MaxPool2D: window and stride must be >= 1");
}

Tensor MaxPool2D::forward(const Tensor& input) {
  if (input.rank() != 4)
    throw std::logic_error("MaxPool2D::forward: expected [B, C, H, W], got " +
                           input.shape_string());
  cached_input_ = input;
  const std::size_t batch = input.dim(0), c = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  if (h < window_ || w < window_)
    throw std::logic_error("MaxPool2D: input smaller than window");
  const std::size_t oh = (h - window_) / stride_ + 1;
  const std::size_t ow = (w - window_) / stride_ + 1;
  Tensor out({batch, c, oh, ow});
  argmax_.assign(out.size(), 0);

  const float* x = input.raw();
  float* y = out.raw();
  std::size_t oi = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = x + (b * c + ch) * h * w;
      const std::size_t plane_base = (b * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < window_; ++ky) {
            for (std::size_t kx = 0; kx < window_; ++kx) {
              const std::size_t idx =
                  (oy * stride_ + ky) * w + (ox * stride_ + kx);
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          y[oi] = best;
          argmax_[oi] = plane_base + best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  if (grad_output.size() != argmax_.size())
    throw std::logic_error("MaxPool2D::backward: gradient size mismatch");
  Tensor grad_input(cached_input_.shape());
  const float* g = grad_output.raw();
  float* gx = grad_input.raw();
  for (std::size_t i = 0; i < argmax_.size(); ++i) gx[argmax_[i]] += g[i];
  return grad_input;
}

Tensor Flatten::forward(const Tensor& input) {
  cached_shape_ = input.shape();
  if (input.rank() <= 1) return input;
  std::size_t rest = 1;
  for (std::size_t d = 1; d < input.rank(); ++d) rest *= input.dim(d);
  return input.reshaped({input.dim(0), rest});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(cached_shape_);
}

Reshape::Reshape(std::vector<std::size_t> item_shape)
    : item_shape_(std::move(item_shape)) {
  if (item_shape_.empty())
    throw std::logic_error("Reshape: empty item shape");
}

Tensor Reshape::forward(const Tensor& input) {
  if (input.rank() < 1)
    throw std::logic_error("Reshape::forward: rank-0 input");
  cached_shape_ = input.shape();
  std::vector<std::size_t> out{input.dim(0)};
  out.insert(out.end(), item_shape_.begin(), item_shape_.end());
  return input.reshaped(std::move(out));
}

Tensor Reshape::backward(const Tensor& grad_output) {
  return grad_output.reshaped(cached_shape_);
}

}  // namespace rlattack::nn
