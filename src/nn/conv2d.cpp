#include "rlattack/nn/conv2d.hpp"

#include <limits>
#include <stdexcept>

#include "rlattack/nn/init.hpp"

namespace rlattack::nn {

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               util::Rng& rng)
    : in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(pad),
      weight_({out_channels, in_channels, kernel, kernel}),
      bias_({out_channels}),
      grad_weight_({out_channels, in_channels, kernel, kernel}),
      grad_bias_({out_channels}) {
  if (kernel == 0 || stride == 0)
    throw std::logic_error("Conv2D: kernel and stride must be >= 1");
  he_uniform(weight_, in_c_ * k_ * k_, rng);
}

std::size_t Conv2D::out_extent(std::size_t in_extent) const {
  const std::size_t padded = in_extent + 2 * pad_;
  if (padded < k_)
    throw std::logic_error("Conv2D: input smaller than kernel");
  return (padded - k_) / stride_ + 1;
}

Tensor Conv2D::forward(const Tensor& input) {
  if (input.rank() != 4 || input.dim(1) != in_c_)
    throw std::logic_error("Conv2D::forward: expected [B, " +
                           std::to_string(in_c_) + ", H, W], got " +
                           input.shape_string());
  cached_input_ = input;
  const std::size_t batch = input.dim(0), h = input.dim(2), w = input.dim(3);
  const std::size_t oh = out_extent(h), ow = out_extent(w);
  Tensor out({batch, out_c_, oh, ow});

  const float* x = input.raw();
  const float* wt = weight_.raw();
  float* y = out.raw();
  const auto in_plane = h * w;
  const auto out_plane = oh * ow;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      float* yplane = y + (b * out_c_ + oc) * out_plane;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float acc = bias_[oc];
          for (std::size_t ic = 0; ic < in_c_; ++ic) {
            const float* xplane = x + (b * in_c_ + ic) * in_plane;
            const float* wrow = wt + ((oc * in_c_ + ic) * k_) * k_;
            for (std::size_t ky = 0; ky < k_; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                  static_cast<std::ptrdiff_t>(pad_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kx = 0; kx < k_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                    static_cast<std::ptrdiff_t>(pad_);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                acc += wrow[ky * k_ + kx] *
                       xplane[static_cast<std::size_t>(iy) * w +
                              static_cast<std::size_t>(ix)];
              }
            }
          }
          yplane[oy * ow + ox] = acc;
        }
      }
    }
  }
  return out;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  const std::size_t batch = cached_input_.dim(0), h = cached_input_.dim(2),
                    w = cached_input_.dim(3);
  const std::size_t oh = out_extent(h), ow = out_extent(w);
  if (grad_output.rank() != 4 || grad_output.dim(0) != batch ||
      grad_output.dim(1) != out_c_ || grad_output.dim(2) != oh ||
      grad_output.dim(3) != ow)
    throw std::logic_error("Conv2D::backward: gradient shape mismatch " +
                           grad_output.shape_string());

  Tensor grad_input({batch, in_c_, h, w});
  const float* x = cached_input_.raw();
  const float* wt = weight_.raw();
  const float* g = grad_output.raw();
  float* gx = grad_input.raw();
  float* gw = grad_weight_.raw();
  const auto in_plane = h * w;
  const auto out_plane = oh * ow;

  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      const float* gplane = g + (b * out_c_ + oc) * out_plane;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float go = gplane[oy * ow + ox];
          if (go == 0.0f) continue;
          grad_bias_[oc] += go;
          for (std::size_t ic = 0; ic < in_c_; ++ic) {
            const float* xplane = x + (b * in_c_ + ic) * in_plane;
            float* gxplane = gx + (b * in_c_ + ic) * in_plane;
            const std::size_t wbase = ((oc * in_c_ + ic) * k_) * k_;
            for (std::size_t ky = 0; ky < k_; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                  static_cast<std::ptrdiff_t>(pad_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kx = 0; kx < k_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                    static_cast<std::ptrdiff_t>(pad_);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                const std::size_t xi = static_cast<std::size_t>(iy) * w +
                                       static_cast<std::size_t>(ix);
                gw[wbase + ky * k_ + kx] += go * xplane[xi];
                gxplane[xi] += go * wt[wbase + ky * k_ + kx];
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::vector<Param> Conv2D::params() {
  return {{&weight_, &grad_weight_, "conv.weight"},
          {&bias_, &grad_bias_, "conv.bias"}};
}

MaxPool2D::MaxPool2D(std::size_t window, std::size_t stride)
    : window_(window), stride_(stride) {
  if (window == 0 || stride == 0)
    throw std::logic_error("MaxPool2D: window and stride must be >= 1");
}

Tensor MaxPool2D::forward(const Tensor& input) {
  if (input.rank() != 4)
    throw std::logic_error("MaxPool2D::forward: expected [B, C, H, W], got " +
                           input.shape_string());
  cached_input_ = input;
  const std::size_t batch = input.dim(0), c = input.dim(1), h = input.dim(2),
                    w = input.dim(3);
  if (h < window_ || w < window_)
    throw std::logic_error("MaxPool2D: input smaller than window");
  const std::size_t oh = (h - window_) / stride_ + 1;
  const std::size_t ow = (w - window_) / stride_ + 1;
  Tensor out({batch, c, oh, ow});
  argmax_.assign(out.size(), 0);

  const float* x = input.raw();
  float* y = out.raw();
  std::size_t oi = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* plane = x + (b * c + ch) * h * w;
      const std::size_t plane_base = (b * c + ch) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < window_; ++ky) {
            for (std::size_t kx = 0; kx < window_; ++kx) {
              const std::size_t idx =
                  (oy * stride_ + ky) * w + (ox * stride_ + kx);
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          y[oi] = best;
          argmax_[oi] = plane_base + best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2D::backward(const Tensor& grad_output) {
  if (grad_output.size() != argmax_.size())
    throw std::logic_error("MaxPool2D::backward: gradient size mismatch");
  Tensor grad_input(cached_input_.shape());
  const float* g = grad_output.raw();
  float* gx = grad_input.raw();
  for (std::size_t i = 0; i < argmax_.size(); ++i) gx[argmax_[i]] += g[i];
  return grad_input;
}

Tensor Flatten::forward(const Tensor& input) {
  cached_shape_ = input.shape();
  if (input.rank() <= 1) return input;
  std::size_t rest = 1;
  for (std::size_t d = 1; d < input.rank(); ++d) rest *= input.dim(d);
  return input.reshaped({input.dim(0), rest});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(cached_shape_);
}

Reshape::Reshape(std::vector<std::size_t> item_shape)
    : item_shape_(std::move(item_shape)) {
  if (item_shape_.empty())
    throw std::logic_error("Reshape: empty item shape");
}

Tensor Reshape::forward(const Tensor& input) {
  if (input.rank() < 1)
    throw std::logic_error("Reshape::forward: rank-0 input");
  cached_shape_ = input.shape();
  std::vector<std::size_t> out{input.dim(0)};
  out.insert(out.end(), item_shape_.begin(), item_shape_.end());
  return input.reshaped(std::move(out));
}

Tensor Reshape::backward(const Tensor& grad_output) {
  return grad_output.reshaped(cached_shape_);
}

}  // namespace rlattack::nn
