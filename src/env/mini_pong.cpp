#include "rlattack/env/mini_pong.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rlattack::env {

namespace {
constexpr float kBallShade = 1.0f;
constexpr float kPlayerShade = 0.8f;
constexpr float kCpuShade = 0.6f;
}  // namespace

MiniPong::MiniPong() : MiniPong(Config{}, 1) {}

MiniPong::MiniPong(Config config, std::uint64_t seed)
    : config_(config), rng_(seed), seed_(seed) {
  if (config_.width < 6 || config_.height < 6)
    throw std::logic_error("MiniPong: field too small");
  if (config_.paddle_height >= config_.height)
    throw std::logic_error("MiniPong: paddle taller than field");
}

void MiniPong::seed(std::uint64_t seed) {
  seed_ = seed;
  rng_ = util::Rng(seed);
}

void MiniPong::launch_ball(int direction) {
  ball_x_ = static_cast<double>(config_.width) / 2.0;
  ball_y_ = static_cast<double>(config_.height) / 2.0;
  ball_vx_ = direction * config_.ball_speed;
  ball_vy_ = rng_.uniform(-0.5, 0.5);
}

nn::Tensor MiniPong::reset() {
  const double mid = (static_cast<double>(config_.height) -
                      static_cast<double>(config_.paddle_height)) /
                     2.0;
  player_y_ = mid;
  cpu_y_ = mid;
  player_points_ = 0;
  cpu_points_ = 0;
  steps_ = 0;
  done_ = false;
  launch_ball(rng_.bernoulli(0.5) ? 1 : -1);
  return render();
}

StepResult MiniPong::step(std::size_t action) {
  if (done_)
    throw std::logic_error("MiniPong::step: episode finished; call reset()");
  if (action >= action_count())
    throw std::logic_error("MiniPong::step: invalid action");

  const double max_top = static_cast<double>(config_.height) -
                         static_cast<double>(config_.paddle_height);
  if (action == 1) player_y_ -= config_.player_speed;
  if (action == 2) player_y_ += config_.player_speed;
  player_y_ = std::clamp(player_y_, 0.0, max_top);

  // CPU tracks the ball centre at limited speed, only while the ball is
  // moving toward it — otherwise it drifts back to centre.
  const double cpu_target =
      ball_vx_ < 0.0
          ? ball_y_ - static_cast<double>(config_.paddle_height) / 2.0
          : max_top / 2.0;
  const double cpu_delta =
      std::clamp(cpu_target - cpu_y_, -config_.cpu_speed, config_.cpu_speed);
  cpu_y_ = std::clamp(cpu_y_ + cpu_delta, 0.0, max_top);

  ball_x_ += ball_vx_;
  ball_y_ += ball_vy_;

  // Wall bounce (top/bottom).
  const double h = static_cast<double>(config_.height);
  if (ball_y_ < 0.0) {
    ball_y_ = -ball_y_;
    ball_vy_ = -ball_vy_;
  } else if (ball_y_ > h - 1.0) {
    ball_y_ = 2.0 * (h - 1.0) - ball_y_;
    ball_vy_ = -ball_vy_;
  }

  double reward = 0.0;
  const double ph = static_cast<double>(config_.paddle_height);

  // Player paddle plane is x = width - 1; CPU plane is x = 0.
  const double player_plane = static_cast<double>(config_.width) - 1.0;
  if (ball_vx_ > 0.0 && ball_x_ >= player_plane) {
    if (ball_y_ >= player_y_ - 0.5 && ball_y_ <= player_y_ + ph - 0.5) {
      ball_x_ = 2.0 * player_plane - ball_x_;
      ball_vx_ = -ball_vx_;
      const double rel =
          (ball_y_ - (player_y_ + ph / 2.0 - 0.5)) / (ph / 2.0);
      ball_vy_ += config_.english * rel;
      ball_vy_ = std::clamp(ball_vy_, -1.2, 1.2);
    } else {
      ++cpu_points_;
      reward -= 1.0;
      launch_ball(-1);
    }
  } else if (ball_vx_ < 0.0 && ball_x_ <= 0.0) {
    if (ball_y_ >= cpu_y_ - 0.5 && ball_y_ <= cpu_y_ + ph - 0.5) {
      ball_x_ = -ball_x_;
      ball_vx_ = -ball_vx_;
      const double rel = (ball_y_ - (cpu_y_ + ph / 2.0 - 0.5)) / (ph / 2.0);
      ball_vy_ += config_.english * rel;
      ball_vy_ = std::clamp(ball_vy_, -1.2, 1.2);
    } else {
      ++player_points_;
      reward += 1.0;
      launch_ball(1);
    }
  }

  // Dense shaping: reward the player for keeping the paddle centred on the
  // ball row (small relative to point rewards; see Config).
  if (config_.shaping_weight > 0.0) {
    const double centre = player_y_ + ph / 2.0 - 0.5;
    const double dist = std::abs(centre - ball_y_) / h;
    reward += config_.shaping_weight * (1.0 - 2.0 * dist);
  }

  ++steps_;
  done_ = player_points_ >= config_.points_to_win ||
          cpu_points_ >= config_.points_to_win || steps_ >= config_.max_steps;

  StepResult result;
  result.observation = render();
  result.reward = reward;
  result.done = done_;
  return result;
}

nn::Tensor MiniPong::render() const {
  const std::size_t w = config_.width, h = config_.height;
  nn::Tensor frame({1, h, w});
  auto put = [&](double yf, std::size_t x, float shade) {
    const auto y = static_cast<std::ptrdiff_t>(std::lround(yf));
    if (y >= 0 && y < static_cast<std::ptrdiff_t>(h))
      frame[static_cast<std::size_t>(y) * w + x] =
          std::max(frame[static_cast<std::size_t>(y) * w + x], shade);
  };
  for (std::size_t i = 0; i < config_.paddle_height; ++i) {
    put(cpu_y_ + static_cast<double>(i), 0, kCpuShade);
    put(player_y_ + static_cast<double>(i), w - 1, kPlayerShade);
  }
  const auto bx = static_cast<std::ptrdiff_t>(std::lround(ball_x_));
  if (bx >= 0 && bx < static_cast<std::ptrdiff_t>(w))
    put(ball_y_, static_cast<std::size_t>(bx), kBallShade);
  return frame;
}

std::unique_ptr<Environment> MiniPong::clone() const {
  return std::make_unique<MiniPong>(config_, seed_);
}

}  // namespace rlattack::env
