#include "rlattack/env/frame_stack.hpp"

#include <algorithm>
#include <stdexcept>

namespace rlattack::env {

FrameStack::FrameStack(EnvPtr inner, std::size_t k)
    : inner_(std::move(inner)), k_(k) {
  if (!inner_) throw std::logic_error("FrameStack: null environment");
  if (k_ == 0) throw std::logic_error("FrameStack: k must be >= 1");
}

std::vector<std::size_t> FrameStack::observation_shape() const {
  auto shape = inner_->observation_shape();
  shape[0] *= k_;  // stack along channels (or along the single vector dim)
  return shape;
}

nn::Tensor FrameStack::stacked() const {
  auto shape = observation_shape();
  nn::Tensor out(shape);
  std::size_t offset = 0;
  for (const auto& frame : frames_) {
    auto src = frame.data();
    std::copy(src.begin(), src.end(), out.data().begin() + offset);
    offset += frame.size();
  }
  return out;
}

nn::Tensor FrameStack::with_current_frame(const nn::Tensor& frame) const {
  if (frames_.empty())
    throw std::logic_error("FrameStack::with_current_frame: call reset first");
  if (frame.size() != frames_.back().size())
    throw std::logic_error(
        "FrameStack::with_current_frame: frame size mismatch");
  nn::Tensor out = stacked();
  auto src = frame.data();
  const std::size_t offset = out.size() - frame.size();
  std::copy(src.begin(), src.end(), out.data().begin() + offset);
  return out;
}

nn::Tensor FrameStack::reset() {
  nn::Tensor first = inner_->reset();
  frames_.clear();
  for (std::size_t i = 0; i < k_; ++i) frames_.push_back(first);
  return stacked();
}

StepResult FrameStack::step(std::size_t action) {
  StepResult inner_result = inner_->step(action);
  frames_.pop_front();
  frames_.push_back(std::move(inner_result.observation));
  StepResult result;
  result.observation = stacked();
  result.reward = inner_result.reward;
  result.done = inner_result.done;
  return result;
}

}  // namespace rlattack::env
