#include "rlattack/env/factory.hpp"

#include <stdexcept>

#include "rlattack/env/cartpole.hpp"
#include "rlattack/env/frame_stack.hpp"
#include "rlattack/env/mini_invaders.hpp"
#include "rlattack/env/mini_pong.hpp"

namespace rlattack::env {

Game parse_game(const std::string& name) {
  if (name == "cartpole") return Game::kCartPole;
  if (name == "mini_pong" || name == "pong") return Game::kMiniPong;
  if (name == "mini_invaders" || name == "invaders")
    return Game::kMiniInvaders;
  throw std::invalid_argument("unknown game: " + name);
}

std::string game_name(Game game) {
  switch (game) {
    case Game::kCartPole: return "cartpole";
    case Game::kMiniPong: return "mini_pong";
    case Game::kMiniInvaders: return "mini_invaders";
  }
  throw std::logic_error("game_name: invalid enum");
}

EnvPtr make_environment(Game game, std::uint64_t seed) {
  switch (game) {
    case Game::kCartPole: return std::make_unique<CartPole>(CartPole::Config{}, seed);
    case Game::kMiniPong: return std::make_unique<MiniPong>(MiniPong::Config{}, seed);
    case Game::kMiniInvaders:
      return std::make_unique<MiniInvaders>(MiniInvaders::Config{}, seed);
  }
  throw std::logic_error("make_environment: invalid enum");
}

std::size_t agent_frame_stack(Game game) {
  return game == Game::kCartPole ? 1 : 2;
}

EnvPtr make_agent_environment(Game game, std::uint64_t seed) {
  EnvPtr raw = make_environment(game, seed);
  const std::size_t k = agent_frame_stack(game);
  if (k == 1) return raw;
  return std::make_unique<FrameStack>(std::move(raw), k);
}

}  // namespace rlattack::env
