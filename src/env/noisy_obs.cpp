#include "rlattack/env/noisy_obs.hpp"

#include <algorithm>
#include <stdexcept>

namespace rlattack::env {

NoisyObservationWrapper::NoisyObservationWrapper(EnvPtr inner, float stddev,
                                                 std::uint64_t seed)
    : inner_(std::move(inner)), stddev_(stddev), rng_(seed), seed_(seed) {
  if (!inner_)
    throw std::logic_error("NoisyObservationWrapper: null environment");
  if (stddev_ < 0.0f)
    throw std::logic_error("NoisyObservationWrapper: negative stddev");
}

void NoisyObservationWrapper::seed(std::uint64_t seed) {
  seed_ = seed;
  rng_ = util::Rng(seed ^ 0xA5A5A5A5u);
  inner_->seed(seed);
}

nn::Tensor NoisyObservationWrapper::corrupt(nn::Tensor obs) {
  const ObservationBounds bounds = inner_->observation_bounds();
  for (float& x : obs.data())
    x = std::clamp(x + rng_.normal_f(0.0f, stddev_), bounds.low, bounds.high);
  return obs;
}

nn::Tensor NoisyObservationWrapper::reset() { return corrupt(inner_->reset()); }

StepResult NoisyObservationWrapper::step(std::size_t action) {
  StepResult result = inner_->step(action);
  result.observation = corrupt(std::move(result.observation));
  return result;
}

std::unique_ptr<Environment> NoisyObservationWrapper::clone() const {
  return std::make_unique<NoisyObservationWrapper>(inner_->clone(), stddev_,
                                                   seed_);
}

}  // namespace rlattack::env
