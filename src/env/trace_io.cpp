#include "rlattack/env/trace_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace rlattack::env {

namespace {
constexpr char kMagic[4] = {'R', 'L', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
bool write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
  return static_cast<bool>(out);
}

template <typename T>
bool read_pod(std::ifstream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  return static_cast<bool>(in);
}
}  // namespace

bool save_episodes(const std::vector<Episode>& episodes,
                   const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(kMagic, sizeof(kMagic));
  if (!write_pod(out, kVersion)) return false;
  if (!write_pod(out, static_cast<std::uint64_t>(episodes.size())))
    return false;
  for (const Episode& episode : episodes) {
    if (!write_pod(out, static_cast<std::uint64_t>(episode.steps.size())))
      return false;
    for (const Transition& step : episode.steps) {
      if (!write_pod(out, static_cast<std::uint64_t>(step.observation.size())))
        return false;
      auto data = step.observation.data();
      out.write(reinterpret_cast<const char*>(data.data()),
                static_cast<std::streamsize>(data.size() * sizeof(float)));
      if (!write_pod(out, static_cast<std::uint64_t>(step.action)))
        return false;
      if (!write_pod(out, step.reward)) return false;
      const std::uint8_t done = step.done ? 1 : 0;
      if (!write_pod(out, done)) return false;
    }
  }
  return static_cast<bool>(out);
}

std::optional<std::vector<Episode>> load_episodes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    return std::nullopt;
  std::uint32_t version = 0;
  if (!read_pod(in, version) || version != kVersion) return std::nullopt;
  std::uint64_t episode_count = 0;
  if (!read_pod(in, episode_count)) return std::nullopt;

  std::vector<Episode> episodes;
  episodes.reserve(episode_count);
  for (std::uint64_t e = 0; e < episode_count; ++e) {
    std::uint64_t steps = 0;
    if (!read_pod(in, steps)) return std::nullopt;
    Episode episode;
    episode.steps.reserve(steps);
    for (std::uint64_t t = 0; t < steps; ++t) {
      std::uint64_t obs_size = 0;
      if (!read_pod(in, obs_size)) return std::nullopt;
      if (obs_size == 0 || obs_size > (1ull << 24)) return std::nullopt;
      std::vector<float> data(obs_size);
      in.read(reinterpret_cast<char*>(data.data()),
              static_cast<std::streamsize>(obs_size * sizeof(float)));
      if (!in) return std::nullopt;
      Transition step;
      step.observation =
          nn::Tensor({static_cast<std::size_t>(obs_size)}, std::move(data));
      std::uint64_t action = 0;
      if (!read_pod(in, action)) return std::nullopt;
      step.action = static_cast<std::size_t>(action);
      if (!read_pod(in, step.reward)) return std::nullopt;
      std::uint8_t done = 0;
      if (!read_pod(in, done)) return std::nullopt;
      step.done = done != 0;
      episode.steps.push_back(std::move(step));
    }
    episodes.push_back(std::move(episode));
  }
  return episodes;
}

}  // namespace rlattack::env
