#include "rlattack/env/cartpole.hpp"

#include <cmath>
#include <stdexcept>

namespace rlattack::env {

CartPole::CartPole() : CartPole(Config{}, 1) {}

CartPole::CartPole(Config config, std::uint64_t seed)
    : config_(config), rng_(seed), seed_(seed) {}

void CartPole::seed(std::uint64_t seed) {
  seed_ = seed;
  rng_ = util::Rng(seed);
}

nn::Tensor CartPole::observation() const {
  nn::Tensor obs({4});
  obs[0] = static_cast<float>(x_);
  obs[1] = static_cast<float>(x_dot_);
  obs[2] = static_cast<float>(theta_);
  obs[3] = static_cast<float>(theta_dot_);
  return obs;
}

nn::Tensor CartPole::reset() {
  x_ = rng_.uniform(-0.05, 0.05);
  x_dot_ = rng_.uniform(-0.05, 0.05);
  theta_ = rng_.uniform(-0.05, 0.05);
  theta_dot_ = rng_.uniform(-0.05, 0.05);
  steps_ = 0;
  done_ = false;
  return observation();
}

StepResult CartPole::step(std::size_t action) {
  if (done_)
    throw std::logic_error("CartPole::step: episode finished; call reset()");
  if (action >= action_count())
    throw std::logic_error("CartPole::step: invalid action");

  const double force = action == 1 ? config_.force_mag : -config_.force_mag;
  const double cos_theta = std::cos(theta_);
  const double sin_theta = std::sin(theta_);
  const double total_mass = config_.mass_cart + config_.mass_pole;
  const double pole_mass_length =
      config_.mass_pole * config_.half_pole_length;

  const double temp =
      (force + pole_mass_length * theta_dot_ * theta_dot_ * sin_theta) /
      total_mass;
  const double theta_acc =
      (config_.gravity * sin_theta - cos_theta * temp) /
      (config_.half_pole_length *
       (4.0 / 3.0 - config_.mass_pole * cos_theta * cos_theta / total_mass));
  const double x_acc =
      temp - pole_mass_length * theta_acc * cos_theta / total_mass;

  // Semi-implicit is what Gym calls "euler": update positions with old
  // velocities first.
  x_ += config_.tau * x_dot_;
  x_dot_ += config_.tau * x_acc;
  theta_ += config_.tau * theta_dot_;
  theta_dot_ += config_.tau * theta_acc;
  ++steps_;

  const bool failed = x_ < -config_.x_threshold || x_ > config_.x_threshold ||
                      theta_ < -config_.theta_threshold_rad ||
                      theta_ > config_.theta_threshold_rad;
  const bool timeout = steps_ >= config_.max_steps;
  done_ = failed || timeout;

  StepResult result;
  result.observation = observation();
  result.reward = 1.0;  // Gym CartPole grants +1 for every step taken.
  result.done = done_;
  return result;
}

std::unique_ptr<Environment> CartPole::clone() const {
  return std::make_unique<CartPole>(config_, seed_);
}

}  // namespace rlattack::env
