#include "rlattack/env/mini_invaders.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace rlattack::env {

namespace {
constexpr float kAlienShade = 1.0f;
constexpr float kBulletShade = 0.9f;
constexpr float kPlayerShade = 0.8f;
constexpr float kBombShade = 0.7f;
constexpr float kShieldShade = 0.5f;
}  // namespace

MiniInvaders::MiniInvaders() : MiniInvaders(Config{}, 1) {}

MiniInvaders::MiniInvaders(Config config, std::uint64_t seed)
    : config_(config), rng_(seed), seed_(seed) {
  if (config_.width < 8 || config_.height < 10)
    throw std::logic_error("MiniInvaders: field too small");
  const std::size_t wave_width =
      (config_.alien_cols - 1) * config_.alien_spacing + 1;
  if (wave_width + 2 > config_.width)
    throw std::logic_error("MiniInvaders: alien wave wider than field");
}

void MiniInvaders::seed(std::uint64_t seed) {
  seed_ = seed;
  rng_ = util::Rng(seed);
}

std::ptrdiff_t MiniInvaders::alien_x(std::size_t c) const {
  return wave_x_ + static_cast<std::ptrdiff_t>(c * config_.alien_spacing);
}

std::ptrdiff_t MiniInvaders::alien_y(std::size_t r) const {
  return wave_y_ + static_cast<std::ptrdiff_t>(r);
}

std::size_t MiniInvaders::aliens_alive() const {
  return static_cast<std::size_t>(
      std::count(alive_.begin(), alive_.end(), true));
}

nn::Tensor MiniInvaders::reset() {
  alive_.assign(config_.alien_rows * config_.alien_cols, true);
  wave_x_ = 1;
  wave_y_ = 1;
  march_dir_ = 1;
  since_march_ = 0;
  player_x_ = config_.width / 2;
  bullet_active_ = false;
  bombs_.clear();
  steps_ = 0;
  done_ = false;

  shield_y_ = config_.height - 3;
  shield_x_.clear();
  shield_hp_.clear();
  for (std::size_t i = 0; i < config_.shield_count; ++i) {
    // Evenly spread shields across the row.
    const std::size_t x =
        (config_.width * (i + 1)) / (config_.shield_count + 1);
    shield_x_.push_back(x);
    shield_hp_.push_back(config_.shield_hp);
  }
  return render();
}

bool MiniInvaders::alien_at(std::ptrdiff_t x, std::ptrdiff_t y, std::size_t& r,
                            std::size_t& c) const {
  for (std::size_t rr = 0; rr < config_.alien_rows; ++rr) {
    if (alien_y(rr) != y) continue;
    for (std::size_t cc = 0; cc < config_.alien_cols; ++cc) {
      if (!alive_[rr * config_.alien_cols + cc]) continue;
      if (alien_x(cc) == x) {
        r = rr;
        c = cc;
        return true;
      }
    }
  }
  return false;
}

void MiniInvaders::march_aliens() {
  // Find the live extent of the wave.
  std::ptrdiff_t min_x = static_cast<std::ptrdiff_t>(config_.width);
  std::ptrdiff_t max_x = -1;
  for (std::size_t c = 0; c < config_.alien_cols; ++c) {
    bool column_alive = false;
    for (std::size_t r = 0; r < config_.alien_rows; ++r)
      if (alive_[r * config_.alien_cols + c]) column_alive = true;
    if (!column_alive) continue;
    min_x = std::min(min_x, alien_x(c));
    max_x = std::max(max_x, alien_x(c));
  }
  if (max_x < 0) return;  // no aliens left

  const auto width = static_cast<std::ptrdiff_t>(config_.width);
  if ((march_dir_ > 0 && max_x + 1 >= width - 1) ||
      (march_dir_ < 0 && min_x - 1 <= 0)) {
    march_dir_ = -march_dir_;
    ++wave_y_;
  } else {
    wave_x_ += march_dir_;
  }
}

StepResult MiniInvaders::step(std::size_t action) {
  if (done_)
    throw std::logic_error(
        "MiniInvaders::step: episode finished; call reset()");
  if (action >= action_count())
    throw std::logic_error("MiniInvaders::step: invalid action");

  double reward = 0.0;

  // Player movement / firing.
  if (action == 1 && player_x_ > 0) --player_x_;
  if (action == 2 && player_x_ + 1 < config_.width) ++player_x_;
  if (action == 3 && !bullet_active_) {
    bullet_active_ = true;
    bullet_x_ = static_cast<std::ptrdiff_t>(player_x_);
    bullet_y_ = static_cast<std::ptrdiff_t>(config_.height) - 2;
  }

  // Bullet flight (2 px/step keeps rallies quick on a 16-row field).
  if (bullet_active_) {
    for (int sub = 0; sub < 2 && bullet_active_; ++sub) {
      --bullet_y_;
      if (bullet_y_ < 0) {
        bullet_active_ = false;
        break;
      }
      // Shield absorbs friendly fire too.
      for (std::size_t i = 0; i < shield_x_.size(); ++i) {
        if (shield_hp_[i] > 0 &&
            bullet_y_ == static_cast<std::ptrdiff_t>(shield_y_) &&
            bullet_x_ == static_cast<std::ptrdiff_t>(shield_x_[i])) {
          --shield_hp_[i];
          bullet_active_ = false;
        }
      }
      if (!bullet_active_) break;
      std::size_t r, c;
      if (alien_at(bullet_x_, bullet_y_, r, c)) {
        alive_[r * config_.alien_cols + c] = false;
        bullet_active_ = false;
        reward += 1.0;
      }
    }
  }

  // Alien march; the cadence quickens as the wave thins out.
  const std::size_t total = config_.alien_rows * config_.alien_cols;
  const std::size_t alive_now = aliens_alive();
  const std::size_t interval = std::max<std::size_t>(
      1, config_.march_interval * std::max<std::size_t>(alive_now, 1) / total);
  if (++since_march_ >= interval) {
    since_march_ = 0;
    march_aliens();
  }

  // Random (seeded) bombing from a living alien.
  if (alive_now > 0 &&
      rng_.bernoulli(1.0 / static_cast<double>(config_.bomb_interval))) {
    std::vector<std::size_t> shooters;
    for (std::size_t c = 0; c < config_.alien_cols; ++c) {
      // The lowest living alien in each column may shoot.
      for (std::size_t r = config_.alien_rows; r-- > 0;) {
        if (alive_[r * config_.alien_cols + c]) {
          shooters.push_back(r * config_.alien_cols + c);
          break;
        }
      }
    }
    if (!shooters.empty()) {
      std::size_t pick;
      if (rng_.bernoulli(config_.aimed_bomb_fraction)) {
        // Aimed bomb: the living column closest to the player shoots.
        pick = shooters[0];
        std::ptrdiff_t best_dist = std::numeric_limits<std::ptrdiff_t>::max();
        for (std::size_t s : shooters) {
          const std::size_t c = s % config_.alien_cols;
          const std::ptrdiff_t dist =
              std::abs(alien_x(c) - static_cast<std::ptrdiff_t>(player_x_));
          if (dist < best_dist) {
            best_dist = dist;
            pick = s;
          }
        }
      } else {
        pick = shooters[rng_.uniform_int(shooters.size())];
      }
      const std::size_t r = pick / config_.alien_cols;
      const std::size_t c = pick % config_.alien_cols;
      bombs_.push_back({alien_x(c), alien_y(r) + 1});
    }
  }

  // Bomb flight.
  bool player_hit = false;
  for (auto& bomb : bombs_) {
    ++bomb.y;
    for (std::size_t i = 0; i < shield_x_.size(); ++i) {
      if (shield_hp_[i] > 0 &&
          bomb.y == static_cast<std::ptrdiff_t>(shield_y_) &&
          bomb.x == static_cast<std::ptrdiff_t>(shield_x_[i])) {
        --shield_hp_[i];
        bomb.y = static_cast<std::ptrdiff_t>(config_.height);  // consume bomb
      }
    }
    if (bomb.y == static_cast<std::ptrdiff_t>(config_.height) - 1 &&
        bomb.x == static_cast<std::ptrdiff_t>(player_x_))
      player_hit = true;
  }
  std::erase_if(bombs_, [&](const Bomb& b) {
    return b.y >= static_cast<std::ptrdiff_t>(config_.height);
  });

  // Danger shaping: standing under an incoming bomb is immediately bad.
  if (config_.danger_shaping > 0.0) {
    for (const auto& bomb : bombs_) {
      if (bomb.x == static_cast<std::ptrdiff_t>(player_x_) &&
          bomb.y >= static_cast<std::ptrdiff_t>(config_.height) - 5)
        reward -= config_.danger_shaping;
    }
  }

  ++steps_;
  const bool cleared = aliens_alive() == 0;
  bool invaded = false;
  for (std::size_t r = 0; r < config_.alien_rows; ++r)
    for (std::size_t c = 0; c < config_.alien_cols; ++c)
      if (alive_[r * config_.alien_cols + c] &&
          alien_y(r) >= static_cast<std::ptrdiff_t>(shield_y_))
        invaded = true;
  if (cleared) reward += config_.clear_bonus;
  if (player_hit) reward -= config_.death_penalty;
  done_ = cleared || invaded || player_hit || steps_ >= config_.max_steps;

  StepResult result;
  result.observation = render();
  result.reward = reward;
  result.done = done_;
  return result;
}

nn::Tensor MiniInvaders::render() const {
  const std::size_t w = config_.width, h = config_.height;
  nn::Tensor frame({1, h, w});
  auto put = [&](std::ptrdiff_t x, std::ptrdiff_t y, float shade) {
    if (x < 0 || y < 0 || x >= static_cast<std::ptrdiff_t>(w) ||
        y >= static_cast<std::ptrdiff_t>(h))
      return;
    float& px = frame[static_cast<std::size_t>(y) * w +
                      static_cast<std::size_t>(x)];
    px = std::max(px, shade);
  };
  for (std::size_t r = 0; r < config_.alien_rows; ++r)
    for (std::size_t c = 0; c < config_.alien_cols; ++c)
      if (alive_[r * config_.alien_cols + c])
        put(alien_x(c), alien_y(r), kAlienShade);
  for (std::size_t i = 0; i < shield_x_.size(); ++i)
    if (shield_hp_[i] > 0)
      put(static_cast<std::ptrdiff_t>(shield_x_[i]),
          static_cast<std::ptrdiff_t>(shield_y_),
          kShieldShade *
              static_cast<float>(shield_hp_[i]) /
              static_cast<float>(config_.shield_hp) * 0.5f +
              kShieldShade * 0.5f);
  put(static_cast<std::ptrdiff_t>(player_x_),
      static_cast<std::ptrdiff_t>(h) - 1, kPlayerShade);
  if (bullet_active_) put(bullet_x_, bullet_y_, kBulletShade);
  for (const auto& bomb : bombs_) put(bomb.x, bomb.y, kBombShade);
  return frame;
}

std::unique_ptr<Environment> MiniInvaders::clone() const {
  return std::make_unique<MiniInvaders>(config_, seed_);
}

}  // namespace rlattack::env
