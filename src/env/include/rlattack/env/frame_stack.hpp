// FrameStack: concatenates the last k observations so reactive policies can
// infer motion (standard Atari preprocessing; the paper's "frame stacking"
// in Section 4.1). Image observations [C, H, W] stack to [k*C, H, W];
// vector observations [F] stack to [k*F], newest last.
//
// Under the threat model (Section 4.2) an attacker perturbs only the
// *current* frame; previously stacked frames are history and immutable.
// The attack harness therefore perturbs observations before they enter this
// wrapper-equivalent stacking done on the agent side.
#pragma once

#include <deque>

#include "rlattack/env/environment.hpp"

namespace rlattack::env {

class FrameStack final : public Environment {
 public:
  FrameStack(EnvPtr inner, std::size_t k);

  void seed(std::uint64_t seed) override { inner_->seed(seed); }
  nn::Tensor reset() override;
  StepResult step(std::size_t action) override;
  std::size_t action_count() const override { return inner_->action_count(); }
  std::vector<std::size_t> observation_shape() const override;
  ObservationBounds observation_bounds() const override {
    return inner_->observation_bounds();
  }
  std::string name() const override {
    return inner_->name() + "_stack" + std::to_string(k_);
  }
  std::unique_ptr<Environment> clone() const override {
    return std::make_unique<FrameStack>(inner_->clone(), k_);
  }

  std::size_t stack_depth() const noexcept { return k_; }
  Environment& inner() noexcept { return *inner_; }

  /// Replaces the newest frame in the stack and returns the re-stacked
  /// observation; lets the attack harness perturb only s_t while keeping
  /// the stacked history clean, as the threat model requires.
  nn::Tensor with_current_frame(const nn::Tensor& frame) const;

 private:
  nn::Tensor stacked() const;

  EnvPtr inner_;
  std::size_t k_;
  std::deque<nn::Tensor> frames_;
};

}  // namespace rlattack::env
