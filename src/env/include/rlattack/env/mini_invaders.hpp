// MiniInvaders: the Atari Space Invaders substitute (see DESIGN.md).
//
// A grid of aliens marches across a small raster, descending at each wall
// hit and accelerating as it thins out. The player ship slides along the
// bottom row and fires one bullet at a time; aliens drop bombs at random
// (seeded) intervals, and destructible shields absorb fire from both sides.
// Compared with MiniPong the interaction is longer-horizon and more
// stochastic, preserving the property the paper observes: Space Invaders is
// harder to approximate with a seq2seq model and needs larger perturbation
// budgets to attack.
//
// Reward: +1 per alien destroyed (clearing the wave ends the episode with a
// +5 bonus). The episode ends when the player is hit, aliens reach the
// shield row, the wave is cleared, or `max_steps` elapse.
#pragma once

#include "rlattack/env/environment.hpp"
#include "rlattack/util/rng.hpp"

namespace rlattack::env {

class MiniInvaders final : public Environment {
 public:
  struct Config {
    std::size_t width = 16;
    std::size_t height = 16;
    std::size_t alien_rows = 3;
    std::size_t alien_cols = 5;
    std::size_t alien_spacing = 2;   ///< horizontal pixels per alien slot
    std::size_t march_interval = 6;  ///< steps between marches at full wave
    std::size_t bomb_interval = 14;  ///< mean steps between alien bombs
    /// Fraction of bombs dropped by the living column nearest the player
    /// (the rest come from a random column). Punishes stationary play so
    /// "park and fire" is not a dominant strategy.
    double aimed_bomb_fraction = 0.35;
    std::size_t shield_count = 3;
    std::size_t shield_hp = 3;
    std::size_t max_steps = 600;
    double clear_bonus = 5.0;
    /// Negative reward on player death; gives the value function a crisp
    /// dodge signal (dying early already forfeits future kills, but that
    /// signal alone is too diffuse for CPU-scale training budgets).
    double death_penalty = 2.0;
    /// Dense shaping: small negative reward while a bomb is in the
    /// player's column within a few rows overhead. Gives CPU-scale
    /// on-policy learners an immediate dodge gradient (mirrors MiniPong's
    /// tracking shaping; orders of magnitude below the kill rewards).
    double danger_shaping = 0.05;
  };

  MiniInvaders();
  explicit MiniInvaders(Config config, std::uint64_t seed = 1);

  void seed(std::uint64_t seed) override;
  nn::Tensor reset() override;
  StepResult step(std::size_t action) override;
  std::size_t action_count() const override { return 4; }  // noop/left/right/fire
  std::vector<std::size_t> observation_shape() const override {
    return {1, config_.height, config_.width};
  }
  ObservationBounds observation_bounds() const override {
    return {0.0f, 1.0f};
  }
  std::string name() const override { return "mini_invaders"; }
  std::unique_ptr<Environment> clone() const override;

  const Config& config() const noexcept { return config_; }
  std::size_t aliens_alive() const;

 private:
  nn::Tensor render() const;
  /// Screen x of alien column c; may be negative mid-march at the left edge.
  std::ptrdiff_t alien_x(std::size_t c) const;
  std::ptrdiff_t alien_y(std::size_t r) const;
  void march_aliens();
  bool alien_at(std::ptrdiff_t x, std::ptrdiff_t y, std::size_t& r,
                std::size_t& c) const;

  Config config_;
  util::Rng rng_;
  std::uint64_t seed_;

  std::vector<bool> alive_;        // [rows * cols]
  std::ptrdiff_t wave_x_ = 0;      // left edge of the alien block
  std::ptrdiff_t wave_y_ = 0;      // top row of the alien block
  int march_dir_ = 1;
  std::size_t since_march_ = 0;
  std::size_t player_x_ = 0;
  bool bullet_active_ = false;
  std::ptrdiff_t bullet_x_ = 0, bullet_y_ = 0;
  struct Bomb {
    std::ptrdiff_t x, y;
  };
  std::vector<Bomb> bombs_;
  std::vector<std::size_t> shield_hp_;  // one entry per shield block pixel-column
  std::vector<std::size_t> shield_x_;
  std::size_t shield_y_ = 0;
  std::size_t steps_ = 0;
  bool done_ = true;
};

}  // namespace rlattack::env
