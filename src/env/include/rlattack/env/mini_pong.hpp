// MiniPong: the Atari Pong substitute (see DESIGN.md substitution table).
//
// A player paddle (right edge) rallies a ball against a speed-limited CPU
// paddle (left edge) on a small grayscale raster. Dynamics are continuous
// (sub-pixel ball position/velocity, paddle "english") and only the render
// is quantised, so the observation stream behaves like cropped Atari frames:
// the agent must infer motion from stacked frames.
//
// Rewards mirror Atari Pong: +1 when the ball passes the CPU, -1 when it
// passes the player; episode ends when either side reaches
// `points_to_win` or after `max_steps`.
#pragma once

#include "rlattack/env/environment.hpp"
#include "rlattack/util/rng.hpp"

namespace rlattack::env {

class MiniPong final : public Environment {
 public:
  struct Config {
    std::size_t width = 16;
    std::size_t height = 16;
    std::size_t paddle_height = 4;
    std::size_t points_to_win = 3;
    std::size_t max_steps = 400;
    double ball_speed = 0.9;   ///< pixels per step along x
    double player_speed = 1.0;
    double cpu_speed = 0.55;   ///< < ball_speed: the CPU is beatable
    double english = 0.35;     ///< vy change per unit of paddle-relative hit offset
    /// Tiny dense shaping term (paddle-tracks-ball) that makes the sparse
    /// point reward learnable in CPU-scale training budgets. Contributes
    /// ~0.02/step, orders of magnitude below the +/-1 point rewards that
    /// dominate the episode score.
    double shaping_weight = 0.02;
  };

  MiniPong();
  explicit MiniPong(Config config, std::uint64_t seed = 1);

  void seed(std::uint64_t seed) override;
  nn::Tensor reset() override;
  StepResult step(std::size_t action) override;
  std::size_t action_count() const override { return 3; }  // stay/up/down
  std::vector<std::size_t> observation_shape() const override {
    return {1, config_.height, config_.width};
  }
  ObservationBounds observation_bounds() const override {
    return {0.0f, 1.0f};
  }
  std::string name() const override { return "mini_pong"; }
  std::unique_ptr<Environment> clone() const override;

  const Config& config() const noexcept { return config_; }
  /// Current score as (player points, cpu points); for tests.
  std::pair<std::size_t, std::size_t> score() const {
    return {player_points_, cpu_points_};
  }

 private:
  nn::Tensor render() const;
  void launch_ball(int direction);

  Config config_;
  util::Rng rng_;
  std::uint64_t seed_;
  double player_y_ = 0.0;  // paddle top, continuous
  double cpu_y_ = 0.0;
  double ball_x_ = 0.0, ball_y_ = 0.0;
  double ball_vx_ = 0.0, ball_vy_ = 0.0;
  std::size_t player_points_ = 0, cpu_points_ = 0;
  std::size_t steps_ = 0;
  bool done_ = true;
};

}  // namespace rlattack::env
