// CartPole with the canonical Barto–Sutton–Anderson dynamics, matching the
// constants of OpenAI Gym's CartPole-v0 (the paper's first target game).
// Observation: [x, x_dot, theta, theta_dot]. Actions: {push left, push
// right}. Reward: +1 per surviving step; episode ends when the pole tips
// past 12 degrees, the cart leaves +/-2.4, or max_steps elapse.
#pragma once

#include "rlattack/env/environment.hpp"
#include "rlattack/util/rng.hpp"

namespace rlattack::env {

class CartPole final : public Environment {
 public:
  struct Config {
    std::size_t max_steps = 200;  ///< CartPole-v0 horizon
    double force_mag = 10.0;
    double gravity = 9.8;
    double mass_cart = 1.0;
    double mass_pole = 0.1;
    double half_pole_length = 0.5;
    double tau = 0.02;  ///< integration timestep (s)
    double x_threshold = 2.4;
    double theta_threshold_rad = 12.0 * 2.0 * 3.14159265358979323846 / 360.0;
  };

  CartPole();
  explicit CartPole(Config config, std::uint64_t seed = 1);

  void seed(std::uint64_t seed) override;
  nn::Tensor reset() override;
  StepResult step(std::size_t action) override;
  std::size_t action_count() const override { return 2; }
  std::vector<std::size_t> observation_shape() const override { return {4}; }
  ObservationBounds observation_bounds() const override {
    // Positions/angles are bounded by the termination thresholds but
    // velocities are unbounded; use a wide box so attacks are unclipped,
    // as with Gym's float32 box space.
    return {-1e9f, 1e9f};
  }
  std::string name() const override { return "cartpole"; }
  std::unique_ptr<Environment> clone() const override;

  const Config& config() const noexcept { return config_; }

 private:
  nn::Tensor observation() const;

  Config config_;
  util::Rng rng_;
  std::uint64_t seed_;
  double x_ = 0.0, x_dot_ = 0.0, theta_ = 0.0, theta_dot_ = 0.0;
  std::size_t steps_ = 0;
  bool done_ = true;
};

}  // namespace rlattack::env
