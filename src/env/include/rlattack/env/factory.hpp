// Name-based environment construction, shared by examples, tests and bench
// binaries: "cartpole", "mini_pong", "mini_invaders".
#pragma once

#include <string>

#include "rlattack/env/environment.hpp"

namespace rlattack::env {

/// Game identifiers matching the paper's three targets.
enum class Game { kCartPole, kMiniPong, kMiniInvaders };

/// Parses a game name; throws std::invalid_argument on unknown names.
Game parse_game(const std::string& name);

/// The canonical display name ("cartpole", "mini_pong", "mini_invaders").
std::string game_name(Game game);

/// Builds the raw (unstacked) environment with default configuration.
EnvPtr make_environment(Game game, std::uint64_t seed);

/// Builds the environment the agents actually consume: image games are
/// wrapped in a 2-frame FrameStack so motion is observable; CartPole's
/// state already contains velocities and stays unwrapped.
EnvPtr make_agent_environment(Game game, std::uint64_t seed);

/// Frame-stack depth used by make_agent_environment for this game.
std::size_t agent_frame_stack(Game game);

}  // namespace rlattack::env
