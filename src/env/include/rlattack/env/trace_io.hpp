// Episode-trace serialization: lets the attacker's observation phase run in
// the field (record traces) and the approximator training run offline —
// the workflow split the paper's threat model implies.
//
// Format (little-endian binary):
//   magic "RLTR" | u32 version | u64 episode_count |
//   per episode: u64 step_count |
//     per step: u64 obs_size | f32 obs... | u64 action | f64 reward |
//               u8 done
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "rlattack/env/environment.hpp"

namespace rlattack::env {

/// Writes episode traces to `path`. Returns false on I/O failure.
bool save_episodes(const std::vector<Episode>& episodes,
                   const std::string& path);

/// Loads traces written by save_episodes. Returns std::nullopt on I/O or
/// format errors.
std::optional<std::vector<Episode>> load_episodes(const std::string& path);

}  // namespace rlattack::env
