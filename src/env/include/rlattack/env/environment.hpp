// Environment abstraction: discrete-action, episodic, fully deterministic
// given a seed. Matches the POMDP framing of Section 4.1 of the paper — the
// environment emits an observation s_t, the agent replies with an action
// a_t, the environment feeds back a reward r_t.
//
// Attacks never mutate the environment; the attack harness perturbs the
// *observation stream* between the environment and the victim agent
// (Figure 2), so this interface stays attack-agnostic.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rlattack/nn/tensor.hpp"

namespace rlattack::env {

/// Inclusive element-wise bounds of valid observation values; used by PGD
/// to project perturbed observations back into the valid input domain.
struct ObservationBounds {
  float low;
  float high;
};

struct StepResult {
  nn::Tensor observation;  ///< s_{t+1}
  double reward = 0.0;     ///< r_t
  bool done = false;       ///< episode terminated after this step
};

class Environment {
 public:
  virtual ~Environment() = default;
  Environment() = default;
  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  /// Re-seeds the environment's random stream. Takes effect at next reset.
  virtual void seed(std::uint64_t seed) = 0;

  /// Starts a new episode; returns the initial observation s_0.
  virtual nn::Tensor reset() = 0;

  /// Advances one step with the given action index. Calling step on a
  /// finished episode throws std::logic_error.
  virtual StepResult step(std::size_t action) = 0;

  /// Number of discrete actions.
  virtual std::size_t action_count() const = 0;

  /// Shape of a single observation (no batch dim), e.g. {4} or {1, 16, 16}.
  virtual std::vector<std::size_t> observation_shape() const = 0;

  virtual ObservationBounds observation_bounds() const = 0;

  virtual std::string name() const = 0;

  /// Independent copy with identical configuration (not identical episode
  /// state); used to run parallel evaluations.
  virtual std::unique_ptr<Environment> clone() const = 0;

  /// Flat observation element count.
  std::size_t observation_size() const {
    std::size_t n = 1;
    for (std::size_t d : observation_shape()) n *= d;
    return n;
  }
};

using EnvPtr = std::unique_ptr<Environment>;

/// One (s_t, a_t, r_t, done) record of an episode trace.
struct Transition {
  nn::Tensor observation;  ///< s_t — what the agent saw before acting
  std::size_t action = 0;  ///< a_t
  double reward = 0.0;     ///< r_t
  bool done = false;
};

/// A full episode trace: the sequence E of Algorithm 1.
struct Episode {
  std::vector<Transition> steps;
  double total_reward() const {
    double r = 0.0;
    for (const auto& t : steps) r += t.reward;
    return r;
  }
};

}  // namespace rlattack::env
