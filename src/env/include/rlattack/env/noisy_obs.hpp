// Observation-noise wrapper: injects Gaussian noise into every observation
// an agent receives during training. Used to reproduce the adversarial-
// training defence discussion (Pattanaik et al., cited in the paper's
// related work): agents trained under observation noise should degrade
// more gracefully under attack.
#pragma once

#include "rlattack/env/environment.hpp"
#include "rlattack/util/rng.hpp"

namespace rlattack::env {

class NoisyObservationWrapper final : public Environment {
 public:
  /// `stddev` is the per-element Gaussian noise scale; observations are
  /// clamped back to the inner environment's valid bounds after injection.
  NoisyObservationWrapper(EnvPtr inner, float stddev, std::uint64_t seed);

  void seed(std::uint64_t seed) override;
  nn::Tensor reset() override;
  StepResult step(std::size_t action) override;
  std::size_t action_count() const override { return inner_->action_count(); }
  std::vector<std::size_t> observation_shape() const override {
    return inner_->observation_shape();
  }
  ObservationBounds observation_bounds() const override {
    return inner_->observation_bounds();
  }
  std::string name() const override {
    return inner_->name() + "_noisy";
  }
  std::unique_ptr<Environment> clone() const override;

  float stddev() const noexcept { return stddev_; }

 private:
  nn::Tensor corrupt(nn::Tensor obs);

  EnvPtr inner_;
  float stddev_;
  util::Rng rng_;
  std::uint64_t seed_;
};

}  // namespace rlattack::env
