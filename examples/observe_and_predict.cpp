// The paper's motivating scenario (Section 2): an observer watches an agent
// with an *unknown objective* perform its task and learns to predict its
// future manoeuvres — here, a Pong-playing agent standing in for the
// intercepting aircraft.
//
// The example trains a DQN pilot, observes it passively, fits the 10-step
// sequence approximator and then reports how far into the future the
// observer can call the pilot's moves.
#include <iostream>

#include "rlattack/env/factory.hpp"
#include "rlattack/rl/factory.hpp"
#include "rlattack/rl/trainer.hpp"
#include "rlattack/seq2seq/trainer.hpp"
#include "rlattack/util/table.hpp"

int main() {
  using namespace rlattack;
  const env::Game game = env::Game::kMiniPong;

  std::cout << "training the target agent (DQN on MiniPong)...\n";
  env::EnvPtr train_env = env::make_agent_environment(game, 11);
  rl::AgentPtr pilot = rl::make_agent(
      rl::Algorithm::kDqn, rl::obs_spec_of(*train_env),
      train_env->action_count(), 11);
  rl::TrainConfig tc;
  tc.episodes = 120;
  tc.target_reward = 2.0;
  rl::train_agent(*pilot, *train_env, tc);

  std::cout << "observing 25 episodes (passive, no queries)...\n";
  env::EnvPtr obs_env = env::make_agent_environment(game, 12);
  auto episodes = rl::collect_episodes(*pilot, *obs_env, 25, 12);

  std::cout << "fitting the 10-step sequence predictor...\n";
  env::EnvPtr probe = env::make_environment(game, 1);
  auto make_config = [&](std::size_t n) {
    return seq2seq::make_atari_seq2seq_config(probe->observation_shape(),
                                              probe->action_count(), n, 10);
  };
  seq2seq::TrainSettings settings;
  settings.epochs = 25;
  settings.batches_per_epoch = 24;
  std::vector<std::size_t> candidates{2, 5};
  auto approx = seq2seq::build_approximator(episodes, candidates, make_config,
                                            settings, 13);

  // Per-horizon accuracy: how reliably can the observer call the pilot's
  // action k steps ahead?
  const seq2seq::Seq2SeqConfig cfg = approx.model->config();
  seq2seq::EpisodeDataset ds(episodes, cfg.input_steps, cfg.output_steps,
                             cfg.frame_size(), cfg.actions);
  util::Rng rng(14);
  auto [train_idx, eval_idx] = ds.split(0.9, rng);

  std::vector<std::size_t> correct(10, 0);
  std::size_t rows = 0;
  const std::size_t batch_size = 32;
  for (std::size_t start = 0;
       start < eval_idx.size() && rows < 3000; start += batch_size) {
    const std::size_t count =
        std::min(batch_size, eval_idx.size() - start);
    auto batch = ds.materialize(
        std::span<const std::size_t>(eval_idx).subspan(start, count));
    nn::Tensor logits = approx.model->forward(
        batch.action_history, batch.obs_history, batch.current_obs);
    for (std::size_t b = 0; b < count; ++b, ++rows) {
      for (std::size_t k = 0; k < 10; ++k) {
        auto row = logits.data().subspan((b * 10 + k) * cfg.actions,
                                         cfg.actions);
        std::size_t best = 0;
        for (std::size_t a = 1; a < cfg.actions; ++a)
          if (row[a] > row[best]) best = a;
        if (best == batch.targets[b * 10 + k]) ++correct[k];
      }
    }
  }

  util::TableWriter table({"Steps ahead", "Prediction accuracy"});
  for (std::size_t k = 0; k < 10; ++k)
    table.add_row({std::to_string(k + 1),
                   util::fmt(static_cast<double>(correct[k]) /
                                 static_cast<double>(rows),
                             3)});
  std::cout << "\nHow far ahead can the observer call the pilot's moves?\n"
            << table.to_string()
            << "\n(chance level for " << cfg.actions
            << " actions is "
            << util::fmt(1.0 / static_cast<double>(cfg.actions), 3)
            << "; accuracy decays with horizon but stays above chance)\n";
  return 0;
}
