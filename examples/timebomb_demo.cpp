// Time-bomb demo (Section 5.4): inject ONE adversarial frame now, flip an
// action several steps in the future. Uses deterministic counterfactual
// pairs — the same seeded episode run clean and attacked — to show exactly
// when the trajectories diverge.
#include <iostream>

#include "rlattack/core/pipeline.hpp"
#include "rlattack/env/factory.hpp"
#include "rlattack/rl/factory.hpp"
#include "rlattack/rl/trainer.hpp"
#include "rlattack/seq2seq/trainer.hpp"

int main() {
  using namespace rlattack;
  const env::Game game = env::Game::kCartPole;
  const std::size_t delay = 4;

  std::cout << "training victim (DQN on CartPole)...\n";
  env::EnvPtr train_env = env::make_agent_environment(game, 21);
  rl::AgentPtr victim = rl::make_agent(rl::Algorithm::kDqn,
                                       rl::obs_spec_of(*train_env),
                                       train_env->action_count(), 21);
  rl::TrainConfig tc;
  tc.episodes = 300;
  tc.target_reward = 180.0;
  rl::train_agent(*victim, *train_env, tc);

  std::cout << "fitting the 10-step approximator from observation...\n";
  env::EnvPtr obs_env = env::make_agent_environment(game, 22);
  auto episodes = rl::collect_episodes(*victim, *obs_env, 30, 22);
  auto make_config = [](std::size_t n) {
    return seq2seq::make_cartpole_seq2seq_config(n, /*m=*/10);
  };
  seq2seq::TrainSettings settings;
  settings.epochs = 50;
  settings.batches_per_epoch = 32;
  std::vector<std::size_t> candidates{5, 10};
  auto approx = seq2seq::build_approximator(episodes, candidates, make_config,
                                            settings, 23);

  attack::AttackPtr fgsm = attack::make_attack(attack::Kind::kFgsm);
  attack::Budget budget{attack::Budget::Norm::kLinf, 0.5f};
  core::AttackSession session(*victim, game, *approx.model, *fgsm, budget);

  std::size_t successes = 0, trials = 0;
  for (std::uint64_t seed = 500; seed < 515; ++seed) {
    core::AttackPolicy clean;
    auto baseline = session.run_episode(clean, seed);

    core::AttackPolicy bomb;
    bomb.mode = core::AttackPolicy::Mode::kSingleStep;
    bomb.trigger_step = approx.search.best_length + 5;
    bomb.goal_mode = attack::Goal::Mode::kTargeted;
    bomb.position = delay;  // flip the action `delay` steps after injection
    auto attacked = session.run_episode(bomb, seed);
    if (attacked.fired_step == static_cast<std::size_t>(-1)) continue;

    const std::size_t check = attacked.fired_step + delay;
    if (baseline.actions.size() <= check) continue;
    ++trials;
    const bool flipped = attacked.actions.size() <= check ||
                         attacked.actions[check] != baseline.actions[check];
    if (flipped) ++successes;
    if (trials == 1) {
      std::cout << "\nexample counterfactual pair (seed " << seed
                << ", bomb planted at step " << attacked.fired_step
                << ", target step " << check << "):\n  step:     ";
      const std::size_t lo =
          attacked.fired_step > 2 ? attacked.fired_step - 2 : 0;
      const std::size_t hi =
          std::min(check + 3, std::min(baseline.actions.size(),
                                       attacked.actions.size()));
      for (std::size_t t = lo; t < hi; ++t) printf("%4zu", t);
      std::cout << "\n  clean:    ";
      for (std::size_t t = lo; t < hi; ++t)
        printf("%4zu", baseline.actions[t]);
      std::cout << "\n  attacked: ";
      for (std::size_t t = lo; t < hi; ++t)
        printf("%4zu", attacked.actions[t]);
      std::cout << "\n            (one frame perturbed at step "
                << attacked.fired_step << "; everything after is clean)\n";
    }
  }
  std::cout << "\ntime-bomb success rate at delay " << delay << ": "
            << successes << "/" << trials << "\n";
  return 0;
}
