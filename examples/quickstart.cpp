// Quickstart: the full black-box attack pipeline on CartPole in ~80 lines.
//
//   1. Train a DQN victim.
//   2. Passively observe it playing (the attacker's only access).
//   3. Fit the seq2seq approximator (Algorithm 1).
//   4. Craft FGSM perturbations from the approximator and inject them into
//      the victim's observation stream.
//
// Expected output: the victim balances ~200 steps clean and far fewer
// under attack, while a matched Gaussian-noise baseline lands nearby —
// the paper's headline methodological finding.
#include <iostream>

#include "rlattack/core/pipeline.hpp"
#include "rlattack/env/cartpole.hpp"
#include "rlattack/rl/factory.hpp"
#include "rlattack/rl/q_agent.hpp"
#include "rlattack/rl/trainer.hpp"
#include "rlattack/seq2seq/trainer.hpp"
#include "rlattack/util/stats.hpp"

int main() {
  using namespace rlattack;

  // 1. Train the victim.
  std::cout << "[1/4] training DQN victim on CartPole...\n";
  env::CartPole train_env(env::CartPole::Config{}, 1);
  rl::AgentPtr victim = rl::make_dqn_agent(rl::ObsSpec{{4}}, 2, 1);
  rl::TrainConfig tc;
  tc.episodes = 300;
  tc.target_reward = 180.0;
  rl::train_agent(*victim, train_env, tc);

  env::CartPole eval_env(env::CartPole::Config{}, 2);
  const double clean_score =
      util::mean_of(rl::evaluate_agent(*victim, eval_env, 10, 2));
  std::cout << "       victim greedy score: " << clean_score << "\n";

  // 2. Passive observation — the attacker only watches.
  std::cout << "[2/4] collecting 40 observation episodes...\n";
  env::CartPole obs_env(env::CartPole::Config{}, 3);
  auto episodes = rl::collect_episodes(*victim, obs_env, 40, 3);

  // 3. Algorithm 1: search the input length, then train the approximator.
  std::cout << "[3/4] fitting seq2seq approximator (Algorithm 1)...\n";
  auto make_config = [](std::size_t n) {
    return seq2seq::make_cartpole_seq2seq_config(n, /*m=*/1);
  };
  seq2seq::TrainSettings settings;
  settings.epochs = 60;
  settings.batches_per_epoch = 48;
  std::vector<std::size_t> candidates{5, 10, 25};
  auto approx = seq2seq::build_approximator(episodes, candidates, make_config,
                                            settings, 4);
  std::cout << "       chosen input length n = " << approx.search.best_length
            << ", next-action accuracy = " << approx.outcome.eval_accuracy
            << "\n";

  // 4. Attack: every-step FGSM vs a matched Gaussian baseline.
  std::cout << "[4/4] attacking (L2 budget 1.0, 10 episodes each)...\n";
  attack::Budget budget{attack::Budget::Norm::kL2, 1.0f};
  core::AttackPolicy attacked;
  attacked.mode = core::AttackPolicy::Mode::kEveryStep;

  for (attack::Kind kind : {attack::Kind::kFgsm, attack::Kind::kGaussian}) {
    attack::AttackPtr attacker = attack::make_attack(kind);
    core::AttackSession session(*victim, env::Game::kCartPole, *approx.model,
                                *attacker, budget);
    util::RunningStats rewards;
    for (std::uint64_t run = 0; run < 10; ++run)
      rewards.add(session.run_episode(attacked, 100 + run).total_reward);
    std::cout << "       " << attack::attack_name(kind)
              << " attacked score: " << rewards.mean() << " +/- "
              << rewards.stddev() << "\n";
  }
  std::cout << "done. Compare both attacked scores against the clean score "
            << clean_score << ".\n";
  return 0;
}
