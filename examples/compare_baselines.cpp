// The paper's methodological critique, reproduced as a standalone example:
// at equal L2 budget, random Gaussian jamming reduces a victim's score
// about as well as gradient-based attacks — but gradient attacks flip far
// more individual actions. Reward damage and per-sample transferability are
// different metrics, and prior work conflated them.
#include <iostream>

#include "rlattack/core/pipeline.hpp"
#include "rlattack/env/cartpole.hpp"
#include "rlattack/rl/factory.hpp"
#include "rlattack/rl/trainer.hpp"
#include "rlattack/seq2seq/trainer.hpp"
#include "rlattack/util/stats.hpp"
#include "rlattack/util/table.hpp"

int main() {
  using namespace rlattack;

  std::cout << "training victim + approximator (CartPole/DQN)...\n";
  env::CartPole train_env(env::CartPole::Config{}, 31);
  rl::AgentPtr victim = rl::make_agent(rl::Algorithm::kDqn,
                                       rl::ObsSpec{{4}}, 2, 31);
  rl::TrainConfig tc;
  tc.episodes = 300;
  tc.target_reward = 180.0;
  rl::train_agent(*victim, train_env, tc);

  env::CartPole obs_env(env::CartPole::Config{}, 32);
  auto episodes = rl::collect_episodes(*victim, obs_env, 30, 32);
  auto make_config = [](std::size_t n) {
    return seq2seq::make_cartpole_seq2seq_config(n, 1);
  };
  seq2seq::TrainSettings settings;
  settings.epochs = 50;
  settings.batches_per_epoch = 32;
  std::vector<std::size_t> candidates{5, 10};
  auto approx = seq2seq::build_approximator(episodes, candidates, make_config,
                                            settings, 33);

  util::TableWriter table(
      {"Attack", "L2 budget", "Reward", "Flip rate (transferability)"});
  for (double budget_value : {0.5, 1.0, 2.0}) {
    for (attack::Kind kind :
         {attack::Kind::kGaussian, attack::Kind::kFgsm, attack::Kind::kPgd}) {
      attack::AttackPtr attacker = attack::make_attack(kind);
      attack::Budget budget{attack::Budget::Norm::kL2,
                            static_cast<float>(budget_value)};
      core::AttackSession session(*victim, env::Game::kCartPole,
                                  *approx.model, *attacker, budget);
      core::AttackPolicy policy;
      policy.mode = core::AttackPolicy::Mode::kEveryStep;
      util::RunningStats rewards;
      std::size_t flips = 0, samples = 0;
      for (std::uint64_t run = 0; run < 10; ++run) {
        auto outcome = session.run_episode(policy, 900 + run);
        rewards.add(outcome.total_reward);
        flips += outcome.immediate_flips;
        samples += outcome.attacks_attempted;
      }
      table.add_row(
          {attack::attack_name(kind), util::fmt(budget_value, 2),
           util::fmt(rewards.mean(), 1),
           util::fmt(samples ? static_cast<double>(flips) /
                                   static_cast<double>(samples)
                             : 0.0,
                     3)});
    }
  }
  std::cout << "\n" << table.to_string()
            << "\nReading: the Reward column is similar across attacks at "
               "equal budget (random jamming is a fair baseline!), while "
               "the flip-rate column clearly separates gradient attacks "
               "from noise.\n";
  return 0;
}
