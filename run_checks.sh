#!/usr/bin/env bash
# Correctness-tooling driver: configures, builds and tests every sanitizer /
# static-analysis configuration in one command and writes a machine-parseable
# per-config summary to CHECKS.json.
#
#   ./run_checks.sh                 # full matrix
#   ./run_checks.sh asan checked    # just those configs
#
# Configs:
#   werror   -Wall -Wextra -Wpedantic -Wshadow -Wconversion -Werror over the
#            whole tree (libs, tests, benches, examples, cli); build only
#   asan     AddressSanitizer build + full ctest
#   ubsan    UndefinedBehaviorSanitizer (no recovery) build + full ctest
#   tsan     ThreadSanitizer build + the concurrency-relevant suites
#            (GEMM kernel dispatch, thread pool, episode-parallel drivers)
#   checked  RLATTACK_CHECKED invariant layer compiled in + full ctest,
#            including the checked_invariants_test negative suite
#   tidy     run-clang-tidy over src/, tests/, bench/, apps/, examples/ and
#            tools/ with the repo .clang-tidy; SKIPPED (not failed) when
#            clang-tidy is not on PATH
#   tsa      Clang thread-safety analysis: the whole tree rebuilt with
#            clang++ -DRLATTACK_TSA=ON (-Wthread-safety -Werror=thread-safety)
#            so the RLATTACK_GUARDED_BY/REQUIRES annotations are actually
#            proven; SKIPPED when no clang++ is on PATH
#   tidy-plugin
#            builds the in-tree rlattack-tidy module (tools/rlattack-tidy),
#            runs the rlattack-* checks over the tree and the trip/clean
#            fixture suite (tests/tidy); SKIPPED when clang-tidy or the
#            clang-tidy dev headers are unavailable — the gcc-compilable
#            policy core + selfcheck still build/run in every config
#   metrics  default build + one short instrumented experiment with
#            RLATTACK_METRICS_OUT set; validates the exported METRICS JSON
#            parses and carries the expected kernel/attack/span keys
#   trace    trace suite (lock-free ring emitters) under TSan, then one
#            traced instrumented experiment with RLATTACK_TRACE=1 /
#            RLATTACK_TRACE_OUT; validates the Chrome trace-event JSON
#            parses and carries pool/episode/phase timeline events
#   simd     default build + the kernel/attention parity suites run twice,
#            once under RLATTACK_SIMD=avx2 and once under RLATTACK_SIMD=scalar;
#            SKIPPED (not failed) when the host CPU lacks AVX2/FMA
#   batch    batched-craft-substrate parity suites (seq2seq_batch_test plus
#            the CraftBatch/WorkerPool experiment suites) under BOTH ASan and
#            TSan — the rendezvous shares one model across host threads and
#            memcpy-packs rows around the shared GEMMs, so it gets the
#            memory- and race-checker treatment explicitly
#   eval-batch
#            episode-batched evaluation substrate parity suites (the
#            ActBatch agent suites plus the EvalBatch experiment suites)
#            under BOTH ASan and TSan, each run once per available GEMM
#            kernel (RLATTACK_SIMD=avx2/scalar) — host threads share the
#            ORIGINAL victim and model through one rendezvous, so the
#            handoff gets the same treatment as the craft substrate
#
# Exit status: non-zero if any selected config fails. A skipped tidy step
# (missing tool) does not fail the run; CHECKS.json records it as "skipped"
# so CI environments that do ship clang-tidy can gate on "pass" explicitly.
set -u -o pipefail

cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"
ALL_CONFIGS=(werror asan ubsan tsan checked tidy tsa tidy-plugin metrics trace simd batch eval-batch)

# Directories the static-analysis steps cover (everything with C++ in it).
TIDY_DIRS=(src tests bench apps examples tools)
CONFIGS=("$@")
if [ ${#CONFIGS[@]} -eq 0 ]; then
  CONFIGS=("${ALL_CONFIGS[@]}")
fi

# TSan runs the suites that exercise the thread pool and the episode-parallel
# reduction; the remaining tests are single-threaded re-runs of the same code
# ASan/UBSan already cover, and TSan's ~10x slowdown makes them poor value.
TSAN_FILTER='Kernels|ExperimentsParallel|ThreadPool|Pool|Parallel|Metrics|Batched|Trace'

LOG_DIR="checks-logs"
mkdir -p "${LOG_DIR}"

declare -A STATUS SECONDS_TAKEN DETAIL

run_logged() {
  # run_logged <logfile> <cmd...>
  local log="$1"
  shift
  "$@" >>"${log}" 2>&1
}

configure_build() {
  # configure_build <name> <builddir> <log> [extra cmake args...]
  local name="$1" dir="$2" log="$3"
  shift 3
  run_logged "${log}" cmake -B "${dir}" -S . "$@" || return 1
  run_logged "${log}" cmake --build "${dir}" -j "${JOBS}" || return 1
}

run_ctest() {
  # run_ctest <builddir> <log> [ctest args...]
  local dir="$1" log="$2"
  shift 2
  (cd "${dir}" && run_logged "../${log}" ctest --output-on-failure -j "${JOBS}" "$@")
}

validate_metrics_json() {
  # validate_metrics_json <file>: the export must parse as JSON and carry
  # the keys the paper-facing drivers report on (kernel flops, attack
  # queries, per-phase spans).
  local json="$1"
  [ -s "${json}" ] || { echo "metrics export ${json} missing/empty"; return 1; }
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${json}" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for section, key in [
    ("counters", "nn.gemm.flops"),
    ("counters", "nn.gemm.calls"),
    ("counters", "attack.queries.gradient"),
    ("counters", "pipeline.steps"),
    ("gauges", "nn.gemm.kernel"),
    ("spans", "seq2seq.forward"),
    ("spans", "phase.perturb"),
]:
    if key not in doc.get(section, {}):
        sys.exit(f"METRICS export missing {section}/{key}")
if doc["counters"]["nn.gemm.flops"] <= 0:
    sys.exit("nn.gemm.flops is zero in an instrumented run")
print("METRICS export validated:", len(doc["counters"]), "counters,",
      len(doc["spans"]), "spans")
EOF
  else
    # Fallback: key-presence grep when python3 is unavailable.
    local key
    for key in nn.gemm.flops attack.queries.gradient pipeline.steps \
               nn.gemm.kernel seq2seq.forward phase.perturb; do
      grep -q "\"${key}\"" "${json}" || {
        echo "METRICS export missing ${key}"; return 1; }
    done
  fi
}

validate_trace_json() {
  # validate_trace_json <file>: the Chrome trace-event export must parse as
  # JSON, every event must carry the viewer-required fields, and the
  # timeline must show the instrumented layers (pool jobs, episode spans,
  # per-step phases).
  local json="$1"
  [ -s "${json}" ] || { echo "trace export ${json} missing/empty"; return 1; }
  if command -v python3 >/dev/null 2>&1; then
    python3 - "${json}" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc.get("traceEvents", [])
if not events:
    sys.exit("trace export has no events")
names = set()
for e in events:
    for key in ("name", "cat", "ph", "pid", "tid", "ts"):
        if key not in e:
            sys.exit(f"trace event missing '{key}': {e}")
    if e["ph"] == "X" and "dur" not in e:
        sys.exit(f"complete event missing 'dur': {e}")
    names.add(e["name"])
for expected in ("pool.job", "episode.run", "phase.victim_step",
                 "eval.batch.flush"):
    if expected not in names:
        sys.exit(f"trace export missing '{expected}' events")
print("TRACE export validated:", len(events), "events,",
      len(names), "distinct names, dropped:",
      doc.get("otherData", {}).get("dropped"))
EOF
  else
    # Fallback: shape grep when python3 is unavailable.
    local key
    for key in traceEvents pool.job episode.run phase.victim_step; do
      grep -q "${key}" "${json}" || {
        echo "trace export missing ${key}"; return 1; }
    done
  fi
}

run_config() {
  local name="$1"
  local log="${LOG_DIR}/${name}.log"
  : >"${log}"
  local start end
  start=$(date +%s)
  local rc=0
  case "${name}" in
    werror)
      configure_build werror build-werror "${log}" \
        -DRLATTACK_WARNINGS_AS_ERRORS=ON || rc=1
      DETAIL[${name}]="full-tree build with -Werror"
      ;;
    asan)
      configure_build asan build-asan "${log}" \
        -DRLATTACK_ASAN=ON -DRLATTACK_BUILD_BENCH=OFF \
        -DRLATTACK_BUILD_EXAMPLES=OFF || rc=1
      if [ ${rc} -eq 0 ]; then
        ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:halt_on_error=1}" \
          run_ctest build-asan "${log}" || rc=1
      fi
      DETAIL[${name}]="AddressSanitizer build + full ctest"
      ;;
    ubsan)
      configure_build ubsan build-ubsan "${log}" \
        -DRLATTACK_UBSAN=ON -DRLATTACK_BUILD_BENCH=OFF \
        -DRLATTACK_BUILD_EXAMPLES=OFF || rc=1
      if [ ${rc} -eq 0 ]; then
        UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
          run_ctest build-ubsan "${log}" || rc=1
      fi
      DETAIL[${name}]="UndefinedBehaviorSanitizer build + full ctest"
      ;;
    tsan)
      configure_build tsan build-tsan "${log}" \
        -DRLATTACK_TSAN=ON -DRLATTACK_BUILD_BENCH=OFF \
        -DRLATTACK_BUILD_EXAMPLES=OFF || rc=1
      if [ ${rc} -eq 0 ]; then
        TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
          run_ctest build-tsan "${log}" -R "${TSAN_FILTER}" || rc=1
      fi
      DETAIL[${name}]="ThreadSanitizer build + concurrency suites (-R '${TSAN_FILTER}')"
      ;;
    checked)
      configure_build checked build-checked "${log}" \
        -DRLATTACK_CHECKED=ON -DRLATTACK_BUILD_BENCH=OFF \
        -DRLATTACK_BUILD_EXAMPLES=OFF || rc=1
      if [ ${rc} -eq 0 ]; then
        run_ctest build-checked "${log}" || rc=1
      fi
      DETAIL[${name}]="RLATTACK_CHECKED invariants + full ctest (incl. checked_invariants_test)"
      ;;
    tidy)
      if ! command -v clang-tidy >/dev/null 2>&1; then
        STATUS[${name}]="skipped"
        DETAIL[${name}]="clang-tidy not on PATH"
        SECONDS_TAKEN[${name}]=0
        echo "clang-tidy not on PATH; step skipped" >>"${log}"
        return 0
      fi
      # Reuse (or create) the default build dir purely for its
      # compile_commands.json — CMAKE_EXPORT_COMPILE_COMMANDS is always on.
      if [ ! -f build/compile_commands.json ]; then
        run_logged "${log}" cmake -B build -S . || rc=1
      fi
      if [ ${rc} -eq 0 ]; then
        local dir_alt
        dir_alt=$(IFS='|'; echo "${TIDY_DIRS[*]}")
        if command -v run-clang-tidy >/dev/null 2>&1; then
          run_logged "${log}" run-clang-tidy -p build -quiet \
            "$(pwd)/(${dir_alt})/.*\.cpp" || rc=1
        else
          # Fallback: serial clang-tidy over every covered translation unit.
          # Only TUs in the compilation database can be linted (fixture
          # sources under tests/tidy are linted by their own driver).
          local f
          while IFS= read -r f; do
            grep -q "\"$(pwd)/${f}\"" build/compile_commands.json || continue
            run_logged "${log}" clang-tidy -p build "${f}" || rc=1
          done < <(find "${TIDY_DIRS[@]}" -name '*.cpp' | sort)
        fi
      fi
      DETAIL[${name}]="clang-tidy over ${TIDY_DIRS[*]} (.clang-tidy, WarningsAsErrors=*)"
      ;;
    tsa)
      # Compile-time proof of the lock discipline declared by the
      # thread_safety.hpp annotations. Only Clang implements
      # -Wthread-safety; GCC compiles the attributes to nothing, so a GCC
      # "pass" would be vacuous — skip instead.
      if ! command -v clang++ >/dev/null 2>&1; then
        STATUS[${name}]="skipped"
        DETAIL[${name}]="clang++ not on PATH"
        SECONDS_TAKEN[${name}]=0
        echo "clang++ not on PATH; step skipped" >>"${log}"
        return 0
      fi
      configure_build tsa build-tsa-check "${log}" \
        -DCMAKE_CXX_COMPILER=clang++ -DRLATTACK_TSA=ON || rc=1
      DETAIL[${name}]="clang++ -Wthread-safety -Werror=thread-safety full-tree build"
      ;;
    tidy-plugin)
      if ! command -v clang-tidy >/dev/null 2>&1; then
        STATUS[${name}]="skipped"
        DETAIL[${name}]="clang-tidy not on PATH"
        SECONDS_TAKEN[${name}]=0
        echo "clang-tidy not on PATH; step skipped" >>"${log}"
        return 0
      fi
      # The default build detects the clang-tidy dev headers and only then
      # generates the module target (tools/rlattack-tidy/CMakeLists.txt).
      configure_build tidy-plugin build "${log}" || rc=1
      local plugin="build/tools/rlattack-tidy/librlattack_tidy.so"
      if [ ${rc} -eq 0 ] && [ ! -f "${plugin}" ]; then
        STATUS[${name}]="skipped"
        DETAIL[${name}]="clang-tidy dev headers absent; plugin module not built"
        SECONDS_TAKEN[${name}]=0
        echo "plugin module not built (no clang-tidy dev headers); step skipped" >>"${log}"
        return 0
      fi
      if [ ${rc} -eq 0 ]; then
        # Trip/clean fixtures first: they prove the checks fire at all, so
        # a clean sweep over the tree below is meaningful.
        run_logged "${log}" tests/tidy/run_fixtures.sh "${plugin}" || rc=1
      fi
      if [ ${rc} -eq 0 ]; then
        local f
        while IFS= read -r f; do
          grep -q "\"$(pwd)/${f}\"" build/compile_commands.json || continue
          run_logged "${log}" clang-tidy -p build --load="${plugin}" \
            --checks='-*,rlattack-*' --warnings-as-errors='rlattack-*' \
            "${f}" || rc=1
        done < <(find "${TIDY_DIRS[@]}" -name '*.cpp' | sort)
      fi
      DETAIL[${name}]="rlattack-* checks: fixture suite + sweep over ${TIDY_DIRS[*]}"
      ;;
    metrics)
      # Short instrumented experiment: the parallel-experiments test binary
      # trains a tiny zoo and runs attacked episodes end to end, so every
      # instrumented subsystem (kernels, seq2seq, attacks, pipeline) fires.
      configure_build metrics build "${log}" || rc=1
      local metrics_json="${LOG_DIR}/metrics.json"
      if [ ${rc} -eq 0 ]; then
        rm -f "${metrics_json}"
        RLATTACK_METRICS_OUT="${metrics_json}" RLATTACK_THREADS=4 \
          run_logged "${log}" build/tests/experiments_parallel_test \
          --gtest_filter='*MetricsInstrumentationObservesExperiment*' || rc=1
      fi
      if [ ${rc} -eq 0 ]; then
        run_logged "${log}" validate_metrics_json "${metrics_json}" || rc=1
      fi
      DETAIL[${name}]="instrumented experiment + METRICS JSON key validation"
      ;;
    trace)
      # Tracing correctness end to end: the Trace* suites under TSan prove
      # the lock-free ring emit path is race-free, then one traced
      # instrumented experiment must export Perfetto-loadable JSON carrying
      # the pool/episode/phase timeline.
      configure_build trace build-tsan "${log}" \
        -DRLATTACK_TSAN=ON -DRLATTACK_BUILD_BENCH=OFF \
        -DRLATTACK_BUILD_EXAMPLES=OFF || rc=1
      if [ ${rc} -eq 0 ]; then
        TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
          RLATTACK_THREADS=4 run_logged "${log}" \
          build-tsan/tests/trace_test --gtest_filter='Trace*' || rc=1
      fi
      configure_build trace build "${log}" || rc=1
      local trace_json="${LOG_DIR}/trace.json"
      if [ ${rc} -eq 0 ]; then
        rm -f "${trace_json}"
        # RLATTACK_EVAL_BATCH=1 engages the episode-batched eval substrate so
        # the validated timeline also carries its rendezvous flush events.
        RLATTACK_TRACE=1 RLATTACK_TRACE_OUT="${trace_json}" \
          RLATTACK_THREADS=4 RLATTACK_EVAL_BATCH=1 run_logged "${log}" \
          build/tests/experiments_parallel_test \
          --gtest_filter='*MetricsInstrumentationObservesExperiment*' || rc=1
      fi
      if [ ${rc} -eq 0 ]; then
        run_logged "${log}" validate_trace_json "${trace_json}" || rc=1
      fi
      DETAIL[${name}]="Trace* suites under TSan + traced experiment Chrome-JSON validation"
      ;;
    batch)
      # Both sanitizers reuse the asan/tsan build trees (incremental after
      # the first run). Host threads of the rendezvous block while one of
      # them drives the shared model, so TSan sees the full handoff.
      configure_build batch build-asan "${log}" \
        -DRLATTACK_ASAN=ON -DRLATTACK_BUILD_BENCH=OFF \
        -DRLATTACK_BUILD_EXAMPLES=OFF || rc=1
      if [ ${rc} -eq 0 ]; then
        ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:halt_on_error=1}" \
          RLATTACK_THREADS=4 run_logged "${log}" \
          build-asan/tests/seq2seq_batch_test \
          --gtest_filter='Seq2SeqBatchedCraft*' || rc=1
        ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:halt_on_error=1}" \
          RLATTACK_THREADS=4 run_logged "${log}" \
          build-asan/tests/experiments_parallel_test \
          --gtest_filter='*CraftBatch*:*WorkerPool*' || rc=1
      fi
      configure_build batch build-tsan "${log}" \
        -DRLATTACK_TSAN=ON -DRLATTACK_BUILD_BENCH=OFF \
        -DRLATTACK_BUILD_EXAMPLES=OFF || rc=1
      if [ ${rc} -eq 0 ]; then
        TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
          RLATTACK_THREADS=4 run_logged "${log}" \
          build-tsan/tests/seq2seq_batch_test \
          --gtest_filter='Seq2SeqBatchedCraft*' || rc=1
        TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
          RLATTACK_THREADS=4 run_logged "${log}" \
          build-tsan/tests/experiments_parallel_test \
          --gtest_filter='*CraftBatch*:*WorkerPool*' || rc=1
      fi
      DETAIL[${name}]="batched-craft parity suites under ASan + TSan"
      ;;
    eval-batch)
      # The eval-rendezvous suites assert bit-identity of experiment rows
      # with the substrate on vs off, so running them once per GEMM kernel
      # proves the contract holds under either micro-kernel. Scalar is
      # always available; avx2 joins when the host supports it.
      local modes="scalar"
      if grep -q 'avx2' /proc/cpuinfo 2>/dev/null && \
         grep -q 'fma' /proc/cpuinfo 2>/dev/null; then
        modes="avx2 scalar"
      fi
      configure_build eval-batch build-asan "${log}" \
        -DRLATTACK_ASAN=ON -DRLATTACK_BUILD_BENCH=OFF \
        -DRLATTACK_BUILD_EXAMPLES=OFF || rc=1
      if [ ${rc} -eq 0 ]; then
        local mode
        for mode in ${modes}; do
          echo "--- ASan RLATTACK_SIMD=${mode} ---" >>"${log}"
          ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:halt_on_error=1}" \
            RLATTACK_THREADS=4 RLATTACK_SIMD="${mode}" run_logged "${log}" \
            build-asan/tests/rl_test --gtest_filter='*ActBatch*' || rc=1
          ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:halt_on_error=1}" \
            RLATTACK_THREADS=4 RLATTACK_SIMD="${mode}" run_logged "${log}" \
            build-asan/tests/experiments_parallel_test \
            --gtest_filter='*EvalBatch*' || rc=1
        done
      fi
      configure_build eval-batch build-tsan "${log}" \
        -DRLATTACK_TSAN=ON -DRLATTACK_BUILD_BENCH=OFF \
        -DRLATTACK_BUILD_EXAMPLES=OFF || rc=1
      if [ ${rc} -eq 0 ]; then
        local mode
        for mode in ${modes}; do
          echo "--- TSan RLATTACK_SIMD=${mode} ---" >>"${log}"
          TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
            RLATTACK_THREADS=4 RLATTACK_SIMD="${mode}" run_logged "${log}" \
            build-tsan/tests/experiments_parallel_test \
            --gtest_filter='*EvalBatch*' || rc=1
        done
      fi
      DETAIL[${name}]="episode-batched eval parity suites under ASan + TSan x SIMD kernels"
      ;;
    simd)
      # Dispatch parity: the kernel/attention parity suites must pass when
      # the GEMM micro-kernel is forced to either implementation. Each
      # RLATTACK_SIMD value is a separate process because the choice is
      # resolved once at the first GEMM call and cached.
      if ! grep -q 'avx2' /proc/cpuinfo 2>/dev/null || \
         ! grep -q 'fma' /proc/cpuinfo 2>/dev/null; then
        STATUS[${name}]="skipped"
        DETAIL[${name}]="host CPU lacks AVX2/FMA"
        SECONDS_TAKEN[${name}]=0
        echo "host CPU lacks AVX2/FMA; step skipped" >>"${log}"
        return 0
      fi
      configure_build simd build "${log}" || rc=1
      if [ ${rc} -eq 0 ]; then
        local mode
        for mode in avx2 scalar; do
          echo "--- RLATTACK_SIMD=${mode} ---" >>"${log}"
          RLATTACK_SIMD="${mode}" run_logged "${log}" \
            build/tests/kernels_test \
            --gtest_filter='*SimdDispatch*:*SgemmParity*:*KernelHelpers*' || rc=1
          RLATTACK_SIMD="${mode}" run_logged "${log}" \
            build/tests/seq2seq_test \
            --gtest_filter='Seq2SeqAttentionGemm*' || rc=1
        done
      fi
      DETAIL[${name}]="kernel/attention parity suites under RLATTACK_SIMD=avx2 and =scalar"
      ;;
    *)
      echo "run_checks.sh: unknown config '${name}'" >&2
      echo "known configs: ${ALL_CONFIGS[*]}" >&2
      exit 2
      ;;
  esac
  end=$(date +%s)
  SECONDS_TAKEN[${name}]=$((end - start))
  if [ ${rc} -eq 0 ]; then
    STATUS[${name}]="pass"
  else
    STATUS[${name}]="fail"
  fi
}

OVERALL=pass
for cfg in "${CONFIGS[@]}"; do
  printf '== %-8s ... ' "${cfg}"
  run_config "${cfg}"
  printf '%s (%ss)\n' "${STATUS[${cfg}]}" "${SECONDS_TAKEN[${cfg}]}"
  if [ "${STATUS[${cfg}]}" = "fail" ]; then
    OVERALL=fail
    echo "   see ${LOG_DIR}/${cfg}.log"
  fi
done

# Machine-parseable summary for CI gating.
{
  echo '{'
  echo '  "tool": "run_checks.sh",'
  echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
  echo "  \"overall\": \"${OVERALL}\","
  echo '  "configs": {'
  sep=''
  for cfg in "${CONFIGS[@]}"; do
    printf '%s    "%s": {"status": "%s", "seconds": %s, "detail": "%s", "log": "%s"}' \
      "${sep}" "${cfg}" "${STATUS[${cfg}]}" "${SECONDS_TAKEN[${cfg}]}" \
      "${DETAIL[${cfg}]}" "${LOG_DIR}/${cfg}.log"
    sep=$',\n'
  done
  printf '\n  }\n}\n'
} > CHECKS.json

echo "-- CHECKS.json written (overall: ${OVERALL})"
[ "${OVERALL}" = "pass" ]
