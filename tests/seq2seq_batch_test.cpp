// Bit-identity contract of the batched craft substrate: packing N
// independent (history encoding, s_t) tails into one forward_cached_batch /
// backward_to_current_batch must return, per row, EXACTLY the floats the N
// single-row calls return. The per-row GEMM K-accumulation order is fixed
// by the kernel's cache blocking alone (independent of M and of thread
// count), and every tail layer is row-independent, so the contract is exact
// equality — not tolerance — across pooling/attention decoders, vector and
// image observations, batch sizes and both SIMD kernels. Registered with
// CTest under RLATTACK_THREADS=1 and =4 like kernels_test.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "gradcheck.hpp"
#include "rlattack/nn/kernels/gemm.hpp"
#include "rlattack/seq2seq/model.hpp"

namespace rlattack::seq2seq {
namespace {

using rlattack::testing::random_tensor;

Seq2SeqConfig variant_config(bool attention, bool image) {
  Seq2SeqConfig c;
  if (image) {
    c = make_atari_seq2seq_config({1, 8, 8}, 3, /*n=*/2, /*m=*/2);
  } else {
    c.input_steps = 3;
    c.output_steps = 2;
    c.actions = 2;
    c.frame_shape = {4};
  }
  c.embed = 8;
  c.lstm_hidden = 6;
  c.use_attention = attention;
  return c;
}

/// Copies row `r` of a [N, ...] tensor into a batch-1 tensor of the same
/// trailing shape.
nn::Tensor slice_row(const nn::Tensor& batch, std::size_t r) {
  std::vector<std::size_t> shape = batch.shape();
  shape[0] = 1;
  nn::Tensor row(shape);
  const std::size_t stride = batch.size() / batch.dim(0);
  std::memcpy(row.raw(), batch.raw() + r * stride, stride * sizeof(float));
  return row;
}

void expect_batch_parity(bool attention, bool image, std::size_t rows) {
  SCOPED_TRACE(std::string(attention ? "attention" : "pooling") + "/" +
               (image ? "image" : "vector") + "/rows=" +
               std::to_string(rows));
  const Seq2SeqConfig cfg = variant_config(attention, image);
  Seq2SeqModel model(cfg, 11);
  util::Rng rng(100 * rows + (attention ? 7 : 0) + (image ? 3 : 0));
  const std::size_t n = cfg.input_steps;
  const std::size_t m = cfg.output_steps;
  const std::size_t a = cfg.actions;
  const std::size_t f = cfg.frame_size();

  nn::Tensor actions = random_tensor({rows, n, a}, rng);
  nn::Tensor observations = random_tensor({rows, n, f}, rng);
  nn::Tensor current = random_tensor({rows, f}, rng);
  nn::Tensor grad_logits = random_tensor({rows, m, a}, rng);
  // Every third row gets a zero gradient — a forward-only probe in a mixed
  // flush. Its gradient row must come back exactly zero without disturbing
  // the neighbouring rows' bits.
  for (std::size_t r = 2; r < rows; r += 3)
    std::memset(grad_logits.raw() + r * m * a, 0, m * a * sizeof(float));

  // Reference: N fully independent single-row tails.
  std::vector<nn::Tensor> ref_logits;
  std::vector<nn::Tensor> ref_grads;
  for (std::size_t r = 0; r < rows; ++r) {
    HistoryEncoding enc = model.encode_history(slice_row(actions, r),
                                               slice_row(observations, r));
    ref_logits.push_back(model.forward_cached(enc, slice_row(current, r)));
    model.zero_grad();
    ref_grads.push_back(model.backward_to_current(slice_row(grad_logits, r)));
  }
  model.zero_grad();

  // Batched substrate: one encode, one shared tail forward, one shared
  // tail backward.
  std::vector<HistoryEncoding> encodings =
      model.encode_history_batch(actions, observations);
  ASSERT_EQ(encodings.size(), rows);
  std::vector<const HistoryEncoding*> caches;
  caches.reserve(rows);
  for (const HistoryEncoding& enc : encodings) caches.push_back(&enc);
  nn::Tensor logits = model.forward_cached_batch(caches, current);
  nn::Tensor grads = model.backward_to_current_batch(grad_logits);
  model.zero_grad();

  ASSERT_EQ(logits.rank(), 3u);
  ASSERT_EQ(logits.dim(0), rows);
  ASSERT_EQ(grads.rank(), 2u);
  ASSERT_EQ(grads.dim(0), rows);
  for (std::size_t r = 0; r < rows; ++r) {
    SCOPED_TRACE("row " + std::to_string(r));
    for (std::size_t t = 0; t < m; ++t)
      for (std::size_t k = 0; k < a; ++k)
        ASSERT_EQ(logits.at3(r, t, k), ref_logits[r].at3(0, t, k))
            << "logit [" << t << ", " << k << "]";
    for (std::size_t i = 0; i < f; ++i)
      ASSERT_EQ(grads.at2(r, i), ref_grads[r].at2(0, i)) << "grad " << i;
  }
}

TEST(Seq2SeqBatchedCraft, MatchesSingleRowTailBitExact) {
  namespace kernels = rlattack::nn::kernels;
  const kernels::SimdKernel saved = kernels::active_simd_kernel();
  // When auto-resolution landed on scalar the host lacks AVX2/FMA; forcing
  // the AVX2 kernel there would fault, so only the scalar path is covered.
  std::vector<kernels::SimdKernel> modes{kernels::SimdKernel::kScalar};
  if (saved == kernels::SimdKernel::kAvx2)
    modes.push_back(kernels::SimdKernel::kAvx2);
  for (kernels::SimdKernel mode : modes) {
    kernels::set_simd_kernel(mode);
    SCOPED_TRACE(kernels::simd_kernel_name(mode));
    for (bool attention : {false, true})
      for (bool image : {false, true})
        for (std::size_t rows : {std::size_t{1}, std::size_t{3},
                                 std::size_t{17}})
          expect_batch_parity(attention, image, rows);
  }
  kernels::set_simd_kernel(saved);
}

TEST(Seq2SeqBatchedCraft, RejectsEmptyBatch) {
  Seq2SeqModel model(variant_config(false, false), 1);
  EXPECT_THROW(model.forward_cached_batch({}, nn::Tensor({1, 4})),
               std::logic_error);
}

TEST(Seq2SeqBatchedCraft, RejectsRowCountMismatch) {
  const Seq2SeqConfig cfg = variant_config(false, false);
  Seq2SeqModel model(cfg, 2);
  util::Rng rng(9);
  nn::Tensor actions = random_tensor({2, 3, 2}, rng);
  nn::Tensor observations = random_tensor({2, 3, 4}, rng);
  std::vector<HistoryEncoding> encodings =
      model.encode_history_batch(actions, observations);
  std::vector<const HistoryEncoding*> caches{&encodings[0], &encodings[1]};
  // current_obs rows must match the cache count.
  EXPECT_THROW(
      model.forward_cached_batch(caches, random_tensor({3, 4}, rng)),
      std::logic_error);
  // Gradient rows must match the preceding forward's batch.
  nn::Tensor logits =
      model.forward_cached_batch(caches, random_tensor({2, 4}, rng));
  EXPECT_THROW(
      model.backward_to_current_batch(random_tensor({3, 2, 2}, rng)),
      std::logic_error);
}

TEST(Seq2SeqBatchedCraft, BackwardWithoutForwardThrows) {
  Seq2SeqModel model(variant_config(false, false), 3);
  util::Rng rng(10);
  EXPECT_THROW(
      model.backward_to_current_batch(random_tensor({1, 2, 2}, rng)),
      std::logic_error);
}

TEST(Seq2SeqBatchedCraft, ResetFromCopiesParametersInPlace) {
  const Seq2SeqConfig cfg = variant_config(true, false);
  Seq2SeqModel source(cfg, 21);
  Seq2SeqModel clone_target(cfg, 22);  // different init, same architecture
  util::Rng rng(11);
  nn::Tensor actions = random_tensor({1, 3, 2}, rng);
  nn::Tensor observations = random_tensor({1, 3, 4}, rng);
  nn::Tensor current = random_tensor({1, 4}, rng);

  const std::uint64_t before = Seq2SeqModel::constructions();
  clone_target.reset_from(source);
  EXPECT_EQ(Seq2SeqModel::constructions(), before)
      << "reset_from must not construct models";

  nn::Tensor expected = source.forward(actions, observations, current);
  nn::Tensor actual = clone_target.forward(actions, observations, current);
  for (std::size_t i = 0; i < expected.size(); ++i)
    ASSERT_EQ(actual[i], expected[i]) << "logit " << i;

  Seq2SeqConfig other = cfg;
  other.use_attention = false;
  Seq2SeqModel incompatible(other, 23);
  EXPECT_THROW(incompatible.reset_from(source), std::logic_error);
}

}  // namespace
}  // namespace rlattack::seq2seq
