// Attack invariants: budget respected, bounds clamped, gradient attacks
// actually move the loss, targeted attacks flip predictions on a trained
// toy model.
#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "rlattack/attack/attack.hpp"
#include "rlattack/attack/batch_planner.hpp"
#include "rlattack/nn/loss.hpp"
#include "rlattack/seq2seq/trainer.hpp"
#include "rlattack/util/stats.hpp"

namespace rlattack::attack {
namespace {

using rlattack::testing::random_tensor;

seq2seq::Seq2SeqConfig toy_config(std::size_t m = 1) {
  seq2seq::Seq2SeqConfig c;
  c.input_steps = 2;
  c.output_steps = m;
  c.actions = 2;
  c.frame_shape = {4};
  c.embed = 12;
  c.lstm_hidden = 8;
  return c;
}

CraftInputs toy_inputs(util::Rng& rng, std::size_t m = 1) {
  (void)m;
  CraftInputs in;
  in.action_history = random_tensor({1, 2, 2}, rng);
  in.obs_history = random_tensor({1, 2, 4}, rng);
  in.current_obs = random_tensor({1, 4}, rng);
  return in;
}

/// Trains a toy model whose prediction is a_t = (s_t[0] > 0); gives the
/// gradient attacks a crisp decision boundary to push across.
std::unique_ptr<seq2seq::Seq2SeqModel> trained_toy_model(std::size_t m = 1) {
  util::Rng rng(42);
  std::vector<env::Episode> episodes(16);
  for (auto& ep : episodes) {
    for (std::size_t t = 0; t < 20; ++t) {
      env::Transition tr;
      tr.observation = random_tensor({4}, rng);
      tr.action = tr.observation[0] > 0.0f ? 1u : 0u;
      ep.steps.push_back(std::move(tr));
    }
  }
  auto cfg = toy_config(m);
  auto model = std::make_unique<seq2seq::Seq2SeqModel>(cfg, 7);
  seq2seq::EpisodeDataset ds(episodes, cfg.input_steps, cfg.output_steps, 4,
                             2);
  util::Rng train_rng(8);
  auto [train, eval] = ds.split(0.9, train_rng);
  seq2seq::TrainSettings settings;
  settings.epochs = 25;
  settings.batches_per_epoch = 16;
  seq2seq::train_seq2seq(*model, ds, train, eval, settings, train_rng);
  return model;
}

double realised_norm(const nn::Tensor& perturbed, const nn::Tensor& original,
                     Budget::Norm norm) {
  nn::Tensor delta = perturbed;
  delta -= original;
  return norm == Budget::Norm::kL2 ? util::l2_norm(delta.data())
                                   : util::linf_norm(delta.data());
}

class BudgetRespect
    : public ::testing::TestWithParam<std::tuple<Kind, Budget::Norm>> {};

TEST_P(BudgetRespect, PerturbationWithinBudget) {
  const auto [kind, norm] = GetParam();
  auto model = trained_toy_model();
  AttackPtr attack = make_attack(kind);
  util::Rng rng(3);
  Budget budget{norm, 0.5f};
  env::ObservationBounds bounds{-10.0f, 10.0f};
  for (int trial = 0; trial < 5; ++trial) {
    CraftInputs inputs = toy_inputs(rng);
    Goal goal;
    nn::Tensor adv =
        attack->perturb(*model, inputs, goal, budget, bounds, rng);
    const double n = realised_norm(adv, inputs.current_obs, norm);
    EXPECT_LE(n, budget.epsilon * 1.001) << attack_name(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAttacks, BudgetRespect,
    ::testing::Combine(::testing::Values(Kind::kGaussian, Kind::kFgsm,
                                         Kind::kPgd),
                       ::testing::Values(Budget::Norm::kL2,
                                         Budget::Norm::kLinf)));

TEST(Attack, BoundsClamped) {
  auto model = trained_toy_model();
  util::Rng rng(4);
  // Original observation already at the upper bound: any positive
  // perturbation must clamp.
  CraftInputs inputs = toy_inputs(rng);
  inputs.current_obs.fill(1.0f);
  env::ObservationBounds bounds{0.0f, 1.0f};
  Budget budget{Budget::Norm::kLinf, 0.5f};
  for (Kind kind : {Kind::kGaussian, Kind::kFgsm, Kind::kPgd}) {
    AttackPtr attack = make_attack(kind);
    nn::Tensor adv =
        attack->perturb(*model, inputs, Goal{}, budget, bounds, rng);
    for (float x : adv.data()) {
      EXPECT_GE(x, 0.0f);
      EXPECT_LE(x, 1.0f);
    }
  }
}

TEST(Attack, GaussianMatchesBudgetExactly) {
  auto model = trained_toy_model();
  util::Rng rng(5);
  CraftInputs inputs = toy_inputs(rng);
  GaussianAttack attack;
  Budget budget{Budget::Norm::kL2, 0.7f};
  env::ObservationBounds bounds{-100.0f, 100.0f};  // no clamping
  nn::Tensor adv = attack.perturb(*model, inputs, Goal{}, budget, bounds, rng);
  EXPECT_NEAR(realised_norm(adv, inputs.current_obs, Budget::Norm::kL2), 0.7,
              1e-4);
}

TEST(Attack, FgsmIncreasesUntargetedLoss) {
  auto model = trained_toy_model();
  util::Rng rng(6);
  std::size_t improved = 0, total = 0;
  for (int trial = 0; trial < 12; ++trial) {
    CraftInputs inputs = toy_inputs(rng);
    const auto pred = predict_actions(*model, inputs);
    std::vector<std::size_t> targets{pred[0]};
    const float before = nn::softmax_cross_entropy(
                             model->forward(inputs.action_history,
                                            inputs.obs_history,
                                            inputs.current_obs),
                             targets)
                             .loss;
    FgsmAttack attack;
    Budget budget{Budget::Norm::kLinf, 0.2f};
    env::ObservationBounds bounds{-10.0f, 10.0f};
    nn::Tensor adv =
        attack.perturb(*model, inputs, Goal{}, budget, bounds, rng);
    const float after =
        nn::softmax_cross_entropy(model->forward(inputs.action_history,
                                                 inputs.obs_history, adv),
                                  targets)
            .loss;
    if (after > before) ++improved;
    ++total;
  }
  // One FGSM step should raise the loss on the predicted class in the vast
  // majority of random states.
  EXPECT_GE(improved * 10, total * 8);
}

TEST(Attack, TargetedPgdReachesTargetOnToyModel) {
  auto model = trained_toy_model();
  util::Rng rng(7);
  std::size_t hits = 0, total = 0;
  PgdAttack attack(20, 0.2f);
  Budget budget{Budget::Norm::kL2, 3.0f};  // generous budget on a toy task
  env::ObservationBounds bounds{-10.0f, 10.0f};
  for (int trial = 0; trial < 10; ++trial) {
    CraftInputs inputs = toy_inputs(rng);
    const auto pred = predict_actions(*model, inputs);
    Goal goal;
    goal.mode = Goal::Mode::kTargeted;
    goal.position = 0;
    goal.target_action = 1 - pred[0];
    nn::Tensor adv = attack.perturb(*model, inputs, goal, budget, bounds, rng);
    CraftInputs perturbed = inputs;
    perturbed.current_obs = adv;
    if (predict_actions(*model, perturbed)[0] == goal.target_action) ++hits;
    ++total;
  }
  EXPECT_GE(hits * 10, total * 7);
}

TEST(Attack, PgdBeatsOrMatchesFgsmOnFlipRate) {
  auto model = trained_toy_model();
  util::Rng rng(8);
  Budget budget{Budget::Norm::kL2, 0.8f};
  env::ObservationBounds bounds{-10.0f, 10.0f};
  auto flip_rate = [&](Attack& attack) {
    util::Rng local(99);
    std::size_t flips = 0;
    const int trials = 20;
    for (int t = 0; t < trials; ++t) {
      CraftInputs inputs = toy_inputs(local);
      const auto pred = predict_actions(*model, inputs);
      nn::Tensor adv =
          attack.perturb(*model, inputs, Goal{}, budget, bounds, local);
      CraftInputs perturbed = inputs;
      perturbed.current_obs = adv;
      if (predict_actions(*model, perturbed)[0] != pred[0]) ++flips;
    }
    return static_cast<double>(flips) / trials;
  };
  FgsmAttack fgsm;
  PgdAttack pgd(15, 0.25f);
  EXPECT_GE(flip_rate(pgd) + 1e-9, flip_rate(fgsm) - 0.10);
}

TEST(Attack, GradientAttacksBeatGaussianOnFlipRate) {
  // Figure 7's core claim at unit scale: same L2 budget, gradient attacks
  // flip the (approximated) model's decision more often than noise.
  auto model = trained_toy_model();
  Budget budget{Budget::Norm::kL2, 0.8f};
  env::ObservationBounds bounds{-10.0f, 10.0f};
  auto flip_rate = [&](Attack& attack) {
    util::Rng local(123);
    std::size_t flips = 0;
    const int trials = 30;
    for (int t = 0; t < trials; ++t) {
      CraftInputs inputs = toy_inputs(local);
      const auto pred = predict_actions(*model, inputs);
      nn::Tensor adv =
          attack.perturb(*model, inputs, Goal{}, budget, bounds, local);
      CraftInputs perturbed = inputs;
      perturbed.current_obs = adv;
      if (predict_actions(*model, perturbed)[0] != pred[0]) ++flips;
    }
    return static_cast<double>(flips) / trials;
  };
  GaussianAttack gaussian;
  FgsmAttack fgsm;
  EXPECT_GT(flip_rate(fgsm), flip_rate(gaussian));
}

TEST(Attack, SequencePositionTargeting) {
  auto model = trained_toy_model(/*m=*/3);
  util::Rng rng(9);
  CraftInputs inputs = toy_inputs(rng);
  // Gradient w.r.t. s_t differs by attacked position: position 0 is driven
  // directly by the current observation, later positions via the decoder.
  nn::Tensor g0 =
      current_obs_gradient(*model, inputs, 0, 0, inputs.current_obs);
  nn::Tensor g2 =
      current_obs_gradient(*model, inputs, 2, 0, inputs.current_obs);
  bool differs = false;
  for (std::size_t i = 0; i < g0.size(); ++i)
    if (std::abs(g0[i] - g2[i]) > 1e-7f) differs = true;
  EXPECT_TRUE(differs);
  EXPECT_THROW(current_obs_gradient(*model, inputs, 3, 0, inputs.current_obs),
               std::logic_error);
}

TEST(Attack, FactoryRoundTrip) {
  for (Kind k : {Kind::kGaussian, Kind::kFgsm, Kind::kPgd, Kind::kCw}) {
    EXPECT_EQ(parse_attack(attack_name(k)), k);
    EXPECT_EQ(make_attack(k)->name(), attack_name(k));
  }
  EXPECT_THROW(parse_attack("deepfool"), std::invalid_argument);
}

TEST(Attack, CwRespectsBudgetAndBounds) {
  auto model = trained_toy_model();
  util::Rng rng(11);
  CwAttack cw(15, 2.0f, 0.1f);
  Budget budget{Budget::Norm::kL2, 0.8f};
  // Bounds must contain the clean observation (they do in the harness:
  // observations come from the environment's own valid range).
  env::ObservationBounds bounds{-6.0f, 6.0f};
  for (int trial = 0; trial < 5; ++trial) {
    CraftInputs inputs = toy_inputs(rng);
    nn::Tensor adv = cw.perturb(*model, inputs, Goal{}, budget, bounds, rng);
    EXPECT_LE(realised_norm(adv, inputs.current_obs, Budget::Norm::kL2),
              0.8 * 1.001);
    for (float x : adv.data()) {
      EXPECT_GE(x, -6.0f);
      EXPECT_LE(x, 6.0f);
    }
  }
}

TEST(Attack, CwFlipsPredictionsOnToyModel) {
  auto model = trained_toy_model();
  util::Rng rng(12);
  CwAttack cw(25, 4.0f, 0.1f);
  Budget budget{Budget::Norm::kL2, 2.0f};
  env::ObservationBounds bounds{-10.0f, 10.0f};
  std::size_t flips = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    CraftInputs inputs = toy_inputs(rng);
    const auto pred = predict_actions(*model, inputs);
    nn::Tensor adv = cw.perturb(*model, inputs, Goal{}, budget, bounds, rng);
    CraftInputs perturbed = inputs;
    perturbed.current_obs = adv;
    if (predict_actions(*model, perturbed)[0] != pred[0]) ++flips;
  }
  EXPECT_GE(flips * 10, trials * 6);
}

TEST(Attack, CwFindsSmallerPerturbationsThanFgsm) {
  // The defining CW property: the L2 term in its objective pulls the
  // perturbation back toward zero once the flip is confident, while FGSM
  // always spends the whole budget.
  auto model = trained_toy_model();
  util::Rng rng(13);
  CwAttack cw(25, 4.0f, 0.1f);
  FgsmAttack fgsm;
  Budget budget{Budget::Norm::kL2, 2.0f};
  env::ObservationBounds bounds{-10.0f, 10.0f};
  double cw_total = 0.0, fgsm_total = 0.0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    CraftInputs inputs = toy_inputs(rng);
    nn::Tensor a = cw.perturb(*model, inputs, Goal{}, budget, bounds, rng);
    nn::Tensor b = fgsm.perturb(*model, inputs, Goal{}, budget, bounds, rng);
    cw_total += realised_norm(a, inputs.current_obs, Budget::Norm::kL2);
    fgsm_total += realised_norm(b, inputs.current_obs, Budget::Norm::kL2);
  }
  EXPECT_LT(cw_total, fgsm_total);
}

TEST(Attack, CwInvalidConfigThrows) {
  EXPECT_THROW(CwAttack(0), std::logic_error);
  EXPECT_THROW(CwAttack(5, 1.0f, 0.0f), std::logic_error);
}

TEST(Attack, LogitHelpers) {
  auto model = trained_toy_model(/*m=*/2);
  util::Rng rng(14);
  CraftInputs inputs = toy_inputs(rng);
  const auto logits = position_logits(*model, inputs, 1, inputs.current_obs);
  EXPECT_EQ(logits.size(), 2u);
  EXPECT_THROW(position_logits(*model, inputs, 2, inputs.current_obs),
               std::logic_error);
  nn::Tensor g =
      logit_diff_gradient(*model, inputs, 0, 0, 1, inputs.current_obs);
  EXPECT_TRUE(g.same_shape(inputs.current_obs));
  // Same-index difference has zero gradient.
  nn::Tensor zero =
      logit_diff_gradient(*model, inputs, 0, 1, 1, inputs.current_obs);
  for (float x : zero.data()) EXPECT_FLOAT_EQ(x, 0.0f);
}

TEST(Attack, PgdInvalidConfigThrows) {
  EXPECT_THROW(PgdAttack(0, 0.1f), std::logic_error);
  EXPECT_THROW(PgdAttack(5, 0.0f), std::logic_error);
}

TEST(Attack, PredictActionsShape) {
  auto model = trained_toy_model(/*m=*/3);
  util::Rng rng(10);
  CraftInputs inputs = toy_inputs(rng);
  const auto actions = predict_actions(*model, inputs);
  EXPECT_EQ(actions.size(), 3u);
  for (std::size_t a : actions) EXPECT_LT(a, 2u);
}

/// Restores the process-wide craft-cache flag on scope exit so a failing
/// assertion can't leak a disabled cache into later tests.
class CraftCacheGuard {
 public:
  CraftCacheGuard() : saved_(craft_cache_enabled()) {}
  ~CraftCacheGuard() { set_craft_cache_enabled(saved_); }

 private:
  bool saved_;
};

TEST(Attack, CraftContextMatchesFreeHelpersBitExactly) {
  CraftCacheGuard guard;
  set_craft_cache_enabled(true);
  auto model = trained_toy_model(/*m=*/2);
  util::Rng rng(21);
  CraftInputs inputs = toy_inputs(rng);
  CraftContext ctx(*model, inputs);

  EXPECT_EQ(ctx.predict_actions(), predict_actions(*model, inputs));
  const auto cached_row = ctx.position_logits(1, inputs.current_obs);
  const auto full_row = position_logits(*model, inputs, 1, inputs.current_obs);
  ASSERT_EQ(cached_row.size(), full_row.size());
  for (std::size_t i = 0; i < full_row.size(); ++i)
    EXPECT_EQ(cached_row[i], full_row[i]) << "logit " << i;

  nn::Tensor cached_ce = ctx.current_obs_gradient(0, 1, inputs.current_obs);
  nn::Tensor full_ce =
      current_obs_gradient(*model, inputs, 0, 1, inputs.current_obs);
  ASSERT_TRUE(cached_ce.same_shape(full_ce));
  for (std::size_t i = 0; i < full_ce.size(); ++i)
    EXPECT_EQ(cached_ce[i], full_ce[i]) << "CE grad " << i;

  nn::Tensor cached_diff = ctx.logit_diff_gradient(0, 0, 1, inputs.current_obs);
  nn::Tensor full_diff =
      logit_diff_gradient(*model, inputs, 0, 0, 1, inputs.current_obs);
  ASSERT_TRUE(cached_diff.same_shape(full_diff));
  for (std::size_t i = 0; i < full_diff.size(); ++i)
    EXPECT_EQ(cached_diff[i], full_diff[i]) << "diff grad " << i;
}

TEST(Attack, AnchoredGradientFusedProbeMatchesSeparateQueriesBitExactly) {
  // A single-participant planner flushes inline on every submit, so the
  // fused kAnchorGradient probe can be exercised synchronously and compared
  // against a fresh context asking predict + gradient separately.
  CraftCacheGuard guard;
  set_craft_cache_enabled(true);
  auto model = trained_toy_model(/*m=*/2);
  util::Rng rng(23);
  CraftInputs inputs = toy_inputs(rng);

  std::vector<std::size_t> ref_predicted;
  nn::Tensor ref_grad;
  {
    CraftContext ref(*model, inputs);
    ref_predicted = ref.predict_actions();
    ref_grad = ref.current_obs_gradient(1, ref_predicted[1],
                                        inputs.current_obs);
  }

  BatchedCraftPlanner planner(*model);
  BatchedCraftPlanner::Participant participant(planner);
  CraftContext fused(planner, inputs);
  auto [predicted, grad] = fused.anchored_gradient(1, inputs.current_obs);
  EXPECT_EQ(predicted, ref_predicted);
  ASSERT_TRUE(grad.same_shape(ref_grad));
  for (std::size_t i = 0; i < grad.size(); ++i)
    EXPECT_EQ(grad[i], ref_grad[i]) << "fused grad " << i;

  // Out-of-range goal positions fail identically to the unfused resolver.
  EXPECT_THROW(fused.anchored_gradient(2, inputs.current_obs),
               std::logic_error);
  CraftContext unfused(*model, inputs);
  EXPECT_THROW(unfused.anchored_gradient(2, inputs.current_obs),
               std::logic_error);
}

TEST(Attack, EveryAttackBitIdenticalWithCacheOnAndOff) {
  // The uncached path is the parity oracle: every built-in attack must emit
  // the exact same bytes whether crafting runs cached or not.
  CraftCacheGuard guard;
  auto model = trained_toy_model(/*m=*/2);
  util::Rng rng(22);
  CraftInputs inputs = toy_inputs(rng);
  for (Kind kind :
       {Kind::kGaussian, Kind::kFgsm, Kind::kPgd, Kind::kCw, Kind::kJsma}) {
    for (auto norm : {Budget::Norm::kL2, Budget::Norm::kLinf}) {
      Budget budget{norm, 0.5f};
      env::ObservationBounds bounds{-10.0f, 10.0f};
      Goal goal;
      goal.position = 1;
      AttackPtr attack = make_attack(kind);
      set_craft_cache_enabled(true);
      util::Rng rng_on(7);
      nn::Tensor on =
          attack->perturb(*model, inputs, goal, budget, bounds, rng_on);
      set_craft_cache_enabled(false);
      util::Rng rng_off(7);
      nn::Tensor off =
          attack->perturb(*model, inputs, goal, budget, bounds, rng_off);
      ASSERT_TRUE(on.same_shape(off));
      for (std::size_t i = 0; i < on.size(); ++i)
        ASSERT_EQ(on[i], off[i])
            << attack_name(kind) << " diverges at element " << i;
    }
  }
}

}  // namespace
}  // namespace rlattack::attack
