// CLI argument parsing and episode-trace serialization.
#include <gtest/gtest.h>

#include <filesystem>

#include "rlattack/env/cartpole.hpp"
#include <fstream>
#include "rlattack/env/trace_io.hpp"
#include "rlattack/rl/factory.hpp"
#include "rlattack/rl/trainer.hpp"
#include "rlattack/util/cli.hpp"

namespace rlattack {
namespace {

util::CliArgs parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv(tokens);
  return util::CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, SubcommandAndOptions) {
  auto args = parse({"rlattack", "train", "--game", "cartpole",
                     "--episodes=250", "--verbose"});
  EXPECT_EQ(args.command(), "train");
  EXPECT_EQ(args.get("game", ""), "cartpole");
  EXPECT_EQ(args.get_int("episodes", 0), 250);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("verbose", ""), "true");
}

TEST(CliArgs, FallbacksApply) {
  auto args = parse({"rlattack", "eval"});
  EXPECT_EQ(args.get("game", "cartpole"), "cartpole");
  EXPECT_DOUBLE_EQ(args.get_double("eps", 0.5), 0.5);
  EXPECT_EQ(args.get_int("runs", 7), 7);
  EXPECT_FALSE(args.has("game"));
}

TEST(CliArgs, PositionalArguments) {
  auto args = parse({"rlattack", "attack", "extra1", "--eps", "2.0",
                     "extra2"});
  EXPECT_EQ(args.command(), "attack");
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "extra1");
  EXPECT_DOUBLE_EQ(args.get_double("eps", 0.0), 2.0);
}

TEST(CliArgs, SeparateValueConsumesNextToken) {
  auto args = parse({"p", "cmd", "--key", "value", "--flag", "--num", "3"});
  EXPECT_EQ(args.get("key", ""), "value");
  EXPECT_TRUE(args.has("flag"));
  EXPECT_EQ(args.get_int("num", 0), 3);
}

TEST(CliArgs, MalformedInputsThrow) {
  EXPECT_THROW(parse({"p", "cmd", "--"}), std::invalid_argument);
  auto args = parse({"p", "cmd", "--eps", "abc"});
  EXPECT_THROW(args.get_double("eps", 0.0), std::invalid_argument);
  EXPECT_THROW(args.get_int("eps", 0), std::invalid_argument);
}

TEST(CliArgs, KeysLists) {
  auto args = parse({"p", "cmd", "--a=1", "--b=2"});
  const auto keys = args.keys();
  EXPECT_EQ(keys.size(), 2u);
}

TEST(TraceIo, RoundTripPreservesEverything) {
  env::CartPole env(env::CartPole::Config{}, 3);
  rl::AgentPtr agent = rl::make_agent(rl::Algorithm::kDqn,
                                      rl::ObsSpec{{4}}, 2, 3);
  auto episodes = rl::collect_episodes(*agent, env, 3, 3);
  const std::string path = ::testing::TempDir() + "rlattack_traces.rltr";
  ASSERT_TRUE(env::save_episodes(episodes, path));
  auto loaded = env::load_episodes(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), episodes.size());
  for (std::size_t e = 0; e < episodes.size(); ++e) {
    ASSERT_EQ((*loaded)[e].steps.size(), episodes[e].steps.size());
    for (std::size_t t = 0; t < episodes[e].steps.size(); ++t) {
      const auto& orig = episodes[e].steps[t];
      const auto& got = (*loaded)[e].steps[t];
      EXPECT_EQ(got.action, orig.action);
      EXPECT_DOUBLE_EQ(got.reward, orig.reward);
      EXPECT_EQ(got.done, orig.done);
      ASSERT_EQ(got.observation.size(), orig.observation.size());
      for (std::size_t i = 0; i < orig.observation.size(); ++i)
        EXPECT_FLOAT_EQ(got.observation[i], orig.observation[i]);
    }
  }
  std::filesystem::remove(path);
}

TEST(TraceIo, EmptySetRoundTrips) {
  const std::string path = ::testing::TempDir() + "rlattack_empty.rltr";
  ASSERT_TRUE(env::save_episodes({}, path));
  auto loaded = env::load_episodes(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
  std::filesystem::remove(path);
}

TEST(TraceIo, MissingAndCorruptFilesFail) {
  EXPECT_FALSE(env::load_episodes("/nonexistent.rltr").has_value());
  const std::string path = ::testing::TempDir() + "rlattack_corrupt.rltr";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTATRACE";
  }
  EXPECT_FALSE(env::load_episodes(path).has_value());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace rlattack
