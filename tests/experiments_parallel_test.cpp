// Determinism contract of the episode-parallel experiment layer: every
// driver must produce bit-identical result rows at experiment_threads = 1
// (the historical serial path: original victim/model, no pool dispatch)
// and = 4 (cloned workers pulling jobs from the global pool). Registered
// with CTest twice — RLATTACK_THREADS=1 and =4 — like kernels_test, so the
// comparison runs both with a serial pool (clone/index bookkeeping only)
// and with real concurrent workers.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "rlattack/attack/batch_planner.hpp"
#include "rlattack/core/experiments.hpp"
#include "rlattack/obs/forensics.hpp"
#include "rlattack/obs/metrics.hpp"
#include "rlattack/obs/trace.hpp"
#include "rlattack/rl/agent.hpp"
#include "rlattack/seq2seq/model.hpp"

namespace rlattack::core {
namespace {

class ExperimentsParallelTest : public ::testing::Test {
 protected:
  // One artefact cache for the whole suite: the first test trains the tiny
  // victims/approximators, later tests load them from checkpoints.
  static void SetUpTestSuite() {
    // Per-process path: CTest runs the .threads1 and .threads4 registrations
    // of this binary concurrently, and they must not share (and delete) one
    // training cache under each other.
    cache_ = ::testing::TempDir() + "rlattack_parallel_cache_" +
             std::to_string(::getpid());
    std::filesystem::remove_all(cache_);
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(cache_);
    std::filesystem::remove_all(cache_ + "_timebomb");
  }

  static Zoo make_tiny_zoo() {
    ZooConfig cfg;
    cfg.cache_dir = cache_;
    cfg.scale = 0.02;  // ~8 training episodes, 2 seq2seq epochs
    cfg.seed = 7;
    cfg.verbose = false;
    return Zoo(cfg);
  }

  static std::string cache_;
};

std::string ExperimentsParallelTest::cache_;

TEST_F(ExperimentsParallelTest, RewardExperimentBitIdenticalAcrossThreads) {
  Zoo zoo = make_tiny_zoo();
  RewardExperimentConfig cfg;
  cfg.game = env::Game::kCartPole;
  cfg.algorithm = rl::Algorithm::kDqn;
  cfg.attacks = {attack::Kind::kGaussian, attack::Kind::kFgsm};
  cfg.l2_budgets = {0.0, 0.5};
  cfg.runs = 3;
  cfg.seed = 1000;

  zoo.set_experiment_threads(1);
  ExperimentTiming serial_timing;
  const auto serial = run_reward_experiment(zoo, cfg, &serial_timing);
  zoo.set_experiment_threads(4);
  ExperimentTiming parallel_timing;
  const auto parallel = run_reward_experiment(zoo, cfg, &parallel_timing);

  EXPECT_EQ(serial_timing.threads, 1u);
  EXPECT_EQ(parallel_timing.threads, 4u);
  EXPECT_EQ(parallel_timing.episodes, 2u * 2u * 3u);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].attack, parallel[i].attack) << "row " << i;
    EXPECT_EQ(serial[i].l2_budget, parallel[i].l2_budget) << "row " << i;
    EXPECT_EQ(serial[i].mean_reward, parallel[i].mean_reward) << "row " << i;
    EXPECT_EQ(serial[i].stddev_reward, parallel[i].stddev_reward)
        << "row " << i;
    EXPECT_EQ(serial[i].mean_realised_l2, parallel[i].mean_realised_l2)
        << "row " << i;
    EXPECT_EQ(serial[i].sequence_variant, parallel[i].sequence_variant)
        << "row " << i;
  }
}

TEST_F(ExperimentsParallelTest,
       TransferabilityExperimentBitIdenticalAcrossThreads) {
  Zoo zoo = make_tiny_zoo();
  TransferabilityConfig cfg;
  cfg.game = env::Game::kCartPole;
  cfg.algorithm = rl::Algorithm::kDqn;
  cfg.attacks = {attack::Kind::kGaussian, attack::Kind::kFgsm};
  cfg.l2_budgets = {0.5, 1.0};
  cfg.runs = 3;
  cfg.seed = 2000;

  zoo.set_experiment_threads(1);
  const auto serial = run_transferability_experiment(zoo, cfg);
  zoo.set_experiment_threads(4);
  const auto parallel = run_transferability_experiment(zoo, cfg);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].attack, parallel[i].attack) << "row " << i;
    EXPECT_EQ(serial[i].l2_budget, parallel[i].l2_budget) << "row " << i;
    EXPECT_EQ(serial[i].transfer_rate, parallel[i].transfer_rate)
        << "row " << i;
    EXPECT_EQ(serial[i].samples, parallel[i].samples) << "row " << i;
  }
}

TEST_F(ExperimentsParallelTest, TimebombExperimentBitIdenticalAcrossThreads) {
  // The time-bomb driver trains the m = max(delay)+1 approximator, whose
  // length search needs observation episodes of >= n + m steps — more than
  // the 0.02 zoo's single short episode provides. Use a slightly larger zoo
  // with its own cache (checkpoint keys do not encode the scale).
  ZooConfig zcfg;
  zcfg.cache_dir = cache_ + "_timebomb";
  zcfg.scale = 0.1;
  zcfg.seed = 7;
  zcfg.verbose = false;
  Zoo zoo(zcfg);
  TimeBombConfig cfg;
  cfg.game = env::Game::kCartPole;
  cfg.victim_algorithm = rl::Algorithm::kDqn;
  cfg.approximator_source = rl::Algorithm::kDqn;
  cfg.attack_kind = attack::Kind::kFgsm;
  cfg.epsilon_linf = 0.3f;
  cfg.delays = {1, 2, 3};
  cfg.runs = 3;
  cfg.seed = 3000;

  zoo.set_experiment_threads(1);
  const auto serial = run_timebomb_experiment(zoo, cfg);
  zoo.set_experiment_threads(4);
  ExperimentTiming timing;
  const auto parallel = run_timebomb_experiment(zoo, cfg, &timing);

  // 3 delays x 3 runs x (clean + attacked) episodes.
  EXPECT_EQ(timing.episodes, 3u * 3u * 2u);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].delay, parallel[i].delay) << "row " << i;
    EXPECT_EQ(serial[i].trials, parallel[i].trials) << "row " << i;
    EXPECT_EQ(serial[i].success_rate, parallel[i].success_rate)
        << "row " << i;
  }
}

TEST_F(ExperimentsParallelTest, ZooEpisodeLoopsBitIdenticalAcrossThreads) {
  // Zoo::victim_score and Zoo::episodes fan their independently seeded
  // episodes over the same runner; scores and traces must not depend on
  // the worker count.
  Zoo serial_zoo = make_tiny_zoo();
  serial_zoo.set_experiment_threads(1);
  Zoo parallel_zoo = make_tiny_zoo();  // same cache: identical artefacts
  parallel_zoo.set_experiment_threads(4);

  const double serial_score =
      serial_zoo.victim_score(env::Game::kCartPole, rl::Algorithm::kDqn, 6);
  const double parallel_score =
      parallel_zoo.victim_score(env::Game::kCartPole, rl::Algorithm::kDqn, 6);
  EXPECT_EQ(serial_score, parallel_score);

  const auto& serial_eps =
      serial_zoo.episodes(env::Game::kCartPole, rl::Algorithm::kDqn);
  const auto& parallel_eps =
      parallel_zoo.episodes(env::Game::kCartPole, rl::Algorithm::kDqn);
  ASSERT_EQ(serial_eps.size(), parallel_eps.size());
  for (std::size_t e = 0; e < serial_eps.size(); ++e) {
    ASSERT_EQ(serial_eps[e].steps.size(), parallel_eps[e].steps.size())
        << "episode " << e;
    for (std::size_t s = 0; s < serial_eps[e].steps.size(); ++s) {
      const auto& a = serial_eps[e].steps[s];
      const auto& b = parallel_eps[e].steps[s];
      EXPECT_EQ(a.action, b.action) << "episode " << e << " step " << s;
      EXPECT_EQ(a.reward, b.reward) << "episode " << e << " step " << s;
      EXPECT_EQ(a.done, b.done) << "episode " << e << " step " << s;
      ASSERT_EQ(a.observation.size(), b.observation.size());
      for (std::size_t i = 0; i < a.observation.size(); ++i)
        ASSERT_EQ(a.observation[i], b.observation[i])
            << "episode " << e << " step " << s << " obs " << i;
    }
  }
}

TEST_F(ExperimentsParallelTest, CloneContractHoldsForAgentsAndModel) {
  Zoo zoo = make_tiny_zoo();
  rl::Agent& victim = zoo.victim(env::Game::kCartPole, rl::Algorithm::kDqn);
  rl::AgentPtr copy = victim.clone();
  nn::Tensor probe({4}, {0.05f, -0.2f, 0.11f, 0.4f});
  EXPECT_EQ(copy->action_count(), victim.action_count());
  EXPECT_EQ(copy->algorithm(), victim.algorithm());
  EXPECT_EQ(copy->act(probe, false), victim.act(probe, false));

  ApproximatorInfo approx =
      zoo.approximator(env::Game::kCartPole, rl::Algorithm::kDqn, 1);
  auto model_copy = approx.model->clone();
  const auto& mc = approx.model->config();
  nn::Tensor actions({1, mc.input_steps, mc.actions});
  nn::Tensor history({1, mc.input_steps, mc.frame_size()});
  nn::Tensor current({1, mc.frame_size()});
  for (std::size_t i = 0; i < history.size(); ++i)
    history[i] = 0.01f * static_cast<float>(i % 17);
  for (std::size_t i = 0; i < current.size(); ++i)
    current[i] = 0.3f - 0.1f * static_cast<float>(i);
  nn::Tensor original_out = approx.model->forward(actions, history, current);
  nn::Tensor clone_out = model_copy->forward(actions, history, current);
  ASSERT_EQ(original_out.size(), clone_out.size());
  for (std::size_t i = 0; i < original_out.size(); ++i)
    ASSERT_EQ(original_out[i], clone_out[i]) << "logit " << i;
}

// Telemetry must only observe: result rows are bit-identical with metrics
// enabled and disabled, at both experiment_threads settings. (Registered
// under RLATTACK_THREADS=1 and =4 like the rest of this suite, so the
// global-pool dimension is covered too.)
TEST_F(ExperimentsParallelTest, MetricsOnOffRowsBitIdentical) {
  const bool saved = obs::metrics_enabled();
  Zoo zoo = make_tiny_zoo();
  RewardExperimentConfig cfg;
  cfg.game = env::Game::kCartPole;
  cfg.algorithm = rl::Algorithm::kDqn;
  cfg.attacks = {attack::Kind::kFgsm, attack::Kind::kPgd};
  cfg.l2_budgets = {0.0, 0.5};
  cfg.runs = 3;
  cfg.seed = 1000;

  std::vector<std::vector<RewardPoint>> results;  // [on/off][threads 1/4]
  for (bool enabled : {true, false}) {
    obs::set_metrics_enabled(enabled);
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      zoo.set_experiment_threads(threads);
      results.push_back(run_reward_experiment(zoo, cfg, nullptr));
    }
  }
  obs::set_metrics_enabled(saved);

  const auto& reference = results.front();
  for (std::size_t v = 1; v < results.size(); ++v) {
    ASSERT_EQ(results[v].size(), reference.size()) << "variant " << v;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(results[v][i].attack, reference[i].attack)
          << "variant " << v << " row " << i;
      EXPECT_EQ(results[v][i].l2_budget, reference[i].l2_budget)
          << "variant " << v << " row " << i;
      EXPECT_EQ(results[v][i].mean_reward, reference[i].mean_reward)
          << "variant " << v << " row " << i;
      EXPECT_EQ(results[v][i].stddev_reward, reference[i].stddev_reward)
          << "variant " << v << " row " << i;
      EXPECT_EQ(results[v][i].mean_realised_l2, reference[i].mean_realised_l2)
          << "variant " << v << " row " << i;
    }
  }
}

// The tracing layer has the same only-observe contract as metrics: result
// rows must be bit-identical with tracing enabled and disabled, at both
// experiment_threads settings. A disabled TraceScope takes no clock reading;
// an enabled one records wall-clock but must never feed back into RNG,
// environment or model state.
TEST_F(ExperimentsParallelTest, TraceOnOffRowsBitIdentical) {
  const bool saved = obs::trace_enabled();
  Zoo zoo = make_tiny_zoo();
  RewardExperimentConfig cfg;
  cfg.game = env::Game::kCartPole;
  cfg.algorithm = rl::Algorithm::kDqn;
  cfg.attacks = {attack::Kind::kFgsm, attack::Kind::kPgd};
  cfg.l2_budgets = {0.0, 0.5};
  cfg.runs = 3;
  cfg.seed = 1500;

  std::vector<std::vector<RewardPoint>> results;  // [on/off][threads 1/4]
  for (bool enabled : {true, false}) {
    obs::set_trace_enabled(enabled);
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      zoo.set_experiment_threads(threads);
      results.push_back(run_reward_experiment(zoo, cfg, nullptr));
    }
  }
  obs::set_trace_enabled(saved);
  // The traced variants actually recorded a timeline (episode.run spans at
  // minimum) — this test must not pass vacuously with tracing broken.
  EXPECT_FALSE(obs::TraceLog::global().events().empty());
  obs::TraceLog::global().reset();

  const auto& reference = results.front();
  for (std::size_t v = 1; v < results.size(); ++v) {
    ASSERT_EQ(results[v].size(), reference.size()) << "variant " << v;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(results[v][i].attack, reference[i].attack)
          << "variant " << v << " row " << i;
      EXPECT_EQ(results[v][i].l2_budget, reference[i].l2_budget)
          << "variant " << v << " row " << i;
      EXPECT_EQ(results[v][i].mean_reward, reference[i].mean_reward)
          << "variant " << v << " row " << i;
      EXPECT_EQ(results[v][i].stddev_reward, reference[i].stddev_reward)
          << "variant " << v << " row " << i;
      EXPECT_EQ(results[v][i].mean_realised_l2, reference[i].mean_realised_l2)
          << "variant " << v << " row " << i;
    }
  }
}

// The craft-context cache (encode (A_{t-1}, S_{t-1}) once per attack,
// iterate only the s_t branch) must be invisible in every experiment
// artefact: all iterative-attack rows are byte-identical with the cache on
// vs off, at experiment threads 1 and 4. The uncached path is the oracle.
TEST_F(ExperimentsParallelTest, CraftCacheOnOffRowsBitIdentical) {
  const bool saved = attack::craft_cache_enabled();
  Zoo zoo = make_tiny_zoo();
  RewardExperimentConfig cfg;
  cfg.game = env::Game::kCartPole;
  cfg.algorithm = rl::Algorithm::kDqn;
  // The iterative attacks reuse one encoding the most — PGD/CW/JSMA are
  // exactly where a cache bug would surface as drifting rows.
  cfg.attacks = {attack::Kind::kPgd, attack::Kind::kCw, attack::Kind::kJsma};
  cfg.l2_budgets = {0.0, 0.5};
  cfg.runs = 3;
  cfg.seed = 2000;

  std::vector<std::vector<RewardPoint>> results;  // [on/off][threads 1/4]
  for (bool enabled : {true, false}) {
    attack::set_craft_cache_enabled(enabled);
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      zoo.set_experiment_threads(threads);
      results.push_back(run_reward_experiment(zoo, cfg, nullptr));
    }
  }
  attack::set_craft_cache_enabled(saved);

  const auto& reference = results.front();
  for (std::size_t v = 1; v < results.size(); ++v) {
    ASSERT_EQ(results[v].size(), reference.size()) << "variant " << v;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(results[v][i].attack, reference[i].attack)
          << "variant " << v << " row " << i;
      EXPECT_EQ(results[v][i].l2_budget, reference[i].l2_budget)
          << "variant " << v << " row " << i;
      EXPECT_EQ(results[v][i].mean_reward, reference[i].mean_reward)
          << "variant " << v << " row " << i;
      EXPECT_EQ(results[v][i].stddev_reward, reference[i].stddev_reward)
          << "variant " << v << " row " << i;
      EXPECT_EQ(results[v][i].mean_realised_l2, reference[i].mean_realised_l2)
          << "variant " << v << " row " << i;
    }
  }
}

// Batched craft substrate on/off parity: routing every concurrent
// episode's approximator queries through one shared-GEMM planner flush must
// leave every experiment row bit-identical to the per-episode model path —
// across thread counts, and regardless of how the rendezvous happened to
// interleave the probes.
TEST_F(ExperimentsParallelTest, CraftBatchOnOffRowsBitIdentical) {
  const bool saved = attack::craft_batch_enabled();
  Zoo zoo = make_tiny_zoo();
  RewardExperimentConfig cfg;
  cfg.game = env::Game::kCartPole;
  cfg.algorithm = rl::Algorithm::kDqn;
  // One single-query attack (FGSM), one iterative (PGD) and the
  // query-free Gaussian control: flushes mix enrolled probe kinds with
  // episodes that never enroll at all.
  cfg.attacks = {attack::Kind::kGaussian, attack::Kind::kFgsm,
                 attack::Kind::kPgd};
  cfg.l2_budgets = {0.0, 0.5};
  cfg.runs = 3;
  cfg.seed = 3000;

  std::vector<std::vector<RewardPoint>> results;  // [on/off][threads 1/4]
  std::vector<std::size_t> craft_batches;
  for (bool enabled : {true, false}) {
    attack::set_craft_batch_enabled(enabled);
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      zoo.set_experiment_threads(threads);
      ExperimentTiming timing;
      results.push_back(run_reward_experiment(zoo, cfg, &timing));
      craft_batches.push_back(timing.craft_batch);
    }
  }
  attack::set_craft_batch_enabled(saved);

  // The substrate actually engaged when enabled and stood down when killed.
  EXPECT_GT(craft_batches[0], 1u);
  EXPECT_GT(craft_batches[1], 1u);
  EXPECT_EQ(craft_batches[2], 0u);
  EXPECT_EQ(craft_batches[3], 0u);

  const auto& reference = results.front();
  for (std::size_t v = 1; v < results.size(); ++v) {
    ASSERT_EQ(results[v].size(), reference.size()) << "variant " << v;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(results[v][i].attack, reference[i].attack)
          << "variant " << v << " row " << i;
      EXPECT_EQ(results[v][i].l2_budget, reference[i].l2_budget)
          << "variant " << v << " row " << i;
      EXPECT_EQ(results[v][i].mean_reward, reference[i].mean_reward)
          << "variant " << v << " row " << i;
      EXPECT_EQ(results[v][i].stddev_reward, reference[i].stddev_reward)
          << "variant " << v << " row " << i;
      EXPECT_EQ(results[v][i].mean_realised_l2, reference[i].mean_realised_l2)
          << "variant " << v << " row " << i;
    }
  }
}

// Episode-batched evaluation on/off parity: fusing every concurrent
// episode's per-step victim policy query (and its approximator probes) into
// shared rendezvous forwards must leave every experiment row bit-identical
// to the single-row paths — at experiment threads 1 and 4. The driver-level
// timing also has to show the substrate actually engaged when enabled and
// stood down under the RLATTACK_EVAL_BATCH kill switch.
TEST_F(ExperimentsParallelTest, EvalBatchOnOffRowsBitIdentical) {
  const bool saved = attack::eval_batch_enabled();
  Zoo zoo = make_tiny_zoo();
  RewardExperimentConfig cfg;
  cfg.game = env::Game::kCartPole;
  cfg.algorithm = rl::Algorithm::kDqn;
  // Query-free Gaussian, single-query FGSM and iterative PGD: the eval
  // rendezvous must stay bit-identical whether the enrolled episodes also
  // craft through the planner or only evaluate through it.
  cfg.attacks = {attack::Kind::kGaussian, attack::Kind::kFgsm,
                 attack::Kind::kPgd};
  cfg.l2_budgets = {0.0, 0.5};
  cfg.runs = 3;
  cfg.seed = 3000;

  std::vector<std::vector<RewardPoint>> results;  // [on/off][threads 1/4]
  std::vector<std::size_t> eval_batches;
  for (bool enabled : {true, false}) {
    attack::set_eval_batch_enabled(enabled);
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      zoo.set_experiment_threads(threads);
      ExperimentTiming timing;
      results.push_back(run_reward_experiment(zoo, cfg, &timing));
      eval_batches.push_back(timing.eval_batch);
    }
  }
  attack::set_eval_batch_enabled(saved);

  // The substrate host count is independent of experiment_threads: the
  // rendezvous width bounds it, the job count fills it.
  EXPECT_GT(eval_batches[0], 1u);
  EXPECT_GT(eval_batches[1], 1u);
  EXPECT_EQ(eval_batches[2], 0u);
  EXPECT_EQ(eval_batches[3], 0u);

  const auto& reference = results.front();
  for (std::size_t v = 1; v < results.size(); ++v) {
    ASSERT_EQ(results[v].size(), reference.size()) << "variant " << v;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(results[v][i].attack, reference[i].attack)
          << "variant " << v << " row " << i;
      EXPECT_EQ(results[v][i].l2_budget, reference[i].l2_budget)
          << "variant " << v << " row " << i;
      EXPECT_EQ(results[v][i].mean_reward, reference[i].mean_reward)
          << "variant " << v << " row " << i;
      EXPECT_EQ(results[v][i].stddev_reward, reference[i].stddev_reward)
          << "variant " << v << " row " << i;
      EXPECT_EQ(results[v][i].mean_realised_l2, reference[i].mean_realised_l2)
          << "variant " << v << " row " << i;
    }
  }
}

// Eval-batched forensics attribution: with rows from B concurrent episodes
// fused into shared forwards, every per-step forensics record must still
// land on the episode that owns the step, with per-step query deltas
// unchanged. The serial single-row run is the oracle; the export is sorted
// by (episode_key, seed, step), so the comparison is byte-exact.
TEST_F(ExperimentsParallelTest, EvalBatchForensicsAttributionBitIdentical) {
  Zoo zoo = make_tiny_zoo();
  RewardExperimentConfig cfg;
  cfg.game = env::Game::kCartPole;
  cfg.algorithm = rl::Algorithm::kDqn;
  cfg.attacks = {attack::Kind::kFgsm, attack::Kind::kPgd};
  cfg.l2_budgets = {0.5};
  cfg.runs = 2;
  cfg.seed = 5000;
  // Zoo artefacts must exist before forensics turns on: training also steps
  // pipelines and would otherwise pollute the record stream.
  (void)zoo.victim(cfg.game, cfg.algorithm);
  (void)zoo.approximator(cfg.game, rl::Algorithm::kDqn, 1);

  const bool saved_eval = attack::eval_batch_enabled();
  const bool saved_forensics = obs::forensics_enabled();
  obs::forensics_detail::g_forensics_enabled.store(true,
                                                   std::memory_order_relaxed);
  const auto run_and_export = [&](bool eval_batched, std::size_t threads) {
    attack::set_eval_batch_enabled(eval_batched);
    zoo.set_experiment_threads(threads);
    obs::forensics_reset();
    (void)run_reward_experiment(zoo, cfg, nullptr);
    std::string jsonl = obs::forensics_to_jsonl();
    obs::forensics_reset();
    return jsonl;
  };
  const std::string serial = run_and_export(false, 1);
  const std::string batched1 = run_and_export(true, 1);
  const std::string batched4 = run_and_export(true, 4);
  obs::forensics_detail::g_forensics_enabled.store(
      saved_forensics, std::memory_order_relaxed);
  attack::set_eval_batch_enabled(saved_eval);

  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(batched1, serial);
  EXPECT_EQ(batched4, serial);
}

// Worker-pool pinning: after a warm-up invocation has populated the
// process-lifetime clone pool, further run_episode_jobs invocations against
// the same victim/model must construct NO new agents or models — workers
// are re-synchronized in place (reset_from), not rebuilt.
TEST_F(ExperimentsParallelTest, WorkerPoolStopsCloningOnceWarm) {
  Zoo zoo = make_tiny_zoo();
  RewardExperimentConfig cfg;
  cfg.game = env::Game::kCartPole;
  cfg.algorithm = rl::Algorithm::kDqn;
  cfg.attacks = {attack::Kind::kFgsm};
  cfg.l2_budgets = {0.5};
  cfg.runs = 4;
  cfg.seed = 4000;
  zoo.set_experiment_threads(4);

  // Warm-up: trains/loads the zoo artefacts and fills the worker pool for
  // this (victim, model) architecture under both substrate settings.
  const bool saved = attack::craft_batch_enabled();
  const auto reference = run_reward_experiment(zoo, cfg, nullptr);
  attack::set_craft_batch_enabled(!saved);
  run_reward_experiment(zoo, cfg, nullptr);
  attack::set_craft_batch_enabled(saved);

  const std::uint64_t agents_before = rl::agent_constructions();
  const std::uint64_t models_before = seq2seq::Seq2SeqModel::constructions();
  const auto warm = run_reward_experiment(zoo, cfg, nullptr);
  EXPECT_EQ(rl::agent_constructions(), agents_before)
      << "warm experiment invocation cloned victim agents";
  EXPECT_EQ(seq2seq::Seq2SeqModel::constructions(), models_before)
      << "warm experiment invocation cloned approximator models";

  // Reused workers must behave exactly like freshly cloned ones.
  ASSERT_EQ(warm.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i)
    EXPECT_EQ(warm[i].mean_reward, reference[i].mean_reward) << "row " << i;
}

// The instrumentation that rode along with the experiment above actually
// fired: crafting gradient queries and pipeline step counters are non-zero
// after an attacked episode ran with metrics enabled.
TEST_F(ExperimentsParallelTest, MetricsInstrumentationObservesExperiment) {
  const bool saved = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  auto& registry = obs::MetricsRegistry::global();
  obs::Counter& gradient_queries =
      registry.counter("attack.queries.gradient");
  obs::Counter& steps = registry.counter("pipeline.steps");
  obs::Counter& gemm_flops = registry.counter("nn.gemm.flops");
  const std::uint64_t gradient_before = gradient_queries.value();
  const std::uint64_t steps_before = steps.value();
  const std::uint64_t flops_before = gemm_flops.value();

  Zoo zoo = make_tiny_zoo();
  RewardExperimentConfig cfg;
  cfg.game = env::Game::kCartPole;
  cfg.algorithm = rl::Algorithm::kDqn;
  cfg.attacks = {attack::Kind::kFgsm};
  cfg.l2_budgets = {0.5};
  cfg.runs = 2;
  cfg.seed = 1000;
  zoo.set_experiment_threads(2);
  (void)run_reward_experiment(zoo, cfg, nullptr);
  obs::set_metrics_enabled(saved);

  EXPECT_GT(gradient_queries.value(), gradient_before);
  EXPECT_GT(steps.value(), steps_before);
  EXPECT_GT(gemm_flops.value(), flops_before);
  EXPECT_GT(registry.span("experiment.reward").snapshot().count(), 0u);
  EXPECT_GT(registry.span("seq2seq.forward").snapshot().count(), 0u);
}

}  // namespace
}  // namespace rlattack::core
