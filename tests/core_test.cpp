// Core pipeline: rollout FIFO, frame accumulator vs FrameStack equivalence,
// attack session determinism and the threat-model table.
#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "rlattack/core/experiments.hpp"
#include "rlattack/core/pipeline.hpp"
#include "rlattack/core/rollout_fifo.hpp"
#include "rlattack/env/frame_stack.hpp"
#include "rlattack/env/mini_pong.hpp"
#include "rlattack/obs/metrics.hpp"
#include "rlattack/rl/factory.hpp"
#include "rlattack/rl/q_agent.hpp"

namespace rlattack::core {
namespace {

using rlattack::testing::random_tensor;

TEST(RolloutFifo, FillsAfterDepthPushes) {
  RolloutFifo fifo(3, 4, 2);
  util::Rng rng(1);
  EXPECT_FALSE(fifo.full());
  for (int i = 0; i < 3; ++i) {
    fifo.push(random_tensor({4}, rng), 0);
  }
  EXPECT_TRUE(fifo.full());
}

TEST(RolloutFifo, CraftingInputsOrderedOldestFirst) {
  RolloutFifo fifo(2, 3, 2);
  nn::Tensor f1({3}, {1, 1, 1});
  nn::Tensor f2({3}, {2, 2, 2});
  nn::Tensor cur({3}, {9, 9, 9});
  fifo.push(f1, 0);
  fifo.push(f2, 1);
  attack::CraftInputs in = fifo.crafting_inputs(cur);
  EXPECT_FLOAT_EQ(in.obs_history.at3(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(in.obs_history.at3(0, 1, 0), 2.0f);
  EXPECT_FLOAT_EQ(in.action_history.at3(0, 0, 0), 1.0f);  // a = 0 one-hot
  EXPECT_FLOAT_EQ(in.action_history.at3(0, 1, 1), 1.0f);  // a = 1 one-hot
  EXPECT_FLOAT_EQ(in.current_obs.at2(0, 0), 9.0f);
}

TEST(RolloutFifo, SlidesWindow) {
  RolloutFifo fifo(2, 1, 2);
  fifo.push(nn::Tensor({1}, {1.0f}), 0);
  fifo.push(nn::Tensor({1}, {2.0f}), 0);
  fifo.push(nn::Tensor({1}, {3.0f}), 1);
  attack::CraftInputs in = fifo.crafting_inputs(nn::Tensor({1}, {4.0f}));
  EXPECT_FLOAT_EQ(in.obs_history.at3(0, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(in.obs_history.at3(0, 1, 0), 3.0f);
}

TEST(RolloutFifo, ErrorsOnMisuse) {
  RolloutFifo fifo(2, 3, 2);
  EXPECT_THROW(fifo.crafting_inputs(nn::Tensor({3})), std::logic_error);
  EXPECT_THROW(fifo.push(nn::Tensor({4}), 0), std::logic_error);
  EXPECT_THROW(fifo.push(nn::Tensor({3}), 5), std::logic_error);
  EXPECT_THROW(RolloutFifo(0, 1, 1), std::logic_error);
}

TEST(RolloutFifo, ClearEmptiesWindow) {
  RolloutFifo fifo(1, 1, 1);
  fifo.push(nn::Tensor({1}), 0);
  EXPECT_TRUE(fifo.full());
  fifo.clear();
  EXPECT_FALSE(fifo.full());
}

TEST(FrameAccumulator, MatchesFrameStackSemantics) {
  // The harness's internal stacking must reproduce env::FrameStack exactly,
  // otherwise the victim would see different observations under attack
  // harness vs training.
  env::MiniPong::Config cfg;
  env::FrameStack stack(std::make_unique<env::MiniPong>(cfg, 5), 2);
  env::MiniPong raw(cfg, 5);

  stack.seed(17);
  raw.seed(17);
  nn::Tensor stacked_obs = stack.reset();
  nn::Tensor raw_frame = raw.reset();
  FrameAccumulator acc(2, raw_frame.size());
  nn::Tensor acc_obs = acc.push(raw_frame);
  ASSERT_EQ(acc_obs.size(), stacked_obs.size());
  for (std::size_t i = 0; i < acc_obs.size(); ++i)
    EXPECT_FLOAT_EQ(acc_obs[i], stacked_obs[i]);

  util::Rng rng(3);
  for (int step = 0; step < 30; ++step) {
    const std::size_t action = rng.uniform_int(raw.action_count());
    auto ss = stack.step(action);
    auto rs = raw.step(action);
    acc_obs = acc.push(rs.observation);
    for (std::size_t i = 0; i < acc_obs.size(); ++i)
      ASSERT_FLOAT_EQ(acc_obs[i], ss.observation[i]) << "step " << step;
    if (ss.done) break;
  }
}

TEST(FrameAccumulator, PeekDoesNotMutate) {
  FrameAccumulator acc(2, 2);
  acc.push(nn::Tensor({2}, {1, 1}));
  nn::Tensor peeked = acc.peek_with(nn::Tensor({2}, {5, 5}));
  EXPECT_FLOAT_EQ(peeked[2], 5.0f);
  nn::Tensor after = acc.push(nn::Tensor({2}, {2, 2}));
  // History is {1, 1} then {2, 2}; the peek left no trace.
  EXPECT_FLOAT_EQ(after[0], 1.0f);
  EXPECT_FLOAT_EQ(after[2], 2.0f);
}

TEST(FrameAccumulator, PeekBeforePushThrows) {
  FrameAccumulator acc(2, 2);
  EXPECT_THROW(acc.peek_with(nn::Tensor({2})), std::logic_error);
}

/// Builds a tiny untrained-but-consistent victim + approximator for session
/// mechanics tests (CartPole keeps them fast).
struct SessionFixture {
  rl::AgentPtr victim;
  std::unique_ptr<seq2seq::Seq2SeqModel> model;
  attack::AttackPtr attack;

  SessionFixture() {
    victim = rl::make_dqn_agent(rl::ObsSpec{{4}}, 2, 21);
    seq2seq::Seq2SeqConfig cfg =
        seq2seq::make_cartpole_seq2seq_config(/*n=*/4, /*m=*/3);
    cfg.embed = 8;
    cfg.lstm_hidden = 6;
    model = std::make_unique<seq2seq::Seq2SeqModel>(cfg, 22);
    attack = attack::make_attack(attack::Kind::kGaussian);
  }
};

TEST(AttackSession, CleanRunsAreDeterministic) {
  SessionFixture fx;
  attack::Budget budget{attack::Budget::Norm::kL2, 0.5f};
  AttackSession session(*fx.victim, env::Game::kCartPole, *fx.model,
                        *fx.attack, budget);
  AttackPolicy clean;
  EpisodeOutcome a = session.run_episode(clean, 33);
  EpisodeOutcome b = session.run_episode(clean, 33);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.actions, b.actions);
  EXPECT_DOUBLE_EQ(a.total_reward, b.total_reward);
  EXPECT_EQ(a.attacks_attempted, 0u);
}

TEST(AttackSession, EveryStepAttackStartsAfterFifoFills) {
  SessionFixture fx;
  attack::Budget budget{attack::Budget::Norm::kL2, 0.5f};
  AttackSession session(*fx.victim, env::Game::kCartPole, *fx.model,
                        *fx.attack, budget);
  AttackPolicy policy;
  policy.mode = AttackPolicy::Mode::kEveryStep;
  EpisodeOutcome outcome = session.run_episode(policy, 34);
  // First n steps fill the FIFO, every later step is attacked.
  ASSERT_GT(outcome.steps, 4u);
  EXPECT_EQ(outcome.attacks_attempted, outcome.steps - 4u);
  EXPECT_GT(outcome.mean_l2, 0.0);
  EXPECT_LE(outcome.mean_l2, 0.5 * 1.001);
}

TEST(AttackSession, SingleStepFiresOnce) {
  SessionFixture fx;
  attack::Budget budget{attack::Budget::Norm::kLinf, 0.3f};
  AttackSession session(*fx.victim, env::Game::kCartPole, *fx.model,
                        *fx.attack, budget);
  AttackPolicy policy;
  policy.mode = AttackPolicy::Mode::kSingleStep;
  policy.trigger_step = 6;
  EpisodeOutcome outcome = session.run_episode(policy, 35);
  EXPECT_EQ(outcome.attacks_attempted, 1u);
  EXPECT_GE(outcome.fired_step, 6u);
}

TEST(AttackSession, HistoryEncodedOncePerAttackedStep) {
  // Pins the craft-cache audit (ISSUE 6): every victim-probe path inside the
  // session — the runner-up target probe and each PGD craft iteration —
  // shares the one CraftContext built per attacked step, so an attacked step
  // costs exactly one seq2seq.encode_history and the rest of the queries hit
  // the cached encoding. The ablation benches (bench_ablation_defense /
  // bench_ablation_detection) drive this exact path via AttackSession.
  SessionFixture fx;
  fx.attack = attack::make_attack(attack::Kind::kPgd);
  attack::Budget budget{attack::Budget::Norm::kL2, 0.5f};
  AttackSession session(*fx.victim, env::Game::kCartPole, *fx.model,
                        *fx.attack, budget);
  AttackPolicy policy;
  policy.mode = AttackPolicy::Mode::kEveryStep;
  policy.runner_up_target = true;
  obs::SpanStat& encodes =
      obs::MetricsRegistry::global().span("seq2seq.encode_history");
  obs::Counter& reuse =
      obs::MetricsRegistry::global().counter("attack.encode.reuse");
  const std::size_t encodes_before = encodes.snapshot().count();
  const std::uint64_t reuse_before = reuse.value();
  EpisodeOutcome outcome = session.run_episode(policy, 37);
  ASSERT_GT(outcome.attacks_attempted, 0u);
  EXPECT_EQ(encodes.snapshot().count() - encodes_before,
            outcome.attacks_attempted);
  // Runner-up probe + multi-iteration PGD means several cache hits per step.
  EXPECT_GT(reuse.value() - reuse_before, outcome.attacks_attempted);
}

TEST(AttackSession, MismatchedModelThrows) {
  SessionFixture fx;
  attack::Budget budget{attack::Budget::Norm::kL2, 0.5f};
  EXPECT_THROW(AttackSession(*fx.victim, env::Game::kMiniPong, *fx.model,
                             *fx.attack, budget),
               std::logic_error);
}

TEST(AttackSession, ImageGameSessionRuns) {
  rl::AgentPtr victim =
      rl::make_dqn_agent(rl::ObsSpec{{2, 16, 16}}, 3, 23);
  seq2seq::Seq2SeqConfig cfg =
      seq2seq::make_atari_seq2seq_config({1, 16, 16}, 3, /*n=*/2, /*m=*/1);
  cfg.embed = 8;
  cfg.lstm_hidden = 6;
  seq2seq::Seq2SeqModel model(cfg, 24);
  attack::AttackPtr attack = attack::make_attack(attack::Kind::kFgsm);
  attack::Budget budget{attack::Budget::Norm::kLinf, 0.05f};
  AttackSession session(*victim, env::Game::kMiniPong, model, *attack,
                        budget);
  AttackPolicy policy;
  policy.mode = AttackPolicy::Mode::kEveryStep;
  EpisodeOutcome outcome = session.run_episode(policy, 36);
  EXPECT_GT(outcome.steps, 0u);
  EXPECT_GT(outcome.attacks_attempted, 0u);
  // Image perturbations stay within the valid pixel range by construction;
  // realised Linf never exceeds the budget.
  EXPECT_LE(outcome.mean_linf, 0.05 * 1.001);
}

TEST(ThreatModel, TableMatchesPaperShape) {
  util::TableWriter table = threat_model_table();
  EXPECT_EQ(table.header().size(), 5u);
  ASSERT_EQ(table.row_count(), 5u);
  // Our attack requires none of the four capabilities.
  const auto& ours = table.rows().back();
  for (std::size_t c = 1; c < ours.size(); ++c) EXPECT_EQ(ours[c], "no");
  // Lin et al. need white-box weight access.
  EXPECT_EQ(table.rows()[3][1], "yes");
}

TEST(BenchScale, DefaultsToOneOnGarbage) {
  EXPECT_DOUBLE_EQ(bench_scale_from_env(), 1.0);
}

}  // namespace
}  // namespace rlattack::core
