// Additional coverage: A2C internals, environment physics details, and
#include <cmath>
// cross-module serialization of the seq2seq model.
#include <gtest/gtest.h>

#include <filesystem>

#include "gradcheck.hpp"
#include "rlattack/env/cartpole.hpp"
#include "rlattack/env/mini_invaders.hpp"
#include "rlattack/env/mini_pong.hpp"
#include "rlattack/nn/serialize.hpp"
#include "rlattack/rl/a2c.hpp"
#include "rlattack/rl/q_agent.hpp"
#include "rlattack/seq2seq/model.hpp"

namespace rlattack {
namespace {

using rlattack::testing::random_tensor;

TEST(A2c, UpdatesEveryRolloutLen) {
  rl::A2cAgent::Config cfg;
  cfg.rollout_len = 4;
  rl::A2cAgent agent(rl::ObsSpec{{4}}, 2, cfg, 1);
  nn::Tensor obs({4});
  for (int i = 0; i < 12; ++i)
    agent.learn(obs, 0, 1.0, obs, /*done=*/false);
  EXPECT_EQ(agent.update_count(), 3u);
}

TEST(A2c, EpisodeEndForcesUpdate) {
  rl::A2cAgent::Config cfg;
  cfg.rollout_len = 100;
  rl::A2cAgent agent(rl::ObsSpec{{4}}, 2, cfg, 1);
  nn::Tensor obs({4});
  agent.learn(obs, 0, 1.0, obs, false);
  agent.learn(obs, 1, 1.0, obs, /*done=*/true);
  EXPECT_EQ(agent.update_count(), 1u);
}

TEST(A2c, ExplorationSamplesBothActions) {
  rl::A2cAgent agent(rl::ObsSpec{{4}}, 2, rl::A2cAgent::Config{}, 2);
  util::Rng rng(3);
  nn::Tensor obs = random_tensor({4}, rng);
  bool saw[2] = {false, false};
  for (int i = 0; i < 200; ++i) saw[agent.act(obs, true)] = true;
  EXPECT_TRUE(saw[0]);
  EXPECT_TRUE(saw[1]);
}

TEST(A2c, GreedyIsStableAcrossCalls) {
  rl::A2cAgent agent(rl::ObsSpec{{4}}, 3, rl::A2cAgent::Config{}, 2);
  util::Rng rng(4);
  nn::Tensor obs = random_tensor({4}, rng);
  const std::size_t a = agent.act(obs, false);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(agent.act(obs, false), a);
}

TEST(A2c, LearningReducesValueError) {
  // Constant reward 1 with immediate termination: V(s) must approach 1.
  rl::A2cAgent::Config cfg;
  cfg.rollout_len = 1;
  cfg.lr = 0.01f;
  rl::A2cAgent agent(rl::ObsSpec{{2}}, 2, cfg, 5);
  nn::Tensor obs({2}, {1.0f, -1.0f});
  for (int i = 0; i < 400; ++i) agent.learn(obs, i % 2, 1.0, obs, true);
  // Probe the value head through the fused output.
  nn::Tensor out = agent.network().forward(obs.reshaped({1, 2}));
  EXPECT_NEAR(out.at2(0, 2), 1.0f, 0.15f);
}

TEST(A2c, AdvantageNormalizationOptionRuns) {
  rl::A2cAgent::Config cfg;
  cfg.rollout_len = 8;
  cfg.normalize_advantages = true;
  rl::A2cAgent agent(rl::ObsSpec{{4}}, 2, cfg, 6);
  util::Rng rng(6);
  // Mixed-magnitude rewards — the case normalization targets.
  for (int i = 0; i < 64; ++i) {
    nn::Tensor o = rlattack::testing::random_tensor({4}, rng);
    agent.learn(o, rng.uniform_int(std::uint64_t{2}),
                i % 10 == 0 ? 10.0 : -0.05, o, i % 16 == 15);
  }
  EXPECT_GE(agent.update_count(), 7u);
  EXPECT_LT(agent.act(nn::Tensor({4}), false), 2u);
}

TEST(QAgentNStep, AggregatesDiscountedReward) {
  // n_step = 2, gamma = 0.5: the first replayed transition must carry
  // r0 + 0.5 * r1.
  rl::QAgent::Config cfg;
  cfg.n_step = 2;
  cfg.gamma = 0.5f;
  cfg.use_per = false;
  cfg.warmup_steps = 1000000;  // never train during the test
  rl::QAgent agent(rl::ObsSpec{{1}}, 2, cfg, 1);
  nn::Tensor o({1});
  agent.begin_episode();
  agent.learn(o, 0, 1.0, o, false);   // r0 = 1
  agent.learn(o, 0, 10.0, o, false);  // r1 = 10 -> flush front with 1 + 5
  agent.learn(o, 0, 0.0, o, true);    // episode end flushes the rest
  // The internal buffer isn't exposed; the observable invariant is that
  // learning proceeded without error and the agent acts sanely.
  EXPECT_LT(agent.act(o, false), 2u);
}

TEST(CartPole, PushRightAcceleratesRight) {
  env::CartPole env(env::CartPole::Config{}, 9);
  env.reset();
  double velocity_sum = 0.0;
  for (int i = 0; i < 5; ++i)
    velocity_sum += env.step(1).observation[1];
  EXPECT_GT(velocity_sum, 0.0);
}

TEST(CartPole, InvertedPendulumIsUnstable) {
  // With no applied force, any initial tilt grows: the physics must model
  // an unstable equilibrium, not a hanging pendulum.
  env::CartPole::Config cfg;
  cfg.force_mag = 0.0;
  cfg.max_steps = 500;
  env::CartPole env(cfg, 10);
  nn::Tensor obs = env.reset();
  const double theta0 = std::abs(obs[2]);
  double theta_last = theta0;
  bool done = false;
  while (!done) {
    auto sr = env.step(0);
    theta_last = std::abs(sr.observation[2]);
    done = sr.done;
  }
  EXPECT_GT(theta_last, theta0);
  // And it must actually tip past the 12-degree threshold, ending early.
  EXPECT_GT(theta_last, 0.2);
}

TEST(MiniPong, BallStaysInVerticalBounds) {
  env::MiniPong env(env::MiniPong::Config{}, 11);
  util::Rng rng(11);
  nn::Tensor obs = env.reset();
  bool done = false;
  int steps = 0;
  while (!done && steps < 400) {
    auto sr = env.step(rng.uniform_int(3));
    // Every bright pixel must lie inside the raster by construction —
    // render() would have dropped it otherwise; check the frame is sane.
    for (float p : sr.observation.data()) EXPECT_LE(p, 1.0f);
    done = sr.done;
    ++steps;
  }
}

TEST(MiniPong, TrackingPolicyBeatsStaticPolicy) {
  // A scripted paddle that follows the ball should collect more points
  // than one that never moves — sanity of the game's skill gradient.
  auto play = [](bool track) {
    env::MiniPong::Config cfg;
    cfg.points_to_win = 5;
    cfg.max_steps = 2000;
    cfg.shaping_weight = 0.0;
    env::MiniPong env(cfg, 13);
    nn::Tensor obs = env.reset();
    double reward = 0.0;
    bool done = false;
    while (!done) {
      std::size_t action = 0;
      if (track) {
        // Find ball row (shade 1.0) and paddle-top row (shade 0.8).
        const std::size_t w = cfg.width, h = cfg.height;
        std::ptrdiff_t ball_y = -1, paddle_y = -1;
        for (std::size_t y = 0; y < h; ++y)
          for (std::size_t x = 0; x < w; ++x) {
            const float v = obs[y * w + x];
            if (v == 1.0f) ball_y = static_cast<std::ptrdiff_t>(y);
            if (v == 0.8f && paddle_y < 0)
              paddle_y = static_cast<std::ptrdiff_t>(y);
          }
        if (ball_y >= 0 && paddle_y >= 0) {
          const std::ptrdiff_t centre =
              paddle_y + static_cast<std::ptrdiff_t>(cfg.paddle_height / 2);
          action = ball_y < centre ? 1 : ball_y > centre ? 2 : 0;
        }
      }
      auto sr = env.step(action);
      reward += sr.reward;
      obs = sr.observation;
      done = sr.done;
    }
    return reward;
  };
  EXPECT_GT(play(true), play(false));
}

TEST(MiniInvaders, BombsEventuallyFall) {
  env::MiniInvaders env(env::MiniInvaders::Config{}, 15);
  env.reset();
  bool saw_bomb = false;
  bool done = false;
  int steps = 0;
  while (!done && steps < 300) {
    auto sr = env.step(0);
    for (float p : sr.observation.data())
      if (p == 0.7f) saw_bomb = true;  // bomb shade
    done = sr.done;
    ++steps;
  }
  EXPECT_TRUE(saw_bomb);
}

TEST(MiniInvaders, ShieldsDegrade) {
  env::MiniInvaders::Config cfg;
  cfg.shield_hp = 1;
  env::MiniInvaders env(cfg, 15);
  env.reset();
  // Fire straight up through a shield position until a shield dies: count
  // shield pixels over time.
  auto count_shields = [&](const nn::Tensor& obs) {
    int n = 0;
    for (float p : obs.data())
      if (p >= 0.25f && p <= 0.5f) ++n;
    return n;
  };
  nn::Tensor obs = env.reset();
  const int initial = count_shields(obs);
  ASSERT_GT(initial, 0);
  bool done = false;
  int steps = 0;
  int final_count = initial;
  while (!done && steps < 400) {
    // Sweep across the field while firing: some shot will hit a shield.
    const std::size_t action = (steps % 4 == 0) ? 3 : (steps % 4 == 1 ? 1 : 2);
    auto sr = env.step(action);
    final_count = count_shields(sr.observation);
    if (final_count < initial) break;
    done = sr.done;
    ++steps;
  }
  EXPECT_LT(final_count, initial);
}

TEST(Seq2SeqSerialize, RoundTripThroughParamVector) {
  seq2seq::Seq2SeqConfig cfg;
  cfg.input_steps = 2;
  cfg.output_steps = 2;
  cfg.actions = 2;
  cfg.frame_shape = {4};
  cfg.embed = 8;
  cfg.lstm_hidden = 6;
  seq2seq::Seq2SeqModel a(cfg, 1), b(cfg, 2);
  const std::string path = ::testing::TempDir() + "rlattack_s2s.ckpt";
  ASSERT_TRUE(nn::save_parameters(a.params(), path));
  ASSERT_TRUE(nn::load_parameters(b.params(), path));
  util::Rng rng(3);
  nn::Tensor actions = random_tensor({1, 2, 2}, rng);
  nn::Tensor obs = random_tensor({1, 2, 4}, rng);
  nn::Tensor cur = random_tensor({1, 4}, rng);
  nn::Tensor ya = a.forward(actions, obs, cur);
  nn::Tensor yb = b.forward(actions, obs, cur);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
  std::filesystem::remove(path);
}

TEST(Seq2SeqSerialize, MismatchedConfigFails) {
  seq2seq::Seq2SeqConfig cfg;
  cfg.input_steps = 2;
  cfg.output_steps = 1;
  cfg.actions = 2;
  cfg.frame_shape = {4};
  cfg.embed = 8;
  cfg.lstm_hidden = 6;
  seq2seq::Seq2SeqModel a(cfg, 1);
  cfg.embed = 12;
  seq2seq::Seq2SeqModel wrong(cfg, 1);
  const std::string path = ::testing::TempDir() + "rlattack_s2s2.ckpt";
  ASSERT_TRUE(nn::save_parameters(a.params(), path));
  EXPECT_FALSE(nn::load_parameters(wrong.params(), path));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace rlattack
