// Extension features: observation-noise training wrapper, attack stride.
#include <gtest/gtest.h>

#include "rlattack/core/pipeline.hpp"
#include "rlattack/env/cartpole.hpp"
#include "rlattack/env/mini_pong.hpp"
#include "rlattack/env/noisy_obs.hpp"
#include "rlattack/rl/factory.hpp"
#include "rlattack/rl/q_agent.hpp"
#include "rlattack/seq2seq/model.hpp"

namespace rlattack {
namespace {

TEST(NoisyObs, PreservesInterface) {
  env::NoisyObservationWrapper env(
      std::make_unique<env::CartPole>(env::CartPole::Config{}, 1), 0.1f, 1);
  EXPECT_EQ(env.action_count(), 2u);
  EXPECT_EQ(env.observation_shape(), std::vector<std::size_t>{4});
  EXPECT_EQ(env.name(), "cartpole_noisy");
}

TEST(NoisyObs, InjectsNoise) {
  // Same seed, one wrapped one not: observations must differ.
  env::CartPole clean(env::CartPole::Config{}, 7);
  env::NoisyObservationWrapper noisy(
      std::make_unique<env::CartPole>(env::CartPole::Config{}, 7), 0.5f, 7);
  nn::Tensor a = clean.reset();
  nn::Tensor b = noisy.reset();
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) differs = true;
  EXPECT_TRUE(differs);
}

TEST(NoisyObs, ZeroStddevIsTransparent) {
  env::CartPole clean(env::CartPole::Config{}, 7);
  env::NoisyObservationWrapper noisy(
      std::make_unique<env::CartPole>(env::CartPole::Config{}, 7), 0.0f, 7);
  nn::Tensor a = clean.reset();
  nn::Tensor b = noisy.reset();
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST(NoisyObs, RespectsBounds) {
  env::NoisyObservationWrapper env(
      std::make_unique<env::MiniPong>(env::MiniPong::Config{}, 3), 2.0f, 3);
  nn::Tensor obs = env.reset();
  for (float p : obs.data()) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(NoisyObs, InvalidConstruction) {
  EXPECT_THROW(env::NoisyObservationWrapper(nullptr, 0.1f, 1),
               std::logic_error);
  EXPECT_THROW(env::NoisyObservationWrapper(
                   std::make_unique<env::CartPole>(env::CartPole::Config{}, 1),
                   -1.0f, 1),
               std::logic_error);
}

TEST(NoisyObs, CloneKeepsNoiseScale) {
  env::NoisyObservationWrapper env(
      std::make_unique<env::CartPole>(env::CartPole::Config{}, 1), 0.25f, 1);
  auto copy = env.clone();
  EXPECT_EQ(copy->name(), "cartpole_noisy");
}

TEST(AttackStride, ReducesAttackCount) {
  rl::AgentPtr victim = rl::make_dqn_agent(rl::ObsSpec{{4}}, 2, 41);
  seq2seq::Seq2SeqConfig cfg = seq2seq::make_cartpole_seq2seq_config(4, 1);
  cfg.embed = 8;
  cfg.lstm_hidden = 6;
  seq2seq::Seq2SeqModel model(cfg, 42);
  attack::AttackPtr gaussian = attack::make_attack(attack::Kind::kGaussian);
  attack::Budget budget{attack::Budget::Norm::kL2, 0.3f};
  core::AttackSession session(*victim, env::Game::kCartPole, model, *gaussian,
                              budget);
  core::AttackPolicy every;
  every.mode = core::AttackPolicy::Mode::kEveryStep;
  core::AttackPolicy sparse = every;
  sparse.stride = 4;
  auto dense_outcome = session.run_episode(every, 50);
  auto sparse_outcome = session.run_episode(sparse, 50);
  EXPECT_GT(dense_outcome.attacks_attempted, 0u);
  EXPECT_GT(sparse_outcome.attacks_attempted, 0u);
  EXPECT_LT(sparse_outcome.attacks_attempted,
            dense_outcome.attacks_attempted);
  // Roughly a quarter as many (per-episode lengths differ, so allow slack).
  EXPECT_LE(sparse_outcome.attacks_attempted,
            dense_outcome.attacks_attempted / 2);
}

}  // namespace
}  // namespace rlattack
