// Stateful detector and JSMA attack tests.
#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "rlattack/core/detector.hpp"
#include "rlattack/seq2seq/trainer.hpp"
#include "rlattack/attack/attack.hpp"
#include "rlattack/util/stats.hpp"

namespace rlattack {
namespace {

using rlattack::testing::random_tensor;

env::Episode smooth_episode(std::size_t length, float step_size,
                            util::Rng& rng) {
  env::Episode ep;
  nn::Tensor state({4});
  for (std::size_t t = 0; t < length; ++t) {
    env::Transition tr;
    for (std::size_t i = 0; i < 4; ++i)
      state[i] += rng.normal_f(0.0f, step_size);
    tr.observation = state;
    ep.steps.push_back(std::move(tr));
  }
  return ep;
}

TEST(StatefulDetector, InvalidConfigThrows) {
  core::StatefulDetector::Config cfg;
  cfg.window = 0;
  EXPECT_THROW(core::StatefulDetector{cfg}, std::logic_error);
  cfg.window = 5;
  cfg.alarm_flags = 6;
  EXPECT_THROW(core::StatefulDetector{cfg}, std::logic_error);
}

TEST(StatefulDetector, RequiresCalibration) {
  core::StatefulDetector detector;
  EXPECT_FALSE(detector.calibrated());
  EXPECT_THROW(detector.observe(nn::Tensor({4})), std::logic_error);
  EXPECT_THROW(detector.calibrate(0.1, 0.0), std::logic_error);
}

TEST(StatefulDetector, CleanStreamStaysQuiet) {
  util::Rng rng(1);
  std::vector<env::Episode> calib;
  for (int i = 0; i < 5; ++i) calib.push_back(smooth_episode(50, 0.05f, rng));
  core::StatefulDetector detector;
  detector.calibrate(calib);

  env::Episode clean = smooth_episode(80, 0.05f, rng);
  detector.reset();
  bool alarmed = false;
  for (const auto& step : clean.steps)
    alarmed = detector.observe(step.observation);
  EXPECT_FALSE(alarmed);
}

TEST(StatefulDetector, PersistentPerturbationAlarms) {
  util::Rng rng(2);
  std::vector<env::Episode> calib;
  for (int i = 0; i < 5; ++i) calib.push_back(smooth_episode(50, 0.05f, rng));
  core::StatefulDetector detector;
  detector.calibrate(calib);

  // Perturb every frame with independent noise much larger than the clean
  // step size: delta norms jump every step.
  env::Episode attacked = smooth_episode(60, 0.05f, rng);
  for (auto& step : attacked.steps)
    for (float& x : step.observation.data())
      x += rng.normal_f(0.0f, 0.5f);
  detector.reset();
  bool alarmed = false;
  for (const auto& step : attacked.steps)
    alarmed = detector.observe(step.observation);
  EXPECT_TRUE(alarmed);
  EXPECT_GE(detector.flag_count(), detector.config().alarm_flags);
}

TEST(StatefulDetector, SingleFrameInjectionStaysBelowAlarm) {
  util::Rng rng(3);
  std::vector<env::Episode> calib;
  for (int i = 0; i < 5; ++i) calib.push_back(smooth_episode(50, 0.05f, rng));
  core::StatefulDetector detector;
  detector.calibrate(calib);

  // One large injected frame (the time-bomb pattern): at most two flags
  // (entering and leaving the perturbed frame) — no alarm at the default
  // 5-flag threshold.
  env::Episode bombed = smooth_episode(60, 0.05f, rng);
  for (float& x : bombed.steps[30].observation.data()) x += 0.5f;
  detector.reset();
  bool alarmed = false;
  for (const auto& step : bombed.steps)
    alarmed = detector.observe(step.observation);
  EXPECT_FALSE(alarmed);
  EXPECT_LE(detector.flag_count(), 2u);
  EXPECT_GE(detector.flag_count(), 1u);
}

TEST(StatefulDetector, ResetClearsState) {
  core::StatefulDetector detector;
  detector.calibrate(1.0, 0.1);
  nn::Tensor a({2}, {0.0f, 0.0f});
  nn::Tensor b({2}, {100.0f, 100.0f});
  for (int i = 0; i < 12; ++i) {
    detector.observe(a);
    detector.observe(b);
  }
  EXPECT_TRUE(detector.alarmed());
  detector.reset();
  EXPECT_FALSE(detector.alarmed());
  EXPECT_EQ(detector.flag_count(), 0u);
}

// --- JSMA ---

seq2seq::Seq2SeqConfig jsma_toy_config() {
  seq2seq::Seq2SeqConfig c;
  c.input_steps = 2;
  c.output_steps = 1;
  c.actions = 2;
  c.frame_shape = {6};
  c.embed = 12;
  c.lstm_hidden = 8;
  return c;
}

std::unique_ptr<seq2seq::Seq2SeqModel> jsma_toy_model() {
  util::Rng rng(17);
  std::vector<env::Episode> episodes(16);
  for (auto& ep : episodes) {
    for (std::size_t t = 0; t < 20; ++t) {
      env::Transition tr;
      tr.observation = random_tensor({6}, rng);
      tr.action = tr.observation[0] > 0.0f ? 1u : 0u;
      ep.steps.push_back(std::move(tr));
    }
  }
  auto cfg = jsma_toy_config();
  auto model = std::make_unique<seq2seq::Seq2SeqModel>(cfg, 18);
  seq2seq::EpisodeDataset ds(episodes, cfg.input_steps, cfg.output_steps, 6,
                             2);
  util::Rng train_rng(19);
  auto [train, eval] = ds.split(0.9, train_rng);
  seq2seq::TrainSettings settings;
  settings.epochs = 25;
  settings.batches_per_epoch = 16;
  seq2seq::train_seq2seq(*model, ds, train, eval, settings, train_rng);
  return model;
}

attack::CraftInputs jsma_inputs(util::Rng& rng) {
  attack::CraftInputs in;
  in.action_history = random_tensor({1, 2, 2}, rng);
  in.obs_history = random_tensor({1, 2, 6}, rng);
  in.current_obs = random_tensor({1, 6}, rng);
  return in;
}

TEST(Jsma, PerturbationIsSparse) {
  auto model = jsma_toy_model();
  util::Rng rng(20);
  attack::JsmaAttack jsma(2);  // touch at most 2 of 6 features
  attack::Budget budget{attack::Budget::Norm::kLinf, 0.5f};
  env::ObservationBounds bounds{-10.0f, 10.0f};
  for (int trial = 0; trial < 5; ++trial) {
    attack::CraftInputs inputs = jsma_inputs(rng);
    nn::Tensor adv =
        jsma.perturb(*model, inputs, attack::Goal{}, budget, bounds, rng);
    int changed = 0;
    for (std::size_t i = 0; i < adv.size(); ++i)
      if (adv[i] != inputs.current_obs[i]) ++changed;
    EXPECT_LE(changed, 2);
  }
}

TEST(Jsma, RespectsBudget) {
  auto model = jsma_toy_model();
  util::Rng rng(21);
  attack::JsmaAttack jsma(4);
  for (auto norm : {attack::Budget::Norm::kL2, attack::Budget::Norm::kLinf}) {
    attack::Budget budget{norm, 0.6f};
    env::ObservationBounds bounds{-10.0f, 10.0f};
    attack::CraftInputs inputs = jsma_inputs(rng);
    nn::Tensor adv =
        jsma.perturb(*model, inputs, attack::Goal{}, budget, bounds, rng);
    nn::Tensor delta = adv;
    delta -= inputs.current_obs;
    const double realized = norm == attack::Budget::Norm::kL2
                                ? util::l2_norm(delta.data())
                                : util::linf_norm(delta.data());
    EXPECT_LE(realized, 0.6 * 1.001);
  }
}

TEST(Jsma, FlipsMoreThanChanceOnToyModel) {
  auto model = jsma_toy_model();
  util::Rng rng(22);
  attack::JsmaAttack jsma(6);
  attack::Budget budget{attack::Budget::Norm::kLinf, 1.5f};
  env::ObservationBounds bounds{-10.0f, 10.0f};
  std::size_t flips = 0;
  const int trials = 12;
  for (int t = 0; t < trials; ++t) {
    attack::CraftInputs inputs = jsma_inputs(rng);
    const auto pred = attack::predict_actions(*model, inputs);
    nn::Tensor adv =
        jsma.perturb(*model, inputs, attack::Goal{}, budget, bounds, rng);
    attack::CraftInputs perturbed = inputs;
    perturbed.current_obs = adv;
    if (attack::predict_actions(*model, perturbed)[0] != pred[0]) ++flips;
  }
  EXPECT_GE(flips * 2, trials);  // at least half flip with a generous budget
}

TEST(Jsma, InvalidConfigThrows) {
  EXPECT_THROW(attack::JsmaAttack(0), std::logic_error);
}

}  // namespace
}  // namespace rlattack
