// Parity and determinism tests for the shared GEMM kernel layer and the
// thread pool. Registered with CTest twice — once with RLATTACK_THREADS=1
// (serial) and once with RLATTACK_THREADS=4 — so the pool dispatch path is
// exercised under the tier-1 test command.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

#include "gradcheck.hpp"
#include "rlattack/nn/conv2d.hpp"
#include "rlattack/nn/dense.hpp"
#include "rlattack/nn/kernels/gemm.hpp"
#include "rlattack/nn/lstm.hpp"
#include "rlattack/nn/reference.hpp"
#include "rlattack/util/thread_pool.hpp"

namespace rlattack::nn {
namespace {

using kernels::Trans;
using rlattack::testing::check_input_gradient;
using rlattack::testing::check_param_gradients;
using rlattack::testing::random_tensor;

constexpr double kParityTol = 1e-4;

void expect_close(const Tensor& got, const Tensor& want, double tol,
                  const char* what) {
  ASSERT_TRUE(got.same_shape(want)) << what << ": shape " << got.shape_string()
                                    << " vs " << want.shape_string();
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double a = got[i], b = want[i];
    const double scale = std::max({1.0, std::abs(a), std::abs(b)});
    ASSERT_NEAR(a, b, tol * scale) << what << " mismatch at " << i;
  }
}

// ---------------------------------------------------------------------------
// sgemm vs a naive triple loop, all four transpose variants.

float naive_at(Trans t, const float* m, std::size_t ld, std::size_t r,
               std::size_t c) {
  return t == Trans::kNo ? m[r * ld + c] : m[c * ld + r];
}

void naive_gemm(Trans ta, Trans tb, std::size_t m, std::size_t n,
                std::size_t k, const float* a, std::size_t lda, const float* b,
                std::size_t ldb, float* c, std::size_t ldc, bool accumulate) {
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      float acc = accumulate ? c[i * ldc + j] : 0.0f;
      for (std::size_t p = 0; p < k; ++p)
        acc += naive_at(ta, a, lda, i, p) * naive_at(tb, b, ldb, p, j);
      c[i * ldc + j] = acc;
    }
}

struct GemmCase {
  std::size_t m, n, k;
};

class SgemmParity : public ::testing::TestWithParam<GemmCase> {};

TEST_P(SgemmParity, AllTransposeVariantsAndAccumulate) {
  const auto [m, n, k] = GetParam();
  util::Rng rng(99);
  for (const Trans ta : {Trans::kNo, Trans::kYes}) {
    for (const Trans tb : {Trans::kNo, Trans::kYes}) {
      for (const bool accumulate : {false, true}) {
        const std::size_t lda = ta == Trans::kNo ? k : m;
        const std::size_t ldb = tb == Trans::kNo ? n : k;
        Tensor a = random_tensor({ta == Trans::kNo ? m : k, lda}, rng);
        Tensor b = random_tensor({tb == Trans::kNo ? k : n, ldb}, rng);
        Tensor c = random_tensor({m, n}, rng);
        Tensor c_ref = c;
        kernels::sgemm(ta, tb, m, n, k, a.raw(), lda, b.raw(), ldb, c.raw(),
                       n, accumulate);
        naive_gemm(ta, tb, m, n, k, a.raw(), lda, b.raw(), ldb, c_ref.raw(),
                   n, accumulate);
        expect_close(c, c_ref, kParityTol, "sgemm");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SgemmParity,
    ::testing::Values(GemmCase{1, 1, 1}, GemmCase{4, 4, 4}, GemmCase{5, 7, 3},
                      GemmCase{17, 33, 9}, GemmCase{64, 64, 64},
                      GemmCase{3, 200, 1}, GemmCase{128, 1, 70},
                      GemmCase{65, 130, 257}));

// ---------------------------------------------------------------------------
// Runtime SIMD dispatch matrix: every kernel choice must agree with the
// naive reference on odd shapes (register-tile remainders, masked column
// tails, kMC/kNC/kKC block boundaries), for all four transpose combos,
// accumulate on/off — and must be bit-identical across thread counts
// *within* a kernel choice (the determinism contract is per-kernel; scalar
// vs AVX2 agree only to rounding because FMA rounds once per term).

/// Restores the process-wide kernel choice and global pool on scope exit,
/// including early ASSERT exits.
struct DispatchGuard {
  kernels::SimdKernel saved = kernels::active_simd_kernel();
  ~DispatchGuard() {
    kernels::set_simd_kernel(saved);
    util::ThreadPool::reset_global(0);
  }
};

std::vector<GemmCase> dispatch_matrix_shapes() {
  // Full cube over dims that straddle the 4/6-row tiles and 8/16-wide column
  // chunks, plus sentinels that cross the kMC=64 / kNC=128 / kKC=256 cache
  // blocks (255/257/130).
  const std::size_t dims[] = {1, 3, 17, 63, 64, 65};
  std::vector<GemmCase> cases;
  for (std::size_t m : dims)
    for (std::size_t n : dims)
      for (std::size_t k : dims) cases.push_back({m, n, k});
  cases.push_back({255, 255, 255});
  cases.push_back({255, 1, 255});
  cases.push_back({1, 255, 255});
  cases.push_back({255, 255, 1});
  cases.push_back({17, 33, 257});
  cases.push_back({65, 255, 130});
  return cases;
}

class SimdDispatchMatrix : public ::testing::TestWithParam<GemmCase> {};

TEST_P(SimdDispatchMatrix, EveryKernelMatchesReferenceAndIsThreadStable) {
  const auto [m, n, k] = GetParam();
  DispatchGuard guard;
  std::vector<kernels::SimdKernel> choices{kernels::SimdKernel::kScalar};
  if (kernels::avx2_available())
    choices.push_back(kernels::SimdKernel::kAvx2);
  util::Rng rng(71);
  for (const Trans ta : {Trans::kNo, Trans::kYes}) {
    for (const Trans tb : {Trans::kNo, Trans::kYes}) {
      for (const bool accumulate : {false, true}) {
        const std::size_t lda = ta == Trans::kNo ? k : m;
        const std::size_t ldb = tb == Trans::kNo ? n : k;
        Tensor a = random_tensor({ta == Trans::kNo ? m : k, lda}, rng);
        Tensor b = random_tensor({tb == Trans::kNo ? k : n, ldb}, rng);
        Tensor c0 = random_tensor({m, n}, rng);
        Tensor c_ref = c0;
        naive_gemm(ta, tb, m, n, k, a.raw(), lda, b.raw(), ldb, c_ref.raw(),
                   n, accumulate);
        for (const kernels::SimdKernel choice : choices) {
          kernels::set_simd_kernel(choice);
          util::ThreadPool::reset_global(1);
          Tensor c1 = c0;
          kernels::sgemm(ta, tb, m, n, k, a.raw(), lda, b.raw(), ldb,
                         c1.raw(), n, accumulate);
          util::ThreadPool::reset_global(4);
          Tensor c4 = c0;
          kernels::sgemm(ta, tb, m, n, k, a.raw(), lda, b.raw(), ldb,
                         c4.raw(), n, accumulate);
          expect_close(c1, c_ref, kParityTol,
                       kernels::simd_kernel_name(choice));
          for (std::size_t i = 0; i < c1.size(); ++i)
            ASSERT_EQ(c1[i], c4[i])
                << kernels::simd_kernel_name(choice)
                << " kernel drifted across thread counts at " << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SimdDispatchMatrix,
                         ::testing::ValuesIn(dispatch_matrix_shapes()));

TEST(SimdDispatch, NamesAndOverrideContract) {
  DispatchGuard guard;
  EXPECT_STREQ(kernels::simd_kernel_name(kernels::SimdKernel::kScalar),
               "scalar");
  EXPECT_STREQ(kernels::simd_kernel_name(kernels::SimdKernel::kAvx2), "avx2");
  kernels::set_simd_kernel(kernels::SimdKernel::kScalar);
  EXPECT_EQ(kernels::active_simd_kernel(), kernels::SimdKernel::kScalar);
  if (kernels::avx2_available()) {
    kernels::set_simd_kernel(kernels::SimdKernel::kAvx2);
    EXPECT_EQ(kernels::active_simd_kernel(), kernels::SimdKernel::kAvx2);
  } else {
    EXPECT_THROW(kernels::set_simd_kernel(kernels::SimdKernel::kAvx2),
                 std::invalid_argument);
  }
}

TEST(SimdDispatch, NonTightLeadingDimensionsEveryKernel) {
  DispatchGuard guard;
  util::Rng rng(7);
  const std::size_t m = 13, n = 21, k = 11;
  const std::size_t lda = k + 3, ldb = n + 5, ldc = n + 2;
  Tensor a = random_tensor({m, lda}, rng);
  Tensor b = random_tensor({k, ldb}, rng);
  Tensor c0 = random_tensor({m, ldc}, rng);
  Tensor c_ref = c0;
  naive_gemm(Trans::kNo, Trans::kNo, m, n, k, a.raw(), lda, b.raw(), ldb,
             c_ref.raw(), ldc, false);
  std::vector<kernels::SimdKernel> choices{kernels::SimdKernel::kScalar};
  if (kernels::avx2_available())
    choices.push_back(kernels::SimdKernel::kAvx2);
  for (const kernels::SimdKernel choice : choices) {
    kernels::set_simd_kernel(choice);
    Tensor c = c0;
    kernels::sgemm(Trans::kNo, Trans::kNo, m, n, k, a.raw(), lda, b.raw(),
                   ldb, c.raw(), ldc, false);
    // The ldc slack columns must be untouched — the masked tail stores may
    // not write past column n.
    expect_close(c, c_ref, kParityTol, kernels::simd_kernel_name(choice));
  }
}

TEST(SgemmParity, NonTightLeadingDimensions) {
  util::Rng rng(7);
  const std::size_t m = 6, n = 9, k = 11;
  const std::size_t lda = k + 3, ldb = n + 5, ldc = n + 2;
  Tensor a = random_tensor({m, lda}, rng);
  Tensor b = random_tensor({k, ldb}, rng);
  Tensor c = random_tensor({m, ldc}, rng);
  Tensor c_ref = c;
  kernels::sgemm(Trans::kNo, Trans::kNo, m, n, k, a.raw(), lda, b.raw(), ldb,
                 c.raw(), ldc, false);
  naive_gemm(Trans::kNo, Trans::kNo, m, n, k, a.raw(), lda, b.raw(), ldb,
             c_ref.raw(), ldc, false);
  // Columns beyond n (the ldc slack) must be untouched.
  expect_close(c, c_ref, kParityTol, "sgemm-ld");
}

TEST(SgemmParity, ZeroKZeroesOrKeepsC) {
  util::Rng rng(8);
  Tensor a({2, 2}), b({2, 2});
  Tensor c = random_tensor({2, 2}, rng);
  Tensor kept = c;
  kernels::sgemm(Trans::kNo, Trans::kNo, 2, 2, 0, a.raw(), 2, b.raw(), 2,
                 c.raw(), 2, true);
  expect_close(c, kept, 0.0, "k=0 accumulate");
  kernels::sgemm(Trans::kNo, Trans::kNo, 2, 2, 0, a.raw(), 2, b.raw(), 2,
                 c.raw(), 2, false);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c[i], 0.0f);
}

TEST(KernelHelpers, AxpyBiasRowsColSums) {
  Tensor x({4}, {1, 2, 3, 4});
  Tensor y({4}, {10, 20, 30, 40});
  kernels::axpy(4, 0.5f, x.raw(), y.raw());
  EXPECT_FLOAT_EQ(y[0], 10.5f);
  EXPECT_FLOAT_EQ(y[3], 42.0f);

  Tensor bias({3}, {1, 2, 3});
  Tensor rows({2, 3});
  kernels::broadcast_bias_rows(2, 3, bias.raw(), rows.raw(), 3);
  EXPECT_FLOAT_EQ(rows.at2(0, 2), 3.0f);
  EXPECT_FLOAT_EQ(rows.at2(1, 0), 1.0f);

  Tensor sums({3}, {100, 100, 100});
  kernels::col_sums_accumulate(2, 3, rows.raw(), 3, sums.raw());
  EXPECT_FLOAT_EQ(sums[0], 102.0f);
  EXPECT_FLOAT_EQ(sums[2], 106.0f);
}

// ---------------------------------------------------------------------------
// Thread pool semantics.

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  util::ThreadPool pool(4);
  const std::size_t n = 1337;
  std::vector<int> hits(n, 0);
  pool.parallel_for(n, 16, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
            static_cast<int>(n));
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(),
                          [](int h) { return h == 1; }));
}

TEST(ThreadPool, ChunkLayoutIndependentOfThreadCount) {
  // parallel_for_chunks must produce the same (chunk -> range) mapping for
  // any worker count: that is what makes chunk-ordered reductions bit-stable.
  auto collect = [](util::ThreadPool& pool) {
    std::vector<std::pair<std::size_t, std::size_t>> ranges(
        util::ThreadPool::chunk_count(23, 5));
    std::mutex mu;
    pool.parallel_for_chunks(23, 5, [&](std::size_t c, std::size_t b,
                                        std::size_t e) {
      std::lock_guard<std::mutex> lock(mu);
      ranges[c] = {b, e};
    });
    return ranges;
  };
  util::ThreadPool serial(1), parallel(4);
  EXPECT_EQ(collect(serial), collect(parallel));
  EXPECT_EQ(util::ThreadPool::chunk_count(23, 5), 5u);
  EXPECT_EQ(util::ThreadPool::chunk_count(0, 5), 0u);
}

TEST(ThreadPool, PropagatesExceptions) {
  util::ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100, 1,
                        [](std::size_t, std::size_t) {
                          throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must remain usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(10, 1, [&](std::size_t b, std::size_t e) {
    count += static_cast<int>(e - b);
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  util::ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(4, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      pool.parallel_for(25, 1, [&](std::size_t ib, std::size_t ie) {
        total += static_cast<int>(ie - ib);
      });
  });
  EXPECT_EQ(total.load(), 100);
}

TEST(ThreadPool, EpisodeFanOutNestsGemmWithoutDeadlockOrDrift) {
  // Production shape of the episode-parallel experiment drivers: worker
  // loops run as chunks on the *global* pool, and every nn forward inside
  // an episode issues GEMM parallel_fors against that same pool. The
  // nested calls must run caller-inline (no deadlock, no oversubscription)
  // and produce bits identical to the same GEMM computed outside the pool.
  util::Rng rng(99);
  const std::size_t m = 33, n = 27, k = 41;
  Tensor a = random_tensor({m, k}, rng);
  Tensor b = random_tensor({k, n}, rng);
  Tensor expected({m, n});
  kernels::sgemm(Trans::kNo, Trans::kNo, m, n, k, a.raw(), k, b.raw(), n,
                 expected.raw(), n, false);

  util::ThreadPool& pool = util::ThreadPool::global();
  ASSERT_FALSE(util::ThreadPool::inside_worker());
  const std::size_t workers = 4;
  std::vector<Tensor> results(workers);
  std::atomic<int> flagged{0};
  pool.parallel_for_chunks(
      workers, 1, [&](std::size_t w, std::size_t, std::size_t) {
        if (util::ThreadPool::inside_worker()) flagged.fetch_add(1);
        Tensor c({m, n});
        kernels::sgemm(Trans::kNo, Trans::kNo, m, n, k, a.raw(), k, b.raw(),
                       n, c.raw(), n,
                       false);  // nested under an episode worker
        results[w] = std::move(c);
      });
  // With >1 pool threads every chunk must see the inside-worker flag; a
  // serial pool runs chunks inline without it (and nesting is trivially
  // safe there).
  if (pool.size() > 1) {
    EXPECT_EQ(flagged.load(), static_cast<int>(workers));
  }
  EXPECT_FALSE(util::ThreadPool::inside_worker());
  for (std::size_t w = 0; w < workers; ++w) {
    ASSERT_EQ(results[w].size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
      ASSERT_EQ(results[w][i], expected[i])
          << "nested GEMM drifted in worker " << w << " at " << i;
  }
}

TEST(ThreadPool, EmptyAndTinyRanges) {
  util::ThreadPool pool(3);
  int calls = 0;
  pool.parallel_for(0, 8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(3, 100, [&](std::size_t b, std::size_t e) {
    ++calls;
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 3u);
  });
  EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------------------------
// Layer parity against the retained naive reference implementations.

TEST(DenseParity, ForwardBackwardMatchReference) {
  util::Rng rng(11);
  Dense d(37, 29, rng);
  auto params = d.params();
  Tensor x = random_tensor({5, 37}, rng);
  Tensor y = d.forward(x);
  Tensor y_ref = ref::dense_forward(x, *params[0].value, *params[1].value);
  expect_close(y, y_ref, kParityTol, "dense forward");

  Tensor g = random_tensor({5, 29}, rng);
  d.zero_grad();
  Tensor gx = d.backward(g);
  Tensor gw({29, 37}), gb({29});
  Tensor gx_ref = ref::dense_backward(x, *params[0].value, g, gw, gb);
  expect_close(gx, gx_ref, kParityTol, "dense dx");
  expect_close(*params[0].grad, gw, kParityTol, "dense dW");
  expect_close(*params[1].grad, gb, kParityTol, "dense db");
}

struct ConvParityCase {
  std::size_t batch, in_c, out_c, hw, k, stride, pad;
};

class Conv2DParity : public ::testing::TestWithParam<ConvParityCase> {};

TEST_P(Conv2DParity, ForwardBackwardMatchReference) {
  const auto p = GetParam();
  util::Rng rng(21);
  Conv2D conv(p.in_c, p.out_c, p.k, p.stride, p.pad, rng);
  auto params = conv.params();
  Tensor x = random_tensor({p.batch, p.in_c, p.hw, p.hw}, rng);
  Tensor y = conv.forward(x);
  Tensor y_ref =
      ref::conv2d_forward(x, *params[0].value, *params[1].value, p.stride,
                          p.pad);
  expect_close(y, y_ref, kParityTol, "conv forward");

  Tensor g = random_tensor(y.shape(), rng);
  conv.zero_grad();
  Tensor gx = conv.backward(g);
  Tensor gw(params[0].value->shape()), gb({p.out_c});
  Tensor gx_ref =
      ref::conv2d_backward(x, *params[0].value, g, p.stride, p.pad, gw, gb);
  expect_close(gx, gx_ref, kParityTol, "conv dx");
  expect_close(*params[0].grad, gw, kParityTol, "conv dW");
  expect_close(*params[1].grad, gb, kParityTol, "conv db");
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Conv2DParity,
    // The 9-item batch spans three backward reduction chunks (grain 4), the
    // stride/pad variants cover every im2col edge case.
    ::testing::Values(ConvParityCase{1, 1, 2, 5, 3, 1, 0},
                      ConvParityCase{3, 2, 4, 9, 3, 2, 1},
                      ConvParityCase{9, 2, 3, 8, 3, 1, 1},
                      ConvParityCase{2, 3, 1, 6, 2, 2, 0},
                      ConvParityCase{1, 1, 1, 4, 3, 1, 2}));

class LstmParity : public ::testing::TestWithParam<bool> {};

TEST_P(LstmParity, ForwardBackwardMatchReference) {
  const bool return_sequences = GetParam();
  util::Rng rng(31);
  Lstm lstm(6, 5, return_sequences, rng);
  auto params = lstm.params();
  ref::LstmRef ref_lstm(*params[0].value, *params[1].value, *params[2].value,
                        return_sequences);
  Tensor x = random_tensor({3, 4, 6}, rng);
  Tensor y = lstm.forward(x);
  Tensor y_ref = ref_lstm.forward(x);
  expect_close(y, y_ref, kParityTol, "lstm forward");

  Tensor g = random_tensor(y.shape(), rng);
  lstm.zero_grad();
  Tensor gx = lstm.backward(g);
  Tensor gw(params[0].value->shape()), gu(params[1].value->shape()),
      gb(params[2].value->shape());
  Tensor gx_ref = ref_lstm.backward(g, gw, gu, gb);
  expect_close(gx, gx_ref, kParityTol, "lstm dx");
  expect_close(*params[0].grad, gw, kParityTol, "lstm dW");
  expect_close(*params[1].grad, gu, kParityTol, "lstm dU");
  expect_close(*params[2].grad, gb, kParityTol, "lstm db");
}

INSTANTIATE_TEST_SUITE_P(Modes, LstmParity, ::testing::Bool());

// ---------------------------------------------------------------------------
// Finite-difference gradient checks on the GEMM paths (run at both
// RLATTACK_THREADS registrations).

TEST(GemmGradCheck, Dense) {
  util::Rng rng(41);
  Dense d(8, 6, rng);
  Tensor x = random_tensor({4, 8}, rng);
  check_input_gradient(d, x, rng);
  check_param_gradients(d, x, rng);
}

TEST(GemmGradCheck, Conv2D) {
  util::Rng rng(42);
  Conv2D c(2, 3, 3, 2, 1, rng);
  Tensor x = random_tensor({2, 2, 6, 6}, rng);
  check_input_gradient(c, x, rng);
  check_param_gradients(c, x, rng);
}

TEST(GemmGradCheck, Lstm) {
  util::Rng rng(43);
  Lstm lstm(5, 4, false, rng);
  Tensor x = random_tensor({2, 3, 5}, rng);
  check_input_gradient(lstm, x, rng);
  check_param_gradients(lstm, x, rng);
}

// ---------------------------------------------------------------------------
// Bit-level determinism across thread counts: the kernels partition output
// rows, so serial and 4-thread pools must produce identical bits.

TEST(Determinism, ForwardBitStableAcrossThreadCounts) {
  util::Rng rng(51);
  Dense dense(40, 33, rng);
  Conv2D conv(2, 4, 3, 1, 1, rng);
  Lstm lstm(12, 9, false, rng);
  Tensor xd = random_tensor({16, 40}, rng);
  Tensor xc = random_tensor({8, 2, 10, 10}, rng);
  Tensor xl = random_tensor({6, 5, 12}, rng);

  Tensor gd = random_tensor({16, 33}, rng);

  util::ThreadPool::reset_global(4);
  Tensor yd4 = dense.forward(xd);
  Tensor yc4 = conv.forward(xc);
  Tensor yl4 = lstm.forward(xl);
  dense.zero_grad();
  Tensor gx4 = dense.backward(gd);

  util::ThreadPool::reset_global(1);
  Tensor yd1 = dense.forward(xd);
  Tensor yc1 = conv.forward(xc);
  Tensor yl1 = lstm.forward(xl);
  dense.zero_grad();
  Tensor gx1 = dense.backward(gd);
  util::ThreadPool::reset_global(0);  // restore the env-resolved pool

  for (std::size_t i = 0; i < yd4.size(); ++i) EXPECT_EQ(yd4[i], yd1[i]);
  for (std::size_t i = 0; i < yc4.size(); ++i) EXPECT_EQ(yc4[i], yc1[i]);
  for (std::size_t i = 0; i < yl4.size(); ++i) EXPECT_EQ(yl4[i], yl1[i]);
  for (std::size_t i = 0; i < gx4.size(); ++i) EXPECT_EQ(gx4[i], gx1[i]);
}

}  // namespace
}  // namespace rlattack::nn
