// Replay buffers, sum-tree properties, networks and agent-learning smoke
// tests.
#include <gtest/gtest.h>

#include <algorithm>

#include "gradcheck.hpp"
#include "rlattack/env/cartpole.hpp"
#include "rlattack/rl/a2c.hpp"
#include "rlattack/rl/batch.hpp"
#include "rlattack/rl/factory.hpp"
#include "rlattack/rl/q_agent.hpp"
#include "rlattack/rl/replay.hpp"
#include "rlattack/rl/trainer.hpp"
#include "rlattack/util/stats.hpp"

namespace rlattack::rl {
namespace {

using rlattack::testing::random_tensor;

Replayed make_transition(float reward) {
  Replayed r;
  r.observation = nn::Tensor({2}, {reward, 0.0f});
  r.action = 0;
  r.reward = reward;
  r.next_observation = nn::Tensor({2});
  r.done = false;
  return r;
}

TEST(ReplayBuffer, CapacityEviction) {
  ReplayBuffer buf(3);
  for (int i = 0; i < 5; ++i) buf.push(make_transition(static_cast<float>(i)));
  EXPECT_EQ(buf.size(), 3u);
  // Ring kept the newest 3 rewards {2, 3, 4}.
  util::RunningStats stats;
  for (std::size_t i = 0; i < buf.size(); ++i) stats.add(buf[i].reward);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
}

TEST(ReplayBuffer, SampleIndicesInRange) {
  ReplayBuffer buf(10);
  for (int i = 0; i < 4; ++i) buf.push(make_transition(1.0f));
  util::Rng rng(1);
  for (std::size_t idx : buf.sample_indices(100, rng)) EXPECT_LT(idx, 4u);
}

TEST(ReplayBuffer, EmptySampleThrows) {
  ReplayBuffer buf(4);
  util::Rng rng(1);
  EXPECT_THROW(buf.sample_indices(1, rng), std::logic_error);
  EXPECT_THROW(ReplayBuffer(0), std::logic_error);
}

TEST(SumTree, TotalTracksUpdates) {
  SumTree tree(4);
  tree.set(0, 1.0f);
  tree.set(1, 2.0f);
  tree.set(2, 3.0f);
  EXPECT_FLOAT_EQ(tree.total(), 6.0f);
  tree.set(1, 0.5f);
  EXPECT_FLOAT_EQ(tree.total(), 4.5f);
  EXPECT_FLOAT_EQ(tree.get(2), 3.0f);
}

TEST(SumTree, FindRespectsPrefixSums) {
  SumTree tree(4);
  tree.set(0, 1.0f);
  tree.set(1, 2.0f);
  tree.set(2, 3.0f);
  tree.set(3, 4.0f);
  EXPECT_EQ(tree.find(0.5f), 0u);
  EXPECT_EQ(tree.find(1.5f), 1u);
  EXPECT_EQ(tree.find(3.5f), 2u);
  EXPECT_EQ(tree.find(9.5f), 3u);
}

TEST(SumTree, PropertySamplingMatchesPriorities) {
  // Property sweep: empirical sampling frequencies track priorities.
  SumTree tree(8);
  std::vector<float> priorities{1, 2, 0, 4, 1, 0, 8, 0};
  for (std::size_t i = 0; i < priorities.size(); ++i)
    tree.set(i, priorities[i]);
  util::Rng rng(99);
  std::vector<std::size_t> counts(8, 0);
  const int draws = 20000;
  for (int i = 0; i < draws; ++i)
    ++counts[tree.find(static_cast<float>(rng.uniform() * tree.total()))];
  for (std::size_t i = 0; i < 8; ++i) {
    const double expected = priorities[i] / 16.0;
    const double observed = static_cast<double>(counts[i]) / draws;
    EXPECT_NEAR(observed, expected, 0.02) << "leaf " << i;
  }
}

TEST(SumTree, InvalidOperationsThrow) {
  SumTree tree(2);
  EXPECT_THROW(tree.set(2, 1.0f), std::logic_error);
  EXPECT_THROW(tree.set(0, -1.0f), std::logic_error);
  EXPECT_THROW(SumTree(0), std::logic_error);
}

TEST(PrioritizedReplay, NewItemsGetSampled) {
  PrioritizedReplayBuffer::Config cfg;
  cfg.capacity = 8;
  PrioritizedReplayBuffer buf(cfg);
  for (int i = 0; i < 4; ++i) buf.push(make_transition(static_cast<float>(i)));
  util::Rng rng(3);
  auto sample = buf.sample(16, rng);
  for (std::size_t idx : sample.indices) EXPECT_LT(idx, 4u);
  for (float w : sample.weights) {
    EXPECT_GT(w, 0.0f);
    EXPECT_LE(w, 1.0f);
  }
}

TEST(PrioritizedReplay, HighTdErrorSampledMore) {
  PrioritizedReplayBuffer::Config cfg;
  cfg.capacity = 4;
  PrioritizedReplayBuffer buf(cfg);
  for (int i = 0; i < 4; ++i) buf.push(make_transition(static_cast<float>(i)));
  buf.update_priorities({0, 1, 2, 3}, {10.0f, 0.01f, 0.01f, 0.01f});
  util::Rng rng(5);
  std::size_t hot = 0, total = 0;
  for (int round = 0; round < 100; ++round) {
    auto s = buf.sample(8, rng);
    for (std::size_t idx : s.indices) {
      if (idx == 0) ++hot;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(hot) / static_cast<double>(total), 0.5);
}

TEST(PrioritizedReplay, BetaAnnealsTowardOne) {
  PrioritizedReplayBuffer::Config cfg;
  cfg.capacity = 4;
  cfg.beta_anneal_steps = 10;
  PrioritizedReplayBuffer buf(cfg);
  buf.push(make_transition(0.0f));
  const float beta0 = buf.current_beta();
  util::Rng rng(1);
  for (int i = 0; i < 20; ++i) buf.sample(2, rng);
  EXPECT_LT(beta0, buf.current_beta());
  EXPECT_FLOAT_EQ(buf.current_beta(), cfg.beta_end);
}

TEST(PrioritizedReplay, UpdateSizeMismatchThrows) {
  PrioritizedReplayBuffer::Config cfg;
  cfg.capacity = 4;
  PrioritizedReplayBuffer buf(cfg);
  buf.push(make_transition(0.0f));
  EXPECT_THROW(buf.update_priorities({0, 1}, {1.0f}), std::logic_error);
}

TEST(Batch, StacksObservations) {
  nn::Tensor a({2}, {1, 2});
  nn::Tensor b({2}, {3, 4});
  std::vector<const nn::Tensor*> ptrs{&a, &b};
  nn::Tensor batch = batch_observations(ptrs);
  EXPECT_EQ(batch.dim(0), 2u);
  EXPECT_FLOAT_EQ(batch.at2(1, 0), 3.0f);
}

TEST(Batch, InconsistentShapesThrow) {
  nn::Tensor a({2});
  nn::Tensor b({3});
  std::vector<const nn::Tensor*> ptrs{&a, &b};
  EXPECT_THROW(batch_observations(ptrs), std::logic_error);
}

TEST(Batch, AsBatchOfOne) {
  nn::Tensor obs({1, 4, 4});
  nn::Tensor batched = as_batch_of_one(obs);
  EXPECT_EQ(batched.rank(), 4u);
  EXPECT_EQ(batched.dim(0), 1u);
}

TEST(Networks, MakeNetSelectsArchitecture) {
  util::Rng rng(1);
  ObsSpec vec{{4}};
  ObsSpec img{{2, 8, 8}};
  EXPECT_FALSE(vec.is_image());
  EXPECT_TRUE(img.is_image());
  auto mlp = make_net(vec, 3, 16, rng);
  EXPECT_EQ(mlp->forward(nn::Tensor({1, 4})).dim(1), 3u);
  auto conv = make_net(img, 3, 16, rng);
  EXPECT_EQ(conv->forward(nn::Tensor({1, 2, 8, 8})).dim(1), 3u);
}

TEST(Networks, DuelingHeadIdentity) {
  // Q = V + A - mean(A): adding a constant to all advantages leaves Q
  // unchanged; that's the head's defining invariant.
  util::Rng rng(2);
  DuelingHead head(4, 3, 8, /*noisy=*/false, rng);
  nn::Tensor x = random_tensor({2, 4}, rng);
  nn::Tensor q = head.forward(x);
  EXPECT_EQ(q.dim(1), 3u);
  // Mean-advantage subtraction means gradient rows that are constant across
  // actions flow only into the value stream: check backward shape.
  nn::Tensor g = head.backward(random_tensor({2, 3}, rng));
  EXPECT_TRUE(g.same_shape(x));
}

TEST(Networks, DuelingHeadGradCheck) {
  util::Rng rng(3);
  DuelingHead head(5, 3, 8, false, rng);
  nn::Tensor x = random_tensor({2, 5}, rng);
  rlattack::testing::check_input_gradient(head, x, rng);
  rlattack::testing::check_param_gradients(head, x, rng);
}

TEST(Networks, RainbowNetOutputsActions) {
  util::Rng rng(4);
  auto net = make_rainbow_net(ObsSpec{{4}}, 2, 16, true, rng);
  nn::Tensor q = net->forward(nn::Tensor({1, 4}));
  EXPECT_EQ(q.dim(1), 2u);
}

TEST(Agents, FactoryAndAlgorithmNames) {
  for (Algorithm a : {Algorithm::kDqn, Algorithm::kA2c, Algorithm::kRainbow})
    EXPECT_EQ(parse_algorithm(algorithm_name(a)), a);
  EXPECT_THROW(parse_algorithm("sac"), std::invalid_argument);
  util::Rng rng(1);
  for (Algorithm a : {Algorithm::kDqn, Algorithm::kA2c, Algorithm::kRainbow}) {
    AgentPtr agent = make_agent(a, ObsSpec{{4}}, 2, 7);
    EXPECT_EQ(agent->algorithm(), algorithm_name(a));
    EXPECT_EQ(agent->action_count(), 2u);
    const std::size_t action = agent->act(nn::Tensor({4}), false);
    EXPECT_LT(action, 2u);
  }
}

TEST(Agents, GreedyActionIsDeterministic) {
  AgentPtr agent = make_dqn_agent(ObsSpec{{4}}, 2, 7);
  nn::Tensor obs({4}, {0.1f, -0.2f, 0.3f, 0.0f});
  const std::size_t a1 = agent->act(obs, false);
  const std::size_t a2 = agent->act(obs, false);
  EXPECT_EQ(a1, a2);
}

TEST(QAgent, EpsilonDecays) {
  QAgent::Config cfg;
  cfg.eps_decay_steps = 10;
  cfg.warmup_steps = 1000;  // no training in this test
  QAgent agent(ObsSpec{{4}}, 2, cfg, 1);
  EXPECT_FLOAT_EQ(agent.epsilon(), cfg.eps_start);
  nn::Tensor obs({4});
  for (int i = 0; i < 20; ++i)
    agent.learn(obs, 0, 0.0, obs, false);
  EXPECT_FLOAT_EQ(agent.epsilon(), cfg.eps_end);
}

TEST(QAgent, NoisyAgentEpsilonFloorDecaysToZero) {
  // Noisy agents keep a small decaying epsilon floor (exploration rescue
  // for near-zero observations; see Config docs) that must hit exactly 0.
  QAgent::Config cfg;
  cfg.use_noisy = true;
  cfg.use_dueling = true;
  cfg.eps_decay_steps = 10;
  cfg.warmup_steps = 1000;
  QAgent agent(ObsSpec{{4}}, 2, cfg, 1);
  EXPECT_FLOAT_EQ(agent.epsilon(), cfg.noisy_eps_start);
  nn::Tensor obs({4});
  for (int i = 0; i < 20; ++i) agent.learn(obs, 0, 0.0, obs, false);
  EXPECT_FLOAT_EQ(agent.epsilon(), 0.0f);
}

struct AlgoCase {
  Algorithm algorithm;
  double target;
};

class AgentLearnsCartPole : public ::testing::TestWithParam<AlgoCase> {};

// Training smoke: each algorithm must clearly beat the random policy
// (random play scores ~20 on CartPole) within a small budget.
TEST_P(AgentLearnsCartPole, BeatsRandomPolicy) {
  const auto param = GetParam();
  env::CartPole train_env(env::CartPole::Config{}, 11);
  AgentPtr agent = make_agent(param.algorithm, ObsSpec{{4}}, 2, 11);
  TrainConfig tc;
  tc.episodes = 250;
  tc.target_reward = param.target;
  TrainResult result = train_agent(*agent, train_env, tc);

  env::CartPole eval_env(env::CartPole::Config{}, 12);
  const auto rewards = evaluate_agent(*agent, eval_env, 5, 500);
  EXPECT_GE(util::mean_of(rewards), param.target * 0.6)
      << algorithm_name(param.algorithm) << " failed to learn";
}

INSTANTIATE_TEST_SUITE_P(Algorithms, AgentLearnsCartPole,
                         ::testing::Values(AlgoCase{Algorithm::kDqn, 100.0},
                                           AlgoCase{Algorithm::kA2c, 80.0},
                                           AlgoCase{Algorithm::kRainbow,
                                                    100.0}));

TEST(C51, InvalidConfigsThrow) {
  QAgent::Config cfg;
  cfg.use_distributional = true;
  cfg.use_dueling = true;
  EXPECT_THROW(QAgent(ObsSpec{{4}}, 2, cfg, 1), std::logic_error);
  cfg.use_dueling = false;
  cfg.atoms = 1;
  EXPECT_THROW(QAgent(ObsSpec{{4}}, 2, cfg, 1), std::logic_error);
  cfg.atoms = 21;
  cfg.v_min = 5.0f;
  cfg.v_max = 5.0f;
  EXPECT_THROW(QAgent(ObsSpec{{4}}, 2, cfg, 1), std::logic_error);
}

TEST(C51, ActsAndLearnsWithoutError) {
  AgentPtr agent = make_c51_agent(ObsSpec{{4}}, 2, 3);
  nn::Tensor obs({4}, {0.1f, -0.2f, 0.05f, 0.0f});
  EXPECT_LT(agent->act(obs, false), 2u);
  // Drive enough transitions to trigger several distributional updates.
  util::Rng rng(3);
  for (int i = 0; i < 700; ++i) {
    nn::Tensor o = rlattack::testing::random_tensor({4}, rng);
    agent->learn(o, rng.uniform_int(std::uint64_t{2}), rng.uniform(), o,
                 i % 50 == 49);
  }
  EXPECT_LT(agent->act(obs, false), 2u);
}

TEST(C51, GreedyPrefersHigherExpectedValueState) {
  // Train on a two-state contextual bandit: action 0 pays 10 in state A,
  // action 1 pays 10 in state B (episodes of length 1). The learned greedy
  // policy must separate them.
  QAgent::Config cfg;
  cfg.use_distributional = true;
  cfg.use_double = true;
  cfg.v_min = -1.0f;
  cfg.v_max = 12.0f;
  cfg.warmup_steps = 64;
  cfg.train_interval = 1;
  cfg.eps_decay_steps = 300;
  QAgent agent(ObsSpec{{2}}, 2, cfg, 5);
  nn::Tensor state_a({2}, {1.0f, 0.0f});
  nn::Tensor state_b({2}, {0.0f, 1.0f});
  util::Rng rng(5);
  for (int i = 0; i < 800; ++i) {
    const bool in_a = rng.bernoulli(0.5);
    const nn::Tensor& s = in_a ? state_a : state_b;
    const std::size_t action = agent.act(s, true);
    const double reward =
        (in_a && action == 0) || (!in_a && action == 1) ? 10.0 : 0.0;
    agent.learn(s, action, reward, s, /*done=*/true);
  }
  EXPECT_EQ(agent.act(state_a, false), 0u);
  EXPECT_EQ(agent.act(state_b, false), 1u);
}

// act_batch contract (Agent::act_batch): the batched path must return
// exactly the actions B serial act() calls would, AND leave the agent's RNG
// stream in the identical state afterwards. The stream half of the contract
// is checked by interleaving rounds on a pair of same-seed agents — a
// stream that drifted in round r shows up as differing actions in round
// r+1, without needing access to the private RNG.
std::vector<std::size_t> act_rows_serially(Agent& agent,
                                           const nn::Tensor& stack,
                                           bool explore) {
  const std::size_t batch = stack.dim(0);
  const std::size_t width = stack.dim(1);
  std::vector<std::size_t> actions(batch);
  nn::Tensor row({width});
  for (std::size_t b = 0; b < batch; ++b) {
    std::copy(stack.raw() + b * width, stack.raw() + (b + 1) * width,
              row.raw());
    actions[b] = agent.act(row, explore);
  }
  return actions;
}

TEST(ActBatch, GreedyMatchesSerialPerAlgorithm) {
  util::Rng obs_rng(99);
  for (Algorithm a : {Algorithm::kDqn, Algorithm::kA2c, Algorithm::kRainbow}) {
    AgentPtr serial = make_agent(a, ObsSpec{{4}}, 3, 21);
    AgentPtr batched = make_agent(a, ObsSpec{{4}}, 3, 21);
    const nn::Tensor stack = random_tensor({6, 4}, obs_rng);
    const std::vector<std::size_t> expected =
        act_rows_serially(*serial, stack, /*explore=*/false);
    EXPECT_EQ(batched->act_batch(stack, false), expected)
        << algorithm_name(a);
    // Greedy evaluation consumes no RNG, so the very agent that just acted
    // serially must reproduce its own rows through the batched path too.
    EXPECT_EQ(serial->act_batch(stack, false), expected)
        << algorithm_name(a);
  }
}

TEST(ActBatch, ExploreMatchesSerialAndKeepsRngStreamAligned) {
  struct Case {
    const char* name;
    AgentPtr serial;
    AgentPtr batched;
  };
  // dqn: epsilon-greedy pre-draws; c51: distributional head on the shared
  // forward; rainbow: NoisyNet explore falls back to the defining per-row
  // loop; a2c: per-row categorical sampling after one forward.
  std::vector<Case> cases;
  cases.push_back({"dqn", make_dqn_agent(ObsSpec{{4}}, 3, 31),
                   make_dqn_agent(ObsSpec{{4}}, 3, 31)});
  cases.push_back({"c51", make_c51_agent(ObsSpec{{4}}, 3, 32),
                   make_c51_agent(ObsSpec{{4}}, 3, 32)});
  cases.push_back({"rainbow", make_rainbow_agent(ObsSpec{{4}}, 3, 33),
                   make_rainbow_agent(ObsSpec{{4}}, 3, 33)});
  cases.push_back({"a2c", make_a2c_agent(ObsSpec{{4}}, 3, 34),
                   make_a2c_agent(ObsSpec{{4}}, 3, 34)});
  util::Rng obs_rng(123);
  for (Case& c : cases) {
    for (int round = 0; round < 5; ++round) {
      const nn::Tensor stack = random_tensor({7, 4}, obs_rng);
      const std::vector<std::size_t> expected =
          act_rows_serially(*c.serial, stack, /*explore=*/true);
      EXPECT_EQ(c.batched->act_batch(stack, true), expected)
          << c.name << " round " << round;
    }
  }
}

TEST(ActBatch, RejectsUnstackedObservation) {
  AgentPtr agent = make_dqn_agent(ObsSpec{{4}}, 2, 7);
  EXPECT_THROW(agent->act_batch(nn::Tensor({4}), false), std::logic_error);
}

TEST(Trainer, CollectEpisodesRecordsActions) {
  env::CartPole env(env::CartPole::Config{}, 13);
  AgentPtr agent = make_dqn_agent(ObsSpec{{4}}, 2, 13);
  auto episodes = collect_episodes(*agent, env, 3, 13);
  ASSERT_EQ(episodes.size(), 3u);
  for (const auto& ep : episodes) {
    EXPECT_GT(ep.steps.size(), 0u);
    for (const auto& t : ep.steps) {
      EXPECT_EQ(t.observation.size(), 4u);
      EXPECT_LT(t.action, 2u);
    }
    EXPECT_TRUE(ep.steps.back().done);
    EXPECT_DOUBLE_EQ(ep.total_reward(),
                     static_cast<double>(ep.steps.size()));
  }
}

TEST(Trainer, CollectIsDeterministic) {
  env::CartPole env(env::CartPole::Config{}, 13);
  AgentPtr agent = make_dqn_agent(ObsSpec{{4}}, 2, 13);
  auto eps1 = collect_episodes(*agent, env, 2, 77);
  auto eps2 = collect_episodes(*agent, env, 2, 77);
  ASSERT_EQ(eps1.size(), eps2.size());
  for (std::size_t e = 0; e < eps1.size(); ++e) {
    ASSERT_EQ(eps1[e].steps.size(), eps2[e].steps.size());
    for (std::size_t t = 0; t < eps1[e].steps.size(); ++t)
      EXPECT_EQ(eps1[e].steps[t].action, eps2[e].steps[t].action);
  }
}

}  // namespace
}  // namespace rlattack::rl
