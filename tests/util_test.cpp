#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <string_view>

#include "rlattack/util/env.hpp"
#include "rlattack/util/image.hpp"
#include "rlattack/util/rng.hpp"
#include "rlattack/util/stats.hpp"
#include "rlattack/util/table.hpp"

namespace rlattack::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i)
    if (a() != b()) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(std::uint64_t{10});
    EXPECT_LT(v, 10u);
  }
  EXPECT_THROW(rng.uniform_int(std::uint64_t{0}), std::logic_error);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    const int v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    if (v == -2) saw_lo = true;
    if (v == 2) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(Rng, CategoricalRespectWeights) {
  Rng rng(3);
  std::vector<float> weights{0.0f, 1.0f, 3.0f};
  std::size_t counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[rng.categorical(weights)];
  EXPECT_EQ(counts[0], 0u);
  EXPECT_GT(counts[2], counts[1]);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 4000.0, 0.75, 0.05);
}

TEST(Rng, CategoricalInvalidInputs) {
  Rng rng(3);
  EXPECT_THROW(rng.categorical({}), std::logic_error);
  EXPECT_THROW(rng.categorical({-1.0f, 1.0f}), std::logic_error);
  EXPECT_THROW(rng.categorical({0.0f, 0.0f}), std::logic_error);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(9);
  auto p = rng.permutation(50);
  std::vector<bool> seen(50, false);
  for (std::size_t v : p) {
    ASSERT_LT(v, 50u);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(5);
  Rng child = a.split();
  EXPECT_NE(a(), child());
}

TEST(RunningStats, Basic) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Norms, L2AndLinf) {
  std::vector<float> v{3.0f, -4.0f};
  EXPECT_DOUBLE_EQ(l2_norm(v), 5.0);
  EXPECT_DOUBLE_EQ(linf_norm(v), 4.0);
}

TEST(TableWriter, RendersAlignedTable) {
  TableWriter t({"a", "long_header"});
  t.add_row({"1", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("long_header"), std::string::npos);
  EXPECT_NE(s.find("| 1"), std::string::npos);
}

TEST(TableWriter, CsvEscaping) {
  TableWriter t({"x"});
  t.add_row({"a,b"});
  t.add_row({"q\"uote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"q\"\"uote\""), std::string::npos);
}

TEST(TableWriter, RowPaddedToHeader) {
  TableWriter t({"a", "b"});
  t.add_row({"only"});
  EXPECT_EQ(t.rows()[0].size(), 2u);
}

TEST(TableWriter, EmptyHeaderThrows) {
  EXPECT_THROW(TableWriter({}), std::logic_error);
}

TEST(TableWriter, WriteCsvRoundTrip) {
  TableWriter t({"k", "v"});
  t.add_row({"x", "1"});
  const std::string path = ::testing::TempDir() + "rlattack_table.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k,v");
  std::filesystem::remove(path);
}

TEST(Fmt, FixedDigits) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_pm(1.0, 0.5, 1), "1.0 +/- 0.5");
}

TEST(Image, WritePgmAndValidate) {
  std::vector<float> pixels{0.0f, 0.5f, 1.0f, 2.0f};  // 2.0 clamps to 1
  const std::string path = ::testing::TempDir() + "rlattack_img.pgm";
  ASSERT_TRUE(write_pgm(path, pixels, 2, 2));
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P5");
  std::filesystem::remove(path);
}

TEST(Image, SizeMismatchFails) {
  std::vector<float> pixels{0.0f};
  EXPECT_FALSE(write_pgm("/tmp/never.pgm", pixels, 2, 2));
}

TEST(Image, RescaleToUnit) {
  std::vector<float> pixels{-1.0f, 0.0f, 1.0f};
  rescale_to_unit(pixels);
  EXPECT_FLOAT_EQ(pixels[0], 0.0f);
  EXPECT_FLOAT_EQ(pixels[1], 0.5f);
  EXPECT_FLOAT_EQ(pixels[2], 1.0f);
}

TEST(Image, RescaleConstantToZero) {
  std::vector<float> pixels{3.0f, 3.0f};
  rescale_to_unit(pixels);
  EXPECT_FLOAT_EQ(pixels[0], 0.0f);
  EXPECT_FLOAT_EQ(pixels[1], 0.0f);
}

// The env registry is the contract the rlattack-env-registry tidy check and
// the README table are generated against — pin its invariants. These tests
// deliberately never call setenv (nothing in the tree does; that is what
// makes the single audited getenv in env.cpp safe), so they only assert
// properties that hold for any ambient environment.
TEST(EnvRegistry, NamesArePrefixedAndUnique) {
  std::set<std::string> seen;
  for (const env::VarInfo& info : env::registry()) {
    EXPECT_TRUE(std::string_view(info.name).starts_with("RLATTACK_"))
        << info.name;
    EXPECT_TRUE(seen.insert(info.name).second)
        << "duplicate env var: " << info.name;
  }
  EXPECT_FALSE(seen.empty());
}

TEST(EnvRegistry, NameLookupAgreesWithRegistry) {
  for (const env::VarInfo& info : env::registry())
    EXPECT_STREQ(env::name(info.var), info.name);
}

TEST(EnvRegistry, EveryVarIsDocumented) {
  for (const env::VarInfo& info : env::registry())
    EXPECT_FALSE(std::string_view(info.doc).empty()) << info.name;
}

TEST(EnvRegistry, AccessorsAgreeWhenUnset) {
  for (const env::VarInfo& info : env::registry()) {
    if (env::get(info.var) != nullptr) continue;  // set in ambient env
    EXPECT_FALSE(env::is_set(info.var)) << info.name;
    EXPECT_FALSE(env::get_long(info.var).has_value()) << info.name;
    EXPECT_FALSE(env::get_double(info.var).has_value()) << info.name;
    EXPECT_FALSE(env::is_zero(info.var)) << info.name;
  }
}

}  // namespace
}  // namespace rlattack::util
