#include "rlattack/nn/tensor.hpp"

#include <gtest/gtest.h>

namespace rlattack::nn {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.rank(), 0u);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
}

TEST(Tensor, ZeroInitialised) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, ShapeAccessors) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_EQ(t.dim(2), 4u);
  EXPECT_THROW(t.dim(3), std::logic_error);
}

TEST(Tensor, ConstructWithData) {
  Tensor t({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(t.at2(0, 1), 2.0f);
  EXPECT_EQ(t.at2(1, 0), 3.0f);
}

TEST(Tensor, ConstructSizeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.0f}), std::logic_error);
}

TEST(Tensor, ZeroExtentThrows) {
  EXPECT_THROW(Tensor({2, 0}), std::logic_error);
}

TEST(Tensor, At3Indexing) {
  Tensor t({2, 3, 4});
  t.at3(1, 2, 3) = 7.0f;
  EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 7.0f);
}

TEST(Tensor, BoundsCheckedAt) {
  Tensor t({2});
  EXPECT_NO_THROW(t.at(1));
  EXPECT_THROW(t.at(2), std::logic_error);
}

TEST(Tensor, Reshape) {
  Tensor t({2, 6});
  Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.dim(0), 3u);
  EXPECT_EQ(r.dim(1), 4u);
  EXPECT_THROW(t.reshaped({5}), std::logic_error);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({4}, {1, 2, 3, 4});
  Tensor r = t.reshaped({2, 2});
  EXPECT_EQ(r.at2(1, 1), 4.0f);
}

TEST(Tensor, FillAndZero) {
  Tensor t({3});
  t.fill(2.5f);
  EXPECT_EQ(t[2], 2.5f);
  t.zero();
  EXPECT_EQ(t[0], 0.0f);
}

TEST(Tensor, ElementwiseAddSub) {
  Tensor a({2}, {1, 2});
  Tensor b({2}, {10, 20});
  a += b;
  EXPECT_EQ(a[1], 22.0f);
  a -= b;
  EXPECT_EQ(a[1], 2.0f);
}

TEST(Tensor, AddShapeMismatchThrows) {
  Tensor a({2});
  Tensor b({3});
  EXPECT_THROW(a += b, std::logic_error);
  EXPECT_THROW(a -= b, std::logic_error);
}

TEST(Tensor, ScalarMultiply) {
  Tensor a({2}, {1, -2});
  a *= -2.0f;
  EXPECT_EQ(a[0], -2.0f);
  EXPECT_EQ(a[1], 4.0f);
}

TEST(Tensor, SameShape) {
  EXPECT_TRUE(Tensor({2, 3}).same_shape(Tensor({2, 3})));
  EXPECT_FALSE(Tensor({2, 3}).same_shape(Tensor({3, 2})));
  EXPECT_FALSE(Tensor({6}).same_shape(Tensor({2, 3})));
}

TEST(Tensor, ShapeString) {
  EXPECT_EQ(Tensor({2, 3}).shape_string(), "[2, 3]");
}

TEST(Tensor, FromVector) {
  Tensor t = Tensor::from_vector({1, 2, 3});
  EXPECT_EQ(t.rank(), 1u);
  EXPECT_EQ(t.size(), 3u);
}

}  // namespace
}  // namespace rlattack::nn
