// Telemetry subsystem contract: registry registration semantics, hot-path
// counters/histograms/spans under the shared thread pool, the
// RunningStats::merge combine the per-thread slots rely on, disabled-mode
// inertness, and the deterministic JSON exporter. Suites are named
// Metrics* so run_checks.sh's TSan filter picks up the concurrency cases.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <string>

#include "rlattack/obs/json_util.hpp"
#include "rlattack/obs/metrics.hpp"
#include "rlattack/util/stats.hpp"
#include "rlattack/util/thread_pool.hpp"

namespace rlattack::obs {
namespace {

/// Restores the process-wide enabled flag on scope exit so tests that
/// flip it cannot leak state into later tests.
class EnabledGuard {
 public:
  EnabledGuard() : saved_(metrics_enabled()) {}
  ~EnabledGuard() { set_metrics_enabled(saved_); }

 private:
  bool saved_;
};

TEST(MetricsStatsTest, MergeMatchesSerialAccumulation) {
  util::RunningStats serial, left, right;
  const double samples[] = {1.0, 4.0, -2.0, 8.5, 3.25, 0.5};
  for (double x : samples) serial.add(x);
  for (int i = 0; i < 3; ++i) left.add(samples[i]);
  for (int i = 3; i < 6; ++i) right.add(samples[i]);

  left.merge(right);
  EXPECT_EQ(left.count(), serial.count());
  EXPECT_DOUBLE_EQ(left.mean(), serial.mean());
  EXPECT_NEAR(left.variance(), serial.variance(), 1e-12);
  EXPECT_EQ(left.min(), serial.min());
  EXPECT_EQ(left.max(), serial.max());
  EXPECT_DOUBLE_EQ(left.sum(), serial.sum());
}

TEST(MetricsStatsTest, MergeWithEmptySidesIsIdentity) {
  util::RunningStats stats, empty;
  stats.add(2.0);
  stats.add(6.0);

  util::RunningStats copy = stats;
  copy.merge(empty);  // merging in nothing changes nothing
  EXPECT_EQ(copy.count(), 2u);
  EXPECT_DOUBLE_EQ(copy.mean(), 4.0);

  util::RunningStats from_empty;
  from_empty.merge(stats);  // empty adopts the other side wholesale
  EXPECT_EQ(from_empty.count(), 2u);
  EXPECT_DOUBLE_EQ(from_empty.mean(), 4.0);
  EXPECT_EQ(from_empty.min(), 2.0);
  EXPECT_EQ(from_empty.max(), 6.0);
}

TEST(MetricsRegistryTest, SameNameReturnsSameHandle) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x.calls");
  Counter& b = registry.counter("x.calls");
  EXPECT_EQ(&a, &b);
  SpanStat& s1 = registry.span("x.time");
  SpanStat& s2 = registry.span("x.time");
  EXPECT_EQ(&s1, &s2);
}

TEST(MetricsRegistryTest, CrossTypeNameCollisionThrows) {
  MetricsRegistry registry;
  registry.counter("name");
  EXPECT_THROW(registry.gauge("name"), std::logic_error);
  EXPECT_THROW(registry.histogram("name", {1.0}), std::logic_error);
  EXPECT_THROW(registry.span("name"), std::logic_error);
}

TEST(MetricsRegistryTest, HistogramReboundsThrows) {
  MetricsRegistry registry;
  registry.histogram("h", {1.0, 2.0});
  EXPECT_NO_THROW(registry.histogram("h", {1.0, 2.0}));
  EXPECT_THROW(registry.histogram("h", {1.0, 3.0}), std::logic_error);
  EXPECT_THROW(registry.histogram("bad", {2.0, 1.0}), std::logic_error);
}

TEST(MetricsRegistryTest, ResetZeroesEverythingButKeepsHandles) {
  EnabledGuard guard;
  set_metrics_enabled(true);
  MetricsRegistry registry;
  Counter& c = registry.counter("c");
  Gauge& g = registry.gauge("g");
  Histogram& h = registry.histogram("h", {1.0});
  SpanStat& s = registry.span("s");
  c.add(5);
  g.set(2.5);
  h.record(0.5);
  s.record(1.25);

  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.snapshot().stats.count(), 0u);
  EXPECT_EQ(s.snapshot().count(), 0u);
  // The handle from before the reset is still the registered metric.
  EXPECT_EQ(&c, &registry.counter("c"));
}

TEST(MetricsRegistryTest, HistogramBucketsFollowLeSemantics) {
  EnabledGuard guard;
  set_metrics_enabled(true);
  MetricsRegistry registry;
  Histogram& h = registry.histogram("h", {1.0, 2.0});
  h.record(0.5);  // le 1
  h.record(1.0);  // le 1 (closed upper bound)
  h.record(1.5);  // le 2
  h.record(9.0);  // overflow
  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.buckets.size(), 3u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.stats.count(), 4u);
  EXPECT_EQ(snap.stats.min(), 0.5);
  EXPECT_EQ(snap.stats.max(), 9.0);
}

TEST(MetricsSpanTest, NestedSpansAggregateIndependently) {
  EnabledGuard guard;
  set_metrics_enabled(true);
  MetricsRegistry registry;
  SpanStat& outer_stat = registry.span("outer");
  SpanStat& inner_stat = registry.span("inner");
  {
    Span outer(outer_stat);
    for (int i = 0; i < 3; ++i) {
      Span inner(inner_stat);
    }
  }
  const util::RunningStats outer_snap = outer_stat.snapshot();
  const util::RunningStats inner_snap = inner_stat.snapshot();
  EXPECT_EQ(outer_snap.count(), 1u);
  EXPECT_EQ(inner_snap.count(), 3u);
  // The outer span wholly contains the inner ones.
  EXPECT_GE(outer_snap.sum(), inner_snap.sum());
}

TEST(MetricsSpanTest, StopFreezesSecondsAndIsIdempotent) {
  EnabledGuard guard;
  set_metrics_enabled(true);
  MetricsRegistry registry;
  SpanStat& stat = registry.span("s");
  Span span(stat);
  span.stop();
  const double frozen = span.seconds();
  EXPECT_GT(frozen, 0.0);
  span.stop();  // second stop must not record again
  EXPECT_EQ(span.seconds(), frozen);
  EXPECT_EQ(stat.snapshot().count(), 1u);
}

TEST(MetricsDisabledTest, HotPathsRecordNothingWhenDisabled) {
  EnabledGuard guard;
  MetricsRegistry registry;
  Counter& c = registry.counter("c");
  Gauge& g = registry.gauge("g");
  Histogram& h = registry.histogram("h", {1.0});
  SpanStat& s = registry.span("s");

  set_metrics_enabled(false);
  c.add(7);
  g.set(3.0);
  h.record(0.5);
  {
    Span span(s);
    EXPECT_EQ(span.seconds(), 0.0);  // inert: no clock reading taken
  }
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.snapshot().stats.count(), 0u);
  EXPECT_EQ(s.snapshot().count(), 0u);
}

TEST(MetricsDisabledTest, AlwaysSpanMeasuresButDoesNotRecord) {
  EnabledGuard guard;
  MetricsRegistry registry;
  SpanStat& s = registry.span("s");
  set_metrics_enabled(false);
  Span span(s, /*always=*/true);
  span.stop();
  // The wall-clock measurement survives (ExperimentTiming depends on it)...
  EXPECT_GT(span.seconds(), 0.0);
  // ...but the aggregate metric was not touched.
  EXPECT_EQ(s.snapshot().count(), 0u);
}

// Concurrency contract: totals must be exact (no lost updates) when many
// pool workers hammer the same handles. Registered with the TSan suite via
// the Metrics name filter in run_checks.sh.
TEST(MetricsConcurrencyTest, CountersAndSlotsAreExactUnderThreadPool) {
  EnabledGuard guard;
  set_metrics_enabled(true);
  MetricsRegistry registry;
  Counter& counter = registry.counter("c");
  Histogram& histogram = registry.histogram("h", {0.25, 0.5, 0.75});
  SpanStat& span_stat = registry.span("s");

  constexpr std::size_t kItems = 10000;
  util::ThreadPool::reset_global(4);
  util::ThreadPool::global().parallel_for(
      kItems, /*grain=*/64, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          counter.add();
          histogram.record(static_cast<double>(i % 100) / 100.0);
          Span span(span_stat);
        }
      });

  EXPECT_EQ(counter.value(), kItems);
  const HistogramSnapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.stats.count(), kItems);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kItems);
  EXPECT_EQ(span_stat.snapshot().count(), kItems);
}

TEST(MetricsConcurrencyTest, ConcurrentRegistrationYieldsOneHandle) {
  EnabledGuard guard;
  set_metrics_enabled(true);
  MetricsRegistry registry;
  std::atomic<Counter*> first{nullptr};
  util::ThreadPool::reset_global(4);
  util::ThreadPool::global().parallel_for(
      64, /*grain=*/1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          Counter& c = registry.counter("shared.name");
          Counter* expected = nullptr;
          first.compare_exchange_strong(expected, &c);
          EXPECT_EQ(first.load(), &c);
          c.add();
        }
      });
  EXPECT_EQ(registry.counter("shared.name").value(), 64u);
}

// Exporter golden test on a local registry with exactly-representable
// doubles, so the byte-for-byte comparison is platform-independent. The
// quantile fields are bucket representatives (10^x for non-integral x), so
// their decimal forms are composed through the same sketch_value/fmt_double
// helpers the exporter uses rather than hard-coded.
TEST(MetricsJsonTest, ExportsDeterministicGoldenJson) {
  EnabledGuard guard;
  set_metrics_enabled(true);
  MetricsRegistry registry;
  registry.counter("b.calls").add(3);
  registry.counter("a.calls").add(41);
  registry.gauge("workers").set(4.0);
  Histogram& h = registry.histogram("norms", {3.0, 5.0});
  h.record(2.0);
  h.record(4.0);
  h.record(6.0);  // mean 4, stddev 2, buckets 1/1/1
  SpanStat& s = registry.span("phase");
  s.record(0.25);
  s.record(0.75);  // total 1, mean 0.5

  const auto rep = [](double sample) {
    return detail::fmt_double(detail::sketch_value(detail::sketch_index(sample)));
  };
  // n=3: rank(p50)=2 -> bucket of 4.0; rank(p95)=rank(p99)=3 -> bucket of 6.0.
  const std::string h_p50 = rep(4.0);
  const std::string h_p9x = rep(6.0);
  // n=2: rank(p50)=1 -> bucket of 0.25; rank(p95)=rank(p99)=2 -> of 0.75.
  const std::string s_p50 = rep(0.25);
  const std::string s_p9x = rep(0.75);

  const std::string expected =
      "{\n"
      "  \"binary\": \"golden\",\n"
      "  \"counters\": {\n"
      "    \"a.calls\": 41,\n"
      "    \"b.calls\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"workers\": 4\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"norms\": {\"count\": 3, \"sum\": 12, \"mean\": 4, "
      "\"stddev\": 2, \"min\": 2, \"max\": 6, \"p50\": " +
      h_p50 + ", \"p95\": " + h_p9x + ", \"p99\": " + h_p9x +
      ", \"buckets\": "
      "[{\"le\": 3, \"count\": 1}, {\"le\": 5, \"count\": 1}, "
      "{\"le\": null, \"count\": 1}]}\n"
      "  },\n"
      "  \"spans\": {\n"
      "    \"phase\": {\"count\": 2, \"total_s\": 1, \"mean_s\": 0.5, "
      "\"min_s\": 0.25, \"max_s\": 0.75, \"p50_s\": " +
      s_p50 + ", \"p95_s\": " + s_p9x + ", \"p99_s\": " + s_p9x +
      "}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(registry.to_json("golden"), expected);
}

// The log-spaced sketch behind the quantile fields: index mapping is
// monotone and bounded, representatives sit inside their bucket, and the
// read-off is exact on distinct per-bucket samples.
TEST(MetricsQuantileTest, SketchIndexMonotoneAndRepresentativesInBucket) {
  EXPECT_EQ(detail::sketch_index(0.0), 0u);
  EXPECT_EQ(detail::sketch_index(-3.0), 0u);
  EXPECT_EQ(detail::sketch_index(1e-10), 0u);  // underflow bucket
  EXPECT_EQ(detail::sketch_index(1e12), detail::kSketchBuckets - 1);
  std::size_t prev = 0;
  for (double x = 1e-8; x < 1e8; x *= 1.7) {
    const std::size_t idx = detail::sketch_index(x);
    EXPECT_GE(idx, prev);
    EXPECT_LT(idx, detail::kSketchBuckets);
    prev = idx;
    // Representative of x's bucket is within one bucket width (10^(1/8)
    // relative) of x itself.
    const double v = detail::sketch_value(idx);
    EXPECT_GT(v / x, std::pow(10.0, -1.0 / detail::kSketchPerDecade));
    EXPECT_LT(v / x, std::pow(10.0, 1.0 / detail::kSketchPerDecade));
  }
}

TEST(MetricsQuantileTest, SpanQuantilesTrackDistribution) {
  EnabledGuard guard;
  set_metrics_enabled(true);
  MetricsRegistry registry;
  SpanStat& s = registry.span("s");
  // 99 samples 1ms..99ms: true p50=50ms, p95=95ms, p99=99ms. The sketch
  // answer must agree within one bucket width (10^(1/8) ~ 1.33x relative).
  for (int i = 1; i <= 99; ++i) s.record(i * 1e-3);
  const Quantiles q = s.quantiles();
  EXPECT_NEAR(q.p50 / 50e-3, 1.0, 0.35);
  EXPECT_NEAR(q.p95 / 95e-3, 1.0, 0.35);
  EXPECT_NEAR(q.p99 / 99e-3, 1.0, 0.35);
  EXPECT_LE(q.p50, q.p95);
  EXPECT_LE(q.p95, q.p99);
}

// Merge-safety: quantiles over per-thread slots must equal the serial
// answer for the same multiset of samples (sketch counts are additive).
TEST(MetricsQuantileTest, QuantilesMergeAcrossThreadSlots) {
  EnabledGuard guard;
  set_metrics_enabled(true);
  MetricsRegistry serial_reg, pooled_reg;
  SpanStat& serial = serial_reg.span("s");
  SpanStat& pooled = pooled_reg.span("s");
  constexpr std::size_t kItems = 4000;
  const auto sample = [](std::size_t i) {
    return 1e-4 * static_cast<double>(1 + i % 997);
  };
  for (std::size_t i = 0; i < kItems; ++i) serial.record(sample(i));
  util::ThreadPool::reset_global(4);
  util::ThreadPool::global().parallel_for(
      kItems, /*grain=*/64, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) pooled.record(sample(i));
      });
  const Quantiles a = serial.quantiles();
  const Quantiles b = pooled.quantiles();
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p95, b.p95);
  EXPECT_EQ(a.p99, b.p99);
}

TEST(MetricsJsonTest, EmptyRegistryStillProducesValidShape) {
  MetricsRegistry registry;
  const std::string json = registry.to_json("empty");
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"spans\": {}"), std::string::npos);
}

TEST(MetricsJsonTest, TableRenderingListsEveryMetric) {
  EnabledGuard guard;
  set_metrics_enabled(true);
  MetricsRegistry registry;
  registry.counter("c").add(2);
  registry.gauge("g").set(1.5);
  registry.histogram("h", {1.0}).record(0.5);
  registry.span("s").record(0.25);
  const std::string table = registry.to_table().to_string();
  for (const char* name : {"c", "g", "h", "s"})
    EXPECT_NE(table.find(name), std::string::npos) << name;
  EXPECT_NE(table.find("counter"), std::string::npos);
  EXPECT_NE(table.find("span"), std::string::npos);
}

}  // namespace
}  // namespace rlattack::obs
